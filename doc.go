// Package srda implements Spectral Regression Discriminant Analysis — the
// linear-time Linear Discriminant Analysis training algorithm of
//
//	Deng Cai, Xiaofei He, Jiawei Han.
//	"Training Linear Discriminant Analysis in Linear Time." ICDE 2008.
//
// Classical LDA eigen-decomposes dense scatter matrices: O(m·n·t + t³)
// time and O(m·n + (m+n)·t) memory for m samples, n features and
// t = min(m, n).  SRDA observes that the LDA eigenproblem's solutions can
// be written down in closed form on the *graph* side (the c−1
// Gram–Schmidt-orthogonalized class indicator vectors) and only the
// regression back to feature space has to be computed — c−1 ridge
// regressions, solvable by one shared Cholesky factorization or, for
// sparse data, by LSQR in O(k·c·m·s) time with s nonzeros per sample.
// That is linear in both the sample count and the (nonzero) feature
// count, which is what lets discriminant analysis run on corpora like
// 20Newsgroups where classical LDA exhausts memory.
//
// # Quick start
//
//	x := srda.NewDense(m, n)            // fill with your data, row = sample
//	model, err := srda.Fit(x, labels, numClasses, srda.Options{Alpha: 1})
//	emb := model.TransformDense(x)      // m×(c−1) discriminant embedding
//
// For sparse (e.g. text) data build a CSR matrix and call FitCSR; training
// cost then scales with the number of nonzeros:
//
//	b := srda.NewCSRBuilder(docs, vocab)
//	b.Add(doc, term, tfidf)
//	model, err := srda.FitCSR(b.Build(), labels, numClasses, srda.Options{Alpha: 1})
//
// The package also ships the paper's comparison baselines (classical
// SVD-based LDA, regularized LDA, and IDR/QR), the nearest-centroid and
// k-NN classifiers of its evaluation protocol, synthetic datasets shaped
// like the paper's four corpora, and an experiment harness that
// regenerates every table and figure (see cmd/srdabench and
// EXPERIMENTS.md).
//
// All numerical kernels — BLAS-level dense/sparse primitives, Cholesky,
// Householder QR, a symmetric eigensolver, cross-product SVD, and LSQR —
// are implemented in this repository with no dependencies beyond the Go
// standard library.
package srda
