# Convenience targets for the SRDA reproduction.

GO ?= go

.PHONY: all check build test vet lint lint-budget bench-gate race cover bench fuzz repro repro-paper report-smoke bench-record trace-smoke shard-smoke online-smoke slo-smoke examples clean

all: check

# The default gate: compile, static checks (vet + the project's own
# determinism-contract analyzers), unit tests, and the race detector
# (internal/serve is concurrent; run it racy by default).
check: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The srdalint suite (see doc/LINTING.md): goroutine discipline, float
# comparisons, seeded randomness, parallel-twin coverage, hot-loop
# allocations, wall-clock reads, dropped errors, raw logging outside the
# structured obs.Logger, map-iteration determinism, lock hygiene, and
# context-flow discipline — the hot-path analyzers chase findings through
# the interprocedural call graph.  Exit 1 = findings.  The second step is
# the compiler gate: kernel escape-analysis and bounds-check facts must
# stay within the checked-in lint_budget.json.
lint:
	$(GO) run ./cmd/srdalint ./...
	$(GO) run ./cmd/srdalint -compiler-gate

# Re-baseline the compiler gate after an intentional kernel change.
# Review the lint_budget.json diff before committing it.
lint-budget:
	$(GO) run ./cmd/srdalint -compiler-gate -update-budget

# Benchmark regression gate: time the fixed-shape kernels now and fail if
# any is >10% slower than the checked-in BENCH_0.json baseline.
bench-gate:
	$(eval BG := $(shell mktemp -d))
	$(GO) run ./cmd/srdabench -json-out $(BG)/bench.json
	$(GO) run ./cmd/srdareport benchdiff -tol 0.10 BENCH_0.json $(BG)/bench.json
	rm -rf $(BG)

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test ./... -coverprofile=cover.out && $(GO) tool cover -func=cover.out | tail -1

bench:
	$(GO) test -bench=. -benchmem ./...

# Active fuzzing of the kernel oracles (the same targets run as plain
# regression tests from the checked-in corpus during `make test`).
fuzz:
	$(GO) test -fuzz=FuzzGemmShapes -fuzztime=30s ./internal/blas
	$(GO) test -fuzz=FuzzCSRMulVec -fuzztime=30s ./internal/sparse
	$(GO) test -fuzz=FuzzCholUpdate -fuzztime=30s ./internal/decomp

# Regenerate every table and figure at laptop scale (minutes).
repro:
	$(GO) run ./cmd/srdabench -exp all -scale small -splits 5

# Full paper-sized datasets (slow; hours for the dense baselines).
repro-paper:
	$(GO) run ./cmd/srdabench -exp all -scale paper -splits 20

# End-to-end observability smoke: generate a corpus, train with a JSON
# run report, and hold the report to its schema with srdareport (see
# doc/OBSERVABILITY.md).  Runs in CI on every push.
report-smoke:
	$(eval SMOKE := $(shell mktemp -d))
	$(GO) run ./cmd/srdagen -dataset news -out $(SMOKE)/smoke -seed 7 -classes 3 -docs 240 -vocab 900 -split 0.7
	$(GO) run ./cmd/srdatrain -train $(SMOKE)/smoke.train.svm -test $(SMOKE)/smoke.test.svm -solver lsqr -report $(SMOKE)/run.json
	$(GO) run ./cmd/srdareport $(SMOKE)/run.json
	rm -rf $(SMOKE)

# Record one micro-benchmark trajectory point: time the fixed-shape
# kernels (PredictBatch, ParGemm, FitLSQR) and pin the report as
# BENCH_<k>.json with k one past the highest existing index.  When a
# previous point exists, print the benchdiff against it (informational
# here; CI gates on `srdareport benchdiff` exiting 1 at >10% slowdowns).
bench-record:
	@k=0; while [ -f BENCH_$$k.json ]; do k=$$((k+1)); done; \
	$(GO) run ./cmd/srdabench -json-out BENCH_$$k.json && \
	if [ $$k -gt 0 ]; then $(GO) run ./cmd/srdareport benchdiff BENCH_$$((k-1)).json BENCH_$$k.json || true; fi

# Tracing acceptance smoke: the serving path under 100+ concurrent
# requests must export a request→batch→kernel Chrome trace, quantile
# gauges on /metrics, and flush both artifacts on SIGTERM.  The
# cross-process leg runs a real router + worker pair, merges their
# per-process trace files with `srdareport tracemerge` into one
# timeline under a single TraceID, and validates the p99-breach flight
# bundle against doc/flight_schema.json.  Runs the end-to-end trace
# tests fresh (no cache); `make race` covers them racy.
trace-smoke:
	$(GO) test -run 'TestTraceSmoke|TestConcurrentRequestTracing|TestEndToEndTraceAll|TestTwoProcessTraceMergeAndFlight' -count=1 -v ./cmd/srdaserve ./internal/serve
	$(GO) test -run 'TestTracemergeGolden' -count=1 -v ./cmd/srdareport

# Sharded-tier acceptance smoke (see doc/SHARDING.md): -role=all spawns
# a router plus two co-located workers sharing one registry, publishes
# three tenant models, and asserts routed predictions, quota/shed
# metrics, and hash-ring stability under drain.  The router and
# registry race tests run fresh alongside it; `make race` covers the
# full packages racy.
shard-smoke:
	$(GO) test -run 'TestShardSmoke' -count=1 -v ./cmd/srdaserve
	$(GO) test -run 'TestColocatedRoutingQuotasAndDrain|TestConcurrentPublishEvictPredict' -count=1 -race -v ./internal/router ./internal/registry

# Train-while-serving acceptance smoke (see doc/ONLINE.md): a worker
# started with -online streams labeled samples through /v1/observe, the
# co-located trainer refits and publishes into the live registry,
# predictions answer from the new version, and a poisoned stream forces
# a holdout regression whose rollback shows up on /metrics.  The
# streaming↔batch bitwise-equivalence golden test and the
# publish-while-predict race test run fresh alongside it.
online-smoke:
	$(GO) test -run 'TestOnlineSmoke' -count=1 -v ./cmd/srdaserve
	$(GO) test -run 'TestStreamingMatchesBatch' -count=1 -v .
	$(GO) test -run 'TestPublishWhilePredict' -count=1 -race -v ./internal/online

# SLO burn-rate acceptance smoke (see doc/OBSERVABILITY.md): a real
# router process in front of a real worker process, the worker killed
# mid-traffic to induce a 5xx burst, and the availability alert driven
# through pending → firing → resolved with a schema-valid slo_burn
# flight bundle on disk.  Wall-clock burn windows make this a
# multi-second test, so it is gated behind SRDA_SLO_SMOKE and runs
# fresh (no cache).  The frozen-clock federation/SLO lifecycle tests
# and the fleet-view golden run alongside it.
slo-smoke:
	SRDA_SLO_SMOKE=1 $(GO) test -run 'TestSLOSmoke' -count=1 -v ./cmd/srdaserve
	$(GO) test -run 'TestSLOLifecycle|TestClusterMetricsGolden|TestClusterSnapshotGolden|TestFederatorSLOIntegration' -count=1 -v ./internal/telemetry
	$(GO) test -run 'TestTopOnceGolden' -count=1 -v ./cmd/srdareport

examples:
	@for d in examples/*/ ; do echo "== $$d"; $(GO) run ./$$d || exit 1; done

clean:
	rm -f cover.out test_output.txt bench_output.txt
