// Benchmarks regenerating the paper's tables and figures at laptop scale.
//
// Every table and figure of the evaluation section has one Benchmark*
// function; each trains the compared algorithms on a scaled-down version
// of the corresponding dataset and reports the headline quantities as
// custom metrics (err%/ * are mean test-error percentages, sec/* are mean
// training seconds).  Run:
//
//	go test -bench=. -benchmem
//
// The full-size reproduction (the paper's exact m, n, c) lives in
// cmd/srdabench (-scale paper); these benches are its fast proxy, so the
// relative ordering — SRDA ≈ RLDA accuracy, SRDA ≫ LDA speed, IDR/QR
// fastest but least accurate, memory wall on sparse data — is the thing
// to look at, not absolute numbers.
package srda_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"srda"
)

// benchDatasets are generated once and shared across benchmarks.
var benchDatasets struct {
	once                     sync.Once
	pie, isolet, mnist, news *srda.Dataset
}

func datasets() (pie, isolet, mnist, news *srda.Dataset) {
	benchDatasets.once.Do(func() {
		benchDatasets.pie = srda.PIELike(srda.PIEConfig{Classes: 16, PerClass: 30, Side: 16, Seed: 101})
		benchDatasets.isolet = srda.IsoletLike(srda.IsoletConfig{Classes: 12, PerClass: 40, Dim: 160, Seed: 102})
		benchDatasets.mnist = srda.MNISTLike(srda.MNISTConfig{Classes: 10, PerClass: 60, Side: 16, Seed: 103})
		benchDatasets.news = srda.NewsLike(srda.NewsConfig{Classes: 8, Docs: 1200, Vocab: 4000, AvgLen: 60, TopicWords: 400, TopicBoost: 10, Seed: 104})
	})
	return benchDatasets.pie, benchDatasets.isolet, benchDatasets.mnist, benchDatasets.news
}

// runGridBench runs one (dataset, sizes-or-fracs) grid per iteration and
// reports per-algorithm error and time metrics from the last run.
func runGridBench(b *testing.B, ds *srda.Dataset, perClass int, frac float64) {
	b.Helper()
	r := srda.Runner{Splits: 2, Seed: 7, Alpha: 1, LSQRIter: 15}
	var g *srda.Grid
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if perClass > 0 {
			g, err = r.RunPerClassGrid(ds, srda.AllAlgorithms, []int{perClass})
		} else {
			g, err = r.RunFractionGrid(ds, srda.AllAlgorithms, []float64{frac})
		}
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for j, a := range g.Algorithms {
		c := g.Cells[0][j]
		if !c.Feasible {
			continue
		}
		b.ReportMetric(c.MeanErr, "err%/"+string(a))
		b.ReportMetric(c.MeanTime, "sec/"+string(a))
	}
}

// BenchmarkTable1Model evaluates the flam/memory complexity model (Table I).
func BenchmarkTable1Model(b *testing.B) {
	p := srda.ComplexityProblem{M: 9470, N: 26214, C: 20, K: 15, S: 80}
	var speed float64
	for i := 0; i < b.N; i++ {
		rows := srda.ComplexityTable(p)
		speed = rows[0].Flam / rows[1].Flam
	}
	b.ReportMetric(speed, "lda/srda-flam")
}

// BenchmarkTable2Stats generates and summarizes a dataset (Table II).
func BenchmarkTable2Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := srda.NewsLike(srda.NewsConfig{Classes: 4, Docs: 400, Vocab: 2000, AvgLen: 40, Seed: int64(i)})
		s := ds.Describe()
		if s.Classes != 4 {
			b.Fatal("bad stats")
		}
	}
}

// BenchmarkTable3PIEError reproduces the PIE error comparison (Table III /
// Fig 1 left).
func BenchmarkTable3PIEError(b *testing.B) {
	pie, _, _, _ := datasets()
	runGridBench(b, pie, 8, 0)
}

// BenchmarkTable4PIETime reproduces the PIE training-time comparison
// (Table IV / Fig 1 right) at a larger training size where the gap shows.
func BenchmarkTable4PIETime(b *testing.B) {
	pie, _, _, _ := datasets()
	runGridBench(b, pie, 16, 0)
}

// BenchmarkTable5IsoletError reproduces Table V / Fig 2 left.
func BenchmarkTable5IsoletError(b *testing.B) {
	_, iso, _, _ := datasets()
	runGridBench(b, iso, 10, 0)
}

// BenchmarkTable6IsoletTime reproduces Table VI / Fig 2 right.
func BenchmarkTable6IsoletTime(b *testing.B) {
	_, iso, _, _ := datasets()
	runGridBench(b, iso, 25, 0)
}

// BenchmarkTable7MNISTError reproduces Table VII / Fig 3 left.
func BenchmarkTable7MNISTError(b *testing.B) {
	_, _, mnist, _ := datasets()
	runGridBench(b, mnist, 15, 0)
}

// BenchmarkTable8MNISTTime reproduces Table VIII / Fig 3 right.
func BenchmarkTable8MNISTTime(b *testing.B) {
	_, _, mnist, _ := datasets()
	runGridBench(b, mnist, 40, 0)
}

// BenchmarkTable9NewsError reproduces Table IX / Fig 4 left (sparse text;
// SRDA runs the LSQR path).
func BenchmarkTable9NewsError(b *testing.B) {
	_, _, _, news := datasets()
	runGridBench(b, news, 0, 0.1)
}

// BenchmarkTable10NewsTime reproduces Table X / Fig 4 right.
func BenchmarkTable10NewsTime(b *testing.B) {
	_, _, _, news := datasets()
	runGridBench(b, news, 0, 0.3)
}

// figureBench renders the ASCII figure from a two-point grid (the figures
// are the tables' curves; this regenerates the plotting path end-to-end).
func figureBench(b *testing.B, ds *srda.Dataset, sizes []int, fracs []float64) {
	b.Helper()
	r := srda.Runner{Splits: 2, Seed: 8, Alpha: 1, LSQRIter: 15}
	for i := 0; i < b.N; i++ {
		var g *srda.Grid
		var err error
		if sizes != nil {
			g, err = r.RunPerClassGrid(ds, []srda.Algorithm{srda.AlgoSRDA, srda.AlgoIDRQR}, sizes)
		} else {
			g, err = r.RunFractionGrid(ds, []srda.Algorithm{srda.AlgoSRDA, srda.AlgoIDRQR}, fracs)
		}
		if err != nil {
			b.Fatal(err)
		}
		if out := g.RenderFigure(false) + g.RenderFigure(true); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig1PIE regenerates both panels of Figure 1.
func BenchmarkFig1PIE(b *testing.B) {
	pie, _, _, _ := datasets()
	figureBench(b, pie, []int{4, 10}, nil)
}

// BenchmarkFig2Isolet regenerates both panels of Figure 2.
func BenchmarkFig2Isolet(b *testing.B) {
	_, iso, _, _ := datasets()
	figureBench(b, iso, []int{6, 14}, nil)
}

// BenchmarkFig3MNIST regenerates both panels of Figure 3.
func BenchmarkFig3MNIST(b *testing.B) {
	_, _, mnist, _ := datasets()
	figureBench(b, mnist, []int{10, 25}, nil)
}

// BenchmarkFig4News regenerates both panels of Figure 4.
func BenchmarkFig4News(b *testing.B) {
	_, _, _, news := datasets()
	figureBench(b, news, nil, []float64{0.05, 0.15})
}

// BenchmarkFig5AlphaSweep regenerates one Figure 5 panel (error vs
// α/(1+α) with LDA and IDR/QR references).
func BenchmarkFig5AlphaSweep(b *testing.B) {
	pie, _, _, _ := datasets()
	r := srda.Runner{Splits: 2, Seed: 9}
	var sweep *srda.Sweep
	var err error
	for i := 0; i < b.N; i++ {
		sweep, err = r.AlphaSweep(pie, 6, 0, []float64{0.1, 0.5, 0.9})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(sweep.Points[1].MeanErr, "err%/srda-mid")
	b.ReportMetric(sweep.IDRQRErr, "err%/idrqr")
}

// --- Ablations -----------------------------------------------------------

func ablationFit(b *testing.B, solver srda.Solver) {
	b.Helper()
	pie, _, _, _ := datasets()
	rng := rand.New(rand.NewSource(10))
	train, _, err := pie.SplitPerClass(rng, 12)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srda.Fit(train.Dense, train.Labels, train.NumClasses,
			srda.Options{Alpha: 1, Solver: solver, LSQRIter: 30}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSolverPrimal times the eq. 20 closed-form path.
func BenchmarkAblationSolverPrimal(b *testing.B) { ablationFit(b, srda.SolverPrimal) }

// BenchmarkAblationSolverDual times the eq. 21 dual path.
func BenchmarkAblationSolverDual(b *testing.B) { ablationFit(b, srda.SolverDual) }

// BenchmarkAblationSolverLSQR times the iterative path on dense data.
func BenchmarkAblationSolverLSQR(b *testing.B) { ablationFit(b, srda.SolverLSQR) }

// BenchmarkAblationLSQRIters measures error sensitivity to the iteration
// cap (the paper's "15–20 iterations suffice").
func BenchmarkAblationLSQRIters(b *testing.B) {
	_, _, _, news := datasets()
	rng := rand.New(rand.NewSource(11))
	train, test, err := news.SplitFraction(rng, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	errAt := map[int]float64{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range []int{5, 15} {
			model, err := srda.FitCSR(train.Sparse, train.Labels, train.NumClasses,
				srda.Options{Alpha: 1, LSQRIter: k, Whiten: true})
			if err != nil {
				b.Fatal(err)
			}
			pred := model.PredictSparse(test.Sparse)
			errAt[k] = 100 * srda.ErrorRate(pred, test.Labels)
		}
	}
	b.StopTimer()
	b.ReportMetric(errAt[5], "err%/k=5")
	b.ReportMetric(errAt[15], "err%/k=15")
}

// --- Micro-benchmarks on the core pipeline -------------------------------

// BenchmarkSRDAFitDense times a single dense fit at the PIE shape.
func BenchmarkSRDAFitDense(b *testing.B) {
	pie, _, _, _ := datasets()
	rng := rand.New(rand.NewSource(12))
	train, _, err := pie.SplitPerClass(rng, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srda.Fit(train.Dense, train.Labels, train.NumClasses, srda.Options{Alpha: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSRDAFitSparse times the LSQR path at the news shape — the
// paper's linear-time claim in microcosm.
func BenchmarkSRDAFitSparse(b *testing.B) {
	_, _, _, news := datasets()
	rng := rand.New(rand.NewSource(13))
	train, _, err := news.SplitFraction(rng, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srda.FitCSR(train.Sparse, train.Labels, train.NumClasses,
			srda.Options{Alpha: 1, LSQRIter: 15}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLDAFit times the classical baseline on the same data as
// BenchmarkSRDAFitDense for a direct speedup readout.
func BenchmarkLDAFit(b *testing.B) {
	pie, _, _, _ := datasets()
	rng := rand.New(rand.NewSource(12))
	train, _, err := pie.SplitPerClass(rng, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srda.FitLDA(train.Dense, train.Labels, train.NumClasses, srda.LDAOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIDRQRFit times the fastest baseline on the same data.
func BenchmarkIDRQRFit(b *testing.B) {
	pie, _, _, _ := datasets()
	rng := rand.New(rand.NewSource(12))
	train, _, err := pie.SplitPerClass(rng, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srda.FitIDRQR(train.Dense, train.Labels, train.NumClasses, srda.IDRQROptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// predictBenchSetup trains a model at a serving-realistic shape (wide
// features, few classes) and cuts a 64-sample batch, the micro-batcher's
// default MaxBatch.
func predictBenchSetup(b *testing.B) (*srda.Model, *srda.Dense) {
	b.Helper()
	rng := rand.New(rand.NewSource(77))
	const m, n, c, batch = 300, 2000, 10, 64
	x := srda.NewDense(m+batch, n)
	labels := make([]int, m+batch)
	for i := 0; i < m+batch; i++ {
		labels[i] = i % c
		row := x.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		row[0] += 7 * float64(labels[i])
	}
	train := x.Slice(0, m, 0, n)
	model, err := srda.Fit(train.Clone(), labels[:m], c, srda.Options{Alpha: 1, Solver: srda.SolverDual})
	if err != nil {
		b.Fatal(err)
	}
	return model, x.Slice(m, m+batch, 0, n).Clone()
}

// BenchmarkPredictLoop classifies a 64-sample batch one row at a time —
// the per-request cost a server pays without micro-batching (one GemvT
// over W plus a centroid-distance loop per sample).
func BenchmarkPredictLoop(b *testing.B) {
	model, batch := predictBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < batch.Rows; r++ {
			model.PredictVec(batch.RowView(r))
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*float64(batch.Rows)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkPredictBatch classifies the same 64 samples through the
// GEMM-lowered batch path srdaserve's dispatcher uses; the ratio to
// BenchmarkPredictLoop is the micro-batching win recorded in the perf
// trajectory.
func BenchmarkPredictBatch(b *testing.B) {
	model, batch := predictBenchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.PredictBatch(batch)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*float64(batch.Rows)/b.Elapsed().Seconds(), "samples/s")
}

// BenchmarkTransformSparse times embedding throughput on CSR rows.
func BenchmarkTransformSparse(b *testing.B) {
	_, _, _, news := datasets()
	model, err := srda.FitCSR(news.Sparse, news.Labels, news.NumClasses,
		srda.Options{Alpha: 1, LSQRIter: 10})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		model.TransformSparse(news.Sparse)
	}
	b.StopTimer()
	rowsPerSec := float64(b.N) * float64(news.NumSamples()) / time.Since(start).Seconds()
	b.ReportMetric(rowsPerSec, "rows/s")
}

// --- Extension benchmarks -------------------------------------------------

// BenchmarkIncrementalAdd measures the O(n²) per-sample streaming update.
func BenchmarkIncrementalAdd(b *testing.B) {
	pie, _, _, _ := datasets()
	n := pie.NumFeatures()
	inc, err := srda.NewIncrementalSRDA(n, pie.NumClasses, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row := pie.Dense.RowView(i % pie.NumSamples())
		if err := inc.Add(row, pie.Labels[i%pie.NumSamples()]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKSRDAFit times kernel SRDA on a small dense problem (O(m²)
// kernel work dominates).
func BenchmarkKSRDAFit(b *testing.B) {
	rng := rand.New(rand.NewSource(200))
	m, n := 200, 30
	x := srda.NewDense(m, n)
	labels := make([]int, m)
	for i := 0; i < m; i++ {
		labels[i] = i % 4
		row := x.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		row[0] += 4 * float64(labels[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srda.FitKSRDA(x, labels, 4, srda.KSRDAOptions{Alpha: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpectralRegressionKNN times the generalized SR pipeline
// (k-NN graph eigenvectors via deflated Lanczos + ridge).
func BenchmarkSpectralRegressionKNN(b *testing.B) {
	rng := rand.New(rand.NewSource(201))
	m, n := 300, 20
	x := srda.NewDense(m, n)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := 0; i < m; i++ {
		x.RowView(i)[0] += 8 * float64(i%3)
	}
	g := srda.KNNGraph(x, srda.KNNGraphOptions{K: 6})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srda.FitSR(x, g, srda.SROptions{Dim: 2, Alpha: 0.5, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpectralClustering times normalized cuts end to end.
func BenchmarkSpectralClustering(b *testing.B) {
	rng := rand.New(rand.NewSource(202))
	m := 400
	x := srda.NewDense(m, 2)
	for i := 0; i < m; i++ {
		x.Set(i, 0, 5*float64(i%3)+0.4*rng.NormFloat64())
		x.Set(i, 1, 0.4*rng.NormFloat64())
	}
	g := srda.KNNGraph(x, srda.KNNGraphOptions{K: 7})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srda.SpectralCluster(g, 3, srda.SpectralClusterOptions{Seed: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTextVectorize times the raw-text → TF-IDF pipeline.
func BenchmarkTextVectorize(b *testing.B) {
	docs := make([]string, 200)
	labels := make([]int, 200)
	words := []string{"compiler", "linker", "kernel", "goal", "match", "striker",
		"galaxy", "orbit", "telescope", "running", "jumped", "quickly", "analysis"}
	rng := rand.New(rand.NewSource(203))
	for i := range docs {
		labels[i] = i % 4
		var sb []byte
		for w := 0; w < 40; w++ {
			sb = append(sb, words[rng.Intn(len(words))]...)
			sb = append(sb, ' ')
		}
		docs[i] = string(sb)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := srda.NewTextVectorizer(docs, labels, 4,
			srda.TextVectorizerOptions{Stem: true, TFIDF: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOutOfCoreMatVec compares streaming against in-memory products.
func BenchmarkOutOfCoreMatVec(b *testing.B) {
	_, _, _, news := datasets()
	dir := b.TempDir()
	path := dir + "/m.csr"
	if err := news.Sparse.WriteFile(path); err != nil {
		b.Fatal(err)
	}
	d, err := srda.OpenDiskCSR(path)
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	x := make([]float64, news.NumFeatures())
	for i := range x {
		x[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.MulVec(x, nil); err != nil {
			b.Fatal(err)
		}
	}
}
