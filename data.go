package srda

import (
	"io"
	"math/rand"

	"srda/internal/classify"
	"srda/internal/dataset"
	"srda/internal/experiment"
	"srda/internal/flam"
)

// Dataset is a labeled sample collection, dense or sparse.
type Dataset = dataset.Dataset

// DatasetStats is the Table II summary row of a dataset.
type DatasetStats = dataset.Stats

// Synthetic dataset generator configurations (see DESIGN.md §4 for how
// each mirrors the paper's corresponding real corpus).
type (
	// PIEConfig shapes the CMU-PIE-like face generator.
	PIEConfig = dataset.PIEConfig
	// IsoletConfig shapes the Isolet-like spoken-letter generator.
	IsoletConfig = dataset.IsoletConfig
	// MNISTConfig shapes the MNIST-like digit generator.
	MNISTConfig = dataset.MNISTConfig
	// NewsConfig shapes the 20Newsgroups-like sparse text generator.
	NewsConfig = dataset.NewsConfig
)

// PIELike generates the face-recognition-shaped dataset (dense, 32×32
// pixels, 68 classes by default).
func PIELike(cfg PIEConfig) *Dataset { return dataset.PIELike(cfg) }

// IsoletLike generates the spoken-letter-shaped dataset (dense, 617
// features, 26 classes by default).
func IsoletLike(cfg IsoletConfig) *Dataset { return dataset.IsoletLike(cfg) }

// MNISTLike generates the digit-shaped dataset (dense, 28×28 pixels, 10
// classes by default).
func MNISTLike(cfg MNISTConfig) *Dataset { return dataset.MNISTLike(cfg) }

// NewsLike generates the text-shaped sparse dataset (26214-term Zipf
// vocabulary, 20 classes by default, L2-normalized TF rows).
func NewsLike(cfg NewsConfig) *Dataset { return dataset.NewsLike(cfg) }

// ReadLibSVM parses libsvm/svmlight-format data into a sparse dataset.
func ReadLibSVM(r io.Reader, numFeatures int) (*Dataset, error) {
	return dataset.ReadLibSVM(r, numFeatures)
}

// NearestCentroid is the paper's evaluation classifier: minimum distance
// to embedded class mean.
type NearestCentroid = classify.NearestCentroid

// KNN is a k-nearest-neighbor classifier over embedded points.
type KNN = classify.KNN

// FitNearestCentroid computes class centroids from an embedded training
// set.
func FitNearestCentroid(emb *Dense, labels []int, numClasses int) (*NearestCentroid, error) {
	return classify.FitNearestCentroid(emb, labels, numClasses)
}

// FitKNN stores an embedded training set for k-NN prediction.
func FitKNN(emb *Dense, labels []int, numClasses, k int) (*KNN, error) {
	return classify.FitKNN(emb, labels, numClasses, k)
}

// ErrorRate returns the fraction of mismatched predictions.
func ErrorRate(pred, truth []int) float64 { return classify.ErrorRate(pred, truth) }

// Experiment harness re-exports: Runner reproduces the paper's tables and
// figures (see cmd/srdabench).
type (
	// Runner executes (dataset × algorithm × size) grids over random splits.
	Runner = experiment.Runner
	// Grid is a reproduced table (error + time cells).
	Grid = experiment.Grid
	// Sweep is a reproduced Figure 5 panel.
	Sweep = experiment.Sweep
	// Algorithm names one of the compared methods.
	Algorithm = experiment.Algorithm
)

// The compared algorithms, in the paper's column order.
const (
	AlgoLDA   = experiment.AlgoLDA
	AlgoRLDA  = experiment.AlgoRLDA
	AlgoSRDA  = experiment.AlgoSRDA
	AlgoIDRQR = experiment.AlgoIDRQR
)

// AllAlgorithms is the paper's four-way comparison set.
var AllAlgorithms = experiment.AllAlgorithms

// ComplexityProblem is a problem shape for the Table I flam/memory model.
type ComplexityProblem = flam.Problem

// ComplexityCount is one Table I row (flam count + memory words).
type ComplexityCount = flam.Count

// ComplexityTable evaluates all Table I rows for a problem shape.
func ComplexityTable(p ComplexityProblem) []ComplexityCount { return flam.Table(p) }

// ComplexitySpeedup returns the modeled LDA/SRDA flam ratio (≤ ~9).
func ComplexitySpeedup(p ComplexityProblem) float64 { return flam.Speedup(p) }

// ClassificationMetrics summarizes multi-class quality (per-class and
// macro precision/recall/F1, support, accuracy).
type ClassificationMetrics = classify.Metrics

// ComputeMetrics evaluates predictions against ground truth.
func ComputeMetrics(pred, truth []int, numClasses int) (*ClassificationMetrics, error) {
	return classify.ComputeMetrics(pred, truth, numClasses)
}

// TopKAccuracy scores ranked predictions (truth within the first k).
func TopKAccuracy(ranked [][]int, truth []int, k int) (float64, error) {
	return classify.TopKAccuracy(ranked, truth, k)
}

// BalancedError averages per-class error rates (1 − macro recall).
func BalancedError(pred, truth []int, numClasses int) (float64, error) {
	return classify.BalancedError(pred, truth, numClasses)
}

// MCC computes the multi-class Matthews correlation coefficient.
func MCC(pred, truth []int, numClasses int) (float64, error) {
	return classify.MCC(pred, truth, numClasses)
}

// CorruptLabels returns a copy of the dataset with a fraction of labels
// flipped to other classes (annotation-noise robustness studies); the
// mask marks flipped samples.
func CorruptLabels(d *Dataset, rng *rand.Rand, frac float64) (*Dataset, []bool) {
	return d.CorruptLabels(rng, frac)
}
