package srda

import (
	"io"

	"srda/internal/text"
)

// TextVectorizer maps raw documents to the L2-normalized sparse term
// vectors the paper's 20Newsgroups preprocessing produces.
type TextVectorizer = text.Vectorizer

// TextVectorizerOptions configures tokenization, stemming, stop-word
// removal, document-frequency filtering, and TF-IDF weighting.
type TextVectorizerOptions = text.VectorizerOptions

// NewTextVectorizer learns a vocabulary from the corpus and returns the
// fitted vectorizer plus the vectorized dataset, ready for FitCSR.
func NewTextVectorizer(docs []string, labels []int, numClasses int, opt TextVectorizerOptions) (*TextVectorizer, *Dataset, error) {
	return text.NewVectorizer(docs, labels, numClasses, opt)
}

// StemWord reduces an English word to its Porter stem.
func StemWord(w string) string { return text.Stem(w) }

// TokenizeText lowercases and splits text into alphabetic tokens.
func TokenizeText(s string) []string { return text.Tokenize(s) }

// IsStopWord reports membership in the built-in English stop list.
func IsStopWord(w string) bool { return text.IsStopWord(w) }

// LoadTextVectorizer reads a vectorizer written with
// TextVectorizer.Save.
func LoadTextVectorizer(r io.Reader) (*TextVectorizer, error) {
	return text.LoadVectorizer(r)
}
