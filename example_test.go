package srda_test

import (
	"fmt"
	"math/rand"

	"srda"
)

// exampleData builds a deterministic, trivially separable 2-class problem
// so the Example outputs are stable.
func exampleData() (*srda.Dense, []int) {
	rng := rand.New(rand.NewSource(7))
	x := srda.NewDense(40, 5)
	labels := make([]int, 40)
	for i := 0; i < 40; i++ {
		labels[i] = i % 2
		row := x.RowView(i)
		for j := range row {
			row[j] = 0.1 * rng.NormFloat64()
		}
		row[0] += 5 * float64(labels[i])
	}
	return x, labels
}

// The core loop: fit SRDA, embed, classify.
func ExampleFit() {
	x, labels := exampleData()
	model, err := srda.Fit(x, labels, 2, srda.Options{Alpha: 1, Whiten: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("embedding dims:", model.Dim())
	fmt.Println("training errors:", countErrors(model.PredictDense(x), labels))
	// Output:
	// embedding dims: 1
	// training errors: 0
}

// Sparse text-style data goes through the linear-time LSQR path.
func ExampleFitCSR() {
	b := srda.NewCSRBuilder(6, 10)
	labels := []int{0, 0, 0, 1, 1, 1}
	for i, y := range labels {
		b.Add(i, y*4, 1) // class-specific term
		b.Add(i, 9, 0.5) // shared background term
		_ = i
	}
	model, err := srda.FitCSR(b.Build(), labels, 2, srda.Options{Alpha: 0.1, LSQRIter: 50})
	if err != nil {
		panic(err)
	}
	fmt.Println("dims:", model.Dim(), "iters > 0:", model.Iters > 0)
	// Output:
	// dims: 1 iters > 0: true
}

// The responses-generation step (eq. 15–16) on its own: orthonormal,
// zero-sum class targets.
func ExampleResponses() {
	y, err := srda.Responses([]int{0, 0, 1, 1}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d×%d responses; y[0]=%.2f y[2]=%.2f\n", y.Rows, y.Cols, y.At(0, 0), y.At(2, 0))
	// Output:
	// 4×1 responses; y[0]=0.50 y[2]=-0.50
}

// The complexity model behind Table I.
func ExampleComplexitySpeedup() {
	p := srda.ComplexityProblem{M: 9470, N: 26214, C: 20, K: 15, S: 80}
	fmt.Printf("modeled LDA/SRDA speedup: %.1fx\n", srda.ComplexitySpeedup(p))
	// Output:
	// modeled LDA/SRDA speedup: 5.6x
}

// Streaming training with exact batch equivalence.
func ExampleNewIncrementalSRDA() {
	x, labels := exampleData()
	inc, err := srda.NewIncrementalSRDA(5, 2, 1)
	if err != nil {
		panic(err)
	}
	for i := 0; i < x.Rows; i++ {
		if err := inc.Add(x.RowView(i), labels[i]); err != nil {
			panic(err)
		}
	}
	model, err := inc.Model()
	if err != nil {
		panic(err)
	}
	fmt.Println("seen:", inc.NumSeen(), "dims:", model.Dim())
	// Output:
	// seen: 40 dims: 1
}

func countErrors(pred, truth []int) int {
	n := 0
	for i := range pred {
		if pred[i] != truth[i] {
			n++
		}
	}
	return n
}
