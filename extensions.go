package srda

import (
	"srda/internal/cluster"
	"srda/internal/core"
	"srda/internal/decomp"
	"srda/internal/experiment"
	"srda/internal/graph"
	"srda/internal/kernel"
)

// --- Graph construction (the paper's closing generalization) -------------

// Graph is a symmetric affinity graph over samples.
type Graph = graph.Graph

// GraphWeighting selects edge weights for neighborhood graphs.
type GraphWeighting = graph.Weighting

// Neighborhood-graph weightings.
const (
	WeightBinary = graph.Binary
	WeightHeat   = graph.Heat
	WeightCosine = graph.Cosine
)

// KNNGraphOptions configures k-NN graph construction.
type KNNGraphOptions = graph.KNNOptions

// ClassGraph builds the paper's supervised affinity graph (eq. 6):
// same-class samples connected with weight 1/m_k.
func ClassGraph(labels []int, numClasses int) (*Graph, error) {
	return graph.ClassGraph(labels, numClasses)
}

// KNNGraph builds a symmetrized k-nearest-neighbor affinity graph over
// dense samples.
func KNNGraph(x *Dense, opt KNNGraphOptions) *Graph { return graph.KNN(x, opt) }

// SemiSupervisedGraph blends a k-NN graph over all samples with the class
// graph over the labeled ones (labels[i] < 0 marks i unlabeled):
// W = W_knn + beta·W_class.
func SemiSupervisedGraph(x *Dense, labels []int, numClasses int, beta float64, opt KNNGraphOptions) (*Graph, error) {
	return graph.SemiSupervised(x, labels, numClasses, beta, opt)
}

// --- Generalized spectral regression --------------------------------------

// SROptions configures generalized Spectral Regression.
type SROptions = core.SROptions

// FitSR runs generalized Spectral Regression on dense data with an
// arbitrary affinity graph: the spectral step extracts the graph's
// leading nontrivial eigenvectors (deflated Lanczos), the regression step
// is SRDA's ridge machinery.  With ClassGraph and Dim = c−1 this is SRDA;
// with KNNGraph it is unsupervised linear spectral embedding; with
// SemiSupervisedGraph it is semi-supervised discriminant analysis.
func FitSR(x *Dense, g *Graph, opt SROptions) (*Model, error) {
	return core.FitSRDense(x, g, opt)
}

// FitSROperator is the matrix-free counterpart of FitSR (LSQR path).
func FitSROperator(op Operator, g *Graph, opt SROptions) (*Model, error) {
	return core.FitSROperator(op, g, opt)
}

// --- Kernel SRDA -----------------------------------------------------------

// Kernel is a positive-definite similarity function.
type Kernel = kernel.Kernel

// Kernel implementations.
type (
	// LinearKernel is κ(x,y) = xᵀy + Offset.
	LinearKernel = kernel.Linear
	// RBFKernel is κ(x,y) = exp(−γ‖x−y‖²).
	RBFKernel = kernel.RBF
	// PolyKernel is κ(x,y) = (xᵀy + Coef)^Degree.
	PolyKernel = kernel.Polynomial
)

// KSRDAOptions configures kernel SRDA.
type KSRDAOptions = kernel.Options

// KSRDAModel is a trained kernel-SRDA transformer.
type KSRDAModel = kernel.Model

// FitKSRDA trains kernel SRDA (Cai, He, Han — ICDM 2007): the same
// spectral responses regressed in a reproducing-kernel space, buying
// nonlinear discriminant boundaries at O(m²) kernel cost.
func FitKSRDA(x *Dense, labels []int, numClasses int, opt KSRDAOptions) (*KSRDAModel, error) {
	return kernel.Fit(x, labels, numClasses, opt)
}

// FitKSRDAWhitened trains kernel SRDA and whitens its embedding against
// the training data (the metric correction distance-based classifiers
// want; see Options.Whiten on the linear path).
func FitKSRDAWhitened(x *Dense, labels []int, numClasses int, opt KSRDAOptions) (*KSRDAModel, error) {
	return kernel.FitWhitened(x, labels, numClasses, opt)
}

// --- PCA preprocessing ------------------------------------------------------

// PCA is a principal-component projection (the first stage of the classic
// PCA+LDA pipeline the paper's §II-A analyzes).
type PCA = decomp.PCA

// FitPCA fits a PCA with at most dims components (dims <= 0 keeps full
// rank).
func FitPCA(x *Dense, dims int) (*PCA, error) { return decomp.NewPCA(x, dims) }

// --- Model selection ---------------------------------------------------------

// CVResult is one candidate's cross-validated error.
type CVResult = experiment.CVResult

// KFoldAlpha selects SRDA's regularizer by stratified k-fold
// cross-validation on the given dataset, returning per-candidate results
// and the winning index.
func KFoldAlpha(ds *Dataset, alphas []float64, folds int, seed int64) ([]CVResult, int, error) {
	r := experiment.Runner{Seed: seed}
	return r.KFoldAlpha(ds, alphas, folds)
}

// --- Clustering ---------------------------------------------------------

// KMeansOptions configures Lloyd's algorithm with k-means++ seeding.
type KMeansOptions = cluster.KMeansOptions

// KMeansResult holds cluster assignments, centers, and inertia.
type KMeansResult = cluster.KMeansResult

// KMeans clusters the rows of x into k groups.
func KMeans(x *Dense, k int, opt KMeansOptions) (*KMeansResult, error) {
	return cluster.KMeans(x, k, opt)
}

// SpectralClusterOptions configures spectral clustering.
type SpectralClusterOptions = cluster.SpectralOptions

// SpectralCluster partitions a graph's vertices by normalized cuts: the
// unsupervised counterpart of the paper's spectral view — eigenvectors of
// the normalized adjacency (deflated Lanczos) quantized by k-means.
func SpectralCluster(g *Graph, k int, opt SpectralClusterOptions) (*KMeansResult, error) {
	return cluster.Spectral(g, k, opt)
}

// SVDResult is a thin singular value decomposition.
type SVDResult = decomp.SVD

// ExactSVD computes the thin SVD via the paper's cross-product strategy
// (§II-B): eigendecompose the smaller Gram matrix, recover the other
// factor.
func ExactSVD(x *Dense) (*SVDResult, error) { return decomp.NewSVD(x, 0) }

// RandomizedSVD computes an approximate rank-k SVD with the randomized
// range finder (Halko–Martinsson–Tropp) — the modern alternative for the
// LDA baseline at scale; see the ablation-rsvd benchmark.
func RandomizedSVD(x *Dense, k, oversample, powerIters int, seed int64) (*SVDResult, error) {
	return decomp.NewRandomizedSVD(x, k, oversample, powerIters, seed)
}
