package srda_test

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"srda"
)

// blobs builds an easy classification problem through the public API.
func blobs(rng *rand.Rand, m, n, c int, sep float64) (*srda.Dense, []int) {
	x := srda.NewDense(m, n)
	labels := make([]int, m)
	for i := 0; i < m; i++ {
		labels[i] = i % c
		row := x.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		row[0] += sep * float64(labels[i])
	}
	return x, labels
}

func TestPublicFitTransformClassify(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xTrain, yTrain := blobs(rng, 120, 15, 3, 7)
	xTest, yTest := blobs(rng, 60, 15, 3, 7)

	model, err := srda.Fit(xTrain, yTrain, 3, srda.Options{Alpha: 1, Whiten: true})
	if err != nil {
		t.Fatal(err)
	}
	if model.Dim() != 2 {
		t.Fatalf("Dim=%d", model.Dim())
	}
	nc, err := srda.FitNearestCentroid(model.TransformDense(xTrain), yTrain, 3)
	if err != nil {
		t.Fatal(err)
	}
	pred := nc.Predict(model.TransformDense(xTest))
	if errRate := srda.ErrorRate(pred, yTest); errRate > 0.05 {
		t.Fatalf("test error %.3f too high", errRate)
	}
}

func TestPublicSparsePath(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, n, c := 150, 400, 3
	b := srda.NewCSRBuilder(m, n)
	labels := make([]int, m)
	for i := 0; i < m; i++ {
		labels[i] = i % c
		// topic block per class + background words
		for k := 0; k < 12; k++ {
			b.Add(i, labels[i]*100+rng.Intn(60), 1)
		}
		for k := 0; k < 6; k++ {
			b.Add(i, 300+rng.Intn(100), 1)
		}
	}
	x := b.Build()
	model, err := srda.FitCSR(x, labels, c, srda.Options{Alpha: 0.5, LSQRIter: 50, Whiten: true})
	if err != nil {
		t.Fatal(err)
	}
	emb := model.TransformSparse(x)
	nc, err := srda.FitNearestCentroid(emb, labels, c)
	if err != nil {
		t.Fatal(err)
	}
	if errRate := srda.ErrorRate(nc.Predict(emb), labels); errRate > 0.02 {
		t.Fatalf("training error %.3f on separable topics", errRate)
	}
}

func TestPublicModelPersistence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := blobs(rng, 60, 8, 2, 5)
	model, err := srda.Fit(x, y, 2, srda.Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := srda.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := model.TransformDense(x), loaded.TransformDense(x)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatal("loaded model disagrees")
			}
		}
	}
}

func TestPublicResponses(t *testing.T) {
	y, err := srda.Responses([]int{0, 1, 2, 0, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if y.Rows != 6 || y.Cols != 2 {
		t.Fatalf("responses %dx%d", y.Rows, y.Cols)
	}
	for j := 0; j < 2; j++ {
		var s float64
		for i := 0; i < 6; i++ {
			s += y.At(i, j)
		}
		if math.Abs(s) > 1e-9 {
			t.Fatalf("response %d not zero-sum", j)
		}
	}
}

func TestPublicBaselines(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := blobs(rng, 100, 10, 4, 6)
	ldaModel, err := srda.FitLDA(x, y, 4, srda.LDAOptions{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ldaModel.Dim() < 1 || ldaModel.Dim() > 3 {
		t.Fatalf("LDA dim %d", ldaModel.Dim())
	}
	idr, err := srda.FitIDRQR(x, y, 4, srda.IDRQROptions{})
	if err != nil {
		t.Fatal(err)
	}
	if idr.Dim() < 1 || idr.Dim() > 3 {
		t.Fatalf("IDR/QR dim %d", idr.Dim())
	}
	sb, sw, st := srda.Scatters(x, y, 4)
	diff := sb.Clone()
	diff.AddScaled(1, sw)
	diff.AddScaled(-1, st)
	if diff.Norm() > 1e-8*(1+st.Norm()) {
		t.Fatal("scatter identity violated via public API")
	}
}

func TestPublicDatasetsAndHarness(t *testing.T) {
	ds := srda.PIELike(srda.PIEConfig{Classes: 4, PerClass: 12, Side: 8, Seed: 5})
	if ds.NumSamples() != 48 {
		t.Fatalf("samples %d", ds.NumSamples())
	}
	r := srda.Runner{Splits: 2, Seed: 6}
	g, err := r.RunPerClassGrid(ds, []srda.Algorithm{srda.AlgoSRDA, srda.AlgoIDRQR}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cells) != 1 || len(g.Cells[0]) != 2 {
		t.Fatal("grid shape wrong")
	}
}

func TestPublicComplexityModel(t *testing.T) {
	p := srda.ComplexityProblem{M: 2000, N: 784, C: 10, K: 20, S: 784}
	rows := srda.ComplexityTable(p)
	if len(rows) != 5 {
		t.Fatalf("%d complexity rows", len(rows))
	}
	if sp := srda.ComplexitySpeedup(p); sp <= 1 {
		t.Fatalf("speedup %v", sp)
	}
}

func TestPublicLibSVM(t *testing.T) {
	ds, err := srda.ReadLibSVM(bytes.NewBufferString("0 1:0.5 3:1\n1 2:2\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSamples() != 2 || ds.NumFeatures() != 3 || ds.NumClasses != 2 {
		t.Fatalf("shape %d/%d/%d", ds.NumSamples(), ds.NumFeatures(), ds.NumClasses)
	}
}

func TestPublicOperatorFit(t *testing.T) {
	// Train through the matrix-free Operator interface.
	rng := rand.New(rand.NewSource(7))
	x, y := blobs(rng, 80, 12, 2, 6)
	model, err := srda.FitOperator(denseOp{x}, y, 2, srda.Options{Alpha: 1, LSQRIter: 100})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := srda.Fit(x, y, 2, srda.Options{Alpha: 1, Solver: srda.SolverLSQR, LSQRIter: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < model.W.Rows; i++ {
		for j := 0; j < model.W.Cols; j++ {
			if math.Abs(model.W.At(i, j)-direct.W.At(i, j)) > 1e-8 {
				t.Fatal("operator fit disagrees with direct LSQR fit")
			}
		}
	}
}

// denseOp adapts a Dense to the public Operator interface, demonstrating
// the matrix-free extension point.
type denseOp struct{ a *srda.Dense }

func (o denseOp) Dims() (int, int)                  { return o.a.Rows, o.a.Cols }
func (o denseOp) Apply(x, dst []float64) []float64  { return o.a.MulVec(x, dst) }
func (o denseOp) ApplyT(x, dst []float64) []float64 { return o.a.MulTVec(x, dst) }

func TestPublicExtensions(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, y := blobs(rng, 90, 10, 3, 8)

	// generalized SR with the class graph reproduces an SRDA-shaped model
	g, err := srda.ClassGraph(y, 3)
	if err != nil {
		t.Fatal(err)
	}
	srModel, err := srda.FitSR(x, g, srda.SROptions{Dim: 2, Alpha: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if srModel.Dim() != 2 {
		t.Fatalf("SR dim %d", srModel.Dim())
	}

	// unsupervised graph path
	knn := srda.KNNGraph(x, srda.KNNGraphOptions{K: 5, Weight: srda.WeightHeat})
	if knn.Size() != 90 {
		t.Fatalf("graph size %d", knn.Size())
	}

	// kernel SRDA
	km, err := srda.FitKSRDA(x, y, 3, srda.KSRDAOptions{Alpha: 1, Kernel: srda.RBFKernel{Gamma: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if km.Dim() != 2 {
		t.Fatalf("KSRDA dim %d", km.Dim())
	}

	// PCA
	p, err := srda.FitPCA(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim() != 3 || p.Transform(x).Cols != 3 {
		t.Fatal("PCA shape wrong")
	}
}

func TestPublicKFoldAlpha(t *testing.T) {
	ds := srda.PIELike(srda.PIEConfig{Classes: 4, PerClass: 15, Side: 8, Seed: 9})
	results, best, err := srda.KFoldAlpha(ds, []float64{0.1, 1, 10}, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || best < 0 || best > 2 {
		t.Fatalf("results %v best %d", results, best)
	}
}

func TestPublicIncrementalSRDA(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x, y := blobs(rng, 60, 9, 3, 6)
	inc, err := srda.NewIncrementalSRDA(9, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := inc.Add(x.RowView(i), y[i]); err != nil {
			t.Fatal(err)
		}
	}
	streamed, err := inc.Model()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := srda.Fit(x, y, 3, srda.Options{Alpha: 1, Solver: srda.SolverPrimal})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < streamed.W.Rows; i++ {
		for j := 0; j < streamed.W.Cols; j++ {
			if math.Abs(streamed.W.At(i, j)-batch.W.At(i, j)) > 1e-7 {
				t.Fatal("incremental and batch models differ")
			}
		}
	}
}

func TestPublicOutOfCoreTraining(t *testing.T) {
	// Build a sparse corpus, write it to disk, train without loading it.
	corpus := srda.NewsLike(srda.NewsConfig{Classes: 3, Docs: 150, Vocab: 800, AvgLen: 30, Seed: 11})
	path := filepath.Join(t.TempDir(), "corpus.csr")
	if err := corpus.Sparse.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	d, err := srda.OpenDiskCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	opt := srda.Options{Alpha: 1, LSQRIter: 15, Workers: 2}
	ooc, err := srda.FitDiskCSR(d, corpus.Labels, corpus.NumClasses, opt)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := srda.FitCSR(corpus.Sparse, corpus.Labels, corpus.NumClasses,
		srda.Options{Alpha: 1, LSQRIter: 15})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ooc.W.Rows; i++ {
		for j := 0; j < ooc.W.Cols; j++ {
			if math.Abs(ooc.W.At(i, j)-mem.W.At(i, j)) > 1e-9 {
				t.Fatal("out-of-core and in-memory models differ")
			}
		}
	}
}

func TestPublicLDAVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x, y := blobs(rng, 40, 60, 3, 8) // n > m so NLDA's null space exists
	ff, err := srda.FitFisherfaces(x, y, 3, srda.FisherfacesOptions{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ff.Dim() < 1 {
		t.Fatal("Fisherfaces produced no directions")
	}
	ol, err := srda.FitOrthogonalLDA(x, y, 3, srda.LDAOptions{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ol.Dim() < 1 {
		t.Fatal("OLDA produced no directions")
	}
	nl, err := srda.FitNullSpaceLDA(x, y, 3, srda.LDAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if nl.Dim() < 1 {
		t.Fatal("NLDA produced no directions")
	}
}

func TestPublicMetrics(t *testing.T) {
	pred := []int{0, 1, 1, 0}
	truth := []int{0, 1, 0, 0}
	m, err := srda.ComputeMetrics(pred, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy != 0.75 {
		t.Fatalf("accuracy %v", m.Accuracy)
	}
	if be, _ := srda.BalancedError(pred, truth, 2); be <= 0 {
		t.Fatalf("balanced error %v", be)
	}
	if mcc, _ := srda.MCC(pred, truth, 2); mcc <= 0 || mcc > 1 {
		t.Fatalf("mcc %v", mcc)
	}
	ranked := [][]int{{0, 1}, {1, 0}, {1, 0}, {0, 1}}
	if top1, _ := srda.TopKAccuracy(ranked, truth, 1); top1 != 0.75 {
		t.Fatalf("top1 %v", top1)
	}
}

func TestPublicGeneratorsAndKNN(t *testing.T) {
	iso := srda.IsoletLike(srda.IsoletConfig{Classes: 3, PerClass: 8, Dim: 30, Seed: 21})
	if iso.NumSamples() != 24 {
		t.Fatalf("isolet %d", iso.NumSamples())
	}
	mni := srda.MNISTLike(srda.MNISTConfig{Classes: 3, PerClass: 8, Side: 8, Seed: 22})
	if mni.NumFeatures() != 64 {
		t.Fatalf("mnist n=%d", mni.NumFeatures())
	}
	rng := rand.New(rand.NewSource(23))
	x, y := blobs(rng, 30, 6, 2, 8)
	model, err := srda.Fit(x, y, 2, srda.Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	emb := model.TransformDense(x)
	knn, err := srda.FitKNN(emb, y, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e := srda.ErrorRate(knn.Predict(emb), y); e > 0.05 {
		t.Fatalf("knn training error %v", e)
	}
}

func TestPublicClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	x, truth := blobs(rng, 60, 4, 3, 10)
	km, err := srda.KMeans(x, 3, srda.KMeansOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(km.Assign) != 60 {
		t.Fatalf("assignments %d", len(km.Assign))
	}
	g := srda.KNNGraph(x, srda.KNNGraphOptions{K: 5})
	sc, err := srda.SpectralCluster(g, 3, srda.SpectralClusterOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// majority-mapping agreement on well-separated blobs must be high
	votes := map[[2]int]int{}
	for i := range sc.Assign {
		votes[[2]int{sc.Assign[i], truth[i]}]++
	}
	correct := 0
	for c := 0; c < 3; c++ {
		best := 0
		for y := 0; y < 3; y++ {
			if v := votes[[2]int{c, y}]; v > best {
				best = v
			}
		}
		correct += best
	}
	if frac := float64(correct) / 60; frac < 0.95 {
		t.Fatalf("spectral agreement %.2f", frac)
	}
}

func TestPublicTextPipeline(t *testing.T) {
	docs := []string{"compiling kernels and linking objects", "kernels compile with linkers",
		"the striker scored goals", "goals win matches for strikers"}
	labels := []int{0, 0, 1, 1}
	vec, ds, err := srda.NewTextVectorizer(docs, labels, 2, srda.TextVectorizerOptions{Stem: true, TFIDF: true})
	if err != nil {
		t.Fatal(err)
	}
	if vec.NumTerms() == 0 || ds.NumSamples() != 4 {
		t.Fatal("vectorizer misbehaved")
	}
	var buf bytes.Buffer
	if err := vec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := srda.LoadTextVectorizer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTerms() != vec.NumTerms() {
		t.Fatal("vectorizer round trip lost terms")
	}
	if srda.StemWord("linking") != "link" {
		t.Fatalf("StemWord: %q", srda.StemWord("linking"))
	}
	if !srda.IsStopWord("and") {
		t.Fatal("IsStopWord")
	}
	if toks := srda.TokenizeText("A b-c"); len(toks) != 3 {
		t.Fatalf("tokens %v", toks)
	}
}

func TestPublic2DLDA(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	side := 8
	m := 60
	x := srda.NewDense(m, side*side)
	labels := make([]int, m)
	for i := 0; i < m; i++ {
		labels[i] = i % 3
		row := x.RowView(i)
		for j := range row {
			row[j] = 0.3 * rng.NormFloat64()
		}
		// class-specific row stripe
		for c := 0; c < side; c++ {
			row[labels[i]*2*side+c] += 2
		}
	}
	model, err := srda.Fit2DLDA(x, side, side, labels, 3, srda.TwoDLDAOptions{DimL: 2, DimR: 2})
	if err != nil {
		t.Fatal(err)
	}
	emb := model.Transform(x)
	if emb.Cols != 4 {
		t.Fatalf("embedding dims %d", emb.Cols)
	}
	nc, err := srda.FitNearestCentroid(emb, labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e := srda.ErrorRate(nc.Predict(emb), labels); e > 0.05 {
		t.Fatalf("2DLDA training error %v", e)
	}
}
