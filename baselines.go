package srda

import (
	"srda/internal/idrqr"
	"srda/internal/lda"
)

// LDAModel is a classical-LDA (or RLDA) transformer trained with FitLDA.
type LDAModel = lda.Model

// LDAOptions configures the classical baseline.
type LDAOptions = lda.Options

// FitLDA trains the classical LDA baseline exactly as the paper's §II-A
// analyzes it: center, thin SVD by the cross-product algorithm, then the
// small class-aggregated eigenproblem.  Alpha > 0 gives regularized LDA
// (RLDA); Alpha = 0 relies on SVD truncation to handle singular scatter.
// Cost is O(m·n·t + t³) time and O(m·n) memory — the quantities SRDA is
// measured against.
func FitLDA(x *Dense, labels []int, numClasses int, opt LDAOptions) (*LDAModel, error) {
	return lda.Fit(x, labels, numClasses, opt)
}

// IDRQRModel is an IDR/QR transformer trained with FitIDRQR.
type IDRQRModel = idrqr.Model

// IDRQROptions configures the IDR/QR baseline.
type IDRQROptions = idrqr.Options

// FitIDRQR trains the IDR/QR baseline (Ye et al., KDD 2004): QR of the
// class-centroid matrix followed by a c×c regularized eigenproblem.
// Very fast — O(m·n·c) — but restricted to the centroid subspace, which
// costs accuracy relative to RLDA/SRDA (the paper's Tables III–IX).
func FitIDRQR(x *Dense, labels []int, numClasses int, opt IDRQROptions) (*IDRQRModel, error) {
	return idrqr.Fit(x, labels, numClasses, opt)
}

// Scatters computes the explicit between-class, within-class and total
// scatter matrices (eq. 2–3) — n×n dense; useful for validation and small
// problems only.
func Scatters(x *Dense, labels []int, numClasses int) (sb, sw, st *Dense) {
	return lda.Scatters(x, labels, numClasses)
}

// FisherfacesModel is the two-stage PCA+LDA transformer.
type FisherfacesModel = lda.Fisherfaces

// FisherfacesOptions configures the PCA+LDA pipeline.
type FisherfacesOptions = lda.FisherfacesOptions

// FitFisherfaces trains the classic PCA+LDA pipeline (Belhumeur et al.
// 1997) — the "additional preprocessing" route to nonsingular scatter
// matrices the paper's introduction describes.
func FitFisherfaces(x *Dense, labels []int, numClasses int, opt FisherfacesOptions) (*FisherfacesModel, error) {
	return lda.FitFisherfaces(x, labels, numClasses, opt)
}

// FitOrthogonalLDA trains OLDA: (R)LDA directions re-orthonormalized so
// the projection basis satisfies AᵀA = I.
func FitOrthogonalLDA(x *Dense, labels []int, numClasses int, opt LDAOptions) (*LDAModel, error) {
	return lda.FitOrthogonal(x, labels, numClasses, opt)
}

// FitNullSpaceLDA trains NLDA (Chen et al. 2000): discriminants inside
// null(S_w), the small-sample variant that collapses training classes
// exactly; errors when m is too large for a nonempty null space.
func FitNullSpaceLDA(x *Dense, labels []int, numClasses int, opt LDAOptions) (*LDAModel, error) {
	return lda.FitNullSpace(x, labels, numClasses, opt)
}

// TwoDLDAModel is the matrix-variate 2D-LDA transformer.
type TwoDLDAModel = lda.TwoDLDA

// TwoDLDAOptions configures 2D-LDA training.
type TwoDLDAOptions = lda.TwoDLDAOptions

// Fit2DLDA trains two-dimensional LDA (Ye, Janardan, Li — NIPS 2004) on
// vectorized images of shape imgRows×imgCols: bilinear projections LᵀAR
// learned by alternating side-sized eigenproblems, sidestepping the
// vector-LDA singularity issue without SVD or regression.
func Fit2DLDA(x *Dense, imgRows, imgCols int, labels []int, numClasses int, opt TwoDLDAOptions) (*TwoDLDAModel, error) {
	return lda.Fit2D(x, imgRows, imgCols, labels, numClasses, opt)
}

// FitMMC trains the Maximum Margin Criterion variant (Li et al.):
// maximize tr(Aᵀ(S_b − S_w)A) with an orthonormal basis — no matrix
// inversion, so no singularity problem, at the cost of ignoring the
// within-class metric.
func FitMMC(x *Dense, labels []int, numClasses int, opt LDAOptions) (*LDAModel, error) {
	return lda.FitMMC(x, labels, numClasses, opt)
}
