package srda_test

import (
	"math"
	"math/rand"
	"testing"

	srda "srda"
)

// TestStreamingMatchesBatch is the golden train-while-serving contract:
// streaming a seeded dataset through the trainer sample by sample and
// refitting at the end yields a model bitwise identical — projections
// included — to the batch primal Fit on the same rows, at every worker
// count.  Any change to the Gram accumulation order, the augmentation,
// or the solve path breaks this at the Float64bits level.
func TestStreamingMatchesBatch(t *testing.T) {
	const m, n, c = 150, 24, 3
	rng := rand.New(rand.NewSource(2008))
	x := srda.NewDense(m, n)
	labels := make([]int, m)
	for i := 0; i < m; i++ {
		labels[i] = i % c
		row := x.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64() + float64(labels[i])
			if rng.Float64() < 0.25 {
				row[j] = 0 // exact zeros exercise the shared sparsity skip
			}
		}
	}
	probe := srda.NewDense(10, n)
	for i := 0; i < probe.Rows; i++ {
		row := probe.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
	}

	for _, workers := range []int{1, 2, 4} {
		tr, err := srda.NewStreamTrainer(srda.StreamConfig{
			NumFeatures: n, NumClasses: c,
			Alpha:   1,
			Workers: workers,
			// No holdout, no triggers: every sample trains, one refit at
			// the end — the configuration the bitwise contract is stated
			// for.
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < m; i++ {
			if err := tr.Observe(x.RowView(i), labels[i]); err != nil {
				t.Fatalf("workers=%d observe %d: %v", workers, i, err)
			}
		}
		streamed, _, err := tr.Refit()
		if err != nil {
			t.Fatalf("workers=%d refit: %v", workers, err)
		}
		batch, err := srda.Fit(x, labels, c, srda.Options{
			Alpha: 1, Solver: srda.SolverPrimal, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d batch fit: %v", workers, err)
		}

		assertBits := func(name string, got, want []float64) {
			t.Helper()
			if len(got) != len(want) {
				t.Fatalf("workers=%d %s: length %d vs %d", workers, name, len(got), len(want))
			}
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("workers=%d %s[%d] = %v (%#x), want %v (%#x)",
						workers, name, i, got[i], math.Float64bits(got[i]),
						want[i], math.Float64bits(want[i]))
				}
			}
		}
		assertBits("W", streamed.W.Data, batch.W.Data)
		assertBits("B", streamed.B, batch.B)
		if streamed.Centroids == nil || batch.Centroids == nil {
			t.Fatalf("workers=%d: missing centroids", workers)
		}
		assertBits("Centroids", streamed.Centroids.Data, batch.Centroids.Data)
		assertBits("projection", streamed.TransformDense(probe).Data,
			batch.TransformDense(probe).Data)
		for i := 0; i < probe.Rows; i++ {
			sp := streamed.PredictVec(probe.RowView(i))
			bp := batch.PredictVec(probe.RowView(i))
			if sp != bp {
				t.Fatalf("workers=%d probe %d: streamed class %d, batch class %d", workers, i, sp, bp)
			}
		}
	}
}
