package srda_test

// Integration tests: cross-module pipelines exercised end to end through
// the public API, the scenarios a downstream user actually composes.

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"srda"
)

// TestIntegrationPCAThenSRDA chains the two-stage pipeline manually: PCA
// compression followed by SRDA in the reduced space must classify
// comparably to SRDA on the raw features while fitting faster models.
func TestIntegrationPCAThenSRDA(t *testing.T) {
	ds := srda.PIELike(srda.PIEConfig{Classes: 8, PerClass: 30, Side: 16, Seed: 301})
	rng := rand.New(rand.NewSource(301))
	train, test, err := ds.SplitPerClass(rng, 12)
	if err != nil {
		t.Fatal(err)
	}

	direct, err := srda.Fit(train.Dense, train.Labels, train.NumClasses,
		srda.Options{Alpha: 1, Whiten: true})
	if err != nil {
		t.Fatal(err)
	}
	directErr := srda.ErrorRate(direct.PredictDense(test.Dense), test.Labels)

	pca, err := srda.FitPCA(train.Dense, 40)
	if err != nil {
		t.Fatal(err)
	}
	zTrain := pca.Transform(train.Dense)
	reduced, err := srda.Fit(zTrain, train.Labels, train.NumClasses,
		srda.Options{Alpha: 1, Whiten: true})
	if err != nil {
		t.Fatal(err)
	}
	reducedErr := srda.ErrorRate(reduced.PredictDense(pca.Transform(test.Dense)), test.Labels)

	if reducedErr > directErr+0.1 {
		t.Fatalf("PCA+SRDA %.3f much worse than direct SRDA %.3f", reducedErr, directErr)
	}
	if pca.ExplainedRatio() <= 0 || pca.ExplainedRatio() > 1 {
		t.Fatalf("explained ratio %v", pca.ExplainedRatio())
	}
}

// TestIntegrationTextToModelFile walks the full text pathway: raw strings
// → vectorizer → sparse SRDA → serialized model+vectorizer → reload →
// classify new text.
func TestIntegrationTextToModelFile(t *testing.T) {
	docs := []string{
		"compilers optimize loops and registers", "the linker resolves symbols in objects",
		"kernels schedule threads and processes", "debuggers inspect stack frames",
		"the striker scored twice in the final", "the goalkeeper saved a penalty kick",
		"fans celebrated the championship win", "the coach rotated the defensive line",
	}
	labels := []int{0, 0, 0, 0, 1, 1, 1, 1}
	vec, ds, err := srda.NewTextVectorizer(docs, labels, 2,
		srda.TextVectorizerOptions{Stem: true, TFIDF: true})
	if err != nil {
		t.Fatal(err)
	}
	model, err := srda.FitCSR(ds.Sparse, ds.Labels, 2,
		srda.Options{Alpha: 0.1, LSQRIter: 100, Whiten: true})
	if err != nil {
		t.Fatal(err)
	}

	var modelBuf, vecBuf bytes.Buffer
	if err := model.Save(&modelBuf); err != nil {
		t.Fatal(err)
	}
	if err := vec.Save(&vecBuf); err != nil {
		t.Fatal(err)
	}
	loadedModel, err := srda.LoadModel(&modelBuf)
	if err != nil {
		t.Fatal(err)
	}
	loadedVec, err := srda.LoadTextVectorizer(&vecBuf)
	if err != nil {
		t.Fatal(err)
	}

	unseen := []string{
		"the compiler emits optimized object code",
		"a dramatic goal won the match",
	}
	pred := loadedModel.PredictSparse(loadedVec.Transform(unseen))
	if pred[0] != 0 || pred[1] != 1 {
		t.Fatalf("predictions %v, want [0 1]", pred)
	}
}

// TestIntegrationStreamingMatchesDiskMatchesBatch ties three training
// modes together: batch, incremental, and out-of-core must agree on the
// same data (batch≡incremental exactly; disk≡in-memory-LSQR exactly).
func TestIntegrationStreamingMatchesDiskMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	m, n, c := 80, 15, 3
	x := srda.NewDense(m, n)
	labels := make([]int, m)
	for i := 0; i < m; i++ {
		labels[i] = i % c
		row := x.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		row[0] += 5 * float64(labels[i])
	}

	batch, err := srda.Fit(x, labels, c, srda.Options{Alpha: 1, Solver: srda.SolverPrimal})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := srda.NewIncrementalSRDA(n, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		if err := inc.Add(x.RowView(i), labels[i]); err != nil {
			t.Fatal(err)
		}
	}
	streamed, err := inc.Model()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < c-1; j++ {
			if math.Abs(batch.W.At(i, j)-streamed.W.At(i, j)) > 1e-7 {
				t.Fatal("incremental diverged from batch")
			}
		}
	}

	// out-of-core vs in-memory LSQR on a sparse version of the same data
	b := srda.NewCSRBuilder(m, n)
	for i := 0; i < m; i++ {
		row := x.RowView(i)
		for j, v := range row {
			b.Add(i, j, v)
		}
	}
	cs := b.Build()
	path := t.TempDir() + "/x.csr"
	if err := cs.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	d, err := srda.OpenDiskCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	opt := srda.Options{Alpha: 1, LSQRIter: 50}
	ooc, err := srda.FitDiskCSR(d, labels, c, opt)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := srda.FitCSR(cs, labels, c, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < c-1; j++ {
			if ooc.W.At(i, j) != mem.W.At(i, j) {
				t.Fatal("out-of-core diverged from in-memory")
			}
		}
	}
}

// TestIntegrationGraphFamilyConsistency runs the three graph regimes on
// one dataset: supervised SR ≈ SRDA; semi-supervised with all labels
// revealed ≈ supervised; unsupervised clusters align with classes.
func TestIntegrationGraphFamilyConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	m, n, c := 120, 12, 3
	x := srda.NewDense(m, n)
	labels := make([]int, m)
	for i := 0; i < m; i++ {
		labels[i] = i % c
		row := x.RowView(i)
		for j := range row {
			row[j] = 0.4 * rng.NormFloat64()
		}
		row[0] += 6 * float64(labels[i])
		row[1] += 3 * float64((labels[i]*2)%c)
	}

	// supervised SR ≡ SRDA geometry (pairwise distances)
	g, err := srda.ClassGraph(labels, c)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := srda.FitSR(x, g, srda.SROptions{Dim: c - 1, Alpha: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := srda.Fit(x, labels, c, srda.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := sr.TransformDense(x), plain.TransformDense(x)
	for trial := 0; trial < 30; trial++ {
		a, bIdx := rng.Intn(m), rng.Intn(m)
		d1 := rowDistance(e1, a, bIdx)
		d2 := rowDistance(e2, a, bIdx)
		if math.Abs(d1-d2) > 1e-4*(1+d1) {
			t.Fatalf("SR/SRDA geometry mismatch: %v vs %v", d1, d2)
		}
	}

	// unsupervised spectral clustering recovers the classes
	knn := srda.KNNGraph(x, srda.KNNGraphOptions{K: 6})
	sc, err := srda.SpectralCluster(knn, c, srda.SpectralClusterOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	votes := map[[2]int]int{}
	for i := range sc.Assign {
		votes[[2]int{sc.Assign[i], labels[i]}]++
	}
	correct := 0
	for k := 0; k < c; k++ {
		best := 0
		for y := 0; y < c; y++ {
			if v := votes[[2]int{k, y}]; v > best {
				best = v
			}
		}
		correct += best
	}
	if frac := float64(correct) / float64(m); frac < 0.95 {
		t.Fatalf("unsupervised clustering agreement %.2f", frac)
	}
}

// TestIntegrationCVPicksSensibleAlphaUnderNoise couples label corruption
// with cross-validation: with noisy labels, CV should not pick the
// weakest regularizer.
func TestIntegrationCVPicksSensibleAlphaUnderNoise(t *testing.T) {
	ds := srda.PIELike(srda.PIEConfig{Classes: 6, PerClass: 24, Side: 12, Seed: 305})
	noisy, _ := srda.CorruptLabels(ds, rand.New(rand.NewSource(305)), 0.25)
	alphas := []float64{1e-6, 1, 100}
	results, best, err := srda.KFoldAlpha(noisy, alphas, 3, 305)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	if best == 0 {
		t.Fatalf("CV picked α=1e-6 under 25%% label noise (errors: %.1f / %.1f / %.1f)",
			results[0].MeanErr, results[1].MeanErr, results[2].MeanErr)
	}
}

func rowDistance(e *srda.Dense, i, p int) float64 {
	var d float64
	for j := 0; j < e.Cols; j++ {
		diff := e.At(i, j) - e.At(p, j)
		d += diff * diff
	}
	return math.Sqrt(d)
}
