// Command srdabench regenerates the tables and figures of "Training
// Linear Discriminant Analysis in Linear Time" (Cai, He, Han — ICDE 2008)
// on the synthetic paper-shaped datasets shipped with this repository.
//
// Usage:
//
//	srdabench -exp table3                # one experiment
//	srdabench -exp all                   # everything
//	srdabench -exp fig5 -scale paper     # full paper-sized datasets (slow)
//	srdabench -exp table9 -csv           # machine-readable output
//	srdabench -exp ablation-solver       # beyond-the-paper ablations
//
// Experiments: table1 table2 table3 table4 table5 table6 table7 table8
// table9 table10 fig1 fig2 fig3 fig4 fig5 ablation-solver
// ablation-lsqr-iters ablation-centering ablation-incremental
// ablation-outofcore ablation-scaling ablation-rsvd extended all.
//
// -scale small (default) shrinks every dataset so the whole suite runs in
// minutes on a laptop; -scale paper uses the paper's exact (m, n, c)
// shapes.  Error-rate and timing *shapes* (who wins, by what factor,
// where LDA destabilizes or runs out of memory) are the reproduction
// targets; see EXPERIMENTS.md for the recorded side-by-side.
//
// Observability: -report out.json writes a structured run report with one
// phase per experiment (validate or summarize it with srdareport);
// -profile p writes p.cpu.pprof and p.heap.pprof; -trace t.out writes a
// runtime/trace.  -json-out bench.json skips the experiments and instead
// times the fixed-shape micro-benchmarks (PredictBatch, ParGemm, FitLSQR),
// writing a schema-validated bench report that `srdareport benchdiff`
// compares across commits (`make bench-record` pins one as BENCH_<k>.json).
// See doc/OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"time"

	"srda"
	"srda/internal/obs"
)

type scaleSpec struct {
	pie       srda.PIEConfig
	pieSizes  []int
	isolet    srda.IsoletConfig
	isoSizes  []int
	mnist     srda.MNISTConfig
	mniSizes  []int
	news      srda.NewsConfig
	newsFracs []float64
	// newsMemLimit scales the paper's 2 GB wall down with the dataset so
	// the Table IX/X "—" cells appear at the same relative sizes.
	newsMemLimit float64
}

func scales(seed int64) map[string]scaleSpec {
	return map[string]scaleSpec{
		"small": {
			pie:          srda.PIEConfig{Classes: 20, PerClass: 40, Side: 16, Seed: seed},
			pieSizes:     []int{3, 5, 8, 12, 16, 20},
			isolet:       srda.IsoletConfig{Classes: 12, PerClass: 60, Dim: 160, Seed: seed + 1},
			isoSizes:     []int{5, 8, 12, 18, 25, 35},
			mnist:        srda.MNISTConfig{Classes: 10, PerClass: 100, Side: 16, Seed: seed + 2},
			mniSizes:     []int{8, 12, 20, 30, 40, 50},
			news:         srda.NewsConfig{Classes: 8, Docs: 1600, Vocab: 4000, AvgLen: 60, Seed: seed + 3},
			newsFracs:    []float64{0.05, 0.10, 0.20, 0.30, 0.40, 0.50},
			newsMemLimit: 16 << 20,
		},
		"paper": {
			pie:          srda.PIEConfig{Seed: seed}, // 68×170, 32×32
			pieSizes:     []int{10, 20, 30, 40, 50, 60},
			isolet:       srda.IsoletConfig{Seed: seed + 1}, // 26×240, 617
			isoSizes:     []int{20, 30, 50, 70, 90, 110},
			mnist:        srda.MNISTConfig{Seed: seed + 2}, // 10×400, 28×28
			mniSizes:     []int{30, 50, 70, 100, 130, 170},
			news:         srda.NewsConfig{Seed: seed + 3}, // 20×18941, 26214
			newsFracs:    []float64{0.05, 0.10, 0.20, 0.30, 0.40, 0.50},
			newsMemLimit: 2 << 30,
		},
	}
}

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id (table1..table10, fig1..fig5, ablation-*, all)")
		scale     = flag.String("scale", "small", "dataset scale: small or paper")
		splits    = flag.Int("splits", 5, "random train/test splits per cell (paper uses 20)")
		seed      = flag.Int64("seed", 2008, "RNG seed")
		csv       = flag.Bool("csv", false, "emit CSV instead of formatted tables")
		algos     = flag.String("algos", "", "comma-separated algorithm subset for the table/figure grids (e.g. \"SRDA,IDR/QR\"); empty = all four")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "parallelism for SRDA fits (kernels + per-response solves); results are bitwise identical at any setting")
		report    = flag.String("report", "", "write a structured JSON run report (one phase per experiment) to this path")
		profile   = flag.String("profile", "", "write CPU and heap profiles to <prefix>.cpu.pprof and <prefix>.heap.pprof")
		tracePath = flag.String("trace", "", "write a runtime/trace to this path")
		jsonOut   = flag.String("json-out", "", "run the fixed-shape micro-benchmarks instead of -exp and write the bench report here")
	)
	flag.Parse()

	if *jsonOut != "" {
		if err := runMicroBench(*jsonOut, *workers); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	spec, ok := scales(*seed)[*scale]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small or paper)\n", *scale)
		os.Exit(2)
	}
	b := bench{spec: spec, splits: *splits, seed: *seed, csv: *csv, scale: *scale, workers: *workers}
	if *algos != "" {
		for _, name := range strings.Split(*algos, ",") {
			b.algos = append(b.algos, srda.Algorithm(strings.TrimSpace(name)))
		}
	}

	order := []string{
		"table1", "table2",
		"table3", "table4", "table5", "table6", "table7", "table8",
		"table9", "table10",
		"fig1", "fig2", "fig3", "fig4", "fig5",
		"ablation-solver", "ablation-lsqr-iters", "ablation-centering",
		"ablation-incremental", "ablation-outofcore",
		"ablation-scaling", "ablation-rsvd", "ablation-labelnoise", "extended",
	}
	run := map[string]func() error{
		"table1":               b.table1,
		"table2":               b.table2,
		"table3":               func() error { return b.denseGrid("pie", false) },
		"table4":               func() error { return b.denseGrid("pie", true) },
		"table5":               func() error { return b.denseGrid("isolet", false) },
		"table6":               func() error { return b.denseGrid("isolet", true) },
		"table7":               func() error { return b.denseGrid("mnist", false) },
		"table8":               func() error { return b.denseGrid("mnist", true) },
		"table9":               func() error { return b.newsGrid(false) },
		"table10":              func() error { return b.newsGrid(true) },
		"fig1":                 func() error { return b.figure("pie") },
		"fig2":                 func() error { return b.figure("isolet") },
		"fig3":                 func() error { return b.figure("mnist") },
		"fig4":                 func() error { return b.figure("news") },
		"fig5":                 b.fig5,
		"ablation-solver":      b.ablationSolver,
		"ablation-lsqr-iters":  b.ablationLSQRIters,
		"ablation-centering":   b.ablationCentering,
		"ablation-incremental": b.ablationIncremental,
		"ablation-outofcore":   b.ablationOutOfCore,
		"ablation-scaling":     b.ablationScaling,
		"ablation-rsvd":        b.ablationRSVD,
		"ablation-labelnoise":  b.ablationLabelNoise,
		"extended":             b.extendedComparison,
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = order
	}
	// Validate every id up front so we never exit mid-run with profiling
	// still active and an unflushed trace.
	for _, id := range ids {
		if _, ok := run[id]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
	}
	if err := runExperiments(ids, run, benchObs{
		scale: *scale, splits: *splits, seed: *seed,
		report: *report, profile: *profile, trace: *tracePath,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// benchObs bundles the observability flags plus the run parameters echoed
// into the report's data map.
type benchObs struct {
	scale           string
	splits          int
	seed            int64
	report, profile string
	trace           string
}

// runExperiments executes the selected experiments in order, timing each
// as one report phase, with profiling/tracing active across the whole run.
func runExperiments(ids []string, run map[string]func() error, o benchObs) (err error) {
	stopProfiles, err := obs.StartProfiles(o.profile, o.trace)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	begin := time.Now()
	phases := make([]obs.Phase, 0, len(ids))
	for _, id := range ids {
		fmt.Printf("==== %s (scale=%s, splits=%d) ====\n", id, o.scale, o.splits)
		start := time.Now()
		if err := run[id](); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		elapsed := time.Since(start)
		phases = append(phases, obs.Phase{Name: id, Seconds: elapsed.Seconds()})
		fmt.Printf("---- %s done in %s ----\n\n", id, elapsed.Round(time.Millisecond))
	}
	if o.report == "" {
		return nil
	}
	rep := obs.Report{
		Tool:         "srdabench",
		Phases:       phases,
		TotalSeconds: time.Since(begin).Seconds(),
		Data: map[string]float64{
			"experiments": float64(len(ids)),
			"splits":      float64(o.splits),
			"seed":        float64(o.seed),
		},
	}
	if err := rep.WriteFile(o.report); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", o.report)
	return nil
}

type bench struct {
	spec    scaleSpec
	splits  int
	seed    int64
	csv     bool
	scale   string
	workers int
	algos   []srda.Algorithm
	cache   map[string]*srda.Dataset
}

// algorithms returns the grid's algorithm set (the paper's four unless
// -algos narrowed it).
func (b *bench) algorithms() []srda.Algorithm {
	if len(b.algos) > 0 {
		return b.algos
	}
	return srda.AllAlgorithms
}

func (b *bench) dataset(name string) *srda.Dataset {
	if b.cache == nil {
		b.cache = map[string]*srda.Dataset{}
	}
	if ds, ok := b.cache[name]; ok {
		return ds
	}
	var ds *srda.Dataset
	switch name {
	case "pie":
		ds = srda.PIELike(b.spec.pie)
	case "isolet":
		ds = srda.IsoletLike(b.spec.isolet)
	case "mnist":
		ds = srda.MNISTLike(b.spec.mnist)
	case "news":
		ds = srda.NewsLike(b.spec.news)
	default:
		panic("unknown dataset " + name)
	}
	b.cache[name] = ds
	return ds
}

func (b *bench) runner() srda.Runner {
	return srda.Runner{Splits: b.splits, Seed: b.seed, Alpha: 1, LSQRIter: 15, Workers: b.workers}
}

// table1 prints the complexity model for every dataset shape.
func (b *bench) table1() error {
	fmt.Println("Table I — operation counts (flam) and memory of LDA vs SRDA")
	shapes := []struct {
		name string
		p    srda.ComplexityProblem
	}{
		{"PIE (p=60)", srda.ComplexityProblem{M: 60 * 68, N: 1024, C: 68, K: 20, S: 1024}},
		{"Isolet (p=110)", srda.ComplexityProblem{M: 110 * 26, N: 617, C: 26, K: 20, S: 617}},
		{"MNIST (p=170)", srda.ComplexityProblem{M: 1700, N: 784, C: 10, K: 20, S: 784}},
		{"20News (50%)", srda.ComplexityProblem{M: 9470, N: 26214, C: 20, K: 15, S: 80}},
	}
	for _, sh := range shapes {
		fmt.Printf("\n%s: m=%d n=%d c=%d k=%d s=%.0f\n", sh.name, sh.p.M, sh.p.N, sh.p.C, sh.p.K, sh.p.S)
		fmt.Printf("  %-26s %14s %14s\n", "algorithm", "flam", "memory")
		for _, row := range srda.ComplexityTable(sh.p) {
			fmt.Printf("  %-26s %14.3g %13.3gB\n", row.Algorithm, row.Flam, row.Bytes())
		}
		fmt.Printf("  modeled LDA/SRDA speedup: %.2fx (paper's bound: ≤ ~9x)\n", srda.ComplexitySpeedup(sh.p))
	}
	return nil
}

// table2 prints the dataset statistics.
func (b *bench) table2() error {
	fmt.Println("Table II — statistics of the data sets")
	fmt.Printf("%-14s %8s %8s %6s %10s %10s\n", "dataset", "size(m)", "dim(n)", "c", "avg nnz(s)", "density")
	for _, name := range []string{"pie", "isolet", "mnist", "news"} {
		s := b.dataset(name).Describe()
		fmt.Printf("%-14s %8d %8d %6d %10.1f %10.4f\n",
			s.Name, s.Size, s.Dim, s.Classes, s.AvgNNZ, s.SparseRatio)
	}
	return nil
}

func (b *bench) gridFor(name string) (*srda.Grid, error) {
	r := b.runner()
	switch name {
	case "pie":
		return r.RunPerClassGrid(b.dataset("pie"), b.algorithms(), b.spec.pieSizes)
	case "isolet":
		return r.RunPerClassGrid(b.dataset("isolet"), b.algorithms(), b.spec.isoSizes)
	case "mnist":
		return r.RunPerClassGrid(b.dataset("mnist"), b.algorithms(), b.spec.mniSizes)
	case "news":
		r.MemoryLimitBytes = b.spec.newsMemLimit
		return r.RunFractionGrid(b.dataset("news"), b.algorithms(), b.spec.newsFracs)
	}
	return nil, fmt.Errorf("unknown dataset %q", name)
}

// gridCache avoids recomputing a dataset's grid when both its error and
// time tables (or its figure) are requested in one invocation.
var gridCache = map[string]*srda.Grid{}

// benchGridKey names a grid cache entry by everything that affects it.
func benchGridKey(b *bench, name string) string {
	return fmt.Sprintf("%s/%s/%d/%d/%v", name, b.scale, b.splits, b.seed, b.algorithms())
}

func (b *bench) grid(name string) (*srda.Grid, error) {
	key := benchGridKey(b, name)
	if g, ok := gridCache[key]; ok {
		return g, nil
	}
	g, err := b.gridFor(name)
	if err != nil {
		return nil, err
	}
	gridCache[key] = g
	return g, nil
}

func (b *bench) denseGrid(name string, times bool) error {
	g, err := b.grid(name)
	if err != nil {
		return err
	}
	if b.csv {
		fmt.Print(g.CSV())
		return nil
	}
	if times {
		fmt.Print(g.RenderTimeTable())
	} else {
		fmt.Print(g.RenderErrorTable())
	}
	return nil
}

func (b *bench) newsGrid(times bool) error { return b.denseGrid("news", times) }

func (b *bench) figure(name string) error {
	g, err := b.grid(name)
	if err != nil {
		return err
	}
	if b.csv {
		fmt.Print(g.CSV())
		return nil
	}
	fmt.Print(g.RenderFigure(false))
	fmt.Println()
	fmt.Print(g.RenderFigure(true))
	return nil
}

// fig5 sweeps α/(1+α) on the eight panels of Figure 5.
func (b *bench) fig5() error {
	ratios := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	r := b.runner()
	// Clamp grid indices so shrunken test specs still map to panels.
	pickInt := func(sizes []int, i int) int {
		if i >= len(sizes) {
			i = len(sizes) - 1
		}
		return sizes[i]
	}
	panels := []struct {
		ds       string
		perClass int
		frac     float64
	}{
		{"pie", pickInt(b.spec.pieSizes, 0), 0},
		{"pie", pickInt(b.spec.pieSizes, 2), 0},
		{"isolet", pickInt(b.spec.isoSizes, 2), 0},
		{"isolet", pickInt(b.spec.isoSizes, 4), 0},
		{"mnist", pickInt(b.spec.mniSizes, 0), 0},
		{"mnist", pickInt(b.spec.mniSizes, 3), 0},
		{"news", 0, b.spec.newsFracs[0]},
		{"news", 0, b.spec.newsFracs[1]},
	}
	for i, p := range panels {
		if p.ds == "news" {
			r.MemoryLimitBytes = b.spec.newsMemLimit
		} else {
			r.MemoryLimitBytes = 0
		}
		sweep, err := r.AlphaSweep(b.dataset(p.ds), p.perClass, p.frac, ratios)
		if err != nil {
			return fmt.Errorf("panel %c: %w", 'a'+i, err)
		}
		fmt.Printf("(%c) ", 'a'+i)
		if b.csv {
			fmt.Println()
			fmt.Print(sweep.CSV())
		} else {
			fmt.Print(sweep.RenderSweep())
			fmt.Println()
		}
	}
	return nil
}

// ablationSolver compares SRDA's three solver strategies across problem
// shapes, locating the primal/dual crossover the complexity model
// predicts at m ≈ n.
func (b *bench) ablationSolver() error {
	fmt.Println("Ablation — SRDA solver strategies (training seconds, same fit)")
	fmt.Printf("%-22s %10s %10s %10s\n", "shape", "primal", "dual", "lsqr")
	for _, sh := range []struct{ m, n int }{
		{200, 800}, {400, 400}, {800, 200}, {1600, 100},
	} {
		ds := srda.PIELike(srda.PIEConfig{
			Classes: 10, PerClass: sh.m / 10, Side: isqrt(sh.n), Seed: b.seed,
		})
		x, labels := ds.Dense, ds.Labels
		var secs [3]float64
		for i, solver := range []srda.Solver{srda.SolverPrimal, srda.SolverDual, srda.SolverLSQR} {
			start := time.Now()
			if _, err := srda.Fit(x, labels, ds.NumClasses, srda.Options{
				Alpha: 1, Solver: solver, LSQRIter: 30, Workers: b.workers,
			}); err != nil {
				return err
			}
			secs[i] = time.Since(start).Seconds()
		}
		fmt.Printf("m=%-6d n=%-11d %10.4f %10.4f %10.4f\n", sh.m, isqrt(sh.n)*isqrt(sh.n), secs[0], secs[1], secs[2])
	}
	fmt.Println("expected: primal wins for n << m, dual for n >> m (eq. 20 vs 21)")
	return nil
}

// ablationLSQRIters shows error as a function of the LSQR iteration cap —
// the paper's claim that 15–20 iterations suffice.
func (b *bench) ablationLSQRIters() error {
	fmt.Println("Ablation — LSQR iteration cap vs test error (sparse SRDA)")
	ds := b.dataset("news")
	r := b.runner()
	fmt.Printf("%-8s %12s %12s\n", "iters", "error (%)", "time (s)")
	for _, k := range []int{2, 5, 10, 15, 20, 30} {
		r.LSQRIter = k
		g, err := r.RunFractionGrid(ds, []srda.Algorithm{srda.AlgoSRDA}, []float64{b.spec.newsFracs[1]})
		if err != nil {
			return err
		}
		c := g.Cells[0][0]
		fmt.Printf("%-8d %12.2f %12.4f\n", k, c.MeanErr, c.MeanTime)
	}
	fmt.Println("expected: error flattens by k≈15 (the paper's setting)")
	return nil
}

// ablationCentering quantifies the paper's intercept-absorption trick:
// explicit centering densifies sparse data; the trick keeps it sparse.
func (b *bench) ablationCentering() error {
	ds := b.dataset("news")
	s := ds.Describe()
	sparseBytes := 8 * float64(ds.NumSamples()) * s.AvgNNZ
	denseBytes := 8 * float64(ds.NumSamples()) * float64(ds.NumFeatures())
	fmt.Println("Ablation — intercept absorption vs explicit centering (memory)")
	fmt.Printf("dataset: %s, m=%d n=%d avg-nnz=%.1f\n", s.Name, s.Size, s.Dim, s.AvgNNZ)
	fmt.Printf("  sparse + intercept trick : %10.3g bytes (CSR values)\n", sparseBytes)
	fmt.Printf("  explicitly centered      : %10.3g bytes (fully dense)\n", denseBytes)
	fmt.Printf("  blowup                   : %10.1fx\n", denseBytes/sparseBytes)
	fmt.Println(strings.TrimSpace(`
The trick is exact, not an approximation: appending a constant-1 feature
and ridge-regressing fits the same aᵀx+b objective as centering (paper
§III-B), which the regress package's tests verify against the explicit
construction.`))
	return nil
}

// isqrt returns the integer square root used to pick image sides.
func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

// ablationIncremental compares streaming updates against batch refits:
// the amortized per-sample cost of the incremental trainer vs refitting
// from scratch at every arrival.
func (b *bench) ablationIncremental() error {
	fmt.Println("Ablation — incremental SRDA vs batch refits (total seconds to process a stream)")
	ds := srda.PIELike(srda.PIEConfig{Classes: 8, PerClass: 60, Side: 14, Seed: b.seed})
	// interleave classes so every prefix of the stream covers all of them
	perm := rand.New(rand.NewSource(b.seed)).Perm(ds.NumSamples())
	shuffled := ds.Subset(perm)
	x, labels := shuffled.Dense, shuffled.Labels
	n := ds.NumFeatures()
	fmt.Printf("%-10s %14s %14s %12s\n", "stream m", "incremental", "batch-refit", "speedup")
	for _, m := range []int{60, 120, 240, 480} {
		// incremental: one Add per sample + one final Model()
		start := time.Now()
		inc, err := srda.NewIncrementalSRDA(n, ds.NumClasses, 1)
		if err != nil {
			return err
		}
		for i := 0; i < m; i++ {
			if err := inc.Add(x.RowView(i), labels[i]); err != nil {
				return err
			}
		}
		if _, err := inc.Model(); err != nil {
			return err
		}
		incSec := time.Since(start).Seconds()

		// batch: refit from scratch every 20 arrivals (a generous refresh
		// cadence for the batch side)
		start = time.Now()
		for upTo := 20; upTo <= m; upTo += 20 {
			sub := x.Slice(0, upTo, 0, n)
			if _, err := srda.Fit(sub.Clone(), labels[:upTo], ds.NumClasses,
				srda.Options{Alpha: 1, Solver: srda.SolverPrimal, Workers: b.workers}); err != nil {
				return err
			}
		}
		batchSec := time.Since(start).Seconds()
		fmt.Printf("%-10d %14.4f %14.4f %11.1fx\n", m, incSec, batchSec, batchSec/incSec)
	}
	fmt.Println("expected: incremental advantage grows linearly with stream length")
	return nil
}

// ablationOutOfCore verifies the paper's disk-I/O claim end to end: train
// from a file-backed CSR and compare against the in-memory result.
func (b *bench) ablationOutOfCore() error {
	fmt.Println("Ablation — out-of-core SRDA (file-backed CSR vs in-memory)")
	ds := b.dataset("news")
	dir, err := os.MkdirTemp("", "srda-ooc")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }() // best-effort temp cleanup
	path := dir + "/corpus.csr"
	if err := ds.Sparse.WriteFile(path); err != nil {
		return err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	d, err := srda.OpenDiskCSR(path)
	if err != nil {
		return err
	}
	defer func() { _ = d.Close() }() // read-only; nothing to flush

	opt := srda.Options{Alpha: 1, LSQRIter: 15, Workers: b.workers}
	start := time.Now()
	ooc, err := srda.FitDiskCSR(d, ds.Labels, ds.NumClasses, opt)
	if err != nil {
		return err
	}
	oocSec := time.Since(start).Seconds()
	start = time.Now()
	mem, err := srda.FitCSR(ds.Sparse, ds.Labels, ds.NumClasses, opt)
	if err != nil {
		return err
	}
	memSec := time.Since(start).Seconds()

	var worst float64
	for i := 0; i < ooc.W.Rows; i++ {
		for j := 0; j < ooc.W.Cols; j++ {
			if diff := ooc.W.At(i, j) - mem.W.At(i, j); diff > worst {
				worst = diff
			} else if -diff > worst {
				worst = -diff
			}
		}
	}
	fmt.Printf("file: %.1f MB on disk; resident row pointers: %.2f MB\n",
		float64(fi.Size())/(1<<20), float64(8*(ds.NumSamples()+1))/(1<<20))
	fmt.Printf("train: %.3f s out-of-core vs %.3f s in-memory (%.1fx I/O overhead)\n",
		oocSec, memSec, oocSec/memSec)
	fmt.Printf("max |ΔW| between the two models: %.3g (exact same algorithm)\n", worst)
	return nil
}

// ablationScaling measures the headline claim directly: sparse-LSQR SRDA
// training time as the corpus doubles.  Linear time means each doubling
// of m roughly doubles the wall clock.
func (b *bench) ablationScaling() error {
	fmt.Println("Ablation — linear-time scaling of sparse SRDA (LSQR, k=15)")
	fmt.Printf("%-10s %10s %14s %10s\n", "docs m", "nnz", "train (s)", "×prev")
	prev := 0.0
	for _, docs := range []int{1000, 2000, 4000, 8000} {
		ds := srda.NewsLike(srda.NewsConfig{
			Classes: 8, Docs: docs, Vocab: 4000, AvgLen: 60,
			TopicWords: 400, TopicBoost: 10, Seed: b.seed,
		})
		start := time.Now()
		if _, err := srda.FitCSR(ds.Sparse, ds.Labels, ds.NumClasses,
			srda.Options{Alpha: 1, LSQRIter: 15, Workers: b.workers}); err != nil {
			return err
		}
		sec := time.Since(start).Seconds()
		ratio := "—"
		if prev > 0 {
			ratio = fmt.Sprintf("%.2f", sec/prev)
		}
		fmt.Printf("%-10d %10d %14.4f %10s\n", docs, ds.Sparse.NNZ(), sec, ratio)
		prev = sec
	}
	fmt.Println("expected: ×prev ≈ 2 per doubling (O(k·c·m·s) total cost)")
	return nil
}

// extendedComparison runs the full small-sample LDA family — beyond the
// paper's four columns — on one face-recognition setting.
func (b *bench) extendedComparison() error {
	fmt.Println("Extended comparison — the small-sample LDA family on pie-like data")
	ds := srda.PIELike(srda.PIEConfig{Classes: 15, PerClass: 30, Side: 16, Seed: b.seed})
	perClass := 5 // small-sample regime so NLDA's null space exists
	rng := rand.New(rand.NewSource(b.seed))
	type resultRow struct {
		name string
		errs []float64
		secs float64
	}
	rows := []*resultRow{
		{name: "LDA"}, {name: "RLDA"}, {name: "OLDA"}, {name: "NLDA"}, {name: "MMC"},
		{name: "Fisherfaces"}, {name: "IDR/QR"}, {name: "SRDA"}, {name: "KSRDA-lin"},
	}
	for split := 0; split < b.splits; split++ {
		train, test, err := ds.SplitPerClass(rng, perClass)
		if err != nil {
			return err
		}
		evalEmb := func(row *resultRow, sec float64, embTrain, embTest *srda.Dense) error {
			nc, err := srda.FitNearestCentroid(embTrain, train.Labels, train.NumClasses)
			if err != nil {
				return err
			}
			row.errs = append(row.errs, 100*srda.ErrorRate(nc.Predict(embTest), test.Labels))
			row.secs += sec
			return nil
		}
		type transformer interface {
			Transform(*srda.Dense) *srda.Dense
		}
		fitLDA := func(row *resultRow, fit func() (transformer, error)) error {
			start := time.Now()
			model, err := fit()
			sec := time.Since(start).Seconds()
			if err != nil {
				return fmt.Errorf("%s: %w", row.name, err)
			}
			return evalEmb(row, sec, model.Transform(train.Dense), model.Transform(test.Dense))
		}
		steps := []func() error{
			func() error {
				return fitLDA(rows[0], func() (transformer, error) {
					return srda.FitLDA(train.Dense, train.Labels, train.NumClasses, srda.LDAOptions{})
				})
			},
			func() error {
				return fitLDA(rows[1], func() (transformer, error) {
					return srda.FitLDA(train.Dense, train.Labels, train.NumClasses, srda.LDAOptions{Alpha: 1})
				})
			},
			func() error {
				return fitLDA(rows[2], func() (transformer, error) {
					return srda.FitOrthogonalLDA(train.Dense, train.Labels, train.NumClasses, srda.LDAOptions{Alpha: 1})
				})
			},
			func() error {
				return fitLDA(rows[3], func() (transformer, error) {
					return srda.FitNullSpaceLDA(train.Dense, train.Labels, train.NumClasses, srda.LDAOptions{})
				})
			},
			func() error {
				return fitLDA(rows[4], func() (transformer, error) {
					return srda.FitMMC(train.Dense, train.Labels, train.NumClasses, srda.LDAOptions{})
				})
			},
			func() error {
				return fitLDA(rows[5], func() (transformer, error) {
					return srda.FitFisherfaces(train.Dense, train.Labels, train.NumClasses, srda.FisherfacesOptions{Alpha: 1})
				})
			},
			func() error {
				return fitLDA(rows[6], func() (transformer, error) {
					return srda.FitIDRQR(train.Dense, train.Labels, train.NumClasses, srda.IDRQROptions{})
				})
			},
			func() error {
				start := time.Now()
				model, err := srda.Fit(train.Dense, train.Labels, train.NumClasses,
					srda.Options{Alpha: 1, Whiten: true, Workers: b.workers})
				sec := time.Since(start).Seconds()
				if err != nil {
					return err
				}
				return evalEmb(rows[7], sec, model.TransformDense(train.Dense), model.TransformDense(test.Dense))
			},
			func() error {
				start := time.Now()
				// linear kernel: the kernelized path must track linear SRDA
				model, err := srda.FitKSRDAWhitened(train.Dense, train.Labels, train.NumClasses,
					srda.KSRDAOptions{Alpha: 1, Kernel: srda.LinearKernel{}})
				sec := time.Since(start).Seconds()
				if err != nil {
					return err
				}
				return evalEmb(rows[8], sec, model.Transform(train.Dense), model.Transform(test.Dense))
			},
		}
		for _, step := range steps {
			if err := step(); err != nil {
				return err
			}
		}
	}
	fmt.Printf("%d classes × %d train/class, %d splits\n", ds.NumClasses, perClass, b.splits)
	fmt.Printf("%-14s %12s %12s\n", "method", "error (%)", "train (s)")
	for _, row := range rows {
		var mean float64
		for _, e := range row.errs {
			mean += e
		}
		mean /= float64(len(row.errs))
		fmt.Printf("%-14s %12.1f %12.4f\n", row.name, mean, row.secs/float64(len(row.errs)))
	}
	return nil
}

// ablationRSVD compares the paper's exact cross-product SVD against the
// randomized range-finder on the LDA baseline's bottleneck step.
func (b *bench) ablationRSVD() error {
	fmt.Println("Ablation — exact (cross-product) vs randomized SVD on the LDA bottleneck")
	fmt.Printf("%-16s %12s %12s %14s\n", "shape", "exact (s)", "rand (s)", "max σ rel-err")
	for _, sh := range []struct{ m, side int }{{400, 16}, {800, 24}, {1600, 24}} {
		ds := srda.PIELike(srda.PIEConfig{
			Classes: 16, PerClass: sh.m / 16, Side: sh.side, Seed: b.seed,
		})
		x := ds.Dense.Clone()
		x.CenterRows()
		start := time.Now()
		exact, err := srda.ExactSVD(x)
		if err != nil {
			return err
		}
		exactSec := time.Since(start).Seconds()
		k := 20
		start = time.Now()
		rnd, err := srda.RandomizedSVD(x, k, 8, 2, b.seed)
		if err != nil {
			return err
		}
		rndSec := time.Since(start).Seconds()
		var worst float64
		for j := 0; j < k && j < rnd.Rank() && j < exact.Rank(); j++ {
			rel := (exact.Sigma[j] - rnd.Sigma[j]) / exact.Sigma[j]
			if rel < 0 {
				rel = -rel
			}
			if rel > worst {
				worst = rel
			}
		}
		fmt.Printf("m=%-5d n=%-8d %12.4f %12.4f %14.2e\n",
			sh.m, sh.side*sh.side, exactSec, rndSec, worst)
	}
	fmt.Println("expected: randomized wins as min(m,n) grows, with tiny top-k error")
	return nil
}

// ablationLabelNoise studies regularization under annotation noise: SRDA
// test error as training labels are flipped, for weak and strong α.
func (b *bench) ablationLabelNoise() error {
	fmt.Println("Ablation — SRDA robustness to training-label noise")
	ds := srda.PIELike(srda.PIEConfig{Classes: 12, PerClass: 40, Side: 16, Seed: b.seed})
	rng := rand.New(rand.NewSource(b.seed))
	train, test, err := ds.SplitPerClass(rng, 15)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %14s %14s\n", "flip frac", "α=0.01 err(%)", "α=10 err(%)")
	for _, frac := range []float64{0, 0.1, 0.2, 0.3} {
		noisy, _ := srda.CorruptLabels(train, rand.New(rand.NewSource(b.seed+int64(frac*100))), frac)
		var errs [2]float64
		for i, alpha := range []float64{0.01, 10} {
			model, err := srda.Fit(noisy.Dense, noisy.Labels, noisy.NumClasses,
				srda.Options{Alpha: alpha, Whiten: true, Workers: b.workers})
			if err != nil {
				return err
			}
			// evaluate against the CLEAN test labels
			errs[i] = 100 * srda.ErrorRate(model.PredictDense(test.Dense), test.Labels)
		}
		fmt.Printf("%-12.1f %14.1f %14.1f\n", frac, errs[0], errs[1])
	}
	fmt.Println("expected: stronger regularization degrades more gracefully as noise grows")
	return nil
}
