package main

import (
	"path/filepath"
	"testing"

	"srda/internal/obs"
)

// TestRunMicroBenchWritesValidReport runs the real -json-out path end to
// end (the timed shapes are fixed, so this is the slowest cmd test at a
// couple of seconds) and checks the artifact against the shared schema.
func TestRunMicroBenchWritesValidReport(t *testing.T) {
	if testing.Short() {
		t.Skip("micro-benchmarks time full-size fixed shapes")
	}
	path := filepath.Join(t.TempDir(), "BENCH_0.json")
	if err := runMicroBench(path, 2); err != nil {
		t.Fatal(err)
	}
	rep, err := obs.ReadBenchFile(path)
	if err != nil {
		t.Fatalf("written report does not validate: %v", err)
	}
	if rep.Tool != "srdabench" || rep.Schema != obs.BenchSchemaVersion {
		t.Fatalf("header wrong: %+v", rep)
	}
	want := map[string]bool{
		"PredictBatch/64x800":  false,
		"ParGemm/256x512x64":   false,
		"RouterPredict/64x800": false,
		"OnlineObserve/800f":   false,
		"Refit/2000x400":       false,
		"FitLSQR/2000x400":     false,
	}
	for _, r := range rep.Results {
		if _, ok := want[r.Name]; !ok {
			t.Errorf("unexpected benchmark %q", r.Name)
			continue
		}
		want[r.Name] = true
		if r.NsPerOp <= 0 || r.Iters <= 0 {
			t.Errorf("%s: degenerate measurement %+v", r.Name, r)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("benchmark %q missing from report", name)
		}
	}
	if rep.Params["workers"] != 2 || rep.Params["seed"] != microSeed {
		t.Errorf("params = %v", rep.Params)
	}
}

// TestMicroCasesAreSchemaUnique guards the benchdiff contract: case names
// are unique and every case builds a runnable op.
func TestMicroCasesAreSchemaUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, mc := range microCases() {
		if seen[mc.name] {
			t.Errorf("duplicate micro-benchmark name %q", mc.name)
		}
		seen[mc.name] = true
		if mc.iters <= 0 {
			t.Errorf("%s: non-positive iters %d", mc.name, mc.iters)
		}
	}
	if len(seen) != 6 {
		t.Fatalf("expected 6 micro-benchmarks, got %v", seen)
	}
}
