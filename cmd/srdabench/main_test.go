package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"srda"
	"srda/internal/obs"
)

// pieTiny shrinks the PIE generator for fast tests.
func pieTiny() srda.PIEConfig {
	return srda.PIEConfig{Classes: 3, PerClass: 8, Side: 6, Seed: 99}
}

func TestScalesHaveBothEntries(t *testing.T) {
	m := scales(1)
	for _, key := range []string{"small", "paper"} {
		spec, ok := m[key]
		if !ok {
			t.Fatalf("missing scale %q", key)
		}
		if len(spec.pieSizes) != 6 || len(spec.isoSizes) != 6 || len(spec.mniSizes) != 6 || len(spec.newsFracs) != 6 {
			t.Fatalf("scale %q does not have 6 grid points per table", key)
		}
		if spec.newsMemLimit <= 0 {
			t.Fatalf("scale %q has no memory wall", key)
		}
	}
	// paper scale must use the paper's exact row values
	p := m["paper"]
	if p.pieSizes[0] != 10 || p.pieSizes[5] != 60 {
		t.Fatalf("paper PIE sizes %v", p.pieSizes)
	}
	if p.isoSizes[0] != 20 || p.mniSizes[5] != 170 {
		t.Fatal("paper grid rows drifted from Tables V/VII")
	}
}

func TestBenchDatasetCache(t *testing.T) {
	b := bench{spec: scales(3)["small"], splits: 1, seed: 3}
	// shrink the datasets drastically for the test
	b.spec.pie = pieTiny()
	d1 := b.dataset("pie")
	d2 := b.dataset("pie")
	if d1 != d2 {
		t.Fatal("dataset not cached")
	}
	if d1.NumSamples() == 0 {
		t.Fatal("empty dataset")
	}
}

func TestTable1And2Render(t *testing.T) {
	b := bench{spec: scales(5)["small"], splits: 1, seed: 5}
	b.spec.pie = pieTiny()
	b.spec.isolet.Classes, b.spec.isolet.PerClass, b.spec.isolet.Dim = 3, 6, 20
	b.spec.mnist.Classes, b.spec.mnist.PerClass, b.spec.mnist.Side = 3, 6, 8
	b.spec.news.Classes, b.spec.news.Docs, b.spec.news.Vocab, b.spec.news.AvgLen = 3, 30, 100, 10
	b.spec.news.TopicWords = 10
	if err := b.table1(); err != nil {
		t.Fatal(err)
	}
	if err := b.table2(); err != nil {
		t.Fatal(err)
	}
}

func TestIsqrt(t *testing.T) {
	cases := map[int]int{1: 1, 4: 2, 5: 3, 100: 10, 101: 11}
	for in, want := range cases {
		if got := isqrt(in); got != want {
			t.Fatalf("isqrt(%d)=%d want %d", in, got, want)
		}
	}
}

func TestGridKeyIncludesConfig(t *testing.T) {
	// two bench configs must not share grid cache entries
	b1 := bench{spec: scales(1)["small"], splits: 2, seed: 1, scale: "small"}
	b2 := bench{spec: scales(1)["small"], splits: 3, seed: 1, scale: "small"}
	k1 := benchGridKey(&b1, "pie")
	k2 := benchGridKey(&b2, "pie")
	if k1 == k2 {
		t.Fatal("cache keys collide across split counts")
	}
	if !strings.Contains(k1, "pie") {
		t.Fatalf("key %q", k1)
	}
}

// tinyBench shrinks everything so the experiment paths run in
// milliseconds.
func tinyBench(t *testing.T) *bench {
	t.Helper()
	spec := scales(77)["small"]
	spec.pie = srda.PIEConfig{Classes: 3, PerClass: 10, Side: 6, Seed: 77}
	spec.pieSizes = []int{2, 4}
	spec.isolet = srda.IsoletConfig{Classes: 3, PerClass: 10, Dim: 20, Seed: 78}
	spec.isoSizes = []int{2, 4}
	spec.mnist = srda.MNISTConfig{Classes: 3, PerClass: 10, Side: 6, Seed: 79}
	spec.mniSizes = []int{2, 4}
	spec.news = srda.NewsConfig{Classes: 3, Docs: 60, Vocab: 200, AvgLen: 12, TopicWords: 20, Seed: 80}
	spec.newsFracs = []float64{0.2, 0.4}
	spec.newsMemLimit = 1 << 30
	return &bench{spec: spec, splits: 1, seed: 77, scale: "tiny"}
}

func TestBenchTableAndFigurePaths(t *testing.T) {
	b := tinyBench(t)
	for _, name := range []string{"pie", "isolet", "mnist"} {
		if err := b.denseGrid(name, false); err != nil {
			t.Fatalf("%s error table: %v", name, err)
		}
		if err := b.denseGrid(name, true); err != nil {
			t.Fatalf("%s time table: %v", name, err)
		}
		if err := b.figure(name); err != nil {
			t.Fatalf("%s figure: %v", name, err)
		}
	}
	if err := b.newsGrid(false); err != nil {
		t.Fatalf("news: %v", err)
	}
	// CSV output path
	b.csv = true
	if err := b.denseGrid("pie", false); err != nil {
		t.Fatalf("csv: %v", err)
	}
}

func TestBenchFig5Path(t *testing.T) {
	b := tinyBench(t)
	if err := b.fig5(); err != nil {
		t.Fatal(err)
	}
}

// TestRunExperimentsReportAndProfiles drives the bench observability
// flags: one report phase per experiment, validating against the shared
// schema, with non-empty profile/trace artifacts.
func TestRunExperimentsReportAndProfiles(t *testing.T) {
	b := tinyBench(t)
	dir := t.TempDir()
	reportPath := filepath.Join(dir, "bench.json")
	profile := filepath.Join(dir, "prof")
	tracePath := filepath.Join(dir, "bench.trace")
	run := map[string]func() error{
		"table1": b.table1,
		"table2": b.table2,
	}
	err := runExperiments([]string{"table1", "table2"}, run, benchObs{
		scale: "tiny", splits: 1, seed: 77,
		report: reportPath, profile: profile, trace: tracePath,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := obs.ValidateReport(raw)
	if err != nil {
		t.Fatalf("report does not validate: %v", err)
	}
	if rep.Tool != "srdabench" {
		t.Fatalf("tool = %q", rep.Tool)
	}
	if len(rep.Phases) != 2 || rep.Phases[0].Name != "table1" || rep.Phases[1].Name != "table2" {
		t.Fatalf("phases = %+v", rep.Phases)
	}
	if rep.Data["experiments"] != 2 || rep.Data["seed"] != 77 {
		t.Fatalf("data = %v", rep.Data)
	}
	for _, p := range []string{profile + ".cpu.pprof", profile + ".heap.pprof", tracePath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("artifact %s missing or empty: %v", p, err)
		}
	}
}

func TestRunExperimentsPropagatesFailure(t *testing.T) {
	boom := errors.New("boom")
	run := map[string]func() error{"bad": func() error { return boom }}
	err := runExperiments([]string{"bad"}, run, benchObs{scale: "tiny", splits: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestBenchUnknownDatasetPanics(t *testing.T) {
	b := tinyBench(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.dataset("nope")
}
