package main

// Micro-benchmark trajectory: -json-out times a fixed set of kernels at
// fixed shapes and seeds and writes the measurements as a schema-validated
// obs.BenchReport.  `make bench-record` pins the result as BENCH_<k>.json
// and `srdareport benchdiff` compares two pinned reports, so performance
// regressions show up as a reviewable diff rather than a vague feeling
// that serving got slower.

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"srda"
	"srda/internal/blas"
	"srda/internal/obs"
	"srda/internal/registry"
	"srda/internal/router"
	"srda/internal/serve"
)

// microSeed fixes every synthetic input so that only code changes (and
// machine noise) move ns/op between two reports.
const microSeed = 2008

// microCase is one fixed-shape micro-benchmark: setup builds the inputs
// once, op is the timed body.
type microCase struct {
	name  string
	iters int
	setup func(workers int) (op func(), err error)
}

// microCases returns the benchmark set.  Names encode the shape
// (rows×cols, or m×n×k for GEMM) and are part of the benchdiff contract:
// renaming one reads as removed+added, not as a regression.
func microCases() []microCase {
	return []microCase{
		{
			// One micro-batched inference pass: 64 samples × 800 features
			// through projection + nearest-centroid, the serving hot path.
			name:  "PredictBatch/64x800",
			iters: 50,
			setup: func(workers int) (func(), error) {
				rng := rand.New(rand.NewSource(microSeed))
				const classes, n = 8, 800
				train := classBlobs(rng, 160, n, classes)
				labels := blobLabels(160, classes)
				model, err := srda.Fit(train, labels, classes,
					srda.Options{Alpha: 1, Workers: workers})
				if err != nil {
					return nil, err
				}
				batch := classBlobs(rng, 64, n, classes)
				return func() { model.PredictBatch(batch) }, nil
			},
		},
		{
			// The raw dense kernel under everything: C(256×512) = A(256×64)·B(64×512).
			name:  "ParGemm/256x512x64",
			iters: 20,
			setup: func(workers int) (func(), error) {
				rng := rand.New(rand.NewSource(microSeed + 1))
				const m, n, k = 256, 512, 64
				a := randSlice(rng, m*k)
				b := randSlice(rng, k*n)
				c := make([]float64, m*n)
				return func() {
					blas.ParGemm(workers, m, n, k, 1, a, k, b, n, 0, c, n)
				}, nil
			},
		},
		{
			// Router overhead at serving shape: 64 samples × 800 features
			// through the co-located tier (quota check + ring lookup +
			// in-memory forward + worker micro-batch dispatch).  Against
			// PredictBatch/64x800 the delta is what the sharding tier costs.
			name:  "RouterPredict/64x800",
			iters: 50,
			setup: func(workers int) (func(), error) {
				rng := rand.New(rand.NewSource(microSeed + 3))
				const classes, n = 8, 800
				train := classBlobs(rng, 160, n, classes)
				labels := blobLabels(160, classes)
				model, err := srda.Fit(train, labels, classes,
					srda.Options{Alpha: 1, Workers: workers})
				if err != nil {
					return nil, err
				}
				reg := registry.New(registry.Options{Workers: workers})
				if _, err := reg.Publish("bench-tenant", model); err != nil {
					return nil, err
				}
				backends := make([]router.Backend, 2)
				for i := range backends {
					s, err := serve.New(nil, serve.Options{
						Registry: reg,
						Workers:  workers,
						MaxWait:  50 * time.Microsecond,
					})
					if err != nil {
						return nil, err
					}
					backends[i] = &router.LocalBackend{
						ReplicaName: fmt.Sprintf("worker-%d", i), Server: s,
					}
				}
				rt, err := router.New(backends, router.Options{})
				if err != nil {
					return nil, err
				}
				batch := classBlobs(rng, 64, n, classes)
				req := &serve.PredictRequest{Model: "bench-tenant"}
				req.Samples = make([]serve.Sample, batch.Rows)
				for i := range req.Samples {
					req.Samples[i] = serve.Sample{Dense: batch.RowView(i)}
				}
				ctx := context.Background()
				return func() {
					if _, err := rt.Predict(ctx, req); err != nil {
						panic(err) // bench invariant: the fixed request never fails
					}
				}, nil
			},
		},
		{
			// One streamed sample into the trainer's sufficient statistics:
			// the rank-one Gram contribution at 800 features, the per-sample
			// cost of the train-while-serving loop.  No triggers and no
			// registry — this times pure absorption.
			name:  "OnlineObserve/800f",
			iters: 2000,
			setup: func(workers int) (func(), error) {
				rng := rand.New(rand.NewSource(microSeed + 4))
				const classes, n = 8, 800
				tr, err := srda.NewStreamTrainer(srda.StreamConfig{
					NumFeatures: n, NumClasses: classes,
					Alpha: 1, Workers: workers,
				})
				if err != nil {
					return nil, err
				}
				rows := classBlobs(rng, classes, n, classes)
				i := 0
				return func() {
					if err := tr.Observe(rows.RowView(i%classes), i%classes); err != nil {
						panic(err) // bench invariant: fixed-shape samples never fail
					}
					i++
				}, nil
			},
		},
		{
			// A streaming refit from accumulated statistics of 2000 samples
			// × 400 features: the O(n³) solve the trainer pays per publish,
			// independent of stream length.  Against FitLSQR/2000x400 the
			// delta is batch-refit versus iterative-solver training cost.
			name:  "Refit/2000x400",
			iters: 3,
			setup: func(workers int) (func(), error) {
				rng := rand.New(rand.NewSource(microSeed + 5))
				const classes, m, n = 10, 2000, 400
				x := classBlobs(rng, m, n, classes)
				labels := blobLabels(m, classes)
				tr, err := srda.NewStreamTrainer(srda.StreamConfig{
					NumFeatures: n, NumClasses: classes,
					Alpha: 1, Workers: workers,
				})
				if err != nil {
					return nil, err
				}
				if err := tr.ObserveBatch(x, labels); err != nil {
					return nil, err
				}
				// Fail during setup, not inside the timed loop.
				if _, _, err := tr.Refit(); err != nil {
					return nil, err
				}
				return func() { _, _, _ = tr.Refit() }, nil
			},
		},
		{
			// A full LSQR training fit at 2000 samples × 400 features —
			// the paper's linear-time solver end to end.
			name:  "FitLSQR/2000x400",
			iters: 3,
			setup: func(workers int) (func(), error) {
				rng := rand.New(rand.NewSource(microSeed + 2))
				const classes, m, n = 10, 2000, 400
				x := classBlobs(rng, m, n, classes)
				labels := blobLabels(m, classes)
				opt := srda.Options{Alpha: 1, Solver: srda.SolverLSQR, LSQRIter: 15, Workers: workers}
				// Fail during setup, not inside the timed loop.
				if _, err := srda.Fit(x, labels, classes, opt); err != nil {
					return nil, err
				}
				return func() { _, _ = srda.Fit(x, labels, classes, opt) }, nil
			},
		},
	}
}

// classBlobs draws rows i.i.d. N(0,1) plus a per-class mean shift so fits
// are well-posed rather than pure-noise degenerate.
func classBlobs(rng *rand.Rand, rows, cols, classes int) *srda.Dense {
	x := srda.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		shift := float64(i%classes) * 0.5
		row := x.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
			if j%classes == i%classes {
				row[j] += shift
			}
		}
	}
	return x
}

// blobLabels labels row i as class i mod classes, matching classBlobs.
func blobLabels(rows, classes int) []int {
	labels := make([]int, rows)
	for i := range labels {
		labels[i] = i % classes
	}
	return labels
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

// microReps is how many independent timing repetitions each case runs;
// the report keeps the fastest mean.  Scheduler preemption and cache
// pollution only ever make a rep slower, so best-of-reps estimates the
// code's true cost far more stably than a single mean — which is what
// lets `srdareport benchdiff -tol 0.10` act as a hard CI gate instead of
// a coin flip on a loaded runner.
const microReps = 5

// runMicroBench executes every micro-benchmark (one untimed warmup, then
// microReps repetitions of iters timed runs, keeping the fastest) and
// writes the validated report to path.
func runMicroBench(path string, workers int) error {
	rep := &obs.BenchReport{
		Tool:   "srdabench",
		Schema: obs.BenchSchemaVersion,
		Params: map[string]float64{"seed": microSeed, "workers": float64(workers)},
	}
	for _, mc := range microCases() {
		op, err := mc.setup(workers)
		if err != nil {
			return fmt.Errorf("%s: %w", mc.name, err)
		}
		op() // warmup: page in inputs, settle the pool
		best := 0.0
		for r := 0; r < microReps; r++ {
			start := time.Now()
			for i := 0; i < mc.iters; i++ {
				op()
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(mc.iters)
			if r == 0 || ns < best {
				best = ns
			}
		}
		if best < 1 {
			best = 1 // clock-granularity floor; the schema rejects 0
		}
		rep.Results = append(rep.Results, obs.BenchResult{Name: mc.name, Iters: mc.iters, NsPerOp: best})
		fmt.Printf("%-24s %8d iters %14.0f ns/op\n", mc.name, mc.iters, best)
	}
	if err := rep.WriteFile(path); err != nil {
		return err
	}
	fmt.Printf("bench report written to %s\n", path)
	return nil
}
