package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"srda/internal/serve"
)

// chromeTrace mirrors the exported Chrome trace-event shape for decoding.
type chromeTrace struct {
	TraceEvents []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		TID  uint64 `json:"tid"`
		Args struct {
			TraceID  string `json:"trace_id"`
			SpanID   uint64 `json:"span_id"`
			ParentID uint64 `json:"parent_id"`
		} `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestTraceSmoke is the tracing acceptance path: the binary's run loop
// under 100+ concurrent predict requests must export a non-empty Chrome
// trace at /debug/traces whose spans nest request → batch → kernel with
// shared trace ids, expose rank-bounded latency quantiles on /metrics,
// and flush both artifacts to -trace-out/-metrics-out on SIGTERM.
func TestTraceSmoke(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.bin")
	traceOut := filepath.Join(dir, "trace.json")
	metricsOut := filepath.Join(dir, "metrics.prom")
	_, ds := trainAndSave(t, modelPath, 35)

	base, debugBase, stop := startServer(t, config{
		modelPath:  modelPath,
		debugAddr:  "127.0.0.1:0",
		maxBatch:   16,
		maxWait:    time.Millisecond,
		traceOut:   traceOut,
		metricsOut: metricsOut,
	})
	client := serve.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const requests = 120
	var wg sync.WaitGroup
	for g := 0; g < requests; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := client.Predict(ctx, sparseSampleOf(ds, g%20)); err != nil {
				t.Errorf("request %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()

	get := func(url string) string {
		t.Helper()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }() // test helper; body is the signal
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", url, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	checkTrace := func(src, raw string) {
		t.Helper()
		var tr chromeTrace
		if err := json.Unmarshal([]byte(raw), &tr); err != nil {
			t.Fatalf("%s: not valid trace JSON: %v", src, err)
		}
		if len(tr.TraceEvents) == 0 {
			t.Fatalf("%s: empty traceEvents", src)
		}
		// Count spans per trace and check request→batch→kernel nesting.
		type span = struct{ name string; parent uint64 }
		byTrace := map[uint64]map[uint64]span{}
		for _, ev := range tr.TraceEvents {
			if ev.Ph != "X" {
				t.Fatalf("%s: unexpected phase %q", src, ev.Ph)
			}
			if byTrace[ev.TID] == nil {
				byTrace[ev.TID] = map[uint64]span{}
			}
			byTrace[ev.TID][ev.Args.SpanID] = span{ev.Name, ev.Args.ParentID}
		}
		if len(byTrace) < requests {
			t.Fatalf("%s: %d traces, want >= %d", src, len(byTrace), requests)
		}
		kernelOwners := 0
		for tid, spans := range byTrace {
			var rootID uint64
			for id, sp := range spans {
				if sp.name == "request" {
					if sp.parent != 0 {
						t.Fatalf("%s: trace %d request has parent", src, tid)
					}
					rootID = id
				}
			}
			if rootID == 0 {
				t.Fatalf("%s: trace %d has no request span", src, tid)
			}
			for _, sp := range spans {
				if sp.name == "batch" && sp.parent != rootID {
					t.Fatalf("%s: trace %d batch not under request", src, tid)
				}
				if sp.name == "core.project_csr" || sp.name == "core.gemm" {
					if parent, ok := spans[sp.parent]; !ok || parent.name != "batch" {
						t.Fatalf("%s: trace %d kernel span not under batch", src, tid)
					}
					kernelOwners++
				}
			}
		}
		if kernelOwners == 0 {
			t.Fatalf("%s: no kernel spans nested under any batch", src)
		}
	}
	checkTrace("/debug/traces", get(debugBase+"/debug/traces"))

	// /metrics must expose the streaming quantiles with plausible values.
	metricsText := get(base + "/metrics")
	for _, name := range []string{
		"srdaserve_request_latency_p50",
		"srdaserve_request_latency_p95",
		"srdaserve_request_latency_p99",
	} {
		if !strings.Contains(metricsText, name+" ") {
			t.Errorf("/metrics missing %s", name)
		}
	}
	if strings.Contains(metricsText, "latency_p50 NaN") {
		t.Error("p50 still NaN after 120 requests")
	}

	// SIGTERM must flush both artifacts before run() returns.
	stop()
	traceBytes, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatalf("trace-out not written: %v", err)
	}
	checkTrace("-trace-out", string(traceBytes))
	metricsBytes, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatalf("metrics-out not written: %v", err)
	}
	for _, want := range []string{"srdapool_workers", "srdaserve_samples_total", "srdaserve_request_latency_p99"} {
		if !strings.Contains(string(metricsBytes), want) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}
}
