package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"srda"
	"srda/internal/obs"
	"srda/internal/serve"
)

// postTraced POSTs body to url carrying the given traceparent header and
// fails the test on a non-200 reply.
func postTraced(t *testing.T, ctx context.Context, url, traceparent string, body []byte) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, traceparent)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }() // test helper; status is the signal
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s = %d: %s", url, resp.StatusCode, msg)
	}
}

// spansByTrace decodes a Chrome trace export and groups span names and
// parent links by trace id.
func spansByTrace(t *testing.T, raw []byte) map[uint64]map[uint64]struct {
	name   string
	parent uint64
} {
	t.Helper()
	var tr chromeTrace
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	out := map[uint64]map[uint64]struct {
		name   string
		parent uint64
	}{}
	for _, ev := range tr.TraceEvents {
		if out[ev.TID] == nil {
			out[ev.TID] = map[uint64]struct {
				name   string
				parent uint64
			}{}
		}
		out[ev.TID][ev.Args.SpanID] = struct {
			name   string
			parent uint64
		}{ev.Name, ev.Args.ParentID}
	}
	return out
}

// observeBody builds a /v1/observe payload with at least four samples of
// every class, enough for a publishable refit.
func observeBody(t *testing.T, ds *srda.Dataset, classes, perClass int) []byte {
	t.Helper()
	counts := make([]int, classes)
	var samples []serve.LabeledSample
	for i := 0; i < len(ds.Labels) && len(samples) < classes*perClass; i++ {
		if counts[ds.Labels[i]] >= perClass {
			continue
		}
		counts[ds.Labels[i]]++
		samples = append(samples, serve.LabeledSample{Sample: sparseSampleOf(ds, i), Label: ds.Labels[i]})
	}
	if len(samples) != classes*perClass {
		t.Fatalf("dataset too small: collected %d samples", len(samples))
	}
	body, err := json.Marshal(serve.ObserveRequest{Samples: samples})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestEndToEndTraceAll is the single-trace acceptance path for the
// co-located tier: a predict entering the router under a remote
// traceparent must leave route → forward → request → batch → kernel
// spans all on that one trace id, and a /v1/observe that triggers a
// refit must leave observe → refit on its own single trace.
func TestEndToEndTraceAll(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.bin")
	_, ds := trainAndSave(t, modelPath, 47)

	base, debugBase, stop := startServer(t, config{
		role:         "all",
		replicas:     "1",
		modelPath:    modelPath,
		debugAddr:    "127.0.0.1:0",
		maxBatch:     8,
		maxWait:      time.Millisecond,
		online:       true,
		refitSamples: 9, // fires inside the single 12-sample observe below
	})
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Predict under remote trace 0xabc, parent span 0x17.
	predictBody, err := json.Marshal(serve.PredictRequest{Samples: []serve.Sample{sparseSampleOf(ds, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	postTraced(t, ctx, base+"/v1/predict",
		"00-00000000000000000000000000000abc-0000000000000017-01", predictBody)

	// Observe under remote trace 0xdef; 12 samples with -refit-samples=9
	// makes the trainer refit synchronously inside this request.
	postTraced(t, ctx, base+"/v1/observe",
		"00-00000000000000000000000000000def-0000000000000019-01", observeBody(t, ds, ds.NumClasses, 4))

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, debugBase+"/debug/traces", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	byTrace := spansByTrace(t, raw)

	// The predict trace: route continues the remote parent, and the whole
	// router → worker → batch → kernel chain shares trace 0xabc.
	predict := byTrace[0xabc]
	if predict == nil {
		t.Fatalf("no spans on trace abc; traces: %v", len(byTrace))
	}
	names := map[string]bool{}
	kernel := false
	for _, sp := range predict {
		names[sp.name] = true
		if sp.name == "core.project_csr" || sp.name == "core.gemm" {
			kernel = true
		}
		if sp.name == "route" && sp.parent != 0x17 {
			t.Errorf("route span parent = %x, want the remote caller's 17", sp.parent)
		}
	}
	for _, want := range []string{"route", "forward", "request", "batch"} {
		if !names[want] {
			t.Errorf("trace abc missing %q span; have %v", want, names)
		}
	}
	if !kernel {
		t.Errorf("trace abc has no kernel span under the batch; have %v", names)
	}

	// The observe trace: ingestion and the refit it triggered share 0xdef.
	observe := byTrace[0xdef]
	if observe == nil {
		t.Fatal("no spans on trace def")
	}
	names = map[string]bool{}
	for _, sp := range observe {
		names[sp.name] = true
	}
	for _, want := range []string{"observe", "refit"} {
		if !names[want] {
			t.Errorf("trace def missing %q span; have %v", want, names)
		}
	}
}

// TestTwoProcessTraceMergeAndFlight runs a real two-process topology —
// an HTTP worker and a router forwarding to it — inside one test
// binary: a traced predict crosses both rings, the flushed per-process
// artifacts merge into one timeline carrying the trace in both
// processes, and the worker's 1ns p99 SLO forces a flight bundle that
// validates against the committed schema.
func TestTwoProcessTraceMergeAndFlight(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.bin")
	_, ds := trainAndSave(t, modelPath, 53)
	flightDir := filepath.Join(dir, "flight")
	if err := os.Mkdir(flightDir, 0o755); err != nil {
		t.Fatal(err)
	}
	workerTrace := filepath.Join(dir, "worker.json")
	routerTrace := filepath.Join(dir, "router.json")

	workerBase, _, stopWorker := startServer(t, config{
		modelPath: modelPath,
		maxBatch:  8,
		maxWait:   time.Millisecond,
		traceOut:  workerTrace,
		flightDir: flightDir,
		flightP99: time.Nanosecond, // any real request breaches
	})
	routerBase, _, stopRouter := startServer(t, config{
		role:     "router",
		replicas: workerBase,
		traceOut: routerTrace,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	body, err := json.Marshal(serve.PredictRequest{Samples: []serve.Sample{sparseSampleOf(ds, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	postTraced(t, ctx, routerBase+"/v1/predict",
		"00-00000000000000000000000000000abc-0000000000000017-01", body)

	// SIGTERM both processes so each flushes its own -trace-out.
	stopRouter()
	stopWorker()

	routerRaw, err := os.ReadFile(routerTrace)
	if err != nil {
		t.Fatal(err)
	}
	workerRaw, err := os.ReadFile(workerTrace)
	if err != nil {
		t.Fatal(err)
	}
	var merged bytes.Buffer
	if err := obs.MergeChromeTraces(&merged, []obs.TraceArtifact{
		{Label: "router", Data: routerRaw},
		{Label: "worker", Data: workerRaw},
	}); err != nil {
		t.Fatal(err)
	}

	// The merged timeline carries trace 0xabc in BOTH processes: the
	// router's route/forward spans under pid 1 and the worker's
	// request/batch spans under pid 2.
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
			TID  uint64 `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(merged.Bytes(), &tr); err != nil {
		t.Fatalf("merged trace does not parse: %v", err)
	}
	namesByPid := map[int]map[string]bool{}
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "X" || ev.TID != 0xabc {
			continue
		}
		if namesByPid[ev.PID] == nil {
			namesByPid[ev.PID] = map[string]bool{}
		}
		namesByPid[ev.PID][ev.Name] = true
	}
	if len(namesByPid) < 2 {
		t.Fatalf("trace abc spans %d process(es) after merge, want 2: %v", len(namesByPid), namesByPid)
	}
	for pid, wants := range map[int][]string{1: {"route", "forward"}, 2: {"request", "batch"}} {
		for _, want := range wants {
			if !namesByPid[pid][want] {
				t.Errorf("merged trace abc missing %q under pid %d: %v", want, pid, namesByPid)
			}
		}
	}

	// The breached SLO must have dumped at least one bundle that passes
	// in-process validation AND carries every field the committed schema
	// requires.
	bundles, err := filepath.Glob(filepath.Join(flightDir, "flight-p99_breach-*.json"))
	if err != nil || len(bundles) == 0 {
		t.Fatalf("no p99_breach flight bundles in %s (err %v)", flightDir, err)
	}
	var schema struct {
		Required []string `json:"required"`
	}
	schemaRaw, err := os.ReadFile(filepath.Join("..", "..", "doc", "flight_schema.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(schemaRaw, &schema); err != nil {
		t.Fatal(err)
	}
	if len(schema.Required) == 0 {
		t.Fatal("doc/flight_schema.json lists no required fields")
	}
	for _, path := range bundles {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		bundle, err := obs.ValidateFlightBundle(raw)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if bundle.Trigger != "p99_breach" || bundle.Process != "worker" {
			t.Fatalf("%s: trigger/process = %s/%s", path, bundle.Trigger, bundle.Process)
		}
		var fields map[string]json.RawMessage
		if err := json.Unmarshal(raw, &fields); err != nil {
			t.Fatal(err)
		}
		for _, key := range schema.Required {
			if _, ok := fields[key]; !ok {
				t.Errorf("%s: missing schema-required field %q", path, key)
			}
		}
	}
}
