package main

import (
	"context"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"srda"
	"srda/internal/serve"
)

// trainAndSaveSeparable is trainAndSave with a strongly separated topic
// mix: the streaming trainer's primal refit on a 120-sample prefix must
// match the full-data LSQR model on the clean holdout, or the smoke
// test's first refit would roll back spuriously.
func trainAndSaveSeparable(t *testing.T, path string, seed int64) *srda.Dataset {
	t.Helper()
	ds := srda.NewsLike(srda.NewsConfig{Classes: 3, Docs: 200, Vocab: 300, AvgLen: 40, TopicBoost: 30, Seed: seed})
	model, err := srda.FitCSR(ds.Sparse, ds.Labels, ds.NumClasses, srda.Options{Alpha: 1, LSQRIter: 20, Whiten: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := srda.SaveModelFile(model, path); err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestOnlineSmoke is the closed-loop acceptance path for -online:
// stream labeled samples into a running worker, watch the trainer
// refit and publish a new version into the live registry, predict
// against it, then poison the stream until a refit regresses on the
// holdout and verify the automatic rollback end to end — the restored
// model answers predictions and both rollback counters appear on
// /metrics.
func TestOnlineSmoke(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.bin")
	ds := trainAndSaveSeparable(t, modelPath, 47)

	const refitSamples = 120
	base, _, stop := startServer(t, config{
		modelPath:    modelPath,
		maxBatch:     8,
		maxWait:      time.Millisecond,
		online:       true,
		refitSamples: refitSamples,
		holdoutFrac:  0.1,
	})
	defer stop()
	client := serve.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Phase 1: stream the whole clean dataset.  With -holdout-frac 0.1
	// every 10th sample is diverted, so the 120-sample trigger fires
	// inside this stream and the refit publishes version 2 before the
	// triggering request returns.
	samples := make([]serve.LabeledSample, 0, ds.Sparse.Rows)
	for i := 0; i < ds.Sparse.Rows; i++ {
		samples = append(samples, serve.LabeledSample{
			Sample: sparseSampleOf(ds, i),
			Label:  ds.Labels[i],
		})
	}
	resp, err := client.Observe(ctx, samples...)
	if err != nil {
		t.Fatalf("clean stream: %v", err)
	}
	if resp.Seen != int64(len(samples)) {
		t.Fatalf("trainer saw %d samples, streamed %d", resp.Seen, len(samples))
	}
	h, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.ModelSeq != 2 {
		t.Fatalf("model seq after clean refit = %d, want 2 (initial publish + one refit)", h.ModelSeq)
	}

	// Predictions answered by the refitted version.
	probes := []serve.Sample{sparseSampleOf(ds, 0), sparseSampleOf(ds, 1), sparseSampleOf(ds, 2)}
	before, err := client.Predict(ctx, probes...)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range before {
		if c < 0 || c >= ds.NumClasses {
			t.Fatalf("probe %d: class %d out of range", i, c)
		}
	}

	// Phase 2: poison the stream with scaled-up real topic rows labeled
	// with a random *wrong* class.  Wrong-but-inconsistent labels are
	// unlearnable, and at 20× weight they drag every class centroid
	// toward the other topics, so the next refit's candidate collapses
	// on the holdout and must be rolled back.  (Plain huge random noise
	// would not do: isotropic zero-mean poison acts like extra ridge and
	// leaves the discriminant directions intact.)  The Observe request
	// that delivers the triggering sample surfaces the rollback as its
	// error.
	rng := rand.New(rand.NewSource(48))
	poison := func() serve.LabeledSample {
		src := rng.Intn(ds.Sparse.Rows)
		cols, vals := ds.Sparse.Row(src)
		m := make(map[int]float64, len(cols))
		for k, j := range cols {
			m[j] = 20 * vals[k]
		}
		wrong := (ds.Labels[src] + 1 + rng.Intn(ds.NumClasses-1)) % ds.NumClasses
		return serve.LabeledSample{Sample: serve.SparseSample(m), Label: wrong}
	}
	var rollbackErr error
	for i := 0; i < 2*refitSamples && rollbackErr == nil; i += 10 {
		batch := make([]serve.LabeledSample, 10)
		for j := range batch {
			batch[j] = poison()
		}
		if _, err := client.Observe(ctx, batch...); err != nil {
			rollbackErr = err
		}
	}
	if rollbackErr == nil || !strings.Contains(rollbackErr.Error(), "rolled back") {
		t.Fatalf("poison stream never surfaced a rollback, last err = %v", rollbackErr)
	}

	// The rollback republishes the previous model under a fresh version:
	// v3 was the poisoned publish, v4 restores v2's model.
	h, err = client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.ModelSeq != 4 {
		t.Fatalf("model seq after rollback = %d, want 4 (poison publish + restore)", h.ModelSeq)
	}
	after, err := client.Predict(ctx, probes...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("probe %d: class %d after rollback, %d before — restored model differs", i, after[i], before[i])
		}
	}

	// Rollback must be observable on the scrape endpoint from both the
	// trainer's and the registry's side.
	text, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"srdaonline_samples_total",
		"srdaonline_holdout_total",
		"srdaonline_refits_total 2",
		"srdaonline_publishes_total 2",
		"srdaonline_rollbacks_total 1",
		`srdareg_rollbacks_total{model="default"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
