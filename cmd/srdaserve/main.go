// Command srdaserve serves predictions from a trained SRDA model over
// JSON/HTTP with micro-batched inference, hot reload, and metrics.
//
// Serve a model produced by srdatrain (or srda.SaveModelFile):
//
//	srdaserve -model out.srda -addr :8080
//
// Endpoints: POST /v1/predict (single or multi-sample, dense or sparse
// {index: value} payloads), GET /healthz, GET /metrics (Prometheus text).
// Incoming samples are coalesced across requests into batches of up to
// -max-batch samples or -max-wait of latency and classified through one
// GEMM per batch.
//
// The model hot-reloads without a restart: send SIGHUP, or pass -watch to
// poll the model file for changes.  In-flight requests finish on the model
// they started with.  SIGINT/SIGTERM drain gracefully within
// -drain-timeout.  See doc/SERVING.md for the payload schema.
//
// -debug-addr starts a second, operator-only listener exposing
// /debug/pprof/ (net/http/pprof), /debug/vars (expvar), and /metrics
// (the server's Prometheus registry plus the process-wide one with the
// worker-pool gauges).  Keep it bound to localhost; it is never meant to
// face prediction traffic.  See doc/OBSERVABILITY.md.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"srda"
	"srda/internal/obs"
	"srda/internal/serve"
)

type config struct {
	modelPath    string
	addr         string
	debugAddr    string
	maxBatch     int
	maxWait      time.Duration
	workers      int
	queueDepth   int
	watch        time.Duration
	drainTimeout time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.modelPath, "model", "", "trained model file to serve (required; written by srdatrain)")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "optional operator listener with /debug/pprof/, /debug/vars, and the full obs /metrics (keep on localhost)")
	flag.IntVar(&cfg.maxBatch, "max-batch", 64, "max samples coalesced into one inference batch")
	flag.DurationVar(&cfg.maxWait, "max-wait", 2*time.Millisecond, "max time the batcher holds a non-full batch open")
	flag.IntVar(&cfg.workers, "workers", 0, "inference worker goroutines (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.queueDepth, "queue", 4096, "queued-sample cap; beyond it requests get 503")
	flag.DurationVar(&cfg.watch, "watch", 0, "poll the model file at this interval and hot-reload on change (0 = off; SIGHUP always reloads)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 5*time.Second, "grace period for in-flight requests on shutdown")
	flag.Parse()

	logger := log.New(os.Stderr, "srdaserve: ", log.LstdFlags)
	shutdown := make(chan os.Signal, 1)
	signal.Notify(shutdown, syscall.SIGINT, syscall.SIGTERM)
	if err := run(cfg, logger, nil, nil, shutdown); err != nil {
		logger.Fatal(err)
	}
}

// run loads the model, starts the server, and blocks until a shutdown
// signal arrives, then drains.  When ready is non-nil the bound listener
// address is sent on it once the server is accepting (used by tests and
// for -addr :0); debugReady does the same for the -debug-addr listener.
func run(cfg config, logger *log.Logger, ready, debugReady chan<- net.Addr, shutdown <-chan os.Signal) error {
	if cfg.modelPath == "" {
		return fmt.Errorf("need -model; see -h")
	}
	model, err := srda.LoadModelFile(cfg.modelPath)
	if err != nil {
		return fmt.Errorf("loading model: %w", err)
	}
	s, err := serve.New(model, serve.Options{
		MaxBatch:   cfg.maxBatch,
		MaxWait:    cfg.maxWait,
		Workers:    cfg.workers,
		QueueDepth: cfg.queueDepth,
	})
	if err != nil {
		return err
	}
	logger.Printf("model %s: %d features, %d classes, %d embedding dims",
		cfg.modelPath, model.W.Rows, model.NumClasses, model.Dim())

	// SIGHUP always forces a reload; -watch additionally polls for changes.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	hupDone := make(chan struct{})
	go func() {
		defer close(hupDone)
		for range hup {
			if seq, err := s.ReloadFromFile(cfg.modelPath); err != nil {
				logger.Printf("SIGHUP reload failed, keeping current model: %v", err)
			} else {
				logger.Printf("SIGHUP: reloaded %s (model seq %d)", cfg.modelPath, seq)
			}
		}
	}()
	if cfg.watch > 0 {
		stopWatch := s.WatchFile(cfg.modelPath, cfg.watch, logger)
		defer stopWatch()
	}

	var debugSrv *http.Server
	if cfg.debugAddr != "" {
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		debugSrv = &http.Server{Handler: debugMux(s)}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("debug listener: %v", err)
			}
		}()
		logger.Printf("debug listener on %s (/debug/pprof/, /debug/vars, /metrics)", dln.Addr())
		if debugReady != nil {
			debugReady <- dln.Addr()
		}
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	logger.Printf("serving on %s (max-batch %d, max-wait %s)", ln.Addr(), cfg.maxBatch, cfg.maxWait)
	if ready != nil {
		ready <- ln.Addr()
	}

	select {
	case sig := <-shutdown:
		logger.Printf("%v: draining (timeout %s)", sig, cfg.drainTimeout)
	case err := <-serveErr:
		return fmt.Errorf("listener failed: %w", err)
	}
	signal.Stop(hup)
	close(hup)
	<-hupDone

	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if debugSrv != nil {
		if err := debugSrv.Shutdown(ctx); err != nil {
			logger.Printf("debug shutdown: %v", err)
		}
	}
	if err := hs.Shutdown(ctx); err != nil {
		logger.Printf("shutdown: %v", err)
	}
	if err := s.Close(ctx); err != nil {
		return err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Print("drained, bye")
	return nil
}

// debugMux assembles the operator-only endpoint set: Go's pprof and expvar
// handlers (registered explicitly on a private mux, so nothing leaks onto
// http.DefaultServeMux or the prediction listener) plus the combined
// Prometheus exposition — the process-wide registry first (worker-pool
// instruments), then the server's own.
func debugMux(s *serve.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.PromContentType)
		obs.Default().WritePrometheus(w)
		s.Registry().WritePrometheus(w)
	})
	return mux
}
