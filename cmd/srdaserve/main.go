// Command srdaserve runs the SRDA serving tier in one of three roles:
//
//	srdaserve -model out.srda -addr :8080                         # worker (default)
//	srdaserve -role=router -replicas http://w0:8080,http://w1:8080
//	srdaserve -role=all -replicas 2 -models-dir models/           # co-located tier
//
// A worker serves predictions from a registry of named, versioned models
// over JSON/HTTP with micro-batched inference, hot reload, and metrics.
// -model publishes one file as the "default" model; -models-dir publishes
// every file in a directory under its base name (the multi-tenant form);
// -registry-budget-mb bounds resident model bytes with LRU eviction.
//
// A router fronts worker replicas with a seeded consistent-hash ring
// (model name → replica), per-tenant token-bucket quotas (-quota-rps,
// -quota-burst), and admission control that sheds 503s when a replica's
// reported queue depth or p99 latency crosses -shed-queue / -shed-p99.
// Replica health is polled every -health-every.
//
// -role=all runs the whole tier in one process: -replicas N co-located
// workers sharing a single model registry, with the router's listener on
// -addr.  See doc/SHARDING.md for the topology.
//
// Endpoints: POST /v1/predict (single or multi-sample, dense or sparse
// {index: value} payloads, optional "model" tenant selector), GET
// /v1/models, GET /healthz, GET /metrics (Prometheus text).  Incoming
// samples are coalesced across requests into batches of up to -max-batch
// samples or -max-wait of latency and classified through one GEMM per
// batch per model.
//
// Models hot-reload without a restart: send SIGHUP, or pass -watch to
// poll the -model file for changes.  In-flight requests finish on the
// version they started with.  SIGINT/SIGTERM drain gracefully within
// -drain-timeout.  See doc/SERVING.md for the payload schema.
//
// -online co-locates a streaming trainer with the worker (or, for
// -role=all, with worker 0 of the tier): POST /v1/observe feeds it
// labeled samples, and refits — triggered by -refit-samples,
// -refit-every, or -drift-threshold — publish new model versions into
// the live registry with no restart and no dropped requests.
// -holdout-frac diverts a validation slice; a refit that regresses on it
// beyond 5 % accuracy is rolled back automatically.  See doc/ONLINE.md.
//
// -debug-addr starts a second, operator-only listener exposing
// /debug/pprof/ (net/http/pprof), /debug/vars (expvar), /debug/traces
// (the request tracer's ring as Chrome trace-event JSON, openable in
// Perfetto), /debug/exemplars (outlier metric observations with the
// trace ids that produced them), and /metrics (the server's Prometheus
// registry plus the process-wide one with the worker-pool gauges).
// Keep it bound to localhost; it is never meant to face prediction
// traffic.  On shutdown -trace-out and -metrics-out flush the trace
// ring and a final metrics snapshot to files; per-process trace files
// from several roles merge into one timeline with `srdareport
// tracemerge`.  -flight-dir arms the always-on flight recorder to dump
// anomaly bundles (spans, logs, metric snapshots, exemplars, numeric
// fit health) on triggers such as a p99 SLO breach (-flight-p99), a
// full queue, a shed storm, or a refit rollback.  See
// doc/OBSERVABILITY.md.
//
// The router and all roles additionally run the cluster telemetry
// plane: every -telemetry-every the process scrapes each replica's
// /metrics (and CKMS latency-sketch snapshots) into a bounded in-memory
// time-series store, tags the samples with a replica label, and
// re-exposes the merged view on GET /cluster/metrics (deterministic
// Prometheus text) and GET /cluster/snapshot (the JSON fleet document
// `srdareport top` renders).  -slo-config loads a srda-slo/v1 JSON
// document of availability and latency-p99 objectives evaluated against
// that store with multi-window burn-rate alerting; alert states are
// served at GET /debug/alerts, exported as srdaslo_* metrics, and a
// transition to firing dumps a slo_burn flight bundle.
package main

import (
	"bytes"
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"srda"
	"srda/internal/obs"
	"srda/internal/registry"
	"srda/internal/router"
	"srda/internal/serve"
	"srda/internal/telemetry"
)

type config struct {
	role         string
	replicas     string
	modelPath    string
	modelsDir    string
	registryMB   int64
	addr         string
	debugAddr    string
	maxBatch     int
	maxWait      time.Duration
	workers      int
	queueDepth   int
	watch        time.Duration
	drainTimeout time.Duration
	quotaRPS     float64
	quotaBurst   int
	shedP99      time.Duration
	shedQueue    int
	vnodes       int
	ringSeed     int64
	healthEvery  time.Duration
	traceCap     int
	traceOut     string
	metricsOut   string
	flightDir    string
	flightP99    time.Duration
	logLevel     string
	logJSON      bool

	online         bool
	refitEvery     time.Duration
	refitSamples   int
	driftThreshold float64
	holdoutFrac    float64

	sloConfigPath   string
	telemetryEvery  time.Duration
	telemetryPoints int
}

func main() {
	var cfg config
	flag.StringVar(&cfg.role, "role", "worker", "process role: worker, router, or all (co-located router + workers)")
	flag.StringVar(&cfg.replicas, "replicas", "", "router: comma-separated worker base URLs; all: number of co-located workers (default 2)")
	flag.StringVar(&cfg.modelPath, "model", "", "trained model file published as the default model (written by srdatrain)")
	flag.StringVar(&cfg.modelsDir, "models-dir", "", "directory of model files, each published under its base filename")
	flag.Int64Var(&cfg.registryMB, "registry-budget-mb", 0, "resident-model byte budget in MiB; past it LRU names are evicted (0 = unlimited)")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "optional operator listener with /debug/pprof/, /debug/vars, /debug/traces, and the full obs /metrics (keep on localhost)")
	flag.IntVar(&cfg.maxBatch, "max-batch", 64, "max samples coalesced into one inference batch")
	flag.DurationVar(&cfg.maxWait, "max-wait", 2*time.Millisecond, "max time the batcher holds a non-full batch open")
	flag.IntVar(&cfg.workers, "workers", 0, "inference worker goroutines (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.queueDepth, "queue", 4096, "queued-sample cap; beyond it requests get 503")
	flag.DurationVar(&cfg.watch, "watch", 0, "poll the -model file at this interval and hot-reload on change (0 = off; SIGHUP always reloads)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 5*time.Second, "grace period for in-flight requests on shutdown")
	flag.Float64Var(&cfg.quotaRPS, "quota-rps", 0, "router: per-tenant sustained requests per second; over it requests get 429 (0 = off)")
	flag.IntVar(&cfg.quotaBurst, "quota-burst", 0, "router: per-tenant burst above the sustained rate (default 1 when quotas are on)")
	flag.DurationVar(&cfg.shedP99, "shed-p99", 0, "router: shed 503 when the target replica's p99 predict latency exceeds this (0 = off)")
	flag.IntVar(&cfg.shedQueue, "shed-queue", 0, "router: shed 503 when the target replica's queue depth exceeds this (0 = off)")
	flag.IntVar(&cfg.vnodes, "vnodes", 0, "router: virtual nodes per replica on the hash ring (0 = 64)")
	flag.Int64Var(&cfg.ringSeed, "ring-seed", 0, "router: hash-ring placement seed; routers sharing it route identically (0 = 2008)")
	flag.DurationVar(&cfg.healthEvery, "health-every", 2*time.Second, "router: replica health-check interval")
	flag.IntVar(&cfg.traceCap, "trace-capacity", 0, "completed spans the request-trace ring retains (0 = default)")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write the trace ring as Chrome trace-event JSON here on shutdown")
	flag.StringVar(&cfg.metricsOut, "metrics-out", "", "write a final Prometheus metrics snapshot here on shutdown")
	flag.StringVar(&cfg.flightDir, "flight-dir", "", "dump flight-recorder bundles (spans, logs, metrics, exemplars, numeric health) into this directory on anomaly triggers; empty keeps the rings in memory only")
	flag.DurationVar(&cfg.flightP99, "flight-p99", 0, "p99 latency SLO for the flight recorder's p99_breach trigger (0 = off)")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "minimum log level: debug, info, warn, or error")
	flag.BoolVar(&cfg.logJSON, "log-json", false, "emit JSON-lines logs instead of text")
	flag.BoolVar(&cfg.online, "online", false, "co-locate a streaming trainer: POST /v1/observe feeds it labeled samples and refits publish into the live registry")
	flag.DurationVar(&cfg.refitEvery, "refit-every", 0, "online: refit when this much wall time has passed since the last refit (0 = off)")
	flag.IntVar(&cfg.refitSamples, "refit-samples", 0, "online: refit every N observed samples (0 = off)")
	flag.Float64Var(&cfg.driftThreshold, "drift-threshold", 0, "online: refit when the windowed class-mean drift score exceeds this (0 = off)")
	flag.Float64Var(&cfg.holdoutFrac, "holdout-frac", 0, "online: divert this fraction of observed samples to a validation holdout; refits that regress on it roll back (0 = no validation)")
	flag.StringVar(&cfg.sloConfigPath, "slo-config", "", "router/all: srda-slo/v1 JSON config; objectives are evaluated against the federated store with multi-window burn-rate alerts at /debug/alerts")
	flag.DurationVar(&cfg.telemetryEvery, "telemetry-every", 10*time.Second, "router/all: federation scrape interval feeding /cluster/metrics and /cluster/snapshot")
	flag.IntVar(&cfg.telemetryPoints, "telemetry-points", 0, "router/all: points retained per federated series (0 = 2880, ~8h at the default interval)")
	flag.Parse()

	lvl, err := obs.ParseLevel(cfg.logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var logger *obs.Logger
	if cfg.logJSON {
		logger = obs.NewJSONLogger(os.Stderr, lvl)
	} else {
		logger = obs.NewLogger(os.Stderr, lvl)
	}
	shutdown := make(chan os.Signal, 1)
	signal.Notify(shutdown, syscall.SIGINT, syscall.SIGTERM)
	if err := run(cfg, logger, nil, nil, shutdown); err != nil {
		logger.Error("srdaserve failed", "err", err.Error())
		os.Exit(1)
	}
}

// readHeaderTimeout bounds how long an accepted connection may sit
// without delivering its request headers.  Besides slow-client hygiene,
// it keeps shutdown prompt: http.Server.Shutdown waits up to five
// seconds before closing a connection that was accepted but never
// carried a request (a client transport's lost dial race leaves exactly
// that), which would otherwise eat the whole -drain-timeout budget
// before the dispatcher drain runs.  Must stay below the default
// -drain-timeout.
const readHeaderTimeout = 2 * time.Second

// run dispatches on -role and blocks until a shutdown signal arrives,
// then drains.  When ready is non-nil the bound listener address is sent
// on it once the process is accepting (used by tests and for -addr :0);
// debugReady does the same for the -debug-addr listener.
func run(cfg config, logger *obs.Logger, ready, debugReady chan<- net.Addr, shutdown <-chan os.Signal) error {
	switch cfg.role {
	case "", "worker":
		return runWorker(cfg, logger, ready, debugReady, shutdown)
	case "router":
		return runRouter(cfg, logger, ready, shutdown)
	case "all":
		return runAll(cfg, logger, ready, debugReady, shutdown)
	default:
		return fmt.Errorf("unknown -role %q (worker, router, or all)", cfg.role)
	}
}

// buildRegistry assembles the model store from -models-dir,
// -registry-budget-mb, and -model.  At least one model source is
// required: a worker with nothing to serve is a misconfiguration.
func buildRegistry(cfg config, logger *obs.Logger) (*registry.Registry, error) {
	if cfg.modelPath == "" && cfg.modelsDir == "" {
		return nil, fmt.Errorf("need -model or -models-dir; see -h")
	}
	reg := registry.New(registry.Options{
		MaxBytes: cfg.registryMB << 20,
		Workers:  cfg.workers,
		Logger:   logger,
	})
	if cfg.modelsDir != "" {
		names, err := reg.LoadDir(cfg.modelsDir)
		if err != nil {
			return nil, err
		}
		logger.Info("model directory loaded", "dir", cfg.modelsDir, "models", len(names))
	}
	if cfg.modelPath != "" {
		model, err := srda.LoadModelFile(cfg.modelPath)
		if err != nil {
			return nil, fmt.Errorf("loading model: %w", err)
		}
		if _, err := reg.Publish(serve.DefaultModelName, model); err != nil {
			return nil, err
		}
		logger.Info("model loaded", "path", cfg.modelPath,
			"features", model.W.Rows, "classes", model.NumClasses, "dims", model.Dim())
	}
	return reg, nil
}

// obsKit is the per-process observability plumbing every role shares:
// one request tracer (so a co-located tier exports one span ring), one
// exemplar store linking outlier metric observations to trace ids, and
// an always-on flight recorder whose rings capture the moments before
// an anomaly.  Bundles only hit disk when -flight-dir is set.
type obsKit struct {
	tracer    *obs.Tracer
	flight    *obs.FlightRecorder
	exemplars *obs.ExemplarStore
}

// newObsKit assembles the kit for one role.  The returned logger tees
// every record (including ones below the sink's level) into the flight
// ring, so bundles carry debug context a quiet production sink dropped.
func newObsKit(cfg config, role string, logger *obs.Logger) (*obsKit, *obs.Logger) {
	if cfg.flightDir != "" {
		if err := os.MkdirAll(cfg.flightDir, 0o755); err != nil {
			logger.Error("creating -flight-dir", "dir", cfg.flightDir, "err", err)
		}
	}
	kit := &obsKit{
		tracer: obs.NewTracer(cfg.traceCap),
		flight: obs.NewFlightRecorder(obs.FlightOptions{
			Dir:     cfg.flightDir,
			Process: role,
			P99SLO:  cfg.flightP99.Seconds(),
			Logger:  logger,
		}),
		exemplars: obs.NewExemplarStore(0, cfg.flightP99.Seconds()),
	}
	kit.tracer.SetProcess(role)
	kit.flight.AttachTracer(kit.tracer)
	kit.flight.AttachExemplars(kit.exemplars)
	kit.flight.AttachRegistry("process", obs.Default())
	return kit, kit.flight.CaptureLogs(logger)
}

// buildTrainer assembles the -online streaming trainer against the live
// registry, shaped after the published default model (feature count,
// classes, and ridge penalty carry over, so observed samples must match
// what the served model was trained on).
func buildTrainer(cfg config, reg *registry.Registry, kit *obsKit, logger *obs.Logger) (serve.Trainer, error) {
	if !cfg.online {
		return nil, nil
	}
	snap, ok := reg.Get(serve.DefaultModelName)
	if !ok {
		return nil, fmt.Errorf("-online needs a published default model (-model) to shape the trainer")
	}
	m := snap.Model
	alpha := m.Alpha
	if alpha <= 0 {
		alpha = 1 // LSQR-trained models may record 0; streaming refits need a ridge
	}
	tr, err := srda.NewStreamTrainer(srda.StreamConfig{
		NumFeatures: m.W.Rows,
		NumClasses:  m.NumClasses,
		Alpha:       alpha,
		Workers:     cfg.workers,
		Policy: srda.RefitPolicy{
			MinSamples:     cfg.refitSamples,
			Interval:       cfg.refitEvery,
			DriftThreshold: cfg.driftThreshold,
			HoldoutFrac:    cfg.holdoutFrac,
		},
		Registry:  reg,
		ModelName: serve.DefaultModelName,
		Clock:     srda.SystemClock(),
		Logger:    logger,
		Flight:    kit.flight,
	})
	if err != nil {
		return nil, fmt.Errorf("building streaming trainer: %w", err)
	}
	logger.Info("streaming trainer up", "features", m.W.Rows, "classes", m.NumClasses,
		"alpha", alpha, "refit_samples", cfg.refitSamples, "refit_every", cfg.refitEvery.String(),
		"drift_threshold", cfg.driftThreshold, "holdout_frac", cfg.holdoutFrac)
	return tr, nil
}

// watchAndReload wires SIGHUP (always) and -watch (optional) reloads of
// the -model file into s, returning a stop function.
func watchAndReload(cfg config, s *serve.Server, logger *obs.Logger) func() {
	if cfg.modelPath == "" {
		return func() {}
	}
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	hupDone := make(chan struct{})
	go func() {
		defer close(hupDone)
		for range hup {
			if seq, err := s.ReloadFromFile(cfg.modelPath); err != nil {
				logger.Warn("SIGHUP reload failed, keeping current model", "err", err.Error())
			} else {
				logger.Info("SIGHUP reload done", "path", cfg.modelPath, "model_seq", seq)
			}
		}
	}()
	stopWatch := func() {}
	if cfg.watch > 0 {
		stopWatch = s.WatchFile(cfg.modelPath, cfg.watch)
	}
	return func() {
		stopWatch()
		signal.Stop(hup)
		close(hup)
		<-hupDone
	}
}

// serveUntilShutdown runs handler on cfg.addr until a shutdown signal,
// then drains the listener within -drain-timeout and returns the drain
// context for the caller's own cleanup.
func serveUntilShutdown(cfg config, handler http.Handler, logger *obs.Logger, ready chan<- net.Addr, shutdown <-chan os.Signal) (context.Context, context.CancelFunc, error) {
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return nil, nil, err
	}
	hs := &http.Server{Handler: handler, ReadHeaderTimeout: readHeaderTimeout}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	logger.Info("serving", "role", cfg.role, "addr", ln.Addr().String())
	if ready != nil {
		ready <- ln.Addr()
	}
	select {
	case sig := <-shutdown:
		logger.Info("draining", "signal", sig.String(), "timeout", cfg.drainTimeout.String())
	case err := <-serveErr:
		return nil, nil, fmt.Errorf("listener failed: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	if err := hs.Shutdown(ctx); err != nil {
		logger.Warn("listener shutdown incomplete", "err", err.Error())
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		cancel()
		return nil, nil, err
	}
	return ctx, cancel, nil
}

// runWorker is the single-replica serving path: one serve.Server over a
// registry built from -model / -models-dir.
func runWorker(cfg config, logger *obs.Logger, ready, debugReady chan<- net.Addr, shutdown <-chan os.Signal) error {
	kit, logger := newObsKit(cfg, "worker", logger)
	reg, err := buildRegistry(cfg, logger)
	if err != nil {
		return err
	}
	trainer, err := buildTrainer(cfg, reg, kit, logger)
	if err != nil {
		return err
	}
	s, err := serve.New(nil, serve.Options{
		MaxBatch:   cfg.maxBatch,
		MaxWait:    cfg.maxWait,
		Workers:    cfg.workers,
		QueueDepth: cfg.queueDepth,
		Registry:   reg,
		Tracer:     kit.tracer,
		Logger:     logger,
		Trainer:    trainer,
		Flight:     kit.flight,
		Exemplars:  kit.exemplars,
	})
	if err != nil {
		return err
	}
	kit.flight.AttachRegistry("serve", s.Registry())
	kit.flight.AttachRegistry("registry", reg.Metrics())
	if trainer != nil {
		kit.flight.AttachRegistry("online", trainer.Metrics())
	}
	stopReload := watchAndReload(cfg, s, logger)

	var debugSrv *http.Server
	if cfg.debugAddr != "" {
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		debugSrv = &http.Server{Handler: debugMux(s, kit), ReadHeaderTimeout: readHeaderTimeout}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err.Error())
			}
		}()
		logger.Info("debug listener up", "addr", dln.Addr().String(),
			"endpoints", "/debug/pprof/ /debug/vars /debug/traces /debug/exemplars /metrics")
		if debugReady != nil {
			debugReady <- dln.Addr()
		}
	}

	ctx, cancel, err := serveUntilShutdown(cfg, s.Handler(), logger, ready, shutdown)
	if err != nil {
		return err
	}
	defer cancel()
	stopReload()
	if debugSrv != nil {
		if err := debugSrv.Shutdown(ctx); err != nil {
			logger.Warn("debug shutdown incomplete", "err", err.Error())
		}
	}
	// Flush observability artifacts even when the drain times out: a
	// truncated trace of a wedged server is exactly what the operator
	// needs, and the drain error still decides the exit status.
	closeErr := s.Close(ctx)
	flushArtifacts(cfg, kit.tracer, logger, s.Registry())
	if closeErr != nil {
		return closeErr
	}
	logger.Info("drained, bye")
	return nil
}

// routerOptions maps the router flag set onto router.Options, wiring in
// the process observability kit.
func routerOptions(cfg config, kit *obsKit, logger *obs.Logger) router.Options {
	return router.Options{
		VNodes:         cfg.vnodes,
		Seed:           cfg.ringSeed,
		QuotaRPS:       cfg.quotaRPS,
		QuotaBurst:     cfg.quotaBurst,
		ShedP99:        cfg.shedP99.Seconds(),
		ShedQueue:      cfg.shedQueue,
		HealthInterval: cfg.healthEvery,
		Logger:         logger,
		Tracer:         kit.tracer,
		Flight:         kit.flight,
		Exemplars:      kit.exemplars,
	}
}

// telemetryPlane assembles the router-side cluster telemetry: a
// federator scraping every replica (plus the router's own registry)
// into the time-series store, an optional SLO burn-rate engine from
// -slo-config, and the poll loop.  This command owns the ticker —
// internal/telemetry is under the noclock contract and only ever sees
// explicit times, so the goroutine here forwards ticker fires into the
// caller-owned channel StartPoller drains.  The returned stop function
// halts the loop and waits for the poller to exit.
func telemetryPlane(cfg config, targets []telemetry.Target, sloReg *obs.Registry, kit *obsKit, logger *obs.Logger) (*telemetry.Federator, *telemetry.SLOEngine, func(), error) {
	fed := telemetry.NewFederator(targets, telemetry.FederatorOptions{
		PointsPerSeries: cfg.telemetryPoints,
		Logger:          logger,
	})
	var engine *telemetry.SLOEngine
	if cfg.sloConfigPath != "" {
		data, err := os.ReadFile(cfg.sloConfigPath)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("reading -slo-config: %w", err)
		}
		sloCfg, err := telemetry.ValidateSLOConfig(data)
		if err != nil {
			return nil, nil, nil, err
		}
		engine = telemetry.NewSLOEngine(sloCfg, fed.Store(), telemetry.SLOEngineOptions{
			Registry: sloReg,
			Flight:   kit.flight,
			Logger:   logger,
		})
		fed.AttachSLO(engine)
		logger.Info("SLO engine up", "objectives", len(sloCfg.Objectives), "windows", len(sloCfg.Windows))
	}
	every := cfg.telemetryEvery
	if every <= 0 {
		every = 10 * time.Second
	}
	// Seed the store before the listener opens so /cluster/* answers
	// from the first request instead of waiting out one interval.
	fed.Scrape(context.Background(), time.Now())
	ticker := time.NewTicker(every)
	stop := make(chan struct{})
	ticks := make(chan time.Time, 1)
	go func() {
		defer close(ticks)
		for {
			select {
			case t := <-ticker.C:
				ticks <- t
			case <-stop:
				return
			}
		}
	}()
	done := telemetry.StartPoller(ticks, func(now time.Time) {
		fed.Scrape(context.Background(), now)
	})
	logger.Info("telemetry plane up", "targets", len(targets), "every", every.String(), "slo", cfg.sloConfigPath != "")
	return fed, engine, func() {
		ticker.Stop()
		close(stop)
		<-done
	}, nil
}

// mountClusterEndpoints adds the federation surface to a listener mux:
// the deterministic cluster exposition, the JSON snapshot srdareport
// top renders, and (when -slo-config armed an engine) the alert table.
func mountClusterEndpoints(mux *http.ServeMux, fed *telemetry.Federator, engine *telemetry.SLOEngine) {
	mux.HandleFunc("/cluster/metrics", fed.MetricsHandler())
	mux.HandleFunc("/cluster/snapshot", fed.SnapshotHandler())
	if engine != nil {
		mux.HandleFunc("/debug/alerts", engine.Handler())
	}
}

// runRouter fronts remote workers listed in -replicas over HTTP.
func runRouter(cfg config, logger *obs.Logger, ready chan<- net.Addr, shutdown <-chan os.Signal) error {
	kit, logger := newObsKit(cfg, "router", logger)
	var backends []router.Backend
	var targets []telemetry.Target
	for _, u := range strings.Split(cfg.replicas, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		client := serve.NewClient(u)
		backends = append(backends, &router.HTTPBackend{ReplicaName: u, Client: client})
		targets = append(targets, telemetry.ClientTarget(u, client, client))
	}
	if len(backends) == 0 {
		return fmt.Errorf("-role=router needs -replicas with at least one worker URL")
	}
	r, err := router.New(backends, routerOptions(cfg, kit, logger))
	if err != nil {
		return err
	}
	kit.flight.AttachRegistry("router", r.Registry())
	// The router federates itself too, so srdaroute_* series (request
	// codes per replica, sheds, quota denials) land in the cluster store
	// where availability SLOs can read them.
	targets = append(targets, telemetry.RegistryTarget("router", nil, r.Registry()))
	fed, engine, stopTelemetry, err := telemetryPlane(cfg, targets, r.Registry(), kit, logger)
	if err != nil {
		r.Close()
		return err
	}
	r.CheckHealth(context.Background()) // seed overload snapshots before traffic
	logger.Info("router up", "replicas", len(backends), "ring", strings.Join(r.Ring(), ","))
	mux := http.NewServeMux()
	mux.Handle("/", r.Handler())
	mountClusterEndpoints(mux, fed, engine)
	_, cancel, err := serveUntilShutdown(cfg, mux, logger, ready, shutdown)
	if err != nil {
		stopTelemetry()
		r.Close()
		return err
	}
	defer cancel()
	stopTelemetry()
	r.Close()
	flushArtifacts(cfg, kit.tracer, logger, r.Registry())
	logger.Info("drained, bye")
	return nil
}

// runAll runs the co-located tier: -replicas N workers sharing one model
// registry, a router in front, all in this process with in-memory
// transport between them.
func runAll(cfg config, logger *obs.Logger, ready, debugReady chan<- net.Addr, shutdown <-chan os.Signal) error {
	n := 2
	if cfg.replicas != "" {
		var err error
		if n, err = strconv.Atoi(cfg.replicas); err != nil || n < 1 {
			return fmt.Errorf("-role=all needs -replicas as a worker count, got %q", cfg.replicas)
		}
	}
	kit, logger := newObsKit(cfg, "all", logger)
	reg, err := buildRegistry(cfg, logger)
	if err != nil {
		return err
	}
	trainer, err := buildTrainer(cfg, reg, kit, logger)
	if err != nil {
		return err
	}
	workers := make([]*serve.Server, n)
	backends := make([]router.Backend, n)
	for i := range workers {
		// Every worker shares the kit's tracer, so a request's route →
		// forward → request → batch → kernel spans land in one ring and
		// export as one timeline regardless of which replica served it.
		opts := serve.Options{
			MaxBatch:   cfg.maxBatch,
			MaxWait:    cfg.maxWait,
			Workers:    cfg.workers,
			QueueDepth: cfg.queueDepth,
			Registry:   reg,
			Tracer:     kit.tracer,
			Logger:     logger,
			Flight:     kit.flight,
			Exemplars:  kit.exemplars,
		}
		if i == 0 {
			// One trainer for the whole tier: it publishes into the shared
			// registry, so every replica serves its refits; worker 0 hosts
			// the /v1/observe ingestion endpoint.
			opts.Trainer = trainer
		}
		s, err := serve.New(nil, opts)
		if err != nil {
			return err
		}
		workers[i] = s
		backends[i] = &router.LocalBackend{ReplicaName: fmt.Sprintf("worker-%d", i), Server: s}
	}
	r, err := router.New(backends, routerOptions(cfg, kit, logger))
	if err != nil {
		return err
	}
	// Federation targets for the co-located tier: every worker's registry
	// and latency sketches in-process (no HTTP round trip), plus the
	// router's own series for availability SLOs.
	targets := make([]telemetry.Target, 0, n+1)
	for i, s := range workers {
		targets = append(targets, telemetry.RegistryTarget(
			fmt.Sprintf("worker-%d", i), s.LatencySketches, s.Registry()))
	}
	targets = append(targets, telemetry.RegistryTarget("router", nil, r.Registry()))
	fed, engine, stopTelemetry, err := telemetryPlane(cfg, targets, r.Registry(), kit, logger)
	if err != nil {
		r.Close()
		return err
	}
	kit.flight.AttachRegistry("router", r.Registry())
	kit.flight.AttachRegistry("serve", workers[0].Registry())
	kit.flight.AttachRegistry("registry", reg.Metrics())
	if trainer != nil {
		kit.flight.AttachRegistry("online", trainer.Metrics())
	}
	r.CheckHealth(context.Background())
	logger.Info("co-located tier up", "workers", n, "ring", strings.Join(r.Ring(), ","))
	// Reloads land in the shared registry, so wiring them through any one
	// worker updates every replica at once.
	stopReload := watchAndReload(cfg, workers[0], logger)

	var debugSrv *http.Server
	if cfg.debugAddr != "" {
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		debugSrv = &http.Server{Handler: debugMux(workers[0], kit), ReadHeaderTimeout: readHeaderTimeout}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err.Error())
			}
		}()
		if debugReady != nil {
			debugReady <- dln.Addr()
		}
	}

	mux := http.NewServeMux()
	mux.Handle("/", r.Handler())
	mountClusterEndpoints(mux, fed, engine)
	// The registry listing comes from the workers' shared store; expose it
	// on the router listener too so operators see the tier's tenants.
	mux.HandleFunc("/v1/models", func(w http.ResponseWriter, req *http.Request) {
		workers[0].Handler().ServeHTTP(w, req)
	})
	if trainer != nil {
		// Training samples go to worker 0, the trainer's host; its refits
		// publish into the shared registry every replica serves from.
		mux.HandleFunc("/v1/observe", func(w http.ResponseWriter, req *http.Request) {
			workers[0].Handler().ServeHTTP(w, req)
		})
	}
	// One scrape endpoint for the whole co-located tier: the router's
	// srdaroute_* set followed by worker-0's srdaserve_*, the shared
	// registry's srdareg_*, and (with -online) the trainer's srdaonline_*
	// instruments.
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", obs.PromContentType)
		r.Registry().WritePrometheus(w)
		workers[0].Registry().WritePrometheus(w)
		reg.Metrics().WritePrometheus(w)
		if trainer != nil {
			trainer.Metrics().WritePrometheus(w)
		}
	})
	ctx, cancel, err := serveUntilShutdown(cfg, mux, logger, ready, shutdown)
	if err != nil {
		stopTelemetry()
		r.Close()
		return err
	}
	defer cancel()
	stopReload()
	stopTelemetry()
	r.Close()
	if debugSrv != nil {
		if err := debugSrv.Shutdown(ctx); err != nil {
			logger.Warn("debug shutdown incomplete", "err", err.Error())
		}
	}
	var closeErr error
	for _, s := range workers {
		if err := s.Close(ctx); err != nil && closeErr == nil {
			closeErr = err
		}
	}
	flushArtifacts(cfg, kit.tracer, logger, r.Registry(), workers[0].Registry())
	if closeErr != nil {
		return closeErr
	}
	logger.Info("drained, bye")
	return nil
}

// flushArtifacts writes the trace ring (-trace-out) and a final metrics
// snapshot (-metrics-out, the process-wide registry followed by the
// role's own) at shutdown.
func flushArtifacts(cfg config, tracer *obs.Tracer, logger *obs.Logger, regs ...*obs.Registry) {
	if cfg.traceOut != "" {
		var buf bytes.Buffer
		if err := tracer.WriteChromeTrace(&buf); err != nil {
			logger.Error("trace export failed", "err", err.Error())
		} else if err := os.WriteFile(cfg.traceOut, buf.Bytes(), 0o644); err != nil {
			logger.Error("trace flush failed", "path", cfg.traceOut, "err", err.Error())
		} else {
			logger.Info("trace flushed", "path", cfg.traceOut,
				"spans", tracer.SpanCount(), "evicted", tracer.Evicted())
		}
	}
	if cfg.metricsOut != "" {
		var buf bytes.Buffer
		obs.Default().WritePrometheus(&buf)
		for _, reg := range regs {
			reg.WritePrometheus(&buf)
		}
		if err := os.WriteFile(cfg.metricsOut, buf.Bytes(), 0o644); err != nil {
			logger.Error("metrics flush failed", "path", cfg.metricsOut, "err", err.Error())
		} else {
			logger.Info("metrics flushed", "path", cfg.metricsOut)
		}
	}
}

// debugMux assembles the operator-only endpoint set: Go's pprof and expvar
// handlers (registered explicitly on a private mux, so nothing leaks onto
// http.DefaultServeMux or the prediction listener) plus the combined
// Prometheus exposition — the process-wide registry first (worker-pool
// instruments), then the server's own.
func debugMux(s *serve.Server, kit *obsKit) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/exemplars", kit.exemplars.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.PromContentType)
		obs.Default().WritePrometheus(w)
		s.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// The ring snapshot is taken inside; a failed write means the
		// client hung up.
		_ = s.Tracer().WriteChromeTrace(w)
	})
	return mux
}
