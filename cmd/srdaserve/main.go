// Command srdaserve serves predictions from a trained SRDA model over
// JSON/HTTP with micro-batched inference, hot reload, and metrics.
//
// Serve a model produced by srdatrain (or srda.SaveModelFile):
//
//	srdaserve -model out.srda -addr :8080
//
// Endpoints: POST /v1/predict (single or multi-sample, dense or sparse
// {index: value} payloads), GET /healthz, GET /metrics (Prometheus text).
// Incoming samples are coalesced across requests into batches of up to
// -max-batch samples or -max-wait of latency and classified through one
// GEMM per batch.
//
// The model hot-reloads without a restart: send SIGHUP, or pass -watch to
// poll the model file for changes.  In-flight requests finish on the model
// they started with.  SIGINT/SIGTERM drain gracefully within
// -drain-timeout.  See doc/SERVING.md for the payload schema.
//
// -debug-addr starts a second, operator-only listener exposing
// /debug/pprof/ (net/http/pprof), /debug/vars (expvar), /debug/traces
// (the request tracer's ring as Chrome trace-event JSON, openable in
// Perfetto), and /metrics (the server's Prometheus registry plus the
// process-wide one with the worker-pool gauges).  Keep it bound to
// localhost; it is never meant to face prediction traffic.  On shutdown
// -trace-out and -metrics-out flush the trace ring and a final metrics
// snapshot to files.  See doc/OBSERVABILITY.md.
package main

import (
	"bytes"
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"srda"
	"srda/internal/obs"
	"srda/internal/serve"
)

type config struct {
	modelPath    string
	addr         string
	debugAddr    string
	maxBatch     int
	maxWait      time.Duration
	workers      int
	queueDepth   int
	watch        time.Duration
	drainTimeout time.Duration
	traceCap     int
	traceOut     string
	metricsOut   string
	logLevel     string
	logJSON      bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.modelPath, "model", "", "trained model file to serve (required; written by srdatrain)")
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "", "optional operator listener with /debug/pprof/, /debug/vars, /debug/traces, and the full obs /metrics (keep on localhost)")
	flag.IntVar(&cfg.maxBatch, "max-batch", 64, "max samples coalesced into one inference batch")
	flag.DurationVar(&cfg.maxWait, "max-wait", 2*time.Millisecond, "max time the batcher holds a non-full batch open")
	flag.IntVar(&cfg.workers, "workers", 0, "inference worker goroutines (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.queueDepth, "queue", 4096, "queued-sample cap; beyond it requests get 503")
	flag.DurationVar(&cfg.watch, "watch", 0, "poll the model file at this interval and hot-reload on change (0 = off; SIGHUP always reloads)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 5*time.Second, "grace period for in-flight requests on shutdown")
	flag.IntVar(&cfg.traceCap, "trace-capacity", 0, "completed spans the request-trace ring retains (0 = default)")
	flag.StringVar(&cfg.traceOut, "trace-out", "", "write the trace ring as Chrome trace-event JSON here on shutdown")
	flag.StringVar(&cfg.metricsOut, "metrics-out", "", "write a final Prometheus metrics snapshot here on shutdown")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "minimum log level: debug, info, warn, or error")
	flag.BoolVar(&cfg.logJSON, "log-json", false, "emit JSON-lines logs instead of text")
	flag.Parse()

	lvl, err := obs.ParseLevel(cfg.logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var logger *obs.Logger
	if cfg.logJSON {
		logger = obs.NewJSONLogger(os.Stderr, lvl)
	} else {
		logger = obs.NewLogger(os.Stderr, lvl)
	}
	shutdown := make(chan os.Signal, 1)
	signal.Notify(shutdown, syscall.SIGINT, syscall.SIGTERM)
	if err := run(cfg, logger, nil, nil, shutdown); err != nil {
		logger.Error("srdaserve failed", "err", err.Error())
		os.Exit(1)
	}
}

// readHeaderTimeout bounds how long an accepted connection may sit
// without delivering its request headers.  Besides slow-client hygiene,
// it keeps shutdown prompt: http.Server.Shutdown waits up to five
// seconds before closing a connection that was accepted but never
// carried a request (a client transport's lost dial race leaves exactly
// that), which would otherwise eat the whole -drain-timeout budget
// before the dispatcher drain runs.  Must stay below the default
// -drain-timeout.
const readHeaderTimeout = 2 * time.Second

// run loads the model, starts the server, and blocks until a shutdown
// signal arrives, then drains.  When ready is non-nil the bound listener
// address is sent on it once the server is accepting (used by tests and
// for -addr :0); debugReady does the same for the -debug-addr listener.
func run(cfg config, logger *obs.Logger, ready, debugReady chan<- net.Addr, shutdown <-chan os.Signal) error {
	if cfg.modelPath == "" {
		return fmt.Errorf("need -model; see -h")
	}
	model, err := srda.LoadModelFile(cfg.modelPath)
	if err != nil {
		return fmt.Errorf("loading model: %w", err)
	}
	s, err := serve.New(model, serve.Options{
		MaxBatch:      cfg.maxBatch,
		MaxWait:       cfg.maxWait,
		Workers:       cfg.workers,
		QueueDepth:    cfg.queueDepth,
		TraceCapacity: cfg.traceCap,
		Logger:        logger,
	})
	if err != nil {
		return err
	}
	logger.Info("model loaded", "path", cfg.modelPath,
		"features", model.W.Rows, "classes", model.NumClasses, "dims", model.Dim())

	// SIGHUP always forces a reload; -watch additionally polls for changes.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	hupDone := make(chan struct{})
	go func() {
		defer close(hupDone)
		for range hup {
			if seq, err := s.ReloadFromFile(cfg.modelPath); err != nil {
				logger.Warn("SIGHUP reload failed, keeping current model", "err", err.Error())
			} else {
				logger.Info("SIGHUP reload done", "path", cfg.modelPath, "model_seq", seq)
			}
		}
	}()
	if cfg.watch > 0 {
		stopWatch := s.WatchFile(cfg.modelPath, cfg.watch)
		defer stopWatch()
	}

	var debugSrv *http.Server
	if cfg.debugAddr != "" {
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		debugSrv = &http.Server{Handler: debugMux(s), ReadHeaderTimeout: readHeaderTimeout}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err.Error())
			}
		}()
		logger.Info("debug listener up", "addr", dln.Addr().String(),
			"endpoints", "/debug/pprof/ /debug/vars /debug/traces /metrics")
		if debugReady != nil {
			debugReady <- dln.Addr()
		}
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: readHeaderTimeout}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	logger.Info("serving", "addr", ln.Addr().String(),
		"max_batch", cfg.maxBatch, "max_wait", cfg.maxWait.String())
	if ready != nil {
		ready <- ln.Addr()
	}

	select {
	case sig := <-shutdown:
		logger.Info("draining", "signal", sig.String(), "timeout", cfg.drainTimeout.String())
	case err := <-serveErr:
		return fmt.Errorf("listener failed: %w", err)
	}
	signal.Stop(hup)
	close(hup)
	<-hupDone

	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if debugSrv != nil {
		if err := debugSrv.Shutdown(ctx); err != nil {
			logger.Warn("debug shutdown incomplete", "err", err.Error())
		}
	}
	if err := hs.Shutdown(ctx); err != nil {
		logger.Warn("listener shutdown incomplete", "err", err.Error())
	}
	// Flush observability artifacts even when the drain times out: a
	// truncated trace of a wedged server is exactly what the operator
	// needs, and the drain error still decides the exit status.
	closeErr := s.Close(ctx)
	flushArtifacts(cfg, s, logger)
	if closeErr != nil {
		return closeErr
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	logger.Info("drained, bye")
	return nil
}

// flushArtifacts writes the trace ring (-trace-out) and a final combined
// metrics snapshot (-metrics-out) at shutdown.
func flushArtifacts(cfg config, s *serve.Server, logger *obs.Logger) {
	if cfg.traceOut != "" {
		var buf bytes.Buffer
		if err := s.Tracer().WriteChromeTrace(&buf); err != nil {
			logger.Error("trace export failed", "err", err.Error())
		} else if err := os.WriteFile(cfg.traceOut, buf.Bytes(), 0o644); err != nil {
			logger.Error("trace flush failed", "path", cfg.traceOut, "err", err.Error())
		} else {
			logger.Info("trace flushed", "path", cfg.traceOut,
				"spans", s.Tracer().SpanCount(), "evicted", s.Tracer().Evicted())
		}
	}
	if cfg.metricsOut != "" {
		var buf bytes.Buffer
		obs.Default().WritePrometheus(&buf)
		s.Registry().WritePrometheus(&buf)
		if err := os.WriteFile(cfg.metricsOut, buf.Bytes(), 0o644); err != nil {
			logger.Error("metrics flush failed", "path", cfg.metricsOut, "err", err.Error())
		} else {
			logger.Info("metrics flushed", "path", cfg.metricsOut)
		}
	}
}

// debugMux assembles the operator-only endpoint set: Go's pprof and expvar
// handlers (registered explicitly on a private mux, so nothing leaks onto
// http.DefaultServeMux or the prediction listener) plus the combined
// Prometheus exposition — the process-wide registry first (worker-pool
// instruments), then the server's own.
func debugMux(s *serve.Server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.PromContentType)
		obs.Default().WritePrometheus(w)
		s.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// The ring snapshot is taken inside; a failed write means the
		// client hung up.
		_ = s.Tracer().WriteChromeTrace(w)
	})
	return mux
}
