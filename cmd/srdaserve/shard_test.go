package main

import (
	"context"
	"errors"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"srda"
	"srda/internal/serve"
)

// TestShardSmoke is the co-located tier's smoke test (wired into CI as
// make shard-smoke): -role=all spawns a router and two workers sharing
// one registry, three tenant models are published from -models-dir, and
// every tenant answers through the router with the class its own model
// predicts.  The router's metrics and health expose the ring.
func TestShardSmoke(t *testing.T) {
	dir := t.TempDir()
	tenants := []string{"tenant-a", "tenant-b", "tenant-c"}
	models := make(map[string]*srda.Model, len(tenants))
	data := make(map[string]*srda.Dataset, len(tenants))
	for i, tn := range tenants {
		m, ds := trainAndSave(t, filepath.Join(dir, tn+".srda"), int64(60+i))
		models[tn], data[tn] = m, ds
	}

	base, _, stop := startServer(t, config{
		role:      "all",
		replicas:  "2",
		modelsDir: dir,
		maxWait:   time.Millisecond,
	})
	defer stop()
	client := serve.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// The registry listing on the router listener shows all three tenants.
	ml, err := client.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ml.Models) != 3 {
		t.Fatalf("models = %+v", ml.Models)
	}

	// Routed predictions: each tenant's samples answer with its own
	// model's classes, via the router's /v1/predict.
	for _, tn := range tenants {
		ds := data[tn]
		want := models[tn].PredictBatchCSR(ds.Sparse)
		for i := 0; i < 5; i++ {
			got, err := client.PredictModel(ctx, tn, sparseSampleOf(ds, i))
			if err != nil {
				t.Fatalf("%s sample %d: %v", tn, i, err)
			}
			if got[0] != want[i] {
				t.Fatalf("%s sample %d: routed class %d, model says %d", tn, i, got[0], want[i])
			}
		}
	}
	// An unknown tenant 404s through the tier.
	if _, err := client.PredictModel(ctx, "tenant-404", sparseSampleOf(data["tenant-a"], 0)); err == nil {
		t.Fatal("unknown tenant answered")
	} else {
		var st *serve.StatusError
		if !errors.As(err, &st) || st.Code != http.StatusNotFound {
			t.Fatalf("unknown tenant: %v", err)
		}
	}

	// Router metrics: requests counted per replica, both workers on the
	// ring.
	text, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"srdaroute_requests_total",
		"srdaroute_shed_total",
		"srdaroute_ring_members 2",
		"srdaroute_healthy_replicas 2",
		// -role=all serves one combined scrape: router, worker, and
		// shared-registry families on the same endpoint.
		"srdaserve_requests_total",
		"srdareg_models 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("router /metrics missing %q", want)
		}
	}
	var routed int
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, `srdaroute_requests_total{replica="worker-`) &&
			strings.Contains(line, `code="200"`) {
			routed++
		}
	}
	if routed == 0 {
		t.Fatal("no per-replica 200s in router metrics")
	}

	// Router health lists both replicas healthy and on the ring.
	h, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("router health = %+v", h)
	}
}
