package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"srda"
	"srda/internal/serve"
)

// trainAndSave trains a small sparse model end to end through the public
// API and persists it the way srdatrain does.
func trainAndSave(t *testing.T, path string, seed int64) (*srda.Model, *srda.Dataset) {
	t.Helper()
	ds := srda.NewsLike(srda.NewsConfig{Classes: 3, Docs: 150, Vocab: 400, AvgLen: 25, TopicBoost: 10, Seed: seed})
	model, err := srda.FitCSR(ds.Sparse, ds.Labels, ds.NumClasses, srda.Options{Alpha: 1, LSQRIter: 20, Whiten: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := srda.SaveModelFile(model, path); err != nil {
		t.Fatal(err)
	}
	return model, ds
}

// startServer runs the binary's run() on a random port and returns the
// base URL, the debug-listener base URL ("" unless cfg.debugAddr is set),
// plus a stop function that triggers and awaits graceful drain.
func startServer(t *testing.T, cfg config) (string, string, func()) {
	t.Helper()
	cfg.addr = "127.0.0.1:0"
	if cfg.drainTimeout == 0 {
		cfg.drainTimeout = 5 * time.Second
	}
	ready := make(chan net.Addr, 1)
	debugReady := make(chan net.Addr, 1)
	shutdown := make(chan os.Signal, 1)
	errCh := make(chan error, 1)
	go func() {
		// A nil *obs.Logger is a no-op, which keeps test output quiet.
		errCh <- run(cfg, nil, ready, debugReady, shutdown)
	}()
	var debugBase string
	if cfg.debugAddr != "" {
		select {
		case addr := <-debugReady:
			debugBase = "http://" + addr.String()
		case err := <-errCh:
			t.Fatalf("server exited before debug listener ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("debug listener never became ready")
		}
	}
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	return "http://" + addr.String(), debugBase, func() {
		shutdown <- syscall.SIGTERM
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("server exited with error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("server never drained")
		}
	}
}

// sparseSampleOf converts one CSR row into the request payload form.
func sparseSampleOf(ds *srda.Dataset, i int) serve.Sample {
	cols, vals := ds.Sparse.Row(i)
	m := make(map[int]float64, len(cols))
	for t, j := range cols {
		m[j] = vals[t]
	}
	return serve.SparseSample(m)
}

// TestServeEndToEnd is the train → save → serve → predict acceptance
// path: a model trained and saved through the public API is served by the
// binary's run loop and answers with the same classes the in-process
// model produces.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.bin")
	model, ds := trainAndSave(t, modelPath, 31)

	base, _, stop := startServer(t, config{
		modelPath: modelPath,
		maxBatch:  8,
		maxWait:   time.Millisecond,
	})
	defer stop()
	client := serve.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	h, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Features != ds.NumFeatures() || h.Classes != ds.NumClasses || h.ModelSeq != 1 {
		t.Fatalf("unexpected health: %+v", h)
	}

	want := model.PredictBatchCSR(ds.Sparse)
	samples := make([]serve.Sample, 0, 20)
	for i := 0; i < 20; i++ {
		samples = append(samples, sparseSampleOf(ds, i))
	}
	got, err := client.Predict(ctx, samples...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample %d: served class %d, model says %d", i, got[i], want[i])
		}
	}

	text, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(text) == 0 {
		t.Fatal("empty metrics exposition")
	}
}

// TestServeWatchReload overwrites the model file under a running server
// started with -watch and verifies the swap is picked up.
func TestServeWatchReload(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.bin")
	_, ds := trainAndSave(t, modelPath, 32)

	base, _, stop := startServer(t, config{
		modelPath: modelPath,
		watch:     5 * time.Millisecond,
	})
	defer stop()
	client := serve.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	time.Sleep(20 * time.Millisecond) // fresh mtime even on coarse filesystems
	model2, _ := trainAndSave(t, modelPath, 33)
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err := client.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.ModelSeq >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watcher never picked up the rewritten model")
		}
		time.Sleep(5 * time.Millisecond)
	}
	want := model2.PredictBatchCSR(ds.Sparse)
	got, err := client.Predict(ctx, sparseSampleOf(ds, 0), sparseSampleOf(ds, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("served %v from the watched-in model, want %v", got, want[:2])
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(config{}, nil, nil, nil, nil); err == nil {
		t.Fatal("missing -model accepted")
	}
	if err := run(config{modelPath: filepath.Join(t.TempDir(), "nope.bin")}, nil, nil, nil, nil); err == nil {
		t.Fatal("missing model file accepted")
	}
}

// TestServeDebugListener checks the -debug-addr acceptance criterion: the
// operator listener must answer /debug/pprof/, /debug/vars, and a combined
// /metrics carrying both the process-wide pool instruments and the
// server's own registry — while the prediction listener stays free of
// debug endpoints.
func TestServeDebugListener(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.bin")
	_, ds := trainAndSave(t, modelPath, 34)

	base, debugBase, stop := startServer(t, config{
		modelPath: modelPath,
		debugAddr: "127.0.0.1:0",
	})
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	// One prediction so serve counters are non-zero; training above already
	// exercised the worker pool, so srdapool_* counters are non-zero too.
	client := serve.NewClient(base)
	if _, err := client.Predict(ctx, sparseSampleOf(ds, 0)); err != nil {
		t.Fatal(err)
	}

	get := func(url string) (int, string) {
		t.Helper()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }() // test helper; status is the signal
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get(debugBase + "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d, body %.80q", code, body)
	}
	if code, body := get(debugBase + "/debug/vars"); code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars = %d, body %.80q", code, body)
	}
	code, body := get(debugBase + "/metrics")
	if code != http.StatusOK {
		t.Fatalf("debug /metrics = %d", code)
	}
	for _, want := range []string{"srdapool_spans_dispatched_total", "srdapool_workers", "srdaserve_requests_total", "srdaserve_queue_depth"} {
		if !strings.Contains(body, want) {
			t.Errorf("debug /metrics missing %q", want)
		}
	}
	// The prediction listener must not grow debug surface area.
	if code, _ := get(base + "/debug/pprof/"); code == http.StatusOK {
		t.Fatal("prediction listener serves /debug/pprof/")
	}
}
