package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"srda"
	"srda/internal/obs"
	"srda/internal/serve"
	"srda/internal/telemetry"
)

// trainAndSave trains a small sparse model end to end through the public
// API and persists it the way srdatrain does.
func trainAndSave(t *testing.T, path string, seed int64) (*srda.Model, *srda.Dataset) {
	t.Helper()
	ds := srda.NewsLike(srda.NewsConfig{Classes: 3, Docs: 150, Vocab: 400, AvgLen: 25, TopicBoost: 10, Seed: seed})
	model, err := srda.FitCSR(ds.Sparse, ds.Labels, ds.NumClasses, srda.Options{Alpha: 1, LSQRIter: 20, Whiten: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := srda.SaveModelFile(model, path); err != nil {
		t.Fatal(err)
	}
	return model, ds
}

// startServer runs the binary's run() on a random port and returns the
// base URL, the debug-listener base URL ("" unless cfg.debugAddr is set),
// plus a stop function that triggers and awaits graceful drain.
func startServer(t *testing.T, cfg config) (string, string, func()) {
	t.Helper()
	cfg.addr = "127.0.0.1:0"
	if cfg.drainTimeout == 0 {
		cfg.drainTimeout = 5 * time.Second
	}
	ready := make(chan net.Addr, 1)
	debugReady := make(chan net.Addr, 1)
	shutdown := make(chan os.Signal, 1)
	errCh := make(chan error, 1)
	go func() {
		// A nil *obs.Logger is a no-op, which keeps test output quiet.
		errCh <- run(cfg, nil, ready, debugReady, shutdown)
	}()
	var debugBase string
	if cfg.debugAddr != "" {
		select {
		case addr := <-debugReady:
			debugBase = "http://" + addr.String()
		case err := <-errCh:
			t.Fatalf("server exited before debug listener ready: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("debug listener never became ready")
		}
	}
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	return "http://" + addr.String(), debugBase, func() {
		shutdown <- syscall.SIGTERM
		select {
		case err := <-errCh:
			if err != nil {
				t.Fatalf("server exited with error: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("server never drained")
		}
	}
}

// sparseSampleOf converts one CSR row into the request payload form.
func sparseSampleOf(ds *srda.Dataset, i int) serve.Sample {
	cols, vals := ds.Sparse.Row(i)
	m := make(map[int]float64, len(cols))
	for t, j := range cols {
		m[j] = vals[t]
	}
	return serve.SparseSample(m)
}

// TestServeEndToEnd is the train → save → serve → predict acceptance
// path: a model trained and saved through the public API is served by the
// binary's run loop and answers with the same classes the in-process
// model produces.
func TestServeEndToEnd(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.bin")
	model, ds := trainAndSave(t, modelPath, 31)

	base, _, stop := startServer(t, config{
		modelPath: modelPath,
		maxBatch:  8,
		maxWait:   time.Millisecond,
	})
	defer stop()
	client := serve.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	h, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Features != ds.NumFeatures() || h.Classes != ds.NumClasses || h.ModelSeq != 1 {
		t.Fatalf("unexpected health: %+v", h)
	}

	want := model.PredictBatchCSR(ds.Sparse)
	samples := make([]serve.Sample, 0, 20)
	for i := 0; i < 20; i++ {
		samples = append(samples, sparseSampleOf(ds, i))
	}
	got, err := client.Predict(ctx, samples...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("sample %d: served class %d, model says %d", i, got[i], want[i])
		}
	}

	text, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(text) == 0 {
		t.Fatal("empty metrics exposition")
	}
}

// TestServeWatchReload overwrites the model file under a running server
// started with -watch and verifies the swap is picked up.
func TestServeWatchReload(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.bin")
	_, ds := trainAndSave(t, modelPath, 32)

	base, _, stop := startServer(t, config{
		modelPath: modelPath,
		watch:     5 * time.Millisecond,
	})
	defer stop()
	client := serve.NewClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	time.Sleep(20 * time.Millisecond) // fresh mtime even on coarse filesystems
	model2, _ := trainAndSave(t, modelPath, 33)
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, err := client.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.ModelSeq >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watcher never picked up the rewritten model")
		}
		time.Sleep(5 * time.Millisecond)
	}
	want := model2.PredictBatchCSR(ds.Sparse)
	got, err := client.Predict(ctx, sparseSampleOf(ds, 0), sparseSampleOf(ds, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("served %v from the watched-in model, want %v", got, want[:2])
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(config{}, nil, nil, nil, nil); err == nil {
		t.Fatal("missing -model accepted")
	}
	if err := run(config{modelPath: filepath.Join(t.TempDir(), "nope.bin")}, nil, nil, nil, nil); err == nil {
		t.Fatal("missing model file accepted")
	}
}

// TestServeDebugListener checks the -debug-addr acceptance criterion: the
// operator listener must answer /debug/pprof/, /debug/vars, and a combined
// /metrics carrying both the process-wide pool instruments and the
// server's own registry — while the prediction listener stays free of
// debug endpoints.
func TestServeDebugListener(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.bin")
	_, ds := trainAndSave(t, modelPath, 34)

	base, debugBase, stop := startServer(t, config{
		modelPath: modelPath,
		debugAddr: "127.0.0.1:0",
	})
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	// One prediction so serve counters are non-zero; training above already
	// exercised the worker pool, so srdapool_* counters are non-zero too.
	client := serve.NewClient(base)
	if _, err := client.Predict(ctx, sparseSampleOf(ds, 0)); err != nil {
		t.Fatal(err)
	}

	get := func(url string) (int, string) {
		t.Helper()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }() // test helper; status is the signal
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get(debugBase + "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d, body %.80q", code, body)
	}
	if code, body := get(debugBase + "/debug/vars"); code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars = %d, body %.80q", code, body)
	}
	code, body := get(debugBase + "/metrics")
	if code != http.StatusOK {
		t.Fatalf("debug /metrics = %d", code)
	}
	for _, want := range []string{"srdapool_spans_dispatched_total", "srdapool_workers", "srdaserve_requests_total", "srdaserve_queue_depth"} {
		if !strings.Contains(body, want) {
			t.Errorf("debug /metrics missing %q", want)
		}
	}
	// The prediction listener must not grow debug surface area.
	if code, _ := get(base + "/debug/pprof/"); code == http.StatusOK {
		t.Fatal("prediction listener serves /debug/pprof/")
	}
}

// httpGet fetches a URL and returns status, Content-Type, and body.
func httpGet(t *testing.T, ctx context.Context, url string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }() // test helper; status is the signal
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// writeSLO writes an SLO config document and returns its path.
func writeSLO(t *testing.T, dir, doc string) string {
	t.Helper()
	path := filepath.Join(dir, "slo.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAllRoleClusterTelemetry is the co-located tier's telemetry
// acceptance path: -role=all with -slo-config must serve the federated
// cluster exposition, the JSON fleet snapshot, and the alert table on
// the router listener, with the replica-tagged worker series and the
// merged CKMS cluster quantiles present after traffic — and every JSON
// debug surface must say application/json while Prometheus surfaces say
// the 0.0.4 text type.
func TestAllRoleClusterTelemetry(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.bin")
	_, ds := trainAndSave(t, modelPath, 35)
	sloPath := writeSLO(t, dir, `{
  "schema": "srda-slo/v1",
  "objectives": [
    {"name": "predict-availability", "kind": "availability",
     "metric": "srdaroute_requests_total", "target": 0.99}
  ]
}`)

	base, debugBase, stop := startServer(t, config{
		role:           "all",
		replicas:       "2",
		modelPath:      modelPath,
		debugAddr:      "127.0.0.1:0",
		sloConfigPath:  sloPath,
		telemetryEvery: 25 * time.Millisecond,
	})
	defer stop()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	client := serve.NewClient(base)
	for i := 0; i < 8; i++ {
		if _, err := client.Predict(ctx, sparseSampleOf(ds, i)); err != nil {
			t.Fatal(err)
		}
	}

	// Poll until a scrape after the predicts has landed: the router's
	// routed-request counters (workers are called in-process in the all
	// role, so request counts live in srdaroute_*) and the merged
	// latency sketch both show up.
	deadline := time.Now().Add(10 * time.Second)
	var metricsBody string
	for {
		_, ctype, body := httpGet(t, ctx, base+"/cluster/metrics")
		if strings.Contains(body, "srdaroute_requests_total") && strings.Contains(body, "srdacluster_quantile") {
			if ctype != obs.PromContentType {
				t.Fatalf("/cluster/metrics Content-Type = %q, want %q", ctype, obs.PromContentType)
			}
			metricsBody = body
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker series never federated; last body:\n%s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, want := range []string{
		"srdafed_replicas 3", // two workers plus the router's own registry
		`srdaserve_queue_depth{replica="worker-0"}`,
		`srdaserve_queue_depth{replica="worker-1"}`,
		// The router's own replica label survives federation renamed, so
		// the tag never collides into a duplicate label name.
		`srdaroute_requests_total{code="200",exported_replica="worker-`,
		`srdacluster_quantile{metric="srdaserve_request_latency",quantile="0.99"}`,
		`srdaslo_alerts_firing{replica="router"} 0`,
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/cluster/metrics missing %q", want)
		}
	}

	code, ctype, body := httpGet(t, ctx, base+"/cluster/snapshot")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("/cluster/snapshot = %d %q", code, ctype)
	}
	snap, err := telemetry.ValidateClusterSnapshot([]byte(body))
	if err != nil {
		t.Fatalf("snapshot does not validate: %v\n%s", err, body)
	}
	if len(snap.Replicas) != 3 {
		t.Fatalf("snapshot replicas = %+v", snap.Replicas)
	}
	for _, r := range snap.Replicas {
		if !r.Up {
			t.Errorf("replica %s down in a healthy tier: %+v", r.Replica, r)
		}
	}
	// One availability objective across the default two windows.
	if len(snap.Alerts) != 2 {
		t.Fatalf("snapshot alerts = %+v", snap.Alerts)
	}

	code, ctype, body = httpGet(t, ctx, base+"/debug/alerts")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("/debug/alerts = %d %q", code, ctype)
	}
	for _, want := range []string{"predict-availability", `"fast"`, `"slow"`, `"inactive"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/alerts missing %q in %s", want, body)
		}
	}
	resp, err := http.Post(base+"/debug/alerts", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /debug/alerts = %d, want 405", resp.StatusCode)
	}

	// Content-Type contract on the rest of the surface: JSON debug
	// endpoints are application/json, Prometheus expositions are the
	// versioned text type.
	if _, ctype, _ := httpGet(t, ctx, debugBase+"/debug/traces"); ctype != "application/json" {
		t.Errorf("/debug/traces Content-Type = %q", ctype)
	}
	if _, ctype, _ := httpGet(t, ctx, debugBase+"/debug/exemplars"); ctype != "application/json" {
		t.Errorf("/debug/exemplars Content-Type = %q", ctype)
	}
	if _, ctype, _ := httpGet(t, ctx, base+"/metrics"); ctype != obs.PromContentType {
		t.Errorf("tier /metrics Content-Type = %q", ctype)
	}
	if _, ctype, _ := httpGet(t, ctx, debugBase+"/metrics"); ctype != obs.PromContentType {
		t.Errorf("debug /metrics Content-Type = %q", ctype)
	}
}

// TestRouterFederationEndToEnd runs a real worker process and a real
// router process and checks the router's federation plane scrapes the
// worker over HTTP: replica-tagged srdaserve_* series and the worker's
// CKMS sketch (fetched from /v1/sketches) both reach /cluster/metrics,
// and the snapshot's replica table marks the worker up.
func TestRouterFederationEndToEnd(t *testing.T) {
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.bin")
	_, ds := trainAndSave(t, modelPath, 36)

	workerBase, _, stopWorker := startServer(t, config{modelPath: modelPath})
	defer stopWorker()
	routerBase, _, stopRouter := startServer(t, config{
		role:           "router",
		replicas:       workerBase,
		telemetryEvery: 25 * time.Millisecond,
	})
	defer stopRouter()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	client := serve.NewClient(routerBase)
	for i := 0; i < 5; i++ {
		if _, err := client.Predict(ctx, sparseSampleOf(ds, i)); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		_, _, body := httpGet(t, ctx, routerBase+"/cluster/metrics")
		if strings.Contains(body, `srdaserve_requests_total{code="200",endpoint="/v1/predict",replica="`+workerBase+`"}`) &&
			strings.Contains(body, "srdacluster_quantile") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker series never federated over HTTP; last body:\n%s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	_, _, body := httpGet(t, ctx, routerBase+"/cluster/snapshot")
	snap, err := telemetry.ValidateClusterSnapshot([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	var worker *telemetry.ReplicaStatus
	for i := range snap.Replicas {
		if snap.Replicas[i].Replica == workerBase {
			worker = &snap.Replicas[i]
		}
	}
	if worker == nil || !worker.Up {
		t.Fatalf("worker replica missing or down in snapshot: %+v", snap.Replicas)
	}
}

// waitAlertState polls /debug/alerts until the objective reaches the
// wanted state.
func waitAlertState(t *testing.T, ctx context.Context, base, state string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		_, _, body := httpGet(t, ctx, base+"/debug/alerts")
		if strings.Contains(body, `"state": "`+state+`"`) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("alert never reached %q; last table:\n%s", state, body)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestSLOSmoke is the `make slo-smoke` end-to-end: a real router in
// front of a real worker, an induced 5xx burst (the worker process is
// stopped while the router keeps forwarding), and the availability
// alert driven through pending → firing → resolved with a validated
// slo_burn flight bundle on disk.  Wall-clock windows make it a
// multi-second test, so it only runs when SRDA_SLO_SMOKE is set.
func TestSLOSmoke(t *testing.T) {
	if os.Getenv("SRDA_SLO_SMOKE") == "" {
		t.Skip("set SRDA_SLO_SMOKE=1 to run the SLO smoke (see `make slo-smoke`)")
	}
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "m.bin")
	_, ds := trainAndSave(t, modelPath, 37)
	flightDir := filepath.Join(dir, "flight")
	if err := os.MkdirAll(flightDir, 0o755); err != nil {
		t.Fatal(err)
	}
	// Tight windows so the whole lifecycle fits in seconds: both windows
	// see the burst immediately, pending holds 300ms, and the alert
	// resolves once the burst slides out of the 6s long window.
	sloPath := writeSLO(t, dir, `{
  "schema": "srda-slo/v1",
  "objectives": [
    {"name": "availability", "kind": "availability",
     "metric": "srdaroute_requests_total", "target": 0.9,
     "pending_for_seconds": 0.3}
  ],
  "windows": [{"name": "fast", "short_seconds": 2, "long_seconds": 6, "burn": 1.5}]
}`)

	workerBase, _, stopWorker := startServer(t, config{modelPath: modelPath})
	routerBase, _, stopRouter := startServer(t, config{
		role:           "router",
		replicas:       workerBase,
		sloConfigPath:  sloPath,
		telemetryEvery: 100 * time.Millisecond,
		flightDir:      flightDir,
		// Keep the dead worker nominally healthy so forwards still run
		// and count their 5xx codes instead of being shed pre-forward.
		healthEvery: time.Hour,
	})
	defer stopRouter()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	client := serve.NewClient(routerBase)
	for i := 0; i < 5; i++ {
		if _, err := client.Predict(ctx, sparseSampleOf(ds, i)); err != nil {
			t.Fatal(err)
		}
	}

	// Induced error burst: stop the worker and keep sending; every
	// forward fails and srdaroute_requests_total{code="500"} burns the
	// availability budget at 10x (all-bad vs a 10% budget).
	stopWorker()
	burstEnd := time.Now().Add(1500 * time.Millisecond)
	for time.Now().Before(burstEnd) {
		_, _ = client.Predict(ctx, sparseSampleOf(ds, 0))
		time.Sleep(25 * time.Millisecond)
	}
	waitAlertState(t, ctx, routerBase, "firing", 15*time.Second)

	// Recovery: traffic stops, the burst ages out of both windows, and
	// the alert resolves.
	waitAlertState(t, ctx, routerBase, "resolved", 20*time.Second)

	bundles, err := filepath.Glob(filepath.Join(flightDir, "flight-slo_burn-*.json"))
	if err != nil || len(bundles) == 0 {
		t.Fatalf("no slo_burn flight bundle in %s (err=%v)", flightDir, err)
	}
	data, err := os.ReadFile(bundles[0])
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := obs.ValidateFlightBundle(data)
	if err != nil {
		t.Fatalf("slo_burn bundle does not validate: %v", err)
	}
	if bundle.Trigger != "slo_burn" {
		t.Errorf("bundle trigger = %q", bundle.Trigger)
	}
}
