// Command srdalint runs the project's determinism-contract analyzer suite
// (internal/lint) over the module and reports findings.
//
// Usage:
//
//	srdalint [-C dir] [-json] [-list] [patterns...]
//	srdalint -compiler-gate [-C dir] [-budget file] [-update-budget]
//
// Patterns select packages by directory relative to the module root:
// "./..." (the default) means every package, "./internal/blas" exactly
// one, and "./internal/..." a subtree.  The module root is found by
// walking up from the working directory (or -C dir) to the nearest
// go.mod.
//
// -compiler-gate runs the toolchain instead of the analyzers: it builds
// the gated packages with -gcflags='-m=2 -d=ssa/check_bce/debug=1',
// attributes every heap escape and surviving bounds check to its
// function, and compares the counts against the committed
// lint_budget.json.  Any function that gained escapes or bounds checks
// fails the gate; -update-budget re-baselines the file instead.
//
// Exit codes form the CI contract — there is deliberately no -fix mode,
// so a nonzero exit always means a human decision is needed:
//
//	0  no findings
//	1  findings reported
//	2  usage, load, or type-check error
//
// With -json the findings are printed as a single JSON object
// {"count": N, "diagnostics": [...]} for machine consumption.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"srda/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("srdalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	list := fs.Bool("list", false, "list the analyzers and exit")
	dir := fs.String("C", "", "run as if started in this directory")
	gate := fs.Bool("compiler-gate", false, "check escape/bounds-check counts against the budget file")
	updateBudget := fs.Bool("update-budget", false, "with -compiler-gate: rewrite the budget file from current counts")
	budgetPath := fs.String("budget", lint.BudgetFile, "budget file, relative to the module root")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers {
			fmt.Fprintf(stdout, "%-20s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	start := *dir
	if start == "" {
		wd, err := os.Getwd()
		if err != nil {
			fmt.Fprintf(stderr, "srdalint: %v\n", err)
			return 2
		}
		start = wd
	}
	root, err := findModuleRoot(start)
	if err != nil {
		fmt.Fprintf(stderr, "srdalint: %v\n", err)
		return 2
	}
	mod, err := lint.Load(root, "")
	if err != nil {
		fmt.Fprintf(stderr, "srdalint: %v\n", err)
		return 2
	}
	if *gate {
		return runCompilerGate(mod, root, *budgetPath, *updateBudget, stdout, stderr)
	}
	diags := lint.Run(mod, lint.Analyzers)
	diags = filterPatterns(mod, diags, fs.Args())

	if *jsonOut {
		// Report module-relative paths so output is stable across checkouts.
		rel := make([]lint.Diagnostic, len(diags))
		for i, d := range diags {
			d.File = relPath(root, d.File)
			rel[i] = d
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Count       int               `json:"count"`
			Diagnostics []lint.Diagnostic `json:"diagnostics"`
		}{len(rel), rel}); err != nil {
			fmt.Fprintf(stderr, "srdalint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: %s (%s)\n", relPath(root, d.File), d.Line, d.Col, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// runCompilerGate builds the gated packages with escape-analysis and
// bounds-check diagnostics enabled, attributes the counts per function,
// and compares them against (or rewrites) the budget file.  The Go build
// cache replays compiler diagnostics on cache hits, so repeated runs are
// cheap.
func runCompilerGate(mod *lint.Module, root, budgetPath string, update bool, stdout, stderr io.Writer) int {
	args := []string{"build", "-gcflags=-m=2 -d=ssa/check_bce/debug=1"}
	for _, d := range lint.GatedDirs {
		args = append(args, "./"+d)
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(stderr, "srdalint: go build for compiler gate failed: %v\n%s", err, out)
		return 2
	}
	current := mod.AttributeFacts(lint.ParseCompilerDiags(string(out)), lint.GatedDirs)
	if !filepath.IsAbs(budgetPath) {
		budgetPath = filepath.Join(root, budgetPath)
	}
	if update {
		b := &lint.Budget{Schema: 1, Go: runtime.Version(), Packages: current}
		if err := lint.WriteBudget(budgetPath, b); err != nil {
			fmt.Fprintf(stderr, "srdalint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "srdalint: wrote %s (%d packages)\n", relPath(root, budgetPath), len(current))
		return 0
	}
	budget, err := lint.ReadBudget(budgetPath)
	if err != nil {
		fmt.Fprintf(stderr, "srdalint: %v\n", err)
		return 2
	}
	failures, notes := lint.CompareBudget(budget, current, runtime.Version())
	for _, n := range notes {
		fmt.Fprintf(stdout, "note: %s\n", n)
	}
	for _, f := range failures {
		fmt.Fprintf(stdout, "FAIL: %s\n", f)
	}
	if len(failures) > 0 {
		return 1
	}
	fmt.Fprintf(stdout, "srdalint: compiler gate ok (%d packages within budget)\n", len(current))
	return 0
}

// findModuleRoot walks up from dir to the nearest directory holding
// go.mod.
func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// filterPatterns keeps the diagnostics selected by the ./-style package
// patterns; no patterns (or "./...") selects everything.
func filterPatterns(mod *lint.Module, diags []lint.Diagnostic, patterns []string) []lint.Diagnostic {
	if len(patterns) == 0 {
		return diags
	}
	type rule struct {
		prefix  string
		subtree bool
	}
	var rules []rule
	for _, p := range patterns {
		p = strings.TrimPrefix(filepath.ToSlash(p), "./")
		if p == "..." || p == "" {
			return diags
		}
		if rest, ok := strings.CutSuffix(p, "/..."); ok {
			rules = append(rules, rule{prefix: rest, subtree: true})
		} else {
			rules = append(rules, rule{prefix: p})
		}
	}
	keep := diags[:0]
	for _, d := range diags {
		rel := filepath.ToSlash(relPath(mod.Root, d.File))
		dir := ""
		if i := strings.LastIndex(rel, "/"); i >= 0 {
			dir = rel[:i]
		}
		for _, r := range rules {
			if dir == r.prefix || (r.subtree && strings.HasPrefix(dir, r.prefix+"/")) {
				keep = append(keep, d)
				break
			}
		}
	}
	return keep
}

func relPath(root, file string) string {
	if r, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return file
}
