package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"srda/internal/lint"
)

// writeModule materializes a throwaway module for the driver to lint.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const violatingLib = `package lib

func Same(a, b float64) bool {
	return a == b
}
`

const cleanLib = `package lib

func Twice(a float64) float64 { return 2 * a }
`

func TestRunFindingsExitOne(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     "module vmod\n\ngo 1.22\n",
		"lib/lib.go": violatingLib,
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-C", dir}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, expected 1; stderr: %s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "lib/lib.go:4:") || !strings.Contains(got, "(floatcmp)") {
		t.Errorf("finding not reported as file:line (analyzer):\n%s", got)
	}
}

func TestRunCleanExitZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     "module vmod\n\ngo 1.22\n",
		"lib/lib.go": cleanLib,
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-C", dir}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, expected 0; output: %s%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", out.String())
	}
}

func TestRunJSON(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     "module vmod\n\ngo 1.22\n",
		"lib/lib.go": violatingLib,
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-C", dir, "-json"}, &out, &errb); code != 1 {
		t.Fatalf("exit code = %d, expected 1; stderr: %s", code, errb.String())
	}
	var report struct {
		Count       int               `json:"count"`
		Diagnostics []lint.Diagnostic `json:"diagnostics"`
	}
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if report.Count != 1 || len(report.Diagnostics) != 1 {
		t.Fatalf("count = %d, len = %d, expected 1 finding", report.Count, len(report.Diagnostics))
	}
	d := report.Diagnostics[0]
	if d.Analyzer != "floatcmp" || filepath.ToSlash(d.File) != "lib/lib.go" || d.Line != 4 {
		t.Errorf("diagnostic = %+v, expected floatcmp at lib/lib.go:4", d)
	}
}

func TestRunPatternFilter(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":       "module vmod\n\ngo 1.22\n",
		"lib/lib.go":   violatingLib,
		"other/oth.go": "package oth\n\nfunc Ok() {}\n",
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-C", dir, "./other"}, &out, &errb); code != 0 {
		t.Errorf("pattern excluding the violation: exit = %d, expected 0\n%s", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-C", dir, "./lib/..."}, &out, &errb); code != 1 {
		t.Errorf("pattern covering the violation: exit = %d, expected 1", code)
	}
}

func TestRunSuppressedViolationExitZero(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module vmod\n\ngo 1.22\n",
		"lib/lib.go": `package lib

func Guard(a float64) bool {
	return a == 0 //srdalint:ignore floatcmp exact-zero guard exercised by the driver test
}
`,
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-C", dir}, &out, &errb); code != 0 {
		t.Fatalf("exit code = %d, expected 0; output: %s%s", code, out.String(), errb.String())
	}
}

func TestRunListAndUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit = %d, expected 0", code)
	}
	for _, a := range lint.Analyzers {
		if !strings.Contains(out.String(), a.Name) {
			t.Errorf("-list output missing analyzer %s", a.Name)
		}
	}
	if code := run([]string{"-nosuchflag"}, &out, &errb); code != 2 {
		t.Errorf("bad flag exit = %d, expected 2", code)
	}
}

func TestRunLoadErrorExitTwo(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     "module vmod\n\ngo 1.22\n",
		"lib/lib.go": "package lib\n\nfunc Broken( {}\n",
	})
	var out, errb bytes.Buffer
	if code := run([]string{"-C", dir}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, expected 2 on a parse error", code)
	}
	if !strings.Contains(errb.String(), "srdalint:") {
		t.Errorf("load error not reported on stderr: %s", errb.String())
	}
}
