package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"srda"
)

func TestRunWritesSingleFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "mini.svm")
	var log bytes.Buffer
	if err := run("news", out, 1, 3, 0, 60, 200, 0, &log); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ds, err := srda.ReadLibSVM(f, 200)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSamples() != 60 || ds.NumClasses != 3 {
		t.Fatalf("written dataset shape %d/%d", ds.NumSamples(), ds.NumClasses)
	}
	if !strings.Contains(log.String(), "wrote 60 samples") {
		t.Fatalf("log: %s", log.String())
	}
}

func TestRunSplitWritesTwoFiles(t *testing.T) {
	base := filepath.Join(t.TempDir(), "p")
	var log bytes.Buffer
	if err := run("pie", base, 2, 3, 10, 0, 0, 0.4, &log); err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{".train.svm", ".test.svm"} {
		if _, err := os.Stat(base + suffix); err != nil {
			t.Fatalf("missing %s: %v", suffix, err)
		}
	}
	// per-class 40% of 10 = 4 train, 6 test per class
	f, _ := os.Open(base + ".train.svm")
	defer f.Close()
	train, err := srda.ReadLibSVM(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumSamples() != 12 {
		t.Fatalf("train %d want 12", train.NumSamples())
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	var log bytes.Buffer
	if err := run("news", "", 1, 0, 0, 0, 0, 0, &log); err == nil {
		t.Fatal("missing -out accepted")
	}
	if err := run("nope", filepath.Join(dir, "x"), 1, 0, 0, 0, 0, 0, &log); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if err := run("mnist", filepath.Join(dir, "y"), 1, 2, 4, 0, 0, 2.0, &log); err == nil {
		t.Fatal("bad split fraction accepted")
	}
	if err := run("isolet", filepath.Join(dir, "nodir", "deep", "z"), 1, 2, 3, 0, 0, 0, &log); err == nil {
		t.Fatal("unwritable path accepted")
	}
}
