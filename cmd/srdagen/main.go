// Command srdagen writes the repository's synthetic datasets to disk in
// libsvm format, optionally pre-split into train/test files.
//
//	srdagen -dataset news -out corpus.svm
//	srdagen -dataset pie -classes 10 -per-class 50 -split 0.3 -out pie
//
// With -split F (0 < F < 1) the output is two files, <out>.train.svm and
// <out>.test.svm, sampled per class.  Datasets: pie, isolet, mnist, news.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"srda"
)

func main() {
	var (
		name     = flag.String("dataset", "news", "pie, isolet, mnist, or news")
		out      = flag.String("out", "", "output path (required)")
		seed     = flag.Int64("seed", 1, "generator seed")
		classes  = flag.Int("classes", 0, "class count override (0 = paper default)")
		perClass = flag.Int("per-class", 0, "samples per class override (dense sets)")
		docs     = flag.Int("docs", 0, "document count override (news)")
		vocab    = flag.Int("vocab", 0, "vocabulary size override (news)")
		split    = flag.Float64("split", 0, "train fraction; 0 writes one file")
	)
	flag.Parse()
	if err := run(*name, *out, *seed, *classes, *perClass, *docs, *vocab, *split, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "srdagen:", err)
		os.Exit(1)
	}
}

func run(name, out string, seed int64, classes, perClass, docs, vocab int, split float64, log io.Writer) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	var ds *srda.Dataset
	switch name {
	case "pie":
		ds = srda.PIELike(srda.PIEConfig{Classes: classes, PerClass: perClass, Seed: seed})
	case "isolet":
		ds = srda.IsoletLike(srda.IsoletConfig{Classes: classes, PerClass: perClass, Seed: seed})
	case "mnist":
		ds = srda.MNISTLike(srda.MNISTConfig{Classes: classes, PerClass: perClass, Seed: seed})
	case "news":
		ds = srda.NewsLike(srda.NewsConfig{Classes: classes, Docs: docs, Vocab: vocab, Seed: seed})
	default:
		return fmt.Errorf("unknown dataset %q", name)
	}
	s := ds.Describe()
	fmt.Fprintf(log, "generated %s: m=%d n=%d c=%d avg-nnz=%.1f\n", s.Name, s.Size, s.Dim, s.Classes, s.AvgNNZ)

	write := func(path string, d *srda.Dataset) (err error) {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		// Close flushes; a full disk can surface only here, so the error
		// must not be dropped or the written split is silently truncated.
		defer func() {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}()
		if err := d.WriteLibSVM(f); err != nil {
			return err
		}
		fmt.Fprintf(log, "wrote %d samples to %s\n", d.NumSamples(), path)
		return nil
	}

	if split > 0 {
		train, test, err := ds.SplitFraction(rand.New(rand.NewSource(seed)), split)
		if err != nil {
			return err
		}
		if err := write(out+".train.svm", train); err != nil {
			return err
		}
		return write(out+".test.svm", test)
	}
	return write(out, ds)
}
