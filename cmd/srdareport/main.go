// Command srdareport validates and summarizes the structured JSON run
// reports written by srdatrain -report and srdabench -report.  It exits
// non-zero when a file fails schema validation, which is how CI holds the
// reporting pipeline to its contract without external JSON tooling.
//
//	srdareport run.json [more.json ...]
//
// -q suppresses the summary and only validates.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"srda/internal/obs"
)

func main() {
	quiet := flag.Bool("q", false, "validate only; print nothing on success")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "srdareport: need at least one report file; see -h")
		os.Exit(2)
	}
	ok := true
	for _, path := range flag.Args() {
		if err := check(os.Stdout, path, *quiet); err != nil {
			fmt.Fprintf(os.Stderr, "srdareport: %s: %v\n", path, err)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// check validates one report file and, unless quiet, prints its summary.
func check(w io.Writer, path string, quiet bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rep, err := obs.ValidateReport(data)
	if err != nil {
		return err
	}
	if quiet {
		return nil
	}
	summarize(w, path, rep)
	return nil
}

func summarize(w io.Writer, path string, rep *obs.Report) {
	fmt.Fprintf(w, "%s: %s, %d phases, %.3fs total\n", path, rep.Tool, len(rep.Phases), rep.TotalSeconds)
	for _, p := range rep.Phases {
		fmt.Fprintf(w, "  phase %-12s %10.6fs\n", p.Name, p.Seconds)
	}
	if s := rep.Solver; s != nil {
		fmt.Fprintf(w, "  solver %s: %d total iterations over %d responses\n",
			s.Strategy, s.TotalIters, len(s.IterCounts))
		for j := range s.IterCounts {
			fmt.Fprintf(w, "    response %d: %d iters, final residual %.6g\n",
				j, s.IterCounts[j], s.Residuals[j])
		}
	}
	keys := make([]string, 0, len(rep.Data))
	for k := range rep.Data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  data %-14s %g\n", k, rep.Data[k])
	}
}
