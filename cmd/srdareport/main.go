// Command srdareport validates and summarizes the structured JSON run
// reports written by srdatrain -report and srdabench -report.  It exits
// non-zero when a file fails schema validation, which is how CI holds the
// reporting pipeline to its contract without external JSON tooling.
//
//	srdareport run.json [more.json ...]
//	srdareport benchdiff [-tol 0.10] old.json new.json
//	srdareport tracemerge [-out merged.json] router.json worker0.json ...
//	srdareport top [-once | -watch] http://router:8080
//
// -q suppresses the summary and only validates.  The benchdiff subcommand
// compares two bench reports written by srdabench -json-out and exits
// non-zero when any benchmark slowed down by more than -tol, which is how
// CI (and `make bench-record` reviewers) catch performance regressions.
// The tracemerge subcommand stitches the per-process Chrome trace files
// flushed by srdaserve -trace-out into one Perfetto timeline.  The top
// subcommand renders a router's /cluster/snapshot as a fleet view —
// replica status and rates, merged cluster quantiles, SLO alerts — once
// (-once, the default) or as a live refreshing screen (-watch).
//
// Every subcommand documents its flags and exit-code contract in -h:
// 0 clean, 1 on validation/processing failures, 2 on usage errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"srda/internal/obs"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "benchdiff" {
		os.Exit(benchdiffMain(os.Stdout, os.Stderr, os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "tracemerge" {
		os.Exit(tracemergeMain(os.Stdout, os.Stderr, os.Args[2:]))
	}
	if len(os.Args) > 1 && os.Args[1] == "top" {
		os.Exit(topMain(os.Stdout, os.Stderr, os.Args[2:]))
	}
	quiet := flag.Bool("q", false, "validate only; print nothing on success")
	flag.Usage = func() {
		ew := flag.CommandLine.Output()
		fmt.Fprintln(ew, "usage: srdareport [-q] report.json [more.json ...]")
		fmt.Fprintln(ew, "       srdareport benchdiff [-tol 0.10] old.json new.json")
		fmt.Fprintln(ew, "       srdareport tracemerge [-out merged.json] a.json b.json ...")
		fmt.Fprintln(ew, "       srdareport top [-once | -watch [-every 2s]] <router-url | snapshot.json>")
		fmt.Fprintln(ew)
		fmt.Fprintln(ew, "flags:")
		flag.PrintDefaults()
		fmt.Fprintln(ew)
		fmt.Fprintln(ew, "exit codes: 0 clean, 1 on validation failures, 2 on usage errors")
		fmt.Fprintln(ew, "each subcommand documents its own flags and exit codes in -h")
	}
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "srdareport: need at least one report file; see -h")
		os.Exit(2)
	}
	ok := true
	for _, path := range flag.Args() {
		if err := check(os.Stdout, path, *quiet); err != nil {
			fmt.Fprintf(os.Stderr, "srdareport: %s: %v\n", path, err)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// benchdiffMain implements `srdareport benchdiff old.json new.json`,
// returning the process exit code: 0 clean, 1 on regressions (or broken
// report files), 2 on usage errors.
func benchdiffMain(w, ew io.Writer, args []string) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(ew)
	tol := fs.Float64("tol", 0.10, "fractional slowdown tolerated before a benchmark counts as regressed")
	fs.Usage = func() {
		fmt.Fprintln(ew, "usage: srdareport benchdiff [-tol 0.10] old.json new.json")
		fmt.Fprintln(ew)
		fmt.Fprintln(ew, "diffs two bench reports written by srdabench -json-out, one line per")
		fmt.Fprintln(ew, "benchmark, and fails when any slowed down beyond the tolerance.")
		fmt.Fprintln(ew)
		fmt.Fprintln(ew, "flags:")
		fs.PrintDefaults()
		fmt.Fprintln(ew)
		fmt.Fprintln(ew, "exit codes: 0 clean, 1 on regressions or broken report files, 2 on usage errors")
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(ew, "srdareport benchdiff: need exactly two bench report files (old new); see -h")
		return 2
	}
	regressions, err := benchdiff(w, fs.Arg(0), fs.Arg(1), *tol)
	if err != nil {
		fmt.Fprintf(ew, "srdareport benchdiff: %v\n", err)
		return 1
	}
	if regressions > 0 {
		fmt.Fprintf(ew, "srdareport benchdiff: %d benchmark(s) regressed beyond %.0f%%\n", regressions, *tol*100)
		return 1
	}
	return 0
}

// benchdiff loads, validates, and diffs two bench reports, printing one
// line per benchmark, and returns how many regressed.
func benchdiff(w io.Writer, oldPath, newPath string, tol float64) (int, error) {
	old, err := obs.ReadBenchFile(oldPath)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", oldPath, err)
	}
	cur, err := obs.ReadBenchFile(newPath)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", newPath, err)
	}
	regressions := 0
	for _, d := range obs.DiffBench(old, cur, tol) {
		switch d.Status {
		case "added":
			fmt.Fprintf(w, "%-24s %14s -> %12.0f ns/op  added\n", d.Name, "—", d.NewNs)
		case "removed":
			fmt.Fprintf(w, "%-24s %12.0f ns/op -> %12s  removed\n", d.Name, d.OldNs, "—")
		default:
			fmt.Fprintf(w, "%-24s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
				d.Name, d.OldNs, d.NewNs, (d.Ratio-1)*100, d.Status)
			if d.Regressed() {
				regressions++
			}
		}
	}
	return regressions, nil
}

// check validates one report file and, unless quiet, prints its summary.
func check(w io.Writer, path string, quiet bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rep, err := obs.ValidateReport(data)
	if err != nil {
		return err
	}
	if quiet {
		return nil
	}
	summarize(w, path, rep)
	return nil
}

func summarize(w io.Writer, path string, rep *obs.Report) {
	fmt.Fprintf(w, "%s: %s, %d phases, %.3fs total\n", path, rep.Tool, len(rep.Phases), rep.TotalSeconds)
	for _, p := range rep.Phases {
		fmt.Fprintf(w, "  phase %-12s %10.6fs\n", p.Name, p.Seconds)
	}
	if s := rep.Solver; s != nil {
		fmt.Fprintf(w, "  solver %s: %d total iterations over %d responses\n",
			s.Strategy, s.TotalIters, len(s.IterCounts))
		for j := range s.IterCounts {
			fmt.Fprintf(w, "    response %d: %d iters, final residual %.6g\n",
				j, s.IterCounts[j], s.Residuals[j])
		}
	}
	keys := make([]string, 0, len(rep.Data))
	for k := range rep.Data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  data %-14s %g\n", k, rep.Data[k])
	}
}
