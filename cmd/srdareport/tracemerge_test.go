package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"srda/internal/obs"
)

// mergedEvent decodes both metadata ("M") and span ("X") events from a
// merged trace; ids are typed uint64 so epoch-namespaced values survive
// the round trip bit-exactly.
type mergedEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
	PID  int    `json:"pid"`
	TID  uint64 `json:"tid"`
	Args struct {
		Name     string `json:"name"`
		TraceID  string `json:"trace_id"`
		SpanID   uint64 `json:"span_id"`
		ParentID uint64 `json:"parent_id"`
	} `json:"args"`
}

type mergedFile struct {
	TraceEvents     []mergedEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	EpochMicros     int64         `json:"epochMicros"`
}

// TestTracemergeGolden builds two per-process artifacts with seeded
// tracers and frozen clocks — a "router" that opens route→forward and a
// "worker" that continues the same trace remotely 2.5ms later — merges
// them, and pins the merged timeline: process metadata first, pids per
// input, timestamps rebased onto the router's epoch, and the worker
// span carrying the router's trace id bit-exactly.
func TestTracemergeGolden(t *testing.T) {
	clockA := time.Unix(100, 0)
	ta := obs.NewTracerSeeded(8, 1, func() time.Time {
		clockA = clockA.Add(time.Millisecond)
		return clockA
	})
	ta.SetProcess("router")
	_, route := ta.StartRoot(context.Background(), "route")
	fwd := route.StartChild("forward")

	// The worker's wall clock sits 2.5ms past the router's epoch,
	// standing in for a second process on the same machine.
	clockB := time.Unix(100, 0).Add(2500 * time.Microsecond)
	tb := obs.NewTracerSeeded(8, 2, func() time.Time {
		clockB = clockB.Add(time.Millisecond)
		return clockB
	})
	tb.SetProcess("worker")
	_, req := tb.StartRemote(context.Background(), "request", route.TraceID(), fwd.SpanID())
	req.End()
	fwd.End()
	route.End()

	dir := t.TempDir()
	paths := make([]string, 0, 2)
	for _, pt := range []struct {
		name string
		tr   *obs.Tracer
	}{{"router.json", ta}, {"worker.json", tb}} {
		var buf bytes.Buffer
		if err := pt.tr.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, pt.name)
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}

	var out, errOut bytes.Buffer
	if code := tracemergeMain(&out, &errOut, paths); code != 0 {
		t.Fatalf("tracemerge exit %d: %s", code, errOut.String())
	}

	var merged mergedFile
	if err := json.Unmarshal(out.Bytes(), &merged); err != nil {
		t.Fatalf("merged output does not parse: %v\n%s", err, out.String())
	}
	// Router's earliest span started at its first clock tick: 100.001s.
	if want := time.Unix(100, 0).Add(time.Millisecond).UnixMicro(); merged.EpochMicros != want {
		t.Fatalf("merged epochMicros = %d, want %d", merged.EpochMicros, want)
	}
	ev := merged.TraceEvents
	if len(ev) != 5 {
		t.Fatalf("merged event count = %d, want 5 (2 metadata + 3 spans):\n%s", len(ev), out.String())
	}
	// Metadata rows come first, one per input, in input order.
	for i, want := range []struct {
		pid  int
		name string
	}{{1, "router"}, {2, "worker"}} {
		if ev[i].Ph != "M" || ev[i].Name != "process_name" || ev[i].PID != want.pid || ev[i].Args.Name != want.name {
			t.Fatalf("metadata event %d = %+v, want pid %d name %q", i, ev[i], want.pid, want.name)
		}
	}
	// Span rows: route (ts 0), forward (+1ms), and the worker's request
	// rebased +2.5ms onto the shared timeline, all on one trace id.
	trace := uint64(route.TraceID())
	wantSpans := []struct {
		name   string
		ts     int64
		pid    int
		span   uint64
		parent uint64
	}{
		{"route", 0, 1, uint64(route.SpanID()), 0},
		{"forward", 1000, 1, uint64(fwd.SpanID()), uint64(route.SpanID())},
		{"request", 2500, 2, uint64(req.SpanID()), uint64(fwd.SpanID())},
	}
	for i, want := range wantSpans {
		got := ev[i+2]
		if got.Ph != "X" || got.Name != want.name || got.TS != want.ts || got.PID != want.pid {
			t.Fatalf("span %d = %+v, want name %q ts %d pid %d", i, got, want.name, want.ts, want.pid)
		}
		if got.TID != trace || got.Args.TraceID != obs.FormatTraceID(route.TraceID()) {
			t.Fatalf("span %q trace = %d (%s), want %d", want.name, got.TID, got.Args.TraceID, trace)
		}
		if got.Args.SpanID != want.span || got.Args.ParentID != want.parent {
			t.Fatalf("span %q ids = %d/%d, want %d/%d",
				want.name, got.Args.SpanID, got.Args.ParentID, want.span, want.parent)
		}
	}
	// Worker ids live in a different epoch namespace than router ids, so
	// a merge can never alias spans across processes.
	if ev[4].Args.SpanID>>32 == ev[2].Args.SpanID>>32 {
		t.Fatal("worker and router span ids share an epoch namespace")
	}

	// -out writes the same bytes, and a rerun is byte-identical: the
	// merge is deterministic end to end.
	outPath := filepath.Join(dir, "merged.json")
	if code := tracemergeMain(&bytes.Buffer{}, &errOut, append([]string{"-out", outPath}, paths...)); code != 0 {
		t.Fatalf("tracemerge -out exit %d: %s", code, errOut.String())
	}
	fromFile, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromFile, out.Bytes()) {
		t.Fatal("-out file differs from stdout merge of the same inputs")
	}
}

// TestTracemergeErrors pins the exit-code contract: 2 on usage, 1 on
// unreadable or malformed inputs.
func TestTracemergeErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := tracemergeMain(&out, &errOut, nil); code != 2 {
		t.Fatalf("no-args exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "need at least one") {
		t.Fatalf("usage message = %q", errOut.String())
	}

	errOut.Reset()
	if code := tracemergeMain(&out, &errOut, []string{filepath.Join(t.TempDir(), "absent.json")}); code != 1 {
		t.Fatalf("missing-file exit = %d, want 1", code)
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	errOut.Reset()
	if code := tracemergeMain(&out, &errOut, []string{bad}); code != 1 {
		t.Fatalf("malformed-file exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "bad") {
		t.Fatalf("malformed-file error does not name the artifact: %q", errOut.String())
	}
}
