package main

// The tracemerge subcommand stitches per-process Chrome trace artifacts
// (flushed by srdaserve's -trace-out in each role) into one Perfetto
// timeline: one pid per input file, timestamps rebased onto the
// earliest epoch, trace ids preserved bit-exactly so a request that
// crossed router and worker reads as one aligned trace.

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"srda/internal/obs"
)

// tracemergeMain implements `srdareport tracemerge [-out merged.json]
// a.json b.json ...`, returning the process exit code: 0 clean, 1 on
// unreadable or malformed inputs, 2 on usage errors.
func tracemergeMain(w, ew io.Writer, args []string) int {
	fs := flag.NewFlagSet("tracemerge", flag.ContinueOnError)
	fs.SetOutput(ew)
	out := fs.String("out", "", "write the merged trace here instead of stdout")
	fs.Usage = func() {
		fmt.Fprintln(ew, "usage: srdareport tracemerge [-out merged.json] a.json b.json ...")
		fmt.Fprintln(ew)
		fmt.Fprintln(ew, "stitches per-process Chrome trace files (srdaserve -trace-out) into one")
		fmt.Fprintln(ew, "Perfetto timeline: one pid per input, timestamps rebased, trace ids kept.")
		fmt.Fprintln(ew)
		fmt.Fprintln(ew, "flags:")
		fs.PrintDefaults()
		fmt.Fprintln(ew)
		fmt.Fprintln(ew, "exit codes: 0 clean, 1 on unreadable or malformed inputs, 2 on usage errors")
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(ew, "srdareport tracemerge: need at least one per-process trace file; see -h")
		return 2
	}
	artifacts := make([]obs.TraceArtifact, 0, fs.NArg())
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(ew, "srdareport tracemerge: %v\n", err)
			return 1
		}
		// Basename without .json is the fallback process label for older
		// artifacts that carry no process field of their own.
		label := filepath.Base(path)
		if ext := filepath.Ext(label); ext == ".json" {
			label = label[:len(label)-len(ext)]
		}
		artifacts = append(artifacts, obs.TraceArtifact{Label: label, Data: data})
	}
	dst := w
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(ew, "srdareport tracemerge: %v\n", err)
			return 1
		}
		defer func() { _ = f.Close() }()
		dst = f
	}
	if err := obs.MergeChromeTraces(dst, artifacts); err != nil {
		fmt.Fprintf(ew, "srdareport tracemerge: %v\n", err)
		return 1
	}
	return 0
}
