package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"srda/internal/obs"
)

func writeReport(t *testing.T, rep *obs.Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "r.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckValidReport(t *testing.T) {
	path := writeReport(t, &obs.Report{
		Tool:         "srdatrain",
		Phases:       []obs.Phase{{Name: "lsqr", Seconds: 0.2}},
		TotalSeconds: 0.25,
		Solver:       &obs.SolverStats{Strategy: "lsqr", TotalIters: 12, IterCounts: []int{5, 7}, Residuals: []float64{0.1, 0.2}},
		Data:         map[string]float64{"samples": 80, "classes": 3},
	})
	var sb strings.Builder
	if err := check(&sb, path, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"srdatrain", "phase lsqr", "12 total iterations", "response 1: 7 iters", "data classes"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// Quiet mode validates silently.
	sb.Reset()
	if err := check(&sb, path, true); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("quiet mode printed %q", sb.String())
	}
}

func TestCheckRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	// iter_counts sum (9) disagrees with total_iters (99).
	if err := os.WriteFile(bad, []byte(`{"tool":"x","phases":[{"name":"a","seconds":1}],"total_seconds":1,"solver":{"strategy":"lsqr","total_iters":99,"iter_counts":[4,5],"residuals":[0.1,0.2]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := check(&sb, bad, false); err == nil {
		t.Fatal("inconsistent report accepted")
	}
	if err := check(&sb, filepath.Join(dir, "missing.json"), false); err == nil {
		t.Fatal("missing file accepted")
	}
}
