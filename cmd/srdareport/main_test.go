package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"srda/internal/obs"
)

func writeReport(t *testing.T, rep *obs.Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "r.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckValidReport(t *testing.T) {
	path := writeReport(t, &obs.Report{
		Tool:         "srdatrain",
		Phases:       []obs.Phase{{Name: "lsqr", Seconds: 0.2}},
		TotalSeconds: 0.25,
		Solver:       &obs.SolverStats{Strategy: "lsqr", TotalIters: 12, IterCounts: []int{5, 7}, Residuals: []float64{0.1, 0.2}},
		Data:         map[string]float64{"samples": 80, "classes": 3},
	})
	var sb strings.Builder
	if err := check(&sb, path, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"srdatrain", "phase lsqr", "12 total iterations", "response 1: 7 iters", "data classes"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// Quiet mode validates silently.
	sb.Reset()
	if err := check(&sb, path, true); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Fatalf("quiet mode printed %q", sb.String())
	}
}

func writeBench(t *testing.T, name string, rep *obs.BenchReport) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchFixture(ns map[string]float64) *obs.BenchReport {
	rep := &obs.BenchReport{Tool: "srdabench", Schema: obs.BenchSchemaVersion}
	for _, name := range []string{"FitLSQR/2000x400", "ParGemm/256x512x64", "PredictBatch/64x800"} {
		rep.Results = append(rep.Results, obs.BenchResult{Name: name, Iters: 10, NsPerOp: ns[name]})
	}
	return rep
}

func TestBenchdiffCleanAndRegressed(t *testing.T) {
	oldPath := writeBench(t, "old.json", benchFixture(map[string]float64{
		"FitLSQR/2000x400": 1e6, "ParGemm/256x512x64": 8e5, "PredictBatch/64x800": 2e5,
	}))
	// Within tolerance everywhere: exit 0 and every line says ok.
	samePath := writeBench(t, "same.json", benchFixture(map[string]float64{
		"FitLSQR/2000x400": 1.05e6, "ParGemm/256x512x64": 7.8e5, "PredictBatch/64x800": 2e5,
	}))
	var sb strings.Builder
	if code := benchdiffMain(&sb, &sb, []string{oldPath, samePath}); code != 0 {
		t.Fatalf("clean diff exited %d:\n%s", code, sb.String())
	}
	if strings.Count(sb.String(), "ok") != 3 {
		t.Fatalf("want 3 ok lines:\n%s", sb.String())
	}

	// One benchmark 25%% slower: exit 1 and the line is flagged.
	sb.Reset()
	slowPath := writeBench(t, "slow.json", benchFixture(map[string]float64{
		"FitLSQR/2000x400": 1.25e6, "ParGemm/256x512x64": 8e5, "PredictBatch/64x800": 2e5,
	}))
	if code := benchdiffMain(&sb, &sb, []string{oldPath, slowPath}); code != 1 {
		t.Fatalf("regressed diff exited %d:\n%s", code, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "regression") || !strings.Contains(out, "1 benchmark(s) regressed") {
		t.Fatalf("regression not flagged:\n%s", out)
	}

	// A looser -tol accepts the same pair.
	sb.Reset()
	if code := benchdiffMain(&sb, &sb, []string{"-tol", "0.30", oldPath, slowPath}); code != 0 {
		t.Fatalf("-tol 0.30 still exited %d:\n%s", code, sb.String())
	}
}

func TestBenchdiffUsageAndBadFiles(t *testing.T) {
	var sb strings.Builder
	if code := benchdiffMain(&sb, &sb, []string{"only-one.json"}); code != 2 {
		t.Fatalf("one arg exited %d", code)
	}
	good := writeBench(t, "good.json", benchFixture(map[string]float64{
		"FitLSQR/2000x400": 1, "ParGemm/256x512x64": 1, "PredictBatch/64x800": 1,
	}))
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"tool":"srdabench","schema":1,"results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := benchdiffMain(&sb, &sb, []string{good, bad}); code != 1 {
		t.Fatalf("invalid new report exited %d", code)
	}
	if code := benchdiffMain(&sb, &sb, []string{filepath.Join(t.TempDir(), "missing.json"), good}); code != 1 {
		t.Fatalf("missing old report exited %d", code)
	}
}

func TestCheckRejectsInvalid(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	// iter_counts sum (9) disagrees with total_iters (99).
	if err := os.WriteFile(bad, []byte(`{"tool":"x","phases":[{"name":"a","seconds":1}],"total_seconds":1,"solver":{"strategy":"lsqr","total_iters":99,"iter_counts":[4,5],"residuals":[0.1,0.2]}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := check(&sb, bad, false); err == nil {
		t.Fatal("inconsistent report accepted")
	}
	if err := check(&sb, filepath.Join(dir, "missing.json"), false); err == nil {
		t.Fatal("missing file accepted")
	}
}
