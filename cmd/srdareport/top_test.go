package main

import (
	"bytes"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateTop = flag.Bool("update", false, "rewrite the top golden file")

// TestTopOnceGolden renders the fixture snapshot once and pins the
// fleet-view layout byte for byte: the document fully determines the
// frame, so the same snapshot renders identically everywhere.
func TestTopOnceGolden(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := topMain(&out, &errOut, []string{"-once", filepath.Join("testdata", "top_snapshot.json")}); code != 0 {
		t.Fatalf("top -once = %d, stderr: %s", code, errOut.String())
	}
	golden := filepath.Join("testdata", "top_once.golden")
	if *updateTop {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("top frame drifted from golden:\n--- got ---\n%s--- want ---\n%s", out.Bytes(), want)
	}

	// Byte-determinism: a second render of the same document is identical.
	var again bytes.Buffer
	if code := topMain(&again, &errOut, []string{filepath.Join("testdata", "top_snapshot.json")}); code != 0 {
		t.Fatalf("second render = %d", code)
	}
	if !bytes.Equal(out.Bytes(), again.Bytes()) {
		t.Error("two renders of the same snapshot differ")
	}
}

// TestTopLive serves the fixture over HTTP and checks both the single
// fetch (same bytes as the file render) and -watch mode, which clears
// the screen between frames and honors -frames.
func TestTopLive(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "top_snapshot.json"))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/cluster/snapshot" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(data)
	}))
	defer srv.Close()

	var fromFile, fromURL, errOut bytes.Buffer
	if code := topMain(&fromFile, &errOut, []string{filepath.Join("testdata", "top_snapshot.json")}); code != 0 {
		t.Fatal(errOut.String())
	}
	if code := topMain(&fromURL, &errOut, []string{"-once", srv.URL}); code != 0 {
		t.Fatal(errOut.String())
	}
	if !bytes.Equal(fromFile.Bytes(), fromURL.Bytes()) {
		t.Error("live fetch renders differently from the file source")
	}

	var watched bytes.Buffer
	if code := topMain(&watched, &errOut, []string{"-watch", "-every", "1ms", "-frames", "2", srv.URL}); code != 0 {
		t.Fatalf("top -watch = %d, stderr: %s", code, errOut.String())
	}
	if got := strings.Count(watched.String(), "\x1b[2J"); got != 2 {
		t.Errorf("watch mode cleared the screen %d times, want 2", got)
	}
	if got := strings.Count(watched.String(), "fleet at "); got != 2 {
		t.Errorf("watch mode rendered %d frames, want 2", got)
	}
}

// TestTopErrors pins the exit-code contract: 2 on usage errors, 1 on
// unreadable, invalid, or unreachable sources.
func TestTopErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := topMain(&out, &errOut, nil); code != 2 {
		t.Errorf("no source = %d, want 2", code)
	}
	if code := topMain(&out, &errOut, []string{"testdata/nope.json"}); code != 1 {
		t.Errorf("missing file = %d, want 1", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"schema": "wrong/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := topMain(&out, &errOut, []string{bad}); code != 1 {
		t.Errorf("wrong schema = %d, want 1", code)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	if code := topMain(&out, &errOut, []string{srv.URL}); code != 1 {
		t.Errorf("HTTP 500 = %d, want 1", code)
	}
}

// TestSubcommandHelp audits every subcommand's -h output for the shared
// contract: a usage line, the flag list, and the exit-code legend — and
// asking for help is not an error.
func TestSubcommandHelp(t *testing.T) {
	subs := map[string]func(w, ew *bytes.Buffer) int{
		"benchdiff":  func(w, ew *bytes.Buffer) int { return benchdiffMain(w, ew, []string{"-h"}) },
		"tracemerge": func(w, ew *bytes.Buffer) int { return tracemergeMain(w, ew, []string{"-h"}) },
		"top":        func(w, ew *bytes.Buffer) int { return topMain(w, ew, []string{"-h"}) },
	}
	for name, run := range subs {
		t.Run(name, func(t *testing.T) {
			var out, errOut bytes.Buffer
			if code := run(&out, &errOut); code != 0 {
				t.Errorf("%s -h exits %d, want 0", name, code)
			}
			help := errOut.String()
			for _, want := range []string{"usage: srdareport " + name, "flags:", "exit codes: 0"} {
				if !strings.Contains(help, want) {
					t.Errorf("%s -h output missing %q:\n%s", name, want, help)
				}
			}
		})
	}
}
