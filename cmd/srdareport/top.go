package main

// The top subcommand renders a router's /cluster/snapshot document as a
// terminal fleet view: one row per replica with its scrape status and
// derived request/error rates, the merged cluster-level CKMS quantiles,
// and the SLO alert table.  The source is either a router base URL
// (fetched live) or a snapshot JSON file (rendered offline, which is
// also how the golden test pins the layout byte for byte).

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"srda/internal/telemetry"
)

// topExitContract is the exit-code line every srdareport subcommand
// prints in its -h output.
const topExitContract = "exit codes: 0 clean, 1 on fetch or validation failures, 2 on usage errors"

// topMain implements `srdareport top [-once | -watch] <router-url |
// snapshot.json>`, returning the process exit code: 0 clean, 1 on fetch
// or validation failures, 2 on usage errors.
func topMain(w, ew io.Writer, args []string) int {
	fs := flag.NewFlagSet("top", flag.ContinueOnError)
	fs.SetOutput(ew)
	once := fs.Bool("once", false, "render a single frame and exit (the default for file sources; overrides -watch)")
	watch := fs.Bool("watch", false, "clear the screen and re-render every -every until interrupted")
	every := fs.Duration("every", 2*time.Second, "refresh interval in -watch mode")
	frames := fs.Int("frames", 0, "in -watch mode, stop after this many frames (0 = until interrupted)")
	fs.Usage = func() {
		fmt.Fprintln(ew, "usage: srdareport top [-once | -watch [-every 2s]] <router-url | snapshot.json>")
		fmt.Fprintln(ew)
		fmt.Fprintln(ew, "renders the cluster fleet view from a router's /cluster/snapshot: per-replica")
		fmt.Fprintln(ew, "status and request/error rates, merged cluster quantiles, and SLO alerts.")
		fmt.Fprintln(ew, "The source is a router base URL or a saved snapshot JSON file.")
		fmt.Fprintln(ew)
		fmt.Fprintln(ew, "flags:")
		fs.PrintDefaults()
		fmt.Fprintln(ew)
		fmt.Fprintln(ew, topExitContract)
	}
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(ew, "srdareport top: need exactly one router URL or snapshot file; see -h")
		return 2
	}
	source := fs.Arg(0)
	live := strings.HasPrefix(source, "http://") || strings.HasPrefix(source, "https://")
	if *once || !live {
		*watch = false
	}

	renderOnce := func(clear bool) int {
		snap, err := fetchSnapshot(source, live)
		if err != nil {
			fmt.Fprintf(ew, "srdareport top: %v\n", err)
			return 1
		}
		if clear {
			fmt.Fprint(w, "\x1b[2J\x1b[H")
		}
		renderTop(w, snap)
		return 0
	}
	if !*watch {
		return renderOnce(false)
	}
	for n := 0; ; n++ {
		if code := renderOnce(true); code != 0 {
			return code
		}
		if *frames > 0 && n+1 >= *frames {
			return 0
		}
		time.Sleep(*every)
	}
}

// fetchSnapshot loads and validates the snapshot document from a router
// base URL (live) or a file path.
func fetchSnapshot(source string, live bool) (*telemetry.ClusterSnapshot, error) {
	var data []byte
	if live {
		url := source
		if !strings.HasSuffix(url, "/cluster/snapshot") {
			url = strings.TrimRight(url, "/") + "/cluster/snapshot"
		}
		client := &http.Client{Timeout: 10 * time.Second}
		resp, err := client.Get(url)
		if err != nil {
			return nil, err
		}
		defer func() { _ = resp.Body.Close() }() // best-effort; body already read or failed
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
		}
		if data, err = io.ReadAll(resp.Body); err != nil {
			return nil, err
		}
	} else {
		var err error
		if data, err = os.ReadFile(source); err != nil {
			return nil, err
		}
	}
	return telemetry.ValidateClusterSnapshot(data)
}

// renderTop writes one deterministic frame of the fleet view: the input
// document fully determines the output bytes, so a frozen snapshot
// renders identically everywhere (the golden test's contract).
func renderTop(w io.Writer, snap *telemetry.ClusterSnapshot) {
	up := 0
	for _, r := range snap.Replicas {
		if r.Up {
			up++
		}
	}
	fmt.Fprintf(w, "fleet at %s  |  %d replicas, %d up, %d series\n\n",
		snap.Time.UTC().Format(time.RFC3339), len(snap.Replicas), up, snap.Series)
	fmt.Fprintf(w, "%-28s %-5s %8s %8s %9s %7s  %s\n",
		"REPLICA", "UP", "REQ/S", "ERR/S", "P99(S)", "QUEUE", "ERROR")
	for _, r := range snap.Replicas {
		if r.Up {
			fmt.Fprintf(w, "%-28s %-5s %8.1f %8.1f %9.4f %7.0f\n",
				r.Replica, "up", r.RequestRate, r.ErrorRate, r.P99Seconds, r.QueueDepth)
		} else {
			fmt.Fprintf(w, "%-28s %-5s %8s %8s %9s %7s  %s\n",
				r.Replica, "DOWN", "-", "-", "-", "-", r.Error)
		}
	}
	if len(snap.Quantiles) > 0 {
		fmt.Fprintf(w, "\n%-28s %8s %9s %9s %9s\n", "CLUSTER QUANTILES", "COUNT", "P50", "P95", "P99")
		for _, q := range snap.Quantiles {
			fmt.Fprintf(w, "%-28s %8d %9.4f %9.4f %9.4f\n", q.Metric, q.Count, q.P50, q.P95, q.P99)
		}
	}
	if len(snap.Alerts) > 0 {
		fmt.Fprintf(w, "\n%-28s %-8s %-9s %8s %8s  %s\n", "ALERTS", "WINDOW", "STATE", "BURN", "LIMIT", "SINCE")
		for _, a := range snap.Alerts {
			since := ""
			if !a.Since.IsZero() {
				since = a.Since.UTC().Format(time.RFC3339)
			}
			fmt.Fprintf(w, "%-28s %-8s %-9s %8.2f %8.2f  %s\n",
				a.Objective, a.Window, a.State, a.Burn, a.Threshold, since)
		}
	}
}
