// Command srdatrain trains, evaluates, and applies SRDA models on
// libsvm-format data files.
//
// Train a model and report held-out accuracy:
//
//	srdatrain -train corpus.svm -test heldout.svm -alpha 1 -model out.srda
//
// Apply a saved model (prints one predicted label per input line):
//
//	srdatrain -model out.srda -predict new.svm
//
// With only -train, the tool reports training error.  -solver selects
// auto|primal|dual|lsqr (auto follows the paper's protocol), -knn K
// switches the classifier from nearest-centroid to k-NN.
//
// Observability: -report out.json writes a structured run report with
// per-phase wall times and per-response LSQR iteration counts and residual
// norms (validate or summarize it with srdareport); -profile p writes
// p.cpu.pprof and p.heap.pprof; -trace t.out writes a runtime/trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"srda"
	"srda/internal/obs"
)

// config carries every flag; run takes it whole so tests can drive the
// tool without reparsing flags.
type config struct {
	trainPath  string
	testPath   string
	predict    string
	modelPath  string
	alpha      float64
	solverName string
	iters      int
	knn        int
	features   int
	workers    int
	disk       bool
	perClass   bool
	reportPath string
	profile    string
	tracePath  string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.trainPath, "train", "", "libsvm-format training data")
	flag.StringVar(&cfg.testPath, "test", "", "libsvm-format held-out data")
	flag.StringVar(&cfg.predict, "predict", "", "libsvm-format data to classify with -model")
	flag.StringVar(&cfg.modelPath, "model", "", "model file to write (with -train) or read (with -predict)")
	flag.Float64Var(&cfg.alpha, "alpha", 1, "ridge regularizer α")
	flag.StringVar(&cfg.solverName, "solver", "auto", "solver: auto, primal, dual, lsqr")
	flag.IntVar(&cfg.iters, "lsqr-iters", 30, "LSQR iteration cap")
	flag.IntVar(&cfg.knn, "knn", 0, "classify with k-NN instead of nearest centroid (0 = centroid)")
	flag.IntVar(&cfg.features, "features", 0, "dimensionality (0 = infer from data)")
	flag.BoolVar(&cfg.disk, "disk", false, "train out of core: spool the training matrix to a temp file and stream it")
	flag.BoolVar(&cfg.perClass, "per-class", false, "print per-class precision/recall/F1 for evaluated sets")
	flag.StringVar(&cfg.reportPath, "report", "", "write a structured JSON run report (phase timings, LSQR telemetry) to this path")
	flag.StringVar(&cfg.profile, "profile", "", "write CPU and heap profiles to <prefix>.cpu.pprof and <prefix>.heap.pprof")
	flag.StringVar(&cfg.tracePath, "trace", "", "write a runtime/trace to this path")
	flag.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0), "training parallelism (kernel sharding + per-response solves); the fitted model is bitwise identical at any setting")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "srdatrain:", err)
		os.Exit(1)
	}
}

func run(cfg config) (err error) {
	stopProfiles, err := obs.StartProfiles(cfg.profile, cfg.tracePath)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	if cfg.predict != "" {
		return runPredict(cfg.predict, cfg.modelPath, cfg.features)
	}
	if cfg.trainPath == "" {
		return fmt.Errorf("need -train (or -predict with -model); see -h")
	}

	var sv srda.Solver
	switch cfg.solverName {
	case "auto":
		sv = srda.SolverAuto
	case "primal":
		sv = srda.SolverPrimal
	case "dual":
		sv = srda.SolverDual
	case "lsqr":
		sv = srda.SolverLSQR
	default:
		return fmt.Errorf("unknown solver %q", cfg.solverName)
	}

	begin := time.Now()
	tr := srda.NewTrace()
	sp := tr.Start("load")
	train, err := loadFile(cfg.trainPath, cfg.features)
	sp.End()
	if err != nil {
		return err
	}
	fmt.Printf("train: %d samples, %d features, %d classes, %.1f avg nnz\n",
		train.NumSamples(), train.NumFeatures(), train.NumClasses, train.AvgNNZ())

	opt := srda.Options{Alpha: cfg.alpha, Solver: sv, LSQRIter: cfg.iters, Workers: cfg.workers, Whiten: true, Trace: tr}
	start := time.Now()
	var model *srda.Model
	if cfg.disk {
		model, err = trainOutOfCore(train, opt)
	} else {
		model, err = srda.FitCSR(train.Sparse, train.Labels, train.NumClasses, opt)
	}
	if err != nil {
		return err
	}
	fmt.Printf("trained in %s (%d LSQR iterations, %d embedding dims)\n",
		time.Since(start).Round(time.Millisecond), model.Iters, model.Dim())

	data := map[string]float64{
		"samples":  float64(train.NumSamples()),
		"features": float64(train.NumFeatures()),
		"classes":  float64(train.NumClasses),
	}
	evalSpan := tr.Start("eval")
	embTrain := model.TransformSparse(train.Sparse)
	evalSet := func(name string, ds *srda.Dataset) (float64, error) {
		emb := model.TransformSparse(ds.Sparse)
		var pred []int
		if cfg.knn > 0 {
			clf, err := srda.FitKNN(embTrain, train.Labels, train.NumClasses, cfg.knn)
			if err != nil {
				return 0, err
			}
			pred = clf.Predict(emb)
		} else {
			clf, err := srda.FitNearestCentroid(embTrain, train.Labels, train.NumClasses)
			if err != nil {
				return 0, err
			}
			pred = clf.Predict(emb)
		}
		rate := srda.ErrorRate(pred, ds.Labels)
		fmt.Printf("%s error: %.2f%% (%d samples)\n", name, 100*rate, ds.NumSamples())
		if cfg.perClass {
			metrics, err := srda.ComputeMetrics(pred, ds.Labels, train.NumClasses)
			if err != nil {
				return 0, err
			}
			fmt.Print(metrics.String())
		}
		return rate, nil
	}
	rate, err := evalSet("training", train)
	if err != nil {
		evalSpan.End()
		return err
	}
	data["train_error"] = rate
	if cfg.testPath != "" {
		test, err := loadFile(cfg.testPath, 0)
		if err != nil {
			evalSpan.End()
			return err
		}
		rate, err := evalSet("test", test.AlignFeatures(train.NumFeatures()))
		if err != nil {
			evalSpan.End()
			return err
		}
		data["test_error"] = rate
	}
	evalSpan.End()

	if cfg.modelPath != "" {
		// Atomic temp-file + rename: a crash mid-save can never leave a
		// truncated model for srdaserve's hot reload to pick up.
		if err := srda.SaveModelFile(model, cfg.modelPath); err != nil {
			return err
		}
		fmt.Printf("model written to %s\n", cfg.modelPath)
	}
	if cfg.reportPath != "" {
		if err := writeReport(cfg.reportPath, tr, model, data, time.Since(begin).Seconds()); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", cfg.reportPath)
	}
	return nil
}

// writeReport assembles the structured run report: phase wall times from
// the trace plus the model's solver telemetry.
func writeReport(path string, tr *srda.Trace, model *srda.Model, data map[string]float64, total float64) error {
	rep := obs.Report{Tool: "srdatrain", TotalSeconds: total, Data: data}
	rep.AddTrace(tr)
	rep.Solver = &obs.SolverStats{
		Strategy:   model.Stats.Strategy.String(),
		TotalIters: model.Stats.Iters,
		IterCounts: model.Stats.IterCounts,
		Residuals:  model.Stats.Residuals,
	}
	return rep.WriteFile(path)
}

func runPredict(predictPath, modelPath string, features int) error {
	if modelPath == "" {
		return fmt.Errorf("-predict requires -model")
	}
	model, err := srda.LoadModelFile(modelPath)
	if err != nil {
		return err
	}
	ds, err := loadFile(predictPath, features)
	if err != nil {
		return err
	}
	ds = ds.AlignFeatures(model.W.Rows)
	if model.Centroids == nil {
		return fmt.Errorf("model %s carries no class centroids; retrain with this tool", modelPath)
	}
	pred := model.PredictSparse(ds.Sparse)
	for _, p := range pred {
		fmt.Println(p)
	}
	fmt.Fprintf(os.Stderr, "error against file labels: %.2f%%\n", 100*srda.ErrorRate(pred, ds.Labels))
	return nil
}

func loadFile(path string, features int) (*srda.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; nothing to flush
	return srda.ReadLibSVM(f, features)
}

// trainOutOfCore spools the training matrix to a temporary DiskCSR file
// and trains by streaming it — the paper's §III-C2 disk-I/O mode.  The
// whitening post-step is applied from the in-memory embedding of the
// (already loaded) training data, so results match the in-memory path.
func trainOutOfCore(train *srda.Dataset, opt srda.Options) (*srda.Model, error) {
	dir, err := os.MkdirTemp("", "srdatrain")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(dir) }() // best-effort temp cleanup
	path := dir + "/train.csr"
	if err := train.Sparse.WriteFile(path); err != nil {
		return nil, err
	}
	d, err := srda.OpenDiskCSR(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = d.Close() }() // read-only; nothing to flush
	model, err := srda.FitDiskCSR(d, train.Labels, train.NumClasses, opt)
	if err != nil {
		return nil, err
	}
	if opt.Whiten {
		if err := model.WhitenWithin(model.TransformSparse(train.Sparse), train.Labels); err != nil {
			return nil, err
		}
	}
	if err := model.SetCentroids(model.TransformSparse(train.Sparse), train.Labels); err != nil {
		return nil, err
	}
	return model, nil
}
