// Command srdatrain trains, evaluates, and applies SRDA models on
// libsvm-format data files.
//
// Train a model and report held-out accuracy:
//
//	srdatrain -train corpus.svm -test heldout.svm -alpha 1 -model out.srda
//
// Apply a saved model (prints one predicted label per input line):
//
//	srdatrain -model out.srda -predict new.svm
//
// With only -train, the tool reports training error.  -solver selects
// auto|primal|dual|lsqr (auto follows the paper's protocol), -knn K
// switches the classifier from nearest-centroid to k-NN.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"srda"
)

func main() {
	var (
		trainPath = flag.String("train", "", "libsvm-format training data")
		testPath  = flag.String("test", "", "libsvm-format held-out data")
		predict   = flag.String("predict", "", "libsvm-format data to classify with -model")
		modelPath = flag.String("model", "", "model file to write (with -train) or read (with -predict)")
		alpha     = flag.Float64("alpha", 1, "ridge regularizer α")
		solver    = flag.String("solver", "auto", "solver: auto, primal, dual, lsqr")
		iters     = flag.Int("lsqr-iters", 30, "LSQR iteration cap")
		knn       = flag.Int("knn", 0, "classify with k-NN instead of nearest centroid (0 = centroid)")
		features  = flag.Int("features", 0, "dimensionality (0 = infer from data)")
		disk      = flag.Bool("disk", false, "train out of core: spool the training matrix to a temp file and stream it")
		report    = flag.Bool("report", false, "print per-class precision/recall/F1 for evaluated sets")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "training parallelism (kernel sharding + per-response solves); the fitted model is bitwise identical at any setting")
	)
	flag.Parse()
	if err := run(*trainPath, *testPath, *predict, *modelPath, *alpha, *solver, *iters, *knn, *features, *workers, *disk, *report); err != nil {
		fmt.Fprintln(os.Stderr, "srdatrain:", err)
		os.Exit(1)
	}
}

func run(trainPath, testPath, predictPath, modelPath string, alpha float64, solverName string, iters, knn, features, workers int, disk, report bool) error {
	if predictPath != "" {
		return runPredict(predictPath, modelPath, features)
	}
	if trainPath == "" {
		return fmt.Errorf("need -train (or -predict with -model); see -h")
	}

	var sv srda.Solver
	switch solverName {
	case "auto":
		sv = srda.SolverAuto
	case "primal":
		sv = srda.SolverPrimal
	case "dual":
		sv = srda.SolverDual
	case "lsqr":
		sv = srda.SolverLSQR
	default:
		return fmt.Errorf("unknown solver %q", solverName)
	}

	train, err := loadFile(trainPath, features)
	if err != nil {
		return err
	}
	fmt.Printf("train: %d samples, %d features, %d classes, %.1f avg nnz\n",
		train.NumSamples(), train.NumFeatures(), train.NumClasses, train.AvgNNZ())

	opt := srda.Options{Alpha: alpha, Solver: sv, LSQRIter: iters, Workers: workers, Whiten: true}
	start := time.Now()
	var model *srda.Model
	if disk {
		model, err = trainOutOfCore(train, opt)
	} else {
		model, err = srda.FitCSR(train.Sparse, train.Labels, train.NumClasses, opt)
	}
	if err != nil {
		return err
	}
	fmt.Printf("trained in %s (%d LSQR iterations, %d embedding dims)\n",
		time.Since(start).Round(time.Millisecond), model.Iters, model.Dim())

	embTrain := model.TransformSparse(train.Sparse)
	evalSet := func(name string, ds *srda.Dataset) error {
		emb := model.TransformSparse(ds.Sparse)
		var pred []int
		if knn > 0 {
			clf, err := srda.FitKNN(embTrain, train.Labels, train.NumClasses, knn)
			if err != nil {
				return err
			}
			pred = clf.Predict(emb)
		} else {
			clf, err := srda.FitNearestCentroid(embTrain, train.Labels, train.NumClasses)
			if err != nil {
				return err
			}
			pred = clf.Predict(emb)
		}
		fmt.Printf("%s error: %.2f%% (%d samples)\n", name, 100*srda.ErrorRate(pred, ds.Labels), ds.NumSamples())
		if report {
			metrics, err := srda.ComputeMetrics(pred, ds.Labels, train.NumClasses)
			if err != nil {
				return err
			}
			fmt.Print(metrics.String())
		}
		return nil
	}
	if err := evalSet("training", train); err != nil {
		return err
	}
	if testPath != "" {
		test, err := loadFile(testPath, 0)
		if err != nil {
			return err
		}
		if err := evalSet("test", test.AlignFeatures(train.NumFeatures())); err != nil {
			return err
		}
	}

	if modelPath != "" {
		// Atomic temp-file + rename: a crash mid-save can never leave a
		// truncated model for srdaserve's hot reload to pick up.
		if err := srda.SaveModelFile(model, modelPath); err != nil {
			return err
		}
		fmt.Printf("model written to %s\n", modelPath)
	}
	return nil
}

func runPredict(predictPath, modelPath string, features int) error {
	if modelPath == "" {
		return fmt.Errorf("-predict requires -model")
	}
	model, err := srda.LoadModelFile(modelPath)
	if err != nil {
		return err
	}
	ds, err := loadFile(predictPath, features)
	if err != nil {
		return err
	}
	ds = ds.AlignFeatures(model.W.Rows)
	if model.Centroids == nil {
		return fmt.Errorf("model %s carries no class centroids; retrain with this tool", modelPath)
	}
	pred := model.PredictSparse(ds.Sparse)
	for _, p := range pred {
		fmt.Println(p)
	}
	fmt.Fprintf(os.Stderr, "error against file labels: %.2f%%\n", 100*srda.ErrorRate(pred, ds.Labels))
	return nil
}

func loadFile(path string, features int) (*srda.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; nothing to flush
	return srda.ReadLibSVM(f, features)
}

// trainOutOfCore spools the training matrix to a temporary DiskCSR file
// and trains by streaming it — the paper's §III-C2 disk-I/O mode.  The
// whitening post-step is applied from the in-memory embedding of the
// (already loaded) training data, so results match the in-memory path.
func trainOutOfCore(train *srda.Dataset, opt srda.Options) (*srda.Model, error) {
	dir, err := os.MkdirTemp("", "srdatrain")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(dir) }() // best-effort temp cleanup
	path := dir + "/train.csr"
	if err := train.Sparse.WriteFile(path); err != nil {
		return nil, err
	}
	d, err := srda.OpenDiskCSR(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = d.Close() }() // read-only; nothing to flush
	model, err := srda.FitDiskCSR(d, train.Labels, train.NumClasses, opt)
	if err != nil {
		return nil, err
	}
	if opt.Whiten {
		if err := model.WhitenWithin(model.TransformSparse(train.Sparse), train.Labels); err != nil {
			return nil, err
		}
	}
	if err := model.SetCentroids(model.TransformSparse(train.Sparse), train.Labels); err != nil {
		return nil, err
	}
	return model, nil
}
