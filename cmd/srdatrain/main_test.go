package main

import (
	"os"
	"path/filepath"
	"testing"

	"srda"
	"srda/internal/obs"
)

// writeCorpus generates a small corpus split into train/test libsvm files
// and returns their paths.
func writeCorpus(t *testing.T) (train, test string) {
	t.Helper()
	dir := t.TempDir()
	ds := srda.NewsLike(srda.NewsConfig{Classes: 3, Docs: 120, Vocab: 500, AvgLen: 25, Seed: 5})
	trainDS := ds.Subset(rangeInts(0, 80))
	testDS := ds.Subset(rangeInts(80, 120))
	train = filepath.Join(dir, "train.svm")
	test = filepath.Join(dir, "test.svm")
	for _, p := range []struct {
		path string
		d    *srda.Dataset
	}{{train, trainDS}, {test, testDS}} {
		f, err := os.Create(p.path)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.d.WriteLibSVM(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return train, test
}

func rangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestTrainEvaluateAndPredict(t *testing.T) {
	train, test := writeCorpus(t)
	model := filepath.Join(t.TempDir(), "m.srda")
	if err := run(config{trainPath: train, testPath: test, modelPath: model,
		alpha: 1, solverName: "lsqr", iters: 30, perClass: true}); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(model); err != nil || fi.Size() == 0 {
		t.Fatalf("model not written: %v", err)
	}
	// predict path
	if err := run(config{predict: test, modelPath: model, alpha: 1, solverName: "auto", iters: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainWithKNNClassifier(t *testing.T) {
	train, test := writeCorpus(t)
	if err := run(config{trainPath: train, testPath: test, alpha: 1, solverName: "auto", iters: 30, knn: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainErrors(t *testing.T) {
	train, _ := writeCorpus(t)
	if err := run(config{alpha: 1, solverName: "auto", iters: 30}); err == nil {
		t.Fatal("missing -train accepted")
	}
	if err := run(config{trainPath: train, alpha: 1, solverName: "warp", iters: 30}); err == nil {
		t.Fatal("unknown solver accepted")
	}
	if err := run(config{trainPath: "/definitely/missing.svm", alpha: 1, solverName: "auto", iters: 30}); err == nil {
		t.Fatal("missing train file accepted")
	}
	if err := run(config{predict: "/some/data.svm", alpha: 1, solverName: "auto", iters: 30}); err == nil {
		t.Fatal("-predict without -model accepted")
	}
}

func TestTrainOutOfCore(t *testing.T) {
	train, test := writeCorpus(t)
	if err := run(config{trainPath: train, testPath: test, alpha: 1, solverName: "lsqr", iters: 20, disk: true}); err != nil {
		t.Fatal(err)
	}
}

// TestTrainReportAndProfiles drives the observability flags end to end:
// the JSON report must validate against the schema and carry per-response
// LSQR telemetry, and the pprof/trace artifacts must be non-empty.
func TestTrainReportAndProfiles(t *testing.T) {
	train, test := writeCorpus(t)
	dir := t.TempDir()
	reportPath := filepath.Join(dir, "report.json")
	profile := filepath.Join(dir, "prof")
	tracePath := filepath.Join(dir, "run.trace")
	if err := run(config{trainPath: train, testPath: test, alpha: 1, solverName: "lsqr",
		iters: 30, reportPath: reportPath, profile: profile, tracePath: tracePath}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := obs.ValidateReport(raw)
	if err != nil {
		t.Fatalf("report does not validate: %v", err)
	}
	if rep.Tool != "srdatrain" {
		t.Fatalf("tool = %q", rep.Tool)
	}
	phases := map[string]bool{}
	for _, p := range rep.Phases {
		phases[p.Name] = true
	}
	for _, want := range []string{"load", "responses", "lsqr", "whiten", "eval"} {
		if !phases[want] {
			t.Errorf("report missing phase %q (got %v)", want, rep.Phases)
		}
	}
	if rep.Solver == nil || rep.Solver.Strategy != "lsqr" {
		t.Fatalf("solver stats = %+v", rep.Solver)
	}
	// 3 classes → 2 responses, each solved by LSQR.
	if len(rep.Solver.IterCounts) != 2 || len(rep.Solver.Residuals) != 2 {
		t.Fatalf("per-response telemetry = %+v", rep.Solver)
	}
	if rep.Solver.TotalIters <= 0 {
		t.Fatal("no LSQR iterations reported")
	}
	if _, ok := rep.Data["test_error"]; !ok {
		t.Fatalf("report data missing test_error: %v", rep.Data)
	}
	for _, p := range []string{profile + ".cpu.pprof", profile + ".heap.pprof", tracePath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("artifact %s missing or empty: %v", p, err)
		}
	}
}
