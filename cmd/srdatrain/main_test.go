package main

import (
	"os"
	"path/filepath"
	"testing"

	"srda"
)

// writeCorpus generates a small corpus split into train/test libsvm files
// and returns their paths.
func writeCorpus(t *testing.T) (train, test string) {
	t.Helper()
	dir := t.TempDir()
	ds := srda.NewsLike(srda.NewsConfig{Classes: 3, Docs: 120, Vocab: 500, AvgLen: 25, Seed: 5})
	trainDS := ds.Subset(rangeInts(0, 80))
	testDS := ds.Subset(rangeInts(80, 120))
	train = filepath.Join(dir, "train.svm")
	test = filepath.Join(dir, "test.svm")
	for _, p := range []struct {
		path string
		d    *srda.Dataset
	}{{train, trainDS}, {test, testDS}} {
		f, err := os.Create(p.path)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.d.WriteLibSVM(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return train, test
}

func rangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestTrainEvaluateAndPredict(t *testing.T) {
	train, test := writeCorpus(t)
	model := filepath.Join(t.TempDir(), "m.srda")
	if err := run(train, test, "", model, 1, "lsqr", 30, 0, 0, 0, false, true); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(model); err != nil || fi.Size() == 0 {
		t.Fatalf("model not written: %v", err)
	}
	// predict path
	if err := run("", "", test, model, 1, "auto", 30, 0, 0, 0, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestTrainWithKNNClassifier(t *testing.T) {
	train, test := writeCorpus(t)
	if err := run(train, test, "", "", 1, "auto", 30, 3, 0, 0, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestTrainErrors(t *testing.T) {
	train, _ := writeCorpus(t)
	if err := run("", "", "", "", 1, "auto", 30, 0, 0, 0, false, false); err == nil {
		t.Fatal("missing -train accepted")
	}
	if err := run(train, "", "", "", 1, "warp", 30, 0, 0, 0, false, false); err == nil {
		t.Fatal("unknown solver accepted")
	}
	if err := run("/definitely/missing.svm", "", "", "", 1, "auto", 30, 0, 0, 0, false, false); err == nil {
		t.Fatal("missing train file accepted")
	}
	if err := run("", "", "/some/data.svm", "", 1, "auto", 30, 0, 0, 0, false, false); err == nil {
		t.Fatal("-predict without -model accepted")
	}
}

func TestTrainOutOfCore(t *testing.T) {
	train, test := writeCorpus(t)
	if err := run(train, test, "", "", 1, "lsqr", 20, 0, 0, 0, true, false); err != nil {
		t.Fatal(err)
	}
}
