// Model selection: sweep SRDA's regularizer α the way Figure 5 of the
// paper does — plotting test error against α/(1+α) with LDA and IDR/QR
// as flat references — then persist the chosen model to disk and load it
// back.
//
//	go run ./examples/modelselection
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"srda"
)

func main() {
	ds := srda.MNISTLike(srda.MNISTConfig{
		Classes:     10,
		PerClass:    80,
		Side:        16,
		DeformScale: 0.9, // heavier writing-style variation
		Noise:       0.3,
		Seed:        3,
	})
	fmt.Printf("digits: %d classes, %d images, %d pixels\n\n",
		ds.NumClasses, ds.NumSamples(), ds.NumFeatures())

	// The harness pre-generates identical splits for every α so the curve
	// is comparable point to point (the paper's protocol).
	runner := srda.Runner{Splits: 5, Seed: 9}
	ratios := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	sweep, err := runner.AlphaSweep(ds, 8 /* train per class */, 0, ratios)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(sweep.RenderSweep())

	// Pick the α with the lowest mean error and train the final model.
	best := sweep.Points[0]
	for _, p := range sweep.Points[1:] {
		if p.MeanErr < best.MeanErr {
			best = p
		}
	}
	alpha := best.AlphaRatio / (1 - best.AlphaRatio)
	fmt.Printf("best α/(1+α) = %.1f → α = %.2f (%.1f%% mean error over %d splits)\n",
		best.AlphaRatio, alpha, best.MeanErr, runner.Splits)

	model, err := srda.Fit(ds.Dense, ds.Labels, ds.NumClasses,
		srda.Options{Alpha: alpha, Whiten: true})
	if err != nil {
		log.Fatal(err)
	}

	// Persist and reload — the round trip preserves the transform and the
	// stored class centroids exactly.  SaveModelFile writes atomically
	// (temp file + rename), so a serving process watching this path could
	// hot-reload it safely.
	dir, err := os.MkdirTemp("", "modelselection")
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = os.RemoveAll(dir) }() // best-effort temp cleanup
	path := filepath.Join(dir, "best.srda")
	if err := srda.SaveModelFile(model, path); err != nil {
		log.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	loaded, err := srda.LoadModelFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model round-trip: %d bytes, %d dims, predicts class %d for sample 0 (label %d)\n",
		fi.Size(), loaded.Dim(), loaded.PredictVec(ds.Dense.RowView(0)), ds.Labels[0])
}
