// Text classification: the paper's headline workload.  A sparse
// 20Newsgroups-shaped corpus is trained with the linear-time LSQR path —
// no centering, no densification — and the run prints the memory a
// classical LDA would have needed on the same data.
//
//	go run ./examples/textclassification
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"srda"
)

func main() {
	// A 20Newsgroups-shaped corpus (scaled down so the example runs in
	// seconds; bump Docs/Vocab toward 18941/26214 for the paper's shape).
	corpus := srda.NewsLike(srda.NewsConfig{
		Classes: 10,
		Docs:    4000,
		Vocab:   12000,
		AvgLen:  80,
		Seed:    7,
	})
	stats := corpus.Describe()
	fmt.Printf("corpus: %d docs, %d terms, %d groups, %.1f avg nonzeros/doc (density %.3f%%)\n",
		stats.Size, stats.Dim, stats.Classes, stats.AvgNNZ, 100*stats.SparseRatio)

	rng := rand.New(rand.NewSource(1))
	train, test, err := corpus.SplitFraction(rng, 0.3)
	if err != nil {
		log.Fatal(err)
	}

	// Train through LSQR: cost is O(iters · c · nnz) — linear time.
	start := time.Now()
	model, err := srda.FitCSR(train.Sparse, train.Labels, train.NumClasses, srda.Options{
		Alpha:    1,
		LSQRIter: 15, // the paper's setting for 20Newsgroups
		Whiten:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	pred := model.PredictSparse(test.Sparse)
	fmt.Printf("SRDA (LSQR): trained in %s, test error %.1f%% on %d held-out docs\n",
		elapsed.Round(time.Millisecond), 100*srda.ErrorRate(pred, test.Labels), test.NumSamples())

	// What would classical LDA have cost on this training set?  Its
	// centered data matrix and singular vectors are dense.
	p := srda.ComplexityProblem{
		M: train.NumSamples(), N: train.NumFeatures(),
		C: train.NumClasses, K: 15, S: train.AvgNNZ(),
	}
	for _, row := range srda.ComplexityTable(p) {
		fmt.Printf("  %-26s %12.3g flam %12.3g bytes\n", row.Algorithm, row.Flam, row.Bytes())
	}
	fmt.Printf("modeled LDA/SRDA flam ratio on this shape: %.1fx\n", srda.ComplexitySpeedup(p))

	// Per-class accuracy breakdown for the curious.
	wrongByClass := make([]int, test.NumClasses)
	totalByClass := make([]int, test.NumClasses)
	for i, y := range test.Labels {
		totalByClass[y]++
		if pred[i] != y {
			wrongByClass[y]++
		}
	}
	fmt.Println("per-group test error:")
	for k := 0; k < test.NumClasses; k++ {
		fmt.Printf("  group %2d: %5.1f%% (%d docs)\n",
			k, 100*float64(wrongByClass[k])/float64(totalByClass[k]), totalByClass[k])
	}
}
