// Serving: the full production loop in one process — train a model, save
// it atomically, stand up the micro-batching prediction server on a local
// port, and query it with the typed client (dense and sparse payloads,
// concurrent requests that coalesce into shared inference batches), then
// hot-swap the model file and watch the server pick it up.
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"srda"
	"srda/internal/serve"
)

func main() {
	// 1. Train a small text-like sparse model and persist it the way
	// cmd/srdatrain would.
	ds := srda.NewsLike(srda.NewsConfig{Classes: 4, Docs: 400, Vocab: 1000, AvgLen: 30, TopicBoost: 8, Seed: 17})
	model, err := srda.FitCSR(ds.Sparse, ds.Labels, ds.NumClasses,
		srda.Options{Alpha: 1, LSQRIter: 20, Whiten: true})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "srdaserving")
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = os.RemoveAll(dir) }() // best-effort temp cleanup
	modelPath := filepath.Join(dir, "news.srda")
	if err := srda.SaveModelFile(model, modelPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained and saved: %d features → %d dims, %d classes\n",
		ds.NumFeatures(), model.Dim(), ds.NumClasses)

	// 2. Stand up the server: micro-batching dispatcher + HTTP front end.
	srv, err := serve.New(model, serve.Options{MaxBatch: 32, MaxWait: 2 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stopWatch := srv.WatchFile(modelPath, 10*time.Millisecond)
	defer stopWatch()
	fmt.Printf("serving on http://%s\n", ln.Addr())

	// 3. Query it concurrently with the typed client; simultaneous
	// requests share inference batches server-side.
	client := serve.NewClient("http://" + ln.Addr().String())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	correct := make([]int, 32)
	for q := 0; q < 32; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			idx := (q * 13) % ds.NumSamples()
			cols, vals := ds.Sparse.Row(idx)
			features := make(map[int]float64, len(cols))
			for t, j := range cols {
				features[j] = vals[t]
			}
			class, err := client.PredictOne(ctx, serve.SparseSample(features))
			if err != nil {
				log.Fatal(err)
			}
			if class == ds.Labels[idx] {
				correct[q] = 1
			}
		}(q)
	}
	wg.Wait()
	hits := 0
	for _, c := range correct {
		hits += c
	}
	fmt.Printf("32 concurrent sparse queries: %d/32 match training labels\n", hits)

	// 4. Hot reload: overwrite the model file; the watcher swaps it in
	// without dropping a request.
	time.Sleep(25 * time.Millisecond) // ensure a fresh mtime
	if err := srda.SaveModelFile(model, modelPath); err != nil {
		log.Fatal(err)
	}
	for {
		h, err := client.Health(ctx)
		if err != nil {
			log.Fatal(err)
		}
		if h.ModelSeq >= 2 {
			fmt.Printf("hot reload observed: model seq %d, still %d features\n", h.ModelSeq, h.Features)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// 5. Graceful shutdown: stop accepting, drain in-flight work.
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	_ = hs.Shutdown(sctx) // best effort: srv.Close below reports drain failures
	if err := srv.Close(sctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained cleanly")
}
