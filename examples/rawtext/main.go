// Raw-text classification end to end: the complete 20Newsgroups-style
// pipeline from strings to predictions — tokenize, drop stop words, stem
// (Porter), build TF-IDF vectors, train sparse SRDA, classify new posts.
//
//	go run ./examples/rawtext
package main

import (
	"fmt"
	"log"

	"srda"
)

func main() {
	docs, labels, names := corpus()
	fmt.Printf("corpus: %d posts, %d topics\n", len(docs), len(names))

	vec, ds, err := srda.NewTextVectorizer(docs, labels, len(names), srda.TextVectorizerOptions{
		Stem:       true,
		TFIDF:      true,
		MinDocFreq: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vocabulary: %d stems (e.g. %q → %q)\n",
		vec.NumTerms(), "compiling", srda.StemWord("compiling"))

	model, err := srda.FitCSR(ds.Sparse, ds.Labels, ds.NumClasses,
		srda.Options{Alpha: 0.1, LSQRIter: 100, Whiten: true})
	if err != nil {
		log.Fatal(err)
	}
	pred := model.PredictSparse(ds.Sparse)
	fmt.Printf("training error: %.0f%%\n\n", 100*srda.ErrorRate(pred, ds.Labels))

	// classify unseen posts
	unseen := []string{
		"my compiler throws a segfault when linking the kernel modules",
		"the playoffs were thrilling and the goalkeeper saved the match",
		"telescopes captured the galaxy collision in stunning detail",
	}
	embedded := vec.Transform(unseen)
	newPred := model.PredictSparse(embedded)
	for i, doc := range unseen {
		fmt.Printf("%-26q → %s\n", doc[:24]+"…", names[newPred[i]])
	}
}

// corpus returns a tiny three-topic training set.
func corpus() (docs []string, labels []int, names []string) {
	names = []string{"comp.programming", "rec.sport", "sci.space"}
	posts := map[int][]string{
		0: {
			"the compiler optimizes the code and links the binary",
			"debugging segfaults in the kernel requires patience and gdb",
			"our programming language has garbage collection and generics",
			"refactor the function and run the unit tests before merging",
			"the linker failed with undefined symbols in the object files",
		},
		1: {
			"the team scored in the final minutes of the playoff game",
			"the goalkeeper made a stunning save during the match",
			"fans cheered as the striker completed a hat trick",
			"the coach praised the defense after the tournament win",
			"a last second basket decided the championship game",
		},
		2: {
			"the telescope observed a distant galaxy and its nebula",
			"the rocket launched the satellite into a stable orbit",
			"astronomers measured the redshift of the quasar",
			"the lander touched down on the surface of mars",
			"solar panels powered the probe beyond the asteroid belt",
		},
	}
	for k := 0; k < len(names); k++ {
		for _, p := range posts[k] {
			docs = append(docs, p)
			labels = append(labels, k)
		}
	}
	return docs, labels, names
}
