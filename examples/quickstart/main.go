// Quickstart: train SRDA on a small synthetic problem, embed the data,
// and classify held-out samples — the whole public-API loop in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"srda"
)

func main() {
	const (
		numClasses = 3
		features   = 20
		trainSize  = 300
		testSize   = 150
	)
	rng := rand.New(rand.NewSource(42))
	xTrain, yTrain := makeBlobs(rng, trainSize, features, numClasses)
	xTest, yTest := makeBlobs(rng, testSize, features, numClasses)

	// Train.  Alpha is the ridge regularizer (the paper uses 1); Whiten
	// makes the embedding's geometry match what distance-based classifiers
	// expect.
	model, err := srda.Fit(xTrain, yTrain, numClasses, srda.Options{Alpha: 1, Whiten: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained SRDA: %d features → %d discriminant dimensions\n",
		features, model.Dim())

	// Embed and classify.  The model stores the embedded class centroids,
	// so it predicts directly.
	pred := model.PredictDense(xTest)
	fmt.Printf("test error: %.1f%%\n", 100*srda.ErrorRate(pred, yTest))

	// The embedding itself is available for downstream use (indexing,
	// visualization, other classifiers):
	emb := model.TransformDense(xTest)
	fmt.Printf("first test point embeds to (%.2f, %.2f), class %d\n",
		emb.At(0, 0), emb.At(0, 1), pred[0])
}

// makeBlobs samples points around one Gaussian blob per class.
func makeBlobs(rng *rand.Rand, m, n, c int) (*srda.Dense, []int) {
	x := srda.NewDense(m, n)
	labels := make([]int, m)
	for i := 0; i < m; i++ {
		labels[i] = i % c
		row := x.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		// class means spread along two coordinates
		row[0] += 6 * float64(labels[i])
		row[1] += 3 * float64((labels[i]*2)%c)
	}
	return x, labels
}
