// Face recognition: the paper's PIE experiment in miniature.  A dense
// face-shaped dataset is split with few training images per person, and
// SRDA is compared head-to-head with classical LDA, RLDA, and IDR/QR on
// both error rate and training time — the Tables III/IV comparison.
//
//	go run ./examples/facerecognition
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"srda"
)

func main() {
	faces := srda.PIELike(srda.PIEConfig{
		Classes:  30, // subjects
		PerClass: 40, // images per subject
		Side:     24, // 24×24 pixels → n = 576
		Seed:     5,
	})
	fmt.Printf("gallery: %d subjects × %d images, %d pixels each\n\n",
		faces.NumClasses, 40, faces.NumFeatures())

	for _, perSubject := range []int{5, 10, 20} {
		rng := rand.New(rand.NewSource(int64(perSubject)))
		train, test, err := faces.SplitPerClass(rng, perSubject)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d training images per subject (m=%d):\n", perSubject, train.NumSamples())

		// SRDA
		start := time.Now()
		sm, err := srda.Fit(train.Dense, train.Labels, train.NumClasses,
			srda.Options{Alpha: 1, Whiten: true})
		if err != nil {
			log.Fatal(err)
		}
		sTime := time.Since(start)
		report("SRDA", sTime, sm.PredictDense(test.Dense), test.Labels)

		// Classical LDA (SVD route) and RLDA
		for _, cfg := range []struct {
			name  string
			alpha float64
		}{{"LDA", 0}, {"RLDA", 1}} {
			start = time.Now()
			lm, err := srda.FitLDA(train.Dense, train.Labels, train.NumClasses,
				srda.LDAOptions{Alpha: cfg.alpha})
			if err != nil {
				log.Fatal(err)
			}
			lTime := time.Since(start)
			pred, err := centroidPredict(lm.Transform(train.Dense), train.Labels,
				lm.Transform(test.Dense), train.NumClasses)
			if err != nil {
				log.Fatal(err)
			}
			report(cfg.name, lTime, pred, test.Labels)
		}

		// IDR/QR
		start = time.Now()
		im, err := srda.FitIDRQR(train.Dense, train.Labels, train.NumClasses, srda.IDRQROptions{})
		if err != nil {
			log.Fatal(err)
		}
		iTime := time.Since(start)
		pred, err := centroidPredict(im.Transform(train.Dense), train.Labels,
			im.Transform(test.Dense), train.NumClasses)
		if err != nil {
			log.Fatal(err)
		}
		report("IDR/QR", iTime, pred, test.Labels)
		fmt.Println()
	}
}

func report(name string, d time.Duration, pred, truth []int) {
	fmt.Printf("  %-7s error %5.1f%%   train %8s\n",
		name, 100*srda.ErrorRate(pred, truth), d.Round(time.Microsecond))
}

func centroidPredict(embTrain *srda.Dense, yTrain []int, embTest *srda.Dense, c int) ([]int, error) {
	nc, err := srda.FitNearestCentroid(embTrain, yTrain, c)
	if err != nil {
		return nil, err
	}
	return nc.Predict(embTest), nil
}
