// Semi-supervised discriminant analysis: the generalization the paper's
// conclusion points to.  Only a fraction of the training samples carry
// labels; the affinity graph blends the supervised class graph over the
// labeled ones with a k-NN graph over everything, and generalized
// spectral regression turns its eigenvectors into a linear embedding.
//
// The run compares three regimes on the same data:
//
//	supervised   — SRDA on the labeled subset only
//	semi-sup     — SR on the blended graph over all samples
//	oracle       — SRDA with every label revealed (upper bound)
//
//	go run ./examples/semisupervised
package main

import (
	"fmt"
	"log"
	"math/rand"

	"srda"
)

func main() {
	const (
		numClasses    = 5
		features      = 60
		total         = 500
		labeledPer    = 6 // labeled samples per class — deliberately few
		testSize      = 400
		knnK          = 8
		graphBlend    = 5.0
		embedDim      = numClasses - 1
		regularizer   = 0.5
		generatorSeed = 17
	)
	rng := rand.New(rand.NewSource(generatorSeed))
	xAll, yAll := clusters(rng, total, features, numClasses)
	xTest, yTest := clusters(rng, testSize, features, numClasses)

	// Hide most labels: partial[i] = -1 marks unlabeled.
	partial := make([]int, total)
	seen := make([]int, numClasses)
	for i := range partial {
		partial[i] = -1
		if seen[yAll[i]] < labeledPer {
			partial[i] = yAll[i]
			seen[yAll[i]]++
		}
	}
	var labIdx []int
	for i, y := range partial {
		if y >= 0 {
			labIdx = append(labIdx, i)
		}
	}
	fmt.Printf("%d samples, %d labeled (%d per class), %d-dim\n\n",
		total, len(labIdx), labeledPer, features)

	// --- supervised baseline: labeled subset only
	xLab := srda.NewDense(len(labIdx), features)
	yLab := make([]int, len(labIdx))
	for r, i := range labIdx {
		copy(xLab.RowView(r), xAll.RowView(i))
		yLab[r] = yAll[i]
	}
	sup, err := srda.Fit(xLab, yLab, numClasses, srda.Options{Alpha: regularizer, Whiten: true})
	if err != nil {
		log.Fatal(err)
	}
	report("supervised (few labels)", sup.PredictDense(xTest), yTest)

	// --- semi-supervised: blended graph over ALL samples
	g, err := srda.SemiSupervisedGraph(xAll, partial, numClasses, graphBlend,
		srda.KNNGraphOptions{K: knnK, Weight: srda.WeightHeat})
	if err != nil {
		log.Fatal(err)
	}
	semi, err := srda.FitSR(xAll, g, srda.SROptions{Dim: embedDim, Alpha: regularizer, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	// classify with centroids from the labeled subset in the SR embedding
	embLab := semi.TransformDense(xLab)
	nc, err := srda.FitNearestCentroid(embLab, yLab, numClasses)
	if err != nil {
		log.Fatal(err)
	}
	report("semi-supervised (graph)", nc.Predict(semi.TransformDense(xTest)), yTest)

	// --- oracle: all labels revealed
	oracle, err := srda.Fit(xAll, yAll, numClasses, srda.Options{Alpha: regularizer, Whiten: true})
	if err != nil {
		log.Fatal(err)
	}
	report("oracle (all labels)", oracle.PredictDense(xTest), yTest)
}

func report(name string, pred, truth []int) {
	fmt.Printf("  %-26s test error %5.1f%%\n", name, 100*srda.ErrorRate(pred, truth))
}

// clusters draws elongated Gaussian clusters whose manifold structure the
// k-NN graph can exploit.
func clusters(rng *rand.Rand, m, n, c int) (*srda.Dense, []int) {
	x := srda.NewDense(m, n)
	labels := make([]int, m)
	for i := 0; i < m; i++ {
		labels[i] = i % c
		row := x.RowView(i)
		for j := range row {
			row[j] = 0.6 * rng.NormFloat64()
		}
		// cluster center
		row[0] += 6 * float64(labels[i])
		row[1] += 4 * float64((labels[i]*3)%c)
		// shared elongation direction
		f := 2 * rng.NormFloat64()
		row[2] += f
		row[3] += f
	}
	return x, labels
}
