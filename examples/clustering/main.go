// Clustering: the unsupervised face of the paper's spectral machinery.
// Two problems are clustered with plain k-means and with spectral
// clustering (normalized cuts over a k-NN graph, solved by the same
// deflated Lanczos that powers generalized spectral regression).
// Gaussian blobs: both methods succeed.  Concentric rings: k-means fails
// by construction, spectral clustering recovers the rings.
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"srda"
)

func main() {
	rng := rand.New(rand.NewSource(12))

	blobsX, blobsTruth := makeBlobs(rng, 240, 3)
	ringsX, ringsTruth := makeRings(rng, 240)

	for _, problem := range []struct {
		name  string
		x     *srda.Dense
		truth []int
		k     int
	}{
		{"gaussian blobs", blobsX, blobsTruth, 3},
		{"concentric rings", ringsX, ringsTruth, 2},
	} {
		km, err := srda.KMeans(problem.x, problem.k, srda.KMeansOptions{Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		g := srda.KNNGraph(problem.x, srda.KNNGraphOptions{K: 8})
		sc, err := srda.SpectralCluster(g, problem.k, srda.SpectralClusterOptions{
			Seed:   2,
			KMeans: srda.KMeansOptions{Seed: 2},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s k-means agreement %5.1f%%   spectral agreement %5.1f%%\n",
			problem.name,
			100*agreement(km.Assign, problem.truth, problem.k),
			100*agreement(sc.Assign, problem.truth, problem.k))
	}
}

// agreement maps clusters to their majority label and scores accuracy.
func agreement(assign, truth []int, k int) float64 {
	c := 0
	for _, y := range truth {
		if y+1 > c {
			c = y + 1
		}
	}
	votes := make([][]int, k)
	for i := range votes {
		votes[i] = make([]int, c)
	}
	for i := range assign {
		votes[assign[i]][truth[i]]++
	}
	correct := 0
	for _, v := range votes {
		best := 0
		for _, cnt := range v {
			if cnt > best {
				best = cnt
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assign))
}

func makeBlobs(rng *rand.Rand, m, c int) (*srda.Dense, []int) {
	x := srda.NewDense(m, 2)
	truth := make([]int, m)
	for i := 0; i < m; i++ {
		truth[i] = i % c
		x.Set(i, 0, 6*float64(truth[i])+0.5*rng.NormFloat64())
		x.Set(i, 1, 3*float64((truth[i]*2)%c)+0.5*rng.NormFloat64())
	}
	return x, truth
}

func makeRings(rng *rand.Rand, m int) (*srda.Dense, []int) {
	x := srda.NewDense(m, 2)
	truth := make([]int, m)
	for i := 0; i < m; i++ {
		truth[i] = i % 2
		r := 1.0
		if truth[i] == 1 {
			r = 4
		}
		r += 0.1 * rng.NormFloat64()
		theta := 2 * math.Pi * rng.Float64()
		x.Set(i, 0, r*math.Cos(theta))
		x.Set(i, 1, r*math.Sin(theta))
	}
	return x, truth
}
