package srda

import (
	"fmt"

	"srda/internal/core"
	"srda/internal/solver"
	"srda/internal/sparse"
)

// IncrementalSRDA maintains an SRDA model under a sample stream with
// exact batch equivalence: O(n²) per added sample, O(c·n²) per model
// refresh, no pass over past data.
type IncrementalSRDA = core.Incremental

// NewIncrementalSRDA starts an empty incremental trainer for
// numFeatures-dimensional samples in numClasses classes with ridge
// penalty alpha (> 0).
func NewIncrementalSRDA(numFeatures, numClasses int, alpha float64) (*IncrementalSRDA, error) {
	return core.NewIncremental(numFeatures, numClasses, alpha)
}

// DiskCSR is a CSR matrix stored on disk and streamed during products —
// the paper's "reasonable disk I/O" mode for data exceeding memory.
type DiskCSR = sparse.DiskCSR

// OpenDiskCSR opens a matrix written with CSR.WriteFile, keeping only
// the row pointers in memory.
func OpenDiskCSR(path string) (*DiskCSR, error) { return sparse.OpenDiskCSR(path) }

// FitDiskCSR trains SRDA out of core: each LSQR iteration streams the
// file twice (once for A·v, once for Aᵀ·v) and nothing but the row
// pointers and the solver's O(m+n) vectors stay resident.
func FitDiskCSR(d *DiskCSR, labels []int, numClasses int, opt Options) (*Model, error) {
	op := &solver.DiskOp{A: d}
	model, err := core.FitOperator(op, labels, numClasses, opt.toCore())
	if err != nil {
		return nil, err
	}
	if ioErr := op.Err(); ioErr != nil {
		return nil, fmt.Errorf("srda: out-of-core training hit an I/O error: %w", ioErr)
	}
	return model, nil
}
