package srda

import (
	"fmt"

	"srda/internal/core"
	"srda/internal/obs"
	"srda/internal/online"
	"srda/internal/registry"
	"srda/internal/solver"
	"srda/internal/sparse"
)

// IncrementalSRDA maintains an SRDA model under a sample stream with
// exact batch equivalence: O(n²) per added sample, O(c·n²) per model
// refresh, no pass over past data.
type IncrementalSRDA = core.Incremental

// NewIncrementalSRDA starts an empty incremental trainer for
// numFeatures-dimensional samples in numClasses classes with ridge
// penalty alpha (> 0).
func NewIncrementalSRDA(numFeatures, numClasses int, alpha float64) (*IncrementalSRDA, error) {
	return core.NewIncremental(numFeatures, numClasses, alpha)
}

// DiskCSR is a CSR matrix stored on disk and streamed during products —
// the paper's "reasonable disk I/O" mode for data exceeding memory.
type DiskCSR = sparse.DiskCSR

// OpenDiskCSR opens a matrix written with CSR.WriteFile, keeping only
// the row pointers in memory.
func OpenDiskCSR(path string) (*DiskCSR, error) { return sparse.OpenDiskCSR(path) }

// FitDiskCSR trains SRDA out of core: each LSQR iteration streams the
// file twice (once for A·v, once for Aᵀ·v) and nothing but the row
// pointers and the solver's O(m+n) vectors stay resident.
func FitDiskCSR(d *DiskCSR, labels []int, numClasses int, opt Options) (*Model, error) {
	op := &solver.DiskOp{A: d}
	model, err := core.FitOperator(op, labels, numClasses, opt.toCore())
	if err != nil {
		return nil, err
	}
	if ioErr := op.Err(); ioErr != nil {
		return nil, fmt.Errorf("srda: out-of-core training hit an I/O error: %w", ioErr)
	}
	return model, nil
}

// StreamTrainer is the streaming SRDA trainer behind the train-while-
// serving loop: it absorbs labeled samples one at a time into
// bounded-memory sufficient statistics (O(n²) per sample, O(n²)
// resident, no sample retained), refits on configurable triggers
// (sample count, wall interval on an injected clock, windowed
// class-mean drift), and — when wired to a model registry — atomically
// publishes each refit for zero-downtime serving, rolling back
// candidates that regress on a held-out validation slice.
//
// The equivalence contract mirrors the batch API: with no holdout
// diversion, streaming a dataset sample by sample and refitting yields
// a model bitwise identical (math.Float64bits) to Fit with SolverPrimal
// on the same rows, at any Workers setting.  See doc/ONLINE.md.
type StreamTrainer = online.StreamTrainer

// StreamConfig configures NewStreamTrainer.
type StreamConfig = online.Config

// RefitPolicy selects the streaming trainer's refit triggers and
// candidate validation (holdout fraction, tolerated regression).
type RefitPolicy = online.RefitPolicy

// ModelRegistry is the multi-tenant versioned model store the streaming
// trainer publishes into and srdaserve serves from.
type ModelRegistry = registry.Registry

// NewModelRegistry creates an empty model registry with default options.
func NewModelRegistry() *ModelRegistry { return registry.New(registry.Options{}) }

// NewStreamTrainer validates cfg and returns an empty streaming trainer.
func NewStreamTrainer(cfg StreamConfig) (*StreamTrainer, error) {
	return online.NewStreamTrainer(cfg)
}

// SystemClock returns the wall clock in the injectable form
// StreamConfig.Clock expects; tests inject fakes instead.
func SystemClock() obs.Clock { return obs.SystemClock() }

// SuffStats re-exports the streaming accumulator for callers that want
// to manage absorption and refitting themselves; FitStats runs the same
// solve a StreamTrainer refit does.
type SuffStats = core.SuffStats

// NewSuffStats allocates empty streaming sufficient statistics.
func NewSuffStats(numFeatures, numClasses int) (*SuffStats, error) {
	return core.NewSuffStats(numFeatures, numClasses)
}

// FitStats solves an SRDA model from accumulated statistics.
func FitStats(s *SuffStats, opt Options) (*Model, error) {
	return core.FitStats(s, opt.toCore())
}
