// Package experiment reproduces the paper's evaluation protocol: for each
// dataset and each training-set size, run R random train/test splits, fit
// every compared algorithm (LDA, RLDA, SRDA, IDR/QR), classify held-out
// samples by nearest centroid in the learned subspace, and report the
// mean ± std error rate (Tables III, V, VII, IX / Figures 1–4 left) and
// the mean training time (Tables IV, VI, VIII, X / Figures 1–4 right).
//
// The paper ran on a 2 GB machine and reports "—" where an algorithm
// could not fit; the harness models that wall with the flam-package
// memory formulas so the same cells go blank regardless of the host's
// actual RAM.
package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"srda/internal/classify"
	"srda/internal/core"
	"srda/internal/dataset"
	"srda/internal/flam"
	"srda/internal/idrqr"
	"srda/internal/lda"
	"srda/internal/mat"
)

// Algorithm names one of the four compared methods.
type Algorithm string

// The four algorithms of the paper's §IV-B.
const (
	AlgoLDA   Algorithm = "LDA"
	AlgoRLDA  Algorithm = "RLDA"
	AlgoSRDA  Algorithm = "SRDA"
	AlgoIDRQR Algorithm = "IDR/QR"
)

// Additional small-sample LDA-family algorithms the harness can run in
// the same grids (beyond the paper's comparison set).
const (
	AlgoOLDA        Algorithm = "OLDA"
	AlgoNLDA        Algorithm = "NLDA"
	AlgoMMC         Algorithm = "MMC"
	AlgoFisherfaces Algorithm = "Fisherfaces"
)

// AllAlgorithms is the paper's comparison set, in table order.
var AllAlgorithms = []Algorithm{AlgoLDA, AlgoRLDA, AlgoSRDA, AlgoIDRQR}

// Runner holds the experiment configuration.
type Runner struct {
	// Splits is the number of random train/test splits averaged (the
	// paper uses 20).
	Splits int
	// Alpha is the regularizer for RLDA and SRDA (the paper sets 1).
	Alpha float64
	// LSQRIter caps LSQR iterations for sparse SRDA (the paper sets 15).
	LSQRIter int
	// Seed makes runs reproducible.
	Seed int64
	// Workers bounds kernel and per-response parallelism in the SRDA
	// fits (0 = GOMAXPROCS, 1 = sequential).  Results are bitwise
	// identical at every setting, so timing columns are the only thing
	// it changes.
	Workers int
	// MemoryLimitBytes models the paper's 2 GB machine; algorithms whose
	// modeled footprint exceeds it are reported infeasible.  Zero means
	// 2 GB.
	MemoryLimitBytes float64
}

// Defaults fills in zero fields with the paper's settings.
func (r Runner) Defaults() Runner {
	if r.Splits == 0 {
		r.Splits = 20
	}
	if r.Alpha == 0 { //srdalint:ignore floatcmp zero is the documented unset sentinel for this option
		r.Alpha = 1
	}
	if r.LSQRIter == 0 {
		r.LSQRIter = 15
	}
	if r.MemoryLimitBytes == 0 { //srdalint:ignore floatcmp zero is the documented unset sentinel for this option
		r.MemoryLimitBytes = 2 << 30
	}
	return r
}

// Cell is one (train-size × algorithm) grid entry.
type Cell struct {
	// MeanErr and StdErr summarize the test error over splits (percent).
	MeanErr, StdErr float64
	// MeanTime is the mean training time in seconds.
	MeanTime float64
	// Feasible is false when the memory model says the algorithm cannot
	// run (the paper's "—" cells); the other fields are then zero.
	Feasible bool
}

// Grid is a full table: one row per training size, one column per
// algorithm.
type Grid struct {
	// Dataset names the corpus.
	Dataset string
	// RowLabels describes each training size ("10 × 68", "5%", ...).
	RowLabels []string
	// Algorithms orders the columns.
	Algorithms []Algorithm
	// Cells is indexed [row][column].
	Cells [][]Cell
}

// RunPerClassGrid reproduces the per-class-size protocol of Tables
// III–VIII: for every p in sizes, take p training samples per class.
func (r Runner) RunPerClassGrid(ds *dataset.Dataset, algos []Algorithm, sizes []int) (*Grid, error) {
	r = r.Defaults()
	g := &Grid{Dataset: ds.Name, Algorithms: algos}
	for _, p := range sizes {
		g.RowLabels = append(g.RowLabels, fmt.Sprintf("%d × %d", p, ds.NumClasses))
		row, err := r.runRow(ds, algos, func(rng *rand.Rand) (*dataset.Dataset, *dataset.Dataset, error) {
			return ds.SplitPerClass(rng, p)
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: size %d: %w", p, err)
		}
		g.Cells = append(g.Cells, row)
	}
	return g, nil
}

// RunFractionGrid reproduces the fraction protocol of Tables IX–X.
func (r Runner) RunFractionGrid(ds *dataset.Dataset, algos []Algorithm, fracs []float64) (*Grid, error) {
	r = r.Defaults()
	g := &Grid{Dataset: ds.Name, Algorithms: algos}
	for _, f := range fracs {
		g.RowLabels = append(g.RowLabels, fmt.Sprintf("%.0f%%", 100*f))
		frac := f
		row, err := r.runRow(ds, algos, func(rng *rand.Rand) (*dataset.Dataset, *dataset.Dataset, error) {
			return ds.SplitFraction(rng, frac)
		})
		if err != nil {
			return nil, fmt.Errorf("experiment: fraction %v: %w", f, err)
		}
		g.Cells = append(g.Cells, row)
	}
	return g, nil
}

// runRow averages every algorithm over r.Splits random splits produced by
// the supplied splitter.
func (r Runner) runRow(ds *dataset.Dataset, algos []Algorithm,
	split func(*rand.Rand) (*dataset.Dataset, *dataset.Dataset, error)) ([]Cell, error) {

	sums := make([]struct {
		errs  []float64
		time  float64
		alive bool
	}, len(algos))
	for a := range sums {
		sums[a].alive = true
	}

	rng := rand.New(rand.NewSource(r.Seed))
	for s := 0; s < r.Splits; s++ {
		train, test, err := split(rng)
		if err != nil {
			return nil, err
		}
		for a, algo := range algos {
			if !sums[a].alive {
				continue
			}
			if !r.feasible(algo, train) {
				sums[a].alive = false
				continue
			}
			errRate, seconds, err := r.runOnce(algo, train, test)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", algo, err)
			}
			sums[a].errs = append(sums[a].errs, 100*errRate)
			sums[a].time += seconds
		}
	}

	row := make([]Cell, len(algos))
	for a := range algos {
		if !sums[a].alive || len(sums[a].errs) == 0 {
			continue
		}
		mean, std := meanStd(sums[a].errs)
		row[a] = Cell{
			MeanErr:  mean,
			StdErr:   std,
			MeanTime: sums[a].time / float64(len(sums[a].errs)),
			Feasible: true,
		}
	}
	return row, nil
}

// feasible applies the memory model of Table I to decide whether the
// algorithm fits the configured limit on this training set.
func (r Runner) feasible(algo Algorithm, train *dataset.Dataset) bool {
	p := flam.Problem{
		M: train.NumSamples(),
		N: train.NumFeatures(),
		C: train.NumClasses,
		K: r.LSQRIter,
		S: train.AvgNNZ(),
	}
	var bytes float64
	switch algo {
	case AlgoLDA:
		bytes = flam.LDA(p).Bytes()
	case AlgoRLDA:
		// RLDA additionally stores the n×t left singular matrix (the
		// paper: "the situation of RLDA is even worse").
		bytes = flam.LDA(p).Bytes() + 8*float64(p.N)*float64(p.T())
	case AlgoIDRQR:
		bytes = flam.IDRQR(p).Bytes()
	case AlgoOLDA, AlgoNLDA, AlgoMMC, AlgoFisherfaces:
		// same SVD-bound footprint as classical LDA
		bytes = flam.LDA(p).Bytes()
	case AlgoSRDA:
		if train.IsSparse() {
			bytes = flam.SRDALSQRSparse(p).Bytes()
		} else {
			bytes = flam.SRDANormal(p).Bytes()
		}
	default:
		return false
	}
	return bytes <= r.MemoryLimitBytes
}

// runOnce trains one algorithm on one split and returns its test error
// rate and training wall time.  Training time covers exactly the
// "computing the projection functions" work the paper times; embedding
// and classification are excluded.
func (r Runner) runOnce(algo Algorithm, train, test *dataset.Dataset) (float64, float64, error) {
	var (
		embTrain, embTest *mat.Dense
		seconds           float64
	)
	switch algo {
	case AlgoLDA, AlgoRLDA:
		alpha := 0.0
		if algo == AlgoRLDA {
			alpha = r.Alpha
		}
		xTrain, xTest := train.DenseView(), test.DenseView()
		start := time.Now()
		model, err := lda.Fit(xTrain, train.Labels, train.NumClasses, lda.Options{Alpha: alpha})
		seconds = time.Since(start).Seconds()
		if err != nil {
			return 0, 0, err
		}
		embTrain, embTest = model.Transform(xTrain), model.Transform(xTest)

	case AlgoIDRQR:
		xTrain, xTest := train.DenseView(), test.DenseView()
		start := time.Now()
		model, err := idrqr.Fit(xTrain, train.Labels, train.NumClasses, idrqr.Options{})
		seconds = time.Since(start).Seconds()
		if err != nil {
			return 0, 0, err
		}
		embTrain, embTest = model.Transform(xTrain), model.Transform(xTest)

	case AlgoOLDA, AlgoNLDA, AlgoMMC:
		xTrain, xTest := train.DenseView(), test.DenseView()
		start := time.Now()
		var (
			model *lda.Model
			err   error
		)
		switch algo {
		case AlgoOLDA:
			model, err = lda.FitOrthogonal(xTrain, train.Labels, train.NumClasses, lda.Options{Alpha: r.Alpha})
		case AlgoMMC:
			model, err = lda.FitMMC(xTrain, train.Labels, train.NumClasses, lda.Options{})
		default:
			model, err = lda.FitNullSpace(xTrain, train.Labels, train.NumClasses, lda.Options{})
		}
		seconds = time.Since(start).Seconds()
		if err != nil {
			return 0, 0, err
		}
		embTrain, embTest = model.Transform(xTrain), model.Transform(xTest)

	case AlgoFisherfaces:
		xTrain, xTest := train.DenseView(), test.DenseView()
		start := time.Now()
		model, err := lda.FitFisherfaces(xTrain, train.Labels, train.NumClasses, lda.FisherfacesOptions{Alpha: r.Alpha})
		seconds = time.Since(start).Seconds()
		if err != nil {
			return 0, 0, err
		}
		embTrain, embTest = model.Transform(xTrain), model.Transform(xTest)

	case AlgoSRDA:
		if train.IsSparse() {
			start := time.Now()
			model, err := core.FitSparseWhitened(train.Sparse, train.Labels, train.NumClasses,
				core.Options{Alpha: r.Alpha, LSQRIter: r.LSQRIter, Workers: r.Workers})
			seconds = time.Since(start).Seconds()
			if err != nil {
				return 0, 0, err
			}
			embTrain, embTest = model.TransformSparse(train.Sparse), model.TransformSparse(test.Sparse)
		} else {
			start := time.Now()
			model, err := core.FitDenseWhitened(train.Dense, train.Labels, train.NumClasses,
				core.Options{Alpha: r.Alpha, Workers: r.Workers})
			seconds = time.Since(start).Seconds()
			if err != nil {
				return 0, 0, err
			}
			embTrain, embTest = model.TransformDense(train.Dense), model.TransformDense(test.Dense)
		}

	default:
		return 0, 0, fmt.Errorf("experiment: unknown algorithm %q", algo)
	}

	nc, err := classify.FitNearestCentroid(embTrain, train.Labels, train.NumClasses)
	if err != nil {
		return 0, 0, err
	}
	pred := nc.Predict(embTest)
	return classify.ErrorRate(pred, test.Labels), seconds, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(xs)-1))
}
