package experiment

import (
	"fmt"
	"math"
	"math/rand"

	"srda/internal/dataset"
)

// CVResult reports one candidate's cross-validated error.
type CVResult struct {
	// Alpha is the candidate regularizer.
	Alpha float64
	// MeanErr and StdErr summarize the validation error across folds
	// (percent).
	MeanErr, StdErr float64
}

// KFoldAlpha selects SRDA's α by stratified k-fold cross-validation: the
// principled version of the paper's §IV-D parameter study (which sweeps α
// against the *test* set to show insensitivity; an application must pick
// α from training data alone, which is what this does).  Returns the
// per-candidate results (in input order) and the index of the winner.
func (r Runner) KFoldAlpha(ds *dataset.Dataset, alphas []float64, folds int) ([]CVResult, int, error) {
	r = r.Defaults()
	if folds < 2 {
		return nil, 0, fmt.Errorf("experiment: need at least 2 folds, got %d", folds)
	}
	if len(alphas) == 0 {
		return nil, 0, fmt.Errorf("experiment: no alpha candidates")
	}
	// Stratified fold assignment: shuffle within each class, deal
	// round-robin so every fold sees every class.
	rng := rand.New(rand.NewSource(r.Seed))
	byClass := make([][]int, ds.NumClasses)
	for i, y := range ds.Labels {
		byClass[y] = append(byClass[y], i)
	}
	foldOf := make([]int, ds.NumSamples())
	for k, idx := range byClass {
		if len(idx) < folds {
			return nil, 0, fmt.Errorf("experiment: class %d has %d samples, fewer than %d folds", k, len(idx), folds)
		}
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for t, i := range idx {
			foldOf[i] = t % folds
		}
	}

	results := make([]CVResult, len(alphas))
	for a, alpha := range alphas {
		if alpha < 0 {
			return nil, 0, fmt.Errorf("experiment: negative alpha %v", alpha)
		}
		errs := make([]float64, 0, folds)
		for f := 0; f < folds; f++ {
			var trainIdx, valIdx []int
			for i := range foldOf {
				if foldOf[i] == f {
					valIdx = append(valIdx, i)
				} else {
					trainIdx = append(trainIdx, i)
				}
			}
			train := ds.Subset(trainIdx)
			val := ds.Subset(valIdx)
			e, err := r.srdaError(train, val, alpha)
			if err != nil {
				return nil, 0, fmt.Errorf("experiment: fold %d alpha %v: %w", f, alpha, err)
			}
			errs = append(errs, 100*e)
		}
		mean, std := meanStd(errs)
		results[a] = CVResult{Alpha: alpha, MeanErr: mean, StdErr: std}
	}
	best := 0
	bestErr := math.Inf(1)
	for a, res := range results {
		if res.MeanErr < bestErr {
			best, bestErr = a, res.MeanErr
		}
	}
	return results, best, nil
}
