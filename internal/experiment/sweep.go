package experiment

import (
	"fmt"
	"math/rand"

	"srda/internal/classify"
	"srda/internal/core"
	"srda/internal/dataset"
	"srda/internal/mat"
)

// SweepPoint is one point of a Figure 5 panel.
type SweepPoint struct {
	// AlphaRatio is the x-coordinate α/(1+α) ∈ (0,1).
	AlphaRatio float64
	// MeanErr is the SRDA mean test error (percent) at this α.
	MeanErr float64
	// StdErr is the standard deviation over splits.
	StdErr float64
}

// Sweep is a full Figure 5 panel: the SRDA error curve over α plus the
// flat LDA and IDR/QR reference lines.
type Sweep struct {
	// Dataset and SizeLabel identify the panel ("pie-like", "10 Train").
	Dataset, SizeLabel string
	// Points is the SRDA curve.
	Points []SweepPoint
	// LDAErr and IDRQRErr are the α-independent reference error rates
	// (percent); NaN-free only when the reference was feasible.
	LDAErr, IDRQRErr float64
	// LDAFeasible marks whether the LDA reference could run.
	LDAFeasible bool
}

// AlphaSweep reproduces one Figure 5 panel: SRDA error as a function of
// α/(1+α) over the given ratios, with LDA and IDR/QR reference lines,
// averaged over r.Splits splits.  Exactly one of perClass (>0) or
// fraction (>0) selects the split protocol.
func (r Runner) AlphaSweep(ds *dataset.Dataset, perClass int, fraction float64, ratios []float64) (*Sweep, error) {
	r = r.Defaults()
	split := func(rng *rand.Rand) (*dataset.Dataset, *dataset.Dataset, error) {
		if perClass > 0 {
			return ds.SplitPerClass(rng, perClass)
		}
		return ds.SplitFraction(rng, fraction)
	}
	label := fmt.Sprintf("%d Train", perClass)
	if perClass <= 0 {
		label = fmt.Sprintf("%.0f%% Train", 100*fraction)
	}
	sweep := &Sweep{Dataset: ds.Name, SizeLabel: label}

	// Pre-generate the splits so every α (and the references) sees the
	// same data, matching the paper's protocol.
	rng := rand.New(rand.NewSource(r.Seed))
	type pair struct{ train, test *dataset.Dataset }
	splits := make([]pair, r.Splits)
	for s := range splits {
		train, test, err := split(rng)
		if err != nil {
			return nil, err
		}
		splits[s] = pair{train, test}
	}

	// SRDA curve.
	for _, ratio := range ratios {
		if ratio <= 0 || ratio >= 1 {
			return nil, fmt.Errorf("experiment: alpha ratio %v outside (0,1)", ratio)
		}
		alpha := ratio / (1 - ratio)
		errs := make([]float64, 0, r.Splits)
		for _, sp := range splits {
			e, err := r.srdaError(sp.train, sp.test, alpha)
			if err != nil {
				return nil, err
			}
			errs = append(errs, 100*e)
		}
		mean, std := meanStd(errs)
		sweep.Points = append(sweep.Points, SweepPoint{AlphaRatio: ratio, MeanErr: mean, StdErr: std})
	}

	// Reference lines.
	sweep.LDAFeasible = r.feasible(AlgoLDA, splits[0].train)
	var ldaSum, idrSum float64
	for _, sp := range splits {
		if sweep.LDAFeasible {
			e, _, err := r.runOnce(AlgoLDA, sp.train, sp.test)
			if err != nil {
				return nil, err
			}
			ldaSum += 100 * e
		}
		e, _, err := r.runOnce(AlgoIDRQR, sp.train, sp.test)
		if err != nil {
			return nil, err
		}
		idrSum += 100 * e
	}
	if sweep.LDAFeasible {
		sweep.LDAErr = ldaSum / float64(len(splits))
	}
	sweep.IDRQRErr = idrSum / float64(len(splits))
	return sweep, nil
}

// srdaError trains SRDA with a specific alpha and returns the test error.
func (r Runner) srdaError(train, test *dataset.Dataset, alpha float64) (float64, error) {
	opt := core.Options{Alpha: alpha, LSQRIter: r.LSQRIter, Workers: r.Workers}
	var (
		embTrain, embTest *mat.Dense
	)
	if train.IsSparse() {
		model, err := core.FitSparseWhitened(train.Sparse, train.Labels, train.NumClasses, opt)
		if err != nil {
			return 0, err
		}
		embTrain = model.TransformSparse(train.Sparse)
		embTest = model.TransformSparse(test.Sparse)
	} else {
		model, err := core.FitDenseWhitened(train.Dense, train.Labels, train.NumClasses, opt)
		if err != nil {
			return 0, err
		}
		embTrain = model.TransformDense(train.Dense)
		embTest = model.TransformDense(test.Dense)
	}
	nc, err := classify.FitNearestCentroid(embTrain, train.Labels, train.NumClasses)
	if err != nil {
		return 0, err
	}
	return classify.ErrorRate(nc.Predict(embTest), test.Labels), nil
}
