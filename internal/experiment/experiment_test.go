package experiment

import (
	"math"
	"strings"
	"testing"

	"srda/internal/dataset"
)

// tinyPIE is a small dense dataset that keeps the tests fast.
func tinyPIE() *dataset.Dataset {
	return dataset.PIELike(dataset.PIEConfig{Classes: 8, PerClass: 24, Side: 16, Seed: 11})
}

func tinyNews() *dataset.Dataset {
	return dataset.NewsLike(dataset.NewsConfig{Classes: 4, Docs: 240, Vocab: 1500, AvgLen: 40, Seed: 12})
}

func TestRunPerClassGridShape(t *testing.T) {
	r := Runner{Splits: 3, Seed: 1}
	g, err := r.RunPerClassGrid(tinyPIE(), AllAlgorithms, []int{4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Cells) != 2 || len(g.Cells[0]) != 4 {
		t.Fatalf("grid shape %dx%d", len(g.Cells), len(g.Cells[0]))
	}
	for i := range g.Cells {
		for j := range g.Cells[i] {
			c := g.Cells[i][j]
			if !c.Feasible {
				t.Fatalf("cell (%d,%d) infeasible on tiny data", i, j)
			}
			if c.MeanErr < 0 || c.MeanErr > 100 {
				t.Fatalf("error %v out of range", c.MeanErr)
			}
			if c.MeanTime < 0 {
				t.Fatal("negative time")
			}
		}
	}
}

func TestErrorDecreasesWithTrainingSize(t *testing.T) {
	// The universal shape of Figures 1–4: more training data, less error.
	r := Runner{Splits: 5, Seed: 2}
	g, err := r.RunPerClassGrid(tinyPIE(), []Algorithm{AlgoSRDA}, []int{3, 16})
	if err != nil {
		t.Fatal(err)
	}
	small, large := g.Cells[0][0].MeanErr, g.Cells[1][0].MeanErr
	if large > small+2 {
		t.Fatalf("error grew with more data: %v → %v", small, large)
	}
}

func TestRegularizationBeatsPlainLDAAtSmallSize(t *testing.T) {
	// Table III's key pattern: in the small-sample overfitting regime
	// RLDA and SRDA clearly beat unregularized LDA.
	r := Runner{Splits: 5, Seed: 3}
	g, err := r.RunPerClassGrid(tinyPIE(), []Algorithm{AlgoLDA, AlgoRLDA, AlgoSRDA}, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	ldaErr := g.Cells[0][0].MeanErr
	rldaErr := g.Cells[0][1].MeanErr
	srdaErr := g.Cells[0][2].MeanErr
	if rldaErr > ldaErr-3 || srdaErr > ldaErr-3 {
		t.Fatalf("regularized methods (%.1f / %.1f) should beat LDA (%.1f) here",
			rldaErr, srdaErr, ldaErr)
	}
}

func TestRunFractionGridOnSparseData(t *testing.T) {
	r := Runner{Splits: 2, Seed: 4}
	g, err := r.RunFractionGrid(tinyNews(), []Algorithm{AlgoSRDA}, []float64{0.1, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Cells {
		if !g.Cells[i][0].Feasible {
			t.Fatal("SRDA must be feasible on sparse data")
		}
	}
	if g.Cells[0][0].MeanErr < g.Cells[1][0].MeanErr-5 {
		t.Fatalf("10%% (%.1f) should not beat 30%% (%.1f) by a wide margin",
			g.Cells[0][0].MeanErr, g.Cells[1][0].MeanErr)
	}
}

func TestMemoryWallMarksLDAInfeasible(t *testing.T) {
	// With a tiny modeled memory limit the dense baselines must go
	// infeasible while sparse SRDA keeps running — the Table IX/X "—"
	// pattern.
	r := Runner{Splits: 2, Seed: 5, MemoryLimitBytes: 200 * 1024}
	g, err := r.RunFractionGrid(tinyNews(), AllAlgorithms, []float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	byAlgo := map[Algorithm]Cell{}
	for j, a := range g.Algorithms {
		byAlgo[a] = g.Cells[0][j]
	}
	if byAlgo[AlgoLDA].Feasible || byAlgo[AlgoRLDA].Feasible {
		t.Fatal("LDA/RLDA should hit the memory wall")
	}
	if !byAlgo[AlgoSRDA].Feasible {
		t.Fatal("sparse SRDA should survive the memory wall")
	}
}

func TestRendererHandlesInfeasibleCells(t *testing.T) {
	r := Runner{Splits: 2, Seed: 6, MemoryLimitBytes: 200 * 1024}
	g, err := r.RunFractionGrid(tinyNews(), AllAlgorithms, []float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	tbl := g.RenderErrorTable()
	if !strings.Contains(tbl, "—") {
		t.Fatalf("error table should contain — markers:\n%s", tbl)
	}
	tt := g.RenderTimeTable()
	if !strings.Contains(tt, "—") {
		t.Fatalf("time table should contain — markers:\n%s", tt)
	}
	csv := g.CSV()
	if !strings.Contains(csv, "false") {
		t.Fatal("CSV should mark infeasible cells")
	}
	fig := g.RenderFigure(false)
	if !strings.Contains(fig, "error rate") {
		t.Fatalf("figure header missing:\n%s", fig)
	}
}

func TestSeriesExtraction(t *testing.T) {
	g := &Grid{
		Dataset:    "x",
		RowLabels:  []string{"a", "b"},
		Algorithms: []Algorithm{AlgoLDA, AlgoSRDA},
		Cells: [][]Cell{
			{{MeanErr: 10, Feasible: true}, {MeanErr: 5, MeanTime: 0.1, Feasible: true}},
			{{Feasible: false}, {MeanErr: 4, MeanTime: 0.2, Feasible: true}},
		},
	}
	s := g.Series(AlgoLDA, false)
	if s[0] != 10 || !math.IsNaN(s[1]) {
		t.Fatalf("series %v", s)
	}
	ts := g.Series(AlgoSRDA, true)
	if ts[0] != 0.1 || ts[1] != 0.2 {
		t.Fatalf("time series %v", ts)
	}
	if g.Series("nope", false) != nil {
		t.Fatal("unknown algorithm should yield nil")
	}
}

func TestAlphaSweepShape(t *testing.T) {
	r := Runner{Splits: 3, Seed: 7}
	sweep, err := r.AlphaSweep(tinyPIE(), 5, 0, []float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 3 {
		t.Fatalf("points %d", len(sweep.Points))
	}
	for _, p := range sweep.Points {
		if p.MeanErr < 0 || p.MeanErr > 100 {
			t.Fatalf("error %v out of range", p.MeanErr)
		}
	}
	if !sweep.LDAFeasible {
		t.Fatal("LDA should be feasible on tiny data")
	}
	out := sweep.RenderSweep()
	if !strings.Contains(out, "SRDA model selection") {
		t.Fatalf("sweep render:\n%s", out)
	}
	if !strings.Contains(sweep.CSV(), "alpha_ratio") {
		t.Fatal("sweep CSV missing header")
	}
}

func TestAlphaSweepValidatesRatios(t *testing.T) {
	r := Runner{Splits: 2, Seed: 8}
	if _, err := r.AlphaSweep(tinyPIE(), 4, 0, []float64{0, 0.5}); err == nil {
		t.Fatal("ratio 0 accepted")
	}
	if _, err := r.AlphaSweep(tinyPIE(), 4, 0, []float64{1}); err == nil {
		t.Fatal("ratio 1 accepted")
	}
}

func TestSweepFractionProtocol(t *testing.T) {
	r := Runner{Splits: 2, Seed: 9, MemoryLimitBytes: 200 * 1024}
	sweep, err := r.AlphaSweep(tinyNews(), 0, 0.2, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if sweep.LDAFeasible {
		t.Fatal("LDA should be infeasible under the tiny memory wall")
	}
	if sweep.SizeLabel != "20% Train" {
		t.Fatalf("label %q", sweep.SizeLabel)
	}
	// render must not include the LDA reference line
	if strings.Contains(sweep.RenderSweep(), "--- = LDA") {
		t.Fatal("sweep should omit LDA when infeasible")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 6})
	if m != 4 || math.Abs(s-2) > 1e-12 {
		t.Fatalf("meanStd = %v, %v", m, s)
	}
	m, s = meanStd([]float64{5})
	if m != 5 || s != 0 {
		t.Fatalf("single-sample meanStd = %v, %v", m, s)
	}
	m, s = meanStd(nil)
	if m != 0 || s != 0 {
		t.Fatalf("empty meanStd = %v, %v", m, s)
	}
}

func TestKFoldAlphaSelectsReasonably(t *testing.T) {
	r := Runner{Splits: 2, Seed: 10}
	ds := tinyPIE()
	results, best, err := r.KFoldAlpha(ds, []float64{1e-4, 1, 100}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	if best < 0 || best >= 3 {
		t.Fatalf("best index %d", best)
	}
	// the winner must actually have the lowest mean error
	for _, res := range results {
		if res.MeanErr < results[best].MeanErr-1e-12 {
			t.Fatal("best index does not minimize error")
		}
		if res.MeanErr < 0 || res.MeanErr > 100 {
			t.Fatalf("error %v out of range", res.MeanErr)
		}
	}
}

func TestKFoldAlphaValidation(t *testing.T) {
	r := Runner{Splits: 2, Seed: 11}
	ds := tinyPIE()
	if _, _, err := r.KFoldAlpha(ds, []float64{1}, 1); err == nil {
		t.Fatal("1 fold accepted")
	}
	if _, _, err := r.KFoldAlpha(ds, nil, 3); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if _, _, err := r.KFoldAlpha(ds, []float64{-1}, 3); err == nil {
		t.Fatal("negative alpha accepted")
	}
	if _, _, err := r.KFoldAlpha(ds, []float64{1}, 1000); err == nil {
		t.Fatal("folds exceeding class size accepted")
	}
}

func TestRunnerSupportsVariantAlgorithms(t *testing.T) {
	r := Runner{Splits: 2, Seed: 20}
	// small training size so NLDA's null space exists (m < n)
	g, err := r.RunPerClassGrid(tinyPIE(), []Algorithm{AlgoOLDA, AlgoNLDA, AlgoMMC, AlgoFisherfaces}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	for j, a := range g.Algorithms {
		c := g.Cells[0][j]
		if !c.Feasible {
			t.Fatalf("%s infeasible on tiny data", a)
		}
		if c.MeanErr < 0 || c.MeanErr > 100 {
			t.Fatalf("%s error %v", a, c.MeanErr)
		}
	}
}

func TestRunnerUnknownAlgorithmIsInfeasible(t *testing.T) {
	r := Runner{Splits: 1, Seed: 21}
	g, err := r.RunPerClassGrid(tinyPIE(), []Algorithm{"bogus"}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if g.Cells[0][0].Feasible {
		t.Fatal("unknown algorithm should render as infeasible, not crash")
	}
}
