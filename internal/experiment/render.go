package experiment

import (
	"fmt"
	"math"
	"strings"
)

// RenderErrorTable formats a Grid as the paper's error-rate tables
// (mean ± std, percent); infeasible cells render as "—".
func (g *Grid) RenderErrorTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Classification error rates on %s (mean ± std-dev, %%)\n", g.Dataset)
	fmt.Fprintf(&b, "%-12s", "Train Size")
	for _, a := range g.Algorithms {
		fmt.Fprintf(&b, " %14s", string(a))
	}
	b.WriteByte('\n')
	for i, label := range g.RowLabels {
		fmt.Fprintf(&b, "%-12s", label)
		for j := range g.Algorithms {
			c := g.Cells[i][j]
			if !c.Feasible {
				fmt.Fprintf(&b, " %14s", "—")
			} else {
				fmt.Fprintf(&b, " %8.1f ± %3.1f", c.MeanErr, c.StdErr)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderTimeTable formats a Grid as the paper's computational-time tables
// (seconds).
func (g *Grid) RenderTimeTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Computational time on %s (s)\n", g.Dataset)
	fmt.Fprintf(&b, "%-12s", "Train Size")
	for _, a := range g.Algorithms {
		fmt.Fprintf(&b, " %10s", string(a))
	}
	b.WriteByte('\n')
	for i, label := range g.RowLabels {
		fmt.Fprintf(&b, "%-12s", label)
		for j := range g.Algorithms {
			c := g.Cells[i][j]
			if !c.Feasible {
				fmt.Fprintf(&b, " %10s", "—")
			} else {
				fmt.Fprintf(&b, " %10.3f", c.MeanTime)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV emits the grid in machine-readable form: one line per
// (row, algorithm) with error mean/std and time.
func (g *Grid) CSV() string {
	var b strings.Builder
	b.WriteString("dataset,train_size,algorithm,err_mean,err_std,time_sec,feasible\n")
	for i, label := range g.RowLabels {
		for j, a := range g.Algorithms {
			c := g.Cells[i][j]
			fmt.Fprintf(&b, "%s,%s,%s,%.4f,%.4f,%.6f,%t\n",
				g.Dataset, label, a, c.MeanErr, c.StdErr, c.MeanTime, c.Feasible)
		}
	}
	return b.String()
}

// Series extracts one algorithm's error (or time) values across rows for
// figure plotting; infeasible cells yield NaN.
func (g *Grid) Series(a Algorithm, times bool) []float64 {
	col := -1
	for j, algo := range g.Algorithms {
		if algo == a {
			col = j
			break
		}
	}
	if col < 0 {
		return nil
	}
	out := make([]float64, len(g.Cells))
	for i := range g.Cells {
		c := g.Cells[i][col]
		switch {
		case !c.Feasible:
			out[i] = math.NaN()
		case times:
			out[i] = c.MeanTime
		default:
			out[i] = c.MeanErr
		}
	}
	return out
}

// RenderFigure draws an ASCII line chart of the grid (error or time
// panels of Figures 1–4): x = training sizes, one curve marker per
// algorithm.
func (g *Grid) RenderFigure(times bool) string {
	const height = 16
	markers := []byte{'L', 'R', 'S', 'Q'}
	var lo, hi = math.Inf(1), math.Inf(-1)
	series := make([][]float64, len(g.Algorithms))
	for j, a := range g.Algorithms {
		series[j] = g.Series(a, times)
		for _, v := range series[j] {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return "(no feasible data)\n"
	}
	if hi == lo { //srdalint:ignore floatcmp exactly equal axis bounds must be widened to render
		hi = lo + 1
	}
	width := len(g.RowLabels)
	canvas := make([][]byte, height)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", 3*width+2))
	}
	for j := range series {
		for i, v := range series[j] {
			if math.IsNaN(v) {
				continue
			}
			r := int((hi - v) / (hi - lo) * float64(height-1))
			col := 3*i + 1
			m := markers[j%len(markers)]
			if canvas[r][col] == ' ' {
				canvas[r][col] = m
			} else {
				canvas[r][col+1] = m
			}
		}
	}
	quantity := "error rate (%)"
	if times {
		quantity = "time (s)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s vs train size on %s   [", quantity, g.Dataset)
	for j, a := range g.Algorithms {
		if j > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%c=%s", markers[j%len(markers)], a)
	}
	b.WriteString("]\n")
	for r, line := range canvas {
		y := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%8.2f |%s\n", y, strings.TrimRight(string(line), " "))
	}
	b.WriteString("         +" + strings.Repeat("-", 3*width) + "\n          ")
	for _, label := range g.RowLabels {
		short := label
		if idx := strings.IndexByte(short, ' '); idx > 0 {
			short = short[:idx]
		}
		fmt.Fprintf(&b, "%-3s", short)
	}
	b.WriteByte('\n')
	return b.String()
}

// RenderSweep draws a Figure 5 panel as ASCII: the SRDA curve with flat
// LDA and IDR/QR reference lines.
func (s *Sweep) RenderSweep() string {
	const height = 14
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range s.Points {
		lo = math.Min(lo, p.MeanErr)
		hi = math.Max(hi, p.MeanErr)
	}
	if s.LDAFeasible {
		lo = math.Min(lo, s.LDAErr)
		hi = math.Max(hi, s.LDAErr)
	}
	lo = math.Min(lo, s.IDRQRErr)
	hi = math.Max(hi, s.IDRQRErr)
	if hi == lo { //srdalint:ignore floatcmp exactly equal axis bounds must be widened to render
		hi = lo + 1
	}
	width := len(s.Points)
	canvas := make([][]byte, height)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", 4*width+2))
	}
	rowOf := func(v float64) int { return int((hi - v) / (hi - lo) * float64(height-1)) }
	if s.LDAFeasible {
		r := rowOf(s.LDAErr)
		for c := range canvas[r] {
			canvas[r][c] = '-'
		}
	}
	rq := rowOf(s.IDRQRErr)
	for c := 0; c < len(canvas[rq]); c += 2 {
		canvas[rq][c] = '.'
	}
	for i, p := range s.Points {
		canvas[rowOf(p.MeanErr)][4*i+2] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "SRDA model selection on %s (%s)   [* = SRDA", s.Dataset, s.SizeLabel)
	if s.LDAFeasible {
		b.WriteString(", --- = LDA")
	}
	b.WriteString(", ... = IDR/QR]\n")
	for r, line := range canvas {
		y := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%8.2f |%s\n", y, strings.TrimRight(string(line), " "))
	}
	b.WriteString("         +" + strings.Repeat("-", 4*width) + "\n          ")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%-4.1f", p.AlphaRatio)
	}
	b.WriteString("   α/(1+α)\n")
	return b.String()
}

// CSV emits the sweep points in machine-readable form.
func (s *Sweep) CSV() string {
	var b strings.Builder
	b.WriteString("dataset,size,alpha_ratio,srda_err_mean,srda_err_std,lda_err,idrqr_err\n")
	for _, p := range s.Points {
		lda := "NA"
		if s.LDAFeasible {
			lda = fmt.Sprintf("%.4f", s.LDAErr)
		}
		fmt.Fprintf(&b, "%s,%s,%.2f,%.4f,%.4f,%s,%.4f\n",
			s.Dataset, s.SizeLabel, p.AlphaRatio, p.MeanErr, p.StdErr, lda, s.IDRQRErr)
	}
	return b.String()
}
