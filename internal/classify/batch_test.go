package classify

import (
	"math/rand"
	"testing"

	"srda/internal/mat"
)

// TestPredictBatchMatchesPredict pins the GEMM-lowered batch path to the
// per-row reference on random embeddings, including the d=1 (c=2) case.
func TestPredictBatchMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, shape := range []struct{ c, d int }{{2, 1}, {4, 3}, {10, 9}} {
		emb := mat.NewDense(200, shape.d)
		labels := make([]int, emb.Rows)
		for i := 0; i < emb.Rows; i++ {
			labels[i] = i % shape.c
			row := emb.RowView(i)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			row[0] += 5 * float64(labels[i])
		}
		nc, err := FitNearestCentroid(emb, labels, shape.c)
		if err != nil {
			t.Fatal(err)
		}
		want := nc.Predict(emb)
		got := nc.PredictBatch(emb)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("c=%d d=%d: batch[%d]=%d, loop=%d", shape.c, shape.d, i, got[i], want[i])
			}
		}
	}
	if got := (&NearestCentroid{Centroids: mat.NewDense(3, 2)}).PredictBatch(mat.NewDense(0, 2)); len(got) != 0 {
		t.Fatalf("empty batch produced %d predictions", len(got))
	}
}
