// Package classify provides the classifiers the paper's evaluation
// protocol runs on top of the learned embeddings: nearest class centroid
// and k-nearest-neighbors, both in the (c−1)-dimensional discriminant
// space.  The error rates in Tables III–IX are produced by these.
package classify

import (
	"fmt"
	"math"
	"sort"

	"srda/internal/blas"
	"srda/internal/mat"
)

// NearestCentroid is a minimum-distance-to-class-mean classifier.
type NearestCentroid struct {
	// Centroids is c×d: one embedded class mean per row.
	Centroids *mat.Dense
}

// FitNearestCentroid computes class centroids from embedded training data.
func FitNearestCentroid(emb *mat.Dense, labels []int, numClasses int) (*NearestCentroid, error) {
	if emb.Rows != len(labels) {
		return nil, fmt.Errorf("classify: %d rows but %d labels", emb.Rows, len(labels))
	}
	cent := mat.NewDense(numClasses, emb.Cols)
	counts := make([]float64, numClasses)
	for i, y := range labels {
		if y < 0 || y >= numClasses {
			return nil, fmt.Errorf("classify: label %d out of range", y)
		}
		counts[y]++
		blas.Axpy(1, emb.RowView(i), cent.RowView(y))
	}
	for k := 0; k < numClasses; k++ {
		if counts[k] == 0 { //srdalint:ignore floatcmp counts hold exact integer increments; zero means an empty class
			return nil, fmt.Errorf("classify: class %d has no samples", k)
		}
		blas.Scal(1/counts[k], cent.RowView(k))
	}
	return &NearestCentroid{Centroids: cent}, nil
}

// Predict assigns each embedded row to the class with the closest centroid.
func (nc *NearestCentroid) Predict(emb *mat.Dense) []int {
	out := make([]int, emb.Rows)
	for i := 0; i < emb.Rows; i++ {
		out[i] = nc.PredictVec(emb.RowView(i))
	}
	return out
}

// PredictBatch classifies every embedded row at once by lowering the
// per-row centroid-distance loops into a single GEMM: with G = emb·Cᵀ,
// argmin_k ||e_i − c_k||² = argmin_k (||c_k||² − 2·G[i][k]), so the whole
// batch costs one m×c matrix product plus an O(m·c) argmin sweep.  The
// result matches Predict exactly up to floating-point tie-breaking.
func (nc *NearestCentroid) PredictBatch(emb *mat.Dense) []int {
	if emb.Cols != nc.Centroids.Cols {
		panic(fmt.Sprintf("classify: PredictBatch dim mismatch: embedding has %d, centroids %d", emb.Cols, nc.Centroids.Cols))
	}
	out := make([]int, emb.Rows)
	if emb.Rows == 0 {
		return out
	}
	c := nc.Centroids.Rows
	cn := make([]float64, c)
	for k := 0; k < c; k++ {
		crow := nc.Centroids.RowView(k)
		cn[k] = blas.Dot(crow, crow)
	}
	g := mat.MulTB(emb, nc.Centroids)
	for i := 0; i < emb.Rows; i++ {
		grow := g.RowView(i)
		best, bestD := -1, math.Inf(1)
		for k := 0; k < c; k++ {
			if d := cn[k] - 2*grow[k]; d < bestD {
				best, bestD = k, d
			}
		}
		out[i] = best
	}
	return out
}

// PredictVec classifies a single embedded point.
func (nc *NearestCentroid) PredictVec(v []float64) int {
	best, bestD := -1, math.Inf(1)
	for k := 0; k < nc.Centroids.Rows; k++ {
		d := sqDist(v, nc.Centroids.RowView(k))
		if d < bestD {
			best, bestD = k, d
		}
	}
	return best
}

// KNN is a k-nearest-neighbors classifier over embedded training points.
type KNN struct {
	// K is the neighborhood size (1 reproduces the common 1-NN protocol).
	K      int
	points *mat.Dense
	labels []int
	c      int
}

// FitKNN stores the embedded training set.
func FitKNN(emb *mat.Dense, labels []int, numClasses, k int) (*KNN, error) {
	if emb.Rows != len(labels) {
		return nil, fmt.Errorf("classify: %d rows but %d labels", emb.Rows, len(labels))
	}
	if k < 1 {
		return nil, fmt.Errorf("classify: k must be >= 1, got %d", k)
	}
	if k > emb.Rows {
		k = emb.Rows
	}
	return &KNN{K: k, points: emb.Clone(), labels: append([]int(nil), labels...), c: numClasses}, nil
}

// Predict classifies each embedded row by majority vote of its K nearest
// training points (ties broken toward the nearer class).
func (knn *KNN) Predict(emb *mat.Dense) []int {
	out := make([]int, emb.Rows)
	for i := 0; i < emb.Rows; i++ {
		out[i] = knn.PredictVec(emb.RowView(i))
	}
	return out
}

type neighbor struct {
	dist  float64
	label int
}

// PredictVec classifies one embedded point.
func (knn *KNN) PredictVec(v []float64) int {
	nbrs := make([]neighbor, knn.points.Rows)
	for i := 0; i < knn.points.Rows; i++ {
		nbrs[i] = neighbor{sqDist(v, knn.points.RowView(i)), knn.labels[i]}
	}
	sort.Slice(nbrs, func(a, b int) bool { return nbrs[a].dist < nbrs[b].dist })
	votes := make([]int, knn.c)
	nearest := make([]float64, knn.c)
	for i := range nearest {
		nearest[i] = math.Inf(1)
	}
	for i := 0; i < knn.K; i++ {
		votes[nbrs[i].label]++
		if nbrs[i].dist < nearest[nbrs[i].label] {
			nearest[nbrs[i].label] = nbrs[i].dist
		}
	}
	best := 0
	for k := 1; k < knn.c; k++ {
		if votes[k] > votes[best] || (votes[k] == votes[best] && nearest[k] < nearest[best]) {
			best = k
		}
	}
	return best
}

// ErrorRate returns the fraction of predictions that differ from truth.
func ErrorRate(pred, truth []int) float64 {
	if len(pred) != len(truth) {
		panic("classify: prediction/truth length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	wrong := 0
	for i := range pred {
		if pred[i] != truth[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(len(pred))
}

// ConfusionMatrix tallies counts[true][predicted].
func ConfusionMatrix(pred, truth []int, numClasses int) [][]int {
	cm := make([][]int, numClasses)
	for i := range cm {
		cm[i] = make([]int, numClasses)
	}
	for i := range pred {
		cm[truth[i]][pred[i]]++
	}
	return cm
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
