package classify

import (
	"math"
	"strings"
	"testing"

	"srda/internal/mat"
)

func TestComputeMetricsPerfect(t *testing.T) {
	pred := []int{0, 1, 2, 0, 1, 2}
	m, err := ComputeMetrics(pred, pred, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy != 1 || m.MacroF1 != 1 || m.MacroPrecision != 1 || m.MacroRecall != 1 {
		t.Fatalf("perfect predictions scored %+v", m)
	}
	for k := 0; k < 3; k++ {
		if m.Support[k] != 2 {
			t.Fatalf("support %v", m.Support)
		}
	}
}

func TestComputeMetricsKnownCase(t *testing.T) {
	// truth:  0 0 0 0 1 1
	// pred:   0 0 1 1 1 0
	truth := []int{0, 0, 0, 0, 1, 1}
	pred := []int{0, 0, 1, 1, 1, 0}
	m, err := ComputeMetrics(pred, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	// class 0: tp=2 fp=1 fn=2 → precision 2/3, recall 1/2
	if math.Abs(m.Precision[0]-2.0/3) > 1e-12 || math.Abs(m.Recall[0]-0.5) > 1e-12 {
		t.Fatalf("class 0: p=%v r=%v", m.Precision[0], m.Recall[0])
	}
	// class 1: tp=1 fp=2 fn=1 → precision 1/3, recall 1/2
	if math.Abs(m.Precision[1]-1.0/3) > 1e-12 || math.Abs(m.Recall[1]-0.5) > 1e-12 {
		t.Fatalf("class 1: p=%v r=%v", m.Precision[1], m.Recall[1])
	}
	if math.Abs(m.Accuracy-0.5) > 1e-12 {
		t.Fatalf("accuracy %v", m.Accuracy)
	}
	if !strings.Contains(m.String(), "macro") {
		t.Fatal("report missing macro row")
	}
}

func TestComputeMetricsNeverPredictedClass(t *testing.T) {
	truth := []int{0, 1, 2}
	pred := []int{0, 1, 0} // class 2 never predicted
	m, err := ComputeMetrics(pred, truth, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Precision[2] != 0 || m.F1[2] != 0 {
		t.Fatalf("unpredicted class should score 0, got p=%v f1=%v", m.Precision[2], m.F1[2])
	}
	if math.IsNaN(m.MacroF1) {
		t.Fatal("macro F1 must not be NaN")
	}
}

func TestComputeMetricsValidation(t *testing.T) {
	if _, err := ComputeMetrics([]int{0}, []int{0, 1}, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := ComputeMetrics(nil, nil, 2); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ComputeMetrics([]int{5}, []int{0}, 2); err == nil {
		t.Fatal("out-of-range prediction accepted")
	}
}

func TestTopKAccuracy(t *testing.T) {
	ranked := [][]int{
		{0, 1, 2},
		{1, 0, 2},
		{2, 1, 0},
	}
	truth := []int{0, 0, 0}
	if got, _ := TopKAccuracy(ranked, truth, 1); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("top-1 %v", got)
	}
	if got, _ := TopKAccuracy(ranked, truth, 2); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("top-2 %v", got)
	}
	if got, _ := TopKAccuracy(ranked, truth, 3); got != 1 {
		t.Fatalf("top-3 %v", got)
	}
	if _, err := TopKAccuracy(nil, nil, 1); err == nil {
		t.Fatal("empty accepted")
	}
}

func TestRankCentroidsOrdersByDistance(t *testing.T) {
	emb := mat.FromRows([][]float64{{0.2, 0}})
	nc := &NearestCentroid{Centroids: mat.FromRows([][]float64{{0, 0}, {1, 0}, {5, 0}})}
	ranked := nc.RankCentroids(emb, 1)
	want := []int{0, 1, 2}
	for i, w := range want {
		if ranked[0][i] != w {
			t.Fatalf("ranking %v", ranked[0])
		}
	}
}

func TestBalancedErrorHandlesImbalance(t *testing.T) {
	// 9 of class 0 (all right), 1 of class 1 (wrong): plain error 10%,
	// balanced error 50%.
	truth := []int{0, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	pred := []int{0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
	be, err := BalancedError(pred, truth, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(be-0.5) > 1e-12 {
		t.Fatalf("balanced error %v want 0.5", be)
	}
	if e := ErrorRate(pred, truth); math.Abs(e-0.1) > 1e-12 {
		t.Fatalf("plain error %v want 0.1", e)
	}
}

func TestMCCBounds(t *testing.T) {
	perfect := []int{0, 1, 2, 0, 1, 2}
	if got, _ := MCC(perfect, perfect, 3); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect MCC %v", got)
	}
	// constant predictions: undefined → 0
	truth := []int{0, 1, 0, 1}
	pred := []int{0, 0, 0, 0}
	if got, _ := MCC(pred, truth, 2); got != 0 {
		t.Fatalf("degenerate MCC %v", got)
	}
	// anti-perfect binary: −1
	anti := []int{1, 0, 1, 0}
	if got, _ := MCC(anti, truth, 2); math.Abs(got+1) > 1e-12 {
		t.Fatalf("anti MCC %v", got)
	}
	if _, err := MCC(nil, nil, 2); err == nil {
		t.Fatal("empty accepted")
	}
}
