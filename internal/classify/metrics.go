package classify

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Metrics summarizes multi-class classification quality beyond the raw
// error rate the paper reports: per-class precision/recall/F1 and their
// macro averages, computed from a confusion matrix.
type Metrics struct {
	// Accuracy is 1 − error rate.
	Accuracy float64
	// Precision, Recall and F1 are per-class (length c); a class never
	// predicted has precision NaN-free 0 by convention.
	Precision, Recall, F1 []float64
	// MacroPrecision, MacroRecall and MacroF1 average over classes.
	MacroPrecision, MacroRecall, MacroF1 float64
	// Support counts true samples per class.
	Support []int
}

// ComputeMetrics evaluates predictions against ground truth.
func ComputeMetrics(pred, truth []int, numClasses int) (*Metrics, error) {
	if len(pred) != len(truth) {
		return nil, fmt.Errorf("classify: %d predictions for %d labels", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return nil, fmt.Errorf("classify: empty prediction set")
	}
	cm := make([][]int, numClasses)
	for i := range cm {
		cm[i] = make([]int, numClasses)
	}
	correct := 0
	for i := range pred {
		if pred[i] < 0 || pred[i] >= numClasses || truth[i] < 0 || truth[i] >= numClasses {
			return nil, fmt.Errorf("classify: label out of range at %d", i)
		}
		cm[truth[i]][pred[i]]++
		if pred[i] == truth[i] {
			correct++
		}
	}
	m := &Metrics{
		Accuracy:  float64(correct) / float64(len(pred)),
		Precision: make([]float64, numClasses),
		Recall:    make([]float64, numClasses),
		F1:        make([]float64, numClasses),
		Support:   make([]int, numClasses),
	}
	for k := 0; k < numClasses; k++ {
		var tp, fp, fn int
		for j := 0; j < numClasses; j++ {
			if j == k {
				tp = cm[k][k]
				continue
			}
			fn += cm[k][j]
			fp += cm[j][k]
		}
		m.Support[k] = tp + fn
		if tp+fp > 0 {
			m.Precision[k] = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			m.Recall[k] = float64(tp) / float64(tp+fn)
		}
		if m.Precision[k]+m.Recall[k] > 0 {
			m.F1[k] = 2 * m.Precision[k] * m.Recall[k] / (m.Precision[k] + m.Recall[k])
		}
		m.MacroPrecision += m.Precision[k]
		m.MacroRecall += m.Recall[k]
		m.MacroF1 += m.F1[k]
	}
	m.MacroPrecision /= float64(numClasses)
	m.MacroRecall /= float64(numClasses)
	m.MacroF1 /= float64(numClasses)
	return m, nil
}

// String renders a classification report.
func (m *Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "accuracy %.4f\n", m.Accuracy)
	fmt.Fprintf(&b, "%6s %10s %10s %10s %8s\n", "class", "precision", "recall", "f1", "support")
	for k := range m.Precision {
		fmt.Fprintf(&b, "%6d %10.4f %10.4f %10.4f %8d\n",
			k, m.Precision[k], m.Recall[k], m.F1[k], m.Support[k])
	}
	fmt.Fprintf(&b, "%6s %10.4f %10.4f %10.4f\n", "macro", m.MacroPrecision, m.MacroRecall, m.MacroF1)
	return b.String()
}

// TopKAccuracy scores ranked predictions: sample i counts as correct when
// truth[i] appears among the first k entries of ranked[i].  Embedding
// methods produce natural rankings by centroid distance (RankCentroids).
func TopKAccuracy(ranked [][]int, truth []int, k int) (float64, error) {
	if len(ranked) != len(truth) {
		return 0, fmt.Errorf("classify: %d rankings for %d labels", len(ranked), len(truth))
	}
	if len(ranked) == 0 {
		return 0, fmt.Errorf("classify: empty ranking set")
	}
	hits := 0
	for i, r := range ranked {
		top := r
		if len(top) > k {
			top = top[:k]
		}
		for _, cand := range top {
			if cand == truth[i] {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(len(ranked)), nil
}

// RankCentroids ranks all classes for each embedded point by increasing
// centroid distance, for top-k evaluation.
func (nc *NearestCentroid) RankCentroids(emb interface{ RowView(int) []float64 }, rows int) [][]int {
	out := make([][]int, rows)
	c := nc.Centroids.Rows
	for i := 0; i < rows; i++ {
		v := emb.RowView(i)
		type kd struct {
			k int
			d float64
		}
		ds := make([]kd, c)
		for k := 0; k < c; k++ {
			ds[k] = kd{k, sqDist(v, nc.Centroids.RowView(k))}
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a].d < ds[b].d })
		r := make([]int, c)
		for t, e := range ds {
			r[t] = e.k
		}
		out[i] = r
	}
	return out
}

// BalancedError averages per-class error rates, insensitive to class
// imbalance (1 − macro recall).
func BalancedError(pred, truth []int, numClasses int) (float64, error) {
	m, err := ComputeMetrics(pred, truth, numClasses)
	if err != nil {
		return 0, err
	}
	return 1 - m.MacroRecall, nil
}

// MCC computes the multi-class Matthews correlation coefficient from
// predictions (the R_k statistic), a single-number summary robust to
// imbalance; returns 0 when undefined.
func MCC(pred, truth []int, numClasses int) (float64, error) {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0, fmt.Errorf("classify: bad input sizes")
	}
	cm := make([][]float64, numClasses)
	for i := range cm {
		cm[i] = make([]float64, numClasses)
	}
	for i := range pred {
		if pred[i] < 0 || pred[i] >= numClasses || truth[i] < 0 || truth[i] >= numClasses {
			return 0, fmt.Errorf("classify: label out of range at %d", i)
		}
		cm[truth[i]][pred[i]]++
	}
	n := float64(len(pred))
	var traceC, sumTP float64
	rowSum := make([]float64, numClasses)
	colSum := make([]float64, numClasses)
	for i := 0; i < numClasses; i++ {
		traceC += cm[i][i]
		for j := 0; j < numClasses; j++ {
			rowSum[i] += cm[i][j]
			colSum[j] += cm[i][j]
		}
	}
	var dotRC, rr, cc float64
	for i := 0; i < numClasses; i++ {
		dotRC += rowSum[i] * colSum[i]
		rr += rowSum[i] * rowSum[i]
		cc += colSum[i] * colSum[i]
	}
	sumTP = traceC
	num := sumTP*n - dotRC
	den := math.Sqrt(n*n-rr) * math.Sqrt(n*n-cc)
	if den == 0 { //srdalint:ignore floatcmp exact zero denominator is the degenerate MCC case
		return 0, nil
	}
	return num / den, nil
}
