package classify

import (
	"math/rand"
	"testing"

	"srda/internal/mat"
)

func TestNearestCentroidBasic(t *testing.T) {
	emb := mat.FromRows([][]float64{{0, 0}, {0.2, 0}, {5, 5}, {5.2, 5}})
	labels := []int{0, 0, 1, 1}
	nc, err := FitNearestCentroid(emb, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := nc.PredictVec([]float64{0.1, -0.1}); got != 0 {
		t.Fatalf("predicted %d", got)
	}
	if got := nc.PredictVec([]float64{4.9, 5.3}); got != 1 {
		t.Fatalf("predicted %d", got)
	}
	pred := nc.Predict(emb)
	if ErrorRate(pred, labels) != 0 {
		t.Fatal("training error should be zero on separated clusters")
	}
}

func TestNearestCentroidCentroidValues(t *testing.T) {
	emb := mat.FromRows([][]float64{{1, 0}, {3, 0}, {10, 10}})
	nc, err := FitNearestCentroid(emb, []int{0, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if nc.Centroids.At(0, 0) != 2 || nc.Centroids.At(0, 1) != 0 {
		t.Fatalf("centroid 0 = %v,%v", nc.Centroids.At(0, 0), nc.Centroids.At(0, 1))
	}
}

func TestNearestCentroidValidation(t *testing.T) {
	emb := mat.NewDense(3, 2)
	if _, err := FitNearestCentroid(emb, []int{0, 1}, 2); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitNearestCentroid(emb, []int{0, 1, 5}, 2); err == nil {
		t.Fatal("bad label accepted")
	}
	if _, err := FitNearestCentroid(emb, []int{0, 0, 0}, 2); err == nil {
		t.Fatal("empty class accepted")
	}
}

func TestKNNOneNearestMemorizesTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	emb := mat.NewDense(30, 3)
	labels := make([]int, 30)
	for i := 0; i < 30; i++ {
		for j := 0; j < 3; j++ {
			emb.Set(i, j, rng.NormFloat64())
		}
		labels[i] = i % 3
	}
	knn, err := FitKNN(emb, labels, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	pred := knn.Predict(emb)
	if ErrorRate(pred, labels) != 0 {
		t.Fatal("1-NN must have zero training error with distinct points")
	}
}

func TestKNNMajorityVote(t *testing.T) {
	emb := mat.FromRows([][]float64{{0}, {0.1}, {0.2}, {10}})
	labels := []int{0, 0, 0, 1}
	knn, err := FitKNN(emb, labels, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// query near the lone class-1 point, but 2 of the 3 neighbors are 0...
	if got := knn.PredictVec([]float64{0.15}); got != 0 {
		t.Fatalf("majority vote gave %d", got)
	}
	if got := knn.PredictVec([]float64{10.1}); got != 0 {
		// 3 nearest of {0,0.1,0.2,10} to 10.1: 10 (lab 1), 0.2, 0.1 (lab 0,0)
		// → majority says 0 even though 1 is nearest.
		t.Fatalf("expected majority class 0, got %d", got)
	}
	knn1, _ := FitKNN(emb, labels, 2, 1)
	if got := knn1.PredictVec([]float64{10.1}); got != 1 {
		t.Fatalf("1-NN should pick 1, got %d", got)
	}
}

func TestKNNTieBreaksTowardNearer(t *testing.T) {
	emb := mat.FromRows([][]float64{{0}, {2}})
	labels := []int{0, 1}
	knn, err := FitKNN(emb, labels, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := knn.PredictVec([]float64{0.5}); got != 0 {
		t.Fatalf("tie should break toward nearer class, got %d", got)
	}
	if got := knn.PredictVec([]float64{1.5}); got != 1 {
		t.Fatalf("tie should break toward nearer class, got %d", got)
	}
}

func TestKNNClampsK(t *testing.T) {
	emb := mat.FromRows([][]float64{{0}, {1}})
	knn, err := FitKNN(emb, []int{0, 1}, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if knn.K != 2 {
		t.Fatalf("K=%d want clamp to 2", knn.K)
	}
	if _, err := FitKNN(emb, []int{0, 1}, 2, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestErrorRateAndConfusion(t *testing.T) {
	pred := []int{0, 1, 1, 0}
	truth := []int{0, 1, 0, 0}
	if got := ErrorRate(pred, truth); got != 0.25 {
		t.Fatalf("ErrorRate=%v", got)
	}
	cm := ConfusionMatrix(pred, truth, 2)
	if cm[0][0] != 2 || cm[0][1] != 1 || cm[1][1] != 1 || cm[1][0] != 0 {
		t.Fatalf("cm=%v", cm)
	}
	if got := ErrorRate(nil, nil); got != 0 {
		t.Fatalf("empty ErrorRate=%v", got)
	}
}
