package obs

// Structured logging on log/slog.  Logger is the repository's sole
// sanctioned logging surface outside the command mains: the serving and
// reload paths log through it (the srdalint rawlog analyzer bans raw
// log.Printf / fmt.Fprint-to-stderr elsewhere), which buys three things
// uniformly:
//
//   - level control at runtime (SetLevel), so a busy server can be turned
//     up to debug without a restart;
//   - trace correlation: WithTrace(ctx) stamps every line with the
//     request's trace_id/span_id, joining logs to the request tracer;
//   - rate-limited sampling (Sample) for hot paths, so a queue-overflow
//     storm logs once a second with a suppressed count instead of once
//     per rejected sample.
//
// The clock is injectable like everywhere else in obs, so log output in
// tests is byte-deterministic.  A nil *Logger is a valid no-op receiver:
// call-sites log unconditionally and pay one nil check when logging is
// off.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"
)

// Logger is a leveled, attribute-carrying logger.  Derive children with
// With/WithTrace; all children share the parent's level and sampler.
type Logger struct {
	h     slog.Handler
	lvl   *slog.LevelVar
	clock Clock
	smp   *sampler
}

// NewLogger creates a text-format logger writing to w at the given
// initial level.
func NewLogger(w io.Writer, level slog.Level) *Logger {
	return newLogger(w, level, false, time.Now)
}

// NewJSONLogger creates a JSON-lines logger writing to w.
func NewJSONLogger(w io.Writer, level slog.Level) *Logger {
	return newLogger(w, level, true, time.Now)
}

// NewLoggerClock creates a logger on an injected clock (json selects the
// wire format); tests use a fake clock for deterministic timestamps.
func NewLoggerClock(w io.Writer, level slog.Level, json bool, clock Clock) *Logger {
	if clock == nil {
		clock = time.Now
	}
	return newLogger(w, level, json, clock)
}

func newLogger(w io.Writer, level slog.Level, json bool, clock Clock) *Logger {
	lvl := new(slog.LevelVar)
	lvl.Set(level)
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if json {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	return &Logger{h: h, lvl: lvl, clock: clock, smp: newSampler()}
}

// ParseLevel maps "debug", "info", "warn", "error" (case-sensitive,
// matching flag conventions) to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn, or error)", s)
}

// SetLevel changes the minimum level for this logger and every logger
// derived from it.  No-op on nil.
func (l *Logger) SetLevel(level slog.Level) {
	if l != nil {
		l.lvl.Set(level)
	}
}

// Level returns the current minimum level (LevelInfo on nil).
func (l *Logger) Level() slog.Level {
	if l == nil {
		return slog.LevelInfo
	}
	return l.lvl.Level()
}

// With returns a child logger that adds the given key/value attrs to
// every record.  Nil stays nil.
func (l *Logger) With(args ...any) *Logger {
	if l == nil || len(args) == 0 {
		return l
	}
	return &Logger{h: l.h.WithAttrs(argsToAttrs(args)), lvl: l.lvl, clock: l.clock, smp: l.smp}
}

// WithTrace returns a child logger stamped with the trace_id and span_id
// of the span carried by ctx, correlating log lines with the request
// tracer.  Without an active span it returns l unchanged.
func (l *Logger) WithTrace(ctx context.Context) *Logger {
	s := SpanFromContext(ctx)
	if l == nil || s == nil {
		return l
	}
	return l.With("trace_id", FormatTraceID(s.TraceID()), "span_id", uint64(s.SpanID()))
}

// Sample returns l when a log line keyed by key is due (at most one per
// period) and nil — a no-op logger — otherwise.  When a due line follows
// suppressed ones, the returned logger carries a "suppressed" attr with
// the count, so bursts stay visible without flooding:
//
//	log.Sample("queue_full", time.Second).Warn("queue full", "dropped", n)
//
// Nil receiver returns nil.
func (l *Logger) Sample(key string, period time.Duration) *Logger {
	if l == nil {
		return nil
	}
	ok, suppressed := l.smp.allow(key, period, l.clock())
	if !ok {
		return nil
	}
	if suppressed > 0 {
		return l.With("suppressed", suppressed)
	}
	return l
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, args ...any) { l.log(slog.LevelDebug, msg, args) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, args ...any) { l.log(slog.LevelInfo, msg, args) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, args ...any) { l.log(slog.LevelWarn, msg, args) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, args ...any) { l.log(slog.LevelError, msg, args) }

func (l *Logger) log(level slog.Level, msg string, args []any) {
	if l == nil || !l.h.Enabled(context.Background(), level) {
		return
	}
	r := slog.NewRecord(l.clock(), level, msg, 0)
	r.Add(args...)
	// A handler write failure means the log sink is gone; logging about
	// it would go to the same sink.
	_ = l.h.Handle(context.Background(), r)
}

// argsToAttrs converts alternating key/value args the way slog does.
func argsToAttrs(args []any) []slog.Attr {
	attrs := make([]slog.Attr, 0, (len(args)+1)/2)
	for i := 0; i < len(args); {
		switch k := args[i].(type) {
		case string:
			if i+1 < len(args) {
				attrs = append(attrs, slog.Any(k, args[i+1]))
				i += 2
			} else {
				attrs = append(attrs, slog.String("!BADKEY", k))
				i++
			}
		case slog.Attr:
			attrs = append(attrs, k)
			i++
		default:
			attrs = append(attrs, slog.Any("!BADKEY", k))
			i++
		}
	}
	return attrs
}

// sampler tracks the last-emitted time and suppressed count per key.
type sampler struct {
	mu         sync.Mutex
	last       map[string]time.Time
	suppressed map[string]uint64
}

func newSampler() *sampler {
	return &sampler{last: make(map[string]time.Time), suppressed: make(map[string]uint64)}
}

// allow reports whether a line keyed by key may log at time now, and the
// number of lines suppressed since the last allowed one.
func (s *sampler) allow(key string, period time.Duration, now time.Time) (bool, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	last, seen := s.last[key]
	if seen && now.Sub(last) < period {
		s.suppressed[key]++
		return false, 0
	}
	s.last[key] = now
	n := s.suppressed[key]
	s.suppressed[key] = 0
	return true, n
}
