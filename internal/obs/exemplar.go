package obs

// Exemplars link metrics back to traces: when a latency histogram or
// quantile sketch records an outlier, the store keeps the TraceID of the
// observation so a p99 spike on /metrics points at a concrete trace in
// the Chrome-trace export instead of an anonymous aggregate.  Two kinds
// are tracked per metric over a sliding observation window:
//
//	window_max  — the slowest observation in the current/last window
//	slo_breach  — the first observation over the SLO in its window
//
// Observations without a trace (TraceID 0: tracing disabled, or an
// unsampled path) are skipped, so instrumented call-sites record
// unconditionally.  Snapshots are deterministic: metrics sort by name and
// every exemplar carries the store-wide observation sequence number it
// was captured at.

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// Exemplar is one trace-linked outlier observation.
type Exemplar struct {
	Metric  string  `json:"metric"`
	Kind    string  `json:"kind"` // "window_max" or "slo_breach"
	Value   float64 `json:"value"`
	TraceID string  `json:"trace_id"` // FormatTraceID form
	Seq     uint64  `json:"seq"`      // store-wide observation index
}

// DefaultExemplarWindow is the observations-per-window used when
// NewExemplarStore is given window <= 0.
const DefaultExemplarWindow = 256

// ExemplarStore tracks trace-linked outliers for any number of metrics.
// All methods are safe for concurrent use; a nil *ExemplarStore is a
// valid no-op, matching the rest of obs.
type ExemplarStore struct {
	window int
	slo    float64 // seconds; <= 0 disables slo_breach tracking

	mu  sync.Mutex
	seq uint64
	m   map[string]*exemplarState
}

type exemplarState struct {
	count   int      // observations in the open window
	cur     Exemplar // max of the open window
	hasCur  bool
	last    Exemplar // max of the last completed window
	hasLast bool

	breach     Exemplar // first over-SLO observation of its window
	hasBreach  bool
	breachOpen bool // the open window already has its "first"
}

// NewExemplarStore creates a store with the given window size
// (DefaultExemplarWindow when <= 0) and SLO threshold in the observed
// unit (<= 0 disables slo_breach exemplars).
func NewExemplarStore(window int, slo float64) *ExemplarStore {
	if window <= 0 {
		window = DefaultExemplarWindow
	}
	return &ExemplarStore{window: window, slo: slo, m: make(map[string]*exemplarState)}
}

// SLO returns the configured breach threshold (0 on nil).
func (e *ExemplarStore) SLO() float64 {
	if e == nil {
		return 0
	}
	return e.slo
}

// Observe records one observation of metric with the trace it belongs
// to.  Trace 0 (no active trace) and a nil store are no-ops.
func (e *ExemplarStore) Observe(metric string, v float64, trace TraceID) {
	if e == nil || trace == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.seq++
	s := e.m[metric]
	if s == nil {
		s = &exemplarState{}
		e.m[metric] = s
	}
	s.count++
	if !s.hasCur || v > s.cur.Value {
		s.cur = Exemplar{Metric: metric, Value: v, TraceID: FormatTraceID(trace), Seq: e.seq}
		s.hasCur = true
	}
	if e.slo > 0 && v > e.slo && !s.breachOpen {
		s.breach = Exemplar{Metric: metric, Value: v, TraceID: FormatTraceID(trace), Seq: e.seq}
		s.hasBreach = true
		s.breachOpen = true
	}
	if s.count >= e.window {
		s.last, s.hasLast = s.cur, s.hasCur
		s.hasCur = false
		s.count = 0
		s.breachOpen = false // the next over-SLO observation is a new "first"
	}
}

// Snapshot returns the current exemplars sorted by (metric, kind), the
// slowest-in-window first.  Nil receiver returns nil.
func (e *ExemplarStore) Snapshot() []Exemplar {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	names := make([]string, 0, len(e.m))
	//srdalint:ignore maprange collect-then-sort: names are sorted before building the snapshot
	for name := range e.m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Exemplar, 0, 2*len(names))
	for _, name := range names {
		s := e.m[name]
		max, ok := s.cur, s.hasCur
		if s.hasLast && (!ok || s.last.Value > max.Value) {
			max, ok = s.last, true
		}
		if ok {
			max.Kind = "window_max"
			out = append(out, max)
		}
		if s.hasBreach {
			b := s.breach
			b.Kind = "slo_breach"
			out = append(out, b)
		}
	}
	return out
}

// Handler serves the snapshot as a JSON array (the /debug/exemplars
// endpoint).  A nil store serves an empty array.
func (e *ExemplarStore) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := e.Snapshot()
		if snap == nil {
			snap = []Exemplar{}
		}
		data, err := json.Marshal(snap)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(append(data, '\n')) // best-effort: the client owns the socket
	})
}

// AttachExemplars links the histogram to an exemplar store under its own
// metric name; ObserveTraced then records outliers there.
func (h *Histogram) AttachExemplars(store *ExemplarStore) {
	h.exemplars = store
}

// ObserveTraced records one value like Observe and forwards it with its
// trace to the attached exemplar store (no-op without one).
func (h *Histogram) ObserveTraced(v float64, trace TraceID) {
	h.Observe(v)
	h.exemplars.Observe(h.name, v, trace)
}
