package obs

// Chrome trace-event export for the request tracer.  The output is the
// JSON object format of the Trace Event spec ("X" complete events), which
// Perfetto (https://ui.perfetto.dev) and chrome://tracing open directly:
// one row (tid) per TraceID, so each request reads as its own lane with
// request → batch → kernel nesting visible as stacked slices.
//
// Export is deterministic: spans sort by (trace, start, span id) and
// timestamps are microseconds relative to the earliest span in the
// export, so a fixed clock and request order produce byte-identical
// output — which is what lets the exporter be golden-tested.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one complete ("ph":"X") trace event.  Field order is the
// serialization order; keep it stable, the exporter is golden-tested.
type chromeEvent struct {
	Name string     `json:"name"`
	Cat  string     `json:"cat"`
	Ph   string     `json:"ph"`
	TS   int64      `json:"ts"`  // microseconds since the earliest span
	Dur  int64      `json:"dur"` // microseconds
	PID  int        `json:"pid"`
	TID  uint64     `json:"tid"` // trace id: one lane per request
	Args chromeArgs `json:"args"`
}

// chromeArgs carries the span-tree coordinates for programmatic readers.
type chromeArgs struct {
	TraceID  string `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id"`
}

// chromeFile is the top-level trace-event JSON object.  Process and
// EpochMicros are srda extensions (ignored by Perfetto itself): the
// tracer's process label and the absolute wall-clock microsecond the
// relative timestamps are measured from, which is what lets srdareport
// tracemerge rebase several per-process files onto one timeline.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Process         string        `json:"process,omitempty"`
	EpochMicros     int64         `json:"epochMicros,omitempty"`
}

// FormatTraceID renders a TraceID the way the exporter does ("t%016x").
func FormatTraceID(id TraceID) string { return fmt.Sprintf("t%016x", uint64(id)) }

// WriteChromeTrace exports the ring's completed spans as Chrome
// trace-event JSON.  An empty ring exports an empty traceEvents array
// (still a valid file).  Nil receiver writes the empty file too.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Snapshot()
	sortSpans(spans)
	events := make([]chromeEvent, 0, len(spans))
	var epoch int64
	if len(spans) > 0 {
		epoch = spans[0].Start.UnixMicro()
		for _, sp := range spans[1:] {
			if us := sp.Start.UnixMicro(); us < epoch {
				epoch = us
			}
		}
	}
	for _, sp := range spans {
		events = append(events, chromeEvent{
			Name: sp.Name,
			Cat:  "srda",
			Ph:   "X",
			TS:   sp.Start.UnixMicro() - epoch,
			Dur:  sp.Duration.Microseconds(),
			PID:  1,
			TID:  uint64(sp.Trace),
			Args: chromeArgs{
				TraceID:  FormatTraceID(sp.Trace),
				SpanID:   uint64(sp.ID),
				ParentID: uint64(sp.Parent),
			},
		})
	}
	file := chromeFile{TraceEvents: events, DisplayTimeUnit: "ms", Process: t.Process()}
	if len(spans) > 0 {
		file.EpochMicros = epoch
	}
	data, err := json.Marshal(file)
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// sortSpans orders spans by (trace, start, span id): traces group
// together, and within a trace parents (which start no later than their
// children and were assigned smaller ids) come first.
func sortSpans(spans []SpanRecord) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if !a.Start.Equal(b.Start) {
			return a.Start.Before(b.Start)
		}
		return a.ID < b.ID
	})
}
