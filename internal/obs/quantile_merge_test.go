package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// rankOf returns the inclusive [lo, hi] 1-based rank range that value v
// occupies in the sorted union stream (equal values share a range).
func rankOf(sorted []float64, v float64) (int, int) {
	lo := sort.SearchFloat64s(sorted, v) + 1
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })
	return lo, hi
}

// TestMergeSketchesRankError is the cross-replica accuracy contract:
// K replicas each sketch a disjoint shard of one latency stream; the
// merged cluster sketch must answer p50/p95/p99 within twice the
// per-replica rank error of the exact quantile over the union — the
// bound MergeSketches documents.
func TestMergeSketchesRankError(t *testing.T) {
	const (
		replicas = 4
		perRep   = 20000
	)
	rng := rand.New(rand.NewSource(42))
	union := make([]float64, 0, replicas*perRep)
	snaps := make([]SketchSnapshot, 0, replicas)
	for r := 0; r < replicas; r++ {
		sk := NewQuantileSketch()
		for i := 0; i < perRep; i++ {
			// Log-normal-ish latency shape with a heavy tail; each
			// replica sees a slightly shifted distribution so the
			// merge actually has to reconcile different ranges.
			v := math.Exp(rng.NormFloat64()*0.6) * (1 + 0.1*float64(r))
			sk.Observe(v)
			union = append(union, v)
		}
		snaps = append(snaps, sk.Snapshot())
	}
	sort.Float64s(union)
	n := len(union)

	merged := MergeSketches(snaps...)
	if got := merged.Count(); got != n {
		t.Fatalf("merged Count() = %d, want %d", got, n)
	}

	for _, tgt := range DefaultLatencyTargets() {
		got := merged.Query(tgt.Q)
		lo, hi := rankOf(union, got)
		want := tgt.Q * float64(n)
		// 2ε·n for the merge, plus one rank of slack for the discrete
		// rank granularity at stream boundaries.
		bound := 2*tgt.Eps*float64(n) + 1
		if float64(hi) < want-bound || float64(lo) > want+bound {
			t.Errorf("q=%v: estimate %v has rank range [%d,%d], want within %.1f of %.1f",
				tgt.Q, got, lo, hi, bound, want)
		}
	}
}

// TestMergeSketchesDegenerate covers empty and single-source merges.
func TestMergeSketchesDegenerate(t *testing.T) {
	empty := MergeSketches()
	if empty.Count() != 0 || !math.IsNaN(empty.Query(0.5)) {
		t.Errorf("empty merge: Count=%d Query=%v", empty.Count(), empty.Query(0.5))
	}

	sk := NewQuantileSketch()
	for i := 1; i <= 1000; i++ {
		sk.Observe(float64(i))
	}
	one := MergeSketches(sk.Snapshot())
	if one.Count() != 1000 {
		t.Fatalf("single-source merge Count = %d", one.Count())
	}
	if p50 := one.Query(0.5); p50 < 480 || p50 > 520 {
		t.Errorf("single-source p50 = %v, want ~500", p50)
	}

	// A merge of an empty snapshot with a real one is just the real one.
	both := MergeSketches(NewQuantileSketch().Snapshot(), sk.Snapshot())
	if both.Count() != 1000 {
		t.Errorf("empty+real merge Count = %d", both.Count())
	}
}

// TestSketchSnapshotRoundTrip checks a snapshot re-queried after merge
// preserves the stream's extremes (the min/max tuples are never merged
// away).
func TestSketchSnapshotRoundTrip(t *testing.T) {
	sk := NewQuantileSketch()
	for i := 0; i < 5000; i++ {
		sk.Observe(float64(i % 97))
	}
	snap := sk.Snapshot()
	if snap.Count != 5000 {
		t.Fatalf("snapshot Count = %d", snap.Count)
	}
	sumG := 0
	for _, s := range snap.Samples {
		sumG += s.G
	}
	if sumG != snap.Count {
		t.Errorf("sum of rank gaps %d != count %d (CKMS invariant broken)", sumG, snap.Count)
	}
	// Re-querying through a merge of the single snapshot must stay
	// within the target rank errors (values are uniform over 0..96).
	m := MergeSketches(snap)
	if p50 := m.Query(0.5); p50 < 45 || p50 > 51 {
		t.Errorf("p50 after round trip = %v, want ~48", p50)
	}
	if p99 := m.Query(0.99); p99 < 94 || p99 > 96 {
		t.Errorf("p99 after round trip = %v, want ~95", p99)
	}
}
