package obs

import (
	"sync"
	"time"
)

// Clock supplies the current time to a Trace.  Injecting it keeps clock
// reads out of the numeric packages (the noclock contract): the CLI or
// test that owns a run constructs the Trace — with the real clock or a
// fake — and the instrumented code only ever calls Trace methods.
type Clock func() time.Time

// SystemClock returns the wall clock as an injectable Clock.  Packages
// under the noclock contract (the online trainer's interval trigger in
// particular) take a Clock from their caller instead of reading package
// time; the process entry points pass this one, tests pass a fake.
func SystemClock() Clock { return time.Now }

// Span is one completed, named interval of a traced operation.
type Span struct {
	Name     string
	Start    time.Time
	Duration time.Duration
}

// Trace collects named spans for one logical operation (one Fit call, one
// benchmark run).  A nil *Trace is a valid no-op receiver, so call-sites
// in the numeric packages are unconditional — untraced runs pay one nil
// check per phase, not per sample.  Safe for concurrent use: the LSQR
// path closes spans from pool workers.
type Trace struct {
	clock Clock
	mu    sync.Mutex
	spans []Span
}

// NewTrace creates a trace on the wall clock.
func NewTrace() *Trace { return NewTraceClock(time.Now) }

// NewTraceClock creates a trace on an injected clock; tests use a fake
// clock to make span durations deterministic.
func NewTraceClock(clock Clock) *Trace {
	if clock == nil {
		clock = time.Now
	}
	return &Trace{clock: clock}
}

// Scope is an open span; End closes it and records it on the trace.  The
// zero/nil Scope (from a nil Trace) is a no-op.
type Scope struct {
	t     *Trace
	name  string
	start time.Time
}

// Start opens a named span.  On a nil Trace it returns a nil Scope whose
// End is a no-op, so instrumented code never branches on whether tracing
// is enabled.
func (t *Trace) Start(name string) *Scope {
	if t == nil {
		return nil
	}
	return &Scope{t: t, name: name, start: t.clock()}
}

// End closes the span and appends it to its trace.
func (s *Scope) End() {
	if s == nil {
		return
	}
	t := s.t
	end := t.clock()
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: s.name, Start: s.start, Duration: end.Sub(s.start)})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in completion order.  Nil
// receiver returns nil.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Seconds returns the summed duration of every span with the given name
// (phases that run once per response accumulate).
func (t *Trace) Seconds(name string) float64 {
	var total time.Duration
	for _, sp := range t.Spans() {
		if sp.Name == name {
			total += sp.Duration
		}
	}
	return total.Seconds()
}

// Stamp is an opaque start-time capture for code that may not read the
// clock itself (internal/pool's queue-wait measurement).  The clock read
// stays inside obs, the sanctioned owner.
type Stamp struct{ t time.Time }

// NowStamp captures the current time.
func NowStamp() Stamp { return Stamp{t: time.Now()} }

// Elapsed returns the time since the stamp was captured (monotonic).
func (s Stamp) Elapsed() time.Duration { return time.Since(s.t) }

// Seconds returns Elapsed as seconds.
func (s Stamp) Seconds() float64 { return s.Elapsed().Seconds() }
