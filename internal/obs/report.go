package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
)

// Report is the structured JSON run report emitted by srdatrain -report
// and srdabench -report: per-phase wall times plus, for training runs,
// the iterative-solver telemetry (per-response LSQR iteration counts and
// final residual norms) that characterizes solver quality.  The schema is
// validated by ValidateReport; cmd/srdareport checks and summarizes
// report files, and CI smoke-tests the whole loop.
type Report struct {
	// Tool names the producer ("srdatrain", "srdabench").
	Tool string `json:"tool"`
	// Phases are named wall-time measurements in execution order.
	Phases []Phase `json:"phases"`
	// TotalSeconds is the end-to-end wall time of the reported operation.
	TotalSeconds float64 `json:"total_seconds"`
	// Solver carries iterative-solver telemetry when the run trained a
	// model; absent for direct (Cholesky) solves without iteration data.
	Solver *SolverStats `json:"solver,omitempty"`
	// Data holds run-specific scalars (dataset shape, error rates).
	Data map[string]float64 `json:"data,omitempty"`
}

// Phase is one named wall-time measurement.
type Phase struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// SolverStats is the report form of regress.Stats.
type SolverStats struct {
	// Strategy is the solver that ran ("primal", "dual", "lsqr").
	Strategy string `json:"strategy"`
	// TotalIters sums LSQR iterations over all responses (0 for direct).
	TotalIters int `json:"total_iters"`
	// IterCounts[j] is the LSQR iteration count for response j.
	IterCounts []int `json:"iter_counts,omitempty"`
	// Residuals[j] is response j's final damped residual norm.
	Residuals []float64 `json:"residuals,omitempty"`
}

// AddTrace appends the trace's spans as phases, aggregating spans that
// share a name (per-response spans sum) while preserving first-seen
// order.
func (r *Report) AddTrace(t *Trace) {
	var order []string
	totals := map[string]float64{}
	for _, sp := range t.Spans() {
		if _, ok := totals[sp.Name]; !ok {
			order = append(order, sp.Name)
		}
		totals[sp.Name] += sp.Duration.Seconds()
	}
	for _, name := range order {
		r.Phases = append(r.Phases, Phase{Name: name, Seconds: totals[name]})
	}
}

// WriteFile marshals the report as indented JSON to path.
func (r *Report) WriteFile(path string) error {
	if err := ValidateReportStruct(r); err != nil {
		return fmt.Errorf("obs: refusing to write invalid report: %w", err)
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ValidateReport parses data as a Report and checks the schema; it is the
// contract the CI smoke step (and cmd/srdareport) holds report files to.
func ValidateReport(data []byte) (*Report, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var r Report
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("obs: report is not valid JSON for the schema: %w", err)
	}
	if err := ValidateReportStruct(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// ValidateReportStruct checks an in-memory report against the schema.
func ValidateReportStruct(r *Report) error {
	if r.Tool == "" {
		return fmt.Errorf("obs: report missing tool")
	}
	if len(r.Phases) == 0 {
		return fmt.Errorf("obs: report has no phases")
	}
	for i, p := range r.Phases {
		if p.Name == "" {
			return fmt.Errorf("obs: phase %d has no name", i)
		}
		if p.Seconds < 0 || math.IsNaN(p.Seconds) {
			return fmt.Errorf("obs: phase %q has invalid seconds %v", p.Name, p.Seconds)
		}
	}
	if r.TotalSeconds < 0 || math.IsNaN(r.TotalSeconds) {
		return fmt.Errorf("obs: invalid total_seconds %v", r.TotalSeconds)
	}
	if s := r.Solver; s != nil {
		if s.Strategy == "" {
			return fmt.Errorf("obs: solver stats missing strategy")
		}
		if len(s.Residuals) != len(s.IterCounts) {
			return fmt.Errorf("obs: solver stats: %d residuals for %d iteration counts",
				len(s.Residuals), len(s.IterCounts))
		}
		sum := 0
		for j, n := range s.IterCounts {
			if n < 0 {
				return fmt.Errorf("obs: solver stats: negative iteration count for response %d", j)
			}
			sum += n
		}
		if len(s.IterCounts) > 0 && sum != s.TotalIters {
			return fmt.Errorf("obs: solver stats: iter_counts sum to %d but total_iters is %d", sum, s.TotalIters)
		}
		for j, res := range s.Residuals {
			if res < 0 || math.IsNaN(res) {
				return fmt.Errorf("obs: solver stats: invalid residual %v for response %d", res, j)
			}
		}
	}
	return nil
}

