package obs

// Merging per-process Chrome trace artifacts.  Each process in the
// sharded tier (router, workers, trainer host) flushes its own
// WriteChromeTrace file with timestamps relative to its own earliest
// span plus an absolute epochMicros base.  MergeChromeTraces rebases
// them onto one shared timeline — earliest epoch across the inputs —
// and assigns one Perfetto pid per input with a process_name metadata
// event, so a request that crossed processes reads as aligned slices in
// separate process groups sharing a trace id.
//
// Span and trace ids are decoded into uint64 fields, never float64:
// epoch-namespaced ids use the full 64 bits and would lose precision
// past 2^53 in a generic JSON decode.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceArtifact is one per-process Chrome trace file to merge.
type TraceArtifact struct {
	// Label is the fallback process label when the file itself carries no
	// process field (older exports).
	Label string
	// Data is the raw file contents.
	Data []byte
}

// chromeMeta is a "M" process_name metadata event in the merged output.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	Args map[string]string `json:"args"`
}

// MergeChromeTraces stitches the artifacts into one Chrome trace-event
// file on w: pid i+1 per input, timestamps rebased onto the earliest
// epoch across all inputs, span events sorted by (ts, pid, span id) so
// the merged timeline reads chronologically and deterministically.
func MergeChromeTraces(w io.Writer, artifacts []TraceArtifact) error {
	if len(artifacts) == 0 {
		return fmt.Errorf("obs: no trace artifacts to merge")
	}
	files := make([]chromeFile, len(artifacts))
	for i, a := range artifacts {
		if err := json.Unmarshal(a.Data, &files[i]); err != nil {
			return fmt.Errorf("obs: artifact %d (%s): %w", i, a.Label, err)
		}
	}
	// The merged zero point: the earliest absolute epoch among inputs
	// that carry one.  Inputs without an epoch (empty rings, older
	// exports) keep their relative timestamps.
	var minEpoch int64
	for _, f := range files {
		if f.EpochMicros != 0 && (minEpoch == 0 || f.EpochMicros < minEpoch) {
			minEpoch = f.EpochMicros
		}
	}
	var metas []any
	var events []chromeEvent
	for i, f := range files {
		pid := i + 1
		label := f.Process
		if label == "" {
			label = artifacts[i].Label
		}
		if label == "" {
			label = fmt.Sprintf("process-%d", pid)
		}
		metas = append(metas, chromeMeta{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]string{"name": label},
		})
		for _, ev := range f.TraceEvents {
			ev.PID = pid
			if f.EpochMicros != 0 && minEpoch != 0 {
				ev.TS += f.EpochMicros - minEpoch
			}
			events = append(events, ev)
		}
	}
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		return a.Args.SpanID < b.Args.SpanID
	})
	all := make([]any, 0, len(metas)+len(events))
	all = append(all, metas...)
	for _, ev := range events {
		all = append(all, ev)
	}
	out := struct {
		TraceEvents     []any  `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
		EpochMicros     int64  `json:"epochMicros,omitempty"`
	}{TraceEvents: all, DisplayTimeUnit: "ms", EpochMicros: minEpoch}
	data, err := json.Marshal(out)
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
