package obs

import (
	"math"
	"strings"
	"testing"
)

func TestEscapeLabelValueRoundTrip(t *testing.T) {
	cases := []string{
		"plain",
		"",
		`back\slash`,
		`quo"te`,
		"new\nline",
		"tab\tstays",
		"café",
		`all "three" \ kinds` + "\n",
	}
	for _, in := range cases {
		esc := EscapeLabelValue(in)
		if strings.ContainsAny(esc, "\n\"") && !strings.Contains(esc, `\n`) && !strings.Contains(esc, `\"`) {
			t.Errorf("escape of %q left raw specials: %q", in, esc)
		}
		out, err := UnescapeLabelValue(esc)
		if err != nil {
			t.Fatalf("unescape(%q): %v", esc, err)
		}
		if out != in {
			t.Errorf("round trip %q -> %q -> %q", in, esc, out)
		}
	}
	// Tabs and non-ASCII must pass through untouched: only \, ", and
	// newline have escapes in the text format.
	if got := EscapeLabelValue("a\tb café"); got != "a\tb café" {
		t.Errorf("tab/unicode should not be escaped, got %q", got)
	}
	if _, err := UnescapeLabelValue(`bad\t`); err == nil {
		t.Error(`\t is not a defined escape; want error`)
	}
	if _, err := UnescapeLabelValue(`dangling\`); err == nil {
		t.Error("dangling backslash; want error")
	}
}

// TestCounterVecEscapingRoundTrip holds the writer to the parser's
// grammar: a CounterVec whose tenant label values carry backslashes,
// quotes, and newlines must expose text the parser reads back to the
// exact original values.
func TestCounterVecEscapingRoundTrip(t *testing.T) {
	reg := NewRegistry()
	vec := reg.NewCounterVec("srdatest_requests_total", "Requests by tenant and model.", "tenant", "model")
	gnarly := []struct{ tenant, model string }{
		{`acme\prod`, "default"},
		{`quote"inc`, "v2"},
		{"multi\nline", "v1"},
		{"tab\ttenant", "café"},
	}
	for i, g := range gnarly {
		vec.With(g.tenant, g.model).Add(int64(i + 1))
	}
	var sb strings.Builder
	reg.WritePrometheus(&sb)

	fams, err := ParsePrometheus([]byte(sb.String()))
	if err != nil {
		t.Fatalf("parsing our own exposition: %v\n%s", err, sb.String())
	}
	if len(fams) != 1 || fams[0].Name != "srdatest_requests_total" {
		t.Fatalf("families = %+v", fams)
	}
	if fams[0].Type != "counter" || fams[0].Help != "Requests by tenant and model." {
		t.Fatalf("family header = %+v", fams[0])
	}
	got := map[string]float64{}
	for _, s := range fams[0].Samples {
		if len(s.Labels) != 2 {
			t.Fatalf("sample labels = %+v", s.Labels)
		}
		got[s.Labels[0].Value+"\x00"+s.Labels[1].Value] = s.Value
	}
	for i, g := range gnarly {
		v, ok := got[g.tenant+"\x00"+g.model]
		if !ok {
			t.Errorf("tenant %q model %q did not round-trip; parsed %v", g.tenant, g.model, got)
			continue
		}
		if v != float64(i+1) {
			t.Errorf("tenant %q value = %g, want %d", g.tenant, v, i+1)
		}
	}
}

func TestParsePrometheusFull(t *testing.T) {
	text := `# HELP srdaserve_requests_total HTTP requests by endpoint and status code.
# TYPE srdaserve_requests_total counter
srdaserve_requests_total{endpoint="/v1/predict",code="200"} 2
srdaserve_requests_total{endpoint="/v1/predict",code="400"} 1
# HELP srdaserve_request_duration_seconds Predict latency.
# TYPE srdaserve_request_duration_seconds histogram
srdaserve_request_duration_seconds_bucket{le="0.001"} 0
srdaserve_request_duration_seconds_bucket{le="+Inf"} 2
srdaserve_request_duration_seconds_sum 0.251953125
srdaserve_request_duration_seconds_count 2
# HELP srdaserve_queue_depth Samples queued.
# TYPE srdaserve_queue_depth gauge
srdaserve_queue_depth 3
untyped_orphan 7 1700000000000
`
	fams, err := ParsePrometheus([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 4 {
		t.Fatalf("got %d families, want 4: %+v", len(fams), fams)
	}
	if fams[0].Type != "counter" || len(fams[0].Samples) != 2 {
		t.Errorf("counter family = %+v", fams[0])
	}
	hist := fams[1]
	if hist.Type != "histogram" || len(hist.Samples) != 4 {
		t.Fatalf("histogram family = %+v", hist)
	}
	if hist.Samples[1].Name != "srdaserve_request_duration_seconds_bucket" ||
		!math.IsInf(float64frombucket(t, hist.Samples[1]), 1) {
		t.Errorf("+Inf bucket = %+v", hist.Samples[1])
	}
	if hist.Samples[2].Name != "srdaserve_request_duration_seconds_sum" || hist.Samples[2].Value != 0.251953125 {
		t.Errorf("sum sample = %+v", hist.Samples[2])
	}
	if fams[3].Name != "untyped_orphan" || fams[3].Type != "untyped" || fams[3].Samples[0].Value != 7 {
		t.Errorf("orphan family = %+v", fams[3])
	}

	for _, bad := range []string{
		"no_value_here\n",
		`broken{tenant="x} 1` + "\n",
		"srda_x 1 notatimestamp\n",
		"# TYPE lonely\n",
	} {
		if _, err := ParsePrometheus([]byte(bad)); err == nil {
			t.Errorf("ParsePrometheus(%q) accepted malformed input", bad)
		}
	}
}

// float64frombucket pulls the le bound of a bucket sample.
func float64frombucket(t *testing.T, s PromSample) float64 {
	t.Helper()
	for _, l := range s.Labels {
		if l.Name == "le" {
			if l.Value == "+Inf" {
				return math.Inf(1)
			}
		}
	}
	t.Fatalf("no le label on %+v", s)
	return 0
}

func TestCanonicalSeriesKey(t *testing.T) {
	key := CanonicalSeriesKey("m", []PromLabel{{"z", "1"}, {"a", `x"y`}})
	want := `m{a="x\"y",z="1"}`
	if key != want {
		t.Errorf("key = %q, want %q", key, want)
	}
	if CanonicalSeriesKey("m", nil) != "m" {
		t.Error("bare name should key as itself")
	}
}
