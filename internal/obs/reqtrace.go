package obs

// Request-scoped tracing.  Where Trace (trace.go) collects flat, named
// phase timings for one batch operation (a Fit call), Tracer records a
// *tree* of spans correlated by a TraceID across goroutine hops: an HTTP
// request enters serve.Server, its samples are coalesced with other
// requests' by the micro-batch dispatcher, and the batch finally runs the
// GEMM kernels — three goroutines, one logical request.  Spans propagate
// through context.Context, completed spans land in a fixed-size ring
// buffer (old traffic is evicted, never reallocated), and the ring
// exports deterministically as Chrome trace-event JSON readable by
// Perfetto (chrometrace.go).
//
// The nil discipline matches the rest of obs: a nil *Tracer, a context
// without a span, and a nil *ReqSpan are all free no-ops, so the serving
// and kernel call-sites instrument unconditionally.

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID correlates every span of one logical request.  IDs are assigned
// from a per-tracer counter, so they are deterministic under a
// deterministic request order (and merely unique otherwise).
type TraceID uint64

// SpanID identifies one span within a tracer.  0 is reserved to mean
// "no parent" (a root span).
type SpanID uint64

// SpanRecord is one completed span in the tracer's ring.
type SpanRecord struct {
	Trace    TraceID
	ID       SpanID
	Parent   SpanID // 0 for root spans
	Name     string
	Start    time.Time
	Duration time.Duration
}

// Tracer assigns trace/span IDs and keeps the most recent completed spans
// in a ring buffer of fixed capacity.  All methods are safe for
// concurrent use; a nil *Tracer is a valid no-op.
type Tracer struct {
	clock    Clock
	traceIDs atomic.Uint64
	spanIDs  atomic.Uint64
	evicted  atomic.Uint64

	mu   sync.Mutex
	ring []SpanRecord
	next int  // ring slot the next record lands in
	full bool // the ring has wrapped at least once
}

// DefaultTraceCapacity is the ring size NewTracer uses for capacity <= 0.
const DefaultTraceCapacity = 16384

// NewTracer creates a tracer on the wall clock whose ring holds capacity
// completed spans (DefaultTraceCapacity when capacity <= 0).
func NewTracer(capacity int) *Tracer { return NewTracerClock(capacity, time.Now) }

// NewTracerClock creates a tracer on an injected clock; tests use a fake
// clock to make exported timestamps and durations deterministic.
func NewTracerClock(capacity int, clock Clock) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if clock == nil {
		clock = time.Now
	}
	return &Tracer{clock: clock, ring: make([]SpanRecord, capacity)}
}

// ReqSpan is one open span of a request-scoped trace.  End completes it;
// a nil *ReqSpan is a free no-op receiver.
type ReqSpan struct {
	tracer *Tracer
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	ended  atomic.Bool
}

// ctxKey carries the active *ReqSpan through a context.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying s as the active span.
func ContextWithSpan(ctx context.Context, s *ReqSpan) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the active span, or nil when ctx carries none.
func SpanFromContext(ctx context.Context) *ReqSpan {
	s, _ := ctx.Value(ctxKey{}).(*ReqSpan)
	return s
}

// StartRoot opens a new trace: it assigns a fresh TraceID, opens its root
// span, and returns ctx carrying that span for StartSpan calls further
// down the request path.  On a nil Tracer it returns (ctx, nil).
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *ReqSpan) {
	if t == nil {
		return ctx, nil
	}
	s := &ReqSpan{
		tracer: t,
		trace:  TraceID(t.traceIDs.Add(1)),
		id:     SpanID(t.spanIDs.Add(1)),
		name:   name,
		start:  t.clock(),
	}
	return ContextWithSpan(ctx, s), s
}

// StartSpan opens a child of the span carried by ctx and returns ctx
// re-pointed at the child.  When ctx carries no span (tracing disabled or
// never started) it returns (ctx, nil), so instrumented code on the
// numeric side never branches on whether tracing is on.
func StartSpan(ctx context.Context, name string) (context.Context, *ReqSpan) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return ContextWithSpan(ctx, child), child
}

// StartChild opens a child span under s.  This is the fan-in escape hatch
// for the micro-batch dispatcher, where one batch serves several requests
// and each request's trace gets its own child covering the shared work.
// Nil receiver returns nil.
func (s *ReqSpan) StartChild(name string) *ReqSpan {
	if s == nil {
		return nil
	}
	t := s.tracer
	return &ReqSpan{
		tracer: t,
		trace:  s.trace,
		id:     SpanID(t.spanIDs.Add(1)),
		parent: s.id,
		name:   name,
		start:  t.clock(),
	}
}

// End completes the span and records it in the tracer's ring.  End is
// idempotent (the dispatcher's queue spans can race their own closing)
// and a no-op on nil.
func (s *ReqSpan) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	t := s.tracer
	rec := SpanRecord{
		Trace:    s.trace,
		ID:       s.id,
		Parent:   s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: t.clock().Sub(s.start),
	}
	t.mu.Lock()
	if t.full {
		t.evicted.Add(1)
	}
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// TraceID returns the span's trace identifier (0 on nil).
func (s *ReqSpan) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.trace
}

// SpanID returns the span's identifier (0 on nil).
func (s *ReqSpan) SpanID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// Snapshot returns the completed spans currently in the ring, oldest
// first.  Nil receiver returns nil.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]SpanRecord(nil), t.ring[:t.next]...)
	}
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Evicted returns how many completed spans the ring has overwritten.
func (t *Tracer) Evicted() uint64 {
	if t == nil {
		return 0
	}
	return t.evicted.Load()
}

// SpanCount returns the number of completed spans currently held.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.ring)
	}
	return t.next
}
