package obs

// Request-scoped tracing.  Where Trace (trace.go) collects flat, named
// phase timings for one batch operation (a Fit call), Tracer records a
// *tree* of spans correlated by a TraceID across goroutine hops: an HTTP
// request enters serve.Server, its samples are coalesced with other
// requests' by the micro-batch dispatcher, and the batch finally runs the
// GEMM kernels — three goroutines, one logical request.  Spans propagate
// through context.Context, completed spans land in a fixed-size ring
// buffer (old traffic is evicted, never reallocated), and the ring
// exports deterministically as Chrome trace-event JSON readable by
// Perfetto (chrometrace.go).
//
// The nil discipline matches the rest of obs: a nil *Tracer, a context
// without a span, and a nil *ReqSpan are all free no-ops, so the serving
// and kernel call-sites instrument unconditionally.

import (
	"context"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID correlates every span of one logical request.  IDs are assigned
// from a per-tracer counter in the low 32 bits, namespaced by a
// per-process epoch in the high 32 bits (see NewTracerSeeded), so they
// are deterministic under a deterministic request order and seed — and
// never collide when traces from several processes are merged.
type TraceID uint64

// SpanID identifies one span within a tracer.  0 is reserved to mean
// "no parent" (a root span).
type SpanID uint64

// SpanRecord is one completed span in the tracer's ring.
type SpanRecord struct {
	Trace    TraceID
	ID       SpanID
	Parent   SpanID // 0 for root spans
	Name     string
	Start    time.Time
	Duration time.Duration
}

// Tracer assigns trace/span IDs and keeps the most recent completed spans
// in a ring buffer of fixed capacity.  All methods are safe for
// concurrent use; a nil *Tracer is a valid no-op.
type Tracer struct {
	clock    Clock
	epoch    uint64 // high-32-bit ID namespace; 0 under NewTracerClock
	traceIDs atomic.Uint64
	spanIDs  atomic.Uint64
	evicted  atomic.Uint64

	mu      sync.Mutex
	process string // export label for merged multi-process timelines
	ring    []SpanRecord
	next    int  // ring slot the next record lands in
	full    bool // the ring has wrapped at least once
}

// DefaultTraceCapacity is the ring size NewTracer uses for capacity <= 0.
const DefaultTraceCapacity = 16384

// tracerSeeds distinguishes tracers created inside one process so two
// NewTracer calls in the same nanosecond still derive distinct epochs.
var tracerSeeds atomic.Uint64

// NewTracer creates a tracer on the wall clock whose ring holds capacity
// completed spans (DefaultTraceCapacity when capacity <= 0).  Its ID
// namespace is seeded from the wall clock and pid, so traces exported by
// different processes never share IDs after a tracemerge.
func NewTracer(capacity int) *Tracer {
	seed := uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32 ^ tracerSeeds.Add(1)
	return NewTracerSeeded(capacity, seed, time.Now)
}

// NewTracerClock creates a tracer on an injected clock; tests use a fake
// clock to make exported timestamps and durations deterministic.  The ID
// namespace is the zero epoch (IDs are the bare counters), which keeps
// single-process exports and goldens stable.
func NewTracerClock(capacity int, clock Clock) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	if clock == nil {
		clock = time.Now
	}
	return &Tracer{clock: clock, ring: make([]SpanRecord, capacity)}
}

// NewTracerSeeded creates a tracer whose trace/span IDs live in a
// namespace derived deterministically from seed: the high 32 bits of
// every ID are a nonzero epoch mixed from the seed, the low 32 bits the
// per-tracer counter.  Distinct seeds give disjoint ID spaces, so traces
// recorded by different processes can be merged without collisions while
// staying reproducible under an injected seed.
func NewTracerSeeded(capacity int, seed uint64, clock Clock) *Tracer {
	t := NewTracerClock(capacity, clock)
	epoch := splitmix64(seed) >> 32
	if epoch == 0 {
		epoch = 1
	}
	t.epoch = epoch << 32
	return t
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-distributed 64-bit mix used only for epoch derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// nextTraceID assigns the next trace identifier in the tracer's namespace.
func (t *Tracer) nextTraceID() TraceID {
	return TraceID(t.epoch | t.traceIDs.Add(1)&0xffffffff)
}

// nextSpanID assigns the next span identifier in the tracer's namespace.
func (t *Tracer) nextSpanID() SpanID {
	return SpanID(t.epoch | t.spanIDs.Add(1)&0xffffffff)
}

// SetProcess labels the tracer's Chrome-trace export with a process name,
// which srdareport tracemerge surfaces as the Perfetto process row.
// No-op on nil.
func (t *Tracer) SetProcess(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.process = name
	t.mu.Unlock()
}

// Process returns the export label set by SetProcess ("" on nil).
func (t *Tracer) Process() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.process
}

// ReqSpan is one open span of a request-scoped trace.  End completes it;
// a nil *ReqSpan is a free no-op receiver.
type ReqSpan struct {
	tracer *Tracer
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	ended  atomic.Bool
}

// ctxKey carries the active *ReqSpan through a context.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying s as the active span.
func ContextWithSpan(ctx context.Context, s *ReqSpan) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the active span, or nil when ctx carries none.
func SpanFromContext(ctx context.Context) *ReqSpan {
	s, _ := ctx.Value(ctxKey{}).(*ReqSpan)
	return s
}

// StartRoot opens a new trace: it assigns a fresh TraceID, opens its root
// span, and returns ctx carrying that span for StartSpan calls further
// down the request path.  On a nil Tracer it returns (ctx, nil).
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *ReqSpan) {
	if t == nil {
		return ctx, nil
	}
	s := &ReqSpan{
		tracer: t,
		trace:  t.nextTraceID(),
		id:     t.nextSpanID(),
		name:   name,
		start:  t.clock(),
	}
	return ContextWithSpan(ctx, s), s
}

// StartRemote opens a span that continues a trace started in another
// process: the span keeps the remote TraceID and hangs under the remote
// parent SpanID while drawing its own SpanID from this tracer's
// namespace.  This is how an extracted traceparent header becomes the
// local root of the request's subtree.  A zero trace or parent falls back
// to StartRoot (nothing to continue); nil Tracer returns (ctx, nil).
func (t *Tracer) StartRemote(ctx context.Context, name string, trace TraceID, parent SpanID) (context.Context, *ReqSpan) {
	if t == nil {
		return ctx, nil
	}
	if trace == 0 || parent == 0 {
		return t.StartRoot(ctx, name)
	}
	s := &ReqSpan{
		tracer: t,
		trace:  trace,
		id:     t.nextSpanID(),
		parent: parent,
		name:   name,
		start:  t.clock(),
	}
	return ContextWithSpan(ctx, s), s
}

// StartSpan opens a child of the span carried by ctx and returns ctx
// re-pointed at the child.  When ctx carries no span (tracing disabled or
// never started) it returns (ctx, nil), so instrumented code on the
// numeric side never branches on whether tracing is on.
func StartSpan(ctx context.Context, name string) (context.Context, *ReqSpan) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	return ContextWithSpan(ctx, child), child
}

// StartChild opens a child span under s.  This is the fan-in escape hatch
// for the micro-batch dispatcher, where one batch serves several requests
// and each request's trace gets its own child covering the shared work.
// Nil receiver returns nil.
func (s *ReqSpan) StartChild(name string) *ReqSpan {
	if s == nil {
		return nil
	}
	t := s.tracer
	return &ReqSpan{
		tracer: t,
		trace:  s.trace,
		id:     t.nextSpanID(),
		parent: s.id,
		name:   name,
		start:  t.clock(),
	}
}

// End completes the span and records it in the tracer's ring.  End is
// idempotent (the dispatcher's queue spans can race their own closing)
// and a no-op on nil.
func (s *ReqSpan) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	t := s.tracer
	rec := SpanRecord{
		Trace:    s.trace,
		ID:       s.id,
		Parent:   s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: t.clock().Sub(s.start),
	}
	t.mu.Lock()
	if t.full {
		t.evicted.Add(1)
	}
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// TraceID returns the span's trace identifier (0 on nil).
func (s *ReqSpan) TraceID() TraceID {
	if s == nil {
		return 0
	}
	return s.trace
}

// SpanID returns the span's identifier (0 on nil).
func (s *ReqSpan) SpanID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// Snapshot returns the completed spans currently in the ring, oldest
// first.  Nil receiver returns nil.
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]SpanRecord(nil), t.ring[:t.next]...)
	}
	out := make([]SpanRecord, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Evicted returns how many completed spans the ring has overwritten.
func (t *Tracer) Evicted() uint64 {
	if t == nil {
		return 0
	}
	return t.evicted.Load()
}

// SpanCount returns the number of completed spans currently held.
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.ring)
	}
	return t.next
}
