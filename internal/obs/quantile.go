package obs

// Streaming quantile estimation for the serving path.  The fixed-bucket
// Histogram can only answer "which bucket" — its quantiles are bounded by
// bucket resolution.  QuantileSketch implements the CKMS targeted-
// quantile summary (Cormode, Korn, Muthukrishnan, Srivastava, "Effective
// Computation of Biased Quantiles over Data Streams", ICDE 2005): for
// each target (q, ε) the summary keeps just enough samples that
//
//	Query(q) returns an observed value whose rank r satisfies
//	(q−ε)·n ≤ r ≤ (q+ε)·n
//
// — a hard rank-error bound, which is what the accuracy test in
// quantile_test.go asserts against exact sorted quantiles.  Memory is
// O((1/ε)·log(εn)) per target, independent of the stream length.
//
// Observations are buffered and merged in blocks so the hot path is an
// append plus, every bufCap-th call, one small merge; a mutex serializes
// access (the serving path observes once per HTTP request, not per
// kernel iteration, so a lock here never touches the worker pool).

import (
	"math"
	"sort"
	"sync"
)

// QuantileTarget is one tracked quantile with its rank-error tolerance.
type QuantileTarget struct {
	Q   float64 `json:"q"`   // quantile in (0, 1)
	Eps float64 `json:"eps"` // rank error as a fraction of the stream length
}

// DefaultLatencyTargets are the serving-latency targets: tight tails,
// looser median, the standard shape for latency SLOs.
func DefaultLatencyTargets() []QuantileTarget {
	return []QuantileTarget{{Q: 0.5, Eps: 0.01}, {Q: 0.95, Eps: 0.005}, {Q: 0.99, Eps: 0.001}}
}

// ckmsSample is one summary tuple: v is an observed value, g the gap in
// minimum rank to the previous tuple, delta the rank uncertainty.
type ckmsSample struct {
	v     float64
	g     int
	delta int
}

// bufCap is the insert-buffer block size; inserts are O(1) amortized and
// the summary only changes on flush.
const bufCap = 512

// QuantileSketch is a CKMS targeted-quantile summary.  Safe for
// concurrent use.
type QuantileSketch struct {
	mu      sync.Mutex
	targets []QuantileTarget
	samples []ckmsSample
	buf     []float64
	n       int

	// exemplar link, set once via AttachExemplars before concurrent use
	exName    string
	exemplars *ExemplarStore
}

// NewQuantileSketch creates a sketch tracking the given targets; with no
// targets it tracks DefaultLatencyTargets.
func NewQuantileSketch(targets ...QuantileTarget) *QuantileSketch {
	if len(targets) == 0 {
		targets = DefaultLatencyTargets()
	}
	return &QuantileSketch{
		targets: append([]QuantileTarget(nil), targets...),
		buf:     make([]float64, 0, bufCap),
	}
}

// Observe records one value.
func (s *QuantileSketch) Observe(v float64) {
	s.mu.Lock()
	s.buf = append(s.buf, v)
	if len(s.buf) >= bufCap {
		s.flush()
	}
	s.mu.Unlock()
}

// AttachExemplars links the sketch to an exemplar store under the given
// metric name (sketches have no name of their own); ObserveTraced then
// records outliers there.
func (s *QuantileSketch) AttachExemplars(name string, store *ExemplarStore) {
	s.exName = name
	s.exemplars = store
}

// ObserveTraced records one value like Observe and forwards it with its
// trace to the attached exemplar store (no-op without one).
func (s *QuantileSketch) ObserveTraced(v float64, trace TraceID) {
	s.Observe(v)
	s.exemplars.Observe(s.exName, v, trace)
}

// Count returns the number of observed values.
func (s *QuantileSketch) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n + len(s.buf)
}

// Query returns the estimate for quantile q, honoring the rank-error
// bound of the nearest configured target.  NaN when nothing has been
// observed.
func (s *QuantileSketch) Query(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flush()
	if s.n == 0 {
		return math.NaN()
	}
	rank := q * float64(s.n)
	bound := s.invariant(rank) / 2
	var cum int
	for i, smp := range s.samples {
		if float64(cum+smp.g+smp.delta) > rank+bound {
			if i == 0 {
				return smp.v
			}
			return s.samples[i-1].v
		}
		cum += smp.g
	}
	return s.samples[len(s.samples)-1].v
}

// SketchSample is one summary tuple in wire form: V is an observed
// value, G the gap in minimum rank to the previous tuple, Delta the
// rank uncertainty.
type SketchSample struct {
	V     float64 `json:"v"`
	G     int     `json:"g"`
	Delta int     `json:"delta,omitempty"`
}

// SketchSnapshot is a point-in-time serializable copy of a sketch,
// the unit replicas ship to the federation layer so the router can
// merge actual rank summaries instead of pre-collapsed quantile
// gauges (which cannot be combined without losing the error bound).
type SketchSnapshot struct {
	Targets []QuantileTarget `json:"targets"`
	Samples []SketchSample   `json:"samples,omitempty"`
	Count   int              `json:"count"`
}

// Snapshot returns a serializable copy of the summary, flushing any
// buffered observations first.
func (s *QuantileSketch) Snapshot() SketchSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flush()
	snap := SketchSnapshot{
		Targets: append([]QuantileTarget(nil), s.targets...),
		Count:   s.n,
	}
	if len(s.samples) > 0 {
		snap.Samples = make([]SketchSample, len(s.samples))
		for i, smp := range s.samples {
			snap.Samples[i] = SketchSample{V: smp.v, G: smp.g, Delta: smp.delta}
		}
	}
	return snap
}

// MergeSketches combines per-replica snapshots into one cluster-level
// sketch over the union stream.  Tuples are pooled and re-sorted with
// their rank gaps intact: each source tuple's rank was accurate within
// its own sketch's invariant, so after pooling the errors add and a
// merged query is accurate within roughly twice the per-replica rank
// error (2ε·n for the union length n) — the bound the merge test in
// quantile_merge_test.go asserts.  Targets are taken from the first
// snapshot that declares any.
func MergeSketches(snaps ...SketchSnapshot) *QuantileSketch {
	var targets []QuantileTarget
	for _, sn := range snaps {
		if len(sn.Targets) > 0 {
			targets = sn.Targets
			break
		}
	}
	m := NewQuantileSketch(targets...)
	var all []ckmsSample
	n := 0
	for _, sn := range snaps {
		for _, t := range sn.Samples {
			g := t.G
			if g < 1 {
				g = 1 // malformed input: a tuple always covers ≥1 rank
			}
			d := t.Delta
			if d < 0 {
				d = 0
			}
			all = append(all, ckmsSample{v: t.V, g: g, delta: d})
			n += g
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].v < all[j].v })
	m.samples = all
	m.n = n
	m.compress()
	return m
}

// invariant is the CKMS f(r, n): the permitted rank slack at rank r,
// the minimum over all targets, never below 1.
func (s *QuantileSketch) invariant(r float64) float64 { return s.invariantN(r, s.n) }

// flush sorts the insert buffer, merges it into the summary, and
// compresses.  Caller holds the mutex.
func (s *QuantileSketch) flush() {
	if len(s.buf) == 0 {
		return
	}
	sort.Float64s(s.buf)
	merged := make([]ckmsSample, 0, len(s.samples)+len(s.buf))
	var cum int // minimum rank of the last appended summary sample
	si := 0
	for _, v := range s.buf {
		for si < len(s.samples) && s.samples[si].v <= v {
			cum += s.samples[si].g
			merged = append(merged, s.samples[si])
			si++
		}
		var delta int
		if si > 0 && si < len(s.samples) {
			// Inserting between existing tuples: inherit the local
			// uncertainty the invariant allows at this rank.
			delta = int(math.Floor(s.invariantN(float64(cum), s.n))) - 1
			if delta < 0 {
				delta = 0
			}
		}
		merged = append(merged, ckmsSample{v: v, g: 1, delta: delta})
		cum++
		s.n++
	}
	for si < len(s.samples) {
		merged = append(merged, s.samples[si])
		si++
	}
	s.samples = merged
	s.buf = s.buf[:0]
	s.compress()
}

// invariantN is invariant evaluated at an explicit stream length.
func (s *QuantileSketch) invariantN(r float64, n int) float64 {
	nn := float64(n)
	f := math.MaxFloat64
	for _, t := range s.targets {
		var v float64
		if r < t.Q*nn {
			v = 2 * t.Eps * (nn - r) / (1 - t.Q)
		} else {
			v = 2 * t.Eps * r / t.Q
		}
		if v < f {
			f = v
		}
	}
	if f < 1 {
		f = 1
	}
	return f
}

// compress merges adjacent tuples whose combined rank uncertainty still
// fits the invariant, bounding summary size.  Caller holds the mutex.
func (s *QuantileSketch) compress() {
	if len(s.samples) < 3 {
		return
	}
	out := s.samples[:0]
	// Minimum rank up to and including sample i, maintained backwards.
	ranks := make([]int, len(s.samples))
	cum := 0
	for i, smp := range s.samples {
		cum += smp.g
		ranks[i] = cum
	}
	// Walk backwards, greedily merging i into i+1; the last tuple is
	// never merged away (it pins the maximum).
	keepLast := s.samples[len(s.samples)-1]
	kept := []ckmsSample{keepLast}
	for i := len(s.samples) - 2; i >= 1; i-- {
		cur := s.samples[i]
		next := kept[len(kept)-1]
		if float64(cur.g+next.g+next.delta) <= s.invariant(float64(ranks[i]-cur.g)) {
			next.g += cur.g
			kept[len(kept)-1] = next
		} else {
			kept = append(kept, cur)
		}
	}
	out = append(out, s.samples[0])
	for i := len(kept) - 1; i >= 0; i-- {
		out = append(out, kept[i])
	}
	s.samples = out
}
