package obs

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic Clock advancing a fixed step per read.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func (c *fakeClock) read() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

func TestTraceSpansDeterministicWithInjectedClock(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0), step: time.Millisecond}
	tr := NewTraceClock(clk.read)
	sp := tr.Start("gram") // reads clock once
	sp.End()               // reads clock once more -> 1ms duration
	inner := tr.Start("cholesky")
	inner.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	for _, sp := range spans {
		if sp.Duration != time.Millisecond {
			t.Fatalf("span %q duration %v, want 1ms exactly (injected clock)", sp.Name, sp.Duration)
		}
	}
	if spans[0].Name != "gram" || spans[1].Name != "cholesky" {
		t.Fatalf("span order %q, %q", spans[0].Name, spans[1].Name)
	}
	if got := tr.Seconds("gram"); got != 0.001 {
		t.Fatalf("Seconds(gram) = %v, want 0.001", got)
	}
}

func TestTraceSecondsAggregatesRepeatedNames(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0), step: time.Millisecond}
	tr := NewTraceClock(clk.read)
	for i := 0; i < 3; i++ {
		sp := tr.Start("lsqr")
		sp.End()
	}
	if got := tr.Seconds("lsqr"); got != 0.003 {
		t.Fatalf("Seconds(lsqr) = %v, want 0.003", got)
	}
}

// TestNilTraceIsNoOp covers the nil-receiver contract the numeric
// packages rely on: unconditional instrumentation with no trace attached.
func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	sp := tr.Start("anything")
	sp.End()
	if tr.Spans() != nil {
		t.Fatal("nil trace returned spans")
	}
	if tr.Seconds("anything") != 0 {
		t.Fatal("nil trace returned nonzero seconds")
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := tr.Start("worker")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Fatalf("got %d spans, want 800", got)
	}
}

func TestStampElapsed(t *testing.T) {
	st := NowStamp()
	if st.Elapsed() < 0 {
		t.Fatal("negative elapsed")
	}
	time.Sleep(time.Millisecond)
	if st.Seconds() <= 0 {
		t.Fatal("stamp did not advance")
	}
}
