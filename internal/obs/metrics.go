package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format produced by WritePrometheus.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// metric is one registered instrument; writeProm renders its # HELP and
// # TYPE header followed by its sample lines.
type metric interface {
	metricName() string
	writeProm(w io.Writer)
}

// Registry is an ordered set of named instruments.  Registration order is
// exposition order, which keeps /metrics output deterministic; names must
// be unique within a registry (a duplicate registration panics, since it
// is always a programming error).  All methods are safe for concurrent
// use.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{names: make(map[string]bool)} }

// defaultRegistry collects process-wide instruments (the worker pool's
// among them); subsystems needing isolation create their own registry.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.metricName()] {
		panic("obs: duplicate metric " + m.metricName())
	}
	r.names[m.metricName()] = true
	r.metrics = append(r.metrics, m)
}

// WritePrometheus renders every registered instrument in registration
// order in the Prometheus text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		m.writeProm(w)
	}
}

// Handler returns an http.Handler serving the registry's exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		r.WritePrometheus(w)
	})
}

func promHeader(w io.Writer, name, help, kind string) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
}

// trimFloat renders a bucket bound the way Prometheus clients do.
func trimFloat(v float64) string { return fmt.Sprintf("%g", v) }

// writeLabelPair renders one name="value" pair with text-format label
// escaping (backslash, quote, newline — and only those; %q would escape
// tabs and non-ASCII runes into Go syntax the Prometheus grammar does
// not define, breaking round-trips for such tenant or model names).
func writeLabelPair(sb *strings.Builder, name, value string) {
	sb.WriteString(name)
	sb.WriteString(`="`)
	sb.WriteString(EscapeLabelValue(value))
	sb.WriteByte('"')
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n, which must be non-negative for the counter to stay
// monotonic; callers own that invariant.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }

func (c *Counter) writeProm(w io.Writer) {
	promHeader(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// Gauge is an integer metric that can go up and down.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) writeProm(w io.Writer) {
	promHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %d\n", g.name, g.v.Load())
}

// gaugeFunc samples a point-in-time value at exposition (queue depths,
// sequence numbers — state some other structure already owns).
type gaugeFunc struct {
	name, help string
	fn         func() int64
}

// NewGaugeFunc registers a gauge whose value is sampled by calling fn at
// exposition time.  fn must be safe for concurrent use.
func (r *Registry) NewGaugeFunc(name, help string, fn func() int64) {
	r.register(&gaugeFunc{name: name, help: help, fn: fn})
}

func (g *gaugeFunc) metricName() string { return g.name }

func (g *gaugeFunc) writeProm(w io.Writer) {
	promHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %d\n", g.name, g.fn())
}

// gaugeFloatFunc is gaugeFunc for float-valued samples (latency
// quantiles); it renders with %g like histogram sums, so dyadic values
// stay exact and exposition stays golden-testable.
type gaugeFloatFunc struct {
	name, help string
	fn         func() float64
}

// NewGaugeFloatFunc registers a float gauge whose value is sampled by
// calling fn at exposition time.  fn must be safe for concurrent use.
func (r *Registry) NewGaugeFloatFunc(name, help string, fn func() float64) {
	r.register(&gaugeFloatFunc{name: name, help: help, fn: fn})
}

func (g *gaugeFloatFunc) metricName() string { return g.name }

func (g *gaugeFloatFunc) writeProm(w io.Writer) {
	promHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %g\n", g.name, g.fn())
}

// GaugeSample is one labeled sample returned by a NewGaugeVecFunc
// callback: Value under the registered label names bound to Labels.
type GaugeSample struct {
	Labels []string
	Value  float64
}

// gaugeVecFunc samples a labeled family of float gauges at exposition
// time (per-tenant latency quantiles — state a sketch map already owns).
type gaugeVecFunc struct {
	name, help string
	labels     []string
	fn         func() []GaugeSample
}

// NewGaugeVecFunc registers a labeled float gauge family whose samples
// are produced by calling fn at exposition time.  fn must be safe for
// concurrent use and return samples in a deterministic order (exposition
// order is sample order); values render with %g like the other float
// gauges, so dyadic values stay exact and exposition stays
// golden-testable.
func (r *Registry) NewGaugeVecFunc(name, help string, labels []string, fn func() []GaugeSample) {
	if len(labels) == 0 {
		panic("obs: GaugeVecFunc needs at least one label")
	}
	r.register(&gaugeVecFunc{name: name, help: help, labels: append([]string(nil), labels...), fn: fn})
}

func (g *gaugeVecFunc) metricName() string { return g.name }

func (g *gaugeVecFunc) writeProm(w io.Writer) {
	promHeader(w, g.name, g.help, "gauge")
	var sb strings.Builder
	for _, s := range g.fn() {
		if len(s.Labels) != len(g.labels) {
			continue // malformed sample; drop rather than emit bad labels
		}
		sb.Reset()
		for k, lname := range g.labels {
			if k > 0 {
				sb.WriteByte(',')
			}
			writeLabelPair(&sb, lname, s.Labels[k])
		}
		fmt.Fprintf(w, "%s{%s} %g\n", g.name, sb.String(), s.Value)
	}
}

// CounterVec is a set of counters keyed by a fixed tuple of label values.
// Lookup of an existing label tuple is a read-lock plus one atomic; only
// first-time insertion takes the write lock.
type CounterVec struct {
	name, help string
	labels     []string
	mu         sync.RWMutex
	m          map[string]*vecEntry
}

type vecEntry struct {
	values []string
	c      Counter
}

// NewCounterVec registers and returns a labeled counter family; labels
// are the label names every With call must provide values for.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label")
	}
	v := &CounterVec{name: name, help: help, labels: labels, m: make(map[string]*vecEntry)}
	r.register(v)
	return v
}

// vecKey joins label values on a separator no label value may contain.
func vecKey(values []string) string { return strings.Join(values, "\x00") }

// With returns the child counter for the given label values, creating it
// on first use.  The number of values must match the label names.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := vecKey(values)
	v.mu.RLock()
	e := v.m[key]
	v.mu.RUnlock()
	if e == nil {
		v.mu.Lock()
		if e = v.m[key]; e == nil {
			e = &vecEntry{values: append([]string(nil), values...)}
			e.c.name = v.name
			v.m[key] = e
		}
		v.mu.Unlock()
	}
	return &e.c
}

// Value returns the counter for the given label values without creating
// it; zero when absent.
func (v *CounterVec) Value(values ...string) int64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if e := v.m[vecKey(values)]; e != nil {
		return e.c.Value()
	}
	return 0
}

func (v *CounterVec) metricName() string { return v.name }

func (v *CounterVec) writeProm(w io.Writer) {
	promHeader(w, v.name, v.help, "counter")
	v.mu.RLock()
	entries := make([]*vecEntry, 0, len(v.m))
	//srdalint:ignore maprange collect-then-sort: entries are sorted by label values before exposition
	for _, e := range v.m {
		entries = append(entries, e)
	}
	v.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].values, entries[j].values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	var sb strings.Builder
	for _, e := range entries {
		sb.Reset()
		for k, lname := range v.labels {
			if k > 0 {
				sb.WriteByte(',')
			}
			writeLabelPair(&sb, lname, e.values[k])
		}
		fmt.Fprintf(w, "%s{%s} %d\n", v.name, sb.String(), e.c.Value())
	}
}

// Histogram is a fixed-bucket cumulative histogram with wait-free
// observation, rendered with Prometheus le-labeled cumulative buckets
// plus _sum and _count.
type Histogram struct {
	name, help string
	bounds     []float64 // upper bucket bounds, ascending; +Inf implicit
	counts     []atomic.Int64
	sumBits    atomic.Uint64
	count      atomic.Int64
	exemplars  *ExemplarStore // set once via AttachExemplars before use
}

// NewHistogram registers and returns a histogram with the given ascending
// upper bucket bounds (+Inf is implicit).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.register(h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// linear interpolation inside the chosen bucket, the way PromQL's
// histogram_quantile does.  Values landing in the +Inf overflow bucket
// are reported as the highest finite bound.  Returns NaN when nothing has
// been observed.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		if float64(cum) >= rank && cum > 0 {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			inBucket := float64(h.counts[i].Load())
			if inBucket <= 0 {
				return h.bounds[i]
			}
			prev := float64(cum) - inBucket
			frac := (rank - prev) / inBucket
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lower + (h.bounds[i]-lower)*frac
		}
	}
	// Overflow bucket: the best available bound is the largest finite one.
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) writeProm(w io.Writer) {
	promHeader(w, h.name, h.help, "histogram")
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, trimFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", h.name, h.Sum())
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.count.Load())
}
