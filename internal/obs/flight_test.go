package obs

import (
	"context"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func newTestRecorder(t *testing.T, opts FlightOptions) (*FlightRecorder, *fakeClock) {
	t.Helper()
	clk := &fakeClock{now: time.Unix(1000, 0), step: time.Millisecond}
	opts.Clock = clk.read
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.Process == "" {
		opts.Process = "test-proc"
	}
	return NewFlightRecorder(opts), clk
}

func bundleFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestFlightP99BreachDumpsBundle: a p99 over the SLO dumps one validated
// bundle carrying the breaching trace's spans, captured logs, metric
// snapshots, and health records.
func TestFlightP99BreachDumpsBundle(t *testing.T) {
	dir := t.TempDir()
	f, _ := newTestRecorder(t, FlightOptions{Dir: dir, P99SLO: 0.200})

	tr := NewTracerSeeded(64, 9, (&fakeClock{now: time.Unix(0, 0), step: time.Millisecond}).read)
	f.AttachTracer(tr)
	ctx, root := tr.StartRoot(context.Background(), "request")
	_, child := StartSpan(ctx, "batch")
	child.End()
	root.End()
	_, other := tr.StartRoot(context.Background(), "request")
	other.End()

	reg := NewRegistry()
	reg.NewCounter("srdatest_requests_total", "requests").Add(7)
	f.AttachRegistry("serve", reg)

	e := NewExemplarStore(8, 0.200)
	e.Observe("lat", 0.5, root.TraceID())
	f.AttachExemplars(e)

	log := f.CaptureLogs(NewLoggerClock(os.Stderr, slog.LevelError, false, (&fakeClock{now: time.Unix(0, 0), step: time.Millisecond}).read))
	log.Info("warming up", "model", "m1") // below sink level, still ringed

	f.RecordHealth(HealthRecord{Model: "m1", Trigger: "drift", CondEstimate: 12.5, HoldoutAccuracy: 0.9})

	f.CheckP99(0.150, root.TraceID()) // under SLO: no dump
	if n := f.DumpCount(); n != 0 {
		t.Fatalf("under-SLO check dumped %d bundles", n)
	}
	f.CheckP99(0.500, root.TraceID())
	if n := f.DumpCount(); n != 1 {
		t.Fatalf("dump count = %d, want 1", n)
	}

	files := bundleFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("bundle files: %v", files)
	}
	wantName := "flight-p99_breach-" + FormatTraceID(root.TraceID()) + ".json"
	if filepath.Base(files[0]) != wantName {
		t.Fatalf("bundle named %s, want %s", filepath.Base(files[0]), wantName)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := ValidateFlightBundle(data)
	if err != nil {
		t.Fatalf("bundle does not validate: %v", err)
	}
	if b.Trigger != "p99_breach" || b.Process != "test-proc" || b.Value != 0.5 || b.Threshold != 0.2 {
		t.Fatalf("bundle header: %+v", b)
	}
	if len(b.Spans) != 2 {
		t.Fatalf("bundle has %d spans, want the breaching trace's 2: %+v", len(b.Spans), b.Spans)
	}
	for _, sp := range b.Spans {
		if sp.TraceID != FormatTraceID(root.TraceID()) {
			t.Fatalf("span from foreign trace: %+v", sp)
		}
	}
	if len(b.Logs) != 1 || b.Logs[0].Message != "warming up" || b.Logs[0].Attrs["model"] != "m1" {
		t.Fatalf("bundle logs: %+v", b.Logs)
	}
	if !strings.Contains(b.Metrics["serve"], "srdatest_requests_total 7") {
		t.Fatalf("bundle metrics: %q", b.Metrics)
	}
	if len(b.Exemplars) != 2 || len(b.Health) != 1 || b.Health[0].CondEstimate != 12.5 {
		t.Fatalf("bundle exemplars/health: %+v / %+v", b.Exemplars, b.Health)
	}
}

// TestFlightCooldown: repeated triggers inside the cooldown dump once.
func TestFlightCooldown(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{now: time.Unix(1000, 0), step: 0}
	f := NewFlightRecorder(FlightOptions{Dir: dir, Process: "p", Clock: clk.read, Cooldown: 10 * time.Second, P99SLO: 0.1})
	f.CheckP99(1.0, 5)
	f.CheckP99(1.0, 5)
	if n := f.DumpCount(); n != 1 {
		t.Fatalf("cooldown let %d dumps through", n)
	}
	clk.now = clk.now.Add(11 * time.Second)
	f.CheckP99(1.0, 6)
	if n := f.DumpCount(); n != 2 {
		t.Fatalf("post-cooldown trigger did not dump (count %d)", n)
	}
}

// TestFlightShedStorm: the storm trigger needs threshold sheds inside
// the window; slow sheds never fire.
func TestFlightShedStorm(t *testing.T) {
	dir := t.TempDir()
	clk := &fakeClock{now: time.Unix(1000, 0), step: 0}
	f := NewFlightRecorder(FlightOptions{
		Dir: dir, Process: "p", Clock: clk.read,
		ShedStormThreshold: 3, ShedStormWindow: time.Second,
	})
	f.NoteShed(1)
	clk.now = clk.now.Add(2 * time.Second)
	f.NoteShed(2)
	clk.now = clk.now.Add(2 * time.Second)
	f.NoteShed(3)
	if n := f.DumpCount(); n != 0 {
		t.Fatalf("slow sheds fired a storm (%d dumps)", n)
	}
	clk.now = clk.now.Add(2 * time.Second)
	f.NoteShed(4)
	f.NoteShed(5)
	f.NoteShed(6)
	if n := f.DumpCount(); n != 1 {
		t.Fatalf("storm dumps = %d, want 1", n)
	}
	files := bundleFiles(t, dir)
	if len(files) != 1 || !strings.Contains(files[0], "shed_storm") {
		t.Fatalf("bundle files: %v", files)
	}
}

// TestFlightNilRecorder: every hook is a free no-op on nil.
func TestFlightNilRecorder(t *testing.T) {
	var f *FlightRecorder
	f.AttachTracer(NewTracer(8))
	f.AttachRegistry("x", NewRegistry())
	f.AttachExemplars(NewExemplarStore(4, 0))
	f.RecordHealth(HealthRecord{})
	f.CheckP99(10, 1)
	f.NoteQueueFull(1)
	f.NoteShed(1)
	f.NoteRollback(1)
	f.NoteRefitFailure(1)
	if f.DumpCount() != 0 || f.P99SLO() != 0 {
		t.Fatal("nil recorder has state")
	}
	l := NewLogger(os.Stderr, slog.LevelError)
	if f.CaptureLogs(l) != l {
		t.Fatal("nil recorder wrapped the logger")
	}
}

// TestFlightTriggerWithoutTrace falls back to the trailing spans and an
// all-zero trace id in the bundle name.
func TestFlightTriggerWithoutTrace(t *testing.T) {
	dir := t.TempDir()
	f, _ := newTestRecorder(t, FlightOptions{Dir: dir})
	tr := NewTracerClock(8, (&fakeClock{now: time.Unix(0, 0), step: time.Millisecond}).read)
	f.AttachTracer(tr)
	_, sp := tr.StartRoot(context.Background(), "request")
	sp.End()
	f.NoteQueueFull(0)
	files := bundleFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("bundle files: %v", files)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := ValidateFlightBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if b.TraceID != FormatTraceID(0) || len(b.Spans) != 1 {
		t.Fatalf("bundle = %+v", b)
	}
}

// TestValidateFlightBundleRejects: unknown fields, bad schema, unknown
// trigger.
func TestValidateFlightBundleRejects(t *testing.T) {
	base := `"process":"p","trigger":"p99_breach","time":"2026-01-01T00:00:00Z","trace_id":"t0000000000000001","spans":[],"logs":[],"metrics":{},"exemplars":[],"health":[]`
	for _, tc := range []struct{ name, data string }{
		{"unknown field", `{"schema":"srda-flight/v1",` + base + `,"bogus":1}`},
		{"bad schema", `{"schema":"srda-flight/v9",` + base + `}`},
		{"unknown trigger", strings.Replace(`{"schema":"srda-flight/v1",`+base+`}`, "p99_breach", "gremlins", 1)},
		{"missing sections", `{"schema":"srda-flight/v1","process":"p","trigger":"p99_breach","trace_id":"t0000000000000001"}`},
	} {
		if _, err := ValidateFlightBundle([]byte(tc.data)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
