package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRequestTraceSpanTree(t *testing.T) {
	clk := &fakeClock{now: time.Unix(100, 0), step: time.Millisecond}
	tr := NewTracerClock(16, clk.read)

	ctx, root := tr.StartRoot(context.Background(), "request")
	if root == nil || root.TraceID() != 1 {
		t.Fatalf("root = %+v", root)
	}
	cctx, child := StartSpan(ctx, "batch")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %d, root trace %d", child.TraceID(), root.TraceID())
	}
	_, leaf := StartSpan(cctx, "kernel")
	leaf.End()
	child.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if byName["batch"].Parent != byName["request"].ID {
		t.Errorf("batch parent = %d, want %d", byName["batch"].Parent, byName["request"].ID)
	}
	if byName["kernel"].Parent != byName["batch"].ID {
		t.Errorf("kernel parent = %d, want %d", byName["kernel"].Parent, byName["batch"].ID)
	}
	if byName["request"].Parent != 0 {
		t.Errorf("request parent = %d, want 0", byName["request"].Parent)
	}
	for _, sp := range spans {
		if sp.Trace != 1 {
			t.Errorf("span %q has trace %d, want 1", sp.Name, sp.Trace)
		}
	}
}

func TestStartChildFanIn(t *testing.T) {
	tr := NewTracerClock(16, (&fakeClock{now: time.Unix(0, 0), step: time.Millisecond}).read)
	_, a := tr.StartRoot(context.Background(), "request")
	_, b := tr.StartRoot(context.Background(), "request")
	ca, cb := a.StartChild("batch"), b.StartChild("batch")
	if ca.TraceID() != a.TraceID() || cb.TraceID() != b.TraceID() {
		t.Fatal("children not on their parents' traces")
	}
	if ca.SpanID() == cb.SpanID() {
		t.Fatal("span ids collide across traces")
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartRoot(context.Background(), "request")
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	_, child := StartSpan(ctx, "x")
	if child != nil {
		t.Fatal("span from spanless context")
	}
	child.End() // must not panic
	sp.StartChild("y").End()
	if tr.Snapshot() != nil || tr.SpanCount() != 0 || tr.Evicted() != 0 {
		t.Fatal("nil tracer reports state")
	}
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"traceEvents":[]`) {
		t.Fatalf("nil export = %q", sb.String())
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := NewTracerClock(8, (&fakeClock{now: time.Unix(0, 0), step: time.Millisecond}).read)
	_, sp := tr.StartRoot(context.Background(), "request")
	sp.End()
	sp.End()
	if n := tr.SpanCount(); n != 1 {
		t.Fatalf("double End recorded %d spans", n)
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracerClock(4, (&fakeClock{now: time.Unix(0, 0), step: time.Millisecond}).read)
	for i := 0; i < 6; i++ {
		_, sp := tr.StartRoot(context.Background(), "request")
		sp.End()
	}
	if n := tr.SpanCount(); n != 4 {
		t.Fatalf("ring holds %d, want 4", n)
	}
	if ev := tr.Evicted(); ev != 2 {
		t.Fatalf("evicted = %d, want 2", ev)
	}
	spans := tr.Snapshot()
	// Oldest-first: traces 3,4,5,6 survive.
	for i, sp := range spans {
		if want := TraceID(i + 3); sp.Trace != want {
			t.Fatalf("snapshot[%d].Trace = %d, want %d", i, sp.Trace, want)
		}
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer(1 << 12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, root := tr.StartRoot(context.Background(), "request")
				_, child := StartSpan(ctx, "batch")
				child.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	if n := tr.SpanCount(); n != 800 {
		t.Fatalf("recorded %d spans, want 800", n)
	}
	seen := map[SpanID]bool{}
	for _, sp := range tr.Snapshot() {
		if seen[sp.ID] {
			t.Fatalf("duplicate span id %d", sp.ID)
		}
		seen[sp.ID] = true
	}
}

// TestChromeTraceGolden pins the exporter byte-for-byte on an injected
// clock: two traces, nested spans, ids and timestamps all deterministic.
func TestChromeTraceGolden(t *testing.T) {
	clk := &fakeClock{now: time.UnixMicro(1_000_000), step: time.Millisecond}
	tr := NewTracerClock(16, clk.read)

	ctx, r1 := tr.StartRoot(context.Background(), "request")  // start 1.001s
	_, b1 := StartSpan(ctx, "batch")                          // start 1.002s
	b1.End()                                                  // end   1.003s
	r1.End()                                                  // end   1.004s
	ctx2, r2 := tr.StartRoot(context.Background(), "request") // start 1.005s
	_, b2 := StartSpan(ctx2, "batch")                         // start 1.006s
	b2.End()                                                  // end   1.007s
	r2.End()                                                  // end   1.008s

	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	const golden = `{"traceEvents":[` +
		`{"name":"request","cat":"srda","ph":"X","ts":0,"dur":3000,"pid":1,"tid":1,"args":{"trace_id":"t0000000000000001","span_id":1,"parent_id":0}},` +
		`{"name":"batch","cat":"srda","ph":"X","ts":1000,"dur":1000,"pid":1,"tid":1,"args":{"trace_id":"t0000000000000001","span_id":2,"parent_id":1}},` +
		`{"name":"request","cat":"srda","ph":"X","ts":4000,"dur":3000,"pid":1,"tid":2,"args":{"trace_id":"t0000000000000002","span_id":3,"parent_id":0}},` +
		`{"name":"batch","cat":"srda","ph":"X","ts":5000,"dur":1000,"pid":1,"tid":2,"args":{"trace_id":"t0000000000000002","span_id":4,"parent_id":3}}` +
		`],"displayTimeUnit":"ms","epochMicros":1001000}` + "\n"
	if sb.String() != golden {
		t.Fatalf("exporter regression.\n--- got ---\n%s--- want ---\n%s", sb.String(), golden)
	}
}

// TestSeededEpochNamespace pins the per-process ID namespace: seeded
// tracers are deterministic, distinct seeds give disjoint high-32-bit
// epochs, and the zero-epoch clock constructor keeps bare counter IDs.
func TestSeededEpochNamespace(t *testing.T) {
	clk := func() *fakeClock { return &fakeClock{now: time.Unix(0, 0), step: time.Millisecond} }
	a1 := NewTracerSeeded(16, 7, clk().read)
	a2 := NewTracerSeeded(16, 7, clk().read)
	b := NewTracerSeeded(16, 8, clk().read)

	_, sa1 := a1.StartRoot(context.Background(), "request")
	_, sa2 := a2.StartRoot(context.Background(), "request")
	_, sb := b.StartRoot(context.Background(), "request")
	if sa1.TraceID() != sa2.TraceID() {
		t.Fatalf("same seed, different trace ids: %d vs %d", sa1.TraceID(), sa2.TraceID())
	}
	if sa1.TraceID()>>32 == 0 || sa1.TraceID()&0xffffffff != 1 {
		t.Fatalf("seeded trace id %#x lacks epoch-high/counter-low shape", uint64(sa1.TraceID()))
	}
	if sa1.TraceID()>>32 == sb.TraceID()>>32 {
		t.Fatalf("seeds 7 and 8 share epoch %#x", uint64(sa1.TraceID())>>32)
	}
	if uint64(sa1.SpanID())>>32 != uint64(sa1.TraceID())>>32 {
		t.Fatalf("span id %#x not in the tracer's namespace", uint64(sa1.SpanID()))
	}
	_, plain := NewTracerClock(16, clk().read).StartRoot(context.Background(), "request")
	if plain.TraceID() != 1 || plain.SpanID() != 1 {
		t.Fatalf("zero-epoch tracer assigned (%d,%d), want (1,1)", plain.TraceID(), plain.SpanID())
	}
}

// TestStartRemoteContinuesTrace checks the cross-process hop: the remote
// span keeps the extracted TraceID, hangs under the remote parent, and
// draws its own SpanID from the local namespace; zero coordinates fall
// back to a fresh root.
func TestStartRemoteContinuesTrace(t *testing.T) {
	remote := NewTracerSeeded(16, 1, (&fakeClock{now: time.Unix(0, 0), step: time.Millisecond}).read)
	local := NewTracerSeeded(16, 2, (&fakeClock{now: time.Unix(0, 0), step: time.Millisecond}).read)

	_, up := remote.StartRoot(context.Background(), "route")
	ctx, cont := local.StartRemote(context.Background(), "request", up.TraceID(), up.SpanID())
	if cont.TraceID() != up.TraceID() {
		t.Fatalf("remote span trace %d, want %d", cont.TraceID(), up.TraceID())
	}
	if cont.SpanID()>>32 != SpanID(local.epoch>>32) {
		t.Fatalf("remote span id %#x not from the local namespace", uint64(cont.SpanID()))
	}
	_, child := StartSpan(ctx, "batch")
	child.End()
	cont.End()
	spans := local.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("local ring holds %d spans, want 2", len(spans))
	}
	for _, sp := range spans {
		if sp.Trace != up.TraceID() {
			t.Errorf("span %q on trace %d, want %d", sp.Name, sp.Trace, up.TraceID())
		}
	}
	if spans[1].Parent != up.SpanID() {
		t.Errorf("continued span parent %d, want remote parent %d", spans[1].Parent, up.SpanID())
	}

	_, root := local.StartRemote(context.Background(), "request", 0, 0)
	if root.TraceID() == up.TraceID() || root.TraceID() == 0 {
		t.Fatalf("zero coordinates did not fall back to a fresh root (trace %d)", root.TraceID())
	}
	var nilT *Tracer
	if _, sp := nilT.StartRemote(context.Background(), "x", 1, 1); sp != nil {
		t.Fatal("nil tracer produced a remote span")
	}
}

// TestProcessLabelExport checks SetProcess reaches the export envelope.
func TestProcessLabelExport(t *testing.T) {
	tr := NewTracerClock(4, (&fakeClock{now: time.UnixMicro(1_000_000), step: time.Millisecond}).read)
	tr.SetProcess("worker-0")
	_, sp := tr.StartRoot(context.Background(), "request")
	sp.End()
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"process":"worker-0"`) {
		t.Fatalf("export missing process label: %s", sb.String())
	}
	var nilT *Tracer
	nilT.SetProcess("x") // must not panic
	if nilT.Process() != "" {
		t.Fatal("nil tracer has a process label")
	}
}
