package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRequestTraceSpanTree(t *testing.T) {
	clk := &fakeClock{now: time.Unix(100, 0), step: time.Millisecond}
	tr := NewTracerClock(16, clk.read)

	ctx, root := tr.StartRoot(context.Background(), "request")
	if root == nil || root.TraceID() != 1 {
		t.Fatalf("root = %+v", root)
	}
	cctx, child := StartSpan(ctx, "batch")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %d, root trace %d", child.TraceID(), root.TraceID())
	}
	_, leaf := StartSpan(cctx, "kernel")
	leaf.End()
	child.End()
	root.End()

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	if byName["batch"].Parent != byName["request"].ID {
		t.Errorf("batch parent = %d, want %d", byName["batch"].Parent, byName["request"].ID)
	}
	if byName["kernel"].Parent != byName["batch"].ID {
		t.Errorf("kernel parent = %d, want %d", byName["kernel"].Parent, byName["batch"].ID)
	}
	if byName["request"].Parent != 0 {
		t.Errorf("request parent = %d, want 0", byName["request"].Parent)
	}
	for _, sp := range spans {
		if sp.Trace != 1 {
			t.Errorf("span %q has trace %d, want 1", sp.Name, sp.Trace)
		}
	}
}

func TestStartChildFanIn(t *testing.T) {
	tr := NewTracerClock(16, (&fakeClock{now: time.Unix(0, 0), step: time.Millisecond}).read)
	_, a := tr.StartRoot(context.Background(), "request")
	_, b := tr.StartRoot(context.Background(), "request")
	ca, cb := a.StartChild("batch"), b.StartChild("batch")
	if ca.TraceID() != a.TraceID() || cb.TraceID() != b.TraceID() {
		t.Fatal("children not on their parents' traces")
	}
	if ca.SpanID() == cb.SpanID() {
		t.Fatal("span ids collide across traces")
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartRoot(context.Background(), "request")
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	_, child := StartSpan(ctx, "x")
	if child != nil {
		t.Fatal("span from spanless context")
	}
	child.End() // must not panic
	sp.StartChild("y").End()
	if tr.Snapshot() != nil || tr.SpanCount() != 0 || tr.Evicted() != 0 {
		t.Fatal("nil tracer reports state")
	}
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"traceEvents":[]`) {
		t.Fatalf("nil export = %q", sb.String())
	}
}

func TestEndIsIdempotent(t *testing.T) {
	tr := NewTracerClock(8, (&fakeClock{now: time.Unix(0, 0), step: time.Millisecond}).read)
	_, sp := tr.StartRoot(context.Background(), "request")
	sp.End()
	sp.End()
	if n := tr.SpanCount(); n != 1 {
		t.Fatalf("double End recorded %d spans", n)
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracerClock(4, (&fakeClock{now: time.Unix(0, 0), step: time.Millisecond}).read)
	for i := 0; i < 6; i++ {
		_, sp := tr.StartRoot(context.Background(), "request")
		sp.End()
	}
	if n := tr.SpanCount(); n != 4 {
		t.Fatalf("ring holds %d, want 4", n)
	}
	if ev := tr.Evicted(); ev != 2 {
		t.Fatalf("evicted = %d, want 2", ev)
	}
	spans := tr.Snapshot()
	// Oldest-first: traces 3,4,5,6 survive.
	for i, sp := range spans {
		if want := TraceID(i + 3); sp.Trace != want {
			t.Fatalf("snapshot[%d].Trace = %d, want %d", i, sp.Trace, want)
		}
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer(1 << 12)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx, root := tr.StartRoot(context.Background(), "request")
				_, child := StartSpan(ctx, "batch")
				child.End()
				root.End()
			}
		}()
	}
	wg.Wait()
	if n := tr.SpanCount(); n != 800 {
		t.Fatalf("recorded %d spans, want 800", n)
	}
	seen := map[SpanID]bool{}
	for _, sp := range tr.Snapshot() {
		if seen[sp.ID] {
			t.Fatalf("duplicate span id %d", sp.ID)
		}
		seen[sp.ID] = true
	}
}

// TestChromeTraceGolden pins the exporter byte-for-byte on an injected
// clock: two traces, nested spans, ids and timestamps all deterministic.
func TestChromeTraceGolden(t *testing.T) {
	clk := &fakeClock{now: time.UnixMicro(1_000_000), step: time.Millisecond}
	tr := NewTracerClock(16, clk.read)

	ctx, r1 := tr.StartRoot(context.Background(), "request") // start 1.001s
	_, b1 := StartSpan(ctx, "batch")                         // start 1.002s
	b1.End()                                                 // end   1.003s
	r1.End()                                                 // end   1.004s
	ctx2, r2 := tr.StartRoot(context.Background(), "request") // start 1.005s
	_, b2 := StartSpan(ctx2, "batch")                        // start 1.006s
	b2.End()                                                 // end   1.007s
	r2.End()                                                 // end   1.008s

	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	const golden = `{"traceEvents":[` +
		`{"name":"request","cat":"srda","ph":"X","ts":0,"dur":3000,"pid":1,"tid":1,"args":{"trace_id":"t0000000000000001","span_id":1,"parent_id":0}},` +
		`{"name":"batch","cat":"srda","ph":"X","ts":1000,"dur":1000,"pid":1,"tid":1,"args":{"trace_id":"t0000000000000001","span_id":2,"parent_id":1}},` +
		`{"name":"request","cat":"srda","ph":"X","ts":4000,"dur":3000,"pid":1,"tid":2,"args":{"trace_id":"t0000000000000002","span_id":3,"parent_id":0}},` +
		`{"name":"batch","cat":"srda","ph":"X","ts":5000,"dur":1000,"pid":1,"tid":2,"args":{"trace_id":"t0000000000000002","span_id":4,"parent_id":3}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if sb.String() != golden {
		t.Fatalf("exporter regression.\n--- got ---\n%s--- want ---\n%s", sb.String(), golden)
	}
}
