package obs

// Always-on flight recorder.  Each process keeps bounded rings of recent
// spans (the request tracer's own ring), log records (captured via
// CaptureLogs), metric snapshots, and numeric-health records from the
// fit/refit path.  Trigger rules — p99 over SLO, queue-full rejections,
// a registry rollback, a shed storm, a refit validation failure — dump
// one correlated bundle (flight-<trigger>-<traceid>.json) atomically for
// postmortems, rate-limited by a per-trigger cooldown so a sustained
// breach produces one bundle, not a bundle per request.
//
// The nil discipline matches the rest of obs: a nil *FlightRecorder is a
// free no-op receiver, so serving, routing, and training call-sites hook
// in unconditionally.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// FlightSchema is the bundle schema identifier; ValidateFlightBundle
// rejects bundles claiming any other version.
const FlightSchema = "srda-flight/v1"

// flightTriggers are the recognized trigger rule names.
var flightTriggers = map[string]bool{
	"p99_breach":        true,
	"queue_full":        true,
	"shed_storm":        true,
	"registry_rollback": true,
	"refit_validation":  true,
	"slo_burn":          true,
}

// FlightOptions configures a recorder; zero values get defaults.
type FlightOptions struct {
	Dir     string // bundle directory; "" records rings but never dumps
	Process string // label stamped into bundles
	Clock   Clock  // injectable for deterministic tests

	Cooldown       time.Duration // min spacing between dumps per trigger (default 30s)
	LogCapacity    int           // log ring size (default 256)
	HealthCapacity int           // numeric-health ring size (default 32)

	P99SLO             float64       // seconds; CheckP99 fires above this (<= 0 disables)
	ShedStormThreshold int           // sheds within the window that make a storm (default 16)
	ShedStormWindow    time.Duration // shed-storm window (default 1s)

	Logger *Logger // dump failures are reported here
}

// LogRecord is one captured log line in the flight ring.
type LogRecord struct {
	Time    time.Time         `json:"time"`
	Level   string            `json:"level"`
	Message string            `json:"msg"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// HealthRecord is the numeric health of one fit/refit: the conditioning
// of the normal equations, the holdout comparison that gated publishing,
// and the outcome.
type HealthRecord struct {
	Time            time.Time `json:"time"`
	Model           string    `json:"model"`
	Trigger         string    `json:"trigger"`
	Version         uint64    `json:"version,omitempty"`
	CondEstimate    float64   `json:"cond_estimate,omitempty"`
	HoldoutAccuracy float64   `json:"holdout_accuracy,omitempty"`
	PrevAccuracy    float64   `json:"prev_accuracy,omitempty"`
	HoldoutDelta    float64   `json:"holdout_delta,omitempty"`
	RolledBack      bool      `json:"rolled_back,omitempty"`
	Err             string    `json:"error,omitempty"`
}

// FlightSpan is one span in a bundle, timestamps flattened to absolute
// microseconds so bundles are self-contained.
type FlightSpan struct {
	TraceID  string `json:"trace_id"`
	SpanID   uint64 `json:"span_id"`
	ParentID uint64 `json:"parent_id"`
	Name     string `json:"name"`
	StartUS  int64  `json:"start_us"`
	DurUS    int64  `json:"dur_us"`
}

// FlightBundle is the dumped artifact: everything the process knew about
// the moments before the trigger, correlated by the breaching trace.
type FlightBundle struct {
	Schema    string            `json:"schema"`
	Process   string            `json:"process"`
	Trigger   string            `json:"trigger"`
	Time      time.Time         `json:"time"`
	TraceID   string            `json:"trace_id"` // all-zero when the trigger had none
	Value     float64           `json:"value,omitempty"`
	Threshold float64           `json:"threshold,omitempty"`
	Spans     []FlightSpan      `json:"spans"`
	Logs      []LogRecord       `json:"logs"`
	Metrics   map[string]string `json:"metrics"` // registry name -> prom exposition
	Exemplars []Exemplar        `json:"exemplars"`
	Health    []HealthRecord    `json:"health"`
}

// recentSpanFallback is how many trailing spans a bundle keeps when the
// trigger carries no trace (or the trace's spans were already evicted).
const recentSpanFallback = 64

// FlightRecorder owns the rings and trigger rules for one process.
type FlightRecorder struct {
	opts  FlightOptions
	clock Clock
	dumps atomic.Int64

	tracer    *Tracer
	exemplars *ExemplarStore

	mu         sync.Mutex
	regs       []flightReg
	logs       []LogRecord // ring
	logNext    int
	logFull    bool
	health     []HealthRecord // ring
	healthNext int
	healthFull bool
	lastDump   map[string]time.Time
	shedTimes  []time.Time
}

type flightReg struct {
	name string
	reg  *Registry
}

// NewFlightRecorder creates a recorder; a nil return never happens, but
// callers that want flight recording off simply keep a nil pointer.
func NewFlightRecorder(opts FlightOptions) *FlightRecorder {
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 30 * time.Second
	}
	if opts.LogCapacity <= 0 {
		opts.LogCapacity = 256
	}
	if opts.HealthCapacity <= 0 {
		opts.HealthCapacity = 32
	}
	if opts.ShedStormThreshold <= 0 {
		opts.ShedStormThreshold = 16
	}
	if opts.ShedStormWindow <= 0 {
		opts.ShedStormWindow = time.Second
	}
	return &FlightRecorder{
		opts:     opts,
		clock:    opts.Clock,
		logs:     make([]LogRecord, opts.LogCapacity),
		health:   make([]HealthRecord, opts.HealthCapacity),
		lastDump: make(map[string]time.Time),
	}
}

// P99SLO returns the configured latency SLO in seconds (0 on nil).
func (f *FlightRecorder) P99SLO() float64 {
	if f == nil {
		return 0
	}
	return f.opts.P99SLO
}

// AttachTracer points the recorder at the span ring bundles draw from.
func (f *FlightRecorder) AttachTracer(t *Tracer) {
	if f != nil {
		f.tracer = t
	}
}

// AttachExemplars points the recorder at the exemplar store to include
// in bundles.
func (f *FlightRecorder) AttachExemplars(e *ExemplarStore) {
	if f != nil {
		f.exemplars = e
	}
}

// AttachRegistry adds a named registry whose exposition is snapshotted
// into every bundle (serve metrics, router metrics, the default
// registry...).  Attachment order is bundle map insertion order only;
// the JSON object sorts by name.
func (f *FlightRecorder) AttachRegistry(name string, reg *Registry) {
	if f == nil || reg == nil {
		return
	}
	f.mu.Lock()
	f.regs = append(f.regs, flightReg{name: name, reg: reg})
	f.mu.Unlock()
}

// CaptureLogs returns a logger equivalent to l whose records also land
// in the flight ring — even records below the sink's level, so bundles
// carry debug context a quiet production sink dropped.  Nil recorder or
// logger passes l through unchanged.
func (f *FlightRecorder) CaptureLogs(l *Logger) *Logger {
	if f == nil || l == nil {
		return l
	}
	return &Logger{h: &teeHandler{rec: f, inner: l.h}, lvl: l.lvl, clock: l.clock, smp: l.smp}
}

// RecordHealth appends one fit/refit health record to the ring.
func (f *FlightRecorder) RecordHealth(h HealthRecord) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.health[f.healthNext] = h
	f.healthNext++
	if f.healthNext == len(f.health) {
		f.healthNext = 0
		f.healthFull = true
	}
	f.mu.Unlock()
}

// DumpCount returns how many bundles have been written (0 on nil).
func (f *FlightRecorder) DumpCount() int64 {
	if f == nil {
		return 0
	}
	return f.dumps.Load()
}

// CheckP99 fires the p99_breach trigger when the observed p99 latency
// (seconds) exceeds the configured SLO; trace identifies the request
// whose observation pushed it over.
func (f *FlightRecorder) CheckP99(p99 float64, trace TraceID) {
	if f == nil || f.opts.P99SLO <= 0 || !(p99 > f.opts.P99SLO) {
		return
	}
	f.trigger("p99_breach", trace, p99, f.opts.P99SLO)
}

// NoteQueueFull fires the queue_full trigger for a rejected request.
func (f *FlightRecorder) NoteQueueFull(trace TraceID) {
	if f == nil {
		return
	}
	f.trigger("queue_full", trace, 0, 0)
}

// NoteShed records one shed decision; ShedStormThreshold sheds inside
// ShedStormWindow fire the shed_storm trigger.
func (f *FlightRecorder) NoteShed(trace TraceID) {
	if f == nil {
		return
	}
	now := f.clock()
	f.mu.Lock()
	cutoff := now.Add(-f.opts.ShedStormWindow)
	kept := f.shedTimes[:0]
	for _, t := range f.shedTimes {
		if t.After(cutoff) {
			kept = append(kept, t)
		}
	}
	f.shedTimes = append(kept, now)
	count := len(f.shedTimes)
	f.mu.Unlock()
	if count >= f.opts.ShedStormThreshold {
		f.trigger("shed_storm", trace, float64(count), float64(f.opts.ShedStormThreshold))
	}
}

// NoteRollback fires the registry_rollback trigger after a published
// model was rolled back (holdout regression or validation hook).
func (f *FlightRecorder) NoteRollback(trace TraceID) {
	if f == nil {
		return
	}
	f.trigger("registry_rollback", trace, 0, 0)
}

// NoteSLOBurn fires the slo_burn trigger when an SLO burn-rate alert
// transitions to firing; value is the observed burn rate and threshold
// the window's firing threshold.  SLO evaluations are interval-driven,
// not request-driven, so there is no breaching trace — bundles fall
// back to the trailing span window.
func (f *FlightRecorder) NoteSLOBurn(burn, threshold float64) {
	if f == nil {
		return
	}
	f.trigger("slo_burn", 0, burn, threshold)
}

// NoteRefitFailure fires the refit_validation trigger when a refit could
// not produce a publishable model at all.
func (f *FlightRecorder) NoteRefitFailure(trace TraceID) {
	if f == nil {
		return
	}
	f.trigger("refit_validation", trace, 0, 0)
}

// trigger applies the cooldown and dumps a bundle.
func (f *FlightRecorder) trigger(name string, trace TraceID, value, threshold float64) {
	now := f.clock()
	f.mu.Lock()
	if last, ok := f.lastDump[name]; ok && now.Sub(last) < f.opts.Cooldown {
		f.mu.Unlock()
		return
	}
	f.lastDump[name] = now
	f.mu.Unlock()
	if f.opts.Dir == "" {
		return
	}
	if err := f.dump(name, trace, value, threshold, now); err != nil {
		f.opts.Logger.Error("flight recorder dump failed", "trigger", name, "err", err.Error())
		return
	}
	f.dumps.Add(1)
}

// dump assembles and atomically writes one bundle.
func (f *FlightRecorder) dump(trigger string, trace TraceID, value, threshold float64, now time.Time) error {
	bundle := FlightBundle{
		Schema:    FlightSchema,
		Process:   f.opts.Process,
		Trigger:   trigger,
		Time:      now,
		TraceID:   FormatTraceID(trace),
		Value:     value,
		Threshold: threshold,
		Spans:     f.bundleSpans(trace),
		Metrics:   map[string]string{},
	}
	f.mu.Lock()
	bundle.Logs = ringSlice(f.logs, f.logNext, f.logFull)
	bundle.Health = ringSlice(f.health, f.healthNext, f.healthFull)
	regs := append([]flightReg(nil), f.regs...)
	f.mu.Unlock()
	for _, r := range regs {
		var buf bytes.Buffer
		r.reg.WritePrometheus(&buf)
		bundle.Metrics[r.name] = buf.String()
	}
	bundle.Exemplars = f.exemplars.Snapshot()
	if bundle.Logs == nil {
		bundle.Logs = []LogRecord{}
	}
	if bundle.Health == nil {
		bundle.Health = []HealthRecord{}
	}
	if bundle.Exemplars == nil {
		bundle.Exemplars = []Exemplar{}
	}
	data, err := json.MarshalIndent(bundle, "", "  ")
	if err != nil {
		return err
	}
	final := filepath.Join(f.opts.Dir, fmt.Sprintf("flight-%s-%s.json", trigger, FormatTraceID(trace)))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// bundleSpans selects the spans for a bundle: the breaching trace's
// spans when it has any still in the ring, the trailing
// recentSpanFallback spans otherwise.
func (f *FlightRecorder) bundleSpans(trace TraceID) []FlightSpan {
	spans := f.tracer.Snapshot()
	var picked []SpanRecord
	if trace != 0 {
		for _, sp := range spans {
			if sp.Trace == trace {
				picked = append(picked, sp)
			}
		}
	}
	if picked == nil {
		lo := len(spans) - recentSpanFallback
		if lo < 0 {
			lo = 0
		}
		picked = spans[lo:]
	}
	sortSpans(picked)
	out := make([]FlightSpan, 0, len(picked))
	for _, sp := range picked {
		out = append(out, FlightSpan{
			TraceID:  FormatTraceID(sp.Trace),
			SpanID:   uint64(sp.ID),
			ParentID: uint64(sp.Parent),
			Name:     sp.Name,
			StartUS:  sp.Start.UnixMicro(),
			DurUS:    sp.Duration.Microseconds(),
		})
	}
	return out
}

// ringSlice copies a ring's contents oldest-first.
func ringSlice[T any](ring []T, next int, full bool) []T {
	if !full {
		return append([]T(nil), ring[:next]...)
	}
	out := make([]T, 0, len(ring))
	out = append(out, ring[next:]...)
	out = append(out, ring[:next]...)
	return out
}

// recordLog appends one captured record to the log ring.
func (f *FlightRecorder) recordLog(rec LogRecord) {
	f.mu.Lock()
	f.logs[f.logNext] = rec
	f.logNext++
	if f.logNext == len(f.logs) {
		f.logNext = 0
		f.logFull = true
	}
	f.mu.Unlock()
}

// teeHandler is a slog.Handler that records every record into the flight
// ring and forwards to the wrapped handler when its level admits it.
// Enabled always reports true so below-sink-level records still reach
// the ring; Handle re-checks the inner handler before forwarding.
type teeHandler struct {
	rec    *FlightRecorder
	inner  slog.Handler
	attrs  []slog.Attr // WithAttrs accumulation, group prefix applied
	prefix string      // open WithGroup prefix ("g1.g2.")
}

func (h *teeHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *teeHandler) Handle(ctx context.Context, r slog.Record) error {
	attrs := make(map[string]string, len(h.attrs)+r.NumAttrs())
	for _, a := range h.attrs {
		attrs[a.Key] = a.Value.String()
	}
	r.Attrs(func(a slog.Attr) bool {
		attrs[h.prefix+a.Key] = a.Value.String()
		return true
	})
	if len(attrs) == 0 {
		attrs = nil
	}
	h.rec.recordLog(LogRecord{Time: r.Time, Level: r.Level.String(), Message: r.Message, Attrs: attrs})
	if h.inner.Enabled(ctx, r.Level) {
		return h.inner.Handle(ctx, r)
	}
	return nil
}

func (h *teeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := append(append([]slog.Attr(nil), h.attrs...), prefixAttrs(h.prefix, attrs)...)
	return &teeHandler{rec: h.rec, inner: h.inner.WithAttrs(attrs), attrs: merged, prefix: h.prefix}
}

func (h *teeHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	return &teeHandler{rec: h.rec, inner: h.inner.WithGroup(name), attrs: h.attrs, prefix: h.prefix + name + "."}
}

func prefixAttrs(prefix string, attrs []slog.Attr) []slog.Attr {
	if prefix == "" {
		return attrs
	}
	out := make([]slog.Attr, len(attrs))
	for i, a := range attrs {
		out[i] = slog.Attr{Key: prefix + a.Key, Value: a.Value}
	}
	return out
}

// ValidateFlightBundle parses data as a FlightBundle and checks the
// schema; it is the contract the trace-smoke CI step holds bundle files
// to.
func ValidateFlightBundle(data []byte) (*FlightBundle, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var b FlightBundle
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("obs: flight bundle is not valid JSON for the schema: %w", err)
	}
	if b.Schema != FlightSchema {
		return nil, fmt.Errorf("obs: flight bundle schema %q, want %q", b.Schema, FlightSchema)
	}
	if !flightTriggers[b.Trigger] {
		return nil, fmt.Errorf("obs: unknown flight trigger %q", b.Trigger)
	}
	if b.Process == "" {
		return nil, fmt.Errorf("obs: flight bundle missing process")
	}
	if len(b.TraceID) != 17 || b.TraceID[0] != 't' {
		return nil, fmt.Errorf("obs: malformed bundle trace id %q", b.TraceID)
	}
	if b.Spans == nil || b.Logs == nil || b.Metrics == nil {
		return nil, fmt.Errorf("obs: flight bundle missing spans/logs/metrics sections")
	}
	return &b, nil
}
