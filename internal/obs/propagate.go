package obs

// W3C-traceparent-style context propagation.  One logical request fans
// out across the router, worker, and trainer processes; without a wire
// format the ReqSpan tree dies at each HTTP hop and a cross-process
// request reads as disconnected traces.  InjectTrace stamps the active
// span onto outgoing request headers and ExtractTrace recovers the
// (TraceID, parent SpanID) pair on the receiving side, where
// Tracer.StartRemote continues the tree.
//
// The header follows the W3C Trace Context traceparent shape —
// version "00", a 32-hex-digit trace id, a 16-hex-digit parent span id,
// and the sampled flag — with our 64-bit TraceID zero-padded into the
// 128-bit field.  All injection goes through InjectTrace; the traceheader
// lint analyzer rejects ad-hoc Header.Set calls elsewhere.

import (
	"net/http"
	"strconv"
)

// TraceparentHeader is the canonical propagation header name.
const TraceparentHeader = "Traceparent"

// traceparentLen is the fixed length of a well-formed value:
// "00-" + 32 hex + "-" + 16 hex + "-01".
const traceparentLen = 55

// InjectTrace stamps s's trace coordinates onto h as a traceparent
// header.  A nil span (tracing disabled, or no span on the context) is a
// no-op, so clients inject unconditionally.
func InjectTrace(h http.Header, s *ReqSpan) {
	if s == nil || s.trace == 0 || s.id == 0 {
		return
	}
	buf := make([]byte, 0, traceparentLen)
	buf = append(buf, "00-0000000000000000"...)
	buf = appendHex16(buf, uint64(s.trace))
	buf = append(buf, '-')
	buf = appendHex16(buf, uint64(s.id))
	buf = append(buf, "-01"...)
	h.Set(TraceparentHeader, string(buf))
}

// ExtractTrace parses the traceparent header on h, returning the remote
// trace and parent span IDs and whether a well-formed header was present.
// Malformed or all-zero values are ignored (ok=false), so a bad client
// header degrades to a fresh local root rather than an error.
func ExtractTrace(h http.Header) (TraceID, SpanID, bool) {
	v := h.Get(TraceparentHeader)
	if len(v) != traceparentLen || v[0:3] != "00-" || v[35] != '-' || v[52] != '-' {
		return 0, 0, false
	}
	// Only the low 64 bits of the 128-bit trace field are ours; a foreign
	// high half would not round-trip, so reject it.
	if v[3:19] != "0000000000000000" {
		return 0, 0, false
	}
	trace, err := strconv.ParseUint(v[19:35], 16, 64)
	if err != nil {
		return 0, 0, false
	}
	parent, err := strconv.ParseUint(v[36:52], 16, 64)
	if err != nil {
		return 0, 0, false
	}
	if trace == 0 || parent == 0 {
		return 0, 0, false
	}
	return TraceID(trace), SpanID(parent), true
}

// appendHex16 appends v as exactly 16 lowercase hex digits.
func appendHex16(dst []byte, v uint64) []byte {
	var tmp [16]byte
	b := strconv.AppendUint(tmp[:0], v, 16)
	for i := len(b); i < 16; i++ {
		dst = append(dst, '0')
	}
	return append(dst, b...)
}
