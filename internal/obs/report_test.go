package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func validReport() *Report {
	return &Report{
		Tool:         "srdatrain",
		Phases:       []Phase{{Name: "responses", Seconds: 0.01}, {Name: "lsqr", Seconds: 0.5}},
		TotalSeconds: 0.6,
		Solver: &SolverStats{
			Strategy:   "lsqr",
			TotalIters: 25,
			IterCounts: []int{10, 15},
			Residuals:  []float64{0.1, 0.2},
		},
		Data: map[string]float64{"samples": 100},
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	if err := validReport().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ValidateReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tool != "srdatrain" || len(r.Phases) != 2 || r.Solver.TotalIters != 25 {
		t.Fatalf("round-trip mismatch: %+v", r)
	}
}

func TestValidateReportRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		errSub string
	}{
		{"no tool", func(r *Report) { r.Tool = "" }, "missing tool"},
		{"no phases", func(r *Report) { r.Phases = nil }, "no phases"},
		{"unnamed phase", func(r *Report) { r.Phases[0].Name = "" }, "has no name"},
		{"negative seconds", func(r *Report) { r.Phases[0].Seconds = -1 }, "invalid seconds"},
		{"negative total", func(r *Report) { r.TotalSeconds = -1 }, "total_seconds"},
		{"strategy missing", func(r *Report) { r.Solver.Strategy = "" }, "missing strategy"},
		{"length mismatch", func(r *Report) { r.Solver.Residuals = r.Solver.Residuals[:1] }, "residuals"},
		{"iters mismatch", func(r *Report) { r.Solver.TotalIters = 7 }, "sum to"},
		{"negative iter", func(r *Report) { r.Solver.IterCounts[0] = -1; r.Solver.TotalIters = 14 }, "negative iteration"},
		{"negative residual", func(r *Report) { r.Solver.Residuals[0] = -0.5 }, "invalid residual"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := validReport()
			tc.mutate(r)
			data, err := json.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ValidateReport(data); err == nil || !strings.Contains(err.Error(), tc.errSub) {
				t.Fatalf("want error containing %q, got %v", tc.errSub, err)
			}
		})
	}
}

func TestValidateReportRejectsUnknownFields(t *testing.T) {
	if _, err := ValidateReport([]byte(`{"tool":"x","phases":[{"name":"a","seconds":1}],"bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ValidateReport([]byte(`not json`)); err == nil {
		t.Fatal("non-JSON accepted")
	}
}

func TestWriteFileRefusesInvalidReport(t *testing.T) {
	r := validReport()
	r.Tool = ""
	if err := r.WriteFile(filepath.Join(t.TempDir(), "r.json")); err == nil {
		t.Fatal("invalid report written")
	}
}

func TestAddTraceAggregates(t *testing.T) {
	clk := struct {
		mu  sync.Mutex
		now time.Time
	}{now: time.Unix(0, 0)}
	tr := NewTraceClock(func() time.Time {
		clk.mu.Lock()
		defer clk.mu.Unlock()
		clk.now = clk.now.Add(time.Second)
		return clk.now
	})
	a := tr.Start("responses")
	a.End()
	for i := 0; i < 2; i++ {
		sp := tr.Start("lsqr")
		sp.End()
	}
	var r Report
	r.AddTrace(tr)
	if len(r.Phases) != 2 {
		t.Fatalf("got %d phases, want 2 (aggregated)", len(r.Phases))
	}
	if r.Phases[0].Name != "responses" || r.Phases[0].Seconds != 1 {
		t.Fatalf("phase 0 = %+v", r.Phases[0])
	}
	if r.Phases[1].Name != "lsqr" || r.Phases[1].Seconds != 2 {
		t.Fatalf("phase 1 = %+v (want two 1s spans summed)", r.Phases[1])
	}
}

func TestStartProfilesWritesFiles(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "p")
	tracePath := filepath.Join(dir, "t.trace")
	stop, err := StartProfiles(prefix, tracePath)
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the profiles are non-trivial.
	x := 0.0
	for i := 0; i < 1000; i++ {
		x += float64(i)
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{prefix + ".cpu.pprof", prefix + ".heap.pprof", tracePath} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("profile artifact %s missing or empty: %v", p, err)
		}
	}
	// Both empty: stop is a no-op.
	stop, err = StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
