// Package obs is the repository's unified observability layer: a
// dependency-free metrics registry with Prometheus text exposition,
// lightweight span tracing for the training pipeline, and helpers for
// CPU/heap profiling, runtime tracing, and structured JSON run reports.
//
// The package exists to make the paper's per-stage cost claims
// observable end to end.  Three design rules keep it compatible with the
// kernel determinism contract enforced by srdalint (doc/LINTING.md):
//
//   - obs is the sole sanctioned clock owner.  Numeric packages never
//     call time.Now themselves (the noclock analyzer bans it); they
//     record into a caller-provided *Trace whose clock was injected by
//     the CLI or test that owns the run.  internal/pool measures its
//     queue-wait through Stamp for the same reason.
//   - Instruments are wait-free on the hot path: counters and histogram
//     observations are single atomic operations, so instrumenting a
//     kernel call-site never serializes the worker pool.
//   - Exposition is deterministic: metrics render in registration order
//     and vector labels render in sorted order, so /metrics output is
//     reproducible and golden-testable (internal/serve pins its
//     pre-migration byte format that way).
//
// Two registries exist in practice: Default() collects process-wide
// instruments (the worker pool's), while subsystems that need isolation
// (one serve.Server per test, say) create their own via NewRegistry and
// expose both.  See doc/OBSERVABILITY.md for the full model.
package obs
