package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// TestExemplarWindowMax: the store keeps the slowest traced observation
// per window and rolls completed windows forward.
func TestExemplarWindowMax(t *testing.T) {
	e := NewExemplarStore(4, 0)
	e.Observe("lat", 0.010, 101)
	e.Observe("lat", 0.050, 102)
	e.Observe("lat", 0.020, 103)

	snap := e.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d exemplars, want 1", len(snap))
	}
	ex := snap[0]
	if ex.Kind != "window_max" || ex.Metric != "lat" || ex.Value != 0.050 || ex.TraceID != FormatTraceID(102) {
		t.Fatalf("exemplar = %+v", ex)
	}

	// Complete the window; the max survives as last-window max even when
	// the next window opens slower.
	e.Observe("lat", 0.001, 104)
	e.Observe("lat", 0.002, 105)
	snap = e.Snapshot()
	if snap[0].TraceID != FormatTraceID(102) {
		t.Fatalf("completed-window max lost: %+v", snap[0])
	}
}

// TestExemplarSLOBreach: the first over-SLO observation of a window is
// kept, later breaches in the same window are not.
func TestExemplarSLOBreach(t *testing.T) {
	e := NewExemplarStore(8, 0.100)
	e.Observe("lat", 0.050, 201)
	e.Observe("lat", 0.150, 202) // first breach
	e.Observe("lat", 0.300, 203) // bigger, but not first

	var breach *Exemplar
	for _, ex := range e.Snapshot() {
		if ex.Kind == "slo_breach" {
			b := ex
			breach = &b
		}
	}
	if breach == nil {
		t.Fatal("no slo_breach exemplar")
	}
	if breach.Value != 0.150 || breach.TraceID != FormatTraceID(202) {
		t.Fatalf("breach = %+v, want the first over-SLO observation", breach)
	}
}

// TestExemplarSkipsUntracedAndNil: trace 0 and a nil store are no-ops.
func TestExemplarSkipsUntracedAndNil(t *testing.T) {
	e := NewExemplarStore(4, 0)
	e.Observe("lat", 9.0, 0)
	if snap := e.Snapshot(); len(snap) != 0 {
		t.Fatalf("untraced observation produced exemplars: %+v", snap)
	}
	var nilStore *ExemplarStore
	nilStore.Observe("lat", 1.0, 1)
	if nilStore.Snapshot() != nil {
		t.Fatal("nil store has state")
	}
}

// TestExemplarHandler serves the snapshot as a JSON array, deterministic
// order by metric name.
func TestExemplarHandler(t *testing.T) {
	e := NewExemplarStore(4, 0)
	e.Observe("zeta", 2.0, 301)
	e.Observe("alpha", 1.0, 302)

	rr := httptest.NewRecorder()
	e.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/exemplars", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var got []Exemplar
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rr.Body.String())
	}
	if len(got) != 2 || got[0].Metric != "alpha" || got[1].Metric != "zeta" {
		t.Fatalf("snapshot order: %+v", got)
	}
}

// TestTracedInstruments: Histogram.ObserveTraced and
// QuantileSketch.ObserveTraced feed both the instrument and the store.
func TestTracedInstruments(t *testing.T) {
	reg := NewRegistry()
	e := NewExemplarStore(8, 0)
	h := reg.NewHistogram("lat_hist", "h", []float64{0.1, 1})
	h.AttachExemplars(e)
	h.ObserveTraced(0.5, 401)
	if h.Count() != 1 {
		t.Fatal("histogram missed the observation")
	}
	q := NewQuantileSketch()
	q.AttachExemplars("lat_sketch", e)
	q.ObserveTraced(0.25, 402)
	if q.Count() != 1 {
		t.Fatal("sketch missed the observation")
	}
	snap := e.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("store holds %d exemplars, want 2: %+v", len(snap), snap)
	}
	if snap[0].Metric != "lat_hist" || snap[1].Metric != "lat_sketch" {
		t.Fatalf("metrics: %+v", snap)
	}
}

// TestGaugeVecFunc pins the labeled gauge-family exposition format.
func TestGaugeVecFunc(t *testing.T) {
	reg := NewRegistry()
	reg.NewGaugeVecFunc("tenant_lat", "per-tenant latency", []string{"tenant", "quantile"}, func() []GaugeSample {
		return []GaugeSample{
			{Labels: []string{"acme", "p99"}, Value: 0.25},
			{Labels: []string{"bravo", "p99"}, Value: 0.5},
			{Labels: []string{"bad"}}, // wrong arity: dropped
		}
	})
	var sb []byte
	buf := &testWriter{buf: sb}
	reg.WritePrometheus(buf)
	want := "# HELP tenant_lat per-tenant latency\n" +
		"# TYPE tenant_lat gauge\n" +
		"tenant_lat{tenant=\"acme\",quantile=\"p99\"} 0.25\n" +
		"tenant_lat{tenant=\"bravo\",quantile=\"p99\"} 0.5\n"
	if string(buf.buf) != want {
		t.Fatalf("exposition:\n--- got ---\n%s--- want ---\n%s", buf.buf, want)
	}
}

type testWriter struct{ buf []byte }

func (w *testWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}
