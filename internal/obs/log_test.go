package obs

import (
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestLoggerDeterministicOutput(t *testing.T) {
	clk := &fakeClock{now: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC), step: time.Second}
	var sb strings.Builder
	l := NewLoggerClock(&sb, slog.LevelInfo, false, clk.read)
	l.Info("model loaded", "classes", 3, "dims", 16)
	const want = "time=2026-01-02T03:04:06.000Z level=INFO msg=\"model loaded\" classes=3 dims=16\n"
	if sb.String() != want {
		t.Fatalf("got %q\nwant %q", sb.String(), want)
	}
}

func TestLoggerJSONIncludesAttrs(t *testing.T) {
	clk := &fakeClock{now: time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC), step: time.Second}
	var sb strings.Builder
	l := NewLoggerClock(&sb, slog.LevelInfo, true, clk.read)
	l.With("component", "serve").Warn("queue full", "dropped", 7)
	out := sb.String()
	for _, frag := range []string{`"level":"WARN"`, `"msg":"queue full"`, `"component":"serve"`, `"dropped":7`} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %s: %s", frag, out)
		}
	}
}

func TestLoggerLevelControl(t *testing.T) {
	var sb strings.Builder
	l := NewLoggerClock(&sb, slog.LevelInfo, false, (&fakeClock{now: time.Unix(0, 0).UTC(), step: time.Second}).read)
	l.Debug("hidden")
	if sb.Len() != 0 {
		t.Fatalf("debug logged at info level: %q", sb.String())
	}
	l.SetLevel(slog.LevelDebug)
	l.Debug("visible")
	if !strings.Contains(sb.String(), "visible") {
		t.Fatalf("debug suppressed after SetLevel(debug): %q", sb.String())
	}
	// Children share the parent's level var.
	child := l.With("k", "v")
	child.SetLevel(slog.LevelError)
	sb.Reset()
	l.Info("also hidden")
	if sb.Len() != 0 {
		t.Fatalf("parent ignored child's SetLevel: %q", sb.String())
	}
}

func TestLoggerWithTrace(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0).UTC(), step: time.Second}
	tr := NewTracerClock(8, clk.read)
	ctx, sp := tr.StartRoot(context.Background(), "request")
	defer sp.End()

	var sb strings.Builder
	l := NewLoggerClock(&sb, slog.LevelInfo, false, clk.read)
	l.WithTrace(ctx).Info("handling")
	out := sb.String()
	if !strings.Contains(out, "trace_id=t0000000000000001") || !strings.Contains(out, "span_id=1") {
		t.Fatalf("trace correlation missing: %q", out)
	}
	// Without a span in ctx, WithTrace is the identity.
	if l.WithTrace(context.Background()) != l {
		t.Fatal("WithTrace without a span should return the receiver")
	}
}

func TestLoggerSample(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0).UTC(), step: 100 * time.Millisecond}
	var sb strings.Builder
	l := NewLoggerClock(&sb, slog.LevelInfo, false, clk.read)

	emitted := 0
	for i := 0; i < 25; i++ { // clock steps 100ms per call: 2.5s of bursts
		if s := l.Sample("burst", time.Second); s != nil {
			s.Warn("overflow")
			emitted++
		}
	}
	if emitted < 2 || emitted > 4 {
		t.Fatalf("sampled %d lines over 2.5s at 1/s, want 2-4:\n%s", emitted, sb.String())
	}
	if !strings.Contains(sb.String(), "suppressed=") {
		t.Fatalf("no suppressed count surfaced:\n%s", sb.String())
	}
	// Distinct keys sample independently.
	if l.Sample("other", time.Second) == nil {
		t.Fatal("fresh key was suppressed")
	}
}

func TestLoggerNilNoOps(t *testing.T) {
	var l *Logger
	l.Info("nothing")
	l.Error("nothing")
	l.SetLevel(slog.LevelDebug)
	if l.Level() != slog.LevelInfo {
		t.Fatalf("nil Level = %v", l.Level())
	}
	if l.With("k", "v") != nil || l.WithTrace(context.Background()) != nil || l.Sample("k", time.Second) != nil {
		t.Fatal("nil derivations must stay nil")
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}
