package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// StartProfiles enables the requested diagnostics and returns a stop
// function that must run before process exit (a deferred call in main).
//
// profilePrefix, when non-empty, starts CPU profiling into
// <prefix>.cpu.pprof and, at stop time, snapshots the heap (after a GC,
// so the profile shows live objects) into <prefix>.heap.pprof.
// tracePath, when non-empty, streams a runtime/trace there — the
// scheduler-level view that shows how kernel spans land on the worker
// pool.  Either argument may be empty; with both empty the returned stop
// is a cheap no-op.
func StartProfiles(profilePrefix, tracePath string) (stop func() error, err error) {
	var cpuFile, traceFile *os.File
	cleanup := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			_ = cpuFile.Close() // failure path: the original error is the one to report
		}
		if traceFile != nil {
			trace.Stop()
			_ = traceFile.Close() // failure path: the original error is the one to report
		}
	}
	if profilePrefix != "" {
		cpuFile, err = os.Create(profilePrefix + ".cpu.pprof")
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			_ = cpuFile.Close() // failure path: the start error is the one to report
			return nil, err
		}
	}
	if tracePath != "" {
		traceFile, err = os.Create(tracePath)
		if err != nil {
			cleanup()
			return nil, err
		}
		if err := trace.Start(traceFile); err != nil {
			cleanup()
			return nil, err
		}
	}
	prefix := profilePrefix
	return func() error {
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = err
			}
			if err := writeHeapProfile(prefix + ".heap.pprof"); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if traceFile != nil {
			trace.Stop()
			if err := traceFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}, nil
}

// writeHeapProfile snapshots live heap objects to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC() // up-to-date live-object statistics
	if err := pprof.WriteHeapProfile(f); err != nil {
		_ = f.Close() // failure path: the profile error is the one to report
		return fmt.Errorf("obs: heap profile: %w", err)
	}
	return f.Close()
}
