package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestQuantileSketchRankBound drives seeded streams through the sketch
// and asserts the CKMS guarantee: Query(q) returns an observed value
// whose rank lies within (q±ε)·n of the exact sorted quantile.
func TestQuantileSketchRankBound(t *testing.T) {
	dists := []struct {
		name string
		gen  func(r *rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() }},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() }},
		{"lognormal", func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()) }},
	}
	const n = 20000
	for _, d := range dists {
		t.Run(d.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			s := NewQuantileSketch()
			vals := make([]float64, n)
			for i := range vals {
				v := d.gen(r)
				vals[i] = v
				s.Observe(v)
			}
			if s.Count() != n {
				t.Fatalf("Count = %d, want %d", s.Count(), n)
			}
			sort.Float64s(vals)
			for _, tgt := range DefaultLatencyTargets() {
				got := s.Query(tgt.Q)
				// The returned value must have been observed...
				lo := sort.SearchFloat64s(vals, got)
				if lo == n || vals[lo] != got {
					t.Fatalf("q=%v: %v was never observed", tgt.Q, got)
				}
				// ...and its rank window must intersect (q±ε)·n.
				hi := sort.Search(n, func(i int) bool { return vals[i] > got })
				minRank := float64(lo + 1)
				maxRank := float64(hi)
				wantLo := (tgt.Q - tgt.Eps) * n
				wantHi := (tgt.Q + tgt.Eps) * n
				if maxRank < wantLo || minRank > wantHi {
					t.Errorf("q=%v eps=%v: value %v spans ranks [%v, %v], want within [%v, %v]",
						tgt.Q, tgt.Eps, got, minRank, maxRank, wantLo, wantHi)
				}
			}
		})
	}
}

// TestQuantileSketchCompresses checks that memory stays sublinear in the
// stream: 200k observations must not retain anywhere near 200k samples.
func TestQuantileSketchCompresses(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := NewQuantileSketch()
	const n = 200000
	for i := 0; i < n; i++ {
		s.Observe(r.Float64())
	}
	s.mu.Lock()
	s.flush()
	kept := len(s.samples)
	s.mu.Unlock()
	if kept > n/20 {
		t.Fatalf("sketch kept %d of %d samples; compression is not working", kept, n)
	}
}

func TestQuantileSketchEmpty(t *testing.T) {
	s := NewQuantileSketch()
	if !math.IsNaN(s.Query(0.5)) {
		t.Fatalf("Query on empty sketch = %v, want NaN", s.Query(0.5))
	}
	if s.Count() != 0 {
		t.Fatalf("Count = %d, want 0", s.Count())
	}
}

// TestQuantileSketchTwoValues pins the exact behavior the serving
// /metrics golden depends on: the two dyadic latencies the golden test
// feeds yield p50 = first value, p95 = p99 = second value.
func TestQuantileSketchTwoValues(t *testing.T) {
	s := NewQuantileSketch()
	s.Observe(0.001953125)
	s.Observe(0.25)
	if got := s.Query(0.5); got != 0.001953125 {
		t.Errorf("Query(0.5) = %v, want 0.001953125", got)
	}
	if got := s.Query(0.95); got != 0.25 {
		t.Errorf("Query(0.95) = %v, want 0.25", got)
	}
	if got := s.Query(0.99); got != 0.25 {
		t.Errorf("Query(0.99) = %v, want 0.25", got)
	}
}

func TestQuantileSketchConcurrent(t *testing.T) {
	s := NewQuantileSketch()
	done := make(chan struct{})
	go func() {
		defer close(done)
		r := rand.New(rand.NewSource(1))
		for i := 0; i < 5000; i++ {
			s.Observe(r.Float64())
		}
	}()
	for i := 0; i < 100; i++ {
		s.Query(0.5) // must not race with Observe
	}
	<-done
	if s.Count() != 5000 {
		t.Fatalf("Count = %d, want 5000", s.Count())
	}
}
