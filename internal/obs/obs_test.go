package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c_total", "A counter.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.NewGauge("g", "A gauge.")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
	r.NewGaugeFunc("gf", "A sampled gauge.", func() int64 { return 42 })

	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := "# HELP c_total A counter.\n# TYPE c_total counter\nc_total 5\n" +
		"# HELP g A gauge.\n# TYPE g gauge\ng 5\n" +
		"# HELP gf A sampled gauge.\n# TYPE gf gauge\ngf 42\n"
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n got %q\nwant %q", sb.String(), want)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name did not panic")
		}
	}()
	r.NewGauge("dup", "second")
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("req_total", "Requests.", "endpoint", "code")
	v.With("/b", "200").Inc()
	v.With("/a", "500").Add(2)
	v.With("/a", "200").Inc()
	if got := v.Value("/a", "500"); got != 2 {
		t.Fatalf("Value(/a,500) = %d, want 2", got)
	}
	if got := v.Value("/missing", "0"); got != 0 {
		t.Fatalf("absent label value = %d, want 0", got)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	// Entries render sorted by label tuple regardless of creation order.
	want := "# HELP req_total Requests.\n# TYPE req_total counter\n" +
		`req_total{endpoint="/a",code="200"} 1` + "\n" +
		`req_total{endpoint="/a",code="500"} 2` + "\n" +
		`req_total{endpoint="/b",code="200"} 1` + "\n"
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n got %q\nwant %q", sb.String(), want)
	}
}

func TestCounterVecArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("v_total", "help", "one")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	v.With("a", "b")
}

// TestHistogramBuckets pins the bucket-assignment and cumulative-le
// semantics: a value exactly on a bound lands in that bound's bucket
// (le is inclusive), and rendered buckets are cumulative.
func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 1.0, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-106.65) > 1e-9 {
		t.Fatalf("sum = %g, want 106.65", h.Sum())
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := "# HELP lat Latency.\n# TYPE lat histogram\n" +
		`lat_bucket{le="0.1"} 2` + "\n" + // 0.05 and the exactly-0.1 value
		`lat_bucket{le="1"} 4` + "\n" +
		`lat_bucket{le="10"} 5` + "\n" +
		`lat_bucket{le="+Inf"} 6` + "\n" +
		"lat_sum 106.65\nlat_count 6\n"
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n got %q\nwant %q", sb.String(), want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q", "help", []float64{1, 2, 4})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile is not NaN")
	}
	// 10 observations in (1,2]: the median interpolates inside that bucket.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
	}
	got := h.Quantile(0.5)
	if got < 1 || got > 2 {
		t.Fatalf("median %g outside the (1,2] bucket", got)
	}
	if math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("median = %g, want 1.5 (linear interpolation at rank 5 of 10)", got)
	}
	// Values past the last bound report the largest finite bound.
	h2 := r.NewHistogram("q2", "help", []float64{1, 2, 4})
	h2.Observe(100)
	if got := h2.Quantile(0.99); got != 4 {
		t.Fatalf("overflow quantile = %g, want 4", got)
	}
}

func TestHistogramAscendingBoundsEnforced(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	r.NewHistogram("bad", "help", []float64{1, 1})
}

// TestConcurrentObserve hammers one histogram and one counter vec from
// many goroutines; run under -race this checks the lock discipline, and
// the final counts check that no observation is lost.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("conc", "help", []float64{0.5, 1.5, 2.5})
	v := r.NewCounterVec("conc_total", "help", "worker")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			label := string(rune('a' + w))
			for i := 0; i < per; i++ {
				h.Observe(float64(i%3) + 0.25)
				v.With(label).Inc()
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	total := int64(0)
	for w := 0; w < workers; w++ {
		total += v.Value(string(rune('a' + w)))
	}
	if total != workers*per {
		t.Fatalf("vec total = %d, want %d", total, workers*per)
	}
}
