package obs

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// TestInjectExtractRoundTrip pins the traceparent wire format and the
// round trip through it, including epoch-namespaced (high-bit) IDs.
func TestInjectExtractRoundTrip(t *testing.T) {
	tr := NewTracerSeeded(16, 42, (&fakeClock{now: time.Unix(0, 0), step: time.Millisecond}).read)
	_, sp := tr.StartRoot(context.Background(), "route")

	h := http.Header{}
	InjectTrace(h, sp)
	v := h.Get(TraceparentHeader)
	if len(v) != traceparentLen {
		t.Fatalf("header %q has length %d, want %d", v, len(v), traceparentLen)
	}
	if v[:3] != "00-" || v[52:] != "-01" {
		t.Fatalf("header %q lacks version/flags framing", v)
	}
	trace, parent, ok := ExtractTrace(h)
	if !ok {
		t.Fatalf("round trip failed for %q", v)
	}
	if trace != sp.TraceID() || parent != sp.SpanID() {
		t.Fatalf("extracted (%d,%d), want (%d,%d)", trace, parent, sp.TraceID(), sp.SpanID())
	}
}

// TestInjectNilSpanIsNoOp: clients inject unconditionally, so a nil span
// must leave the header set untouched.
func TestInjectNilSpanIsNoOp(t *testing.T) {
	h := http.Header{}
	InjectTrace(h, nil)
	if got := h.Get(TraceparentHeader); got != "" {
		t.Fatalf("nil span injected %q", got)
	}
}

// TestExtractRejectsMalformed: bad values degrade to (0,0,false) — a
// fresh local root — never an error.
func TestExtractRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"00-zz",
		"00-00000000000000000000000000000001-0000000000000001-01x", // too long
		"01-00000000000000000000000000000001-0000000000000001-01",  // bad version
		"00-00000000000000000000000000000000-0000000000000001-01",  // zero trace
		"00-00000000000000000000000000000001-0000000000000000-01",  // zero parent
		"00-00000000000000000000000000000001_0000000000000001-01",  // bad dash
		"00-0000000000000001000000000000beef-0000000000000001-01",  // foreign high half
		"00-000000000000000000000000000000zz-0000000000000001-01",  // bad hex
		"00-00000000000000000000000000000001-00000000000000zz-01",  // bad hex parent
	}
	for _, v := range cases {
		h := http.Header{}
		if v != "" {
			h.Set(TraceparentHeader, v)
		}
		if trace, parent, ok := ExtractTrace(h); ok {
			t.Errorf("ExtractTrace accepted %q as (%d,%d)", v, trace, parent)
		}
	}
}

// TestExtractAcceptsWellFormed pins the exact header bytes for a known
// pair, so the format cannot drift from what InjectTrace writes.
func TestExtractAcceptsWellFormed(t *testing.T) {
	h := http.Header{}
	h.Set(TraceparentHeader, "00-0000000000000000deadbeef00000001-00000000000000a1-01")
	trace, parent, ok := ExtractTrace(h)
	if !ok || trace != 0xdeadbeef00000001 || parent != 0xa1 {
		t.Fatalf("got (%#x,%#x,%v)", uint64(trace), uint64(parent), ok)
	}
}
