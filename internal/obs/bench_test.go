package obs

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func validBench() *BenchReport {
	return &BenchReport{
		Tool:   "srdabench",
		Schema: BenchSchemaVersion,
		Results: []BenchResult{
			{Name: "FitLSQR/2000x400", Iters: 5, NsPerOp: 1.5e6},
			{Name: "ParGemm/256x512x64", Iters: 20, NsPerOp: 8e5},
			{Name: "PredictBatch/64x800", Iters: 50, NsPerOp: 2e5},
		},
		Params: map[string]float64{"seed": 1, "workers": 4},
	}
}

func TestBenchRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_0.json")
	b := validBench()
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != 3 || got.Results[2].Name != "PredictBatch/64x800" || got.Params["workers"] != 4 {
		t.Fatalf("round trip mangled report: %+v", got)
	}
}

func TestBenchValidation(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(b *BenchReport)
		wantErr string
	}{
		{"missing tool", func(b *BenchReport) { b.Tool = "" }, "missing tool"},
		{"wrong schema", func(b *BenchReport) { b.Schema = 99 }, "schema 99"},
		{"no results", func(b *BenchReport) { b.Results = nil }, "no results"},
		{"unnamed result", func(b *BenchReport) { b.Results[1].Name = "" }, "no name"},
		{"duplicate name", func(b *BenchReport) { b.Results[1].Name = b.Results[0].Name }, "duplicate"},
		{"zero iters", func(b *BenchReport) { b.Results[0].Iters = 0 }, "non-positive iters"},
		{"negative ns", func(b *BenchReport) { b.Results[0].NsPerOp = -1 }, "invalid ns_per_op"},
		{"nan ns", func(b *BenchReport) { b.Results[0].NsPerOp = math.NaN() }, "invalid ns_per_op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := validBench()
			tc.mutate(b)
			err := ValidateBenchStruct(b)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
			}
			if err := b.WriteFile(filepath.Join(t.TempDir(), "x.json")); err == nil {
				t.Fatal("WriteFile accepted an invalid report")
			}
		})
	}
}

func TestBenchValidateRejectsUnknownFields(t *testing.T) {
	if _, err := ValidateBench([]byte(`{"tool":"srdabench","schema":1,"results":[{"name":"x","iters":1,"ns_per_op":1}],"extra":true}`)); err == nil {
		t.Fatal("unknown top-level field accepted")
	}
	if _, err := ValidateBench([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestDiffBench(t *testing.T) {
	old := validBench()
	cur := validBench()
	cur.Results[0].NsPerOp = old.Results[0].NsPerOp * 1.25     // regression
	cur.Results[1].NsPerOp = old.Results[1].NsPerOp * 0.5      // improvement
	cur.Results[2].NsPerOp = old.Results[2].NsPerOp * 1.05     // within tolerance
	cur.Results = append(cur.Results, BenchResult{Name: "Axpy/1e6", Iters: 3, NsPerOp: 1e3})
	old.Results = append(old.Results, BenchResult{Name: "Gone/1", Iters: 3, NsPerOp: 1e3})

	deltas := DiffBench(old, cur, 0.10)
	want := map[string]string{
		"Axpy/1e6":            "added",
		"FitLSQR/2000x400":    "regression",
		"Gone/1":              "removed",
		"ParGemm/256x512x64":  "improvement",
		"PredictBatch/64x800": "ok",
	}
	if len(deltas) != len(want) {
		t.Fatalf("got %d deltas, want %d: %+v", len(deltas), len(want), deltas)
	}
	for i, d := range deltas {
		if want[d.Name] != d.Status {
			t.Errorf("%s: status %q, want %q", d.Name, d.Status, want[d.Name])
		}
		if i > 0 && deltas[i-1].Name > d.Name {
			t.Errorf("deltas not sorted: %q before %q", deltas[i-1].Name, d.Name)
		}
		if d.Regressed() != (d.Status == "regression") {
			t.Errorf("%s: Regressed() inconsistent with status %q", d.Name, d.Status)
		}
	}
	reg := deltas[1]
	if reg.Name != "FitLSQR/2000x400" || math.Abs(reg.Ratio-1.25) > 1e-12 {
		t.Errorf("regression delta wrong: %+v", reg)
	}
}
