package obs

// Benchmark trajectory reports.  srdabench -json-out emits a BenchReport
// (ns/op for the fixed-shape micro-benchmarks: PredictBatch, ParGemm,
// FitLSQR), make bench-record pins it as BENCH_<k>.json, and
// `srdareport benchdiff old.json new.json` compares two reports and
// flags regressions beyond a tolerance.  The schema is validated the
// same way run reports are: unknown fields rejected, every result named,
// positive iteration counts, finite non-negative timings.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// BenchSchemaVersion is the current bench-report schema version.
const BenchSchemaVersion = 1

// BenchReport is the schema-validated product of srdabench -json-out.
type BenchReport struct {
	// Tool names the producer ("srdabench").
	Tool string `json:"tool"`
	// Schema is the report format version (BenchSchemaVersion).
	Schema int `json:"schema"`
	// Results are the individual benchmark measurements; names are unique.
	Results []BenchResult `json:"results"`
	// Params holds run parameters worth pinning (workers, seed).
	Params map[string]float64 `json:"params,omitempty"`
}

// BenchResult is one micro-benchmark measurement at a fixed shape/seed.
type BenchResult struct {
	// Name identifies the benchmark and its shape, e.g.
	// "PredictBatch/64x800".
	Name string `json:"name"`
	// Iters is the number of timed iterations.
	Iters int `json:"iters"`
	// NsPerOp is the measured nanoseconds per iteration.
	NsPerOp float64 `json:"ns_per_op"`
}

// WriteFile marshals the report as indented JSON to path, refusing to
// write a report that fails its own schema.
func (b *BenchReport) WriteFile(path string) error {
	if err := ValidateBenchStruct(b); err != nil {
		return fmt.Errorf("obs: refusing to write invalid bench report: %w", err)
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBenchFile loads and validates a bench report from path.
func ReadBenchFile(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ValidateBench(data)
}

// ValidateBench parses data as a BenchReport and checks the schema.
func ValidateBench(data []byte) (*BenchReport, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var b BenchReport
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("obs: bench report is not valid JSON for the schema: %w", err)
	}
	if err := ValidateBenchStruct(&b); err != nil {
		return nil, err
	}
	return &b, nil
}

// ValidateBenchStruct checks an in-memory bench report against the schema.
func ValidateBenchStruct(b *BenchReport) error {
	if b.Tool == "" {
		return fmt.Errorf("obs: bench report missing tool")
	}
	if b.Schema != BenchSchemaVersion {
		return fmt.Errorf("obs: bench report schema %d, this build understands %d", b.Schema, BenchSchemaVersion)
	}
	if len(b.Results) == 0 {
		return fmt.Errorf("obs: bench report has no results")
	}
	seen := make(map[string]bool, len(b.Results))
	for i, r := range b.Results {
		if r.Name == "" {
			return fmt.Errorf("obs: bench result %d has no name", i)
		}
		if seen[r.Name] {
			return fmt.Errorf("obs: duplicate bench result %q", r.Name)
		}
		seen[r.Name] = true
		if r.Iters <= 0 {
			return fmt.Errorf("obs: bench result %q has non-positive iters %d", r.Name, r.Iters)
		}
		if r.NsPerOp <= 0 || math.IsNaN(r.NsPerOp) || math.IsInf(r.NsPerOp, 0) {
			return fmt.Errorf("obs: bench result %q has invalid ns_per_op %v", r.Name, r.NsPerOp)
		}
	}
	return nil
}

// BenchDelta is the comparison of one benchmark between two reports.
type BenchDelta struct {
	Name string
	// OldNs/NewNs are ns/op in the respective reports; 0 when absent.
	OldNs, NewNs float64
	// Ratio is NewNs/OldNs when both sides are present.
	Ratio float64
	// Status is "ok", "regression", "improvement", "added", or "removed".
	Status string
}

// Regressed reports whether this delta is a flagged regression.
func (d BenchDelta) Regressed() bool { return d.Status == "regression" }

// DiffBench compares two bench reports result-by-result.  A benchmark
// whose new ns/op exceeds old by more than tolerance (e.g. 0.10 for 10%)
// is a regression; one faster by more than tolerance is an improvement.
// Results present on only one side are reported as added/removed, never
// as regressions.  Deltas return sorted by name.
func DiffBench(old, cur *BenchReport, tolerance float64) []BenchDelta {
	oldBy := make(map[string]BenchResult, len(old.Results))
	for _, r := range old.Results {
		oldBy[r.Name] = r
	}
	var deltas []BenchDelta
	for _, r := range cur.Results {
		o, ok := oldBy[r.Name]
		if !ok {
			deltas = append(deltas, BenchDelta{Name: r.Name, NewNs: r.NsPerOp, Status: "added"})
			continue
		}
		delete(oldBy, r.Name)
		d := BenchDelta{Name: r.Name, OldNs: o.NsPerOp, NewNs: r.NsPerOp, Ratio: r.NsPerOp / o.NsPerOp}
		switch {
		case d.Ratio > 1+tolerance:
			d.Status = "regression"
		case d.Ratio < 1-tolerance:
			d.Status = "improvement"
		default:
			d.Status = "ok"
		}
		deltas = append(deltas, d)
	}
	//srdalint:ignore maprange collect-then-sort: deltas are sorted by name immediately below
	for name, o := range oldBy {
		deltas = append(deltas, BenchDelta{Name: name, OldNs: o.NsPerOp, Status: "removed"})
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas
}
