package obs

// Stdlib-only parser for the Prometheus text exposition format (the
// version 0.0.4 format this package's Registry writes).  The telemetry
// plane is built on it twice over: the in-process sampler re-reads a
// registry's own exposition into time series, and the federation scraper
// in the router role parses every replica's /metrics before tagging and
// re-exposing the samples at /cluster/metrics.  Using one parser for
// both keeps "what we write" and "what we read" the same grammar, and
// the escaping round-trip test holds the writer to it.

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// PromLabel is one name="value" pair on a parsed sample.
type PromLabel struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// PromSample is one sample line.  Name is the full sample name, which
// for histograms differs from the family name (name_bucket, name_sum,
// name_count).
type PromSample struct {
	Name   string      `json:"name"`
	Labels []PromLabel `json:"labels,omitempty"`
	Value  float64     `json:"value"`
}

// PromFamily is one metric family: the # HELP / # TYPE header plus every
// sample line attributed to it.  Samples with no preceding header form a
// family with empty Help and Type "untyped".
type PromFamily struct {
	Name    string       `json:"name"`
	Help    string       `json:"help,omitempty"`
	Type    string       `json:"type"`
	Samples []PromSample `json:"samples"`
}

// EscapeLabelValue renders a label value the way the Prometheus text
// format requires: backslash, double quote, and newline are escaped and
// nothing else is.  fmt's %q is not a substitute — it also escapes tabs,
// control bytes, and non-ASCII runes into Go syntax a Prometheus parser
// reads as a literal backslash sequence, so a tenant named "café" or one
// containing a tab would round-trip wrong.
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

// UnescapeLabelValue reverses EscapeLabelValue.  Unknown escape
// sequences are an error: they mean the producer wrote a format this
// grammar does not define.
func UnescapeLabelValue(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			sb.WriteByte(s[i])
			continue
		}
		i++
		if i == len(s) {
			return "", fmt.Errorf("obs: label value ends mid-escape: %q", s)
		}
		switch s[i] {
		case '\\':
			sb.WriteByte('\\')
		case '"':
			sb.WriteByte('"')
		case 'n':
			sb.WriteByte('\n')
		default:
			return "", fmt.Errorf("obs: unknown escape \\%c in label value %q", s[i], s)
		}
	}
	return sb.String(), nil
}

// familyOf maps a sample name onto its family name: histogram children
// (_bucket, _sum, _count) belong to the base family when that family was
// declared as a histogram.
func familyOf(sample string, declared map[string]string) string {
	if declared[sample] != "" {
		return sample
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suf); ok && declared[base] == "histogram" {
			return base
		}
	}
	return sample
}

// ParsePrometheus parses one text exposition into its metric families,
// in document order.  Lines it cannot attribute to the grammar are an
// error — a scrape target speaking another format should fail loudly,
// not be half-ingested.  Optional trailing timestamps are accepted and
// ignored (this package's writer never emits them).
func ParsePrometheus(data []byte) ([]PromFamily, error) {
	var fams []PromFamily
	index := make(map[string]int)       // family name -> fams index
	declared := make(map[string]string) // family name -> type
	family := func(name string) *PromFamily {
		if i, ok := index[name]; ok {
			return &fams[i]
		}
		index[name] = len(fams)
		fams = append(fams, PromFamily{Name: name, Type: "untyped"})
		return &fams[len(fams)-1]
	}
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 {
				continue // free-form comment
			}
			switch fields[1] {
			case "HELP":
				f := family(fields[2])
				if len(fields) == 4 {
					f.Help = fields[3]
				}
			case "TYPE":
				if len(fields) < 4 {
					return nil, fmt.Errorf("obs: line %d: TYPE without a type: %q", ln+1, line)
				}
				f := family(fields[2])
				f.Type = fields[3]
				declared[fields[2]] = fields[3]
			}
			continue
		}
		sample, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: line %d: %w", ln+1, err)
		}
		f := family(familyOf(sample.Name, declared))
		f.Samples = append(f.Samples, sample)
	}
	return fams, nil
}

// parseSampleLine parses `name{l1="v1",l2="v2"} value [timestamp]`.
func parseSampleLine(line string) (PromSample, error) {
	var s PromSample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("sample line has no value: %q", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if s.Name == "" {
		return s, fmt.Errorf("sample line has no metric name: %q", line)
	}
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("%w in %q", err, line)
		}
		s.Labels = labels
		rest = tail
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("expected value [timestamp] after metric, got %q", strings.TrimSpace(rest))
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return s, fmt.Errorf("bad sample timestamp %q", fields[1])
		}
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a {name="value",...} block and returns the labels
// plus the remainder of the line.
func parseLabels(rest string) ([]PromLabel, string, error) {
	rest = rest[1:] // consume '{'
	var labels []PromLabel
	for {
		rest = strings.TrimLeft(rest, " \t")
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq <= 0 {
			return nil, "", fmt.Errorf("malformed label pair")
		}
		name := strings.TrimSpace(rest[:eq])
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, "", fmt.Errorf("label %s value is not quoted", name)
		}
		rest = rest[1:]
		// Scan for the closing quote, honoring backslash escapes.
		var raw strings.Builder
		i := 0
		for {
			if i >= len(rest) {
				return nil, "", fmt.Errorf("unterminated value for label %s", name)
			}
			if rest[i] == '\\' && i+1 < len(rest) {
				raw.WriteByte(rest[i])
				raw.WriteByte(rest[i+1])
				i += 2
				continue
			}
			if rest[i] == '"' {
				break
			}
			raw.WriteByte(rest[i])
			i++
		}
		val, err := UnescapeLabelValue(raw.String())
		if err != nil {
			return nil, "", err
		}
		labels = append(labels, PromLabel{Name: name, Value: val})
		rest = rest[i+1:]
		rest = strings.TrimLeft(rest, " \t")
		if len(rest) > 0 && rest[0] == ',' {
			rest = rest[1:]
		}
	}
}

// CanonicalSeriesKey renders name plus labels (sorted by label name,
// values escaped) in the exposition's own syntax — the stable identity
// the telemetry store keys series by.
func CanonicalSeriesKey(name string, labels []PromLabel) string {
	if len(labels) == 0 {
		return name
	}
	sorted := append([]PromLabel(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(EscapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}
