// Package online closes the train-while-serving loop: a streaming
// trainer that ingests labeled samples (dense or CSR) into the
// bounded-memory sufficient statistics of core.SuffStats, refits on
// configurable triggers, and atomically publishes each new model version
// into an internal/registry store so router/worker replicas pick it up
// with zero downtime.
//
// The paper's linear-time claim is what makes this affordable: one
// absorbed sample costs O(n²) (the rank-one Gram contribution), a refit
// costs O(n³) independent of how many samples have streamed through, and
// no past sample is ever revisited.
//
// Three triggers can arm a refit, in any combination (first one wins):
//
//   - sample count: every Policy.MinSamples absorbed samples;
//   - wall interval: Policy.Interval since the last refit, measured on
//     the injected obs.Clock (this package never reads package time —
//     the noclock contract);
//   - drift: the windowed class-mean shift score (see DriftScore)
//     crossing Policy.DriftThreshold.
//
// Equivalence contract: with no holdout diversion, a refit after
// streaming a dataset sample by sample in row order produces a model
// bitwise (math.Float64bits) identical to the batch srda.Fit primal fit
// on the same rows, at any Workers setting — core.FitStats is the single
// solve path both sides share.
//
// Publish → validate → rollback: each refit publishes its candidate
// first, then scores it on the held-out samples against the previous
// version; a regression beyond Policy.MaxRegression (or a Validate hook
// error) rolls the registry back.  Ordering it this way keeps every swap
// on the registry's one atomic publish path and makes rollbacks
// first-class, observable events (srdareg_rollbacks_total,
// srdaonline_rollbacks_total) rather than silent non-publishes; the
// blast radius is the in-flight requests of one validation interval, and
// in-flight batches never tear (they finish on the snapshot they
// loaded).
package online

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"srda/internal/core"
	"srda/internal/mat"
	"srda/internal/obs"
	"srda/internal/registry"
	"srda/internal/sparse"
)

// RefitPolicy configures when the trainer refits and how candidates are
// validated.  The zero value never refits on its own; Refit can always
// be called explicitly.
type RefitPolicy struct {
	// MinSamples triggers a refit every MinSamples absorbed samples
	// (0 disables the count trigger).
	MinSamples int
	// Interval triggers a refit when at least this much wall time has
	// passed since the last one, checked on each Observe against the
	// injected clock (0 disables; requires Config.Clock).
	Interval time.Duration
	// DriftThreshold triggers a refit when the windowed class-mean drift
	// score exceeds it (0 disables).  Drift is measured only after the
	// first refit establishes reference means.
	DriftThreshold float64
	// DriftWindow is the number of recent samples in the drift window
	// (default 256 when a drift threshold is set).
	DriftWindow int
	// HoldoutFrac diverts roughly this fraction of observed samples
	// (deterministically, every ⌊1/frac⌋-th) into a validation holdout
	// instead of the training statistics.  0 disables validation —
	// required for bitwise streaming↔batch equivalence, since held-out
	// samples never train.
	HoldoutFrac float64
	// MaxHoldout bounds retained holdout samples; past it the oldest are
	// dropped (default 512).
	MaxHoldout int
	// MaxRegression is the tolerated drop in holdout accuracy of a
	// candidate versus the live model before the publish is rolled back
	// (default 0.05).
	MaxRegression float64
}

func (p RefitPolicy) withDefaults() RefitPolicy {
	if p.DriftThreshold > 0 && p.DriftWindow <= 0 {
		p.DriftWindow = 256
	}
	if p.MaxHoldout <= 0 {
		p.MaxHoldout = 512
	}
	if p.MaxRegression <= 0 {
		p.MaxRegression = 0.05
	}
	return p
}

// Config configures a StreamTrainer.
type Config struct {
	// NumFeatures and NumClasses fix the stream's shape.
	NumFeatures, NumClasses int
	// Alpha is the ridge penalty of every refit (must be > 0: the
	// streaming Gram starts empty and only the ridge keeps it definite).
	Alpha float64
	// Workers bounds refit parallelism (0 = GOMAXPROCS); like everywhere
	// else it is purely a speed knob — models are bitwise identical at
	// any setting.
	Workers int
	// Policy selects refit triggers and validation.
	Policy RefitPolicy
	// Registry, when non-nil, receives every successful refit as a new
	// version of ModelName.  Nil runs the trainer standalone (benchmarks,
	// equivalence tests); Refit then just returns the fitted model.
	Registry *registry.Registry
	// ModelName is the registry name published to (default "default").
	ModelName string
	// Clock supplies the wall time for the Interval trigger; this package
	// never reads package time itself (noclock).  Required when
	// Policy.Interval > 0; obs.SystemClock() is the production value.
	Clock obs.Clock
	// Validate, when non-nil, vets each candidate after the built-in
	// holdout check; an error rolls the publish back.
	Validate func(*core.Model) error
	// Async runs refits on their own goroutine over a clone of the
	// statistics, so Observe never blocks on the O(n³) solve.  At most
	// one async refit is in flight; triggers that fire while one runs
	// are absorbed by the next.  Close waits for the last one.
	Async bool
	// Trace, when non-nil, receives the refit phase spans ("refit" around
	// each attempt, plus core's "responses"/"cholesky"/"xty"/"solve").
	Trace *obs.Trace
	// Logger receives refit/publish/rollback outcomes.  Nil disables.
	Logger *obs.Logger
	// Flight, when non-nil, is the process flight recorder: every refit
	// appends a numeric-health record (conditioning, holdout comparison,
	// outcome), a rollback fires the registry_rollback trigger, and a
	// failed solve or publish fires refit_validation.  Nil disables.
	Flight *obs.FlightRecorder
}

// holdoutSample is one diverted validation sample.
type holdoutSample struct {
	x     []float64
	label int
}

// StreamTrainer is the streaming trainer; construct with NewStreamTrainer.
// Observe/ObserveBatch/ObserveCSR are safe for concurrent use with each
// other and with the registry's readers.
type StreamTrainer struct {
	cfg    Config
	stride int // holdout diversion stride (0 = no holdout)

	mu         sync.Mutex
	stats      *core.SuffStats
	total      int64 // all observed samples, including holdout
	sinceRefit int
	lastRefit  time.Time
	hasRefit   bool
	holdout    []holdoutSample
	drift      *driftWindow
	model      *core.Model // last successfully fitted candidate
	version    uint64      // last published registry version (0 = none)

	refitting atomic.Bool // an async refit is in flight
	wg        sync.WaitGroup

	seen      atomic.Int64 // mirrors total for lock-free reads
	driftBits atomic.Uint64
	// Numeric health of the last refit, published as srdafit_* gauges:
	// Cholesky conditioning, and the holdout accuracies of the last
	// validated candidate versus the model it replaced.
	condBits     atomic.Uint64
	holdCandBits atomic.Uint64
	holdPrevBits atomic.Uint64
	mx           *metrics
}

// NewStreamTrainer validates cfg and returns an empty trainer.
func NewStreamTrainer(cfg Config) (*StreamTrainer, error) {
	if cfg.Alpha <= 0 {
		return nil, fmt.Errorf("online: streaming SRDA needs alpha > 0, got %v", cfg.Alpha)
	}
	cfg.Policy = cfg.Policy.withDefaults()
	if cfg.Policy.Interval > 0 && cfg.Clock == nil {
		return nil, fmt.Errorf("online: Policy.Interval needs an injected Clock (obs.SystemClock())")
	}
	if f := cfg.Policy.HoldoutFrac; f < 0 || f >= 1 {
		if f != 0 { //srdalint:ignore floatcmp exact zero disables the holdout; any other out-of-range value is an error
			return nil, fmt.Errorf("online: HoldoutFrac %v outside [0,1)", f)
		}
	}
	if cfg.ModelName == "" {
		cfg.ModelName = "default"
	}
	stats, err := core.NewSuffStats(cfg.NumFeatures, cfg.NumClasses)
	if err != nil {
		return nil, err
	}
	t := &StreamTrainer{cfg: cfg, stats: stats, mx: newMetrics()}
	if f := cfg.Policy.HoldoutFrac; f > 0 {
		t.stride = int(math.Floor(1 / f))
		if t.stride < 1 {
			t.stride = 1
		}
	}
	if cfg.Policy.DriftThreshold > 0 {
		t.drift = newDriftWindow(cfg.NumFeatures, cfg.NumClasses, cfg.Policy.DriftWindow)
	}
	if cfg.Clock != nil {
		t.lastRefit = cfg.Clock()
	}
	t.mx.bind(t)
	return t, nil
}

// Metrics returns the trainer's obs instrument set (srdaonline_*); the
// serving layer appends its exposition to /metrics.
func (t *StreamTrainer) Metrics() *obs.Registry { return t.mx.reg }

// Seen returns the number of observed samples (training + holdout).
func (t *StreamTrainer) Seen() int64 { return t.seen.Load() }

// Version returns the last registry version this trainer published
// (0 before the first publish or without a registry).
func (t *StreamTrainer) Version() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.version
}

// Model returns the last successfully fitted model (nil before the first
// refit).  The returned model is immutable by convention: refits build
// fresh models rather than mutating published ones.
func (t *StreamTrainer) Model() *core.Model {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.model
}

// CondEstimate returns the condition-number estimate of the last
// successful refit's normal equations (0 before the first refit) — the
// srdafit_cond_estimate gauge.
func (t *StreamTrainer) CondEstimate() float64 {
	return math.Float64frombits(t.condBits.Load())
}

// HoldoutAccuracies returns the holdout accuracy of the last validated
// candidate and of the model it was compared against (0,0 before the
// first validated refit) — the srdafit_holdout_accuracy and
// srdafit_prev_accuracy gauges.
func (t *StreamTrainer) HoldoutAccuracies() (candidate, previous float64) {
	return math.Float64frombits(t.holdCandBits.Load()), math.Float64frombits(t.holdPrevBits.Load())
}

// DriftScore returns the current windowed class-mean drift score: the
// maximum over classes of ‖windowMean_c − refMean_c‖ / (‖refMean_c‖+1),
// where the reference means are the cumulative class means captured at
// the last refit.  0 until both a refit and window samples exist.
func (t *StreamTrainer) DriftScore() float64 {
	return math.Float64frombits(t.driftBits.Load())
}

// Observe absorbs one dense labeled sample and refits when a trigger
// fires.  In sync mode the refit (publish, validation, rollback) happens
// before Observe returns; in async mode it is handed to a background
// goroutine and Observe returns immediately.
func (t *StreamTrainer) Observe(x []float64, label int) error {
	return t.ObserveCtx(context.Background(), x, label)
}

// ObserveCtx is Observe carrying trace context: when the sample trips a
// refit trigger, the refit runs under a "refit" child of whatever request
// span ctx holds, so a cross-process trace shows which /v1/observe call
// paid for the solve.
func (t *StreamTrainer) ObserveCtx(ctx context.Context, x []float64, label int) error {
	return t.observe(ctx, func(s *core.SuffStats) error { return s.Absorb(x, label) }, x, nil, nil, label)
}

// ObserveSparse absorbs one CSR-form sample; the statistics are bitwise
// identical to Observe on the densified row.
func (t *StreamTrainer) ObserveSparse(cols []int, vals []float64, label int) error {
	return t.ObserveSparseCtx(context.Background(), cols, vals, label)
}

// ObserveSparseCtx is ObserveSparse carrying trace context, like
// ObserveCtx.
func (t *StreamTrainer) ObserveSparseCtx(ctx context.Context, cols []int, vals []float64, label int) error {
	return t.observe(ctx, func(s *core.SuffStats) error { return s.AbsorbSparse(cols, vals, label) }, nil, cols, vals, label)
}

// ObserveBatch absorbs every row of x in order — equivalent to calling
// Observe per row (triggers can fire mid-batch).  It stops at the first
// invalid sample.
func (t *StreamTrainer) ObserveBatch(x *mat.Dense, labels []int) error {
	if x.Rows != len(labels) {
		return fmt.Errorf("online: %d rows but %d labels", x.Rows, len(labels))
	}
	for i := 0; i < x.Rows; i++ {
		if err := t.Observe(x.RowView(i), labels[i]); err != nil {
			return fmt.Errorf("online: batch row %d: %w", i, err)
		}
	}
	return nil
}

// ObserveCSR absorbs every row of x in order, like ObserveBatch for
// sparse data; the statistics match the densified stream bitwise.
func (t *StreamTrainer) ObserveCSR(x *sparse.CSR, labels []int) error {
	if x.Rows != len(labels) {
		return fmt.Errorf("online: %d rows but %d labels", x.Rows, len(labels))
	}
	for i := 0; i < x.Rows; i++ {
		cols, vals := x.Row(i)
		if err := t.ObserveSparse(cols, vals, labels[i]); err != nil {
			return fmt.Errorf("online: batch row %d: %w", i, err)
		}
	}
	return nil
}

// observe is the shared ingestion path: divert to holdout or absorb,
// update the drift window, then evaluate triggers.
func (t *StreamTrainer) observe(ctx context.Context, absorb func(*core.SuffStats) error, dense []float64, cols []int, vals []float64, label int) error {
	t.mu.Lock()
	if err := t.validateSample(dense, cols, vals, label); err != nil {
		t.mu.Unlock()
		return err
	}
	t.total++
	t.seen.Store(t.total)
	t.mx.samples.Inc()
	if t.stride > 0 && t.total%int64(t.stride) == 0 {
		// Deterministic diversion: every stride-th sample validates, the
		// rest train.  Densify sparse samples once, on entry.
		var row []float64
		if dense != nil {
			row = append([]float64(nil), dense...)
		} else {
			row = make([]float64, t.cfg.NumFeatures)
			for i, j := range cols {
				row[j] = vals[i]
			}
		}
		t.holdout = append(t.holdout, holdoutSample{x: row, label: label})
		if over := len(t.holdout) - t.cfg.Policy.MaxHoldout; over > 0 {
			t.holdout = append([]holdoutSample(nil), t.holdout[over:]...)
		}
		t.mx.holdout.Inc()
		t.mu.Unlock()
		return nil
	}
	if err := absorb(t.stats); err != nil {
		// Unreachable after validateSample; kept so a statistics-side
		// rejection can never corrupt the sample accounting.
		t.total--
		t.seen.Store(t.total)
		t.mx.samples.Add(-1)
		t.mu.Unlock()
		return err
	}
	t.sinceRefit++
	if t.drift != nil {
		if dense != nil {
			t.drift.push(dense, label)
		} else {
			t.drift.pushSparse(cols, vals, label)
		}
		t.updateDriftLocked()
	}
	trigger := t.triggerLocked()
	if trigger == "" {
		t.mu.Unlock()
		return nil
	}
	if !t.cfg.Async {
		defer t.mu.Unlock()
		_, _, err := t.refitLocked(ctx, trigger)
		return err
	}
	// Async: clone under the lock, solve off it.  One in flight at most.
	if !t.refitting.CompareAndSwap(false, true) {
		t.mu.Unlock()
		return nil
	}
	snap := t.stats.Clone()
	t.noteRefitStartedLocked()
	t.wg.Add(1)
	t.mu.Unlock()
	go func() {
		defer t.wg.Done()
		defer t.refitting.Store(false)
		if _, _, err := t.refitFrom(ctx, snap, trigger, false); err != nil {
			t.cfg.Logger.Warn("async refit failed", "err", err.Error())
		}
	}()
	return nil
}

// validateSample rejects malformed input before any accounting, so a
// failed Observe leaves every counter untouched.
func (t *StreamTrainer) validateSample(dense []float64, cols []int, vals []float64, label int) error {
	if label < 0 || label >= t.cfg.NumClasses {
		return fmt.Errorf("online: label %d out of range [0,%d)", label, t.cfg.NumClasses)
	}
	if dense != nil {
		if len(dense) != t.cfg.NumFeatures {
			return fmt.Errorf("online: sample has %d features, expected %d", len(dense), t.cfg.NumFeatures)
		}
		return nil
	}
	if len(cols) != len(vals) {
		return fmt.Errorf("online: %d column indices but %d values", len(cols), len(vals))
	}
	for _, j := range cols {
		if j < 0 || j >= t.cfg.NumFeatures {
			return fmt.Errorf("online: feature index %d out of range for %d features", j, t.cfg.NumFeatures)
		}
	}
	return nil
}

// triggerLocked names the armed trigger, or "" when none fired.
func (t *StreamTrainer) triggerLocked() string {
	p := t.cfg.Policy
	if p.MinSamples > 0 && t.sinceRefit >= p.MinSamples {
		return "samples"
	}
	if p.Interval > 0 && t.cfg.Clock != nil {
		if now := t.cfg.Clock(); now.Sub(t.lastRefit) >= p.Interval {
			return "interval"
		}
	}
	if p.DriftThreshold > 0 && t.hasRefit && t.DriftScore() > p.DriftThreshold {
		return "drift"
	}
	return ""
}

// Refit forces a refit now (any pending trigger state is consumed) and
// returns the fitted candidate and, when a registry is configured, the
// version it ended up published at — the rolled-back-to version when
// validation failed.  Always synchronous, even for Async trainers.
func (t *StreamTrainer) Refit() (*core.Model, uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.refitLocked(context.Background(), "manual")
}

// noteRefitStartedLocked resets the trigger bookkeeping; called when a
// refit is committed to (sync) or handed off (async).
func (t *StreamTrainer) noteRefitStartedLocked() {
	t.sinceRefit = 0
	if t.cfg.Clock != nil {
		t.lastRefit = t.cfg.Clock()
	}
}

// refitLocked runs a synchronous refit with t.mu held for its whole
// duration — the solve blocks concurrent Observes, which is the sync
// mode's contract (Async trades that latency for a stats clone).
func (t *StreamTrainer) refitLocked(ctx context.Context, trigger string) (*core.Model, uint64, error) {
	t.noteRefitStartedLocked()
	return t.refitFrom(ctx, t.stats, trigger, true)
}

// refitFrom fits stats, publishes, validates, and rolls back on
// regression.  locked reports whether the caller already holds t.mu (the
// sync path); the async path passes a private clone and locked=false, so
// result write-backs retake the lock themselves.  When ctx carries a
// request span (an /v1/observe call tripped the trigger), the refit runs
// under a "refit" child so the distributed trace shows the solve.
func (t *StreamTrainer) refitFrom(ctx context.Context, stats *core.SuffStats, trigger string, locked bool) (*core.Model, uint64, error) {
	_, rsp := obs.StartSpan(ctx, "refit")
	defer rsp.End()
	trace := rsp.TraceID()
	sp := t.cfg.Trace.Start("refit")
	defer sp.End()
	t.mx.refits.Inc()
	candidate, err := core.FitStats(stats, core.Options{
		Alpha:   t.cfg.Alpha,
		Workers: t.cfg.Workers,
		Trace:   t.cfg.Trace,
	})
	if err != nil {
		t.mx.refitFailures.Inc()
		t.cfg.Logger.Warn("refit failed; keeping current model",
			"trigger", trigger, "err", err.Error())
		t.cfg.Flight.RecordHealth(obs.HealthRecord{
			Time: t.now(), Model: t.cfg.ModelName, Trigger: trigger, Err: err.Error(),
		})
		t.cfg.Flight.NoteRefitFailure(trace)
		return nil, 0, fmt.Errorf("online: refit (trigger=%s): %w", trigger, err)
	}
	t.condBits.Store(math.Float64bits(candidate.Stats.CondEstimate))
	t.finishRefit(stats, candidate, locked)
	if t.cfg.Registry == nil {
		t.cfg.Logger.Info("refit done (standalone)", "trigger", trigger,
			"samples", stats.Seen())
		t.cfg.Flight.RecordHealth(obs.HealthRecord{
			Time: t.now(), Model: t.cfg.ModelName, Trigger: trigger,
			CondEstimate: candidate.Stats.CondEstimate,
		})
		return candidate, 0, nil
	}
	version, err := t.publishAndValidate(ctx, candidate, trigger, locked)
	return candidate, version, err
}

// now reads the injected clock when one is configured; this package never
// touches package time itself (noclock), so without a clock health
// records carry the zero time.
func (t *StreamTrainer) now() time.Time {
	if t.cfg.Clock != nil {
		return t.cfg.Clock()
	}
	return time.Time{}
}

// finishRefit records the candidate and re-anchors drift references.
func (t *StreamTrainer) finishRefit(stats *core.SuffStats, candidate *core.Model, locked bool) {
	if !locked {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	t.model = candidate
	t.hasRefit = true
	if t.drift != nil {
		t.drift.setReference(stats)
		t.updateDriftLocked()
	}
}

// publishAndValidate pushes the candidate into the registry, scores it
// on the holdout against the previous live model, and rolls back on
// regression or a Validate-hook error.  Every outcome lands in the
// flight recorder's health ring; a rollback fires its trigger.
func (t *StreamTrainer) publishAndValidate(ctx context.Context, candidate *core.Model, trigger string, locked bool) (uint64, error) {
	trace := obs.SpanFromContext(ctx).TraceID()
	reg, name := t.cfg.Registry, t.cfg.ModelName
	prev, hadPrev := reg.Get(name)
	snap, err := reg.Publish(name, candidate)
	if err != nil {
		t.mx.refitFailures.Inc()
		t.cfg.Flight.RecordHealth(obs.HealthRecord{
			Time: t.now(), Model: name, Trigger: trigger,
			CondEstimate: candidate.Stats.CondEstimate, Err: err.Error(),
		})
		t.cfg.Flight.NoteRefitFailure(trace)
		return 0, fmt.Errorf("online: publishing refit: %w", err)
	}
	t.mx.publishes.Inc()
	t.setVersion(snap.Version, locked)
	t.cfg.Logger.Info("refit published", "trigger", trigger,
		"model", name, "version", snap.Version)

	health := obs.HealthRecord{
		Time: t.now(), Model: name, Trigger: trigger, Version: snap.Version,
		CondEstimate: candidate.Stats.CondEstimate,
	}
	reason := ""
	if hadPrev {
		candAcc, prevAcc, scored := t.holdoutAccuracy(candidate, prev.Model, locked)
		if scored > 0 {
			health.HoldoutAccuracy, health.PrevAccuracy = candAcc, prevAcc
			health.HoldoutDelta = candAcc - prevAcc
			t.holdCandBits.Store(math.Float64bits(candAcc))
			t.holdPrevBits.Store(math.Float64bits(prevAcc))
		}
		if scored > 0 && prevAcc-candAcc > t.cfg.Policy.MaxRegression {
			reason = fmt.Sprintf("holdout accuracy %.3f vs %.3f on %d samples", candAcc, prevAcc, scored)
		}
	}
	if reason == "" && t.cfg.Validate != nil {
		if err := t.cfg.Validate(candidate); err != nil {
			reason = err.Error()
		}
	}
	if reason == "" {
		t.cfg.Flight.RecordHealth(health)
		return snap.Version, nil
	}
	health.RolledBack = true
	health.Err = reason
	rb, err := reg.Rollback(name)
	if err != nil {
		t.cfg.Flight.RecordHealth(health)
		return snap.Version, fmt.Errorf("online: rollback after failed validation (%s): %w", reason, err)
	}
	t.mx.rollbacks.Inc()
	t.setVersion(rb.Version, locked)
	t.cfg.Logger.Warn("refit rolled back", "trigger", trigger, "model", name,
		"bad_version", snap.Version, "restored_as", rb.Version, "reason", reason)
	t.cfg.Flight.RecordHealth(health)
	t.cfg.Flight.NoteRollback(trace)
	return rb.Version, fmt.Errorf("online: refit v%d rolled back: %s", snap.Version, reason)
}

func (t *StreamTrainer) setVersion(v uint64, locked bool) {
	if !locked {
		t.mu.Lock()
		defer t.mu.Unlock()
	}
	t.version = v
}

// holdoutAccuracy scores both models on the retained holdout, returning
// the two accuracies and how many samples were scored.
func (t *StreamTrainer) holdoutAccuracy(candidate, prev *core.Model, locked bool) (candAcc, prevAcc float64, scored int) {
	var hold []holdoutSample
	if locked {
		hold = t.holdout
	} else {
		t.mu.Lock()
		hold = append([]holdoutSample(nil), t.holdout...)
		t.mu.Unlock()
	}
	if len(hold) == 0 || prev == nil || prev.Centroids == nil {
		return 0, 0, 0
	}
	var candRight, prevRight int
	for _, h := range hold {
		if candidate.PredictVec(h.x) == h.label {
			candRight++
		}
		if prev.PredictVec(h.x) == h.label {
			prevRight++
		}
	}
	n := float64(len(hold))
	return float64(candRight) / n, float64(prevRight) / n, len(hold)
}

// updateDriftLocked recomputes the drift score and publishes it to the
// gauge; caller holds t.mu.
func (t *StreamTrainer) updateDriftLocked() {
	score := 0.0
	if t.drift != nil && t.hasRefit {
		score = t.drift.score()
	}
	t.driftBits.Store(math.Float64bits(score))
}

// Close waits for any in-flight async refit to finish.  The trainer
// remains usable afterwards; Close exists so shutdown can rendezvous
// with the background goroutine.
func (t *StreamTrainer) Close() { t.wg.Wait() }
