package online

import (
	"math"

	"srda/internal/core"
	"srda/internal/mat"
)

// driftWindow tracks the class-conditional means of the most recent
// window of training samples and compares them against reference means
// snapshotted at the last refit.  The score is
//
//	max over classes c present in both:  ‖winMean_c − refMean_c‖₂ / (‖refMean_c‖₂ + 1)
//
// — a relative mean-shift with a +1 floor so near-zero reference means
// don't blow the ratio up.  Everything is O(window·n) memory and O(n)
// per pushed sample; the score itself is O(c·n) and computed only when a
// trigger check needs it.
//
// Not safe for concurrent use: the trainer guards it with its own mutex.
type driftWindow struct {
	n, c, capacity int

	// Ring of retained samples: rows holds capacity rows of n features,
	// labels the matching class; next is the overwrite cursor.
	rows   *mat.Dense
	labels []int
	size   int
	next   int

	// Windowed per-class sums/counts, maintained incrementally.
	winSums   *mat.Dense
	winCounts []int

	// Reference class means from the last refit; refCounts[k] > 0 marks
	// class k as comparable.
	refMeans  *mat.Dense
	refCounts []int
}

func newDriftWindow(numFeatures, numClasses, window int) *driftWindow {
	return &driftWindow{
		n:         numFeatures,
		c:         numClasses,
		capacity:  window,
		rows:      mat.NewDense(window, numFeatures),
		labels:    make([]int, window),
		winSums:   mat.NewDense(numClasses, numFeatures),
		winCounts: make([]int, numClasses),
		refMeans:  mat.NewDense(numClasses, numFeatures),
		refCounts: make([]int, numClasses),
	}
}

// push adds a dense sample to the window, evicting the oldest when full.
func (d *driftWindow) push(x []float64, label int) {
	slot := d.rows.RowView(d.next)
	if d.size == d.capacity {
		old := d.labels[d.next]
		sums := d.winSums.RowView(old)
		for j, v := range slot {
			sums[j] -= v
		}
		d.winCounts[old]--
	} else {
		d.size++
	}
	copy(slot, x)
	d.labels[d.next] = label
	sums := d.winSums.RowView(label)
	for j, v := range slot {
		sums[j] += v
	}
	d.winCounts[label]++
	d.next = (d.next + 1) % d.capacity
}

// pushSparse densifies a CSR-form sample into the ring slot and pushes.
func (d *driftWindow) pushSparse(cols []int, vals []float64, label int) {
	row := make([]float64, d.n)
	for i, j := range cols {
		row[j] = vals[i]
	}
	d.push(row, label)
}

// setReference snapshots the cumulative class means of stats as the new
// drift baseline; classes still empty stay incomparable.
func (d *driftWindow) setReference(stats *core.SuffStats) {
	counts := stats.ClassCounts()
	for k := 0; k < d.c; k++ {
		d.refCounts[k] = counts[k]
		if counts[k] > 0 {
			stats.ClassMean(k, d.refMeans.RowView(k))
		}
	}
}

// score computes the current drift score; 0 when no class is comparable.
func (d *driftWindow) score() float64 {
	worst := 0.0
	for k := 0; k < d.c; k++ {
		if d.winCounts[k] == 0 || d.refCounts[k] == 0 {
			continue
		}
		inv := 1 / float64(d.winCounts[k])
		sums := d.winSums.RowView(k)
		ref := d.refMeans.RowView(k)
		var shift2, refNorm2 float64
		for j := 0; j < d.n; j++ {
			diff := sums[j]*inv - ref[j]
			shift2 += diff * diff
			refNorm2 += ref[j] * ref[j]
		}
		s := math.Sqrt(shift2) / (math.Sqrt(refNorm2) + 1)
		if s > worst {
			worst = s
		}
	}
	return worst
}
