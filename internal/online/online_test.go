package online

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"srda/internal/core"
	"srda/internal/mat"
	"srda/internal/registry"
	"srda/internal/sparse"
)

// fakeClock is a manually-advanced clock for the interval trigger.
type fakeClock struct{ now time.Time }

func (f *fakeClock) Now() time.Time              { return f.now }
func (f *fakeClock) Advance(d time.Duration)     { f.now = f.now.Add(d) }
func newFakeClock() *fakeClock                   { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }
func blobSample(rng *rand.Rand, n, lab int) []float64 {
	x := make([]float64, n)
	for j := range x {
		x[j] = rng.NormFloat64() + 4*float64(lab)
	}
	return x
}

// streamBlobs observes count alternating-class blob samples.
func streamBlobs(t *testing.T, tr *StreamTrainer, rng *rand.Rand, n, c, count int) {
	t.Helper()
	for i := 0; i < count; i++ {
		lab := i % c
		if err := tr.Observe(blobSample(rng, n, lab), lab); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	base := Config{NumFeatures: 4, NumClasses: 2, Alpha: 1}
	if _, err := NewStreamTrainer(Config{NumFeatures: 4, NumClasses: 2}); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	cfg := base
	cfg.Policy.Interval = time.Minute
	if _, err := NewStreamTrainer(cfg); err == nil {
		t.Fatal("interval trigger without a clock accepted")
	}
	cfg = base
	cfg.Policy.HoldoutFrac = 1.5
	if _, err := NewStreamTrainer(cfg); err == nil {
		t.Fatal("holdout fraction 1.5 accepted")
	}
	cfg = base
	cfg.NumClasses = 1
	if _, err := NewStreamTrainer(cfg); err == nil {
		t.Fatal("1 class accepted")
	}
	tr, err := NewStreamTrainer(base)
	if err != nil {
		t.Fatal(err)
	}
	if tr.cfg.ModelName != "default" {
		t.Fatalf("default model name = %q", tr.cfg.ModelName)
	}
}

func TestObserveErrors(t *testing.T) {
	tr, err := NewStreamTrainer(Config{NumFeatures: 3, NumClasses: 2, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Observe([]float64{1, 2, 3}, 5); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if err := tr.Observe([]float64{1, 2}, 0); err == nil {
		t.Fatal("short sample accepted")
	}
	if err := tr.ObserveSparse([]int{7}, []float64{1}, 0); err == nil {
		t.Fatal("out-of-range sparse index accepted")
	}
	if tr.Seen() != 0 {
		t.Fatalf("failed observes counted: %d", tr.Seen())
	}
	if got := tr.mx.samples.Value(); got != 0 {
		t.Fatalf("srdaonline_samples_total = %d after only failures", got)
	}
}

// TestCountTriggerPublishes: MinSamples fires every N samples and each
// refit lands in the registry as the next version.
func TestCountTriggerPublishes(t *testing.T) {
	reg := registry.New(registry.Options{})
	tr, err := NewStreamTrainer(Config{
		NumFeatures: 6, NumClasses: 2, Alpha: 1,
		Policy:   RefitPolicy{MinSamples: 10},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	streamBlobs(t, tr, rng, 6, 2, 25)
	if got := tr.Version(); got != 2 {
		t.Fatalf("version after 25 samples = %d, want 2 (refits at 10 and 20)", got)
	}
	snap, ok := reg.Get("default")
	if !ok || snap.Version != 2 {
		t.Fatalf("registry live version = %v, %v", snap, ok)
	}
	if tr.Seen() != 25 || tr.mx.samples.Value() != 25 {
		t.Fatalf("seen = %d, counter = %d, want 25", tr.Seen(), tr.mx.samples.Value())
	}
	if r, p := tr.mx.refits.Value(), tr.mx.publishes.Value(); r != 2 || p != 2 {
		t.Fatalf("refits = %d, publishes = %d, want 2, 2", r, p)
	}
	if tr.Model() == nil || tr.Model().Centroids == nil {
		t.Fatal("published model missing or centroid-less")
	}
}

// TestIntervalTrigger: the wall-interval trigger fires on the injected
// clock and only when the interval has really elapsed.
func TestIntervalTrigger(t *testing.T) {
	clk := newFakeClock()
	reg := registry.New(registry.Options{})
	tr, err := NewStreamTrainer(Config{
		NumFeatures: 4, NumClasses: 2, Alpha: 1,
		Policy:   RefitPolicy{Interval: time.Minute},
		Registry: reg,
		Clock:    clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	streamBlobs(t, tr, rng, 4, 2, 6)
	if got := tr.Version(); got != 0 {
		t.Fatalf("refit before the interval elapsed (version %d)", got)
	}
	clk.Advance(61 * time.Second)
	streamBlobs(t, tr, rng, 4, 2, 2)
	if got := tr.Version(); got != 1 {
		t.Fatalf("version after interval = %d, want 1", got)
	}
	// The trigger clock was re-anchored at the refit: more samples inside
	// the new interval must not refit again.
	streamBlobs(t, tr, rng, 4, 2, 10)
	if got := tr.Version(); got != 1 {
		t.Fatalf("refit inside the fresh interval (version %d)", got)
	}
}

// TestHoldoutDiversion: every stride-th sample validates instead of
// training, and the retained holdout is bounded.
func TestHoldoutDiversion(t *testing.T) {
	tr, err := NewStreamTrainer(Config{
		NumFeatures: 4, NumClasses: 2, Alpha: 1,
		Policy: RefitPolicy{HoldoutFrac: 0.25, MaxHoldout: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	streamBlobs(t, tr, rng, 4, 2, 20)
	if got := tr.stats.Seen(); got != 15 {
		t.Fatalf("trained samples = %d, want 15 (5 of 20 diverted)", got)
	}
	if got := tr.mx.holdout.Value(); got != 5 {
		t.Fatalf("srdaonline_holdout_total = %d, want 5", got)
	}
	if got := len(tr.holdout); got != 3 {
		t.Fatalf("retained holdout = %d, want MaxHoldout = 3", got)
	}
	if tr.Seen() != 20 {
		t.Fatalf("seen = %d, want 20 (holdout still observed)", tr.Seen())
	}
}

// TestValidateHookRollback: a failing Validate hook rolls the freshly
// published version back and surfaces on every counter that should see it.
func TestValidateHookRollback(t *testing.T) {
	reg := registry.New(registry.Options{})
	fail := false
	tr, err := NewStreamTrainer(Config{
		NumFeatures: 5, NumClasses: 2, Alpha: 1,
		Registry: reg,
		Validate: func(*core.Model) error {
			if fail {
				return fmt.Errorf("canary rejected the candidate")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(24))
	streamBlobs(t, tr, rng, 5, 2, 12)
	good, ver, err := tr.Refit()
	if err != nil || ver != 1 {
		t.Fatalf("first refit: model=%v version=%d err=%v", good, ver, err)
	}
	fail = true
	streamBlobs(t, tr, rng, 5, 2, 12)
	_, ver, err = tr.Refit()
	if err == nil || !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("second refit err = %v, want rollback", err)
	}
	// v2 was the bad candidate; the rollback republished v1's model as v3.
	if ver != 3 || tr.Version() != 3 {
		t.Fatalf("post-rollback version = %d / %d, want 3", ver, tr.Version())
	}
	snap, _ := reg.Get("default")
	if snap.Model != good {
		t.Fatal("live model after rollback is not the pre-regression model")
	}
	if got := tr.mx.rollbacks.Value(); got != 1 {
		t.Fatalf("srdaonline_rollbacks_total = %d, want 1", got)
	}
	var sb strings.Builder
	reg.Metrics().WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `srdareg_rollbacks_total{model="default"} 1`) {
		t.Fatalf("registry exposition missing the rollback:\n%s", sb.String())
	}
}

// TestHoldoutRegressionRollback: a candidate wrecked by unlearnable
// poison regresses on the clean holdout and is rolled back without any
// custom hook — the built-in validation loop end to end.
func TestHoldoutRegressionRollback(t *testing.T) {
	reg := registry.New(registry.Options{})
	tr, err := NewStreamTrainer(Config{
		NumFeatures: 6, NumClasses: 2, Alpha: 1,
		Policy:   RefitPolicy{HoldoutFrac: 0.1},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(25))
	streamBlobs(t, tr, rng, 6, 2, 100)
	if _, ver, err := tr.Refit(); err != nil || ver != 1 {
		t.Fatalf("clean refit: version=%d err=%v", ver, err)
	}
	// Huge-magnitude random-label noise: no model can score it, but it
	// dominates the Gram and destroys the candidate on the clean holdout.
	for i := 0; i < 40; i++ {
		x := make([]float64, 6)
		for j := range x {
			x[j] = 1e6 * rng.NormFloat64()
		}
		if err := tr.Observe(x, rng.Intn(2)); err != nil {
			t.Fatalf("poison observe %d: %v", i, err)
		}
	}
	_, _, err = tr.Refit()
	if err == nil || !strings.Contains(err.Error(), "holdout accuracy") {
		t.Fatalf("poisoned refit err = %v, want holdout-accuracy rollback", err)
	}
	if got := tr.mx.rollbacks.Value(); got != 1 {
		t.Fatalf("srdaonline_rollbacks_total = %d, want 1", got)
	}
}

// TestRefitFailureKeepsModel: a refit that cannot solve (a class with no
// samples yet) publishes nothing and counts as a failure.
func TestRefitFailureKeepsModel(t *testing.T) {
	reg := registry.New(registry.Options{})
	tr, err := NewStreamTrainer(Config{
		NumFeatures: 4, NumClasses: 3, Alpha: 1,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(26))
	// Only classes 0 and 1 ever arrive; class 2 stays empty.
	streamBlobs(t, tr, rng, 4, 2, 10)
	if _, _, err := tr.Refit(); err == nil {
		t.Fatal("refit with an empty class succeeded")
	}
	if got := tr.mx.refitFailures.Value(); got != 1 {
		t.Fatalf("srdaonline_refit_failures_total = %d, want 1", got)
	}
	if tr.Version() != 0 || tr.Model() != nil {
		t.Fatal("failed refit must not publish or record a model")
	}
	if _, ok := reg.Get("default"); ok {
		t.Fatal("registry holds a model after a failed refit")
	}
}

// TestDriftTrigger: shifting the class-conditional means past the
// threshold refits without any count/interval trigger.
func TestDriftTrigger(t *testing.T) {
	reg := registry.New(registry.Options{})
	tr, err := NewStreamTrainer(Config{
		NumFeatures: 4, NumClasses: 2, Alpha: 1,
		Policy:   RefitPolicy{DriftThreshold: 0.5, DriftWindow: 16},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(27))
	streamBlobs(t, tr, rng, 4, 2, 40)
	if _, ver, err := tr.Refit(); err != nil || ver != 1 {
		t.Fatalf("baseline refit: version=%d err=%v", ver, err)
	}
	if s := tr.DriftScore(); s > 0.5 {
		t.Fatalf("drift score %v already past threshold right after refit", s)
	}
	// Shift both class means by +20: the window departs from the refit's
	// reference means and the drift trigger must fire.
	fired := false
	for i := 0; i < 64 && !fired; i++ {
		lab := i % 2
		x := blobSample(rng, 4, lab)
		for j := range x {
			x[j] += 20
		}
		if err := tr.Observe(x, lab); err != nil {
			t.Fatalf("shifted observe %d: %v", i, err)
		}
		fired = tr.Version() >= 2
	}
	if !fired {
		t.Fatalf("drift trigger never fired (score %v)", tr.DriftScore())
	}
}

// TestAsyncRefit: Async mode publishes from a background goroutine and
// Close rendezvouses with it.
func TestAsyncRefit(t *testing.T) {
	reg := registry.New(registry.Options{})
	tr, err := NewStreamTrainer(Config{
		NumFeatures: 5, NumClasses: 2, Alpha: 1,
		Policy:   RefitPolicy{MinSamples: 10},
		Registry: reg,
		Async:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(28))
	streamBlobs(t, tr, rng, 5, 2, 10)
	tr.Close()
	if got := tr.Version(); got != 1 {
		t.Fatalf("version after async refit = %d, want 1", got)
	}
	if snap, ok := reg.Get("default"); !ok || snap.Version != 1 {
		t.Fatal("async refit did not publish")
	}
}

// TestStandaloneRefit: without a registry the trainer still fits and
// reports version 0.
func TestStandaloneRefit(t *testing.T) {
	tr, err := NewStreamTrainer(Config{NumFeatures: 4, NumClasses: 2, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	streamBlobs(t, tr, rng, 4, 2, 16)
	m, ver, err := tr.Refit()
	if err != nil || ver != 0 || m == nil {
		t.Fatalf("standalone refit: model=%v version=%d err=%v", m, ver, err)
	}
	if tr.Model() != m {
		t.Fatal("Model() does not return the refit candidate")
	}
}

// TestObserveFormsAgree: the dense, batch, CSR, and sparse ingestion
// forms of the same rows produce bitwise-identical refits.
func TestObserveFormsAgree(t *testing.T) {
	const m, n, c = 30, 8, 2
	rng := rand.New(rand.NewSource(30))
	x := mat.NewDense(m, n)
	labels := make([]int, m)
	b := sparse.NewBuilder(m, n)
	for i := 0; i < m; i++ {
		labels[i] = i % c
		row := x.RowView(i)
		for j := range row {
			if rng.Float64() < 0.5 {
				row[j] = rng.NormFloat64() + float64(labels[i])
				b.Add(i, j, row[j])
			}
		}
	}
	csr := b.Build()

	newTrainer := func() *StreamTrainer {
		tr, err := NewStreamTrainer(Config{NumFeatures: n, NumClasses: c, Alpha: 1})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	dense := newTrainer()
	if err := dense.ObserveBatch(x, labels); err != nil {
		t.Fatal(err)
	}
	sp := newTrainer()
	if err := sp.ObserveCSR(csr, labels); err != nil {
		t.Fatal(err)
	}
	md, _, err := dense.Refit()
	if err != nil {
		t.Fatal(err)
	}
	ms, _, err := sp.Refit()
	if err != nil {
		t.Fatal(err)
	}
	for i := range md.W.Data {
		if math.Float64bits(md.W.Data[i]) != math.Float64bits(ms.W.Data[i]) {
			t.Fatalf("W[%d]: dense %v vs CSR %v", i, md.W.Data[i], ms.W.Data[i])
		}
	}
}

// TestMetricsExposition: the trainer's registry exposes every
// srdaonline_* instrument, including the drift gauge.
func TestMetricsExposition(t *testing.T) {
	tr, err := NewStreamTrainer(Config{NumFeatures: 4, NumClasses: 2, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tr.Metrics().WritePrometheus(&sb)
	text := sb.String()
	for _, name := range []string{
		"srdaonline_samples_total", "srdaonline_holdout_total",
		"srdaonline_refits_total", "srdaonline_refit_failures_total",
		"srdaonline_publishes_total", "srdaonline_rollbacks_total",
		"srdaonline_drift_score",
	} {
		if !strings.Contains(text, name) {
			t.Fatalf("exposition missing %s:\n%s", name, text)
		}
	}
}
