package online

import "srda/internal/obs"

// metrics is the trainer's instrument set on its own obs registry, so a
// worker can append the exposition to its /metrics without colliding
// with the serve or registry instruments.  Registration order is
// exposition order; new instruments go at the end.
type metrics struct {
	reg           *obs.Registry
	samples       *obs.Counter
	holdout       *obs.Counter
	refits        *obs.Counter
	refitFailures *obs.Counter
	publishes     *obs.Counter
	rollbacks     *obs.Counter
}

func newMetrics() *metrics {
	reg := obs.NewRegistry()
	return &metrics{
		reg: reg,
		samples: reg.NewCounter("srdaonline_samples_total",
			"Labeled samples observed by the streaming trainer (training + holdout)."),
		holdout: reg.NewCounter("srdaonline_holdout_total",
			"Observed samples diverted into the validation holdout."),
		refits: reg.NewCounter("srdaonline_refits_total",
			"Refit attempts (triggered or manual)."),
		refitFailures: reg.NewCounter("srdaonline_refit_failures_total",
			"Refits that produced no published model (solve or publish failure)."),
		publishes: reg.NewCounter("srdaonline_publishes_total",
			"Refit candidates published into the model registry."),
		rollbacks: reg.NewCounter("srdaonline_rollbacks_total",
			"Published candidates rolled back after failing validation."),
	}
}

// bind registers the instruments that read live trainer state; separate
// from newMetrics because the trainer must exist first.
func (m *metrics) bind(t *StreamTrainer) {
	m.reg.NewGaugeFloatFunc("srdaonline_drift_score",
		"Current windowed class-mean drift score against the last refit's means.",
		t.DriftScore)
	m.reg.NewGaugeFloatFunc("srdafit_cond_estimate",
		"Condition-number estimate of the last refit's normal equations (Cholesky diagonal ratio squared).",
		t.CondEstimate)
	m.reg.NewGaugeFloatFunc("srdafit_holdout_accuracy",
		"Holdout accuracy of the last validated refit candidate.",
		func() float64 { c, _ := t.HoldoutAccuracies(); return c })
	m.reg.NewGaugeFloatFunc("srdafit_prev_accuracy",
		"Holdout accuracy of the previous live model at the last validation.",
		func() float64 { _, p := t.HoldoutAccuracies(); return p })
}
