package online

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"srda/internal/core"
	"srda/internal/mat"
	"srda/internal/registry"
	"srda/internal/serve"
)

// TestPublishWhilePredict hammers the in-process predict path from N
// goroutines while the streaming trainer publishes K new versions of the
// model they are all scoring against.  Run under -race (make check does)
// this is the hot-swap safety proof: no response may tear across
// versions — every answer carries the ModelSeq of exactly one published
// version — and the registry must count exactly the publishes that
// happened.
func TestPublishWhilePredict(t *testing.T) {
	const (
		n, c       = 8, 3
		predictors = 8
		refits     = 5
	)
	rng := rand.New(rand.NewSource(31))
	x := mat.NewDense(90, n)
	labels := make([]int, 90)
	for i := range labels {
		labels[i] = i % c
		copy(x.RowView(i), blobSample(rng, n, labels[i]))
	}
	initial, err := core.FitDense(x, labels, c, core.Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}

	reg := registry.New(registry.Options{})
	srv, err := serve.New(initial, serve.Options{Registry: reg}) // publishes version 1
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(context.Background()); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	tr, err := NewStreamTrainer(Config{
		NumFeatures: n, NumClasses: c, Alpha: 1,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	streamBlobs(t, tr, rng, n, c, 30) // enough that every refit can solve

	query := blobSample(rand.New(rand.NewSource(32)), n, 1)
	stop := make(chan struct{})
	var (
		mu   sync.Mutex
		seqs []uint64
	)
	answered := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(seqs)
	}
	var wg sync.WaitGroup
	for g := 0; g < predictors; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := srv.Predict(context.Background(), &serve.PredictRequest{
					Samples: []serve.Sample{{Dense: query}},
				})
				if err != nil {
					t.Errorf("predict: %v", err)
					return
				}
				if len(resp.Classes) != 1 {
					t.Errorf("predict returned %d classes", len(resp.Classes))
					return
				}
				mu.Lock()
				seqs = append(seqs, resp.ModelSeq)
				mu.Unlock()
			}
		}()
	}

	// Interleave for real: each publish happens with predictions in
	// flight, so swaps land mid-traffic rather than before or after it.
	for k := 0; k < refits; k++ {
		floor := answered() + predictors
		for answered() < floor {
			runtime.Gosched()
		}
		streamBlobs(t, tr, rng, n, c, 30)
		if _, ver, err := tr.Refit(); err != nil {
			t.Errorf("refit %d: %v", k, err)
		} else if want := uint64(k + 2); ver != want { // server's initial publish was v1
			t.Errorf("refit %d published version %d, want %d", k, ver, want)
		}
	}
	close(stop)
	wg.Wait()

	published := refits + 1
	for _, seq := range seqs {
		if seq < 1 || seq > uint64(published) {
			t.Fatalf("response scored by unpublished version %d (published 1..%d)", seq, published)
		}
	}
	if len(seqs) == 0 {
		t.Fatal("no predictions completed during the publish storm")
	}
	if got := srv.ModelSeq(); got != uint64(published) {
		t.Fatalf("final model seq = %d, want %d", got, published)
	}
	var sb strings.Builder
	reg.Metrics().WritePrometheus(&sb)
	want := fmt.Sprintf(`srdareg_publishes_total{model="default"} %d`, published)
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("registry exposition missing %q:\n%s", want, sb.String())
	}
}
