package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"srda/internal/mat"
	"srda/internal/solver"
)

func blobs(rng *rand.Rand, m, n, c int, sep float64) (*mat.Dense, []int) {
	x := mat.NewDense(m, n)
	labels := make([]int, m)
	for i := 0; i < m; i++ {
		labels[i] = i % c
		row := x.RowView(i)
		for j := range row {
			row[j] = 0.3 * rng.NormFloat64()
		}
		row[0] += sep * float64(labels[i])
	}
	return x, labels
}

func TestClassGraphStructure(t *testing.T) {
	labels := []int{0, 1, 0, 1, 1}
	g, err := ClassGraph(labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	// class 0 has 2 members → weight 1/2; class 1 has 3 → 1/3
	if got := g.W.At(0, 2); got != 0.5 {
		t.Fatalf("W[0][2]=%v", got)
	}
	if got := g.W.At(1, 3); math.Abs(got-1.0/3) > 1e-15 {
		t.Fatalf("W[1][3]=%v", got)
	}
	if got := g.W.At(0, 1); got != 0 {
		t.Fatalf("cross-class weight %v", got)
	}
	// degrees: every row sums to 1 (W is block row-stochastic)
	for i, d := range g.Degrees {
		if math.Abs(d-1) > 1e-12 {
			t.Fatalf("degree[%d]=%v", i, d)
		}
	}
}

func TestClassGraphValidation(t *testing.T) {
	if _, err := ClassGraph([]int{0, 5}, 2); err == nil {
		t.Fatal("bad label accepted")
	}
	if _, err := ClassGraph([]int{0, 0}, 2); err == nil {
		t.Fatal("empty class accepted")
	}
}

func TestKNNGraphSymmetricNonnegative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, _ := blobs(rng, 60, 5, 3, 4)
	g := KNN(x, KNNOptions{K: 4})
	for i := 0; i < g.Size(); i++ {
		cols, vals := g.W.Row(i)
		for t2, j := range cols {
			if vals[t2] < 0 {
				t.Fatal("negative weight")
			}
			if math.Abs(g.W.At(j, i)-vals[t2]) > 1e-15 {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
			if j == i {
				t.Fatal("self loop")
			}
		}
	}
}

func TestKNNGraphConnectsNeighbors(t *testing.T) {
	// On tight, well-separated blobs a k-NN graph should stay within
	// classes.
	rng := rand.New(rand.NewSource(2))
	x, labels := blobs(rng, 90, 5, 3, 10)
	g := KNN(x, KNNOptions{K: 3})
	cross := 0
	total := 0
	for i := 0; i < g.Size(); i++ {
		cols, _ := g.W.Row(i)
		for _, j := range cols {
			total++
			if labels[i] != labels[j] {
				cross++
			}
		}
	}
	if total == 0 {
		t.Fatal("empty graph")
	}
	if frac := float64(cross) / float64(total); frac > 0.02 {
		t.Fatalf("%.1f%% cross-class edges on separated blobs", 100*frac)
	}
}

func TestKNNWeightings(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, _ := blobs(rng, 30, 4, 2, 5)
	for _, w := range []Weighting{Binary, Heat, Cosine} {
		g := KNN(x, KNNOptions{K: 3, Weight: w})
		if g.W.NNZ() == 0 {
			t.Fatalf("weighting %v produced empty graph", w)
		}
		if w == Binary {
			_, vals := g.W.Row(0)
			for _, v := range vals {
				if v != 1 {
					t.Fatalf("binary weight %v", v)
				}
			}
		}
		if w == Heat {
			_, vals := g.W.Row(0)
			for _, v := range vals {
				if v <= 0 || v > 1 {
					t.Fatalf("heat weight %v outside (0,1]", v)
				}
			}
		}
	}
}

func TestNormalizedOpSpectrum(t *testing.T) {
	// The normalized adjacency of any graph has top eigenvalue 1 with
	// eigenvector D^{1/2}·1 (per connected component).
	rng := rand.New(rand.NewSource(4))
	x, labels := blobs(rng, 45, 4, 3, 8)
	g, err := ClassGraph(labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	_ = x
	op := g.Normalized()
	// the eigenvalue 1 has multiplicity c = 3, which plain Lanczos cannot
	// resolve — the deflated variant exists for exactly this structure
	res, err := solver.LanczosDeflated(op, 4, 1e-9, 11)
	if err != nil {
		t.Fatal(err)
	}
	// the class graph has 3 components, each contributing eigenvalue 1
	for j := 0; j < 3; j++ {
		if math.Abs(res.Values[j]-1) > 1e-8 {
			t.Fatalf("eigenvalue %d = %v, want 1", j, res.Values[j])
		}
	}
	if res.Values[3] > 1e-8 {
		t.Fatalf("4th eigenvalue %v, want 0 (rank c)", res.Values[3])
	}
}

func TestSemiSupervisedBlend(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, labels := blobs(rng, 40, 4, 2, 6)
	partial := append([]int(nil), labels...)
	for i := 20; i < 40; i++ {
		partial[i] = -1 // unlabeled
	}
	g, err := SemiSupervised(x, partial, 2, 0.5, KNNOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 40 {
		t.Fatalf("size %d", g.Size())
	}
	// Labeled same-class pairs must be at least as connected as in the
	// pure knn graph.
	knn := KNN(x, KNNOptions{K: 3})
	found := false
	for i := 0; i < 20 && !found; i++ {
		for j := 0; j < 20; j++ {
			if i != j && partial[i] == partial[j] && g.W.At(i, j) > knn.W.At(i, j)+1e-12 {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("class edges not blended in")
	}
	if _, err := SemiSupervised(x, partial, 2, -1, KNNOptions{}); err == nil {
		t.Fatal("negative beta accepted")
	}
}

func TestLaplacianQuadraticSmoothness(t *testing.T) {
	// Constant vectors have zero Laplacian energy; sign-alternating ones
	// do not.
	labels := []int{0, 0, 1, 1}
	g, err := ClassGraph(labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if q := g.LaplacianQuadratic([]float64{3, 3, 3, 3}); q > 1e-12 {
		t.Fatalf("constant vector energy %v", q)
	}
	if q := g.LaplacianQuadratic([]float64{1, -1, 1, -1}); q <= 0 {
		t.Fatalf("alternating vector energy %v", q)
	}
}

func TestGraphDegreesMatchRowSumsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 10 + rng.Intn(40)
		x, _ := blobs(rng, m, 4, 3, 2+3*rng.Float64())
		g := KNN(x, KNNOptions{K: 2 + rng.Intn(4)})
		for i := 0; i < g.Size(); i++ {
			_, vals := g.W.Row(i)
			var s float64
			for _, v := range vals {
				s += v
			}
			if math.Abs(s-g.Degrees[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNormalizedOpPreservesSymmetryProperty(t *testing.T) {
	// <Sx, y> == <x, Sy> for the normalized adjacency — the property the
	// Lanczos solver depends on.
	rng := rand.New(rand.NewSource(9))
	x, _ := blobs(rng, 40, 5, 3, 4)
	g := KNN(x, KNNOptions{K: 4})
	op := g.Normalized()
	for trial := 0; trial < 20; trial++ {
		u := make([]float64, g.Size())
		v := make([]float64, g.Size())
		for i := range u {
			u[i] = rng.NormFloat64()
			v[i] = rng.NormFloat64()
		}
		su := op.Apply(u, nil)
		sv := op.Apply(v, nil)
		var lhs, rhs float64
		for i := range u {
			lhs += su[i] * v[i]
			rhs += u[i] * sv[i]
		}
		if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
			t.Fatalf("asymmetric operator: %v vs %v", lhs, rhs)
		}
	}
}

func TestNbrHeapInterface(t *testing.T) {
	// exercise the container/heap contract directly (Pop is unused by the
	// fixed-size selection loop but part of the interface)
	h := &nbrHeap{}
	heapPush := func(idx int, d float64) {
		h.Push(nbr{idx, d})
	}
	heapPush(1, 3)
	heapPush(2, 1)
	if h.Len() != 2 {
		t.Fatalf("len %d", h.Len())
	}
	if !h.Less(0, 1) { // max-heap on distance: 3 > 1
		t.Fatal("Less ordering wrong")
	}
	h.Swap(0, 1)
	got := h.Pop().(nbr)
	if got.dist != 3 {
		t.Fatalf("Pop got %v", got)
	}
}
