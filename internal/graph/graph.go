// Package graph builds the affinity graphs behind the spectral-regression
// view of discriminant analysis.  The paper derives SRDA from the graph
// matrix W whose (i,j) entry is 1/m_k when samples i and j share class k
// (eq. 6); its closing remark — "our approach can be generalized by
// constructing the graph matrix in the unsupervised or semi-supervised
// way" — is realized here: k-NN affinity graphs with binary, heat-kernel
// or cosine weights, the supervised class graph, and a semi-supervised
// blend of the two, all exposed as sparse symmetric operators for the
// Lanczos eigensolver.
package graph

import (
	"container/heap"
	"fmt"
	"math"

	"srda/internal/blas"
	"srda/internal/mat"
	"srda/internal/sparse"
)

// Weighting selects the edge-weight scheme for neighborhood graphs.
type Weighting int

const (
	// Binary assigns weight 1 to every kept edge.
	Binary Weighting = iota
	// Heat assigns exp(−‖xᵢ−xⱼ‖²/(2σ²)).
	Heat
	// Cosine assigns the (shifted, nonnegative) cosine similarity.
	Cosine
)

// Graph is a symmetric, nonnegative affinity matrix over m samples.
type Graph struct {
	// W holds the affinities in CSR form (symmetric by construction).
	W *sparse.CSR
	// Degrees caches the row sums D_ii.
	Degrees []float64
}

// Size returns the number of vertices.
func (g *Graph) Size() int { return g.W.Rows }

// newGraph wraps an affinity matrix, computing degrees.
func newGraph(w *sparse.CSR) *Graph {
	deg := make([]float64, w.Rows)
	for i := 0; i < w.Rows; i++ {
		_, vals := w.Row(i)
		var s float64
		for _, v := range vals {
			s += v
		}
		deg[i] = s
	}
	return &Graph{W: w, Degrees: deg}
}

// ClassGraph builds the paper's supervised graph (eq. 6): samples i and j
// of class k are connected with weight 1/m_k.  Stored sparsely, the graph
// has Σ m_k² edges.
func ClassGraph(labels []int, numClasses int) (*Graph, error) {
	counts := make([]int, numClasses)
	byClass := make([][]int, numClasses)
	for i, y := range labels {
		if y < 0 || y >= numClasses {
			return nil, fmt.Errorf("graph: label %d out of range", y)
		}
		counts[y]++
		byClass[y] = append(byClass[y], i)
	}
	b := sparse.NewBuilder(len(labels), len(labels))
	for k, members := range byClass {
		if len(members) == 0 {
			return nil, fmt.Errorf("graph: class %d has no samples", k)
		}
		w := 1 / float64(counts[k])
		for _, i := range members {
			for _, j := range members {
				b.Add(i, j, w)
			}
		}
	}
	return newGraph(b.Build()), nil
}

// neighbor heap for k-NN selection (max-heap on distance so the root is
// the worst current neighbor).
type nbr struct {
	idx  int
	dist float64
}

type nbrHeap []nbr

func (h nbrHeap) Len() int            { return len(h) }
func (h nbrHeap) Less(a, b int) bool  { return h[a].dist > h[b].dist }
func (h nbrHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *nbrHeap) Push(x interface{}) { *h = append(*h, x.(nbr)) }
func (h *nbrHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// KNNOptions configures KNN graph construction.
type KNNOptions struct {
	// K is the neighborhood size (default 5).
	K int
	// Weight selects the edge weighting (default Heat).
	Weight Weighting
	// Sigma is the heat-kernel bandwidth; 0 auto-tunes to the mean k-NN
	// distance.
	Sigma float64
}

// KNN builds a symmetrized k-nearest-neighbor affinity graph over the
// rows of x (brute-force O(m²·n); the corpora this project targets keep m
// in the thousands).  Edges are symmetrized by max: i~j when either is
// among the other's k nearest.
func KNN(x *mat.Dense, opt KNNOptions) *Graph {
	m := x.Rows
	k := opt.K
	if k <= 0 {
		k = 5
	}
	if k >= m {
		k = m - 1
	}

	// squared norms once
	norms := make([]float64, m)
	for i := 0; i < m; i++ {
		ri := x.RowView(i)
		norms[i] = blas.Dot(ri, ri)
	}

	type edge struct {
		j    int
		dist float64
	}
	neighbors := make([][]edge, m)
	var sumD float64
	var cntD int
	for i := 0; i < m; i++ {
		h := make(nbrHeap, 0, k+1)
		ri := x.RowView(i)
		for j := 0; j < m; j++ {
			if j == i {
				continue
			}
			d := norms[i] + norms[j] - 2*blas.Dot(ri, x.RowView(j))
			if d < 0 {
				d = 0
			}
			if len(h) < k {
				heap.Push(&h, nbr{j, d})
			} else if d < h[0].dist {
				h[0] = nbr{j, d}
				heap.Fix(&h, 0)
			}
		}
		neighbors[i] = make([]edge, len(h))
		for t, e := range h {
			neighbors[i][t] = edge{e.idx, e.dist}
			sumD += math.Sqrt(e.dist)
			cntD++
		}
	}

	sigma := opt.Sigma
	if sigma <= 0 {
		sigma = sumD / float64(cntD)
		if sigma == 0 { //srdalint:ignore floatcmp exact zero mean distance degenerates sigma; fall back to 1
			sigma = 1
		}
	}

	weightOf := func(i, j int, d2 float64) float64 {
		switch opt.Weight {
		case Binary:
			return 1
		case Cosine:
			ni, nj := math.Sqrt(norms[i]), math.Sqrt(norms[j])
			if ni == 0 || nj == 0 { //srdalint:ignore floatcmp exact zero norm is an all-zero row; cosine is undefined
				return 0
			}
			cos := blas.Dot(x.RowView(i), x.RowView(j)) / (ni * nj)
			if cos < 0 {
				return 0
			}
			return cos
		default: // Heat
			return math.Exp(-d2 / (2 * sigma * sigma))
		}
	}

	// Symmetrize by keeping the larger weight of the two directions; the
	// builder sums duplicates, so insert each undirected edge once.
	type key struct{ a, b int }
	best := make(map[key]float64, m*k)
	for i := 0; i < m; i++ {
		for _, e := range neighbors[i] {
			a, b := i, e.j
			if a > b {
				a, b = b, a
			}
			w := weightOf(i, e.j, e.dist)
			if w <= 0 {
				continue
			}
			if old, ok := best[key{a, b}]; !ok || w > old {
				best[key{a, b}] = w
			}
		}
	}
	bld := sparse.NewBuilder(m, m)
	for kk, w := range best {
		bld.Add(kk.a, kk.b, w)
		bld.Add(kk.b, kk.a, w)
	}
	return newGraph(bld.Build())
}

// SemiSupervised blends the supervised class graph over the labeled
// prefix with an unsupervised k-NN graph over all samples:
//
//	W = W_knn + beta · W_class
//
// labels[i] < 0 marks sample i unlabeled.  This is the construction the
// paper's closing remark (and the authors' companion papers) describe for
// semi-supervised discriminant analysis.
func SemiSupervised(x *mat.Dense, labels []int, numClasses int, beta float64, opt KNNOptions) (*Graph, error) {
	if x.Rows != len(labels) {
		return nil, fmt.Errorf("graph: %d rows but %d labels", x.Rows, len(labels))
	}
	if beta < 0 {
		return nil, fmt.Errorf("graph: negative beta %v", beta)
	}
	knn := KNN(x, opt)

	// Class sub-graph over labeled samples only.
	counts := make([]int, numClasses)
	byClass := make([][]int, numClasses)
	for i, y := range labels {
		if y < 0 {
			continue
		}
		if y >= numClasses {
			return nil, fmt.Errorf("graph: label %d out of range", y)
		}
		counts[y]++
		byClass[y] = append(byClass[y], i)
	}
	b := sparse.NewBuilder(x.Rows, x.Rows)
	// copy the knn edges
	for i := 0; i < x.Rows; i++ {
		cols, vals := knn.W.Row(i)
		for t, j := range cols {
			b.Add(i, j, vals[t])
		}
	}
	for k, members := range byClass {
		if len(members) == 0 {
			continue
		}
		w := beta / float64(counts[k])
		for _, i := range members {
			for _, j := range members {
				b.Add(i, j, w)
			}
		}
	}
	return newGraph(b.Build()), nil
}

// NormalizedOp is the symmetric normalized adjacency D^{-1/2} W D^{-1/2},
// whose leading eigenvectors drive spectral embedding; it implements
// solver.SymOperator.  Isolated vertices (zero degree) contribute zero.
type NormalizedOp struct {
	g       *Graph
	invSqrt []float64
}

// Normalized wraps the graph as its normalized adjacency operator.
func (g *Graph) Normalized() *NormalizedOp {
	inv := make([]float64, g.Size())
	for i, d := range g.Degrees {
		if d > 0 {
			inv[i] = 1 / math.Sqrt(d)
		}
	}
	return &NormalizedOp{g: g, invSqrt: inv}
}

// Dim implements solver.SymOperator.
func (o *NormalizedOp) Dim() int { return o.g.Size() }

// Apply implements solver.SymOperator.
func (o *NormalizedOp) Apply(x, dst []float64) []float64 {
	n := o.Dim()
	if dst == nil {
		dst = make([]float64, n)
	}
	// dst = D^{-1/2} W D^{-1/2} x, fused into one CSR pass.
	for i := 0; i < n; i++ {
		cols, vals := o.g.W.Row(i)
		var s float64
		for t, j := range cols {
			s += vals[t] * o.invSqrt[j] * x[j]
		}
		dst[i] = s * o.invSqrt[i]
	}
	return dst
}

// LaplacianQuadratic evaluates fᵀLf = ½ Σᵢⱼ wᵢⱼ (fᵢ − fⱼ)², the smoothness
// functional spectral methods minimize; exposed for tests and diagnostics.
func (g *Graph) LaplacianQuadratic(f []float64) float64 {
	var s float64
	for i := 0; i < g.Size(); i++ {
		cols, vals := g.W.Row(i)
		for t, j := range cols {
			d := f[i] - f[j]
			s += vals[t] * d * d
		}
	}
	return s / 2
}
