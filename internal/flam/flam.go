// Package flam implements the paper's operation-count model (Table I).
// A "flam" (Stewart 1998) is a compound floating-point operation of one
// addition and one multiplication; the paper states LDA's and SRDA's
// training costs in flams together with their memory footprints.  The
// functions here evaluate those closed-form counts for arbitrary problem
// shapes, power both the Table I reproduction and the experiment
// harness's memory-wall modeling.
package flam

import "fmt"

// Problem describes an experiment shape in the paper's notation.
type Problem struct {
	M int     // number of training samples
	N int     // number of features
	C int     // number of classes
	K int     // LSQR iteration count
	S float64 // average nonzeros per sample (= N when dense)
}

// T returns min(m, n), the paper's t.
func (p Problem) T() int {
	if p.M < p.N {
		return p.M
	}
	return p.N
}

// Count holds the dominant flam count and memory requirement (in float64
// words) for one algorithm on one problem.
type Count struct {
	Algorithm string
	Flam      float64
	MemWords  float64
}

// Bytes returns the memory requirement in bytes (8 bytes per word).
func (c Count) Bytes() float64 { return 8 * c.MemWords }

// LDA evaluates the classical-LDA row of Table I:
// time 3/2·m·n·t + 9/2·t³, memory m·n + m·t + n·t.
func LDA(p Problem) Count {
	m, n, t := float64(p.M), float64(p.N), float64(p.T())
	return Count{
		Algorithm: "LDA",
		Flam:      1.5*m*n*t + 4.5*t*t*t,
		MemWords:  m*n + m*t + n*t,
	}
}

// SRDANormal evaluates the SRDA-by-normal-equations row:
// time m·n·t/2 + n·t²/2... the paper simplifies to (mnt + t³/3) + c·m·n;
// memory m·n + n² (Gram matrix) when n <= m, m·n + m² otherwise.
func SRDANormal(p Problem) Count {
	m, n, c := float64(p.M), float64(p.N), float64(p.C)
	t := float64(p.T())
	var flam float64
	if p.N <= p.M {
		// XᵀX (mn²/2), Cholesky (n³/6), c solves (cn²) and XᵀY (cmn)
		flam = 0.5*m*n*n + n*n*n/6 + c*(m*n+n*n)
	} else {
		// dual: XXᵀ (nm²/2), Cholesky (m³/6), c solves + map-back
		flam = 0.5*n*m*m + m*m*m/6 + c*(m*n+m*m)
	}
	return Count{
		Algorithm: "SRDA (normal equations)",
		Flam:      flam,
		MemWords:  m*n + t*t,
	}
}

// SRDALSQRDense evaluates the iterative row for dense data:
// time k·c·(2mn + 3m + 5n), memory m·n + 2n + m + c·n.
func SRDALSQRDense(p Problem) Count {
	m, n, c, k := float64(p.M), float64(p.N), float64(p.C), float64(p.K)
	return Count{
		Algorithm: "SRDA (LSQR, dense)",
		Flam:      k * c * (2*m*n + 3*m + 5*n),
		MemWords:  m*n + 2*n + m + c*n,
	}
}

// SRDALSQRSparse evaluates the iterative row for sparse data:
// time k·c·(2ms + 3m + 5n), memory m·s + (2+c)·n + m.
func SRDALSQRSparse(p Problem) Count {
	m, n, c, k, s := float64(p.M), float64(p.N), float64(p.C), float64(p.K), p.S
	return Count{
		Algorithm: "SRDA (LSQR, sparse)",
		Flam:      k * c * (2*m*s + 3*m + 5*n),
		MemWords:  m*s + (2+c)*n + m,
	}
}

// IDRQR evaluates the IDR/QR baseline: QR of the n×c centroid matrix
// (≈ 2nc²) plus the projections (≈ 2mnc) and a c×c eigensolve.
func IDRQR(p Problem) Count {
	m, n, c := float64(p.M), float64(p.N), float64(p.C)
	return Count{
		Algorithm: "IDR/QR",
		Flam:      2*n*c*c + 2*m*n*c + 9*c*c*c,
		MemWords:  m*n + n*c,
	}
}

// Speedup returns the LDA/SRDA flam ratio for the problem, using the
// normal-equations SRDA variant (the paper derives a maximum of 27/4 + 2
// ≈ 9 at m = n >> c).
func Speedup(p Problem) float64 {
	s := SRDANormal(p).Flam
	if s == 0 { //srdalint:ignore floatcmp exact zero flam count is the degenerate empty problem
		return 0
	}
	return LDA(p).Flam / s
}

// Table returns all Table I rows for a problem.
func Table(p Problem) []Count {
	return []Count{LDA(p), SRDANormal(p), SRDALSQRDense(p), SRDALSQRSparse(p), IDRQR(p)}
}

// Render formats counts as the Table I layout.
func Render(p Problem, counts []Count) string {
	out := fmt.Sprintf("Problem: m=%d n=%d c=%d k=%d s=%.0f (t=%d)\n", p.M, p.N, p.C, p.K, p.S, p.T())
	out += fmt.Sprintf("%-28s %14s %14s\n", "algorithm", "flam", "memory")
	for _, c := range counts {
		out += fmt.Sprintf("%-28s %14.3g %13.3gB\n", c.Algorithm, c.Flam, c.Bytes())
	}
	return out
}
