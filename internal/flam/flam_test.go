package flam

import (
	"strings"
	"testing"
)

func TestTValue(t *testing.T) {
	if (Problem{M: 10, N: 5}).T() != 5 {
		t.Fatal("t should be min")
	}
	if (Problem{M: 3, N: 9}).T() != 3 {
		t.Fatal("t should be min")
	}
}

func TestSRDAFasterThanLDAAcrossShapes(t *testing.T) {
	// The paper's headline: SRDA (normal equations) is always faster.
	shapes := []Problem{
		{M: 680, N: 1024, C: 68, K: 20, S: 1024},
		{M: 3120, N: 617, C: 26, K: 20, S: 617},
		{M: 2000, N: 784, C: 10, K: 20, S: 784},
		{M: 9470, N: 26214, C: 20, K: 15, S: 80},
		{M: 100, N: 100, C: 2, K: 20, S: 100},
		{M: 100000, N: 50, C: 5, K: 20, S: 50},
	}
	for _, p := range shapes {
		if sp := Speedup(p); sp <= 1 {
			t.Fatalf("shape %+v: speedup %v <= 1", p, sp)
		}
	}
}

func TestMaxSpeedupNearNine(t *testing.T) {
	// At m = n >> c the paper reports the maximum speedup ≈ 9.
	p := Problem{M: 100000, N: 100000, C: 10, K: 20, S: 100000}
	sp := Speedup(p)
	if sp < 7 || sp > 11 {
		t.Fatalf("speedup at m=n is %v, expected ≈9", sp)
	}
}

func TestSparseLSQRLinearInSize(t *testing.T) {
	// Doubling m must double the sparse-LSQR flam count (linear time).
	base := Problem{M: 10000, N: 26214, C: 20, K: 15, S: 80}
	double := base
	double.M *= 2
	f1, f2 := SRDALSQRSparse(base).Flam, SRDALSQRSparse(double).Flam
	ratio := f2 / f1
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("m-scaling ratio %v not ≈2", ratio)
	}
	// LDA, by contrast, scales worse than linearly in t.
	l1, l2 := LDA(base).Flam, LDA(double).Flam
	if l2/l1 < 2.5 {
		t.Fatalf("LDA scaling %v should be superlinear here", l2/l1)
	}
}

func TestSparseMemoryFarBelowDense(t *testing.T) {
	// The 20News shape: dense LDA memory must exceed sparse SRDA's by
	// orders of magnitude (the paper's 2 GB wall).
	p := Problem{M: 9470, N: 26214, C: 20, K: 15, S: 80}
	ldaMem := LDA(p).Bytes()
	srdaMem := SRDALSQRSparse(p).Bytes()
	if ldaMem < 100*srdaMem {
		t.Fatalf("LDA %v bytes vs sparse SRDA %v bytes: expected >100x gap", ldaMem, srdaMem)
	}
	if ldaMem < 2e9 {
		t.Fatalf("LDA on the 20News shape should exceed 2GB, got %v", ldaMem)
	}
}

func TestTableHasAllRows(t *testing.T) {
	p := Problem{M: 100, N: 50, C: 4, K: 10, S: 20}
	rows := Table(p)
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Algorithm] = true
		if r.Flam <= 0 || r.MemWords <= 0 {
			t.Fatalf("non-positive counts for %s", r.Algorithm)
		}
	}
	for _, want := range []string{"LDA", "SRDA (normal equations)", "SRDA (LSQR, sparse)", "IDR/QR"} {
		if !seen[want] {
			t.Fatalf("missing row %q", want)
		}
	}
}

func TestRenderMentionsProblemAndAlgorithms(t *testing.T) {
	p := Problem{M: 10, N: 5, C: 2, K: 3, S: 5}
	s := Render(p, Table(p))
	for _, frag := range []string{"m=10", "LDA", "SRDA"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("render missing %q:\n%s", frag, s)
		}
	}
}

func TestIDRQRCheapestOnPaperShapes(t *testing.T) {
	// Table IV/VI/VIII show IDR/QR training fastest; the model must agree
	// on the dense shapes.
	for _, p := range []Problem{
		{M: 680, N: 1024, C: 68, K: 20, S: 1024},
		{M: 2860, N: 617, C: 26, K: 20, S: 617},
	} {
		idr := IDRQR(p).Flam
		if idr >= SRDANormal(p).Flam || idr >= LDA(p).Flam {
			t.Fatalf("IDR/QR not cheapest for %+v", p)
		}
	}
}
