// Package registry is the multi-tenant model store behind the sharded
// serving tier: one process holding many named, versioned SRDA models.
// "Millions of users" means many models, not just many requests — the
// paper's linear-time training makes per-tenant refits cheap, and this
// package is where those refits land.
//
// Each name carries a monotonically increasing version history.  Publish
// installs a new version atomically (readers mid-predict keep the model
// pointer they loaded, exactly like the single-model hot-reload path it
// generalizes); Rollback re-publishes the previous version under a fresh
// version number, so the version counter — and the model_seq gauge built
// on it — never moves backwards.  A byte budget bounds resident model
// memory: publishing past it evicts the least-recently-used names
// (never the one being published).
//
// The registry is safe for concurrent use; Get on the predict hot path
// takes only a read lock plus one atomic store for LRU accounting.
package registry

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"srda/internal/core"
	"srda/internal/obs"
)

// Options tunes a registry.  The zero value means: no byte budget, two
// retained versions per name, models keep their own Workers setting.
type Options struct {
	// MaxBytes caps the estimated resident bytes of all live versions;
	// 0 means unlimited.  Publishing past the budget evicts
	// least-recently-used names until the new total fits (the name being
	// published is never evicted, even if it alone exceeds the budget).
	MaxBytes int64
	// KeepVersions bounds the per-name history retained for Rollback
	// (default 2: the live version and its predecessor).
	KeepVersions int
	// Workers is stamped onto every published model's Workers knob so
	// batch projection sharding follows the server's worker budget
	// (0 leaves models untouched).
	Workers int
	// Logger receives publish/evict/rollback outcomes.  Nil disables
	// logging.
	Logger *obs.Logger
}

func (o Options) withDefaults() Options {
	if o.KeepVersions <= 0 {
		o.KeepVersions = 2
	}
	return o
}

// Snapshot is one immutable published version, the unit Get hands to the
// predict path.  Fields are never mutated after publish.
type Snapshot struct {
	// Name is the model's registry name (the tenant key the router
	// hashes).
	Name string
	// Model is the trained, centroided model.
	Model *core.Model
	// Version is the per-name monotonic publish counter (1 for the first
	// publish; rollbacks also advance it).
	Version uint64
	// Bytes is the estimated resident size charged against the budget.
	Bytes int64
	// LoadedAt records when this version was published.
	LoadedAt time.Time
}

// entry is one name's version history plus its LRU accounting.
type entry struct {
	versions []*Snapshot // oldest first; last is live
	lastUsed atomic.Uint64
}

func (e *entry) live() *Snapshot { return e.versions[len(e.versions)-1] }

// Registry is the concurrent model store.  Construct with New.
type Registry struct {
	mu     sync.RWMutex
	opts   Options
	models map[string]*entry
	bytes  int64 // sum of live-version bytes across all names
	clock  atomic.Uint64
	mx     *Metrics
}

// New creates an empty registry with its own metrics instruments.
func New(opts Options) *Registry {
	return &Registry{
		opts:   opts.withDefaults(),
		models: make(map[string]*entry),
		mx:     newMetrics(),
	}
}

// Metrics returns the registry's obs instrument set; the serving layer
// appends its exposition to /metrics.
func (r *Registry) Metrics() *obs.Registry { return r.mx.reg }

// EstimateBytes approximates a model's resident size: the projection
// matrix, intercepts, and centroids dominate, all float64.
func EstimateBytes(m *core.Model) int64 {
	if m == nil {
		return 0
	}
	n := int64(len(m.B))
	if m.W != nil {
		n += int64(len(m.W.Data))
	}
	if m.Centroids != nil {
		// The projection path also caches Wᵀ, so W is resident twice.
		n += int64(len(m.Centroids.Data))
		if m.W != nil {
			n += int64(len(m.W.Data))
		}
	}
	return n * 8
}

// Publish installs m as the next version of name and returns its
// snapshot.  The model must carry class centroids (i.e. come from
// Fit/FitCSR or a file they saved): the registry exists to serve, and a
// centroid-less model cannot classify.
func (r *Registry) Publish(name string, m *core.Model) (*Snapshot, error) {
	if name == "" {
		return nil, fmt.Errorf("registry: empty model name")
	}
	if m == nil {
		return nil, fmt.Errorf("registry: nil model for %q", name)
	}
	if m.Centroids == nil {
		return nil, fmt.Errorf("registry: model %q carries no class centroids; retrain with srda.Fit/FitCSR or srdatrain", name)
	}
	if r.opts.Workers > 0 {
		m.Workers = r.opts.Workers
	}
	snap := &Snapshot{
		Name:     name,
		Model:    m,
		Bytes:    EstimateBytes(m),
		LoadedAt: time.Now(),
	}
	r.mu.Lock()
	e := r.models[name]
	if e == nil {
		e = &entry{}
		r.models[name] = e
	} else {
		r.bytes -= e.live().Bytes
	}
	snap.Version = 1
	if len(e.versions) > 0 {
		snap.Version = e.live().Version + 1
	}
	e.versions = append(e.versions, snap)
	if over := len(e.versions) - r.opts.KeepVersions; over > 0 {
		e.versions = append([]*Snapshot(nil), e.versions[over:]...)
	}
	r.bytes += snap.Bytes
	e.lastUsed.Store(r.clock.Add(1))
	evicted := r.evictLocked(name)
	r.mu.Unlock()

	r.mx.publishes.With(name).Inc()
	r.updateGauges()
	r.opts.Logger.Info("model published", "model", name,
		"version", snap.Version, "bytes", snap.Bytes)
	for _, ev := range evicted {
		r.mx.evictions.Inc()
		r.opts.Logger.Warn("model evicted over byte budget", "model", ev,
			"budget_bytes", r.opts.MaxBytes)
	}
	return snap, nil
}

// evictLocked drops least-recently-used names (never keep) until the
// budget holds, returning the evicted names.  Caller holds r.mu.
func (r *Registry) evictLocked(keep string) []string {
	if r.opts.MaxBytes <= 0 {
		return nil
	}
	var evicted []string
	for r.bytes > r.opts.MaxBytes {
		victim := ""
		var oldest uint64
		//srdalint:ignore maprange min-by-(lastUsed, name) selection reads every entry; the name tie-break makes the pick order-free
		for name, e := range r.models {
			if name == keep {
				continue
			}
			if u := e.lastUsed.Load(); victim == "" || u < oldest || (u == oldest && name < victim) {
				victim, oldest = name, u
			}
		}
		if victim == "" {
			return evicted // only keep remains; it may exceed the budget alone
		}
		r.bytes -= r.models[victim].live().Bytes
		delete(r.models, victim)
		evicted = append(evicted, victim)
	}
	return evicted
}

// Get returns the live version of name.  It is the predict hot path:
// a read lock, one map lookup, and an atomic LRU stamp.
func (r *Registry) Get(name string) (*Snapshot, bool) {
	r.mu.RLock()
	e := r.models[name]
	var snap *Snapshot
	if e != nil {
		snap = e.live()
	}
	r.mu.RUnlock()
	if e == nil {
		r.mx.misses.With(name).Inc()
		return nil, false
	}
	e.lastUsed.Store(r.clock.Add(1))
	r.mx.hits.With(name).Inc()
	return snap, true
}

// Rollback re-publishes the previous version of name under a fresh
// version number, so the per-name counter stays monotonic and the swap
// rides the same atomic path as Publish.  In-flight batches finish on
// whichever version they loaded.
func (r *Registry) Rollback(name string) (*Snapshot, error) {
	r.mu.Lock()
	e := r.models[name]
	if e == nil {
		r.mu.Unlock()
		return nil, fmt.Errorf("registry: unknown model %q", name)
	}
	if len(e.versions) < 2 {
		r.mu.Unlock()
		return nil, fmt.Errorf("registry: model %q has no previous version to roll back to", name)
	}
	prev := e.versions[len(e.versions)-2]
	cur := e.live()
	snap := &Snapshot{
		Name:     name,
		Model:    prev.Model,
		Version:  cur.Version + 1,
		Bytes:    prev.Bytes,
		LoadedAt: time.Now(),
	}
	r.bytes += snap.Bytes - cur.Bytes
	e.versions = append(e.versions, snap)
	if over := len(e.versions) - r.opts.KeepVersions; over > 0 {
		e.versions = append([]*Snapshot(nil), e.versions[over:]...)
	}
	e.lastUsed.Store(r.clock.Add(1))
	r.mu.Unlock()

	r.mx.rollbacks.With(name).Inc()
	r.updateGauges()
	r.opts.Logger.Info("model rolled back", "model", name, "version", snap.Version)
	return snap, nil
}

// Delete removes name and its whole version history.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	e := r.models[name]
	if e != nil {
		r.bytes -= e.live().Bytes
		delete(r.models, name)
	}
	r.mu.Unlock()
	if e != nil {
		r.updateGauges()
	}
	return e != nil
}

// Len returns the number of live names.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.models)
}

// Bytes returns the estimated resident bytes of all live versions.
func (r *Registry) Bytes() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.bytes
}

// List returns the live snapshot of every name, sorted by name.
func (r *Registry) List() []*Snapshot {
	r.mu.RLock()
	out := make([]*Snapshot, 0, len(r.models))
	//srdalint:ignore maprange collect-then-sort: the slice is sorted by name immediately below
	for _, e := range r.models {
		out = append(out, e.live())
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// updateGauges refreshes the models/bytes gauges after a mutation.
func (r *Registry) updateGauges() {
	r.mu.RLock()
	n, b := len(r.models), r.bytes
	r.mu.RUnlock()
	r.mx.models.Set(int64(n))
	r.mx.bytes.Set(b)
}

// LoadDir publishes every regular file in dir as a model named after its
// base filename (extension stripped): tenant-a.srda becomes "tenant-a".
// It returns the published names, sorted.  A file that fails to load or
// publish aborts the walk with its error.
func (r *Registry) LoadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("registry: reading model dir: %w", err)
	}
	var names []string
	for _, de := range entries {
		if de.IsDir() {
			continue
		}
		name := strings.TrimSuffix(de.Name(), filepath.Ext(de.Name()))
		if name == "" {
			continue
		}
		m, err := core.LoadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			return nil, fmt.Errorf("registry: loading %s: %w", de.Name(), err)
		}
		if _, err := r.Publish(name, m); err != nil {
			return nil, err
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
