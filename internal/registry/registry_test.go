package registry

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"

	"srda/internal/core"
	"srda/internal/mat"
)

// trainBlobs fits a centroided model on well-separated Gaussian blobs.
func trainBlobs(t *testing.T, n, c int, seed int64) *core.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := 40 * c
	x := mat.NewDense(m, n)
	labels := make([]int, m)
	for i := 0; i < m; i++ {
		labels[i] = i % c
		row := x.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		row[0] += 8 * float64(labels[i])
	}
	model, err := core.FitDense(x, labels, c, core.Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.SetCentroids(model.TransformDense(x), labels); err != nil {
		t.Fatal(err)
	}
	return model
}

func probe(n int, class int) []float64 {
	x := make([]float64, n)
	x[0] = 8 * float64(class)
	return x
}

func TestPublishGetVersioning(t *testing.T) {
	r := New(Options{})
	if _, ok := r.Get("a"); ok {
		t.Fatal("empty registry returned a model")
	}
	mA := trainBlobs(t, 8, 3, 1)
	s1, err := r.Publish("a", mA)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Version != 1 || s1.Bytes != EstimateBytes(mA) {
		t.Fatalf("first publish: %+v", s1)
	}
	s2, err := r.Publish("a", trainBlobs(t, 8, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Version != 2 {
		t.Fatalf("second publish version = %d", s2.Version)
	}
	got, ok := r.Get("a")
	if !ok || got.Version != 2 {
		t.Fatalf("Get returned %+v, %v", got, ok)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	if r.Bytes() != got.Bytes {
		t.Fatalf("Bytes = %d, live version says %d", r.Bytes(), got.Bytes)
	}
	if r.mx.hits.Value("a") != 1 || r.mx.misses.Value("a") != 1 {
		t.Fatalf("hit/miss counters: %d/%d", r.mx.hits.Value("a"), r.mx.misses.Value("a"))
	}
}

func TestPublishRejects(t *testing.T) {
	r := New(Options{})
	if _, err := r.Publish("", trainBlobs(t, 8, 3, 1)); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := r.Publish("a", nil); err == nil {
		t.Fatal("nil model accepted")
	}
	m := trainBlobs(t, 8, 3, 1)
	m.Centroids = nil
	if _, err := r.Publish("a", m); err == nil {
		t.Fatal("centroid-less model accepted")
	}
}

// TestRollbackGolden pins the rollback contract: after publishing v2 and
// rolling back, the live model's predictions are bitwise identical to
// v1's, and the version counter keeps moving forward.
func TestRollbackGolden(t *testing.T) {
	r := New(Options{})
	mA := trainBlobs(t, 10, 3, 3)
	mB := trainBlobs(t, 10, 3, 4)
	if _, err := r.Publish("m", mA); err != nil {
		t.Fatal(err)
	}
	x := probe(10, 1)
	want := mA.TransformVec(x, nil)

	if _, err := r.Rollback("m"); err == nil {
		t.Fatal("rollback with a single version accepted")
	}
	if _, err := r.Publish("m", mB); err != nil {
		t.Fatal(err)
	}
	snap, err := r.Rollback("m")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 3 {
		t.Fatalf("rollback version = %d, want 3 (monotonic)", snap.Version)
	}
	if snap.Model != mA {
		t.Fatal("rollback did not reinstate the previous model")
	}
	got := snap.Model.TransformVec(x, nil)
	for d := range want {
		if math.Float64bits(got[d]) != math.Float64bits(want[d]) {
			t.Fatalf("dim %d: rollback embedding %x, v1 embedding %x",
				d, math.Float64bits(got[d]), math.Float64bits(want[d]))
		}
	}
	if _, err := r.Rollback("nope"); err == nil {
		t.Fatal("rollback of unknown model accepted")
	}
}

// TestEvictionLRU holds the byte budget: publishing past it evicts the
// least-recently-used name, a Get refreshes recency, and the name being
// published is never its own victim.
func TestEvictionLRU(t *testing.T) {
	mA := trainBlobs(t, 8, 3, 5)
	per := EstimateBytes(mA)
	r := New(Options{MaxBytes: 2 * per})
	for i, name := range []string{"a", "b"} {
		if _, err := r.Publish(name, trainBlobs(t, 8, 3, int64(5+i))); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the LRU victim.
	if _, ok := r.Get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	if _, err := r.Publish("c", trainBlobs(t, 8, 3, 7)); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("b"); ok {
		t.Fatal("LRU name b survived over budget")
	}
	for _, name := range []string{"a", "c"} {
		if _, ok := r.Get(name); !ok {
			t.Fatalf("%s evicted, want b", name)
		}
	}
	if r.Bytes() > 2*per {
		t.Fatalf("resident %d bytes over budget %d", r.Bytes(), 2*per)
	}
	if r.mx.evictions.Value() != 1 {
		t.Fatalf("evictions = %d", r.mx.evictions.Value())
	}
	// A single oversized publish keeps its own name even over budget.
	tiny := New(Options{MaxBytes: 1})
	if _, err := tiny.Publish("big", mA); err != nil {
		t.Fatal(err)
	}
	if _, ok := tiny.Get("big"); !ok {
		t.Fatal("publish evicted itself")
	}
}

// TestConcurrentPublishEvictPredict is the registry race test: readers
// predict through snapshots while writers publish, roll back, and force
// evictions.  Run under -race via make race.
func TestConcurrentPublishEvictPredict(t *testing.T) {
	base := trainBlobs(t, 8, 3, 8)
	per := EstimateBytes(base)
	r := New(Options{MaxBytes: 3 * per, KeepVersions: 2})
	names := []string{"t0", "t1", "t2", "t3"}
	models := make([]*core.Model, len(names))
	for i := range names {
		models[i] = trainBlobs(t, 8, 3, int64(20+i))
		if _, err := r.Publish(names[i], models[i]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	const rounds = 100
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := names[g]
			for i := 0; i < rounds; i++ {
				if _, err := r.Publish(name, models[g]); err != nil {
					t.Errorf("publish %s: %v", name, err)
					return
				}
				if i%10 == 9 {
					// Rollback may race an eviction of its own name and
					// report it unknown; that is a miss, not an error.
					_, _ = r.Rollback(name)
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			x := probe(8, g%3)
			for i := 0; i < rounds; i++ {
				snap, ok := r.Get(names[(g+i)%len(names)])
				if !ok {
					continue // evicted; a miss, not an error
				}
				if got := snap.Model.PredictVec(x); got < 0 || got >= 3 {
					t.Errorf("predict through snapshot returned class %d", got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Len() == 0 {
		t.Fatal("all models evicted")
	}
}

func TestDeleteAndList(t *testing.T) {
	r := New(Options{})
	for i := 0; i < 3; i++ {
		if _, err := r.Publish(fmt.Sprintf("m%d", i), trainBlobs(t, 8, 3, int64(30+i))); err != nil {
			t.Fatal(err)
		}
	}
	ls := r.List()
	if len(ls) != 3 || ls[0].Name != "m0" || ls[2].Name != "m2" {
		t.Fatalf("List = %+v", ls)
	}
	if !r.Delete("m1") || r.Delete("m1") {
		t.Fatal("Delete semantics wrong")
	}
	if r.Len() != 2 {
		t.Fatalf("Len after delete = %d", r.Len())
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	want := map[string]*core.Model{}
	for i, name := range []string{"alpha", "beta", "gamma"} {
		m := trainBlobs(t, 8, 3, int64(40+i))
		if err := m.SaveFile(filepath.Join(dir, name+".srda")); err != nil {
			t.Fatal(err)
		}
		want[name] = m
	}
	r := New(Options{})
	names, err := r.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "alpha" || names[2] != "gamma" {
		t.Fatalf("LoadDir names = %v", names)
	}
	for name, m := range want {
		snap, ok := r.Get(name)
		if !ok {
			t.Fatalf("%s not published", name)
		}
		x := probe(8, 2)
		if snap.Model.PredictVec(x) != m.PredictVec(x) {
			t.Fatalf("%s round-trips with different predictions", name)
		}
	}
	if _, err := r.LoadDir(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("missing dir accepted")
	}
}
