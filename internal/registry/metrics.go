package registry

import "srda/internal/obs"

// Metrics is the registry's instrument set on its own obs registry, so a
// worker can append the exposition to its /metrics without colliding
// with the serve instruments.  Registration order is exposition order;
// new instruments go at the end.
type Metrics struct {
	reg       *obs.Registry
	publishes *obs.CounterVec // model
	hits      *obs.CounterVec // model
	misses    *obs.CounterVec // model
	rollbacks *obs.CounterVec // model
	evictions *obs.Counter
	models    *obs.Gauge
	bytes     *obs.Gauge
}

func newMetrics() *Metrics {
	reg := obs.NewRegistry()
	return &Metrics{
		reg: reg,
		publishes: reg.NewCounterVec("srdareg_publishes_total",
			"Model versions published, by model name.", "model"),
		hits: reg.NewCounterVec("srdareg_hits_total",
			"Registry lookups that found a live model, by model name.", "model"),
		misses: reg.NewCounterVec("srdareg_misses_total",
			"Registry lookups for unknown or evicted models, by requested name.", "model"),
		rollbacks: reg.NewCounterVec("srdareg_rollbacks_total",
			"Version rollbacks, by model name.", "model"),
		evictions: reg.NewCounter("srdareg_evictions_total",
			"Models evicted by the LRU byte budget."),
		models: reg.NewGauge("srdareg_models",
			"Live model names resident in the registry."),
		bytes: reg.NewGauge("srdareg_bytes",
			"Estimated resident bytes of all live model versions."),
	}
}
