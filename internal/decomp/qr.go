package decomp

import (
	"errors"
	"math"

	"srda/internal/blas"
	"srda/internal/mat"
)

// QR holds a Householder QR factorization of an m×n matrix A (m >= n is
// typical but not required): A = Q*R with Q m×m orthogonal and R m×n upper
// triangular.  The factorization is stored compactly: the Householder
// vectors live below the diagonal of qr and R on and above it.
type QR struct {
	qr   *mat.Dense // compact storage
	tau  []float64  // Householder scalars
	m, n int
}

// NewQR factors A (which is left unmodified).
func NewQR(a *mat.Dense) *QR {
	m, n := a.Rows, a.Cols
	f := &QR{qr: a.Clone(), tau: make([]float64, min(m, n)), m: m, n: n}
	work := make([]float64, n)
	for k := 0; k < len(f.tau); k++ {
		// Build the Householder reflector for column k from row k down.
		colNorm := 0.0
		for i := k; i < m; i++ {
			v := f.qr.At(i, k)
			colNorm = math.Hypot(colNorm, v)
		}
		if colNorm == 0 { //srdalint:ignore floatcmp an exactly zero column norm has no reflector
			f.tau[k] = 0
			continue
		}
		alpha := f.qr.At(k, k)
		if alpha > 0 {
			colNorm = -colNorm
		}
		// v = x - colNorm*e1, normalized so v[0] = 1.
		v0 := alpha - colNorm
		f.qr.Set(k, k, colNorm)
		for i := k + 1; i < m; i++ {
			f.qr.Set(i, k, f.qr.At(i, k)/v0)
		}
		f.tau[k] = -v0 / colNorm
		// Apply (I - tau v vᵀ) to the trailing columns.
		if k+1 < n {
			nw := n - k - 1
			w := work[:nw]
			for j := range w {
				w[j] = 0
			}
			// w = vᵀ * A[k:, k+1:]
			for i := k; i < m; i++ {
				vi := 1.0
				if i > k {
					vi = f.qr.At(i, k)
				}
				blas.Axpy(vi, f.qr.RowView(i)[k+1:n], w)
			}
			// A[k:, k+1:] -= tau * v * wᵀ
			for i := k; i < m; i++ {
				vi := 1.0
				if i > k {
					vi = f.qr.At(i, k)
				}
				blas.Axpy(-f.tau[k]*vi, w, f.qr.RowView(i)[k+1:n])
			}
		}
	}
	return f
}

// R returns the min(m,n)×n upper-triangular factor (the "thin" R).
func (f *QR) R() *mat.Dense {
	k := min(f.m, f.n)
	r := mat.NewDense(k, f.n)
	for i := 0; i < k; i++ {
		copy(r.RowView(i)[i:], f.qr.RowView(i)[i:f.n])
	}
	return r
}

// ThinQ returns the m×min(m,n) orthonormal factor Q₁ with A = Q₁R.
func (f *QR) ThinQ() *mat.Dense {
	k := min(f.m, f.n)
	q := mat.NewDense(f.m, k)
	for j := 0; j < k; j++ {
		q.Set(j, j, 1)
	}
	// Apply H_k ... H_1 to the identity columns: Q = H_0 H_1 ... H_{k-1} I.
	for j := k - 1; j >= 0; j-- {
		f.applyReflector(j, q)
	}
	return q
}

// applyReflector applies (I - tau_j v_j v_jᵀ) to all columns of B in place,
// where B has f.m rows.
func (f *QR) applyReflector(j int, b *mat.Dense) {
	tau := f.tau[j]
	if tau == 0 { //srdalint:ignore floatcmp tau is set to exactly 0 for skipped reflectors
		return
	}
	w := make([]float64, b.Cols)
	for i := j; i < f.m; i++ {
		vi := 1.0
		if i > j {
			vi = f.qr.At(i, j)
		}
		blas.Axpy(vi, b.RowView(i), w)
	}
	for i := j; i < f.m; i++ {
		vi := 1.0
		if i > j {
			vi = f.qr.At(i, j)
		}
		blas.Axpy(-tau*vi, w, b.RowView(i))
	}
}

// QTMul computes QᵀB in place of a copy of B (B has m rows), returning it.
// This is the building block for least-squares solves.
func (f *QR) QTMul(b *mat.Dense) *mat.Dense {
	if b.Rows != f.m {
		panic("decomp: QTMul dimension mismatch")
	}
	out := b.Clone()
	for j := 0; j < len(f.tau); j++ {
		f.applyReflector(j, out)
	}
	return out
}

// SolveLS solves the least-squares problem min ‖A x - b‖ for each column of
// b, requiring m >= n and full column rank.  Returns the n×cols solution.
func (f *QR) SolveLS(b *mat.Dense) (*mat.Dense, error) {
	if f.m < f.n {
		return nil, errors.New("decomp: SolveLS requires m >= n")
	}
	qtb := f.QTMul(b)
	x := mat.NewDense(f.n, b.Cols)
	for j := 0; j < b.Cols; j++ {
		for i := f.n - 1; i >= 0; i-- {
			ri := f.qr.RowView(i)
			s := qtb.At(i, j)
			for k := i + 1; k < f.n; k++ {
				s -= ri[k] * x.At(k, j)
			}
			d := ri[i]
			if d == 0 { //srdalint:ignore floatcmp exact zero pivot marks structural rank deficiency
				return nil, errors.New("decomp: rank-deficient matrix in SolveLS")
			}
			x.Set(i, j, s/d)
		}
	}
	return x, nil
}

// GramSchmidt orthonormalizes the columns of A in place using modified
// Gram–Schmidt with one reorthogonalization pass, returning the number of
// independent columns kept.  Columns that are (numerically) dependent on
// earlier ones are zeroed.  This is the routine SRDA's responses-generation
// step uses (eq. 15–16 of the paper).
func GramSchmidt(a *mat.Dense, tol float64) int {
	m, n := a.Rows, a.Cols
	col := make([]float64, m)
	kept := 0
	for j := 0; j < n; j++ {
		a.ColCopy(j, col)
		orig := blas.Nrm2(col)
		for pass := 0; pass < 2; pass++ {
			for k := 0; k < j; k++ {
				// project out column k (already unit or zero)
				var dot float64
				for i := 0; i < m; i++ {
					dot += a.At(i, k) * col[i]
				}
				if dot == 0 { //srdalint:ignore floatcmp exact zero dot contributes nothing to reorthogonalization
					continue
				}
				for i := 0; i < m; i++ {
					col[i] -= dot * a.At(i, k)
				}
			}
		}
		nrm := blas.Nrm2(col)
		if orig == 0 || nrm <= tol*orig { //srdalint:ignore floatcmp exact zero original norm marks the dependent column
			for i := 0; i < m; i++ {
				col[i] = 0
			}
		} else {
			blas.Scal(1/nrm, col)
			kept++
		}
		a.SetCol(j, col)
	}
	return kept
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
