package decomp

import (
	"errors"

	"srda/internal/mat"
)

// NewRandomizedSVD computes an approximate rank-k truncated SVD with the
// randomized range-finder of Halko, Martinsson & Tropp (2011): sample the
// range with a Gaussian test matrix, optionally run power iterations to
// sharpen the spectrum, orthonormalize, and solve the small projected
// problem exactly.
//
// This is the modern alternative to the paper's cross-product SVD for the
// classical-LDA baseline: O(m·n·(k+p)) instead of O(m·n·t), at the cost
// of approximation error concentrated in the trailing retained singular
// values.  Exposed primarily for the ablation benchmarks; the LDA
// implementation keeps the paper's exact route.
//
// oversample (p) defaults to 8, powerIters to 2, and seed fixes the test
// matrix for reproducibility.
func NewRandomizedSVD(a *mat.Dense, k, oversample, powerIters int, seed int64) (*SVD, error) {
	m, n := a.Rows, a.Cols
	if k <= 0 {
		return nil, errors.New("decomp: randomized SVD needs k >= 1")
	}
	t := m
	if n < t {
		t = n
	}
	if k > t {
		k = t
	}
	if oversample <= 0 {
		oversample = 8
	}
	if powerIters < 0 {
		powerIters = 0
	}
	l := k + oversample
	if l > t {
		l = t
	}

	// Gaussian test matrix Ω (n×l) from a deterministic xorshift-based
	// normal sampler (Box–Muller on a 64-bit LCG).
	omega := mat.NewDense(n, l)
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/float64(1<<53)*2 - 1 // uniform(-1,1)
	}
	for i := range omega.Data {
		// sum of 6 uniforms ≈ normal (Irwin–Hall), adequate for a range
		// finder where only non-degeneracy matters
		var s float64
		for r := 0; r < 6; r++ {
			s += next()
		}
		omega.Data[i] = s
	}

	// Range sampling with power iterations: Y = (AAᵀ)^q A Ω.
	y := mat.Mul(a, omega) // m×l
	GramSchmidt(y, 1e-12)
	for q := 0; q < powerIters; q++ {
		z := mat.MulTA(a, y) // n×l
		GramSchmidt(z, 1e-12)
		y = mat.Mul(a, z)
		GramSchmidt(y, 1e-12)
	}

	// Project: B = Qᵀ A (l×n), exact SVD of the small B.
	b := mat.MulTA(y, a)
	inner, err := NewSVD(b, 0)
	if err != nil {
		return nil, err
	}
	r := inner.Rank()
	if r > k {
		r = k
	}
	if r == 0 {
		return nil, errors.New("decomp: randomized SVD found rank 0")
	}
	// U = Q · U_B (m×r), V = V_B.
	u := mat.Mul(y, inner.U.Slice(0, inner.U.Rows, 0, r).Clone())
	v := inner.V.Slice(0, n, 0, r).Clone()
	return &SVD{U: u, V: v, Sigma: inner.Sigma[:r]}, nil
}
