package decomp

import (
	"math"
	"math/rand"
	"testing"

	"srda/internal/mat"
)

func TestPCAFullRankReconstructsExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randDense(rng, 30, 8)
	p, err := NewPCA(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Dim() != 8 {
		t.Fatalf("dim %d", p.Dim())
	}
	if err := math.Abs(p.ExplainedRatio() - 1); err > 1e-10 {
		t.Fatalf("full-rank explained ratio %v", p.ExplainedRatio())
	}
	if mse := p.ReconstructionError(x); mse > 1e-12 {
		t.Fatalf("full-rank reconstruction error %v", mse)
	}
}

func TestPCAComponentsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randDense(rng, 40, 10)
	p, err := NewPCA(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	g := mat.MulTA(p.Components, p.Components)
	if !mat.Equalish(g, mat.Identity(4), 1e-9) {
		t.Fatal("components not orthonormal")
	}
}

func TestPCAVariancesDescendAndSum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randDense(rng, 50, 6)
	p, err := NewPCA(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i, v := range p.Variances {
		sum += v
		if i > 0 && v > p.Variances[i-1]+1e-12 {
			t.Fatal("variances not descending")
		}
	}
	// total variance equals trace of sample covariance
	xc := x.Clone()
	xc.CenterRows()
	var trace float64
	for i := 0; i < xc.Rows; i++ {
		row := xc.RowView(i)
		for _, v := range row {
			trace += v * v
		}
	}
	trace /= float64(x.Rows - 1)
	if math.Abs(sum-trace) > 1e-8*(1+trace) {
		t.Fatalf("variance sum %v vs trace %v", sum, trace)
	}
}

func TestPCATruncationCapturesDominantDirection(t *testing.T) {
	// Data spread 20x wider along a known direction: the first component
	// must align with it.
	rng := rand.New(rand.NewSource(4))
	n := 6
	x := mat.NewDense(200, n)
	dir := make([]float64, n)
	for j := range dir {
		dir[j] = 1 / math.Sqrt(float64(n))
	}
	for i := 0; i < 200; i++ {
		row := x.RowView(i)
		c := 20 * rng.NormFloat64()
		for j := range row {
			row[j] = c*dir[j] + rng.NormFloat64()
		}
	}
	p, err := NewPCA(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	var dot float64
	for j := 0; j < n; j++ {
		dot += p.Components.At(j, 0) * dir[j]
	}
	if math.Abs(dot) < 0.98 {
		t.Fatalf("first component misaligned: |cos|=%v", math.Abs(dot))
	}
	if p.ExplainedRatio() < 0.9 {
		t.Fatalf("dominant direction explains only %v", p.ExplainedRatio())
	}
}

func TestPCATransformCentersTrainingData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randDense(rng, 25, 5)
	// shift all features by 100 to make centering observable
	for i := range x.Data {
		x.Data[i] += 100
	}
	p, err := NewPCA(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	z := p.Transform(x)
	for j := 0; j < z.Cols; j++ {
		var s float64
		for i := 0; i < z.Rows; i++ {
			s += z.At(i, j)
		}
		if math.Abs(s/float64(z.Rows)) > 1e-8 {
			t.Fatalf("projected mean %v not zero", s/float64(z.Rows))
		}
	}
}

func TestPCAValidation(t *testing.T) {
	if _, err := NewPCA(mat.NewDense(1, 3), 0); err == nil {
		t.Fatal("single sample accepted")
	}
	if _, err := NewPCA(mat.NewDense(5, 3), 0); err == nil {
		t.Fatal("all-zero (rank 0) data accepted")
	}
}
