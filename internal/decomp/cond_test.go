package decomp

import (
	"math"
	"testing"

	"srda/internal/mat"
)

// TestCondEstimateDiagonal: for a diagonal SPD matrix the diagonal-ratio
// estimate is the exact 2-norm condition number.
func TestCondEstimateDiagonal(t *testing.T) {
	a := mat.NewDense(3, 3)
	a.Set(0, 0, 100)
	a.Set(1, 1, 4)
	a.Set(2, 2, 1)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// R = diag(10, 2, 1): estimate = (10/1)² = 100 = κ₂(A).
	if got := ch.CondEstimate(); math.Abs(got-100) > 1e-12 {
		t.Fatalf("CondEstimate = %v, want 100", got)
	}
}

// TestCondEstimateIdentityIsOne: a perfectly conditioned matrix reports 1.
func TestCondEstimateIdentityIsOne(t *testing.T) {
	a := mat.NewDense(4, 4)
	for i := 0; i < 4; i++ {
		a.Set(i, i, 2)
	}
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got := ch.CondEstimate(); got != 1 {
		t.Fatalf("CondEstimate = %v, want 1", got)
	}
}
