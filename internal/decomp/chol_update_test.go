package decomp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"srda/internal/mat"
)

// cholHealthy reports whether R is a plausible Cholesky factor: upper
// triangular, positive diagonal, every entry finite.
func cholHealthy(r *mat.Dense) bool {
	for i := 0; i < r.Rows; i++ {
		row := r.RowView(i)
		for j := 0; j < r.Cols; j++ {
			if math.IsNaN(row[j]) || math.IsInf(row[j], 0) {
				return false
			}
			if j < i && row[j] != 0 {
				return false
			}
		}
		if row[i] <= 0 {
			return false
		}
	}
	return true
}

// TestCholUpdateDowndateRoundTripProperty is the streaming trainer's
// retire-a-sample invariant as a property: K rank-one updates followed
// by the same K downdates in reverse order must recover the original
// factor, and the factor must stay healthy (upper triangular, positive
// diagonal, finite) at every intermediate step.
func TestCholUpdateDowndateRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		k := 1 + rng.Intn(5)
		a := randSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		before := ch.R.Clone()
		vs := make([][]float64, k)
		for i := range vs {
			vs[i] = make([]float64, n)
			for j := range vs[i] {
				vs[i][j] = rng.NormFloat64()
			}
			ch.Update(vs[i])
			if !cholHealthy(ch.R) {
				return false
			}
		}
		for i := k - 1; i >= 0; i-- {
			if err := ch.Downdate(vs[i]); err != nil {
				return false
			}
			if !cholHealthy(ch.R) {
				return false
			}
		}
		return mat.MaxAbsDiff(ch.R, before) <= 1e-6*(1+before.Norm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestCholDowndateFailureLeavesFactorIntact: a downdate that would lose
// positive definiteness must surface as ErrNotPositiveDefinite — never
// as NaNs — and must leave R bitwise untouched, so the caller's factor
// stays usable after the rejection.
func TestCholDowndateFailureLeavesFactorIntact(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(8)
		a := randSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		before := ch.R.Clone()
		// Removing a large multiple of any direction loses definiteness:
		// vᵀ here has norm far beyond the spectrum randSPD produces.
		v := make([]float64, n)
		for i := range v {
			v[i] = 100 * (1 + rng.Float64())
		}
		if err := ch.Downdate(v); err == nil {
			t.Fatalf("trial %d: indefinite downdate accepted", trial)
		}
		for i := range ch.R.Data {
			if math.Float64bits(ch.R.Data[i]) != math.Float64bits(before.Data[i]) {
				t.Fatalf("trial %d: rejected downdate mutated R[%d]: %v vs %v",
					trial, i, ch.R.Data[i], before.Data[i])
			}
		}
		if !cholHealthy(ch.R) {
			t.Fatalf("trial %d: factor unhealthy after rejected downdate", trial)
		}
	}
}

// FuzzCholUpdate cross-checks Update against full refactorization and
// Downdate against Update for fuzzer-chosen shapes, seeds, and vector
// scales.  The checked-in corpus pins the regimes that matter: tiny and
// near-cap dimensions, huge and denormal-small scales, and zero vectors
// (the Givens sweep's skip path).
func FuzzCholUpdate(f *testing.F) {
	f.Add(int64(1), int64(1), 1.0)
	f.Add(int64(2), int64(4), 0.0)
	f.Add(int64(3), int64(8), 1e8)
	f.Add(int64(4), int64(32), 1e-150)
	f.Add(int64(5), int64(17), -3.5)
	f.Fuzz(func(t *testing.T, seed, n int64, scale float64) {
		if n < 1 {
			n = 1
		}
		if n > 32 {
			n = 32
		}
		if math.IsNaN(scale) || math.IsInf(scale, 0) || math.Abs(scale) > 1e100 {
			scale = 1
		}
		dim := int(n)
		rng := rand.New(rand.NewSource(seed))
		a := randSPD(rng, dim)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("randSPD not accepted: %v", err)
		}
		before := ch.R.Clone()
		v := make([]float64, dim)
		for i := range v {
			v[i] = scale * rng.NormFloat64()
		}
		ch.Update(v)
		if !cholHealthy(ch.R) {
			t.Fatalf("unhealthy factor after update (n=%d scale=%g)", dim, scale)
		}
		// RᵀR must equal A + vvᵀ to refactorization accuracy.
		fresh := a.Clone()
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				fresh.Set(i, j, fresh.At(i, j)+v[i]*v[j])
			}
		}
		rtr := mat.MulTA(ch.R, ch.R)
		if d := mat.MaxAbsDiff(rtr, fresh); d > 1e-7*(1+fresh.Norm()) {
			t.Fatalf("update drifted from refactorization by %v (n=%d scale=%g)", d, dim, scale)
		}
		// Downdating the just-updated vector either recovers the original
		// factor or — when v dominates A so badly that ρ² cancels to ≤ 0 —
		// rejects cleanly, leaving the updated factor bitwise untouched.
		// Either way the factor must stay healthy; NaNs are never an
		// acceptable outcome.
		updated := ch.R.Clone()
		if err := ch.Downdate(v); err != nil {
			for i := range ch.R.Data {
				if math.Float64bits(ch.R.Data[i]) != math.Float64bits(updated.Data[i]) {
					t.Fatalf("rejected downdate mutated R[%d] (n=%d scale=%g)", i, dim, scale)
				}
			}
			return
		}
		if !cholHealthy(ch.R) {
			t.Fatalf("unhealthy factor after downdate (n=%d scale=%g)", dim, scale)
		}
		if d := mat.MaxAbsDiff(ch.R, before); d > 1e-6*math.Max(1, math.Abs(scale))*(1+before.Norm()) {
			t.Fatalf("update+downdate drifted from identity by %v (n=%d scale=%g)", d, dim, scale)
		}
	})
}
