// Package decomp implements the dense matrix decompositions the SRDA
// pipeline and its baselines need: Cholesky factorization (normal
// equations, eq. 20–21 of the paper), Householder QR (IDR/QR baseline and
// orthogonalization), a symmetric eigensolver (Householder tridiagonal
// reduction followed by implicit-shift QL iteration), and the
// cross-product SVD described in §II-B of the paper.  Everything is
// stdlib-only float64.
package decomp

import (
	"errors"
	"math"

	"srda/internal/blas"
	"srda/internal/mat"
)

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("decomp: matrix is not positive definite")

// Cholesky holds the upper-triangular factor R of A = RᵀR for a symmetric
// positive definite A.
type Cholesky struct {
	// R is upper triangular with positive diagonal; entries below the
	// diagonal are zero.
	R *mat.Dense
}

// NewCholesky factors the symmetric positive definite n×n matrix A.
// Only the upper triangle of A is read.  It returns
// ErrNotPositiveDefinite when a non-positive pivot is encountered.
func NewCholesky(a *mat.Dense) (*Cholesky, error) {
	n := a.Rows
	if a.Cols != n {
		panic("decomp: Cholesky of non-square matrix")
	}
	r := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		copy(r.RowView(i)[i:], a.RowView(i)[i:])
	}
	for k := 0; k < n; k++ {
		rk := r.RowView(k)
		d := rk[k]
		if d <= 0 || math.IsNaN(d) {
			return nil, ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		rk[k] = d
		inv := 1 / d
		for j := k + 1; j < n; j++ {
			rk[j] *= inv
		}
		for i := k + 1; i < n; i++ {
			blas.Axpy(-rk[i], rk[i:], r.RowView(i)[i:])
		}
	}
	return &Cholesky{R: r}, nil
}

// SolveVec solves A x = b in place of dst (allocated when nil) via the two
// triangular solves Rᵀ y = b, R x = y.
func (c *Cholesky) SolveVec(b, dst []float64) []float64 {
	n := c.R.Rows
	if len(b) != n {
		panic("decomp: SolveVec length mismatch")
	}
	if dst == nil {
		dst = make([]float64, n)
	}
	copy(dst, b)
	// Forward substitution with Rᵀ (lower triangular): y[i] =
	// (b[i] - Σ_{k<i} R[k][i] y[k]) / R[i][i].  Iterate k outer so each
	// computed y[k] is scattered along row k of R — unit-stride.
	for k := 0; k < n; k++ {
		rk := c.R.RowView(k)
		dst[k] /= rk[k]
		blas.Axpy(-dst[k], rk[k+1:], dst[k+1:])
	}
	// Back substitution with R (upper triangular).
	for i := n - 1; i >= 0; i-- {
		ri := c.R.RowView(i)
		s := dst[i] - blas.Dot(ri[i+1:], dst[i+1:])
		dst[i] = s / ri[i]
	}
	return dst
}

// Solve solves A X = B column by column, returning a new matrix.
func (c *Cholesky) Solve(b *mat.Dense) *mat.Dense {
	n := c.R.Rows
	if b.Rows != n {
		panic("decomp: Solve dimension mismatch")
	}
	x := mat.NewDense(n, b.Cols)
	col := make([]float64, n)
	out := make([]float64, n)
	for j := 0; j < b.Cols; j++ {
		b.ColCopy(j, col)    //srdalint:ignore hotalloc col is preallocated in the prologue; ColCopy's make runs only on its nil-dst convenience path
		c.SolveVec(col, out) //srdalint:ignore hotalloc out is preallocated in the prologue; SolveVec's make runs only on its nil-dst convenience path
		x.SetCol(j, out)
	}
	return x
}

// CondEstimate returns a cheap 2-norm condition-number estimate of the
// factored matrix A = RᵀR: (max_i R_ii / min_i R_ii)².  The diagonal of
// the Cholesky factor brackets A's spectrum — max R_ii² ≤ λ_max and
// min R_ii² ≥ λ_min / n — so the square of the diagonal ratio tracks
// κ₂(A) to within a factor of n, which is all the refit health gauges
// need (they watch orders of magnitude, not digits).  Returns 1 for an
// empty factor.
func (c *Cholesky) CondEstimate() float64 {
	n := c.R.Rows
	if n == 0 {
		return 1
	}
	lo, hi := c.R.At(0, 0), c.R.At(0, 0)
	for i := 1; i < n; i++ {
		d := c.R.At(i, i)
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	r := hi / lo
	return r * r
}

// LogDet returns the log-determinant of A (twice the log of the product of
// R's diagonal).
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.R.Rows; i++ {
		s += math.Log(c.R.At(i, i))
	}
	return 2 * s
}

// SolveSPD is a convenience wrapper: factor A and solve A X = B.
func SolveSPD(a, b *mat.Dense) (*mat.Dense, error) {
	ch, err := NewCholesky(a)
	if err != nil {
		return nil, err
	}
	return ch.Solve(b), nil
}

// Update performs the rank-one update A ← A + v·vᵀ on the factorization
// in place (the LINPACK dchud Givens sweep): after the call, RᵀR equals
// the updated matrix.  Cost is O(n²); this is the primitive behind exact
// incremental SRDA, where every new training sample is a rank-one update
// of the regularized Gram matrix.  The input vector is not modified.
func (c *Cholesky) Update(v []float64) {
	n := c.R.Rows
	if len(v) != n {
		panic("decomp: Update length mismatch")
	}
	w := append([]float64(nil), v...)
	for k := 0; k < n; k++ {
		rk := c.R.RowView(k)
		if w[k] == 0 { //srdalint:ignore floatcmp exact zero weight contributes nothing to the update
			continue
		}
		r := math.Hypot(rk[k], w[k])
		cs := rk[k] / r
		sn := w[k] / r
		rk[k] = r
		for j := k + 1; j < n; j++ {
			t := rk[j]
			rk[j] = cs*t + sn*w[j]
			w[j] = cs*w[j] - sn*t
		}
	}
}

// Downdate performs the rank-one downdate A ← A − v·vᵀ (LINPACK dchdd),
// returning ErrNotPositiveDefinite when the result would lose positive
// definiteness.  Used to retire samples from an incremental model.
func (c *Cholesky) Downdate(v []float64) error {
	n := c.R.Rows
	if len(v) != n {
		panic("decomp: Downdate length mismatch")
	}
	// Solve Rᵀ p = v, then check ρ² = 1 − ‖p‖² > 0.
	p := append([]float64(nil), v...)
	for k := 0; k < n; k++ {
		rk := c.R.RowView(k)
		p[k] /= rk[k]
		blas.Axpy(-p[k], rk[k+1:], p[k+1:])
	}
	rho2 := 1.0
	for _, pi := range p {
		rho2 -= pi * pi
	}
	if rho2 <= 0 {
		return ErrNotPositiveDefinite
	}
	rho := math.Sqrt(rho2)
	// Apply the inverse Givens sweep from the bottom up.
	w := make([]float64, n)
	for k := n - 1; k >= 0; k-- {
		r := math.Hypot(rho, p[k])
		cs := rho / r
		sn := p[k] / r
		rho = r
		rk := c.R.RowView(k)
		for j := k; j < n; j++ {
			t := rk[j]
			rk[j] = cs*t - sn*w[j]
			w[j] = cs*w[j] + sn*t
		}
		if rk[k] < 0 {
			blas.Scal(-1, rk[k:])
		}
	}
	return nil
}

// SolveUpperTranspose solves Rᵀ·X = B for upper-triangular R by forward
// substitution, returning a new matrix.
func SolveUpperTranspose(r *mat.Dense, b *mat.Dense) *mat.Dense {
	n := r.Rows
	x := b.Clone()
	for i := 0; i < n; i++ {
		ri := r.RowView(i)
		xi := x.RowView(i)
		blas.Scal(1/ri[i], xi)
		for k := i + 1; k < n; k++ {
			blas.Axpy(-ri[k], xi, x.RowView(k))
		}
	}
	return x
}

// SolveUpperVec solves R·x = v in place for upper-triangular R.
func SolveUpperVec(r *mat.Dense, v []float64) {
	n := r.Rows
	for i := n - 1; i >= 0; i-- {
		ri := r.RowView(i)
		s := v[i] - blas.Dot(ri[i+1:], v[i+1:])
		v[i] = s / ri[i]
	}
}
