package decomp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"srda/internal/mat"
)

func randDense(rng *rand.Rand, r, c int) *mat.Dense {
	m := mat.NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// randSPD returns a random symmetric positive definite matrix AᵀA + I.
func randSPD(rng *rand.Rand, n int) *mat.Dense {
	a := randDense(rng, n+3, n)
	g := mat.Gram(a)
	for i := 0; i < n; i++ {
		g.Set(i, i, g.At(i, i)+1)
	}
	return g
}

func TestCholeskyFactorReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 20, 50} {
		a := randSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rtr := mat.MulTA(ch.R, ch.R)
		if d := mat.MaxAbsDiff(rtr, a); d > 1e-8*(1+a.Norm()) {
			t.Fatalf("n=%d: RᵀR differs from A by %v", n, d)
		}
		// R upper triangular with positive diagonal
		for i := 0; i < n; i++ {
			if ch.R.At(i, i) <= 0 {
				t.Fatalf("nonpositive diagonal at %d", i)
			}
			for j := 0; j < i; j++ {
				if ch.R.At(i, j) != 0 {
					t.Fatalf("nonzero below diagonal at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestCholeskySolveVec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 30
	a := randSPD(rng, n)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := a.MulVec(xTrue, nil)
	x := ch.SolveVec(b, nil)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-7 {
			t.Fatalf("x[%d]=%v want %v", i, x[i], xTrue[i])
		}
	}
}

func TestCholeskySolveMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 12
	a := randSPD(rng, n)
	xTrue := randDense(rng, n, 4)
	b := mat.Mul(a, xTrue)
	x, err := SolveSPD(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.MaxAbsDiff(x, xTrue); d > 1e-7 {
		t.Fatalf("solution differs by %v", d)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := mat.FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err != ErrNotPositiveDefinite {
		t.Fatalf("err=%v want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyLogDet(t *testing.T) {
	a := mat.FromRows([][]float64{{4, 0}, {0, 9}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ch.LogDet(), math.Log(36); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LogDet=%v want %v", got, want)
	}
}

func TestCholeskySolvePropertyRandomSPD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		a := randSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := ch.SolveVec(b, nil)
		ax := a.MulVec(x, nil)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-6*(1+math.Abs(b[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func orthoError(q *mat.Dense) float64 {
	g := mat.MulTA(q, q)
	var worst float64
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if d := math.Abs(g.At(i, j) - want); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestQRReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dims := range [][2]int{{5, 3}, {10, 10}, {40, 7}, {3, 5}} {
		m, n := dims[0], dims[1]
		a := randDense(rng, m, n)
		f := NewQR(a)
		q, r := f.ThinQ(), f.R()
		qr := mat.Mul(q, r)
		if d := mat.MaxAbsDiff(qr, a); d > 1e-9 {
			t.Fatalf("dims=%v: QR differs from A by %v", dims, d)
		}
		if e := orthoError(q); e > 1e-9 {
			t.Fatalf("dims=%v: Q not orthonormal, err=%v", dims, e)
		}
		// R upper triangular
		for i := 0; i < r.Rows; i++ {
			for j := 0; j < i && j < r.Cols; j++ {
				if math.Abs(r.At(i, j)) > 1e-12 {
					t.Fatalf("R not triangular at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestQRDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randDense(rng, 6, 4)
	before := a.Clone()
	NewQR(a)
	if !mat.Equalish(a, before, 0) {
		t.Fatal("NewQR modified its input")
	}
}

func TestQRSolveLS(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, n := 50, 8
	a := randDense(rng, m, n)
	xTrue := randDense(rng, n, 2)
	b := mat.Mul(a, xTrue)
	f := NewQR(a)
	x, err := f.SolveLS(b)
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.MaxAbsDiff(x, xTrue); d > 1e-8 {
		t.Fatalf("LS solution off by %v", d)
	}
}

func TestQRSolveLSResidualOrthogonality(t *testing.T) {
	// For inconsistent systems the residual must be orthogonal to range(A).
	rng := rand.New(rand.NewSource(7))
	m, n := 30, 5
	a := randDense(rng, m, n)
	b := randDense(rng, m, 1)
	f := NewQR(a)
	x, err := f.SolveLS(b)
	if err != nil {
		t.Fatal(err)
	}
	res := mat.Mul(a, x)
	res.AddScaled(-1, b)
	atr := mat.MulTA(a, res)
	if atr.Norm() > 1e-8*(1+b.Norm()) {
		t.Fatalf("Aᵀr = %v, not orthogonal", atr.Norm())
	}
}

func TestGramSchmidtOrthonormalizes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randDense(rng, 20, 6)
	kept := GramSchmidt(a, 1e-10)
	if kept != 6 {
		t.Fatalf("kept=%d want 6", kept)
	}
	if e := orthoError(a); e > 1e-10 {
		t.Fatalf("ortho error %v", e)
	}
}

func TestGramSchmidtDetectsDependence(t *testing.T) {
	a := mat.NewDense(4, 3)
	for i := 0; i < 4; i++ {
		a.Set(i, 0, 1)
		a.Set(i, 1, 2) // dependent on column 0
		a.Set(i, 2, float64(i))
	}
	kept := GramSchmidt(a, 1e-10)
	if kept != 2 {
		t.Fatalf("kept=%d want 2", kept)
	}
	// dependent column must be zeroed
	for i := 0; i < 4; i++ {
		if a.At(i, 1) != 0 {
			t.Fatal("dependent column not zeroed")
		}
	}
}

func TestSymEigDiagonal(t *testing.T) {
	a := mat.FromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	eig, err := NewSymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, w := range want {
		if math.Abs(eig.Values[i]-w) > 1e-12 {
			t.Fatalf("values=%v", eig.Values)
		}
	}
}

func TestSymEigKnown2x2(t *testing.T) {
	a := mat.FromRows([][]float64{{2, 1}, {1, 2}})
	eig, err := NewSymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig.Values[0]-3) > 1e-12 || math.Abs(eig.Values[1]-1) > 1e-12 {
		t.Fatalf("values=%v want [3 1]", eig.Values)
	}
}

func TestSymEigReconstructsAndOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 3, 10, 40} {
		// random symmetric matrix (possibly indefinite)
		b := randDense(rng, n, n)
		a := mat.NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, (b.At(i, j)+b.At(j, i))/2)
			}
		}
		eig, err := NewSymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		if e := orthoError(eig.Vectors); e > 1e-9 {
			t.Fatalf("n=%d: eigenvectors not orthonormal (%v)", n, e)
		}
		// A V = V diag(λ)
		av := mat.Mul(a, eig.Vectors)
		vl := eig.Vectors.Clone()
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				vl.Set(i, j, vl.At(i, j)*eig.Values[j])
			}
		}
		if d := mat.MaxAbsDiff(av, vl); d > 1e-8*(1+a.Norm()) {
			t.Fatalf("n=%d: AV != VΛ, diff %v", n, d)
		}
		// descending order
		for j := 1; j < n; j++ {
			if eig.Values[j] > eig.Values[j-1]+1e-12 {
				t.Fatalf("values not sorted: %v", eig.Values)
			}
		}
	}
}

func TestSymEigTraceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		b := randDense(rng, n, n)
		a := mat.NewDense(n, n)
		var trace float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, (b.At(i, j)+b.At(j, i))/2)
			}
			trace += a.At(i, i)
		}
		eig, err := NewSymEig(a)
		if err != nil {
			return false
		}
		var sum float64
		for _, l := range eig.Values {
			sum += l
		}
		return math.Abs(sum-trace) <= 1e-8*(1+math.Abs(trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSVDReconstructsFullRank(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, dims := range [][2]int{{8, 5}, {5, 8}, {20, 20}, {1, 4}, {4, 1}} {
		a := randDense(rng, dims[0], dims[1])
		svd, err := NewSVD(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		if svd.Rank() != min(dims[0], dims[1]) {
			t.Fatalf("dims=%v rank=%d", dims, svd.Rank())
		}
		rec := svd.Reconstruct()
		if d := mat.MaxAbsDiff(rec, a); d > 1e-7*(1+a.Norm()) {
			t.Fatalf("dims=%v: reconstruction off by %v", dims, d)
		}
		if e := svd.OrthoError(); e > 1e-7 {
			t.Fatalf("dims=%v: singular vectors not orthonormal (%v)", dims, e)
		}
	}
}

func TestSVDDetectsRankDeficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// rank-3 matrix: 10x3 times 3x7
	a := mat.Mul(randDense(rng, 10, 3), randDense(rng, 3, 7))
	svd, err := NewSVD(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if svd.Rank() != 3 {
		t.Fatalf("rank=%d want 3", svd.Rank())
	}
	rec := svd.Reconstruct()
	if d := mat.MaxAbsDiff(rec, a); d > 1e-7*(1+a.Norm()) {
		t.Fatalf("low-rank reconstruction off by %v", d)
	}
}

func TestSVDSingularValuesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randDense(rng, 15, 9)
	svd, err := NewSVD(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < svd.Rank(); i++ {
		if svd.Sigma[i] > svd.Sigma[i-1]+1e-12 {
			t.Fatalf("sigma not sorted: %v", svd.Sigma)
		}
	}
}

func TestSVDPseudoInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, n := 25, 6
	a := randDense(rng, m, n)
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := a.MulVec(xTrue, nil)
	svd, err := NewSVD(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := svd.PseudoInverseVec(b)
	for i := range x {
		if math.Abs(x[i]-xTrue[i]) > 1e-7 {
			t.Fatalf("pinv solution off: %v vs %v", x[i], xTrue[i])
		}
	}
}

func TestSVDFrobeniusInvariant(t *testing.T) {
	// ‖A‖_F² == Σ σᵢ² for full-rank random matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(12), 1+rng.Intn(12)
		a := randDense(rng, m, n)
		svd, err := NewSVD(a, 0)
		if err != nil {
			return false
		}
		var ss float64
		for _, s := range svd.Sigma {
			ss += s * s
		}
		fn := a.Norm()
		return math.Abs(ss-fn*fn) <= 1e-7*(1+fn*fn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSVDMatchesEigOnGram(t *testing.T) {
	// σᵢ² of A must equal eigenvalues of AᵀA.
	rng := rand.New(rand.NewSource(14))
	a := randDense(rng, 12, 7)
	svd, err := NewSVD(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	eig, err := NewSymEig(mat.Gram(a))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < svd.Rank(); i++ {
		if math.Abs(svd.Sigma[i]*svd.Sigma[i]-eig.Values[i]) > 1e-7*(1+eig.Values[0]) {
			t.Fatalf("sigma²=%v vs eig=%v", svd.Sigma[i]*svd.Sigma[i], eig.Values[i])
		}
	}
}

func TestNormalizeColumns(t *testing.T) {
	a := mat.FromRows([][]float64{{3, 0}, {4, 0}})
	NormalizeColumns(a)
	if math.Abs(a.At(0, 0)-0.6) > 1e-12 || math.Abs(a.At(1, 0)-0.8) > 1e-12 {
		t.Fatalf("a=%v", a)
	}
	// zero column untouched
	if a.At(0, 1) != 0 || a.At(1, 1) != 0 {
		t.Fatal("zero column modified")
	}
}

func TestCholeskyUpdateMatchesRefactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	n := 15
	a := randSPD(rng, n)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		ch.Update(v)
		// a += v vᵀ
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, a.At(i, j)+v[i]*v[j])
			}
		}
		fresh, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		if d := mat.MaxAbsDiff(mat.MulTA(ch.R, ch.R), mat.MulTA(fresh.R, fresh.R)); d > 1e-7*(1+a.Norm()) {
			t.Fatalf("trial %d: updated factor off by %v", trial, d)
		}
	}
}

func TestCholeskyUpdateThenSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 10
	a := randSPD(rng, n)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	ch.Update(v)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, a.At(i, j)+v[i]*v[j])
		}
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := ch.SolveVec(b, nil)
	ax := a.MulVec(x, nil)
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-7*(1+math.Abs(b[i])) {
			t.Fatalf("solve after update wrong at %d", i)
		}
	}
}

func TestCholeskyDowndateInvertsUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 12
	a := randSPD(rng, n)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	before := ch.R.Clone()
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	ch.Update(v)
	if err := ch.Downdate(v); err != nil {
		t.Fatal(err)
	}
	if d := mat.MaxAbsDiff(ch.R, before); d > 1e-7*(1+before.Norm()) {
		t.Fatalf("downdate did not invert update (diff %v)", d)
	}
}

func TestCholeskyDowndateRejectsIndefinite(t *testing.T) {
	a := mat.FromRows([][]float64{{1, 0}, {0, 1}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// removing 2·e₁e₁ᵀ from I would make it indefinite
	if err := ch.Downdate([]float64{1.5, 0}); err == nil {
		t.Fatal("indefinite downdate accepted")
	}
}

func TestCholeskyUpdatePropertyRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			return false
		}
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		ch.Update(v)
		rtr := mat.MulTA(ch.R, ch.R)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := a.At(i, j) + v[i]*v[j]
				if math.Abs(rtr.At(i, j)-want) > 1e-7*(1+math.Abs(want)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRandomizedSVDMatchesExactOnLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	// exactly rank-4 matrix: randomized SVD at k=4 must be near-exact
	a := mat.Mul(randDense(rng, 60, 4), randDense(rng, 4, 30))
	rs, err := NewRandomizedSVD(a, 4, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewSVD(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4 && j < rs.Rank(); j++ {
		if math.Abs(rs.Sigma[j]-exact.Sigma[j]) > 1e-6*(1+exact.Sigma[0]) {
			t.Fatalf("sigma %d: %v vs %v", j, rs.Sigma[j], exact.Sigma[j])
		}
	}
	rec := rs.Reconstruct()
	if d := mat.MaxAbsDiff(rec, a); d > 1e-6*(1+a.Norm()) {
		t.Fatalf("reconstruction off by %v", d)
	}
}

func TestRandomizedSVDApproximatesLeadingSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	// full-rank with decaying spectrum
	a := randDense(rng, 80, 50)
	exact, err := NewSVD(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := NewRandomizedSVD(a, 5, 10, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 5; j++ {
		rel := math.Abs(rs.Sigma[j]-exact.Sigma[j]) / exact.Sigma[j]
		if rel > 0.05 {
			t.Fatalf("sigma %d off by %.1f%%", j, 100*rel)
		}
	}
	if e := rs.OrthoError(); e > 1e-8 {
		t.Fatalf("factors not orthonormal (%v)", e)
	}
}

func TestRandomizedSVDDeterministicBySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	a := randDense(rng, 30, 20)
	r1, err := NewRandomizedSVD(a, 3, 5, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRandomizedSVD(a, 3, 5, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equalish(r1.U, r2.U, 0) {
		t.Fatal("same seed must give identical factors")
	}
}

func TestRandomizedSVDValidation(t *testing.T) {
	a := mat.NewDense(5, 5)
	if _, err := NewRandomizedSVD(a, 0, 0, 0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewRandomizedSVD(a, 3, 0, 0, 1); err == nil {
		t.Fatal("zero matrix should report rank 0")
	}
}

func TestSolveUpperHelpers(t *testing.T) {
	r := mat.FromRows([][]float64{
		{2, 1, -1},
		{0, 3, 0.5},
		{0, 0, 1.5},
	})
	// SolveUpperVec: R x = v
	v := []float64{1, 2, 3}
	want := append([]float64(nil), v...)
	SolveUpperVec(r, v)
	rv := r.MulVec(v, nil)
	for i := range want {
		if math.Abs(rv[i]-want[i]) > 1e-12 {
			t.Fatalf("SolveUpperVec: R·x != v at %d", i)
		}
	}
	// SolveUpperTranspose: Rᵀ X = B
	rng := rand.New(rand.NewSource(70))
	b := randDense(rng, 3, 4)
	x := SolveUpperTranspose(r, b)
	rtx := mat.Mul(r.T(), x)
	if d := mat.MaxAbsDiff(rtx, b); d > 1e-12 {
		t.Fatalf("SolveUpperTranspose residual %v", d)
	}
}

func TestSVDCond(t *testing.T) {
	a := mat.FromRows([][]float64{{4, 0}, {0, 2}})
	svd, err := NewSVD(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := svd.Cond(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Cond=%v want 2", got)
	}
	empty := &SVD{U: mat.NewDense(0, 0), V: mat.NewDense(0, 0)}
	if !math.IsInf(empty.Cond(), 1) {
		t.Fatal("rank-0 Cond should be +Inf")
	}
}
