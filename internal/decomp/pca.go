package decomp

import (
	"errors"

	"srda/internal/blas"
	"srda/internal/mat"
)

// PCA is a principal-component projection x ↦ Vᵀ(x − μ).  The paper's
// §II-A shows the SVD inside classical LDA is exactly a PCA of the
// training data — this type exposes that preprocessing step on its own
// (the classic two-stage "PCA+LDA" pipeline of Belhumeur et al.).
type PCA struct {
	// Components is n×d: the top principal directions, columns orthonormal.
	Components *mat.Dense
	// Mu is the training mean subtracted before projecting.
	Mu []float64
	// Variances holds the explained variance per retained component
	// (σ²/(m−1)), descending.
	Variances []float64
	// TotalVariance is the summed variance of the centered data, so
	// explained-variance ratios can be formed.
	TotalVariance float64
}

// NewPCA fits a PCA with at most dims components (dims <= 0 keeps the
// full numerical rank).  The input matrix is not modified.
func NewPCA(x *mat.Dense, dims int) (*PCA, error) {
	if x.Rows < 2 {
		return nil, errors.New("decomp: PCA needs at least 2 samples")
	}
	xc := x.Clone()
	mu := xc.CenterRows()
	svd, err := NewSVD(xc, 0)
	if err != nil {
		return nil, err
	}
	r := svd.Rank()
	if dims <= 0 || dims > r {
		dims = r
	}
	if dims == 0 {
		return nil, errors.New("decomp: data has rank 0 after centering")
	}
	comps := svd.V.Slice(0, svd.V.Rows, 0, dims).Clone()
	vars := make([]float64, dims)
	denom := float64(x.Rows - 1)
	var total float64
	for i := 0; i < r; i++ {
		v := svd.Sigma[i] * svd.Sigma[i] / denom
		if i < dims {
			vars[i] = v
		}
		total += v
	}
	return &PCA{Components: comps, Mu: mu, Variances: vars, TotalVariance: total}, nil
}

// Dim returns the number of retained components.
func (p *PCA) Dim() int { return p.Components.Cols }

// ExplainedRatio returns the fraction of total variance the retained
// components carry.
func (p *PCA) ExplainedRatio() float64 {
	if p.TotalVariance == 0 { //srdalint:ignore floatcmp exact zero total variance is the degenerate empty fit
		return 0
	}
	var s float64
	for _, v := range p.Variances {
		s += v
	}
	return s / p.TotalVariance
}

// Transform projects the rows of x into the component space.
func (p *PCA) Transform(x *mat.Dense) *mat.Dense {
	out := mat.Mul(x, p.Components)
	shift := p.Components.MulTVec(p.Mu, nil)
	for i := 0; i < out.Rows; i++ {
		blas.Axpy(-1, shift, out.RowView(i))
	}
	return out
}

// InverseTransform maps component-space points back to the original
// feature space (the least-squares reconstruction V·z + μ).
func (p *PCA) InverseTransform(z *mat.Dense) *mat.Dense {
	out := mat.MulTB(z, p.Components)
	for i := 0; i < out.Rows; i++ {
		blas.Axpy(1, p.Mu, out.RowView(i))
	}
	return out
}

// ReconstructionError returns the mean squared per-sample reconstruction
// error of x under the retained components.
func (p *PCA) ReconstructionError(x *mat.Dense) float64 {
	z := p.Transform(x)
	back := p.InverseTransform(z)
	var s float64
	for i := 0; i < x.Rows; i++ {
		a, b := x.RowView(i), back.RowView(i)
		for j := range a {
			d := a[j] - b[j]
			s += d * d
		}
	}
	return s / float64(x.Rows)
}
