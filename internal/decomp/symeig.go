package decomp

import (
	"errors"
	"math"

	"srda/internal/mat"
)

// ErrEigFailed is returned when the QL iteration fails to converge, which
// for well-scaled symmetric input essentially never happens.
var ErrEigFailed = errors.New("decomp: symmetric eigensolver failed to converge")

// SymEig holds the eigendecomposition A = V diag(λ) Vᵀ of a symmetric
// matrix, with eigenvalues sorted in descending order and V's columns the
// corresponding orthonormal eigenvectors.
type SymEig struct {
	Values  []float64
	Vectors *mat.Dense // n×n, column j pairs with Values[j]
}

// NewSymEig computes the full eigendecomposition of the symmetric matrix a
// (only its lower triangle is trusted; the matrix is not modified).  The
// algorithm is the classic EISPACK pair: Householder tridiagonalization
// (tred2) followed by implicit-shift QL iteration with eigenvector
// accumulation (tql2).
func NewSymEig(a *mat.Dense) (*SymEig, error) {
	n := a.Rows
	if a.Cols != n {
		panic("decomp: SymEig of non-square matrix")
	}
	if n == 0 {
		return &SymEig{Values: nil, Vectors: mat.NewDense(0, 0)}, nil
	}
	v := a.Clone()
	d := make([]float64, n) // diagonal
	e := make([]float64, n) // subdiagonal
	tred2(v, d, e)
	if err := tql2(v, d, e); err != nil {
		return nil, err
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort: n is small for our c×c uses
		j := i
		for j > 0 && d[idx[j-1]] < d[idx[j]] {
			idx[j-1], idx[j] = idx[j], idx[j-1]
			j--
		}
	}
	values := make([]float64, n)
	vectors := mat.NewDense(n, n)
	col := make([]float64, n)
	for j, k := range idx {
		values[j] = d[k]
		v.ColCopy(k, col)
		vectors.SetCol(j, col)
	}
	return &SymEig{Values: values, Vectors: vectors}, nil
}

// tred2 reduces the symmetric matrix stored in v to tridiagonal form using
// Householder reflections, accumulating the transformation in v.  On exit
// d holds the diagonal and e[1:] the subdiagonal.  Adapted from the public
// domain EISPACK/JAMA routine.
func tred2(v *mat.Dense, d, e []float64) {
	n := v.Rows
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
	}
	for i := n - 1; i > 0; i-- {
		// Scale to avoid under/overflow.
		scale, h := 0.0, 0.0
		for k := 0; k < i; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 { //srdalint:ignore floatcmp exact zero scale means the row is already zero
			e[i] = d[i-1]
			for j := 0; j < i; j++ {
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
				v.Set(j, i, 0)
			}
		} else {
			for k := 0; k < i; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[i-1]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[i-1] = f - g
			for j := 0; j < i; j++ {
				e[j] = 0
			}
			// Apply similarity transformation to remaining columns.
			for j := 0; j < i; j++ {
				f = d[j]
				v.Set(j, i, f)
				g = e[j] + v.At(j, j)*f
				for k := j + 1; k <= i-1; k++ {
					g += v.At(k, j) * d[k]
					e[k] += v.At(k, j) * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j < i; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j < i; j++ {
				e[j] -= hh * d[j]
			}
			for j := 0; j < i; j++ {
				f = d[j]
				g = e[j]
				for k := j; k <= i-1; k++ {
					v.Set(k, j, v.At(k, j)-(f*e[k]+g*d[k]))
				}
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
			}
		}
		d[i] = h
	}
	// Accumulate transformations.
	for i := 0; i < n-1; i++ {
		v.Set(n-1, i, v.At(i, i))
		v.Set(i, i, 1)
		h := d[i+1]
		if h != 0 { //srdalint:ignore floatcmp h is exactly zero only for deflated rotations
			for k := 0; k <= i; k++ {
				d[k] = v.At(k, i+1) / h
			}
			for j := 0; j <= i; j++ {
				g := 0.0
				for k := 0; k <= i; k++ {
					g += v.At(k, i+1) * v.At(k, j)
				}
				for k := 0; k <= i; k++ {
					v.Set(k, j, v.At(k, j)-g*d[k])
				}
			}
		}
		for k := 0; k <= i; k++ {
			v.Set(k, i+1, 0)
		}
	}
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
		v.Set(n-1, j, 0)
	}
	v.Set(n-1, n-1, 1)
	e[0] = 0
}

// tql2 finds the eigenvalues and eigenvectors of a symmetric tridiagonal
// matrix by the implicit QL method, updating the accumulated
// transformations in v.  Adapted from the public domain EISPACK/JAMA
// routine.
func tql2(v *mat.Dense, d, e []float64) error {
	n := v.Rows
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	f, tst1 := 0.0, 0.0
	eps := math.Nextafter(1, 2) - 1
	for l := 0; l < n; l++ {
		// Find small subdiagonal element.
		tst1 = math.Max(tst1, math.Abs(d[l])+math.Abs(e[l]))
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		// If m == l, d[l] is an eigenvalue; otherwise iterate.
		if m > l {
			for iter := 0; ; iter++ {
				if iter >= 64 {
					return ErrEigFailed
				}
				// Compute implicit shift.
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				// Implicit QL transformation.
				p = d[m]
				c, c2, c3 := 1.0, 1.0, 1.0
				el1 := e[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					// Accumulate transformation.
					for k := 0; k < n; k++ {
						h = v.At(k, i+1)
						v.Set(k, i+1, s*v.At(k, i)+c*h)
						v.Set(k, i, c*v.At(k, i)-s*h)
					}
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}
	return nil
}
