package decomp

import (
	"math"

	"srda/internal/blas"
	"srda/internal/mat"
)

// SVD holds a thin singular value decomposition A = U diag(σ) Vᵀ truncated
// to the numerical rank r: U is m×r, V is n×r, and Sigma holds the r
// positive singular values in descending order.
type SVD struct {
	U     *mat.Dense
	V     *mat.Dense
	Sigma []float64
}

// Rank returns the number of retained singular values.
func (s *SVD) Rank() int { return len(s.Sigma) }

// NewSVD computes the thin SVD of a via the cross-product strategy the
// paper describes in §II-B: eigendecompose the smaller of AᵀA (n×n) and
// AAᵀ (m×m), then recover the other singular-vector matrix through
// U = A V Σ⁻¹ (or V = Aᵀ U Σ⁻¹).  Singular values with
// σ <= rcond·σ_max are discarded, which is how the LDA baseline handles
// the singular-scatter problem.
//
// The cross-product squares the condition number, so σ below ~1e-8·σ_max
// is noise; rcond <= 0 selects a default of 1e-10 (applied to σ², i.e.
// 1e-5 on σ) suitable for this project's well-scaled data.
func NewSVD(a *mat.Dense, rcond float64) (*SVD, error) {
	m, n := a.Rows, a.Cols
	if rcond <= 0 {
		rcond = 1e-10
	}
	if m == 0 || n == 0 {
		return &SVD{U: mat.NewDense(m, 0), V: mat.NewDense(n, 0)}, nil
	}
	if m >= n {
		g := mat.Gram(a) // AᵀA, n×n
		eig, err := NewSymEig(g)
		if err != nil {
			return nil, err
		}
		return svdFromEig(a, eig, rcond, false)
	}
	g := mat.GramT(a) // AAᵀ, m×m
	eig, err := NewSymEig(g)
	if err != nil {
		return nil, err
	}
	return svdFromEig(a, eig, rcond, true)
}

// svdFromEig turns the eigendecomposition of a cross-product matrix into a
// thin SVD.  When fromLeft is true the eigenvectors are U (of AAᵀ) and V is
// recovered; otherwise they are V (of AᵀA) and U is recovered.
func svdFromEig(a *mat.Dense, eig *SymEig, rcond float64, fromLeft bool) (*SVD, error) {
	lam := eig.Values
	var lamMax float64
	if len(lam) > 0 {
		lamMax = math.Max(lam[0], 0)
	}
	r := 0
	for _, l := range lam {
		if l > rcond*lamMax && l > 0 {
			r++
		}
	}
	sigma := make([]float64, r)
	for i := 0; i < r; i++ {
		sigma[i] = math.Sqrt(lam[i])
	}
	m, n := a.Rows, a.Cols
	if fromLeft {
		u := eig.Vectors.Slice(0, m, 0, r).Clone()
		// V = Aᵀ U Σ⁻¹
		v := mat.MulTA(a, u)
		for j := 0; j < r; j++ {
			inv := 1 / sigma[j]
			for i := 0; i < n; i++ {
				v.Set(i, j, v.At(i, j)*inv)
			}
		}
		return &SVD{U: u, V: v, Sigma: sigma}, nil
	}
	v := eig.Vectors.Slice(0, n, 0, r).Clone()
	// U = A V Σ⁻¹
	u := mat.Mul(a, v)
	for j := 0; j < r; j++ {
		inv := 1 / sigma[j]
		for i := 0; i < m; i++ {
			u.Set(i, j, u.At(i, j)*inv)
		}
	}
	return &SVD{U: u, V: v, Sigma: sigma}, nil
}

// Reconstruct returns U diag(σ) Vᵀ, the rank-r approximation of the
// original matrix (equal to it when no singular values were truncated).
func (s *SVD) Reconstruct() *mat.Dense {
	r := s.Rank()
	us := s.U.Clone()
	for j := 0; j < r; j++ {
		for i := 0; i < us.Rows; i++ {
			us.Set(i, j, us.At(i, j)*s.Sigma[j])
		}
	}
	return mat.MulTB(us, s.V)
}

// PseudoInverseVec applies the Moore–Penrose pseudo-inverse to b:
// x = V Σ⁻¹ Uᵀ b.
func (s *SVD) PseudoInverseVec(b []float64) []float64 {
	r := s.Rank()
	utb := s.U.MulTVec(b, nil)
	for j := 0; j < r; j++ {
		utb[j] /= s.Sigma[j]
	}
	return s.V.MulVec(utb, nil)
}

// Cond returns the 2-norm condition number σ_max/σ_min of the retained
// spectrum (infinite when rank is zero).
func (s *SVD) Cond() float64 {
	if s.Rank() == 0 {
		return math.Inf(1)
	}
	return s.Sigma[0] / s.Sigma[s.Rank()-1]
}

// OrthoError returns max(‖UᵀU - I‖_max, ‖VᵀV - I‖_max), a cheap health
// check used by tests.
func (s *SVD) OrthoError() float64 {
	check := func(q *mat.Dense) float64 {
		g := mat.MulTA(q, q)
		var worst float64
		for i := 0; i < g.Rows; i++ {
			for j := 0; j < g.Cols; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if d := math.Abs(g.At(i, j) - want); d > worst {
					worst = d
				}
			}
		}
		return worst
	}
	return math.Max(check(s.U), check(s.V))
}

// NormalizeColumns scales each column of a to unit Euclidean norm in
// place, skipping zero columns; a convenience used by eigenvector
// post-processing.
func NormalizeColumns(a *mat.Dense) {
	col := make([]float64, a.Rows)
	for j := 0; j < a.Cols; j++ {
		a.ColCopy(j, col)
		nrm := blas.Nrm2(col)
		if nrm == 0 { //srdalint:ignore floatcmp exact zero column norm marks a null singular direction
			continue
		}
		blas.Scal(1/nrm, col)
		a.SetCol(j, col)
	}
}
