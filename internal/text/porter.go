// Package text implements the document-preprocessing pipeline the paper
// applies to 20Newsgroups before discriminant analysis: tokenization,
// stop-word removal, Porter stemming, vocabulary construction, and
// TF / TF-IDF vectorization into the sparse matrices SRDA consumes
// ("Each document is then represented as a term-frequency vector and
// normalized to 1", §IV-A).
package text

// Stem reduces an English word to its stem with the classic Porter
// algorithm (M.F. Porter, "An algorithm for suffix stripping", 1980).
// Input is expected lowercase; non-alphabetic input is returned
// unchanged.  Words of length <= 2 are returned as-is, per the original.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for _, r := range word {
		if r < 'a' || r > 'z' {
			return word
		}
	}
	w := []byte(word)
	w = step1a(w)
	w = step1b(w)
	w = step1c(w)
	w = step2(w)
	w = step3(w)
	w = step4(w)
	w = step5a(w)
	w = step5b(w)
	return string(w)
}

// isCons reports whether w[i] acts as a consonant at position i ('y' is a
// consonant when it follows a vowel position per Porter's definition).
func isCons(w []byte, i int) bool {
	switch w[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isCons(w, i-1)
	default:
		return true
	}
}

// measure computes Porter's m: the number of VC sequences in w[:len].
func measure(w []byte) int {
	n := len(w)
	m := 0
	i := 0
	// skip initial consonants
	for i < n && isCons(w, i) {
		i++
	}
	for i < n {
		// in a vowel run
		for i < n && !isCons(w, i) {
			i++
		}
		if i >= n {
			break
		}
		m++
		for i < n && isCons(w, i) {
			i++
		}
	}
	return m
}

// hasVowel reports whether the stem contains a vowel.
func hasVowel(w []byte) bool {
	for i := range w {
		if !isCons(w, i) {
			return true
		}
	}
	return false
}

// endsDoubleCons reports *d: the stem ends with a double consonant.
func endsDoubleCons(w []byte) bool {
	n := len(w)
	return n >= 2 && w[n-1] == w[n-2] && isCons(w, n-1)
}

// endsCVC reports *o: the stem ends consonant-vowel-consonant where the
// final consonant is not w, x or y.
func endsCVC(w []byte) bool {
	n := len(w)
	if n < 3 {
		return false
	}
	if !isCons(w, n-3) || isCons(w, n-2) || !isCons(w, n-1) {
		return false
	}
	c := w[n-1]
	return c != 'w' && c != 'x' && c != 'y'
}

// hasSuffix reports whether w ends with s.
func hasSuffix(w []byte, s string) bool {
	if len(w) < len(s) {
		return false
	}
	return string(w[len(w)-len(s):]) == s
}

// replaceIf replaces suffix old with new when the remaining stem's
// measure exceeds minM; returns (word, applied).
func replaceIf(w []byte, old, new string, minM int) ([]byte, bool) {
	if !hasSuffix(w, old) {
		return w, false
	}
	stem := w[:len(w)-len(old)]
	if measure(stem) <= minM {
		return w, true // suffix matched; rule consumed but not applied
	}
	return append(append([]byte{}, stem...), new...), true
}

func step1a(w []byte) []byte {
	switch {
	case hasSuffix(w, "sses"):
		return w[:len(w)-2]
	case hasSuffix(w, "ies"):
		return w[:len(w)-2]
	case hasSuffix(w, "ss"):
		return w
	case hasSuffix(w, "s"):
		return w[:len(w)-1]
	}
	return w
}

func step1b(w []byte) []byte {
	if hasSuffix(w, "eed") {
		if measure(w[:len(w)-3]) > 0 {
			return w[:len(w)-1]
		}
		return w
	}
	applied := false
	if hasSuffix(w, "ed") && hasVowel(w[:len(w)-2]) {
		w = w[:len(w)-2]
		applied = true
	} else if hasSuffix(w, "ing") && hasVowel(w[:len(w)-3]) {
		w = w[:len(w)-3]
		applied = true
	}
	if !applied {
		return w
	}
	switch {
	case hasSuffix(w, "at"), hasSuffix(w, "bl"), hasSuffix(w, "iz"):
		return append(w, 'e')
	case endsDoubleCons(w) && !hasSuffix(w, "l") && !hasSuffix(w, "s") && !hasSuffix(w, "z"):
		return w[:len(w)-1]
	case measure(w) == 1 && endsCVC(w):
		return append(w, 'e')
	}
	return w
}

func step1c(w []byte) []byte {
	if hasSuffix(w, "y") && hasVowel(w[:len(w)-1]) {
		out := append([]byte{}, w...)
		out[len(out)-1] = 'i'
		return out
	}
	return w
}

// step2 suffix table, longest-match-first within shared last letters per
// the original specification.
var step2Rules = []struct{ old, new string }{
	{"ational", "ate"}, {"tional", "tion"},
	{"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"},
	{"abli", "able"}, {"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
	{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
	{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"}, {"ousness", "ous"},
	{"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

func step2(w []byte) []byte {
	for _, r := range step2Rules {
		if out, matched := replaceIf(w, r.old, r.new, 0); matched {
			return out
		}
	}
	return w
}

var step3Rules = []struct{ old, new string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"},
	{"iciti", "ic"}, {"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(w []byte) []byte {
	for _, r := range step3Rules {
		if out, matched := replaceIf(w, r.old, r.new, 0); matched {
			return out
		}
	}
	return w
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant",
	"ement", "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(w []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(w, s) {
			continue
		}
		stem := w[:len(w)-len(s)]
		if measure(stem) > 1 {
			return stem
		}
		return w
	}
	// (m>1 and (*S or *T)) ION
	if hasSuffix(w, "ion") {
		stem := w[:len(w)-3]
		if len(stem) > 0 && (stem[len(stem)-1] == 's' || stem[len(stem)-1] == 't') && measure(stem) > 1 {
			return stem
		}
	}
	return w
}

func step5a(w []byte) []byte {
	if hasSuffix(w, "e") {
		stem := w[:len(w)-1]
		m := measure(stem)
		if m > 1 || (m == 1 && !endsCVC(stem)) {
			return stem
		}
	}
	return w
}

func step5b(w []byte) []byte {
	if measure(w) > 1 && endsDoubleCons(w) && hasSuffix(w, "l") {
		return w[:len(w)-1]
	}
	return w
}
