package text

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"unicode"

	"srda/internal/dataset"
	"srda/internal/sparse"
)

// stopWords is the classic English stop list (SMART-derived subset).
var stopWords = map[string]bool{}

func init() {
	for _, w := range strings.Fields(`a about above after again against all am an and any are as at be
		because been before being below between both but by can did do does doing down during each few for
		from further had has have having he her here hers herself him himself his how i if in into is it its
		itself just me more most my myself no nor not now of off on once only or other our ours ourselves
		out over own same she should so some such than that the their theirs them themselves then there
		these they this those through to too under until up very was we were what when where which while who
		whom why will with you your yours yourself yourselves`) {
		stopWords[w] = true
	}
}

// IsStopWord reports membership in the built-in English stop list.
func IsStopWord(w string) bool { return stopWords[strings.ToLower(w)] }

// Tokenize lowercases and splits text into alphabetic tokens, dropping
// everything else (numbers, punctuation, markup) — the coarse but
// standard preprocessing for bag-of-words discriminant analysis.
func Tokenize(text string) []string {
	var tokens []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r):
			cur.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// VectorizerOptions configures corpus vectorization.
type VectorizerOptions struct {
	// MinDocFreq drops terms appearing in fewer documents (default 1).
	MinDocFreq int
	// MaxDocRatio drops terms appearing in more than this fraction of
	// documents (default 1.0 = keep everything).
	MaxDocRatio float64
	// Stem applies Porter stemming (default behavior is governed by the
	// caller; zero value means no stemming).
	Stem bool
	// KeepStopWords disables the built-in stop list.
	KeepStopWords bool
	// TFIDF weights counts by log(1 + N/df); otherwise raw term
	// frequencies are used.  Either way rows are L2-normalized, matching
	// the paper's preprocessing.
	TFIDF bool
}

// Vectorizer maps documents to sparse term vectors over a fixed
// vocabulary learned from a training corpus.
type Vectorizer struct {
	// Vocab maps term → column index.
	Vocab map[string]int
	// Terms lists the vocabulary in column order.
	Terms []string
	// IDF holds per-term inverse document frequencies (all 1 when the
	// vectorizer was built without TFIDF).
	IDF []float64
	opt VectorizerOptions
}

// NewVectorizer learns a vocabulary from the corpus and returns the
// fitted vectorizer together with the vectorized corpus.
func NewVectorizer(docs []string, labels []int, numClasses int, opt VectorizerOptions) (*Vectorizer, *dataset.Dataset, error) {
	if len(docs) == 0 {
		return nil, nil, fmt.Errorf("text: empty corpus")
	}
	if labels != nil && len(labels) != len(docs) {
		return nil, nil, fmt.Errorf("text: %d docs but %d labels", len(docs), len(labels))
	}
	if opt.MinDocFreq <= 0 {
		opt.MinDocFreq = 1
	}
	if opt.MaxDocRatio <= 0 || opt.MaxDocRatio > 1 {
		opt.MaxDocRatio = 1
	}

	// Pass 1: document frequencies over processed tokens.
	processed := make([][]string, len(docs))
	df := map[string]int{}
	for i, doc := range docs {
		toks := v0process(doc, opt)
		processed[i] = toks
		seen := map[string]bool{}
		for _, t := range toks {
			if !seen[t] {
				seen[t] = true
				df[t]++
			}
		}
	}

	// Vocabulary: filtered by document frequency, sorted for determinism.
	maxDF := int(opt.MaxDocRatio * float64(len(docs)))
	var terms []string
	for t, d := range df {
		if d >= opt.MinDocFreq && d <= maxDF {
			terms = append(terms, t)
		}
	}
	if len(terms) == 0 {
		return nil, nil, fmt.Errorf("text: vocabulary is empty after filtering")
	}
	sort.Strings(terms)
	vocab := make(map[string]int, len(terms))
	for j, t := range terms {
		vocab[t] = j
	}
	idf := make([]float64, len(terms))
	for j, t := range terms {
		if opt.TFIDF {
			idf[j] = math.Log(1 + float64(len(docs))/float64(df[t]))
		} else {
			idf[j] = 1
		}
	}
	v := &Vectorizer{Vocab: vocab, Terms: terms, IDF: idf, opt: opt}

	// Pass 2: vectorize.
	bld := sparse.NewBuilder(len(docs), len(terms))
	counts := map[int]float64{}
	for i := range docs {
		v.accumulate(processed[i], counts)
		v.emit(bld, i, counts)
	}
	ds := &dataset.Dataset{
		Name:       "text",
		Sparse:     bld.Build(),
		Labels:     labels,
		NumClasses: numClasses,
	}
	if labels == nil {
		ds.Labels = make([]int, len(docs))
		ds.NumClasses = 1
	}
	return v, ds, nil
}

// Transform vectorizes new documents with the learned vocabulary
// (out-of-vocabulary terms are dropped).
func (v *Vectorizer) Transform(docs []string) *sparse.CSR {
	bld := sparse.NewBuilder(len(docs), len(v.Terms))
	counts := map[int]float64{}
	for i, doc := range docs {
		v.accumulate(v0process(doc, v.opt), counts)
		v.emit(bld, i, counts)
	}
	return bld.Build()
}

// NumTerms returns the vocabulary size.
func (v *Vectorizer) NumTerms() int { return len(v.Terms) }

// v0process tokenizes and normalizes one document.
func v0process(doc string, opt VectorizerOptions) []string {
	raw := Tokenize(doc)
	out := raw[:0]
	for _, t := range raw {
		if len(t) < 2 {
			continue
		}
		if !opt.KeepStopWords && stopWords[t] {
			continue
		}
		if opt.Stem {
			t = Stem(t)
		}
		out = append(out, t)
	}
	return out
}

// accumulate counts in-vocabulary terms into the reusable map.
func (v *Vectorizer) accumulate(tokens []string, counts map[int]float64) {
	for k := range counts {
		delete(counts, k)
	}
	for _, t := range tokens {
		if j, ok := v.Vocab[t]; ok {
			counts[j]++
		}
	}
}

// emit writes one L2-normalized (TF or TF-IDF) row.
func (v *Vectorizer) emit(bld *sparse.Builder, row int, counts map[int]float64) {
	var ss float64
	for j, cnt := range counts {
		w := cnt * v.IDF[j]
		ss += w * w
	}
	if ss == 0 { //srdalint:ignore floatcmp exact zero norm is an empty document; leave it unnormalized
		return
	}
	inv := 1 / math.Sqrt(ss)
	for j, cnt := range counts {
		bld.Add(row, j, cnt*v.IDF[j]*inv)
	}
}

// vectorizerWire is the gob-encoded persistent form.
type vectorizerWire struct {
	Terms []string
	IDF   []float64
	Opt   VectorizerOptions
}

// Save serializes the fitted vectorizer with encoding/gob so a trained
// text pipeline can be shipped alongside its model.
func (v *Vectorizer) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(vectorizerWire{Terms: v.Terms, IDF: v.IDF, Opt: v.opt})
}

// LoadVectorizer reads a vectorizer written by Save.
func LoadVectorizer(r io.Reader) (*Vectorizer, error) {
	var wire vectorizerWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("text: decoding vectorizer: %w", err)
	}
	if len(wire.Terms) != len(wire.IDF) {
		return nil, fmt.Errorf("text: corrupt vectorizer: %d terms, %d idf values", len(wire.Terms), len(wire.IDF))
	}
	vocab := make(map[string]int, len(wire.Terms))
	for j, t := range wire.Terms {
		vocab[t] = j
	}
	return &Vectorizer{Vocab: vocab, Terms: wire.Terms, IDF: wire.IDF, opt: wire.Opt}, nil
}
