package text

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"srda/internal/core"
)

// Classic vectors from Porter's 1980 paper and its reference
// implementation's voc/output pairs.
func TestPorterStemKnownVectors(t *testing.T) {
	cases := map[string]string{
		// step 1a
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// step 1b
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// step 1c
		"happy": "happi",
		"sky":   "sky",
		// step 2
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// step 3
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// step 4
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"homologou":   "homolog",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// step 5
		"probate":  "probat",
		"rate":     "rate",
		"cease":    "ceas",
		"controll": "control",
		"roll":     "roll",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemLeavesShortAndNonAlpha(t *testing.T) {
	for _, w := range []string{"a", "is", "go", "x1y", "don't", ""} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Hello, World! 2nd-rate tokens_here.")
	want := []string{"hello", "world", "nd", "rate", "tokens", "here"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if out := Tokenize(""); len(out) != 0 {
		t.Fatal("empty input should yield no tokens")
	}
}

func TestIsStopWord(t *testing.T) {
	if !IsStopWord("the") || !IsStopWord("The") {
		t.Fatal("'the' should be a stop word")
	}
	if IsStopWord("laplacian") {
		t.Fatal("'laplacian' should not be a stop word")
	}
}

func miniCorpus() ([]string, []int) {
	docs := []string{
		"the cat sat on the mat and the cat purred",
		"cats and kittens are playing with the cat toys",
		"a fluffy cat chased the kitten around",
		"the stock market fell as investors sold shares",
		"shares and bonds are traded on the stock exchange",
		"investors watched the market and bought stocks",
	}
	labels := []int{0, 0, 0, 1, 1, 1}
	return docs, labels
}

func TestVectorizerBuildsVocabulary(t *testing.T) {
	docs, labels := miniCorpus()
	v, ds, err := NewVectorizer(docs, labels, 2, VectorizerOptions{Stem: true})
	if err != nil {
		t.Fatal(err)
	}
	if v.NumTerms() == 0 {
		t.Fatal("empty vocabulary")
	}
	// stop words are gone
	if _, ok := v.Vocab["the"]; ok {
		t.Fatal("stop word kept")
	}
	// stems unify variants: cat & cats → cat
	if _, ok := v.Vocab["cats"]; ok {
		t.Fatal("unstemmed plural kept")
	}
	if _, ok := v.Vocab["cat"]; !ok {
		t.Fatalf("missing stem 'cat' in %v", v.Terms)
	}
	// rows are unit-norm
	for i := 0; i < ds.NumSamples(); i++ {
		if nrm := ds.Sparse.RowNorm2(i); math.Abs(nrm-1) > 1e-9 {
			t.Fatalf("row %d norm² %v", i, nrm)
		}
	}
}

func TestVectorizerTransformConsistent(t *testing.T) {
	docs, labels := miniCorpus()
	v, ds, err := NewVectorizer(docs, labels, 2, VectorizerOptions{Stem: true, TFIDF: true})
	if err != nil {
		t.Fatal(err)
	}
	again := v.Transform(docs)
	if again.NNZ() != ds.Sparse.NNZ() {
		t.Fatal("Transform differs from fit-time vectorization")
	}
	for i := 0; i < len(docs); i++ {
		ca, va := ds.Sparse.Row(i)
		cb, vb := again.Row(i)
		for k := range ca {
			if ca[k] != cb[k] || math.Abs(va[k]-vb[k]) > 1e-12 {
				t.Fatalf("row %d differs", i)
			}
		}
	}
	// out-of-vocabulary docs vectorize to empty rows without panicking
	oov := v.Transform([]string{"zzz qqq xxx"})
	if cols, _ := oov.Row(0); len(cols) != 0 {
		t.Fatal("OOV doc should be empty")
	}
}

func TestVectorizerDocFreqFilters(t *testing.T) {
	docs, labels := miniCorpus()
	v, _, err := NewVectorizer(docs, labels, 2, VectorizerOptions{MinDocFreq: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range v.Terms {
		if term == "purred" {
			t.Fatal("df=1 term survived MinDocFreq=2")
		}
	}
	// MaxDocRatio drops ubiquitous terms
	v2, _, err := NewVectorizer(docs, labels, 2, VectorizerOptions{KeepStopWords: true, MaxDocRatio: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v2.Vocab["the"]; ok {
		t.Fatal("'the' (df=6/6) survived MaxDocRatio=0.5")
	}
}

func TestVectorizerErrors(t *testing.T) {
	if _, _, err := NewVectorizer(nil, nil, 0, VectorizerOptions{}); err == nil {
		t.Fatal("empty corpus accepted")
	}
	if _, _, err := NewVectorizer([]string{"a b"}, []int{0, 1}, 2, VectorizerOptions{}); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, _, err := NewVectorizer([]string{"the a of"}, []int{0}, 1, VectorizerOptions{}); err == nil {
		t.Fatal("all-stopword corpus should leave empty vocabulary")
	}
}

func TestEndToEndTextClassification(t *testing.T) {
	// The full paper pipeline in miniature: raw text → stems → TF vectors
	// → sparse SRDA → classification.
	docs, labels := miniCorpus()
	_, ds, err := NewVectorizer(docs, labels, 2, VectorizerOptions{Stem: true, TFIDF: true})
	if err != nil {
		t.Fatal(err)
	}
	model, err := core.FitSparse(ds.Sparse, ds.Labels, 2, core.Options{Alpha: 0.1, LSQRIter: 100})
	if err != nil {
		t.Fatal(err)
	}
	emb := model.TransformSparse(ds.Sparse)
	// training samples must separate by class along the single dimension
	var sign0, sign1 float64
	for i, y := range labels {
		if y == 0 {
			sign0 += emb.At(i, 0)
		} else {
			sign1 += emb.At(i, 0)
		}
	}
	if (sign0 > 0) == (sign1 > 0) {
		t.Fatalf("classes not separated: %v vs %v", sign0, sign1)
	}
}

func TestStemIdempotentOnCommonWords(t *testing.T) {
	// Stemming a stem should usually be stable for this word list.
	words := strings.Fields("run runner running runs easily fairly item items sensational")
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		if Stem(twice) != twice {
			t.Errorf("stem not stable for %q: %q → %q → %q", w, once, twice, Stem(twice))
		}
	}
}

func TestVectorizerSaveLoadRoundTrip(t *testing.T) {
	docs, labels := miniCorpus()
	v, _, err := NewVectorizer(docs, labels, 2, VectorizerOptions{Stem: true, TFIDF: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadVectorizer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := v.Transform(docs)
	b := back.Transform(docs)
	if a.NNZ() != b.NNZ() {
		t.Fatal("loaded vectorizer transforms differently")
	}
	for i := 0; i < len(docs); i++ {
		ca, va := a.Row(i)
		cb, vb := b.Row(i)
		for k := range ca {
			if ca[k] != cb[k] || va[k] != vb[k] {
				t.Fatalf("row %d differs after round trip", i)
			}
		}
	}
	if _, err := LoadVectorizer(bytes.NewBufferString("junk")); err == nil {
		t.Fatal("garbage stream accepted")
	}
}

func TestTokenizePropertyLowerAlpha(t *testing.T) {
	f := func(input string) bool {
		for _, tok := range Tokenize(input) {
			if tok == "" {
				return false
			}
			for _, r := range tok {
				if r < 'a' || r > 'z' {
					// non-ASCII letters are legal (unicode.ToLower)
					if !strings.ContainsRune(tok, r) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStemNeverPanicsProperty(t *testing.T) {
	f := func(input string) bool {
		out := Stem(strings.ToLower(input))
		return len(out) <= len(input) || out == input
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
