package regress

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"srda/internal/mat"
)

// TestFitDenseBitwiseIdenticalAcrossWorkers extends the per-response LSQR
// determinism guarantee to the direct solvers: with the parallel Gram and
// product kernels wired in, every strategy must produce a bitwise
// identical model at every worker count.
func TestFitDenseBitwiseIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	x := randDense(rng, 90, 40)
	y := randDense(rng, 90, 6)
	for _, strat := range []Strategy{Primal, Dual, IterLSQR} {
		base, err := FitDense(x, y, Options{Alpha: 0.5, Strategy: strat, Intercept: true, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{0, 2, 4, 7} {
			m, err := FitDense(x, y, Options{Alpha: 0.5, Strategy: strat, Intercept: true, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			for i := range m.W.Data {
				if math.Float64bits(m.W.Data[i]) != math.Float64bits(base.W.Data[i]) {
					t.Fatalf("%v workers=%d: W[%d] = %v, sequential %v", strat, w, i, m.W.Data[i], base.W.Data[i])
				}
			}
			for j := range m.B {
				if math.Float64bits(m.B[j]) != math.Float64bits(base.B[j]) {
					t.Fatalf("%v workers=%d: B[%d] = %v, sequential %v", strat, w, j, m.B[j], base.B[j])
				}
			}
		}
	}
}

// BenchmarkFitDenseParallel measures a full Primal fit — Gram build,
// Cholesky, XᵀY, back-solve — on a 1000-sample problem across worker
// counts.  The Gram accumulation dominates, so at GOMAXPROCS >= 4 the
// 4-worker case should be >= 2x workers=1, with the model bitwise
// identical (TestFitDenseBitwiseIdenticalAcrossWorkers).
func BenchmarkFitDenseParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(72))
	x := randDense(rng, 1000, 800)
	y := randDense(rng, 1000, 20)
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := FitDense(x, y, Options{Alpha: 1, Strategy: Primal, Intercept: true, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFitLSQRParallel measures the iterative path, where Workers
// fans out both the per-response solves and the operator mat-vecs.
func BenchmarkFitLSQRParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(73))
	x := randDense(rng, 600, 400)
	wTrue := randDense(rng, 400, 8)
	y := mat.Mul(x, wTrue)
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := Options{Alpha: 1, Strategy: IterLSQR, LSQRIter: 15, Workers: w}
				if _, err := FitDense(x, y, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
