package regress

import (
	"math/rand"
	"testing"

	"srda/internal/mat"
)

func randomProblem(seed int64, m, n, k int) (*mat.Dense, *mat.Dense) {
	rng := rand.New(rand.NewSource(seed))
	x := mat.NewDense(m, n)
	y := mat.NewDense(m, k)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		for j := 0; j < k; j++ {
			y.Set(i, j, rng.NormFloat64())
		}
	}
	return x, y
}

// TestFitStampsCondEstimate: both direct paths surface the Cholesky
// conditioning; the LSQR path (no Gram matrix) leaves it zero.
func TestFitStampsCondEstimate(t *testing.T) {
	x, y := randomProblem(1, 40, 8, 2)
	for _, strat := range []Strategy{Primal, Dual} {
		m, err := FitDense(x, y, Options{Alpha: 0.5, Strategy: strat, Intercept: true})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if m.Stats.CondEstimate < 1 {
			t.Errorf("%v: CondEstimate = %v, want >= 1", strat, m.Stats.CondEstimate)
		}
	}
	m, err := FitDense(x, y, Options{Alpha: 0.5, Strategy: IterLSQR, LSQRIter: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats.CondEstimate != 0 {
		t.Errorf("LSQR path stamped CondEstimate %v", m.Stats.CondEstimate)
	}
}

// TestRecordResidualTrajectories: under RecordResiduals the LSQR path
// keeps one monotone-ish curve per response with Iters points each.
func TestRecordResidualTrajectories(t *testing.T) {
	x, y := randomProblem(2, 30, 6, 3)
	m, err := FitDense(x, y, Options{Alpha: 0.1, Strategy: IterLSQR, LSQRIter: 12, RecordResiduals: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Stats.ResidualCurves) != 3 {
		t.Fatalf("got %d curves, want 3", len(m.Stats.ResidualCurves))
	}
	for j, curve := range m.Stats.ResidualCurves {
		if len(curve) != m.Stats.IterCounts[j] {
			t.Errorf("response %d: curve has %d points, iters %d", j, len(curve), m.Stats.IterCounts[j])
		}
		if len(curve) > 0 && curve[len(curve)-1] > curve[0] {
			t.Errorf("response %d: residuals grew from %v to %v", j, curve[0], curve[len(curve)-1])
		}
	}
	// Off by default: no curves retained.
	m2, err := FitDense(x, y, Options{Alpha: 0.1, Strategy: IterLSQR, LSQRIter: 12})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Stats.ResidualCurves != nil {
		t.Error("curves retained without RecordResiduals")
	}
}
