package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"srda/internal/mat"
	"srda/internal/obs"
	"srda/internal/solver"
	"srda/internal/sparse"
)

func randDense(rng *rand.Rand, r, c int) *mat.Dense {
	m := mat.NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestPrimalRecoversExactSolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, n := 60, 8
	x := randDense(rng, m, n)
	wTrue := randDense(rng, n, 3)
	y := mat.Mul(x, wTrue)
	model, err := FitDense(x, y, Options{Alpha: 0, Strategy: Primal})
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.MaxAbsDiff(model.W, wTrue); d > 1e-7 {
		t.Fatalf("W off by %v", d)
	}
}

func TestPrimalDualAgreeForPositiveAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, dims := range [][2]int{{40, 10}, {10, 40}, {25, 25}} {
		x := randDense(rng, dims[0], dims[1])
		y := randDense(rng, dims[0], 4)
		opt := Options{Alpha: 0.8}
		opt.Strategy = Primal
		p, err := FitDense(x, y, opt)
		if err != nil {
			t.Fatal(err)
		}
		opt.Strategy = Dual
		d, err := FitDense(x, y, opt)
		if err != nil {
			t.Fatal(err)
		}
		if diff := mat.MaxAbsDiff(p.W, d.W); diff > 1e-7 {
			t.Fatalf("dims=%v: primal/dual differ by %v", dims, diff)
		}
	}
}

func TestLSQRAgreesWithPrimal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n := 50, 12
	x := randDense(rng, m, n)
	y := randDense(rng, m, 3)
	opt := Options{Alpha: 0.5, Strategy: Primal}
	p, err := FitDense(x, y, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt = Options{Alpha: 0.5, Strategy: IterLSQR, LSQRIter: 400}
	l, err := FitDense(x, y, opt)
	if err != nil {
		t.Fatal(err)
	}
	if diff := mat.MaxAbsDiff(p.W, l.W); diff > 1e-5 {
		t.Fatalf("primal/lsqr differ by %v", diff)
	}
	if l.Iters == 0 {
		t.Fatal("LSQR model should record iterations")
	}
}

func TestInterceptEqualsAugmentedColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, n := 40, 6
	x := randDense(rng, m, n)
	y := randDense(rng, m, 2)
	withB, err := FitDense(x, y, Options{Alpha: 0.3, Strategy: Primal, Intercept: true})
	if err != nil {
		t.Fatal(err)
	}
	// manual augmentation
	xa := mat.NewDense(m, n+1)
	for i := 0; i < m; i++ {
		copy(xa.RowView(i), x.RowView(i))
		xa.Set(i, n, 1)
	}
	manual, err := FitDense(xa, y, Options{Alpha: 0.3, Strategy: Primal})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if math.Abs(withB.B[j]-manual.W.At(n, j)) > 1e-9 {
			t.Fatalf("intercept mismatch: %v vs %v", withB.B[j], manual.W.At(n, j))
		}
	}
	if d := mat.MaxAbsDiff(withB.W, manual.W.Slice(0, n, 0, 2).Clone()); d > 1e-9 {
		t.Fatalf("weights mismatch %v", d)
	}
}

func TestInterceptCapturesShift(t *testing.T) {
	// y = x·w + 10: model with intercept should find B≈10 and generalize.
	rng := rand.New(rand.NewSource(5))
	m, n := 100, 5
	x := randDense(rng, m, n)
	w := randDense(rng, n, 1)
	y := mat.Mul(x, w)
	for i := 0; i < m; i++ {
		y.Set(i, 0, y.At(i, 0)+10)
	}
	model, err := FitDense(x, y, Options{Alpha: 1e-8, Strategy: Primal, Intercept: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.B[0]-10) > 1e-3 {
		t.Fatalf("B=%v want ~10", model.B[0])
	}
}

func TestAutoStrategySelection(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tall := randDense(rng, 30, 5)
	wide := randDense(rng, 5, 30)
	y1 := randDense(rng, 30, 2)
	y2 := randDense(rng, 5, 2)
	m1, err := FitDense(tall, y1, Options{Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Strategy != Primal {
		t.Fatalf("tall matrix picked %v", m1.Strategy)
	}
	m2, err := FitDense(wide, y2, Options{Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Strategy != Dual {
		t.Fatalf("wide matrix picked %v", m2.Strategy)
	}
}

func TestFitOperatorSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, n := 60, 25
	d := mat.NewDense(m, n)
	b := sparse.NewBuilder(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.15 {
				v := rng.NormFloat64()
				d.Set(i, j, v)
				b.Add(i, j, v)
			}
		}
	}
	s := b.Build()
	y := randDense(rng, m, 3)
	opt := Options{Alpha: 0.4, Intercept: true, LSQRIter: 500}
	ms, err := FitOperator(solver.SparseOp{A: s}, y, opt)
	if err != nil {
		t.Fatal(err)
	}
	md, err := FitDense(d, y, Options{Alpha: 0.4, Intercept: true, Strategy: Primal})
	if err != nil {
		t.Fatal(err)
	}
	if diff := mat.MaxAbsDiff(ms.W, md.W); diff > 1e-4 {
		t.Fatalf("sparse-LSQR vs dense-primal differ by %v", diff)
	}
	for j := range ms.B {
		if math.Abs(ms.B[j]-md.B[j]) > 1e-4 {
			t.Fatalf("bias %d: %v vs %v", j, ms.B[j], md.B[j])
		}
	}
}

func TestShrinkageMonotoneInAlpha(t *testing.T) {
	// ‖W(α)‖ must shrink as α grows.
	rng := rand.New(rand.NewSource(8))
	x := randDense(rng, 30, 10)
	y := randDense(rng, 30, 1)
	var prev float64 = math.Inf(1)
	for _, alpha := range []float64{0.01, 0.1, 1, 10, 100} {
		model, err := FitDense(x, y, Options{Alpha: alpha, Strategy: Primal})
		if err != nil {
			t.Fatal(err)
		}
		nrm := model.W.Norm()
		if nrm > prev+1e-12 {
			t.Fatalf("norm increased: alpha=%v nrm=%v prev=%v", alpha, nrm, prev)
		}
		prev = nrm
	}
}

func TestPredictDenseAndOperatorAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randDense(rng, 20, 6)
	y := randDense(rng, 20, 2)
	model, err := FitDense(x, y, Options{Alpha: 0.2, Intercept: true})
	if err != nil {
		t.Fatal(err)
	}
	xt := randDense(rng, 7, 6)
	p1 := model.PredictDense(xt)
	p2 := model.PredictOperator(solver.DenseOp{A: xt}, 7)
	if d := mat.MaxAbsDiff(p1, p2); d > 1e-10 {
		t.Fatalf("predictions differ by %v", d)
	}
}

func TestErrorsOnBadInput(t *testing.T) {
	x := mat.NewDense(4, 2)
	y := mat.NewDense(5, 1)
	if _, err := FitDense(x, y, Options{}); err == nil {
		t.Fatal("row mismatch not detected")
	}
	y2 := mat.NewDense(4, 1)
	if _, err := FitDense(x, y2, Options{Alpha: -1}); err == nil {
		t.Fatal("negative alpha not detected")
	}
}

func TestRidgePropertyResidualGradientZero(t *testing.T) {
	// At the ridge optimum, Xᵀ(Xw − y) + αw = 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 5+rng.Intn(40), 2+rng.Intn(10)
		x := randDense(rng, m, n)
		y := randDense(rng, m, 1)
		alpha := 0.05 + rng.Float64()*2
		model, err := FitDense(x, y, Options{Alpha: alpha, Strategy: Primal})
		if err != nil {
			return false
		}
		pred := mat.Mul(x, model.W)
		pred.AddScaled(-1, y)
		grad := mat.MulTA(x, pred)
		grad.AddScaled(alpha, model.W)
		return grad.Norm() <= 1e-7*(1+y.Norm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestParallelLSQRMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	m, n, k := 120, 40, 8
	x := randDense(rng, m, n)
	y := randDense(rng, m, k)
	seq, err := FitDense(x, y, Options{Alpha: 0.7, Strategy: IterLSQR, LSQRIter: 150, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := FitDense(x, y, Options{Alpha: 0.7, Strategy: IterLSQR, LSQRIter: 150, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if diff := mat.MaxAbsDiff(seq.W, par.W); diff != 0 {
		t.Fatalf("parallel/sequential LSQR differ by %v (must be bitwise identical)", diff)
	}
	for j := range seq.B {
		if seq.B[j] != par.B[j] {
			t.Fatal("intercepts differ")
		}
	}
	if seq.Iters != par.Iters {
		t.Fatalf("iteration totals differ: %d vs %d", seq.Iters, par.Iters)
	}
}

func TestStrategyString(t *testing.T) {
	cases := map[Strategy]string{Auto: "auto", Primal: "primal", Dual: "dual", IterLSQR: "lsqr", Strategy(99): "Strategy(99)"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Fatalf("%d.String()=%q want %q", int(s), got, want)
		}
	}
}

// TestStatsPerResponseTelemetry checks the LSQR path's per-response
// telemetry: one iteration count and one residual norm per response, with
// the total consistent everywhere it is reported.
func TestStatsPerResponseTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := randDense(rng, 50, 12)
	y := randDense(rng, 50, 4)
	model, err := FitDense(x, y, Options{Alpha: 0.5, Strategy: IterLSQR, LSQRIter: 40})
	if err != nil {
		t.Fatal(err)
	}
	st := model.Stats
	if st.Strategy != IterLSQR {
		t.Fatalf("stats strategy = %v", st.Strategy)
	}
	if len(st.IterCounts) != y.Cols || len(st.Residuals) != y.Cols {
		t.Fatalf("got %d iter counts, %d residuals for %d responses",
			len(st.IterCounts), len(st.Residuals), y.Cols)
	}
	sum := 0
	for j, c := range st.IterCounts {
		if c <= 0 {
			t.Fatalf("response %d took %d iterations", j, c)
		}
		sum += c
		if st.Residuals[j] < 0 || math.IsNaN(st.Residuals[j]) {
			t.Fatalf("response %d residual %v", j, st.Residuals[j])
		}
	}
	if sum != st.Iters || model.Iters != st.Iters {
		t.Fatalf("iteration totals inconsistent: sum %d, Stats.Iters %d, Model.Iters %d",
			sum, st.Iters, model.Iters)
	}
}

// TestStatsDirectSolves checks the direct paths report their strategy with
// zero iterations and no per-response slices.
func TestStatsDirectSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := randDense(rng, 30, 8)
	y := randDense(rng, 30, 3)
	for _, strat := range []Strategy{Primal, Dual} {
		model, err := FitDense(x, y, Options{Alpha: 0.5, Strategy: strat, Intercept: strat == Primal})
		if err != nil {
			t.Fatal(err)
		}
		st := model.Stats
		if st.Strategy != strat || st.Iters != 0 || model.Iters != 0 {
			t.Fatalf("%v: stats = %+v, model iters = %d", strat, st, model.Iters)
		}
		if st.IterCounts != nil || st.Residuals != nil {
			t.Fatalf("%v: direct solve reported per-response slices", strat)
		}
	}
}

// TestTraceSpansPerStrategy checks each strategy emits its phase spans
// into a caller-provided trace.
func TestTraceSpansPerStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := randDense(rng, 30, 8)
	y := randDense(rng, 30, 3)
	cases := []struct {
		strat Strategy
		spans []string
	}{
		{Primal, []string{"gram", "cholesky", "xty", "solve"}},
		{Dual, []string{"gram", "cholesky", "solve", "xty"}},
		{IterLSQR, []string{"lsqr"}},
	}
	for _, tc := range cases {
		tr := obs.NewTrace()
		if _, err := FitDense(x, y, Options{Alpha: 0.5, Strategy: tc.strat, Trace: tr}); err != nil {
			t.Fatal(err)
		}
		spans := tr.Spans()
		if len(spans) != len(tc.spans) {
			t.Fatalf("%v: got %d spans, want %d", tc.strat, len(spans), len(tc.spans))
		}
		for i, want := range tc.spans {
			if spans[i].Name != want {
				t.Fatalf("%v: span %d = %q, want %q", tc.strat, i, spans[i].Name, want)
			}
		}
	}
}
