// Package regress implements multi-response ridge regression, the
// computational core of SRDA (§III of the paper).  Three solution
// strategies are provided, matching the paper's complexity analysis:
//
//   - Primal normal equations (eq. 20): factor XᵀX + αI once by Cholesky
//     (O(mn² + n³)) and back-solve for every response — best when n ≤ m.
//   - Dual normal equations (eq. 21): factor XXᵀ + αI (O(nm² + m³)) and
//     map back through Xᵀ — best when n > m (the pseudo-inverse route the
//     paper uses to cut cost for high-dimensional data).
//   - LSQR (§III-C2): k iterations of O(nnz) mat-vecs per response —
//     linear time for sparse data, and the only option when the Gram
//     matrix itself would not fit in memory.
//
// All strategies support the paper's intercept-absorption trick: append a
// constant-1 feature so the bias b is estimated jointly without centering
// the data (which would destroy sparsity).
package regress

import (
	"fmt"
	"math"

	"srda/internal/decomp"
	"srda/internal/mat"
	"srda/internal/obs"
	"srda/internal/pool"
	"srda/internal/solver"
)

// Strategy selects how the ridge systems are solved.
type Strategy int

const (
	// Auto picks Primal when n<=m, Dual when n>m for dense operators, and
	// LSQR for sparse operators.
	Auto Strategy = iota
	// Primal solves (XᵀX + αI) w = Xᵀy by Cholesky.
	Primal
	// Dual solves (XXᵀ + αI) z = y and sets w = Xᵀz.  For α→0 this is the
	// pseudo-inverse route of eq. (21); for α>0 it is exactly equivalent
	// to Primal by the push-through identity.
	Dual
	// IterLSQR runs damped LSQR per response.
	IterLSQR
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Primal:
		return "primal"
	case Dual:
		return "dual"
	case IterLSQR:
		return "lsqr"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Options configures a ridge fit.
type Options struct {
	// Alpha is the Tikhonov penalty (the paper's α); must be >= 0.
	Alpha float64
	// Strategy selects the solver; Auto by default.
	Strategy Strategy
	// Intercept, when true, augments X with a constant-1 column and fits
	// the bias jointly (the paper's trick for sparse data).  The bias is
	// returned separately from the weights.
	Intercept bool
	// LSQRIter caps LSQR iterations per response (default 30; the paper
	// uses 15–20).
	LSQRIter int
	// Workers bounds the parallelism of the whole fit: the goroutines
	// solving independent responses in the LSQR path, and the worker-pool
	// sharding inside the Gram/product kernels of the direct paths.  All
	// settings produce bitwise-identical models (see internal/pool).
	// 0 means GOMAXPROCS; 1 forces fully sequential work.
	Workers int
	// Trace, when non-nil, receives per-phase timing spans ("gram", "xty",
	// "cholesky", "solve" for the direct paths; "lsqr" for the iterative
	// path).  The fit itself never reads a clock — all timing lives in the
	// caller-provided trace, keeping this package inside the noclock
	// contract.  nil disables tracing at zero cost.
	Trace *obs.Trace
	// RecordResiduals, for the LSQR path, keeps each response's full
	// per-iteration residual-norm trajectory in Stats.ResidualCurves
	// (observability only; costs one float per iteration per response).
	RecordResiduals bool
}

// Stats reports how a fit was solved.  Unlike the model weights it is
// advisory telemetry: it never feeds back into predictions and is not
// serialized with the model.
type Stats struct {
	// Strategy is the solver that actually ran (never Auto).
	Strategy Strategy
	// Iters is the total LSQR iteration count summed over responses; zero
	// for the direct (Cholesky) paths.  Always equal to the sum of
	// IterCounts when IterCounts is present.
	Iters int
	// IterCounts[j] is the LSQR iteration count for response j; nil for
	// direct solves.
	IterCounts []int
	// Residuals[j] is response j's final damped residual-norm estimate
	// ‖[A; √α·I] x − [y_j; 0]‖; nil for direct solves.
	Residuals []float64
	// ResidualCurves[j] is response j's per-iteration residual trajectory;
	// only populated by the LSQR path under Options.RecordResiduals.
	ResidualCurves [][]float64
	// CondEstimate is the diagonal-ratio condition estimate of the factored
	// normal-equations matrix (decomp.Cholesky.CondEstimate); zero for the
	// LSQR path, which never forms the Gram matrix.
	CondEstimate float64
}

// Model is a fitted multi-response ridge regressor: Yhat = X·W + 1·bᵀ.
type Model struct {
	// W is n×k: one weight column per response.
	W *mat.Dense
	// B holds the k intercepts (all zero when fitted without intercept).
	B []float64
	// Strategy records which solver produced the fit.
	Strategy Strategy
	// Iters is the total LSQR iteration count (zero for direct solves);
	// always equal to Stats.Iters.
	Iters int
	// Stats carries the full solver telemetry for the fit.
	Stats Stats
}

// FitDense fits ridge regression of the m×k response matrix Y on the m×n
// dense design matrix X.
func FitDense(x *mat.Dense, y *mat.Dense, opt Options) (*Model, error) {
	if x.Rows != y.Rows {
		return nil, fmt.Errorf("regress: X has %d rows but Y has %d", x.Rows, y.Rows)
	}
	if opt.Alpha < 0 {
		return nil, fmt.Errorf("regress: negative alpha %v", opt.Alpha)
	}
	strat := opt.Strategy
	if strat == Auto {
		if x.Cols > x.Rows {
			strat = Dual
		} else {
			strat = Primal
		}
	}
	switch strat {
	case Primal:
		return fitPrimal(x, y, opt)
	case Dual:
		return fitDual(x, y, opt)
	case IterLSQR:
		return FitOperator(solver.DenseOp{A: x, Workers: opt.Workers}, y, opt)
	default:
		return nil, fmt.Errorf("regress: unknown strategy %v", strat)
	}
}

// FitOperator fits ridge regression through an abstract operator using
// LSQR; this is the linear-time sparse path.  The Strategy option is
// ignored (always LSQR).
func FitOperator(op solver.Operator, y *mat.Dense, opt Options) (*Model, error) {
	m, n := op.Dims()
	if m != y.Rows {
		return nil, fmt.Errorf("regress: operator has %d rows but Y has %d", m, y.Rows)
	}
	if opt.Alpha < 0 {
		return nil, fmt.Errorf("regress: negative alpha %v", opt.Alpha)
	}
	work := op
	if opt.Intercept {
		work = solver.AugmentedOp{Inner: op}
	}
	k := y.Cols
	model := &Model{W: mat.NewDense(n, k), B: make([]float64, k), Strategy: IterLSQR}
	params := solver.LSQRParams{Damp: math.Sqrt(opt.Alpha), MaxIter: opt.LSQRIter}

	// The responses are independent ridge systems over one read-only
	// operator; fan the response range out on the shared pool so the whole
	// fit (including the parallel mat-vecs inside each LSQR solve) stays on
	// one GOMAXPROCS budget and nested fork-joins cannot deadlock.  Each
	// span owns its RHS buffer; W columns, B entries, and the per-response
	// telemetry slots are all disjoint per response, so workers share no
	// mutable state at all.
	iterCounts := make([]int, k)
	residuals := make([]float64, k)
	var curves [][]float64
	if opt.RecordResiduals {
		params.RecordResiduals = true
		curves = make([][]float64, k)
	}
	lsqrSpan := opt.Trace.Start("lsqr")
	pool.Do(opt.Workers, k, func(lo, hi int) {
		rhs := make([]float64, m)
		for j := lo; j < hi; j++ {
			y.ColCopy(j, rhs)
			res := solver.LSQR(work, rhs, params)
			iterCounts[j] = res.Iters
			residuals[j] = res.ResNorm
			if curves != nil {
				curves[j] = res.Residuals
			}
			if opt.Intercept {
				model.W.SetCol(j, res.X[:n])
				model.B[j] = res.X[n]
			} else {
				model.W.SetCol(j, res.X)
			}
		}
	})
	lsqrSpan.End()
	total := 0
	for _, c := range iterCounts {
		total += c
	}
	model.Iters = total
	model.Stats = Stats{Strategy: IterLSQR, Iters: total, IterCounts: iterCounts, Residuals: residuals, ResidualCurves: curves}
	return model, nil
}

// fitPrimal implements eq. (20): one Cholesky of the (n+1)×(n+1)
// (augmented) Gram matrix shared by all responses.
func fitPrimal(x *mat.Dense, y *mat.Dense, opt Options) (*Model, error) {
	xa := augment(x, opt.Intercept)
	n := xa.Cols
	sp := opt.Trace.Start("gram")
	g := mat.ParGram(opt.Workers, xa)
	sp.End()
	for i := 0; i < n; i++ {
		g.Set(i, i, g.At(i, i)+opt.Alpha)
	}
	sp = opt.Trace.Start("cholesky")
	ch, err := decomp.NewCholesky(g)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("regress: normal equations not positive definite (alpha=%v): %w", opt.Alpha, err)
	}
	sp = opt.Trace.Start("xty")
	xty := mat.ParMulTA(opt.Workers, xa, y)
	sp.End()
	sp = opt.Trace.Start("solve")
	w := ch.Solve(xty)
	sp.End()
	model := splitIntercept(w, opt.Intercept, Primal)
	model.Stats.CondEstimate = ch.CondEstimate()
	return model, nil
}

// fitDual implements eq. (21): factor the m×m matrix XXᵀ + αI, solve for
// each response, then map back through Xᵀ.  Identical solution to
// fitPrimal for α>0 (push-through identity); pseudo-inverse limit as α→0.
func fitDual(x *mat.Dense, y *mat.Dense, opt Options) (*Model, error) {
	xa := augment(x, opt.Intercept)
	m := xa.Rows
	sp := opt.Trace.Start("gram")
	g := mat.ParGramT(opt.Workers, xa)
	sp.End()
	alpha := opt.Alpha
	if alpha == 0 { //srdalint:ignore floatcmp exact zero alpha selects the pseudo-inverse route of eq. 21
		// A tiny ridge keeps the factorization defined when rows are
		// dependent; mirrors the α→0 limit of Theorem 2.
		alpha = 1e-12 * (1 + g.Norm())
	}
	for i := 0; i < m; i++ {
		g.Set(i, i, g.At(i, i)+alpha)
	}
	sp = opt.Trace.Start("cholesky")
	ch, err := decomp.NewCholesky(g)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("regress: dual system not positive definite (alpha=%v): %w", opt.Alpha, err)
	}
	sp = opt.Trace.Start("solve")
	z := ch.Solve(y)
	sp.End()
	sp = opt.Trace.Start("xty")
	w := mat.ParMulTA(opt.Workers, xa, z)
	sp.End()
	model := splitIntercept(w, opt.Intercept, Dual)
	model.Stats.CondEstimate = ch.CondEstimate()
	return model, nil
}

// augment appends a constant-1 column when intercept is requested.
func augment(x *mat.Dense, intercept bool) *mat.Dense {
	if !intercept {
		return x
	}
	xa := mat.NewDense(x.Rows, x.Cols+1)
	for i := 0; i < x.Rows; i++ {
		row := xa.RowView(i)
		copy(row, x.RowView(i))
		row[x.Cols] = 1
	}
	return xa
}

// splitIntercept separates the trailing intercept row of the stacked
// solution when present.
func splitIntercept(w *mat.Dense, intercept bool, strat Strategy) *Model {
	k := w.Cols
	if !intercept {
		return &Model{W: w, B: make([]float64, k), Strategy: strat, Stats: Stats{Strategy: strat}}
	}
	n := w.Rows - 1
	model := &Model{W: w.Slice(0, n, 0, k).Clone(), B: make([]float64, k), Strategy: strat, Stats: Stats{Strategy: strat}}
	for j := 0; j < k; j++ {
		model.B[j] = w.At(n, j)
	}
	return model
}

// PredictDense computes X·W + 1·bᵀ for a dense X.
func (m *Model) PredictDense(x *mat.Dense) *mat.Dense {
	out := mat.Mul(x, m.W)
	m.addBias(out)
	return out
}

// PredictOperator computes the predictions through an operator, one
// response at a time (no densification).
func (m *Model) PredictOperator(op solver.Operator, rows int) *mat.Dense {
	k := m.W.Cols
	out := mat.NewDense(rows, k)
	col := make([]float64, m.W.Rows)
	dst := make([]float64, rows)
	for j := 0; j < k; j++ {
		m.W.ColCopy(j, col)
		op.Apply(col, dst)
		for i := 0; i < rows; i++ {
			out.Set(i, j, dst[i]+m.B[j])
		}
	}
	return out
}

func (m *Model) addBias(out *mat.Dense) {
	for i := 0; i < out.Rows; i++ {
		row := out.RowView(i)
		for j := range row {
			row[j] += m.B[j]
		}
	}
}
