package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzCSRMulVec builds a random CSR from fuzzer-chosen shape/density
// parameters and cross-checks MulVec/MulTVec against the dense oracle
// (mat.Dense products on the uncompressed matrix), plus the Par* twins
// bitwise against the sequential kernels.  The checked-in corpus in
// testdata/fuzz/FuzzCSRMulVec seeds empty, single-entry, dense-ish, and
// ragged matrices.
func FuzzCSRMulVec(f *testing.F) {
	f.Add(0, 0, int64(1), 0.5, 4)
	f.Add(1, 1, int64(2), 1.0, 2)
	f.Add(5, 3, int64(3), 0.0, 7)
	f.Add(7, 11, int64(4), 0.3, 3)
	f.Add(32, 17, int64(5), 0.05, 5)
	f.Add(13, 64, int64(6), 0.9, 1)
	f.Fuzz(func(t *testing.T, r, c int, seed int64, fill float64, workers int) {
		const maxDim = 64
		if r < 0 || c < 0 || r > maxDim || c > maxDim {
			t.Skip()
		}
		if math.IsNaN(fill) || fill < 0 || fill > 1 {
			t.Skip()
		}
		if workers < 0 || workers > 16 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		d, a := randSparseDense(rng, r, c, fill)

		x := make([]float64, c)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		xt := make([]float64, r)
		for i := range xt {
			xt[i] = rng.NormFloat64()
		}
		if r > 0 {
			xt[rng.Intn(r)] = 0 // exercise the xi == 0 skip
		}

		got := a.MulVec(x, nil)
		want := d.MulVec(x, nil)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("MulVec %dx%d fill=%v: row %d = %v, dense oracle %v", r, c, fill, i, got[i], want[i])
			}
		}
		gotT := a.MulTVec(xt, nil)
		wantT := d.MulTVec(xt, nil)
		for j := range wantT {
			if math.Abs(gotT[j]-wantT[j]) > 1e-9 {
				t.Fatalf("MulTVec %dx%d fill=%v: col %d = %v, dense oracle %v", r, c, fill, j, gotT[j], wantT[j])
			}
		}

		par := a.ParMulVec(workers, x, nil)
		for i := range got {
			if math.Float64bits(par[i]) != math.Float64bits(got[i]) {
				t.Fatalf("ParMulVec(workers=%d): row %d = %v, sequential %v", workers, i, par[i], got[i])
			}
		}
		parT := a.ParMulTVec(workers, xt, nil)
		for j := range gotT {
			if math.Float64bits(parT[j]) != math.Float64bits(gotT[j]) {
				t.Fatalf("ParMulTVec(workers=%d): col %d = %v, sequential %v", workers, j, parT[j], gotT[j])
			}
		}
	})
}
