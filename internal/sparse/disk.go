package sparse

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// DiskCSR is a CSR matrix stored in a file and streamed during
// matrix-vector products, realizing the paper's §III-C2 observation that
// "even [if] the data matrix is too large to be fit into the memory,
// SRDA can still be applied with some reasonable disk I/O" — each LSQR
// iteration only needs one sequential pass over the row data for A·v and
// one for Aᵀ·v.  Only the row-pointer array (8 bytes per row) is held in
// memory.
//
// File layout (little-endian):
//
//	magic   "SRDACSR1" (8 bytes)
//	rows    int64
//	cols    int64
//	nnz     int64
//	rowptr  (rows+1)·int64
//	colidx  nnz·int64
//	values  nnz·float64
type DiskCSR struct {
	Rows, Cols int
	rowPtr     []int64
	f          *os.File
	colOff     int64 // file offset of the column-index region
	valOff     int64 // file offset of the value region
}

const diskMagic = "SRDACSR1"

// WriteFile serializes the matrix into the DiskCSR file format.
func (a *CSR) WriteFile(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// A buffered write can look successful until Close flushes it to a
	// full disk; surface that error instead of losing the matrix silently.
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.WriteString(diskMagic); err != nil {
		return err
	}
	for _, v := range []int64{int64(a.Rows), int64(a.Cols), int64(a.NNZ())} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, p := range a.RowPtr {
		if err := binary.Write(w, binary.LittleEndian, int64(p)); err != nil {
			return err
		}
	}
	for _, c := range a.ColIdx {
		if err := binary.Write(w, binary.LittleEndian, int64(c)); err != nil {
			return err
		}
	}
	for _, v := range a.Val {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return w.Flush()
}

// OpenDiskCSR opens a file written by WriteFile, loading only the row
// pointers.  The caller owns Close.
func OpenDiskCSR(path string) (*DiskCSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := bufio.NewReader(f)
	magic := make([]byte, len(diskMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		_ = f.Close() // error path: the read failure is the error to report
		return nil, fmt.Errorf("sparse: reading magic: %w", err)
	}
	if string(magic) != diskMagic {
		_ = f.Close() // error path: the read failure is the error to report
		return nil, fmt.Errorf("sparse: %s is not a DiskCSR file", path)
	}
	var rows, cols, nnz int64
	for _, p := range []*int64{&rows, &cols, &nnz} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			_ = f.Close() // error path: the read failure is the error to report
			return nil, err
		}
	}
	if rows < 0 || cols < 0 || nnz < 0 {
		_ = f.Close() // error path: the read failure is the error to report
		return nil, fmt.Errorf("sparse: corrupt header (%d, %d, %d)", rows, cols, nnz)
	}
	rowPtr := make([]int64, rows+1)
	if err := binary.Read(r, binary.LittleEndian, rowPtr); err != nil {
		_ = f.Close() // error path: the read failure is the error to report
		return nil, fmt.Errorf("sparse: reading row pointers: %w", err)
	}
	if rowPtr[rows] != nnz {
		_ = f.Close() // error path: the read failure is the error to report
		return nil, fmt.Errorf("sparse: row pointers inconsistent with nnz")
	}
	headerLen := int64(len(diskMagic)) + 3*8 + (rows+1)*8
	return &DiskCSR{
		Rows:   int(rows),
		Cols:   int(cols),
		rowPtr: rowPtr,
		f:      f,
		colOff: headerLen,
		valOff: headerLen + nnz*8,
	}, nil
}

// Close releases the underlying file.
func (d *DiskCSR) Close() error { return d.f.Close() }

// NNZ returns the number of stored entries.
func (d *DiskCSR) NNZ() int { return int(d.rowPtr[d.Rows]) }

// streamer walks the colidx and value regions sequentially in lockstep.
type streamer struct {
	cols *bufio.Reader
	vals *bufio.Reader
	cbuf [8]byte
	vbuf [8]byte
}

func (d *DiskCSR) newStreamer() *streamer {
	return &streamer{
		cols: bufio.NewReaderSize(io.NewSectionReader(d.f, d.colOff, int64(d.NNZ())*8), 1<<18),
		vals: bufio.NewReaderSize(io.NewSectionReader(d.f, d.valOff, int64(d.NNZ())*8), 1<<18),
	}
}

func (s *streamer) next() (col int, val float64, err error) {
	if _, err = io.ReadFull(s.cols, s.cbuf[:]); err != nil {
		return 0, 0, err
	}
	if _, err = io.ReadFull(s.vals, s.vbuf[:]); err != nil {
		return 0, 0, err
	}
	c := int64(binary.LittleEndian.Uint64(s.cbuf[:]))
	v := binary.LittleEndian.Uint64(s.vbuf[:])
	return int(c), math.Float64frombits(v), nil
}

// MulVec computes y = A·x with one sequential pass over the file.
func (d *DiskCSR) MulVec(x, dst []float64) ([]float64, error) {
	if len(x) != d.Cols {
		return nil, fmt.Errorf("sparse: MulVec length mismatch")
	}
	if dst == nil {
		dst = make([]float64, d.Rows)
	}
	st := d.newStreamer()
	for i := 0; i < d.Rows; i++ {
		var s float64
		for k := d.rowPtr[i]; k < d.rowPtr[i+1]; k++ {
			col, val, err := st.next()
			if err != nil {
				//srdalint:ignore hotalloc error exit: runs at most once, then the kernel returns
				return nil, fmt.Errorf("sparse: streaming row %d: %w", i, err)
			}
			s += val * x[col]
		}
		dst[i] = s
	}
	return dst, nil
}

// MulTVec computes y = Aᵀ·x with one sequential pass over the file.
func (d *DiskCSR) MulTVec(x, dst []float64) ([]float64, error) {
	if len(x) != d.Rows {
		return nil, fmt.Errorf("sparse: MulTVec length mismatch")
	}
	if dst == nil {
		dst = make([]float64, d.Cols)
	} else {
		for j := range dst {
			dst[j] = 0
		}
	}
	st := d.newStreamer()
	for i := 0; i < d.Rows; i++ {
		xi := x[i]
		for k := d.rowPtr[i]; k < d.rowPtr[i+1]; k++ {
			col, val, err := st.next()
			if err != nil {
				//srdalint:ignore hotalloc error exit: runs at most once, then the kernel returns
				return nil, fmt.Errorf("sparse: streaming row %d: %w", i, err)
			}
			dst[col] += val * xi
		}
	}
	return dst, nil
}

// Load reads the whole matrix into memory (for tests and small files).
func (d *DiskCSR) Load() (*CSR, error) {
	nnz := d.NNZ()
	out := &CSR{
		Rows:   d.Rows,
		Cols:   d.Cols,
		RowPtr: make([]int, d.Rows+1),
		ColIdx: make([]int, nnz),
		Val:    make([]float64, nnz),
	}
	for i := range d.rowPtr {
		out.RowPtr[i] = int(d.rowPtr[i])
	}
	st := d.newStreamer()
	for k := 0; k < nnz; k++ {
		col, val, err := st.next()
		if err != nil {
			return nil, err
		}
		out.ColIdx[k] = col
		out.Val[k] = val
	}
	return out, nil
}
