package sparse

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestDiskCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_, a := randSparseDense(rng, 40, 25, 0.15)
	path := filepath.Join(t.TempDir(), "m.csr")
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDiskCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Rows != 40 || d.Cols != 25 || d.NNZ() != a.NNZ() {
		t.Fatalf("header %d/%d/%d", d.Rows, d.Cols, d.NNZ())
	}
	back, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != a.NNZ() {
		t.Fatal("nnz mismatch after load")
	}
	for i := 0; i < a.Rows; i++ {
		ca, va := a.Row(i)
		cb, vb := back.Row(i)
		if len(ca) != len(cb) {
			t.Fatalf("row %d length", i)
		}
		for k := range ca {
			if ca[k] != cb[k] || va[k] != vb[k] {
				t.Fatalf("row %d entry %d", i, k)
			}
		}
	}
}

func TestDiskCSRMatVecMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	_, a := randSparseDense(rng, 60, 35, 0.1)
	path := filepath.Join(t.TempDir(), "m.csr")
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDiskCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	x := make([]float64, 35)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got, err := d.MulVec(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := a.MulVec(x, nil)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("MulVec[%d]: %v vs %v", i, got[i], want[i])
		}
	}
	y := make([]float64, 60)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	gt, err := d.MulTVec(y, nil)
	if err != nil {
		t.Fatal(err)
	}
	wt := a.MulTVec(y, nil)
	for i := range wt {
		if math.Abs(gt[i]-wt[i]) > 1e-12 {
			t.Fatalf("MulTVec[%d]: %v vs %v", i, gt[i], wt[i])
		}
	}
}

func TestDiskCSRRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	if err := os.WriteFile(path, []byte("not a csr file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskCSR(path); err == nil {
		t.Fatal("garbage file accepted")
	}
	if _, err := OpenDiskCSR(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDiskCSRDimensionChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, a := randSparseDense(rng, 10, 6, 0.3)
	path := filepath.Join(t.TempDir(), "m.csr")
	if err := a.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDiskCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.MulVec(make([]float64, 5), nil); err == nil {
		t.Fatal("wrong x length accepted")
	}
	if _, err := d.MulTVec(make([]float64, 9), nil); err == nil {
		t.Fatal("wrong y length accepted")
	}
}
