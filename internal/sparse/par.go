package sparse

// Parallel twins of the CSR kernels.  As in internal/blas, each Par*
// method shards only over independent output rows or columns and runs the
// same per-element arithmetic in the same order as its sequential twin, so
// results are bitwise identical for every worker count.  The sequential
// methods are themselves expressed as full-range calls of the shared range
// helpers, making twin-ness a structural property rather than a promise.
//
// Sharding a CSR by *output column* (MulTVec, Gram) uses a binary search
// per row to find the window of stored entries that land in the shard's
// column span; column indices are strictly increasing within a row, so the
// window is contiguous and the per-column accumulation still walks rows in
// ascending order exactly like the sequential scatter.

import (
	"sort"

	"srda/internal/mat"
	"srda/internal/pool"
)

// parMinNNZ is the stored-entry count below which the Par* methods run
// sequentially; a sparse kernel does ~2 flops per nonzero, so this matches
// the ~32Ki-flop handoff threshold used by internal/blas.
const parMinNNZ = 1 << 14

// ParMulVec computes y = A*x like MulVec, sharding output rows across the
// worker pool; each dst[i] is a single row dot product, so the result is
// bitwise identical to MulVec for any workers (<= 0 means GOMAXPROCS).
func (a *CSR) ParMulVec(workers int, x, dst []float64) []float64 {
	if len(x) != a.Cols {
		panic("sparse: ParMulVec length mismatch")
	}
	if dst == nil {
		dst = make([]float64, a.Rows)
	}
	if workers == 1 || a.Rows < 2 || a.NNZ() < parMinNNZ {
		a.mulVecRange(0, a.Rows, x, dst)
		return dst
	}
	pool.Do(workers, a.Rows, func(lo, hi int) {
		a.mulVecRange(lo, hi, x, dst)
	})
	return dst
}

// colWindow returns the index range [s, e) within row r's stored entries
// whose column indices fall in [jlo, jhi).
func (a *CSR) colWindow(r, jlo, jhi int) (s, e int) {
	lo, hi := a.RowPtr[r], a.RowPtr[r+1]
	cols := a.ColIdx[lo:hi]
	s, e = 0, len(cols)
	if jlo > 0 {
		s = sort.SearchInts(cols, jlo)
	}
	if jhi <= a.Cols-1 {
		e = sort.SearchInts(cols, jhi)
	}
	return lo + s, lo + e
}

// mulTVecRange accumulates dst[j] = column(j)·x for j in [jlo, jhi),
// zeroing that span of dst first.  For every output column the row scan is
// ascending with the same xi == 0 skip as MulTVec (the skip is part of the
// contract: 0*Inf would otherwise mint NaNs the sequential kernel never
// produces), so MulTVec and ParMulTVec are bitwise twins.
func (a *CSR) mulTVecRange(jlo, jhi int, x, dst []float64) {
	for j := jlo; j < jhi; j++ {
		dst[j] = 0
	}
	for i := 0; i < a.Rows; i++ {
		xi := x[i]
		if xi == 0 { //srdalint:ignore floatcmp exact sparsity skip shared with the sequential twin
			continue
		}
		s, e := a.colWindow(i, jlo, jhi)
		for k := s; k < e; k++ {
			dst[a.ColIdx[k]] += a.Val[k] * xi
		}
	}
}

// ParMulTVec computes y = Aᵀ*x like MulTVec, sharding output columns
// across the worker pool.  Bitwise identical to MulTVec for any workers.
func (a *CSR) ParMulTVec(workers int, x, dst []float64) []float64 {
	if len(x) != a.Rows {
		panic("sparse: ParMulTVec length mismatch")
	}
	if dst == nil {
		dst = make([]float64, a.Cols)
	}
	if workers == 1 || a.Cols < 2 || a.NNZ() < parMinNNZ {
		return a.MulTVec(x, dst)
	}
	pool.Do(workers, a.Cols, func(lo, hi int) {
		a.mulTVecRange(lo, hi, x, dst)
	})
	return dst
}

// gramUpperRange accumulates the rows [ilo, ihi) of the upper triangle of
// G = AᵀA: for every matrix row p (ascending) and every stored pair
// (i, j) with i in the span and j >= i, G[i,j] += A[p,i]*A[p,j].  Column
// indices ascend within a row, so the pair order for a fixed (i, j) is
// identical no matter how the i range is sharded.
func (a *CSR) gramUpperRange(ilo, ihi int, g *mat.Dense) {
	for p := 0; p < a.Rows; p++ {
		hi := a.RowPtr[p+1]
		s, e := a.colWindow(p, ilo, ihi)
		for t := s; t < e; t++ {
			i, v := a.ColIdx[t], a.Val[t]
			gi := g.Data[i*g.Stride : i*g.Stride+g.Cols]
			for u := t; u < hi; u++ {
				gi[a.ColIdx[u]] += v * a.Val[u]
			}
		}
	}
}

// gramMirrorRange copies the upper triangle into the lower for rows
// [jlo, jhi) of G.  Pure copies of already-final values: no arithmetic, so
// nothing to reorder.
func (a *CSR) gramMirrorRange(jlo, jhi int, g *mat.Dense) {
	for j := jlo; j < jhi; j++ {
		row := g.Data[j*g.Stride:]
		for i := 0; i < j; i++ {
			row[i] = g.Data[i*g.Stride+j]
		}
	}
}

// Gram computes G = AᵀA into dst (allocated when nil; must be Cols×Cols
// otherwise), overwriting it.  This is the normal-equations accumulation
// the primal solver needs, done in one pass over the stored entries:
// O(Σ s_p²) where s_p is the nonzeros of row p, never materializing a
// dense copy of A.
func (a *CSR) Gram(dst *mat.Dense) *mat.Dense {
	dst = a.gramDst(dst)
	a.gramUpperRange(0, a.Cols, dst)
	a.gramMirrorRange(0, a.Cols, dst)
	return dst
}

// ParGram computes G = AᵀA like Gram, sharding the upper-triangle
// accumulation and then the mirror over output rows of G; the two passes
// are separated by the pool barrier, so the mirror only reads final upper
// values.  Bitwise identical to Gram for any workers.
func (a *CSR) ParGram(workers int, dst *mat.Dense) *mat.Dense {
	dst = a.gramDst(dst)
	if workers == 1 || a.Cols < 2 || a.NNZ() < parMinNNZ {
		a.gramUpperRange(0, a.Cols, dst)
		a.gramMirrorRange(0, a.Cols, dst)
		return dst
	}
	pool.Do(workers, a.Cols, func(lo, hi int) {
		a.gramUpperRange(lo, hi, dst)
	})
	pool.Do(workers, a.Cols, func(lo, hi int) {
		a.gramMirrorRange(lo, hi, dst)
	})
	return dst
}

func (a *CSR) gramDst(dst *mat.Dense) *mat.Dense {
	if dst == nil {
		return mat.NewDense(a.Cols, a.Cols)
	}
	if dst.Rows != a.Cols || dst.Cols != a.Cols {
		panic("sparse: Gram destination has wrong shape")
	}
	for i := 0; i < dst.Rows; i++ {
		row := dst.RowView(i)
		for j := range row {
			row[j] = 0
		}
	}
	return dst
}
