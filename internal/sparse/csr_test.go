package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"srda/internal/mat"
)

// randSparseDense returns a random dense matrix with the given fill fraction
// and its CSR compression, for cross-checking.
func randSparseDense(rng *rand.Rand, r, c int, fill float64) (*mat.Dense, *CSR) {
	d := mat.NewDense(r, c)
	b := NewBuilder(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < fill {
				v := rng.NormFloat64()
				d.Set(i, j, v)
				b.Add(i, j, v)
			}
		}
	}
	return d, b.Build()
}

func vecAlmostEqual(t *testing.T, got, want []float64, eps float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > eps {
			t.Fatalf("i=%d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestBuilderBuildsSortedRows(t *testing.T) {
	b := NewBuilder(2, 4)
	b.Add(1, 3, 1)
	b.Add(1, 0, 2)
	b.Add(0, 2, 3)
	a := b.Build()
	if a.NNZ() != 3 {
		t.Fatalf("nnz=%d", a.NNZ())
	}
	cols, vals := a.Row(1)
	if cols[0] != 0 || cols[1] != 3 || vals[0] != 2 || vals[1] != 1 {
		t.Fatalf("row1 cols=%v vals=%v", cols, vals)
	}
}

func TestBuilderSumsDuplicates(t *testing.T) {
	b := NewBuilder(1, 2)
	b.Add(0, 1, 2)
	b.Add(0, 1, 3)
	a := b.Build()
	if a.At(0, 1) != 5 {
		t.Fatalf("dup sum=%v", a.At(0, 1))
	}
}

func TestBuilderDropsCancellations(t *testing.T) {
	b := NewBuilder(1, 2)
	b.Add(0, 0, 1)
	b.Add(0, 0, -1)
	b.Add(0, 1, 2)
	a := b.Build()
	if a.NNZ() != 1 || a.At(0, 0) != 0 {
		t.Fatalf("cancellation kept: nnz=%d", a.NNZ())
	}
}

func TestBuilderEmptyRows(t *testing.T) {
	b := NewBuilder(4, 3)
	b.Add(2, 1, 5)
	a := b.Build()
	for _, i := range []int{0, 1, 3} {
		cols, _ := a.Row(i)
		if len(cols) != 0 {
			t.Fatalf("row %d should be empty", i)
		}
	}
	if a.At(2, 1) != 5 {
		t.Fatal("missing entry")
	}
}

func TestAtZeroForMissing(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 0, 1)
	a := b.Build()
	if a.At(1, 1) != 0 {
		t.Fatal("missing entry should read 0")
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, a := randSparseDense(rng, 40, 25, 0.1)
	x := make([]float64, 25)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	vecAlmostEqual(t, a.MulVec(x, nil), d.MulVec(x, nil), 1e-10)
}

func TestMulTVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, a := randSparseDense(rng, 33, 18, 0.15)
	x := make([]float64, 33)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	vecAlmostEqual(t, a.MulTVec(x, nil), d.MulTVec(x, nil), 1e-10)
}

func TestMulTVecReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, a := randSparseDense(rng, 10, 6, 0.3)
	x := make([]float64, 10)
	for i := range x {
		x[i] = 1
	}
	dst := []float64{9, 9, 9, 9, 9, 9}
	got := a.MulTVec(x, dst)
	want := a.MulTVec(x, nil)
	vecAlmostEqual(t, got, want, 0)
}

func TestRoundTripDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d, a := randSparseDense(rng, 12, 9, 0.2)
	if !mat.Equalish(a.ToDense(), d, 0) {
		t.Fatal("ToDense mismatch")
	}
	back := FromDense(d, 0)
	if !mat.Equalish(back.ToDense(), d, 0) {
		t.Fatal("FromDense round-trip mismatch")
	}
}

func TestFromDenseDropTol(t *testing.T) {
	d := mat.FromRows([][]float64{{1e-12, 1}, {0.5, -1e-13}})
	a := FromDense(d, 1e-9)
	if a.NNZ() != 2 {
		t.Fatalf("nnz=%d want 2", a.NNZ())
	}
}

func TestSelectRows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d, a := randSparseDense(rng, 10, 7, 0.3)
	idx := []int{3, 3, 0, 9}
	sub := a.SelectRows(idx)
	if sub.Rows != 4 {
		t.Fatalf("rows=%d", sub.Rows)
	}
	for r, i := range idx {
		for j := 0; j < 7; j++ {
			if sub.At(r, j) != d.At(i, j) {
				t.Fatalf("(%d,%d)", r, j)
			}
		}
	}
}

func TestRowDotAndNorm(t *testing.T) {
	b := NewBuilder(2, 4)
	b.Add(0, 1, 3)
	b.Add(0, 3, 4)
	a := b.Build()
	if got := a.RowNorm2(0); got != 25 {
		t.Fatalf("RowNorm2=%v", got)
	}
	x := []float64{1, 2, 3, 4}
	if got := a.RowDot(0, x); got != 3*2+4*4 {
		t.Fatalf("RowDot=%v", got)
	}
}

func TestAddScaledRowAndScaleRow(t *testing.T) {
	b := NewBuilder(1, 3)
	b.Add(0, 0, 1)
	b.Add(0, 2, 2)
	a := b.Build()
	dst := make([]float64, 3)
	a.AddScaledRow(0, 2, dst)
	if dst[0] != 2 || dst[1] != 0 || dst[2] != 4 {
		t.Fatalf("dst=%v", dst)
	}
	a.ScaleRow(0, 0.5)
	if a.At(0, 2) != 1 {
		t.Fatalf("ScaleRow: %v", a.At(0, 2))
	}
}

func TestColMeansMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d, a := randSparseDense(rng, 17, 11, 0.25)
	vecAlmostEqual(t, a.ColMeans(), d.ColMeans(), 1e-12)
}

func TestStatsAndString(t *testing.T) {
	b := NewBuilder(4, 5)
	b.Add(0, 0, 1)
	b.Add(1, 1, 1)
	a := b.Build()
	if a.NNZ() != 2 {
		t.Fatalf("NNZ=%d", a.NNZ())
	}
	if got := a.AvgRowNNZ(); got != 0.5 {
		t.Fatalf("AvgRowNNZ=%v", got)
	}
	if got := a.Density(); got != 0.1 {
		t.Fatalf("Density=%v", got)
	}
	if a.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes should be positive")
	}
	if a.String() == "" {
		t.Fatal("empty String")
	}
}

func TestCSRMatVecPropertyAgainstDense(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(20), 1+rng.Intn(20)
		d, a := randSparseDense(rng, r, c, 0.2)
		x := make([]float64, c)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ys, yd := a.MulVec(x, nil), d.MulVec(x, nil)
		for i := range ys {
			if math.Abs(ys[i]-yd[i]) > 1e-9 {
				return false
			}
		}
		xt := make([]float64, r)
		for i := range xt {
			xt[i] = rng.NormFloat64()
		}
		zs, zd := a.MulTVec(xt, nil), d.MulTVec(xt, nil)
		for i := range zs {
			if math.Abs(zs[i]-zd[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAdjointIdentityProperty(t *testing.T) {
	// <A x, y> == <x, Aᵀ y> — the identity LSQR relies on.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(15), 1+rng.Intn(15)
		_, a := randSparseDense(rng, r, c, 0.3)
		x := make([]float64, c)
		y := make([]float64, r)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		ax := a.MulVec(x, nil)
		aty := a.MulTVec(y, nil)
		var lhs, rhs float64
		for i := range ax {
			lhs += ax[i] * y[i]
		}
		for i := range x {
			rhs += x[i] * aty[i]
		}
		return math.Abs(lhs-rhs) <= 1e-8*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
