package sparse

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"srda/internal/mat"
)

// parShapes mixes shapes below the parMinNNZ cutoff (exercising the
// sequential fallback), above it (exercising real sharding), and
// degenerate empty/ragged cases.  fill 0 produces an all-empty matrix.
var parShapes = []struct {
	r, c int
	fill float64
}{
	{0, 0, 0}, {0, 5, 0.5}, {5, 0, 0}, {1, 1, 1},
	{3, 7, 0.4}, {64, 65, 0.1}, {65, 64, 0},
	{400, 300, 0.2},  // ~24k nnz: row sharding active
	{50, 2000, 0.25}, // wide: column sharding active for MulTVec/Gram
	{2000, 50, 0.25}, // tall
}

var sparseEqWorkers = []int{1, 2, 4, 7}

func bitsEqualVec(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

func TestParMulVecBitwiseEqualsMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, sh := range parShapes {
		_, a := randSparseDense(rng, sh.r, sh.c, sh.fill)
		x := make([]float64, sh.c)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		want := a.MulVec(x, nil)
		for _, w := range sparseEqWorkers {
			got := a.ParMulVec(w, x, make([]float64, sh.r))
			if i, ok := bitsEqualVec(got, want); !ok {
				t.Fatalf("%v workers=%d: row %d = %v, sequential %v", a, w, i, got[i], want[i])
			}
		}
	}
}

func TestParMulTVecBitwiseEqualsMulTVec(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for _, sh := range parShapes {
		_, a := randSparseDense(rng, sh.r, sh.c, sh.fill)
		x := make([]float64, sh.r)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		// Sprinkle exact zeros so the xi == 0 skip path is exercised.
		for i := 0; i < len(x); i += 3 {
			x[i] = 0
		}
		want := a.MulTVec(x, nil)
		for _, w := range sparseEqWorkers {
			// Pre-poison dst: ParMulTVec must fully overwrite it.
			got := make([]float64, sh.c)
			for j := range got {
				got[j] = math.NaN()
			}
			a.ParMulTVec(w, x, got)
			if j, ok := bitsEqualVec(got, want); !ok {
				t.Fatalf("%v workers=%d: col %d = %v, sequential %v", a, w, j, got[j], want[j])
			}
		}
	}
}

func TestParGramBitwiseEqualsGram(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, sh := range parShapes {
		_, a := randSparseDense(rng, sh.r, sh.c, sh.fill)
		want := a.Gram(nil)
		for _, w := range sparseEqWorkers {
			got := a.ParGram(w, nil)
			if i, ok := bitsEqualVec(got.Data, want.Data); !ok {
				t.Fatalf("%v workers=%d: element %d = %v, sequential %v", a, w, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestGramMatchesDenseOracle checks the sparse Gram against the dense
// XᵀX computed by internal/mat from the uncompressed matrix.
func TestGramMatchesDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for _, sh := range parShapes {
		d, a := randSparseDense(rng, sh.r, sh.c, sh.fill)
		got := a.Gram(nil)
		want := mat.Gram(d)
		if got.Rows != sh.c || got.Cols != sh.c {
			t.Fatalf("Gram shape %dx%d, want %dx%d", got.Rows, got.Cols, sh.c, sh.c)
		}
		for i := range got.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				t.Fatalf("%v: Gram element %d = %v, dense oracle %v", a, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestGramReusesDst checks that a dirty destination is fully overwritten.
func TestGramReusesDst(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	_, a := randSparseDense(rng, 30, 20, 0.3)
	want := a.Gram(nil)
	dst := mat.NewDense(20, 20)
	for i := range dst.Data {
		dst.Data[i] = math.NaN()
	}
	a.Gram(dst)
	if i, ok := bitsEqualVec(dst.Data, want.Data); !ok {
		t.Fatalf("reused dst differs at %d: %v vs %v", i, dst.Data[i], want.Data[i])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong-shape dst")
		}
	}()
	a.Gram(mat.NewDense(3, 3))
}

// TestCSRRoundTripProperty drives COO→CSR→dense→CSR round trips over
// random matrices and asserts the two CSR forms are structurally
// identical, including matrices with empty rows, empty columns, and
// duplicate COO entries that sum or cancel.
func TestCSRRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for trial := 0; trial < 200; trial++ {
		r, c := rng.Intn(12), rng.Intn(12)
		b := NewBuilder(r, c)
		n := 0
		if r > 0 && c > 0 {
			n = rng.Intn(3 * (r + 1) * (c + 1) / 2)
		}
		for e := 0; e < n; e++ {
			i, j := rng.Intn(r), rng.Intn(c)
			switch rng.Intn(4) {
			case 0:
				b.Add(i, j, 0) // ignored
			case 1: // exact cancellation pair
				v := rng.NormFloat64()
				b.Add(i, j, v)
				b.Add(i, j, -v)
			default:
				b.Add(i, j, rng.NormFloat64())
			}
		}
		a := b.Build()
		back := FromDense(a.ToDense(), 0)
		if back.Rows != a.Rows || back.Cols != a.Cols {
			t.Fatalf("trial %d: shape %dx%d -> %dx%d", trial, a.Rows, a.Cols, back.Rows, back.Cols)
		}
		if len(back.Val) != len(a.Val) {
			t.Fatalf("trial %d: nnz %d -> %d", trial, len(a.Val), len(back.Val))
		}
		for i := 0; i <= a.Rows; i++ {
			if back.RowPtr[i] != a.RowPtr[i] {
				t.Fatalf("trial %d: RowPtr[%d] %d vs %d", trial, i, a.RowPtr[i], back.RowPtr[i])
			}
		}
		for k := range a.Val {
			if back.ColIdx[k] != a.ColIdx[k] || math.Float64bits(back.Val[k]) != math.Float64bits(a.Val[k]) {
				t.Fatalf("trial %d: entry %d (%d,%v) vs (%d,%v)",
					trial, k, a.ColIdx[k], a.Val[k], back.ColIdx[k], back.Val[k])
			}
		}
	}
}

// TestParKernelsEmptyMatrix pins the degenerate cases the sharding must
// not break: zero rows, zero cols, and rows with no stored entries.
func TestParKernelsEmptyMatrix(t *testing.T) {
	for _, w := range sparseEqWorkers {
		empty := NewBuilder(0, 0).Build()
		if y := empty.ParMulVec(w, nil, nil); len(y) != 0 {
			t.Fatalf("workers=%d: ParMulVec on 0x0 returned %d elems", w, len(y))
		}
		if y := empty.ParMulTVec(w, nil, nil); len(y) != 0 {
			t.Fatalf("workers=%d: ParMulTVec on 0x0 returned %d elems", w, len(y))
		}
		if g := empty.ParGram(w, nil); g.Rows != 0 || g.Cols != 0 {
			t.Fatalf("workers=%d: ParGram on 0x0 returned %dx%d", w, g.Rows, g.Cols)
		}

		b := NewBuilder(4, 3) // rows 0 and 2 empty
		b.Add(1, 1, 2)
		b.Add(3, 0, -1)
		a := b.Build()
		y := a.ParMulVec(w, []float64{1, 10, 100}, nil)
		wantY := []float64{0, 20, 0, -1}
		if i, ok := bitsEqualVec(y, wantY); !ok {
			t.Fatalf("workers=%d: empty-row MulVec[%d] = %v, want %v", w, i, y[i], wantY[i])
		}
		z := a.ParMulTVec(w, []float64{1, 1, 1, 1}, nil)
		wantZ := []float64{-1, 2, 0}
		if j, ok := bitsEqualVec(z, wantZ); !ok {
			t.Fatalf("workers=%d: empty-row MulTVec[%d] = %v, want %v", w, j, z[j], wantZ[j])
		}
	}
}

func BenchmarkParCSRMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(57))
	_, a := randSparseDense(rng, 20000, 5000, 0.01)
	x := make([]float64, a.Cols)
	for j := range x {
		x[j] = rng.NormFloat64()
	}
	dst := make([]float64, a.Rows)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.ParMulVec(w, x, dst)
			}
		})
	}
}
