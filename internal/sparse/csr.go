// Package sparse implements compressed sparse row (CSR) matrices and the
// operations SRDA's iterative path needs: matrix-vector products with A and
// Aᵀ, row access, column statistics, and conversions to and from dense
// form.  A COO (triplet) builder handles incremental construction.
//
// CSR is the layout the paper's complexity analysis assumes: one LSQR
// iteration costs two sparse mat-vecs, O(m·s) with s the average number of
// nonzeros per row, which is what makes SRDA linear-time on text data.
package sparse

import (
	"fmt"
	"sort"

	"srda/internal/mat"
)

// CSR is an immutable m×n sparse matrix in compressed sparse row form.
// Row i occupies ColIdx[RowPtr[i]:RowPtr[i+1]] / Val[RowPtr[i]:RowPtr[i+1]],
// with column indices strictly increasing within a row.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NNZ returns the number of stored entries.
func (a *CSR) NNZ() int { return len(a.Val) }

// AvgRowNNZ returns the average number of stored entries per row — the
// paper's "s" parameter.
func (a *CSR) AvgRowNNZ() float64 {
	if a.Rows == 0 {
		return 0
	}
	return float64(a.NNZ()) / float64(a.Rows)
}

// Density returns nnz / (rows*cols).
func (a *CSR) Density() float64 {
	if a.Rows == 0 || a.Cols == 0 {
		return 0
	}
	return float64(a.NNZ()) / (float64(a.Rows) * float64(a.Cols))
}

// Row returns the column indices and values of row i, sharing storage.
func (a *CSR) Row(i int) (cols []int, vals []float64) {
	if i < 0 || i >= a.Rows {
		panic("sparse: row index out of range")
	}
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColIdx[lo:hi], a.Val[lo:hi]
}

// At returns element (i, j) with a binary search over row i.
func (a *CSR) At(i, j int) float64 {
	if j < 0 || j >= a.Cols {
		panic("sparse: column index out of range")
	}
	cols, vals := a.Row(i)
	k := sort.SearchInts(cols, j)
	if k < len(cols) && cols[k] == j {
		return vals[k]
	}
	return 0
}

// MulVec computes y = A*x, allocating y when dst is nil.
func (a *CSR) MulVec(x, dst []float64) []float64 {
	if len(x) != a.Cols {
		panic("sparse: MulVec length mismatch")
	}
	if dst == nil {
		dst = make([]float64, a.Rows)
	}
	a.mulVecRange(0, a.Rows, x, dst)
	return dst
}

// mulVecRange computes dst[i] = row(i)·x for i in [rlo, rhi).  MulVec is
// mulVecRange over the full row range; ParMulVec shards the same helper
// over disjoint row spans, which is what makes the two bitwise twins.
func (a *CSR) mulVecRange(rlo, rhi int, x, dst []float64) {
	for i := rlo; i < rhi; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		var s float64
		for k := lo; k < hi; k++ {
			s += a.Val[k] * x[a.ColIdx[k]]
		}
		dst[i] = s
	}
}

// MulTVec computes y = Aᵀ*x, allocating y when dst is nil.
func (a *CSR) MulTVec(x, dst []float64) []float64 {
	if len(x) != a.Rows {
		panic("sparse: MulTVec length mismatch")
	}
	if dst == nil {
		dst = make([]float64, a.Cols)
	} else {
		for j := range dst {
			dst[j] = 0
		}
	}
	for i := 0; i < a.Rows; i++ {
		xi := x[i]
		if xi == 0 { //srdalint:ignore floatcmp exact sparsity skip shared with the Par twin
			continue
		}
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			dst[a.ColIdx[k]] += a.Val[k] * xi
		}
	}
	return dst
}

// AddScaledRow accumulates alpha * row i of A into the dense vector dst.
func (a *CSR) AddScaledRow(i int, alpha float64, dst []float64) {
	cols, vals := a.Row(i)
	for k, j := range cols {
		dst[j] += alpha * vals[k]
	}
}

// RowDot returns the inner product of row i with the dense vector x.
func (a *CSR) RowDot(i int, x []float64) float64 {
	cols, vals := a.Row(i)
	var s float64
	for k, j := range cols {
		s += vals[k] * x[j]
	}
	return s
}

// RowNorm2 returns the squared Euclidean norm of row i.
func (a *CSR) RowNorm2(i int) float64 {
	_, vals := a.Row(i)
	var s float64
	for _, v := range vals {
		s += v * v
	}
	return s
}

// ScaleRow multiplies row i by alpha in place.
func (a *CSR) ScaleRow(i int, alpha float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	for k := lo; k < hi; k++ {
		a.Val[k] *= alpha
	}
}

// ColMeans returns the per-column mean (treating missing entries as zero).
func (a *CSR) ColMeans() []float64 {
	mu := make([]float64, a.Cols)
	for k, j := range a.ColIdx {
		mu[j] += a.Val[k]
	}
	if a.Rows > 0 {
		inv := 1 / float64(a.Rows)
		for j := range mu {
			mu[j] *= inv
		}
	}
	return mu
}

// SelectRows returns a new CSR containing the given rows of a, in order.
// Duplicate indices are allowed (bootstrap-style sampling).
func (a *CSR) SelectRows(idx []int) *CSR {
	out := &CSR{Rows: len(idx), Cols: a.Cols, RowPtr: make([]int, len(idx)+1)}
	nnz := 0
	for _, i := range idx {
		if i < 0 || i >= a.Rows {
			panic("sparse: SelectRows index out of range")
		}
		nnz += a.RowPtr[i+1] - a.RowPtr[i]
	}
	out.ColIdx = make([]int, 0, nnz)
	out.Val = make([]float64, 0, nnz)
	for r, i := range idx {
		cols, vals := a.Row(i)
		out.ColIdx = append(out.ColIdx, cols...) //srdalint:ignore hotalloc appends into exactly pre-counted capacity; never reallocates
		out.Val = append(out.Val, vals...)       //srdalint:ignore hotalloc appends into exactly pre-counted capacity; never reallocates
		out.RowPtr[r+1] = len(out.Val)
	}
	return out
}

// ToDense expands a into a dense matrix.
func (a *CSR) ToDense() *mat.Dense {
	d := mat.NewDense(a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		row := d.RowView(i)
		cols, vals := a.Row(i)
		for k, j := range cols {
			row[j] = vals[k]
		}
	}
	return d
}

// FromDense compresses a dense matrix, dropping entries with |v| <= dropTol.
// A counting pass sizes the index and value arrays exactly, so the copy
// pass never reallocates no matter how dense the input turns out to be.
func FromDense(d *mat.Dense, dropTol float64) *CSR {
	a := &CSR{Rows: d.Rows, Cols: d.Cols, RowPtr: make([]int, d.Rows+1)}
	nnz := 0
	for i := 0; i < d.Rows; i++ {
		for _, v := range d.RowView(i) {
			if v > dropTol || v < -dropTol {
				nnz++
			}
		}
	}
	a.ColIdx = make([]int, 0, nnz)
	a.Val = make([]float64, 0, nnz)
	for i := 0; i < d.Rows; i++ {
		row := d.RowView(i)
		for j, v := range row {
			if v > dropTol || v < -dropTol {
				a.ColIdx = append(a.ColIdx, j) //srdalint:ignore hotalloc appends into exactly pre-counted capacity; never reallocates
				a.Val = append(a.Val, v)       //srdalint:ignore hotalloc appends into exactly pre-counted capacity; never reallocates
			}
		}
		a.RowPtr[i+1] = len(a.Val)
	}
	return a
}

// MemoryBytes estimates the resident size of the CSR structure, used by the
// experiment harness to model the paper's 2 GB memory wall.
func (a *CSR) MemoryBytes() int64 {
	return int64(len(a.RowPtr))*8 + int64(len(a.ColIdx))*8 + int64(len(a.Val))*8
}

// String summarizes the matrix shape and sparsity.
func (a *CSR) String() string {
	return fmt.Sprintf("CSR %dx%d nnz=%d (%.4f%%)", a.Rows, a.Cols, a.NNZ(), 100*a.Density())
}

// Builder accumulates COO triplets and compiles them into a CSR matrix.
// Duplicate (i,j) entries are summed at Build time.
type Builder struct {
	rows, cols int
	entries    []entry
}

type entry struct {
	i, j int
	v    float64
}

// NewBuilder creates a builder for an r×c matrix.
func NewBuilder(r, c int) *Builder {
	if r < 0 || c < 0 {
		panic("sparse: negative dimension")
	}
	return &Builder{rows: r, cols: c}
}

// Add accumulates v at (i, j).  Zero values are ignored.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: Add(%d,%d) out of range %dx%d", i, j, b.rows, b.cols))
	}
	if v == 0 { //srdalint:ignore floatcmp exact zeros are dropped from the sparse structure
		return
	}
	b.entries = append(b.entries, entry{i, j, v})
}

// Build compiles the accumulated triplets into a CSR matrix, summing
// duplicates and dropping entries that cancel to exactly zero.
func (b *Builder) Build() *CSR {
	sort.Slice(b.entries, func(p, q int) bool {
		if b.entries[p].i != b.entries[q].i {
			return b.entries[p].i < b.entries[q].i
		}
		return b.entries[p].j < b.entries[q].j
	})
	a := &CSR{Rows: b.rows, Cols: b.cols, RowPtr: make([]int, b.rows+1)}
	for k := 0; k < len(b.entries); {
		e := b.entries[k]
		v := e.v
		k++
		for k < len(b.entries) && b.entries[k].i == e.i && b.entries[k].j == e.j {
			v += b.entries[k].v
			k++
		}
		if v == 0 { //srdalint:ignore floatcmp exact cancellation drops the entry from the sparse structure
			continue
		}
		a.ColIdx = append(a.ColIdx, e.j)
		a.Val = append(a.Val, v)
		a.RowPtr[e.i+1] = len(a.Val)
	}
	// RowPtr so far holds per-row end marks only for rows with entries;
	// forward-fill empties.
	for i := 1; i <= b.rows; i++ {
		if a.RowPtr[i] < a.RowPtr[i-1] {
			a.RowPtr[i] = a.RowPtr[i-1]
		}
	}
	return a
}
