package dataset

import (
	"math"
	"math/rand"
	"sort"

	"srda/internal/mat"
	"srda/internal/sparse"
)

// PIEConfig shapes the face-like generator.  Defaults mirror the paper's
// CMU PIE subset: 68 subjects × 170 images of 32×32 pixels in [0,1].
type PIEConfig struct {
	Classes   int // subjects (default 68)
	PerClass  int // images per subject (default 170)
	Side      int // image side; n = Side² (default 32)
	Seed      int64
	PoseDim   int     // number of shared pose/illumination factors (default 12)
	PoseScale float64 // within-class factor strength (default 0.35)
	Noise     float64 // per-pixel noise std (default 0.08)
}

func (c PIEConfig) withDefaults() PIEConfig {
	if c.Classes == 0 {
		c.Classes = 68
	}
	if c.PerClass == 0 {
		c.PerClass = 170
	}
	if c.Side == 0 {
		c.Side = 32
	}
	if c.PoseDim == 0 {
		c.PoseDim = 12
	}
	if c.PoseScale == 0 { //srdalint:ignore floatcmp zero is the documented unset sentinel for this config field
		c.PoseScale = 0.35
	}
	if c.Noise == 0 { //srdalint:ignore floatcmp zero is the documented unset sentinel for this config field
		c.Noise = 0.08
	}
	return c
}

// PIELike generates a face-recognition-shaped dataset: each class has a
// smooth base "face"; every sample perturbs it along a shared bank of
// smooth pose/illumination fields (strong, correlated within-class
// variation — the regime where discriminant whitening matters and IDR/QR's
// centroid-subspace restriction costs accuracy) plus per-pixel noise.
// Pixel values are clipped to [0,1] like the paper's scaled gray levels.
func PIELike(cfg PIEConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Side * cfg.Side
	m := cfg.Classes * cfg.PerClass

	// Shared pose/illumination basis.
	pose := mat.NewDense(cfg.PoseDim, n)
	for f := 0; f < cfg.PoseDim; f++ {
		smoothImage(rng, cfg.Side, 4, pose.RowView(f))
	}
	// Class base faces.
	base := mat.NewDense(cfg.Classes, n)
	for k := 0; k < cfg.Classes; k++ {
		smoothImage(rng, cfg.Side, 6, base.RowView(k))
		row := base.RowView(k)
		for j := range row {
			row[j] = 0.5 + 0.35*row[j]*3 // spread into [0,1]-ish
		}
	}

	x := mat.NewDense(m, n)
	labels := make([]int, m)
	i := 0
	for k := 0; k < cfg.Classes; k++ {
		for s := 0; s < cfg.PerClass; s++ {
			row := x.RowView(i)
			copy(row, base.RowView(k))
			for f := 0; f < cfg.PoseDim; f++ {
				coeff := cfg.PoseScale * rng.NormFloat64() * 3
				pf := pose.RowView(f)
				for j := range row {
					row[j] += coeff * pf[j]
				}
			}
			for j := range row {
				row[j] += cfg.Noise * rng.NormFloat64()
				if row[j] < 0 {
					row[j] = 0
				} else if row[j] > 1 {
					row[j] = 1
				}
			}
			labels[i] = k
			i++
		}
	}
	return &Dataset{Name: "pie-like", Dense: x, Labels: labels, NumClasses: cfg.Classes}
}

// IsoletConfig shapes the spoken-letter-like generator.  Defaults mirror
// Isolet 1&2 train + 4&5 test merged: 26 letters, 240 utterances each,
// 617 spectral features.
type IsoletConfig struct {
	Classes      int // default 26
	PerClass     int // default 240
	Dim          int // default 617
	Seed         int64
	SpeakerDim   int     // shared speaker-variation factors (default 10)
	SpeakerScale float64 // default 0.3
	Noise        float64 // default 0.05
}

func (c IsoletConfig) withDefaults() IsoletConfig {
	if c.Classes == 0 {
		c.Classes = 26
	}
	if c.PerClass == 0 {
		c.PerClass = 240
	}
	if c.Dim == 0 {
		c.Dim = 617
	}
	if c.SpeakerDim == 0 {
		c.SpeakerDim = 10
	}
	if c.SpeakerScale == 0 { //srdalint:ignore floatcmp zero is the documented unset sentinel for this config field
		c.SpeakerScale = 0.3
	}
	if c.Noise == 0 { //srdalint:ignore floatcmp zero is the documented unset sentinel for this config field
		c.Noise = 0.05
	}
	return c
}

// IsoletLike generates a spoken-letter-shaped dataset: smooth per-class
// spectral prototypes plus shared smooth "speaker" factors and
// neighbor-correlated noise (an AR(1)-style moving blend), in the n < m
// regime of Tables V–VI.
func IsoletLike(cfg IsoletConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Dim
	m := cfg.Classes * cfg.PerClass

	speaker := mat.NewDense(cfg.SpeakerDim, n)
	for f := 0; f < cfg.SpeakerDim; f++ {
		smoothField(rng, n, 5, speaker.RowView(f))
	}
	proto := mat.NewDense(cfg.Classes, n)
	for k := 0; k < cfg.Classes; k++ {
		smoothField(rng, n, 8, proto.RowView(k))
		row := proto.RowView(k)
		for j := range row {
			row[j] *= 3
		}
	}

	x := mat.NewDense(m, n)
	labels := make([]int, m)
	raw := make([]float64, n)
	i := 0
	for k := 0; k < cfg.Classes; k++ {
		for s := 0; s < cfg.PerClass; s++ {
			row := x.RowView(i)
			copy(row, proto.RowView(k))
			for f := 0; f < cfg.SpeakerDim; f++ {
				coeff := cfg.SpeakerScale * rng.NormFloat64() * 3
				sf := speaker.RowView(f)
				for j := range row {
					row[j] += coeff * sf[j]
				}
			}
			// AR(1)-blended noise: neighbor-correlated like real spectra.
			for j := range raw {
				raw[j] = rng.NormFloat64()
			}
			prev := 0.0
			for j := range row {
				prev = 0.7*prev + raw[j]
				row[j] += cfg.Noise * prev
			}
			labels[i] = k
			i++
		}
	}
	return &Dataset{Name: "isolet-like", Dense: x, Labels: labels, NumClasses: cfg.Classes}
}

// MNISTConfig shapes the digit-like generator.  Defaults mirror the
// paper's subset: 10 digits, ~400 images each (train+test pools),
// 28×28 pixels.
type MNISTConfig struct {
	Classes     int // default 10
	PerClass    int // default 400
	Side        int // default 28
	Seed        int64
	DeformDim   int     // shared deformation fields (default 8)
	DeformScale float64 // default 0.9
	Noise       float64 // default 0.3
	// ProtoMix blends every class prototype toward a shared stroke
	// template (0 = fully distinct classes, 1 = identical).  Handwritten
	// digits overlap heavily — a 7 and a 1 share most of their ink — and
	// this knob reproduces the error floor of Table VII.  Default 0.65.
	ProtoMix float64
}

func (c MNISTConfig) withDefaults() MNISTConfig {
	if c.Classes == 0 {
		c.Classes = 10
	}
	if c.PerClass == 0 {
		c.PerClass = 400
	}
	if c.Side == 0 {
		c.Side = 28
	}
	if c.DeformDim == 0 {
		c.DeformDim = 8
	}
	if c.DeformScale == 0 { //srdalint:ignore floatcmp zero is the documented unset sentinel for this config field
		c.DeformScale = 0.9
	}
	if c.Noise == 0 { //srdalint:ignore floatcmp zero is the documented unset sentinel for this config field
		c.Noise = 0.3
	}
	if c.ProtoMix == 0 { //srdalint:ignore floatcmp zero is the documented unset sentinel for this config field
		c.ProtoMix = 0.65
	}
	return c
}

// MNISTLike generates a handwritten-digit-shaped dataset: per-class
// stroke-like prototypes deformed along shared smooth fields, plus salt
// noise.  It keeps the small-sample regime where the paper observes plain
// LDA's instability (Table VII: error spikes near m ≈ n).
func MNISTLike(cfg MNISTConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Side * cfg.Side
	m := cfg.Classes * cfg.PerClass

	deform := mat.NewDense(cfg.DeformDim, n)
	for f := 0; f < cfg.DeformDim; f++ {
		smoothImage(rng, cfg.Side, 3, deform.RowView(f))
	}
	// Shared stroke template the class prototypes are blended toward.
	shared := make([]float64, n)
	smoothImage(rng, cfg.Side, 5, shared)
	proto := mat.NewDense(cfg.Classes, n)
	for k := 0; k < cfg.Classes; k++ {
		smoothImage(rng, cfg.Side, 5, proto.RowView(k))
		row := proto.RowView(k)
		// blend toward the shared template, then sparsify into
		// stroke-like positive patterns
		for j := range row {
			v := (cfg.ProtoMix*shared[j] + (1-cfg.ProtoMix)*row[j]) * 3
			if v < 0.3 {
				v = 0
			}
			row[j] = math.Min(v, 1)
		}
	}

	x := mat.NewDense(m, n)
	labels := make([]int, m)
	i := 0
	for k := 0; k < cfg.Classes; k++ {
		for s := 0; s < cfg.PerClass; s++ {
			row := x.RowView(i)
			copy(row, proto.RowView(k))
			for f := 0; f < cfg.DeformDim; f++ {
				coeff := cfg.DeformScale * rng.NormFloat64()
				df := deform.RowView(f)
				for j := range row {
					row[j] += coeff * df[j]
				}
			}
			for j := range row {
				row[j] += cfg.Noise * rng.NormFloat64()
				if row[j] < 0 {
					row[j] = 0
				} else if row[j] > 1 {
					row[j] = 1
				}
			}
			labels[i] = k
			i++
		}
	}
	return &Dataset{Name: "mnist-like", Dense: x, Labels: labels, NumClasses: cfg.Classes}
}

// NewsConfig shapes the sparse text generator.  Defaults mirror the
// "bydate" 20Newsgroups corpus: 18941 documents, 26214 terms, 20 groups.
type NewsConfig struct {
	Classes    int // default 20
	Docs       int // total documents (default 18941)
	Vocab      int // default 26214
	Seed       int64
	AvgLen     int     // average tokens per document (default 90)
	TopicWords int     // class-specific vocabulary size (default Vocab/10)
	TopicBoost float64 // how much topic words dominate (default 10)
}

func (c NewsConfig) withDefaults() NewsConfig {
	if c.Classes == 0 {
		c.Classes = 20
	}
	if c.Docs == 0 {
		c.Docs = 18941
	}
	if c.Vocab == 0 {
		c.Vocab = 26214
	}
	if c.AvgLen == 0 {
		c.AvgLen = 90
	}
	if c.TopicWords == 0 {
		c.TopicWords = c.Vocab / 10
	}
	if c.TopicBoost == 0 { //srdalint:ignore floatcmp zero is the documented unset sentinel for this config field
		c.TopicBoost = 10
	}
	return c
}

// NewsLike generates a 20Newsgroups-shaped sparse corpus: a Zipfian
// background vocabulary shared by everyone plus a boosted class-specific
// topic vocabulary; documents are bags of words with geometric-ish length
// spread, represented as L2-normalized term-frequency CSR rows exactly as
// the paper preprocesses 20Newsgroups.
func NewsLike(cfg NewsConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Background Zipf weights over the vocabulary.
	bg := make([]float64, cfg.Vocab)
	var bgSum float64
	for w := range bg {
		bg[w] = 1 / math.Pow(float64(w+1), 1.05)
		bgSum += bg[w]
	}

	// Per-class topic-word weight vectors (sparse): topic words are drawn
	// from mid-frequency ranks so the head stopwords stay shared.  The
	// per-document sampling distribution is background + strength·topic,
	// where strength varies per document (below) — real newsgroup posts
	// range from strongly on-topic to chit-chat, which is what gives the
	// paper's Table IX its irreducible error floor.
	type topicEntry struct {
		w int
		v float64
	}
	topics := make([][]topicEntry, cfg.Classes)
	// Topic words start past the head of the Zipf curve (stopwords), but
	// never past half the vocabulary for tiny test-sized corpora.
	topicStart := 100
	if topicStart > cfg.Vocab/2 {
		topicStart = cfg.Vocab / 2
	}
	for k := 0; k < cfg.Classes; k++ {
		seen := map[int]bool{}
		for t := 0; t < cfg.TopicWords; t++ {
			w := topicStart + rng.Intn(cfg.Vocab-topicStart)
			if seen[w] {
				continue
			}
			seen[w] = true
			topics[k] = append(topics[k], topicEntry{
				w: w,
				v: cfg.TopicBoost * bgSum / float64(cfg.TopicWords) * rng.Float64(),
			})
		}
	}
	// Background cumulative distribution, shared by all classes.
	bgCum := make([]float64, cfg.Vocab)
	{
		var run float64
		for w, v := range bg {
			run += v
			bgCum[w] = run
		}
	}

	labels := make([]int, cfg.Docs)
	bld := sparse.NewBuilder(cfg.Docs, cfg.Vocab)
	counts := map[int]float64{}
	for i := 0; i < cfg.Docs; i++ {
		k := i % cfg.Classes // evenly distributed, like "bydate"
		labels[i] = k
		// Document length: lognormal-ish around AvgLen.
		length := int(float64(cfg.AvgLen) * math.Exp(0.5*rng.NormFloat64()-0.125))
		if length < 5 {
			length = 5
		}
		// Per-document topic strength: squaring the uniform draw skews the
		// corpus toward weakly-topical posts, which no classifier can pin
		// down — the irreducible error floor of Table IX.
		strength := rng.Float64()
		strength *= strength
		// Topic mass and cumulative weights for this document.
		var topicMass float64
		for _, e := range topics[k] {
			topicMass += e.v
		}
		topicMass *= strength
		total := bgSum + topicMass
		for key := range counts {
			delete(counts, key)
		}
		for t := 0; t < length; t++ {
			u := rng.Float64() * total
			var w int
			if u < bgSum {
				w = sort.SearchFloat64s(bgCum, u)
			} else {
				// walk the (short) topic list
				u -= bgSum
				for _, e := range topics[k] {
					u -= e.v * strength
					if u <= 0 {
						w = e.w
						break
					}
					w = e.w
				}
			}
			if w >= cfg.Vocab {
				w = cfg.Vocab - 1
			}
			counts[w]++
		}
		// L2-normalize term frequencies.
		var ss float64
		for _, v := range counts {
			ss += v * v
		}
		inv := 1 / math.Sqrt(ss)
		for w, v := range counts {
			bld.Add(i, w, v*inv)
		}
	}
	// Shuffle document order so class blocks are interleaved.
	perm := rng.Perm(cfg.Docs)
	ds := &Dataset{Name: "news-like", Labels: labels, NumClasses: cfg.Classes, Sparse: bld.Build()}
	return ds.Subset(perm)
}
