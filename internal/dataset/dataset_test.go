package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"srda/internal/mat"
)

func smallPIE() *Dataset {
	return PIELike(PIEConfig{Classes: 6, PerClass: 20, Side: 12, Seed: 42})
}

func TestPIELikeShape(t *testing.T) {
	d := smallPIE()
	if d.NumSamples() != 120 || d.NumFeatures() != 144 || d.NumClasses != 6 {
		t.Fatalf("shape %dx%d c=%d", d.NumSamples(), d.NumFeatures(), d.NumClasses)
	}
	if d.IsSparse() {
		t.Fatal("PIE-like must be dense")
	}
	// pixel range [0,1]
	for _, v := range d.Dense.Data {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v outside [0,1]", v)
		}
	}
	counts := d.ClassCounts()
	for k, c := range counts {
		if c != 20 {
			t.Fatalf("class %d has %d samples", k, c)
		}
	}
}

func TestGeneratorsDeterministicBySeed(t *testing.T) {
	a := PIELike(PIEConfig{Classes: 3, PerClass: 5, Side: 8, Seed: 7})
	b := PIELike(PIEConfig{Classes: 3, PerClass: 5, Side: 8, Seed: 7})
	if !mat.Equalish(a.Dense, b.Dense, 0) {
		t.Fatal("same seed must give identical data")
	}
	c := PIELike(PIEConfig{Classes: 3, PerClass: 5, Side: 8, Seed: 8})
	if mat.Equalish(a.Dense, c.Dense, 0) {
		t.Fatal("different seeds must differ")
	}
}

func TestIsoletLikeShape(t *testing.T) {
	d := IsoletLike(IsoletConfig{Classes: 5, PerClass: 12, Dim: 50, Seed: 1})
	if d.NumSamples() != 60 || d.NumFeatures() != 50 {
		t.Fatalf("shape %dx%d", d.NumSamples(), d.NumFeatures())
	}
}

func TestMNISTLikeShape(t *testing.T) {
	d := MNISTLike(MNISTConfig{Classes: 4, PerClass: 10, Side: 10, Seed: 1})
	if d.NumSamples() != 40 || d.NumFeatures() != 100 {
		t.Fatalf("shape %dx%d", d.NumSamples(), d.NumFeatures())
	}
	for _, v := range d.Dense.Data {
		if v < 0 || v > 1 {
			t.Fatalf("pixel %v outside [0,1]", v)
		}
	}
}

func TestNewsLikeSparseShape(t *testing.T) {
	d := NewsLike(NewsConfig{Classes: 4, Docs: 200, Vocab: 3000, AvgLen: 40, Seed: 1})
	if !d.IsSparse() {
		t.Fatal("news-like must be sparse")
	}
	if d.NumSamples() != 200 || d.NumFeatures() != 3000 {
		t.Fatalf("shape %dx%d", d.NumSamples(), d.NumFeatures())
	}
	// rows are L2-normalized
	for i := 0; i < d.NumSamples(); i++ {
		if nrm := d.Sparse.RowNorm2(i); math.Abs(nrm-1) > 1e-9 {
			t.Fatalf("row %d norm² = %v", i, nrm)
		}
	}
	// sparsity: far fewer nonzeros than vocab
	if s := d.AvgNNZ(); s <= 0 || s > 80 {
		t.Fatalf("avg nnz %v implausible for AvgLen=40", s)
	}
}

func TestNewsLikeClassesAreDistinguishable(t *testing.T) {
	// Same-class documents must be more similar (cosine) than cross-class
	// on average — otherwise the topic structure is broken.
	d := NewsLike(NewsConfig{Classes: 3, Docs: 120, Vocab: 2000, AvgLen: 60, Seed: 2})
	dense := d.DenseView()
	var same, cross float64
	var nSame, nCross int
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			var dot float64
			ri, rj := dense.RowView(i), dense.RowView(j)
			for k := range ri {
				dot += ri[k] * rj[k]
			}
			if d.Labels[i] == d.Labels[j] {
				same += dot
				nSame++
			} else {
				cross += dot
				nCross++
			}
		}
	}
	if same/float64(nSame) <= cross/float64(nCross) {
		t.Fatalf("same-class cosine %.4f not above cross-class %.4f",
			same/float64(nSame), cross/float64(nCross))
	}
}

func TestSubsetPreservesRows(t *testing.T) {
	d := smallPIE()
	idx := []int{5, 0, 40}
	s := d.Subset(idx)
	if s.NumSamples() != 3 {
		t.Fatalf("subset size %d", s.NumSamples())
	}
	for r, i := range idx {
		if s.Labels[r] != d.Labels[i] {
			t.Fatal("label mismatch")
		}
		for j := 0; j < d.NumFeatures(); j++ {
			if s.Dense.At(r, j) != d.Dense.At(i, j) {
				t.Fatal("row content mismatch")
			}
		}
	}
}

func TestSplitPerClass(t *testing.T) {
	d := smallPIE()
	rng := rand.New(rand.NewSource(3))
	train, test, err := d.SplitPerClass(rng, 7)
	if err != nil {
		t.Fatal(err)
	}
	if train.NumSamples() != 6*7 {
		t.Fatalf("train size %d", train.NumSamples())
	}
	if test.NumSamples() != 6*13 {
		t.Fatalf("test size %d", test.NumSamples())
	}
	for k, c := range train.ClassCounts() {
		if c != 7 {
			t.Fatalf("train class %d has %d", k, c)
		}
	}
	// too-large request errors
	if _, _, err := d.SplitPerClass(rng, 20); err == nil {
		t.Fatal("oversized split accepted")
	}
}

func TestSplitFraction(t *testing.T) {
	d := NewsLike(NewsConfig{Classes: 4, Docs: 100, Vocab: 500, AvgLen: 20, Seed: 4})
	rng := rand.New(rand.NewSource(5))
	train, test, err := d.SplitFraction(rng, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got := train.NumSamples(); got != 20 {
		t.Fatalf("train %d want 20", got)
	}
	if train.NumSamples()+test.NumSamples() != 100 {
		t.Fatal("split loses samples")
	}
	for _, bad := range []float64{0, 1, -0.5, 0.999} {
		if _, _, err := d.SplitFraction(rng, bad); err == nil {
			t.Fatalf("fraction %v accepted", bad)
		}
	}
}

func TestSplitsAreDisjointAndExhaustive(t *testing.T) {
	d := smallPIE()
	rng := rand.New(rand.NewSource(6))
	train, test, err := d.SplitPerClass(rng, 5)
	if err != nil {
		t.Fatal(err)
	}
	// fingerprint rows by content hash to check disjointness
	seen := map[string]int{}
	key := func(ds *Dataset, i int) string {
		row := ds.Dense.RowView(i)
		b := make([]byte, 0, 64)
		for j := 0; j < 8; j++ {
			b = append(b, byte(int(row[j]*255)))
		}
		return string(b)
	}
	for i := 0; i < train.NumSamples(); i++ {
		seen[key(train, i)]++
	}
	overlap := 0
	for i := 0; i < test.NumSamples(); i++ {
		if seen[key(test, i)] > 0 {
			overlap++
		}
	}
	// hash collisions possible but rare; require near-zero overlap
	if overlap > 2 {
		t.Fatalf("train/test overlap %d rows", overlap)
	}
	if train.NumSamples()+test.NumSamples() != d.NumSamples() {
		t.Fatal("split not exhaustive")
	}
}

func TestDescribe(t *testing.T) {
	d := NewsLike(NewsConfig{Classes: 2, Docs: 40, Vocab: 300, AvgLen: 15, Seed: 7})
	s := d.Describe()
	if s.Size != 40 || s.Dim != 300 || s.Classes != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.SparseRatio <= 0 || s.SparseRatio >= 0.5 {
		t.Fatalf("sparse ratio %v", s.SparseRatio)
	}
	d2 := smallPIE()
	if d2.Describe().SparseRatio != 1 {
		t.Fatal("dense data should report ratio 1")
	}
}

func TestLibSVMRoundTrip(t *testing.T) {
	d := NewsLike(NewsConfig{Classes: 3, Docs: 30, Vocab: 200, AvgLen: 10, Seed: 8})
	var buf bytes.Buffer
	if err := d.WriteLibSVM(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLibSVM(&buf, 200)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSamples() != 30 || back.NumClasses != 3 {
		t.Fatalf("round trip shape %d/%d", back.NumSamples(), back.NumClasses)
	}
	a, b := d.DenseView(), back.DenseView()
	if diff := mat.MaxAbsDiff(a, b); diff > 1e-7 {
		t.Fatalf("round trip differs by %v", diff)
	}
	for i := range d.Labels {
		if d.Labels[i] != back.Labels[i] {
			t.Fatal("labels differ after round trip")
		}
	}
}

func TestLibSVMDenseWrite(t *testing.T) {
	d := &Dataset{
		Name:       "tiny",
		Dense:      mat.FromRows([][]float64{{1, 0, 2}, {0, 0, 0.5}}),
		Labels:     []int{0, 1},
		NumClasses: 2,
	}
	var buf bytes.Buffer
	if err := d.WriteLibSVM(&buf); err != nil {
		t.Fatal(err)
	}
	want := "0 1:1 3:2\n1 3:0.5\n"
	if buf.String() != want {
		t.Fatalf("got %q want %q", buf.String(), want)
	}
}

func TestReadLibSVMErrors(t *testing.T) {
	for _, bad := range []string{
		"x 1:2\n",      // bad label
		"-1 1:2\n",     // negative label
		"0 12\n",       // missing colon
		"0 0:1\n",      // 0-based index
		"0 1:notnum\n", // bad value
	} {
		if _, err := ReadLibSVM(bytes.NewBufferString(bad), 0); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
	// declared dim too small
	if _, err := ReadLibSVM(bytes.NewBufferString("0 5:1\n"), 3); err == nil {
		t.Fatal("accepted out-of-range feature")
	}
	// comments and blank lines skipped
	ds, err := ReadLibSVM(bytes.NewBufferString("# comment\n\n1 2:0.5\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumSamples() != 1 || ds.NumFeatures() != 2 {
		t.Fatalf("shape %dx%d", ds.NumSamples(), ds.NumFeatures())
	}
}

func TestPIEWithinClassVariationIsCorrelated(t *testing.T) {
	// The pose factors must induce within-class covariance far from
	// spherical: the top within-class variance direction carries much more
	// energy than the median.  (This is what separates the generator from
	// plain blobs and lets RLDA/SRDA beat IDR/QR as in the paper.)
	d := PIELike(PIEConfig{Classes: 2, PerClass: 60, Side: 10, Seed: 9})
	x := d.Dense
	// class 0 rows
	var rows [][]float64
	for i, lab := range d.Labels {
		if lab == 0 {
			rows = append(rows, x.RowView(i))
		}
	}
	sub := mat.FromRows(rows)
	sub.CenterRows()
	g := mat.Gram(sub)
	// power iteration for top eigenvalue
	v := make([]float64, g.Cols)
	for i := range v {
		v[i] = 1
	}
	var top float64
	for it := 0; it < 50; it++ {
		w := g.MulVec(v, nil)
		var nrm float64
		for _, u := range w {
			nrm += u * u
		}
		nrm = math.Sqrt(nrm)
		for i := range w {
			v[i] = w[i] / nrm
		}
		top = nrm
	}
	var trace float64
	for i := 0; i < g.Rows; i++ {
		trace += g.At(i, i)
	}
	avg := trace / float64(g.Rows)
	if top < 10*avg {
		t.Fatalf("within-class covariance too spherical: top %v vs avg %v", top, avg)
	}
}

func TestAlignFeatures(t *testing.T) {
	d := NewsLike(NewsConfig{Classes: 2, Docs: 20, Vocab: 100, AvgLen: 10, Seed: 9})
	wider := d.AlignFeatures(150)
	if wider.NumFeatures() != 150 || wider.Sparse.NNZ() != d.Sparse.NNZ() {
		t.Fatalf("pad: n=%d nnz=%d", wider.NumFeatures(), wider.Sparse.NNZ())
	}
	narrower := d.AlignFeatures(50)
	if narrower.NumFeatures() != 50 {
		t.Fatalf("trim: n=%d", narrower.NumFeatures())
	}
	for i := 0; i < narrower.NumSamples(); i++ {
		cols, _ := narrower.Sparse.Row(i)
		for _, j := range cols {
			if j >= 50 {
				t.Fatal("trim left out-of-range column")
			}
		}
	}
	if d.AlignFeatures(d.NumFeatures()) != d {
		t.Fatal("no-op align should return receiver")
	}
	// dense path
	dd := d.ToDense()
	if got := dd.AlignFeatures(130); got.NumFeatures() != 130 || got.Dense.At(0, 120) != 0 {
		t.Fatal("dense pad failed")
	}
}

func FuzzReadLibSVM(f *testing.F) {
	f.Add("0 1:0.5 3:1\n1 2:2\n")
	f.Add("# comment\n\n2 10:1e-3\n")
	f.Add("0 1:nan\n")
	f.Add("5 1:1 1:2 1:3\n")
	f.Fuzz(func(t *testing.T, input string) {
		// must never panic; on success the dataset must be self-consistent
		ds, err := ReadLibSVM(bytes.NewBufferString(input), 0)
		if err != nil {
			return
		}
		if ds.NumSamples() != len(ds.Labels) {
			t.Fatal("sample/label count mismatch")
		}
		for i := 0; i < ds.NumSamples(); i++ {
			cols, _ := ds.Sparse.Row(i)
			for _, j := range cols {
				if j < 0 || j >= ds.NumFeatures() {
					t.Fatalf("column %d out of range", j)
				}
			}
		}
		for _, y := range ds.Labels {
			if y < 0 || y >= ds.NumClasses {
				t.Fatal("label out of range")
			}
		}
	})
}

func TestCorruptLabels(t *testing.T) {
	d := smallPIE()
	rng := rand.New(rand.NewSource(90))
	noisy, flipped := d.CorruptLabels(rng, 0.3)
	if noisy.NumSamples() != d.NumSamples() {
		t.Fatal("size changed")
	}
	nFlipped := 0
	for i := range flipped {
		if flipped[i] {
			nFlipped++
			if noisy.Labels[i] == d.Labels[i] {
				t.Fatal("flipped label equals original")
			}
			if noisy.Labels[i] < 0 || noisy.Labels[i] >= d.NumClasses {
				t.Fatal("flipped label out of range")
			}
		} else if noisy.Labels[i] != d.Labels[i] {
			t.Fatal("unflipped label changed")
		}
	}
	frac := float64(nFlipped) / float64(d.NumSamples())
	if frac < 0.15 || frac > 0.45 {
		t.Fatalf("flip fraction %v far from 0.3", frac)
	}
	// originals untouched; data shared
	if &noisy.Dense.Data[0] != &d.Dense.Data[0] {
		t.Fatal("design matrix should be shared")
	}
	// boundary cases
	clean, f2 := d.CorruptLabels(rng, 0)
	for i := range f2 {
		if f2[i] || clean.Labels[i] != d.Labels[i] {
			t.Fatal("frac=0 must be a no-op")
		}
	}
}
