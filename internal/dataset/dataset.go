// Package dataset provides the labeled datasets the experiments run on.
//
// The paper evaluates on four real corpora (CMU PIE faces, Isolet spoken
// letters, MNIST digits, 20Newsgroups text) that cannot be redistributed
// with this repository.  Each is replaced by a seeded synthetic generator
// that reproduces the *shape* that drives the paper's comparisons: the
// same (m, n, c) and sparsity, a dense low-dimensional class-identity
// structure, correlated within-class variation (pose/illumination/speaker
// factors) that rewards discriminant whitening, and enough per-feature
// noise that unregularized LDA overfits at small training sizes.  See
// DESIGN.md §4 for the substitution rationale.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"srda/internal/mat"
	"srda/internal/sparse"
)

// Dataset is a labeled collection of samples, stored dense or sparse
// (exactly one of Dense/Sparse is non-nil).
type Dataset struct {
	// Name identifies the dataset in reports ("pie-like", ...).
	Name string
	// Dense is the m×n design matrix for dense datasets.
	Dense *mat.Dense
	// Sparse is the CSR design matrix for sparse datasets.
	Sparse *sparse.CSR
	// Labels holds one class id in [0, NumClasses) per sample.
	Labels []int
	// NumClasses is c.
	NumClasses int
}

// NumSamples returns m.
func (d *Dataset) NumSamples() int { return len(d.Labels) }

// NumFeatures returns n.
func (d *Dataset) NumFeatures() int {
	if d.Sparse != nil {
		return d.Sparse.Cols
	}
	return d.Dense.Cols
}

// IsSparse reports whether the design matrix is CSR.
func (d *Dataset) IsSparse() bool { return d.Sparse != nil }

// AvgNNZ returns the average nonzero count per sample — the paper's "s"
// (equal to n for dense data).
func (d *Dataset) AvgNNZ() float64 {
	if d.Sparse != nil {
		return d.Sparse.AvgRowNNZ()
	}
	return float64(d.Dense.Cols)
}

// Subset returns a new dataset with the given sample indices, in order.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{Name: d.Name, NumClasses: d.NumClasses, Labels: make([]int, len(idx))}
	for r, i := range idx {
		out.Labels[r] = d.Labels[i]
	}
	if d.Sparse != nil {
		out.Sparse = d.Sparse.SelectRows(idx)
		return out
	}
	out.Dense = mat.NewDense(len(idx), d.Dense.Cols)
	for r, i := range idx {
		copy(out.Dense.RowView(r), d.Dense.RowView(i))
	}
	return out
}

// SplitPerClass randomly selects perClass training samples from every
// class; the rest become the test set.  This is the protocol of Tables
// III–VIII ("p images per individual randomly selected for training").
func (d *Dataset) SplitPerClass(rng *rand.Rand, perClass int) (train, test *Dataset, err error) {
	byClass := make([][]int, d.NumClasses)
	for i, y := range d.Labels {
		byClass[y] = append(byClass[y], i)
	}
	var trainIdx, testIdx []int
	for k, idx := range byClass {
		if len(idx) <= perClass {
			return nil, nil, fmt.Errorf("dataset: class %d has %d samples, need > %d", k, len(idx), perClass)
		}
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		trainIdx = append(trainIdx, idx[:perClass]...)
		testIdx = append(testIdx, idx[perClass:]...)
	}
	return d.Subset(trainIdx), d.Subset(testIdx), nil
}

// SplitFraction randomly selects ceil(frac·m_k) training samples per class
// — the 20Newsgroups protocol of Table IX ("5%..50% per category").
func (d *Dataset) SplitFraction(rng *rand.Rand, frac float64) (train, test *Dataset, err error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("dataset: fraction %v outside (0,1)", frac)
	}
	byClass := make([][]int, d.NumClasses)
	for i, y := range d.Labels {
		byClass[y] = append(byClass[y], i)
	}
	var trainIdx, testIdx []int
	for k, idx := range byClass {
		take := int(frac*float64(len(idx)) + 0.5)
		if take < 1 {
			take = 1
		}
		if take >= len(idx) {
			return nil, nil, fmt.Errorf("dataset: fraction %v leaves class %d without test samples", frac, k)
		}
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		trainIdx = append(trainIdx, idx[:take]...)
		testIdx = append(testIdx, idx[take:]...)
	}
	return d.Subset(trainIdx), d.Subset(testIdx), nil
}

// Stats summarizes a dataset for Table II.
type Stats struct {
	Name        string
	Size        int     // m
	Dim         int     // n
	Classes     int     // c
	AvgNNZ      float64 // s
	SparseRatio float64 // nnz/(m·n)
}

// Describe computes the dataset statistics row.
func (d *Dataset) Describe() Stats {
	s := Stats{
		Name:    d.Name,
		Size:    d.NumSamples(),
		Dim:     d.NumFeatures(),
		Classes: d.NumClasses,
		AvgNNZ:  d.AvgNNZ(),
	}
	if d.Sparse != nil {
		s.SparseRatio = d.Sparse.Density()
	} else {
		s.SparseRatio = 1
	}
	return s
}

// ClassCounts tallies samples per class.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, d.NumClasses)
	for _, y := range d.Labels {
		counts[y]++
	}
	return counts
}

// smoothField fills a 1-D buffer with a smooth random signal built from a
// few random cosine components — the building block for "image-like" and
// "spectrum-like" features with strong neighbor correlation.
func smoothField(rng *rand.Rand, n, components int, out []float64) {
	for i := range out {
		out[i] = 0
	}
	for comp := 0; comp < components; comp++ {
		freq := 0.5 + 3*rng.Float64()
		phase := 2 * 3.141592653589793 * rng.Float64()
		amp := rng.NormFloat64() / float64(components)
		for i := 0; i < n; i++ {
			out[i] += amp * math.Cos(freq*float64(i)/float64(n)*6.283185307179586+phase)
		}
	}
}

// smoothImage fills a side×side image with a low-frequency random pattern
// (separable cosine mixtures), producing face/digit-like spatial
// correlation.
func smoothImage(rng *rand.Rand, side, components int, out []float64) {
	for i := range out {
		out[i] = 0
	}
	for comp := 0; comp < components; comp++ {
		fx := 0.5 + 2.5*rng.Float64()
		fy := 0.5 + 2.5*rng.Float64()
		px := 6.283185307179586 * rng.Float64()
		py := 6.283185307179586 * rng.Float64()
		amp := rng.NormFloat64() / float64(components)
		for r := 0; r < side; r++ {
			cy := math.Cos(fy*float64(r)/float64(side)*6.283185307179586 + py)
			for cIdx := 0; cIdx < side; cIdx++ {
				cx := math.Cos(fx*float64(cIdx)/float64(side)*6.283185307179586 + px)
				out[r*side+cIdx] += amp * cx * cy
			}
		}
	}
}

// CorruptLabels returns a copy of the dataset with a fraction of labels
// flipped uniformly to a different class — the standard fixture for
// studying regularization's robustness to annotation noise.  The returned
// mask marks which samples were flipped.
func (d *Dataset) CorruptLabels(rng *rand.Rand, frac float64) (*Dataset, []bool) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	out := &Dataset{
		Name:       d.Name,
		Dense:      d.Dense,
		Sparse:     d.Sparse,
		Labels:     append([]int(nil), d.Labels...),
		NumClasses: d.NumClasses,
	}
	flipped := make([]bool, d.NumSamples())
	if d.NumClasses < 2 {
		return out, flipped
	}
	for i := range out.Labels {
		if rng.Float64() >= frac {
			continue
		}
		// uniform over the other classes
		newLabel := rng.Intn(d.NumClasses - 1)
		if newLabel >= out.Labels[i] {
			newLabel++
		}
		out.Labels[i] = newLabel
		flipped[i] = true
	}
	return out, flipped
}
