package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"srda/internal/mat"
	"srda/internal/sparse"
)

// WriteLibSVM serializes the dataset in the standard libsvm/svmlight text
// format: one sample per line, "label idx:value idx:value ..." with
// 1-based feature indices.  Zero entries of dense datasets are omitted.
func (d *Dataset) WriteLibSVM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < d.NumSamples(); i++ {
		if _, err := fmt.Fprintf(bw, "%d", d.Labels[i]); err != nil {
			return err
		}
		if d.Sparse != nil {
			cols, vals := d.Sparse.Row(i)
			for t, j := range cols {
				if _, err := fmt.Fprintf(bw, " %d:%.9g", j+1, vals[t]); err != nil {
					return err
				}
			}
		} else {
			row := d.Dense.RowView(i)
			for j, v := range row {
				if v == 0 { //srdalint:ignore floatcmp exact zeros are the entries the sparse encoding omits
					continue
				}
				if _, err := fmt.Fprintf(bw, " %d:%.9g", j+1, v); err != nil {
					return err
				}
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLibSVM parses a libsvm-format stream into a sparse dataset.
// numFeatures <= 0 infers the dimensionality from the largest index seen;
// labels must be non-negative integers and numClasses is inferred as
// max(label)+1.
func ReadLibSVM(r io.Reader, numFeatures int) (*Dataset, error) {
	type row struct {
		label int
		cols  []int
		vals  []float64
	}
	var rows []row
	maxFeat, maxLabel := 0, 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		label, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad label %q", lineNo, fields[0])
		}
		if label < 0 {
			return nil, fmt.Errorf("dataset: line %d: negative label %d", lineNo, label)
		}
		if label > maxLabel {
			maxLabel = label
		}
		rw := row{label: label}
		for _, f := range fields[1:] {
			colon := strings.IndexByte(f, ':')
			if colon < 0 {
				return nil, fmt.Errorf("dataset: line %d: bad feature %q", lineNo, f)
			}
			idx, err := strconv.Atoi(f[:colon])
			if err != nil || idx < 1 {
				return nil, fmt.Errorf("dataset: line %d: bad feature index %q", lineNo, f[:colon])
			}
			val, err := strconv.ParseFloat(f[colon+1:], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad feature value %q", lineNo, f[colon+1:])
			}
			if idx > maxFeat {
				maxFeat = idx
			}
			rw.cols = append(rw.cols, idx-1)
			rw.vals = append(rw.vals, val)
		}
		rows = append(rows, rw)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if numFeatures <= 0 {
		numFeatures = maxFeat
	} else if maxFeat > numFeatures {
		return nil, fmt.Errorf("dataset: feature index %d exceeds declared dimensionality %d", maxFeat, numFeatures)
	}
	bld := sparse.NewBuilder(len(rows), numFeatures)
	labels := make([]int, len(rows))
	for i, rw := range rows {
		labels[i] = rw.label
		for t, j := range rw.cols {
			bld.Add(i, j, rw.vals[t])
		}
	}
	return &Dataset{
		Name:       "libsvm",
		Sparse:     bld.Build(),
		Labels:     labels,
		NumClasses: maxLabel + 1,
	}, nil
}

// ToDense converts a sparse dataset to dense storage (a no-op copy for
// already-dense data).  This is the memory expansion classical LDA incurs.
func (d *Dataset) ToDense() *Dataset {
	out := &Dataset{Name: d.Name, Labels: append([]int(nil), d.Labels...), NumClasses: d.NumClasses}
	if d.Sparse != nil {
		out.Dense = d.Sparse.ToDense()
	} else {
		out.Dense = d.Dense.Clone()
	}
	return out
}

// DenseView returns the dense design matrix, densifying on demand.
func (d *Dataset) DenseView() *mat.Dense {
	if d.Dense != nil {
		return d.Dense
	}
	return d.Sparse.ToDense()
}

// AlignFeatures returns a dataset whose dimensionality is exactly n:
// columns beyond n are dropped (features unseen at training time carry no
// model weight anyway) and a smaller dimensionality is padded with
// implicit zeros.  Labels are shared with the receiver.
func (d *Dataset) AlignFeatures(n int) *Dataset {
	if d.NumFeatures() == n {
		return d
	}
	out := &Dataset{Name: d.Name, Labels: d.Labels, NumClasses: d.NumClasses}
	if d.Sparse != nil {
		bld := sparse.NewBuilder(d.Sparse.Rows, n)
		for i := 0; i < d.Sparse.Rows; i++ {
			cols, vals := d.Sparse.Row(i)
			for t, j := range cols {
				if j < n {
					bld.Add(i, j, vals[t])
				}
			}
		}
		out.Sparse = bld.Build()
		return out
	}
	out.Dense = mat.NewDense(d.Dense.Rows, n)
	w := n
	if d.Dense.Cols < w {
		w = d.Dense.Cols
	}
	for i := 0; i < d.Dense.Rows; i++ {
		copy(out.Dense.RowView(i), d.Dense.RowView(i)[:w])
	}
	return out
}
