package router

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"srda/internal/obs"
	"srda/internal/serve"
)

// clockBackend answers every predict instantly but advances the router's
// frozen clock by a fixed amount per call, so forward latency is exact.
type clockBackend struct {
	name    string
	now     *time.Time
	advance time.Duration
}

func (b *clockBackend) Name() string { return b.name }

func (b *clockBackend) Predict(context.Context, *serve.PredictRequest) (*serve.PredictResponse, error) {
	*b.now = b.now.Add(b.advance)
	return &serve.PredictResponse{Classes: []int{0}}, nil
}

func (b *clockBackend) Health(context.Context) (*serve.Health, error) {
	return &serve.Health{Status: "ok"}, nil
}

// TestTenantLatencyQuantilesFrozenClock: with the injected clock driving
// both quota refill and forward timing, the per-tenant latency gauge
// families expose exact quantiles (the CKMS sketch is exact at small
// counts), sorted by tenant, with untouched tenants absent.
func TestTenantLatencyQuantilesFrozenClock(t *testing.T) {
	now := time.Unix(1000, 0)
	// One replica owns the whole ring, so both tenants land on it; its
	// advance is overridden per phase below.
	b := &clockBackend{name: "w0", now: &now}
	r, err := New([]Backend{b}, Options{Clock: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// Dyadic latencies render exactly under %g.
	b.advance = 15625 * time.Microsecond // 2^-6 s
	for i := 0; i < 4; i++ {
		if _, err := r.Predict(context.Background(), &serve.PredictRequest{Model: "acme"}); err != nil {
			t.Fatal(err)
		}
	}
	b.advance = 250 * time.Millisecond // 2^-2 s
	for i := 0; i < 4; i++ {
		if _, err := r.Predict(context.Background(), &serve.PredictRequest{Model: "zeta"}); err != nil {
			t.Fatal(err)
		}
	}

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	text := rec.Body.String()
	for _, want := range []string{
		`srdaroute_tenant_latency_p50{tenant="acme"} 0.015625`,
		`srdaroute_tenant_latency_p99{tenant="acme"} 0.015625`,
		`srdaroute_tenant_latency_p50{tenant="zeta"} 0.25`,
		`srdaroute_tenant_latency_p99{tenant="zeta"} 0.25`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Tenant order is sorted: acme's p50 line precedes zeta's.
	if strings.Index(text, `p50{tenant="acme"}`) > strings.Index(text, `p50{tenant="zeta"}`) {
		t.Error("tenant gauge family not sorted by tenant")
	}
	if strings.Contains(text, `tenant="default"`) {
		t.Errorf("untouched default tenant appeared in the gauge family:\n%s", text)
	}
}

// TestRouterTracePropagation: an incoming traceparent header continues
// the caller's trace ("route" is a remote child), the "forward" span
// nests under it, and the typed client re-injects the forward span onto
// the outgoing hop.
func TestRouterTracePropagation(t *testing.T) {
	clock := time.Unix(0, 0)
	tracer := obs.NewTracerSeeded(16, 7, func() time.Time {
		clock = clock.Add(time.Millisecond)
		return clock
	})

	// The downstream "worker" just records the traceparent it received.
	var gotHeader string
	worker := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		gotHeader = req.Header.Get(obs.TraceparentHeader)
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"classes":[0],"model_seq":1}`))
	}))
	defer worker.Close()

	r, err := New([]Backend{&HTTPBackend{ReplicaName: "w0", Client: serve.NewClient(worker.URL)}},
		Options{Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// A remote caller's coordinates: trace 0xabc, parent span 0x17.
	req := httptest.NewRequest(http.MethodPost, "/v1/predict",
		strings.NewReader(`{"samples":[{"dense":[1]}]}`))
	req.Header.Set(obs.TraceparentHeader, "00-00000000000000000000000000000abc-0000000000000017-01")
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("predict status %d: %s", rec.Code, rec.Body.String())
	}

	spans := tracer.Snapshot()
	byName := map[string]obs.SpanRecord{}
	for _, sp := range spans {
		byName[sp.Name] = sp
	}
	route, ok := byName["route"]
	if !ok {
		t.Fatalf("no route span in %v", spans)
	}
	if route.Trace != 0xabc || route.Parent != 0x17 {
		t.Fatalf("route span trace/parent = %x/%x, want abc/17", route.Trace, route.Parent)
	}
	forward, ok := byName["forward"]
	if !ok {
		t.Fatalf("no forward span in %v", spans)
	}
	if forward.Trace != 0xabc || forward.Parent != route.ID {
		t.Fatalf("forward span trace/parent = %x/%x, want abc/%x", forward.Trace, forward.Parent, route.ID)
	}
	// The outgoing hop carried the forward span's coordinates.
	wantHeader := "00-0000000000000000" + "0000000000000abc" + "-"
	if !strings.HasPrefix(gotHeader, wantHeader) {
		t.Fatalf("outgoing traceparent %q does not continue trace abc", gotHeader)
	}
	trace, parent, ok := obs.ExtractTrace(http.Header{obs.TraceparentHeader: []string{gotHeader}})
	if !ok || trace != 0xabc || parent != forward.ID {
		t.Fatalf("outgoing header = %q (trace %x parent %x), want trace abc parent %x",
			gotHeader, trace, parent, forward.ID)
	}
}
