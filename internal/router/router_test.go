package router

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"srda/internal/core"
	"srda/internal/mat"
	"srda/internal/registry"
	"srda/internal/serve"
)

// trainBlobs fits a centroided model on well-separated Gaussian blobs.
func trainBlobs(t *testing.T, n, c int, seed int64) *core.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := 40 * c
	x := mat.NewDense(m, n)
	labels := make([]int, m)
	for i := 0; i < m; i++ {
		labels[i] = i % c
		row := x.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		row[0] += 8 * float64(labels[i])
	}
	model, err := core.FitDense(x, labels, c, core.Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.SetCentroids(model.TransformDense(x), labels); err != nil {
		t.Fatal(err)
	}
	return model
}

func probe(n, class int) []float64 {
	x := make([]float64, n)
	x[0] = 8 * float64(class)
	return x
}

func TestRingDeterministicAndStable(t *testing.T) {
	members := []string{"worker-0", "worker-1", "worker-2"}
	r1 := buildRing(2008, members, 64)
	r2 := buildRing(2008, []string{"worker-2", "worker-0", "worker-1"}, 64)
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("tenant-%d", i)
	}
	owners := make(map[string]string, len(keys))
	hit := make(map[string]int)
	for _, k := range keys {
		owners[k] = r1.lookup(2008, k)
		if owners[k] == "" {
			t.Fatalf("key %s unowned", k)
		}
		if got := r2.lookup(2008, k); got != owners[k] {
			t.Fatalf("member order changed placement of %s: %s vs %s", k, owners[k], got)
		}
		hit[owners[k]]++
	}
	for _, m := range members {
		if hit[m] == 0 {
			t.Fatalf("replica %s owns no keys out of %d", m, len(keys))
		}
	}
	// Removing worker-1 must move only worker-1's keys.
	r3 := buildRing(2008, []string{"worker-0", "worker-2"}, 64)
	for _, k := range keys {
		got := r3.lookup(2008, k)
		if owners[k] != "worker-1" && got != owners[k] {
			t.Fatalf("key %s moved from %s to %s though its owner stayed", k, owners[k], got)
		}
		if owners[k] == "worker-1" && got == "worker-1" {
			t.Fatalf("key %s still routed to removed worker-1", k)
		}
	}
	// A different seed is a different placement function.
	r4 := buildRing(7, members, 64)
	moved := 0
	for _, k := range keys {
		if r4.lookup(7, k) != owners[k] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing the seed moved no keys")
	}
}

func TestQuotaBuckets(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	q := newQuotas(10, 2, clock)
	for i := 0; i < 2; i++ {
		if !q.allow("a") {
			t.Fatalf("request %d within burst denied", i)
		}
	}
	if q.allow("a") {
		t.Fatal("request past burst admitted")
	}
	if !q.allow("b") {
		t.Fatal("fresh tenant shares a's bucket")
	}
	now = now.Add(100 * time.Millisecond) // 10 rps → one token back
	if !q.allow("a") {
		t.Fatal("refilled token denied")
	}
	if q.allow("a") {
		t.Fatal("second request after one-token refill admitted")
	}
	unlimited := newQuotas(0, 0, clock)
	for i := 0; i < 100; i++ {
		if !unlimited.allow("a") {
			t.Fatal("disabled quotas denied a request")
		}
	}
}

// colocated builds the arrangement the sharding tier is designed around:
// one shared registry, nWorkers in-process serve.Servers over it, and a
// router in front.  Tenants tenant-0..tenant-2 are published with
// distinct models.
func colocated(t *testing.T, nWorkers int, opts Options) (*Router, *registry.Registry, []*serve.Server) {
	t.Helper()
	reg := registry.New(registry.Options{})
	for i := 0; i < 3; i++ {
		if _, err := reg.Publish(fmt.Sprintf("tenant-%d", i), trainBlobs(t, 8, 3, int64(50+i))); err != nil {
			t.Fatal(err)
		}
	}
	workers := make([]*serve.Server, nWorkers)
	backends := make([]Backend, nWorkers)
	for i := range workers {
		s, err := serve.New(nil, serve.Options{Registry: reg, MaxWait: 200 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = s.Close(ctx)
		})
		workers[i] = s
		backends[i] = &LocalBackend{ReplicaName: fmt.Sprintf("worker-%d", i), Server: s}
	}
	r, err := New(backends, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, reg, workers
}

// TestColocatedRoutingQuotasAndDrain is the tier's acceptance test: a
// router over two co-located workers serving three tenants.  It pins
// deterministic consistent-hash routing across independently built
// routers, exact per-tenant quota rejection counts, and that draining a
// replica reroutes its tenants without a single failed request.  Run
// under -race via make race.
func TestColocatedRoutingQuotasAndDrain(t *testing.T) {
	now := time.Unix(2000, 0)
	var clockMu sync.Mutex
	clock := func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return now }
	const burst = 4
	opts := Options{QuotaRPS: 100, QuotaBurst: burst, Clock: clock}
	r, _, _ := colocated(t, 2, opts)
	r2, _, _ := colocated(t, 2, opts)

	tenants := []string{"tenant-0", "tenant-1", "tenant-2"}
	owners := make(map[string]string, len(tenants))
	for _, tn := range tenants {
		owners[tn] = r.RouteFor(tn)
		if owners[tn] == "" {
			t.Fatalf("%s unrouted", tn)
		}
		if got := r2.RouteFor(tn); got != owners[tn] {
			t.Fatalf("routing not deterministic: %s → %s vs %s", tn, owners[tn], got)
		}
	}
	distinct := map[string]bool{}
	for _, o := range owners {
		distinct[o] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all three tenants hashed onto one replica: %v", owners)
	}

	// Each tenant fires 3×burst concurrent requests against a frozen
	// clock: exactly burst are admitted, the rest shed with 429.
	const perTenant = 3 * burst
	ctx := context.Background()
	var wg sync.WaitGroup
	type counts struct{ ok, quota, other int }
	got := make([]counts, len(tenants))
	for ti, tn := range tenants {
		for k := 0; k < perTenant; k++ {
			wg.Add(1)
			go func(ti int, tn string, class int) {
				defer wg.Done()
				req := &serve.PredictRequest{
					Model:   tn,
					Samples: []serve.Sample{{Dense: probe(8, class)}},
				}
				resp, err := r.Predict(ctx, req)
				clockMu.Lock()
				defer clockMu.Unlock()
				switch {
				case err == nil && resp.Model == tn && len(resp.Classes) == 1:
					got[ti].ok++
				case errors.Is(err, serve.ErrShed) && serve.StatusCode(err) == http.StatusTooManyRequests:
					got[ti].quota++
				default:
					t.Errorf("%s: unexpected result resp=%v err=%v", tn, resp, err)
					got[ti].other++
				}
			}(ti, tn, k%3)
		}
	}
	wg.Wait()
	for ti, tn := range tenants {
		if got[ti].ok != burst || got[ti].quota != perTenant-burst {
			t.Fatalf("%s: ok=%d quota=%d, want %d/%d", tn, got[ti].ok, got[ti].quota, burst, perTenant-burst)
		}
		if shed := r.mx.shed.Value("quota", tn); shed != int64(perTenant-burst) {
			t.Fatalf("srdaroute_shed_total{quota,%s} = %d, want %d", tn, shed, perTenant-burst)
		}
	}

	// Drain the replica owning tenant-0.  Its tenants rehash onto the
	// survivor; tenants owned elsewhere must not move; no request fails.
	victim := owners["tenant-0"]
	if err := r.Drain(victim); err != nil {
		t.Fatal(err)
	}
	if members := r.Ring(); len(members) != 1 || members[0] == victim {
		t.Fatalf("ring after drain = %v", members)
	}
	for _, tn := range tenants {
		newOwner := r.RouteFor(tn)
		if newOwner == victim {
			t.Fatalf("%s still routed to drained %s", tn, victim)
		}
		if owners[tn] != victim && newOwner != owners[tn] {
			t.Fatalf("%s moved from %s to %s though its owner was not drained",
				tn, owners[tn], newOwner)
		}
	}
	clockMu.Lock()
	now = now.Add(time.Minute) // refill every bucket
	clockMu.Unlock()
	for _, tn := range tenants {
		resp, err := r.Predict(ctx, &serve.PredictRequest{
			Model:   tn,
			Samples: []serve.Sample{{Dense: probe(8, 1)}},
		})
		if err != nil {
			t.Fatalf("%s failed during drain: %v", tn, err)
		}
		if resp.Classes[0] != 1 {
			t.Fatalf("%s predicted class %d, want 1", tn, resp.Classes[0])
		}
	}
	// Undrain restores the original deterministic placement.
	if err := r.Undrain(victim); err != nil {
		t.Fatal(err)
	}
	for _, tn := range tenants {
		if got := r.RouteFor(tn); got != owners[tn] {
			t.Fatalf("%s placement after undrain = %s, want %s", tn, got, owners[tn])
		}
	}
}

func TestUnknownTenantAndShedTyping(t *testing.T) {
	r, _, _ := colocated(t, 2, Options{})
	ctx := context.Background()
	_, err := r.Predict(ctx, &serve.PredictRequest{
		Model:   "tenant-404",
		Samples: []serve.Sample{{Dense: probe(8, 0)}},
	})
	if serve.StatusCode(err) != http.StatusNotFound {
		t.Fatalf("unknown tenant: %v (status %d)", err, serve.StatusCode(err))
	}
	if errors.Is(err, serve.ErrShed) {
		t.Fatal("a 404 must not read as a shed")
	}
	// Drain everything: the ring empties and requests shed as no_backend.
	for _, name := range []string{"worker-0", "worker-1"} {
		if err := r.Drain(name); err != nil {
			t.Fatal(err)
		}
	}
	_, err = r.Predict(ctx, &serve.PredictRequest{
		Model:   "tenant-0",
		Samples: []serve.Sample{{Dense: probe(8, 0)}},
	})
	if !errors.Is(err, serve.ErrShed) || serve.StatusCode(err) != http.StatusServiceUnavailable {
		t.Fatalf("empty ring: %v (status %d)", err, serve.StatusCode(err))
	}
	var st *serve.StatusError
	if !errors.As(err, &st) || st.RetryAfter <= 0 {
		t.Fatalf("shed without Retry-After hint: %v", err)
	}
	if r.mx.shed.Value("no_backend", "tenant-0") != 1 {
		t.Fatal("no_backend shed not counted")
	}
	if r.HealthSnapshot().Status != "degraded" {
		t.Fatal("empty ring reports ok")
	}
}

// failingBackend reports unhealthy after a switch flips, for the
// health-driven membership test.
type failingBackend struct {
	inner Backend
	fail  func() bool
}

func (b *failingBackend) Name() string { return b.inner.Name() }
func (b *failingBackend) Predict(ctx context.Context, req *serve.PredictRequest) (*serve.PredictResponse, error) {
	return b.inner.Predict(ctx, req)
}
func (b *failingBackend) Health(ctx context.Context) (*serve.Health, error) {
	if b.fail() {
		return nil, errors.New("connection refused")
	}
	return b.inner.Health(ctx)
}

func TestHealthDrivenMembership(t *testing.T) {
	reg := registry.New(registry.Options{})
	if _, err := reg.Publish("tenant-0", trainBlobs(t, 8, 3, 60)); err != nil {
		t.Fatal(err)
	}
	var workers []*serve.Server
	var backends []Backend
	var mu sync.Mutex
	failing := false
	for i := 0; i < 2; i++ {
		s, err := serve.New(nil, serve.Options{Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = s.Close(ctx)
		})
		workers = append(workers, s)
		b := Backend(&LocalBackend{ReplicaName: fmt.Sprintf("worker-%d", i), Server: s})
		if i == 0 {
			b = &failingBackend{inner: b, fail: func() bool { mu.Lock(); defer mu.Unlock(); return failing }}
		}
		backends = append(backends, b)
	}
	r, err := New(backends, Options{HealthFailures: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	ctx := context.Background()
	r.CheckHealth(ctx)
	if len(r.Ring()) != 2 {
		t.Fatalf("ring = %v before failures", r.Ring())
	}
	mu.Lock()
	failing = true
	mu.Unlock()
	r.CheckHealth(ctx) // failure 1 of 2: still on the ring
	if len(r.Ring()) != 2 {
		t.Fatal("one failed check removed the replica")
	}
	r.CheckHealth(ctx) // failure 2: off the ring
	if members := r.Ring(); len(members) != 1 || members[0] != "worker-1" {
		t.Fatalf("ring after failures = %v", members)
	}
	// All tenants route to the survivor; predictions still succeed.
	resp, err := r.Predict(ctx, &serve.PredictRequest{
		Model:   "tenant-0",
		Samples: []serve.Sample{{Dense: probe(8, 2)}},
	})
	if err != nil || resp.Classes[0] != 2 {
		t.Fatalf("predict through survivor: resp=%v err=%v", resp, err)
	}
	mu.Lock()
	failing = false
	mu.Unlock()
	r.CheckHealth(ctx) // one success restores membership
	if len(r.Ring()) != 2 {
		t.Fatalf("ring after recovery = %v", r.Ring())
	}
	_ = workers
}

func TestOverloadShedding(t *testing.T) {
	r, _, _ := colocated(t, 1, Options{ShedQueue: 10})
	// Seed the replica's health snapshot with a deep queue.
	r.mu.Lock()
	r.replicas["worker-0"].health = serve.Health{QueueDepth: 11}
	r.mu.Unlock()
	_, err := r.Predict(context.Background(), &serve.PredictRequest{
		Model:   "tenant-0",
		Samples: []serve.Sample{{Dense: probe(8, 0)}},
	})
	if !errors.Is(err, serve.ErrShed) || serve.StatusCode(err) != http.StatusServiceUnavailable {
		t.Fatalf("overloaded replica admitted: %v", err)
	}
	if r.mx.shed.Value("overload", "tenant-0") != 1 {
		t.Fatal("overload shed not counted")
	}
	// A fresh health sweep clears the snapshot and admits again.
	r.CheckHealth(context.Background())
	if _, err := r.Predict(context.Background(), &serve.PredictRequest{
		Model:   "tenant-0",
		Samples: []serve.Sample{{Dense: probe(8, 0)}},
	}); err != nil {
		t.Fatalf("recovered replica still shed: %v", err)
	}
}
