package router

import "srda/internal/obs"

// metrics is the router's instrument set on its own obs registry, kept
// separate from the worker instruments so a co-located process exposes
// both without collisions.  Registration order is exposition order; new
// instruments go at the end.
type metrics struct {
	reg           *obs.Registry
	requests      *obs.CounterVec // replica, code
	shed          *obs.CounterVec // reason, tenant
	backendErrors *obs.CounterVec // replica
	forward       *obs.Histogram  // routed predict seconds, admission → backend reply
}

func newMetrics(ringMembers, healthy func() int64) *metrics {
	reg := obs.NewRegistry()
	mx := &metrics{
		reg: reg,
		requests: reg.NewCounterVec("srdaroute_requests_total",
			"Routed predict requests by backend replica and status code.", "replica", "code"),
		shed: reg.NewCounterVec("srdaroute_shed_total",
			"Requests shed before reaching a backend, by reason (quota, overload, no_backend, draining) and tenant.", "reason", "tenant"),
		backendErrors: reg.NewCounterVec("srdaroute_backend_errors_total",
			"Forwarded requests that failed at the backend, by replica.", "replica"),
		forward: reg.NewHistogram("srdaroute_forward_seconds",
			"Routed predict latency from admission to backend reply.",
			[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}),
	}
	reg.NewGaugeFunc("srdaroute_ring_members",
		"Replicas currently on the hash ring (healthy and not draining).", ringMembers)
	reg.NewGaugeFunc("srdaroute_healthy_replicas",
		"Replicas passing their health checks, including draining ones.", healthy)
	return mx
}

// bindTenantLatency registers the per-tenant forward-latency quantile
// gauge families; separate from newMetrics because the router (which
// owns the sketches) must exist first.
func (m *metrics) bindTenantLatency(r *Router) {
	m.reg.NewGaugeVecFunc("srdaroute_tenant_latency_p50",
		"Streaming median routed-predict latency per tenant in seconds (CKMS sketch).",
		[]string{"tenant"}, func() []obs.GaugeSample { return r.tenantLatencySamples(0.5) })
	m.reg.NewGaugeVecFunc("srdaroute_tenant_latency_p99",
		"Streaming 99th-percentile routed-predict latency per tenant in seconds (CKMS sketch).",
		[]string{"tenant"}, func() []obs.GaugeSample { return r.tenantLatencySamples(0.99) })
}
