package router

// Per-tenant token-bucket quotas.  A tenant is a model name: the router
// charges each predict against the bucket for the model it targets, so
// one tenant saturating its refill rate is shed with 429s while the
// other tenants' buckets — and the workers behind them — stay unharmed.
//
// Buckets use an injectable clock so quota tests are deterministic: a
// fake clock advances time explicitly instead of sleeping through
// refill windows.

import (
	"sync"
	"time"
)

// bucket is one tenant's token bucket.  tokens refill continuously at
// rate per second up to burst; a request costs one token.
type bucket struct {
	tokens float64
	last   time.Time
}

// quotas manages the per-tenant buckets.  Zero rate disables quota
// enforcement entirely (allow always admits).
type quotas struct {
	mu      sync.Mutex
	rate    float64 // tokens per second per tenant
	burst   float64
	clock   func() time.Time
	buckets map[string]*bucket
}

func newQuotas(rate float64, burst int, clock func() time.Time) *quotas {
	if burst <= 0 {
		burst = 1
	}
	if clock == nil {
		clock = time.Now
	}
	return &quotas{
		rate:    rate,
		burst:   float64(burst),
		clock:   clock,
		buckets: make(map[string]*bucket),
	}
}

// allow charges one token against tenant's bucket, reporting whether the
// request is admitted.  New tenants start with a full burst.
func (q *quotas) allow(tenant string) bool {
	if q.rate <= 0 {
		return true
	}
	now := q.clock()
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	} else {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * q.rate
			if b.tokens > q.burst {
				b.tokens = q.burst
			}
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
