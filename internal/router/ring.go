package router

// Consistent-hash ring mapping model names onto worker replicas.  Each
// replica contributes VNodes virtual points hashed from a seeded FNV-1a
// variant, so placement is deterministic for a given (seed, member set):
// every router instance built with the same configuration routes every
// key identically, and tests can pin expected placements.  Removing a
// member (drain, health failure) deletes only its own points — keys that
// hashed elsewhere do not move, which is the property the drain test
// asserts.

import "sort"

// fnvOffset/fnvPrime are the 64-bit FNV-1a constants.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// hashKey folds the ring seed into FNV-1a over s, then finalizes with a
// 64-bit avalanche (the murmur3 fmix64 constants).  Raw FNV-1a barely
// mixes the last bytes, so "worker-0#1".."worker-0#64" would land
// contiguously and one member's run could capture the whole keyspace;
// the finalizer spreads every vnode independently.  Seeding keeps the
// placement function explicit configuration rather than an accident of
// the hash of the day.
func hashKey(seed int64, s string) uint64 {
	h := fnvOffset ^ uint64(seed)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ringPoint is one virtual node: a hash position owned by a replica.
type ringPoint struct {
	hash    uint64
	replica string
}

// ring is an immutable consistent-hash ring.  The router rebuilds it on
// membership changes (publish of a new replica set, drain, health flip)
// and swaps it atomically; lookups are lock-free binary searches.
type ring struct {
	points []ringPoint
}

// buildRing hashes vnodes points per member.  Members may be passed in
// any order; the ring sorts by hash so the result is order-independent.
func buildRing(seed int64, members []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(members)*vnodes)}
	var buf [20]byte
	for _, m := range members {
		for v := 0; v < vnodes; v++ {
			// Append "#<v>" without fmt to keep ring rebuilds cheap.
			b := append(buf[:0], m...)
			b = append(b, '#')
			b = appendUint(b, uint64(v))
			r.points = append(r.points, ringPoint{hash: hashKey(seed, string(b)), replica: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by name so placement stays
		// deterministic regardless of member order.
		return r.points[i].replica < r.points[j].replica
	})
	return r
}

func appendUint(b []byte, v uint64) []byte {
	if v >= 10 {
		b = appendUint(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

// lookup returns the replica owning key: the first point clockwise from
// the key's hash.  Empty rings return "".
func (r *ring) lookup(seed int64, key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hashKey(seed, key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: key hashes past the last point
	}
	return r.points[i].replica
}

// members returns the distinct replicas on the ring, sorted.
func (r *ring) members() []string {
	seen := make(map[string]bool, 8)
	var out []string
	for _, p := range r.points {
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	sort.Strings(out)
	return out
}
