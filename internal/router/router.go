// Package router is the front door of the sharded serving tier: it maps
// model names (tenants) onto worker replicas with a seeded consistent-
// hash ring, meters per-tenant token-bucket quotas, and sheds load when
// a target replica reports overload — queue depth or streaming p99
// latency past threshold, the same signals /metrics exposes.
//
// Replicas are Backends: LocalBackend wraps an in-process *serve.Server
// (co-located mode, the arrangement the race tests drive), HTTPBackend
// wraps a serve.Client for workers in other processes.  Health checks
// run against either transport; a replica failing HealthFailures
// consecutive checks leaves the ring, as does one explicitly put into
// draining.  Because each replica owns only its own ring points, a
// drain moves only the drained replica's tenants — everyone else's
// placement is untouched.
//
// Shed replies are typed: quota breaches are 429, overload and
// no-backend are 503 with Retry-After, both satisfying
// errors.Is(err, serve.ErrShed) so clients can tell policy from
// failure.  See doc/SHARDING.md for the full topology.
package router

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"srda/internal/obs"
	"srda/internal/serve"
)

// Backend is one worker replica as the router sees it.
type Backend interface {
	// Name identifies the replica on the ring and in metrics labels.
	Name() string
	// Predict forwards one request and returns the worker's typed reply.
	Predict(ctx context.Context, req *serve.PredictRequest) (*serve.PredictResponse, error)
	// Health fetches the worker's health snapshot.
	Health(ctx context.Context) (*serve.Health, error)
}

// LocalBackend adapts an in-process *serve.Server: co-located router and
// workers share one address space and skip the network entirely.
type LocalBackend struct {
	ReplicaName string
	Server      *serve.Server
}

func (b *LocalBackend) Name() string { return b.ReplicaName }

func (b *LocalBackend) Predict(ctx context.Context, req *serve.PredictRequest) (*serve.PredictResponse, error) {
	return b.Server.Predict(ctx, req)
}

func (b *LocalBackend) Health(context.Context) (*serve.Health, error) {
	return b.Server.HealthSnapshot(), nil
}

// HTTPBackend adapts a remote worker through the typed client.
type HTTPBackend struct {
	ReplicaName string
	Client      *serve.Client
}

func (b *HTTPBackend) Name() string { return b.ReplicaName }

func (b *HTTPBackend) Predict(ctx context.Context, req *serve.PredictRequest) (*serve.PredictResponse, error) {
	return b.Client.PredictRaw(ctx, req)
}

func (b *HTTPBackend) Health(ctx context.Context) (*serve.Health, error) {
	return b.Client.Health(ctx)
}

// Options tunes a router.  The zero value gets deterministic defaults:
// 64 virtual nodes, ring seed 2008, quotas and overload shedding off.
type Options struct {
	// VNodes is the virtual nodes per replica (default 64); more points
	// smooth the key distribution at the cost of ring size.
	VNodes int
	// Seed fixes the ring's hash placement; routers sharing a seed and
	// replica set route every tenant identically (default 2008).
	Seed int64
	// QuotaRPS is each tenant's sustained requests-per-second budget;
	// 0 disables quota enforcement.
	QuotaRPS float64
	// QuotaBurst is the bucket depth — how far above the sustained rate a
	// tenant may burst (default 1 when quotas are on).
	QuotaBurst int
	// ShedP99 sheds requests for replicas whose reported p99 predict
	// latency exceeds this many seconds (0 disables).  The signal is the
	// worker's srdaserve_request_latency_p99 gauge, read via /healthz.
	ShedP99 float64
	// ShedQueue sheds requests for replicas whose reported queue depth
	// exceeds this (0 disables).
	ShedQueue int
	// HealthInterval runs a background health sweep this often; 0 means
	// no background loop — call CheckHealth explicitly (tests do, for
	// determinism).
	HealthInterval time.Duration
	// HealthFailures is how many consecutive failed checks remove a
	// replica from the ring (default 3).
	HealthFailures int
	// RetryAfterSeconds is the Retry-After hint on 503 sheds (default 1).
	RetryAfterSeconds int
	// Clock overrides time.Now for quota refill — tests advance it
	// explicitly instead of sleeping.
	Clock func() time.Time
	// Logger receives membership changes and shed warnings.  Nil disables
	// logging.
	Logger *obs.Logger
	// Tracer, when non-nil, records the router-side span tree: a "route"
	// root (or remote continuation when the request carries a traceparent
	// header) around admission, and a "forward" child around the backend
	// call.  The forward span rides the context, so the HTTP backend's
	// client stamps it onto the outgoing request and a co-located worker
	// parents its "request" span under it — one TraceID across the tier.
	Tracer *obs.Tracer
	// Flight, when non-nil, is the process flight recorder: shed requests
	// feed its shed-storm trigger.  Nil disables.
	Flight *obs.FlightRecorder
	// Exemplars, when non-nil, links the forward-latency histogram to an
	// exemplar store so routed-latency outliers carry their TraceID.
	Exemplars *obs.ExemplarStore
}

func (o Options) withDefaults() Options {
	if o.VNodes <= 0 {
		o.VNodes = 64
	}
	if o.Seed == 0 {
		o.Seed = 2008
	}
	if o.QuotaBurst <= 0 {
		o.QuotaBurst = 1
	}
	if o.HealthFailures <= 0 {
		o.HealthFailures = 3
	}
	if o.RetryAfterSeconds <= 0 {
		o.RetryAfterSeconds = 1
	}
	return o
}

// replicaState is the router's view of one backend.  All fields are
// guarded by Router.mu; the ring itself is the lock-free fast path.
type replicaState struct {
	backend  Backend
	healthy  bool
	draining bool
	failures int
	health   serve.Health // last successful check's snapshot
}

// Router routes predict requests across worker replicas.  Construct with
// New; it is safe for concurrent use.
type Router struct {
	opts     Options
	mu       sync.RWMutex
	replicas map[string]*replicaState
	ring     atomic.Pointer[ring]
	quotas   *quotas
	mx       *metrics
	mux      *http.ServeMux
	logger   *obs.Logger
	tracer   *obs.Tracer
	stop     chan struct{}
	stopped  atomic.Bool
	wg       sync.WaitGroup
	start    time.Time

	// tenantMu guards tenantLat, the per-tenant forward-latency sketches
	// behind the srdaroute_tenant_latency_{p50,p99} gauge families.
	tenantMu  sync.Mutex
	tenantLat map[string]*obs.QuantileSketch
}

// New builds a router over the given replicas, all initially healthy and
// on the ring.  When opts.HealthInterval > 0 a background sweep keeps
// membership current; otherwise call CheckHealth.
func New(backends []Backend, opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if len(backends) == 0 {
		return nil, fmt.Errorf("router: no backends")
	}
	r := &Router{
		opts:      opts,
		replicas:  make(map[string]*replicaState, len(backends)),
		quotas:    newQuotas(opts.QuotaRPS, opts.QuotaBurst, opts.Clock),
		mux:       http.NewServeMux(),
		logger:    opts.Logger,
		tracer:    opts.Tracer,
		stop:      make(chan struct{}),
		start:     time.Now(),
		tenantLat: make(map[string]*obs.QuantileSketch),
	}
	for _, b := range backends {
		if b.Name() == "" {
			return nil, fmt.Errorf("router: backend with empty name")
		}
		if _, dup := r.replicas[b.Name()]; dup {
			return nil, fmt.Errorf("router: duplicate replica name %q", b.Name())
		}
		r.replicas[b.Name()] = &replicaState{backend: b, healthy: true}
	}
	r.mx = newMetrics(
		func() int64 { return int64(len(r.Ring())) },
		func() int64 { return r.healthyCount() },
	)
	r.mx.bindTenantLatency(r)
	if opts.Exemplars != nil {
		r.mx.forward.AttachExemplars(opts.Exemplars)
	}
	r.mu.Lock()
	r.rebuildRingLocked()
	r.mu.Unlock()
	r.mux.HandleFunc("/v1/predict", r.handlePredict)
	r.mux.HandleFunc("/healthz", r.handleHealthz)
	r.mux.HandleFunc("/metrics", r.handleMetrics)
	if opts.HealthInterval > 0 {
		r.wg.Add(1)
		go r.healthLoop()
	}
	return r, nil
}

// Handler returns the router's HTTP handler (/v1/predict, /healthz,
// /metrics).
func (r *Router) Handler() http.Handler { return r.mux }

// Registry returns the router's metrics registry for debug exposition.
func (r *Router) Registry() *obs.Registry { return r.mx.reg }

// Backends returns the router's backends sorted by replica name —
// drained and unhealthy replicas included, since the telemetry plane
// wants to scrape exactly the replicas the router knows about, not just
// the ones currently taking traffic.
func (r *Router) Backends() []Backend {
	r.mu.RLock()
	out := make([]Backend, 0, len(r.replicas))
	//srdalint:ignore maprange collect-then-sort: the slice is sorted by name below
	for _, st := range r.replicas {
		out = append(out, st.backend)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Tracer returns the router's request tracer (nil when tracing is off);
// shutdown flushes its ring alongside the worker traces.
func (r *Router) Tracer() *obs.Tracer { return r.tracer }

// Close stops the background health loop, if any.
func (r *Router) Close() {
	if r.stopped.CompareAndSwap(false, true) {
		close(r.stop)
		r.wg.Wait()
	}
}

// rebuildRingLocked recomputes the ring from replicas that are healthy
// and not draining.  Caller holds r.mu.
func (r *Router) rebuildRingLocked() {
	var members []string
	//srdalint:ignore maprange collect-then-sort: members are sorted immediately below before the ring is built
	for name, st := range r.replicas {
		if st.healthy && !st.draining {
			members = append(members, name)
		}
	}
	sort.Strings(members)
	r.ring.Store(buildRing(r.opts.Seed, members, r.opts.VNodes))
}

// Ring returns the replicas currently on the ring, sorted.
func (r *Router) Ring() []string { return r.ring.Load().members() }

// RouteFor returns the replica that currently owns tenant, or "" when
// the ring is empty — placement only, no quota or overload checks.
func (r *Router) RouteFor(tenant string) string {
	return r.ring.Load().lookup(r.opts.Seed, tenant)
}

func (r *Router) healthyCount() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var n int64
	//srdalint:ignore maprange order-free count: every entry contributes at most one increment
	for _, st := range r.replicas {
		if st.healthy {
			n++
		}
	}
	return n
}

// Drain removes name from the ring without failing its in-flight work;
// its tenants rehash onto the remaining replicas and nobody else moves.
func (r *Router) Drain(name string) error { return r.setDraining(name, true) }

// Undrain returns a drained replica to the ring.
func (r *Router) Undrain(name string) error { return r.setDraining(name, false) }

func (r *Router) setDraining(name string, draining bool) error {
	r.mu.Lock()
	st := r.replicas[name]
	if st == nil {
		r.mu.Unlock()
		return fmt.Errorf("router: unknown replica %q", name)
	}
	changed := st.draining != draining
	st.draining = draining
	if changed {
		r.rebuildRingLocked()
	}
	r.mu.Unlock()
	if changed {
		r.logger.Info("replica drain state changed", "replica", name, "draining", draining)
	}
	return nil
}

// CheckHealth sweeps every replica's health endpoint once, updating
// overload snapshots and flipping ring membership after HealthFailures
// consecutive failures (one success restores).  The background loop
// calls this on HealthInterval; tests call it directly.
func (r *Router) CheckHealth(ctx context.Context) {
	r.mu.RLock()
	backends := make([]Backend, 0, len(r.replicas))
	//srdalint:ignore maprange probe order is immaterial: each result updates only its own replica's state under the lock below
	for _, st := range r.replicas {
		backends = append(backends, st.backend)
	}
	r.mu.RUnlock()
	type result struct {
		name   string
		health *serve.Health
		err    error
	}
	results := make([]result, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		//srdalint:ignore ctxflow fan-out is bounded by the configured replica set: one probe goroutine per backend, joined by the WaitGroup
		go func(i int, b Backend) {
			defer wg.Done()
			h, err := b.Health(ctx)
			results[i] = result{name: b.Name(), health: h, err: err}
		}(i, b)
	}
	wg.Wait()
	r.mu.Lock()
	changed := false
	for _, res := range results {
		st := r.replicas[res.name]
		if st == nil {
			continue
		}
		if res.err != nil {
			st.failures++
			if st.healthy && st.failures >= r.opts.HealthFailures {
				st.healthy = false
				changed = true
				r.logger.Warn("replica failed health checks, leaving ring",
					"replica", res.name, "failures", st.failures)
			}
			continue
		}
		st.failures = 0
		st.health = *res.health
		if !st.healthy {
			st.healthy = true
			changed = true
			r.logger.Info("replica recovered, rejoining ring", "replica", res.name)
		}
	}
	if changed {
		r.rebuildRingLocked()
	}
	r.mu.Unlock()
}

// healthLoop runs CheckHealth every HealthInterval until Close.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	ticker := time.NewTicker(r.opts.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			//srdalint:ignore ctxflow health probes own their deadline by design: a hung replica must not stall the sweep past one interval
			ctx, cancel := context.WithTimeout(context.Background(), r.opts.HealthInterval)
			r.CheckHealth(ctx)
			cancel()
		case <-r.stop:
			return
		}
	}
}

// shed rejects a request before it reaches a backend, recording the
// reason, feeding the flight recorder's shed-storm trigger, and
// returning the typed error clients see (429 for quota, 503 otherwise —
// both satisfy errors.Is(err, serve.ErrShed)).
func (r *Router) shed(reason, tenant string, trace obs.TraceID, code int, msg string) error {
	r.mx.shed.With(reason, tenant).Inc()
	r.opts.Flight.NoteShed(trace)
	r.logger.Sample("shed_"+reason, time.Second).Warn("request shed",
		"reason", reason, "tenant", tenant)
	return &serve.StatusError{
		Code:       code,
		Message:    msg,
		RetryAfter: time.Duration(r.opts.RetryAfterSeconds) * time.Second,
	}
}

// now reads the injected clock when one is configured (the same clock
// quota refill uses), so tests can pin forward latencies exactly.
func (r *Router) now() time.Time {
	if r.opts.Clock != nil {
		return r.opts.Clock()
	}
	return time.Now()
}

// observeForward feeds one routed-predict latency to the shared forward
// histogram (with its trace, for exemplars) and to the tenant's own
// quantile sketch behind the srdaroute_tenant_latency_* gauge families.
func (r *Router) observeForward(tenant string, sec float64, trace obs.TraceID) {
	r.mx.forward.ObserveTraced(sec, trace)
	r.tenantMu.Lock()
	sk := r.tenantLat[tenant]
	if sk == nil {
		sk = obs.NewQuantileSketch()
		r.tenantLat[tenant] = sk
	}
	r.tenantMu.Unlock()
	sk.Observe(sec)
}

// tenantLatencySamples snapshots every tenant sketch at quantile q,
// sorted by tenant name — the exposition-time sampler behind the
// per-tenant latency gauge families.
func (r *Router) tenantLatencySamples(q float64) []obs.GaugeSample {
	r.tenantMu.Lock()
	names := make([]string, 0, len(r.tenantLat))
	//srdalint:ignore maprange collect-then-sort: names are sorted below before sampling
	for name := range r.tenantLat {
		names = append(names, name)
	}
	sketches := make([]*obs.QuantileSketch, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		sketches = append(sketches, r.tenantLat[name])
	}
	r.tenantMu.Unlock()
	out := make([]obs.GaugeSample, 0, len(names))
	for i, name := range names {
		v := sketches[i].Query(q)
		if math.IsNaN(v) {
			continue
		}
		out = append(out, obs.GaugeSample{Labels: []string{name}, Value: v})
	}
	return out
}

// overloaded reports whether the replica's last health snapshot trips an
// admission threshold.
func (r *Router) overloaded(name string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st := r.replicas[name]
	if st == nil {
		return "", false
	}
	if r.opts.ShedQueue > 0 && st.health.QueueDepth > r.opts.ShedQueue {
		return fmt.Sprintf("replica %s queue depth %d over threshold %d",
			name, st.health.QueueDepth, r.opts.ShedQueue), true
	}
	if r.opts.ShedP99 > 0 && st.health.LatencyP99Seconds > r.opts.ShedP99 {
		return fmt.Sprintf("replica %s p99 latency %.4fs over threshold %.4fs",
			name, st.health.LatencyP99Seconds, r.opts.ShedP99), true
	}
	return "", false
}

// Predict admits, routes, and forwards one request: quota check (429),
// ring lookup (503 when empty), overload check against the target
// replica's reported health (503), then the backend call.  Typed errors
// map to HTTP statuses with serve.StatusCode.
func (r *Router) Predict(ctx context.Context, req *serve.PredictRequest) (*serve.PredictResponse, error) {
	if obs.SpanFromContext(ctx) == nil && r.tracer != nil {
		var root *obs.ReqSpan
		ctx, root = r.tracer.StartRoot(ctx, "route")
		defer root.End()
	}
	trace := obs.SpanFromContext(ctx).TraceID()
	tenant := req.Model
	if tenant == "" {
		tenant = serve.DefaultModelName
	}
	if !r.quotas.allow(tenant) {
		return nil, r.shed("quota", tenant, trace, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q over its request quota", tenant))
	}
	name := r.ring.Load().lookup(r.opts.Seed, tenant)
	if name == "" {
		return nil, r.shed("no_backend", tenant, trace, http.StatusServiceUnavailable,
			"no healthy replica on the ring")
	}
	if msg, over := r.overloaded(name); over {
		return nil, r.shed("overload", tenant, trace, http.StatusServiceUnavailable, msg)
	}
	r.mu.RLock()
	st := r.replicas[name]
	r.mu.RUnlock()
	if st == nil {
		return nil, r.shed("no_backend", tenant, trace, http.StatusServiceUnavailable,
			"replica left the ring mid-route")
	}
	// The "forward" span rides the context into the backend call: the
	// typed HTTP client stamps it onto the outgoing request as a
	// traceparent header, and a co-located worker parents its "request"
	// span under it — either way the worker continues this TraceID.
	fctx, fsp := obs.StartSpan(ctx, "forward")
	begin := r.now()
	resp, err := st.backend.Predict(fctx, req)
	sec := r.now().Sub(begin).Seconds()
	fsp.End()
	r.observeForward(tenant, sec, trace)
	r.mx.requests.With(name, strconv.Itoa(serve.StatusCode(err))).Inc()
	if err != nil {
		r.mx.backendErrors.With(name).Inc()
		return nil, err
	}
	return resp, nil
}

func (r *Router) handlePredict(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var pr serve.PredictRequest
	if err := json.NewDecoder(req.Body).Decode(&pr); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	// Continue the caller's trace when the request carries a traceparent
	// header; otherwise this router is where the trace is born.
	ctx := req.Context()
	var root *obs.ReqSpan
	if trace, parent, ok := obs.ExtractTrace(req.Header); ok {
		ctx, root = r.tracer.StartRemote(ctx, "route", trace, parent)
	} else {
		ctx, root = r.tracer.StartRoot(ctx, "route")
	}
	defer root.End()
	resp, err := r.Predict(ctx, &pr)
	if err != nil {
		code := serve.StatusCode(err)
		if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", strconv.Itoa(r.opts.RetryAfterSeconds))
		}
		writeErr(w, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// RouterHealth is the router's /healthz reply.
type RouterHealth struct {
	Status        string          `json:"status"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	RingMembers   []string        `json:"ring_members"`
	Replicas      []ReplicaHealth `json:"replicas"`
}

// ReplicaHealth is one replica's membership state in the router health
// reply.
type ReplicaHealth struct {
	Name     string `json:"name"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	Failures int    `json:"failures,omitempty"`
}

// HealthSnapshot builds the /healthz reply programmatically.
func (r *Router) HealthSnapshot() *RouterHealth {
	h := &RouterHealth{
		Status:        "ok",
		UptimeSeconds: time.Since(r.start).Seconds(),
		RingMembers:   r.Ring(),
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.replicas))
	//srdalint:ignore maprange collect-then-sort: names are sorted immediately below before the reply is built
	for name := range r.replicas {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		st := r.replicas[name]
		h.Replicas = append(h.Replicas, ReplicaHealth{
			Name: name, Healthy: st.healthy, Draining: st.draining, Failures: st.failures,
		})
	}
	r.mu.RUnlock()
	if len(h.RingMembers) == 0 {
		h.Status = "degraded"
	}
	return h
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, r.HealthSnapshot())
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	w.WriteHeader(http.StatusOK)
	r.mx.reg.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// A failed write means the client hung up; there is nobody to tell.
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
