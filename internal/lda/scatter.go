package lda

import (
	"srda/internal/blas"
	"srda/internal/mat"
)

// Scatters computes the explicit n×n scatter matrices of the labeled data:
// between-class S_b (eq. 2), within-class S_w (eq. 3), and total
// S_t = S_b + S_w.  These are the dense matrices whose eigendecomposition
// classical LDA needs — quadratic memory in n, which is exactly what the
// paper's complexity argument is about.  Provided for validation, small
// problems, and the test suite; the Fit path never materializes them.
func Scatters(x *mat.Dense, labels []int, numClasses int) (sb, sw, st *mat.Dense) {
	m, n := x.Rows, x.Cols
	counts := make([]int, numClasses)
	mu := make([]float64, n)
	centroids := mat.NewDense(numClasses, n)
	for i := 0; i < m; i++ {
		row := x.RowView(i)
		blas.Axpy(1, row, mu)
		blas.Axpy(1, row, centroids.RowView(labels[i]))
		counts[labels[i]]++
	}
	blas.Scal(1/float64(m), mu)
	for k := 0; k < numClasses; k++ {
		if counts[k] > 0 {
			blas.Scal(1/float64(counts[k]), centroids.RowView(k))
		}
	}

	sb = mat.NewDense(n, n)
	diff := make([]float64, n)
	for k := 0; k < numClasses; k++ {
		if counts[k] == 0 {
			continue
		}
		copy(diff, centroids.RowView(k))
		blas.Axpy(-1, mu, diff)
		blas.Ger(n, n, float64(counts[k]), diff, diff, sb.Data, sb.Stride)
	}

	sw = mat.NewDense(n, n)
	for i := 0; i < m; i++ {
		copy(diff, x.RowView(i))
		blas.Axpy(-1, centroids.RowView(labels[i]), diff)
		blas.Ger(n, n, 1, diff, diff, sw.Data, sw.Stride)
	}

	st = sb.Clone()
	st.AddScaled(1, sw)
	return sb, sw, st
}

// FisherRatio evaluates the Rayleigh quotient aᵀS_b a / aᵀS_t a for a
// direction a — the objective of eq. (4).  Returns 0 when the denominator
// vanishes.
func FisherRatio(sb, st *mat.Dense, a []float64) float64 {
	num := blas.Dot(a, sb.MulVec(a, nil))
	den := blas.Dot(a, st.MulVec(a, nil))
	if den == 0 { //srdalint:ignore floatcmp exact zero denominator is the degenerate ratio case
		return 0
	}
	return num / den
}
