package lda

import (
	"fmt"
	"math"

	"srda/internal/blas"
	"srda/internal/decomp"
	"srda/internal/mat"
)

// FitOrthogonal trains Orthogonal LDA (OLDA, Ye 2005): classical (R)LDA
// directions re-orthonormalized by a thin QR so the projection satisfies
// AᵀA = I.  Orthogonal bases distort distances less when the scatter
// estimates are noisy, which makes OLDA a common small-sample variant; it
// shares LDA's O(mnt + t³) training cost.
func FitOrthogonal(x *mat.Dense, labels []int, numClasses int, opt Options) (*Model, error) {
	model, err := Fit(x, labels, numClasses, opt)
	if err != nil {
		return nil, err
	}
	qr := decomp.NewQR(model.A)
	model.A = qr.ThinQ()
	return model, nil
}

// FitNullSpace trains Null-space LDA (NLDA, Chen et al. 2000), the
// small-sample variant that searches within null(S_w): directions that
// zero the within-class scatter while keeping between-class scatter.  In
// the n > m regime this space is nonempty and NLDA separates training
// classes exactly; with m ≥ n + c the null space collapses and NLDA
// degrades — the known limitation, surfaced as an error.
//
// Implementation without dense n×n scatters:
//
//  1. Restrict to range(X̄) via the thin SVD X̄ = UΣVᵀ (null directions
//     orthogonal to all data are useless: they also zero S_b).
//  2. Within that r-dim space, S_w has the basis-coordinates matrix
//     Σ UᵀW_w U Σ... equivalently, compute the within-class centered
//     coordinates Z_w (each sample minus its class mean, projected) and
//     take the null space of Z_wᵀZ_w via the symmetric eigensolver.
//  3. Maximize between-class scatter inside that null space through the
//     c×c eigenproblem, as in classical LDA.
func FitNullSpace(x *mat.Dense, labels []int, numClasses int, opt Options) (*Model, error) {
	m, n := x.Rows, x.Cols
	if m != len(labels) {
		return nil, fmt.Errorf("lda: %d samples but %d labels", m, len(labels))
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("lda: need at least 2 classes")
	}
	counts := make([]int, numClasses)
	for _, y := range labels {
		if y < 0 || y >= numClasses {
			return nil, fmt.Errorf("lda: label %d out of range", y)
		}
		counts[y]++
	}
	for k, cnt := range counts {
		if cnt == 0 {
			return nil, fmt.Errorf("lda: class %d has no samples", k)
		}
	}

	// Step 1: basis of range(X̄).
	xc := x.Clone()
	mu := xc.CenterRows()
	svd, err := decomp.NewSVD(xc, opt.RCond)
	if err != nil {
		return nil, fmt.Errorf("lda: svd: %w", err)
	}
	r := svd.Rank()
	if r == 0 {
		return nil, fmt.Errorf("lda: centered data has rank 0")
	}

	// Coordinates of samples in the range basis: Z = X̄ V (m×r) = UΣ.
	z := svd.U.Clone()
	for j := 0; j < r; j++ {
		s := svd.Sigma[j]
		for i := 0; i < m; i++ {
			z.Set(i, j, z.At(i, j)*s)
		}
	}

	// Within-class centering of Z.
	classMean := mat.NewDense(numClasses, r)
	for i := 0; i < m; i++ {
		blas.Axpy(1, z.RowView(i), classMean.RowView(labels[i]))
	}
	for k := 0; k < numClasses; k++ {
		blas.Scal(1/float64(counts[k]), classMean.RowView(k))
	}
	zw := z.Clone()
	for i := 0; i < m; i++ {
		blas.Axpy(-1, classMean.RowView(labels[i]), zw.RowView(i))
	}

	// Step 2: null space of S_w restricted to the range basis.
	sw := mat.Gram(zw) // r×r
	eig, err := decomp.NewSymEig(sw)
	if err != nil {
		return nil, fmt.Errorf("lda: within-scatter eigen: %w", err)
	}
	tol := 1e-9 * math.Max(eig.Values[0], 1)
	nullStart := r
	for j := 0; j < r; j++ {
		if eig.Values[j] <= tol {
			nullStart = j
			break
		}
	}
	nullDim := r - nullStart
	if nullDim == 0 {
		return nil, fmt.Errorf("lda: within-class scatter has no null space (m=%d too large for n=%d); use RLDA or SRDA", m, n)
	}
	nullBasis := eig.Vectors.Slice(0, r, nullStart, r).Clone() // r×nullDim

	// Step 3: between-class scatter inside the null space, via class
	// means (B = Qᵀ S_b Q assembled from projected weighted class means).
	var grand = make([]float64, r)
	for k := 0; k < numClasses; k++ {
		blas.Axpy(float64(counts[k])/float64(m), classMean.RowView(k), grand)
	}
	proj := mat.NewDense(numClasses, nullDim)
	tmp := make([]float64, r)
	for k := 0; k < numClasses; k++ {
		copy(tmp, classMean.RowView(k))
		blas.Axpy(-1, grand, tmp)
		nullBasis.MulTVec(tmp, proj.RowView(k))
		blas.Scal(math.Sqrt(float64(counts[k])), proj.RowView(k))
	}
	bMat := mat.Gram(proj) // nullDim×nullDim restricted S_b
	eigB, err := decomp.NewSymEig(bMat)
	if err != nil {
		return nil, fmt.Errorf("lda: between-scatter eigen: %w", err)
	}
	maxDirs := numClasses - 1
	dirs := 0
	tolB := 1e-10 * math.Max(eigB.Values[0], 1)
	for dirs < maxDirs && dirs < len(eigB.Values) && eigB.Values[dirs] > tolB {
		dirs++
	}
	if dirs == 0 {
		return nil, fmt.Errorf("lda: no between-class structure in the null space")
	}

	// Map back: null-space directions in range coordinates, then to the
	// original feature space through V.
	inNull := eigB.Vectors.Slice(0, nullDim, 0, dirs).Clone()
	inRange := mat.Mul(nullBasis, inNull) // r×dirs
	a := mat.Mul(svd.V, inRange)          // n×dirs

	return &Model{
		A:           a,
		Mu:          mu,
		Eigenvalues: eigB.Values[:dirs],
		NumClasses:  numClasses,
	}, nil
}

// FitMMC trains the Maximum Margin Criterion variant (Li, Jiang, Zhang —
// NIPS 2003/TNN 2006): maximize tr(Aᵀ(S_b − S_w)A) with AᵀA = I.  The
// difference matrix needs no inversion, so MMC — like NLDA and 2D-LDA —
// sidesteps the singularity problem, at the cost of ignoring the
// within-class metric.  Implemented without n×n scatters: restrict to
// range(X̄) via the thin SVD, form the r×r restricted S_b − S_w, and take
// the top eigenvectors with positive margin.
func FitMMC(x *mat.Dense, labels []int, numClasses int, opt Options) (*Model, error) {
	m := x.Rows
	if m != len(labels) {
		return nil, fmt.Errorf("lda: %d samples but %d labels", m, len(labels))
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("lda: need at least 2 classes")
	}
	counts := make([]int, numClasses)
	for _, y := range labels {
		if y < 0 || y >= numClasses {
			return nil, fmt.Errorf("lda: label %d out of range", y)
		}
		counts[y]++
	}
	for k, cnt := range counts {
		if cnt == 0 {
			return nil, fmt.Errorf("lda: class %d has no samples", k)
		}
	}

	xc := x.Clone()
	mu := xc.CenterRows()
	svd, err := decomp.NewSVD(xc, opt.RCond)
	if err != nil {
		return nil, fmt.Errorf("lda: svd: %w", err)
	}
	r := svd.Rank()
	if r == 0 {
		return nil, fmt.Errorf("lda: centered data has rank 0")
	}
	// Coordinates Z = UΣ; S_t restricted is Σ² (diagonal); S_b restricted
	// from class means of Z; S_w = S_t − S_b, so
	// S_b − S_w = 2·S_b − diag(Σ²).
	z := svd.U.Clone()
	for j := 0; j < r; j++ {
		s := svd.Sigma[j]
		for i := 0; i < m; i++ {
			z.Set(i, j, z.At(i, j)*s)
		}
	}
	classMean := mat.NewDense(numClasses, r)
	for i := 0; i < m; i++ {
		blas.Axpy(1, z.RowView(i), classMean.RowView(labels[i]))
	}
	diffMat := mat.NewDense(r, r)
	for k := 0; k < numClasses; k++ {
		blas.Scal(1/float64(counts[k]), classMean.RowView(k))
		// Z is centered (X̄ has zero column means), so the grand mean of Z
		// is 0 and S_b = Σ m_k μ_k μ_kᵀ.
		blas.Ger(r, r, 2*float64(counts[k]), classMean.RowView(k), classMean.RowView(k), diffMat.Data, diffMat.Stride)
	}
	for j := 0; j < r; j++ {
		diffMat.Set(j, j, diffMat.At(j, j)-svd.Sigma[j]*svd.Sigma[j])
	}
	eig, err := decomp.NewSymEig(diffMat)
	if err != nil {
		return nil, fmt.Errorf("lda: eigen: %w", err)
	}
	maxDirs := numClasses - 1
	dirs := 0
	for dirs < maxDirs && dirs < len(eig.Values) && eig.Values[dirs] > 0 {
		dirs++
	}
	if dirs == 0 {
		return nil, fmt.Errorf("lda: no positive-margin directions")
	}
	a := mat.Mul(svd.V, eig.Vectors.Slice(0, r, 0, dirs).Clone())
	return &Model{A: a, Mu: mu, Eigenvalues: eig.Values[:dirs], NumClasses: numClasses}, nil
}
