package lda

import (
	"fmt"

	"srda/internal/decomp"
	"srda/internal/mat"
)

// Fisherfaces is the classic two-stage PCA+LDA pipeline (Belhumeur,
// Hespanha, Kriegman — TPAMI 1997), the "additional preprocessing step"
// the paper's introduction cites as the standard way to make the scatter
// matrices nonsingular before LDA: project to the top m−c principal
// components, then run LDA in that subspace.  The composite projection
// x ↦ A_ldaᵀ V_pcaᵀ (x − μ) is folded into a single matrix.
type Fisherfaces struct {
	// A is the composite n×d projection.
	A *mat.Dense
	// Mu is the training mean.
	Mu []float64
	// PCADim records how many principal components the first stage kept.
	PCADim int
	// NumClasses is c.
	NumClasses int
}

// FisherfacesOptions configures the pipeline.
type FisherfacesOptions struct {
	// PCADim caps the first-stage dimensionality; 0 uses the classic
	// m − c (which guarantees a nonsingular within-class scatter).
	PCADim int
	// Alpha optionally regularizes the second-stage LDA.
	Alpha float64
}

// FitFisherfaces trains the two-stage pipeline.
func FitFisherfaces(x *mat.Dense, labels []int, numClasses int, opt FisherfacesOptions) (*Fisherfaces, error) {
	m := x.Rows
	if m != len(labels) {
		return nil, fmt.Errorf("lda: %d samples but %d labels", m, len(labels))
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("lda: need at least 2 classes")
	}
	dim := opt.PCADim
	if dim <= 0 {
		dim = m - numClasses
	}
	if dim < numClasses-1 {
		return nil, fmt.Errorf("lda: PCA dimension %d below the %d discriminants needed", dim, numClasses-1)
	}
	pca, err := decomp.NewPCA(x, dim)
	if err != nil {
		return nil, fmt.Errorf("lda: PCA stage: %w", err)
	}
	z := pca.Transform(x)
	inner, err := Fit(z, labels, numClasses, Options{Alpha: opt.Alpha})
	if err != nil {
		return nil, fmt.Errorf("lda: LDA stage: %w", err)
	}
	// Fold the two projections: x ↦ A_innerᵀ·(V_pcaᵀ(x−μ) − μ_inner).
	// pca.Transform already subtracts μ; inner.Transform subtracts its own
	// mean of the projected data, which is 0 because PCA output is
	// centered — fold anyway for exactness.
	a := mat.Mul(pca.Components, inner.A)
	// effective mean: μ_total = μ_pca + V·μ_inner
	mu := append([]float64(nil), pca.Mu...)
	vmu := pca.Components.MulVec(inner.Mu, nil)
	for i := range mu {
		mu[i] += vmu[i]
	}
	return &Fisherfaces{A: a, Mu: mu, PCADim: pca.Dim(), NumClasses: numClasses}, nil
}

// Dim returns the number of discriminant directions.
func (f *Fisherfaces) Dim() int { return f.A.Cols }

// Transform embeds the rows of x.
func (f *Fisherfaces) Transform(x *mat.Dense) *mat.Dense {
	out := mat.Mul(x, f.A)
	shift := f.A.MulTVec(f.Mu, nil)
	for i := 0; i < out.Rows; i++ {
		row := out.RowView(i)
		for j := range row {
			row[j] -= shift[j]
		}
	}
	return out
}

// TransformVec embeds one sample.
func (f *Fisherfaces) TransformVec(x []float64, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, f.Dim())
	}
	centered := make([]float64, len(x))
	for i := range x {
		centered[i] = x[i] - f.Mu[i]
	}
	f.A.MulTVec(centered, dst)
	return dst
}
