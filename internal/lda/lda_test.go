package lda

import (
	"math"
	"math/rand"
	"testing"

	"srda/internal/blas"
	"srda/internal/core"
	"srda/internal/mat"
)

func randLabels(rng *rand.Rand, m, c int) []int {
	labels := make([]int, m)
	for i := range labels {
		labels[i] = i % c
	}
	rng.Shuffle(m, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
	return labels
}

func gaussianBlobs(rng *rand.Rand, m, n, c int, sep float64) (*mat.Dense, []int) {
	x := mat.NewDense(m, n)
	labels := randLabels(rng, m, c)
	for i := 0; i < m; i++ {
		row := x.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		row[0] += sep * float64(labels[i])
		if n > 1 {
			row[1] += sep * 0.5 * float64((labels[i]*7)%c)
		}
	}
	return x, labels
}

func TestScattersIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, labels := gaussianBlobs(rng, 60, 8, 3, 3)
	sb, sw, st := Scatters(x, labels, 3)
	sum := sb.Clone()
	sum.AddScaled(1, sw)
	if d := mat.MaxAbsDiff(sum, st); d > 1e-9 {
		t.Fatalf("S_b + S_w != S_t (diff %v)", d)
	}
	// S_t must equal the Gram matrix of the centered data (eq. after (3)).
	xc := x.Clone()
	xc.CenterRows()
	g := mat.Gram(xc)
	if d := mat.MaxAbsDiff(g, st); d > 1e-8*(1+st.Norm()) {
		t.Fatalf("S_t != X̄ᵀX̄ (diff %v)", d)
	}
}

func TestScattersSymmetricPSD(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, labels := gaussianBlobs(rng, 40, 6, 4, 2)
	sb, sw, _ := Scatters(x, labels, 4)
	for _, s := range []*mat.Dense{sb, sw} {
		for i := 0; i < s.Rows; i++ {
			for j := 0; j < i; j++ {
				if math.Abs(s.At(i, j)-s.At(j, i)) > 1e-10 {
					t.Fatal("scatter not symmetric")
				}
			}
		}
		// PSD spot check via random quadratic forms
		v := make([]float64, s.Cols)
		for trial := 0; trial < 20; trial++ {
			for k := range v {
				v[k] = rng.NormFloat64()
			}
			if q := blas.Dot(v, s.MulVec(v, nil)); q < -1e-8 {
				t.Fatalf("scatter has negative quadratic form %v", q)
			}
		}
	}
}

func TestFitSolvesGeneralizedEigenproblem(t *testing.T) {
	// Every fitted direction must satisfy S_b a = λ S_t a with its
	// recorded eigenvalue λ — the defining property (eq. 5).
	rng := rand.New(rand.NewSource(3))
	x, labels := gaussianBlobs(rng, 120, 10, 4, 4)
	model, err := Fit(x, labels, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if model.Dim() != 3 {
		t.Fatalf("Dim=%d want 3", model.Dim())
	}
	sb, _, st := Scatters(x, labels, 4)
	a := make([]float64, x.Cols)
	for j := 0; j < model.Dim(); j++ {
		model.A.ColCopy(j, a)
		lhs := sb.MulVec(a, nil)
		rhs := st.MulVec(a, nil)
		lam := model.Eigenvalues[j]
		var worst float64
		for i := range lhs {
			if d := math.Abs(lhs[i] - lam*rhs[i]); d > worst {
				worst = d
			}
		}
		if worst > 1e-6*(1+blas.Nrm2(lhs)) {
			t.Fatalf("direction %d violates S_b a = λ S_t a by %v (λ=%v)", j, worst, lam)
		}
	}
}

func TestEigenvaluesSortedInUnitInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, labels := gaussianBlobs(rng, 90, 7, 3, 3)
	model, err := Fit(x, labels, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j, l := range model.Eigenvalues {
		if l < -1e-10 || l > 1+1e-10 {
			t.Fatalf("eigenvalue %d = %v outside [0,1]", j, l)
		}
		if j > 0 && l > model.Eigenvalues[j-1]+1e-12 {
			t.Fatal("eigenvalues not sorted descending")
		}
	}
}

func TestFitMaximizesFisherRatio(t *testing.T) {
	// The first direction's Fisher ratio must beat random directions.
	rng := rand.New(rand.NewSource(5))
	x, labels := gaussianBlobs(rng, 100, 12, 3, 3)
	model, err := Fit(x, labels, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sb, _, st := Scatters(x, labels, 3)
	a0 := model.A.ColCopy(0, nil)
	best := FisherRatio(sb, st, a0)
	if math.Abs(best-model.Eigenvalues[0]) > 1e-8 {
		t.Fatalf("ratio %v != eigenvalue %v", best, model.Eigenvalues[0])
	}
	v := make([]float64, x.Cols)
	for trial := 0; trial < 50; trial++ {
		for k := range v {
			v[k] = rng.NormFloat64()
		}
		if r := FisherRatio(sb, st, v); r > best+1e-9 {
			t.Fatalf("random direction beats LDA: %v > %v", r, best)
		}
	}
}

func TestSingularCaseHandled(t *testing.T) {
	// n > m: scatter matrices are singular; the SVD route must still work.
	rng := rand.New(rand.NewSource(6))
	m, n, c := 25, 60, 3
	x, labels := gaussianBlobs(rng, m, n, c, 5)
	model, err := Fit(x, labels, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	emb := model.Transform(x)
	if emb.Cols != c-1 {
		t.Fatalf("embedding dim %d", emb.Cols)
	}
	for i := range emb.Data {
		if math.IsNaN(emb.Data[i]) || math.IsInf(emb.Data[i], 0) {
			t.Fatal("non-finite embedding in singular case")
		}
	}
}

func TestTransformCentersProperly(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, labels := gaussianBlobs(rng, 50, 6, 2, 4)
	model, err := Fit(x, labels, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	emb := model.Transform(x)
	// Embedded training data must have zero mean (projection of centered).
	for j := 0; j < emb.Cols; j++ {
		var s float64
		for i := 0; i < emb.Rows; i++ {
			s += emb.At(i, j)
		}
		if math.Abs(s/float64(emb.Rows)) > 1e-8 {
			t.Fatalf("embedding mean %v not zero", s/float64(emb.Rows))
		}
	}
	// Vec and matrix paths agree.
	v := model.TransformVec(x.RowView(3), nil)
	for j := range v {
		if math.Abs(v[j]-emb.At(3, j)) > 1e-10 {
			t.Fatal("TransformVec disagrees with Transform")
		}
	}
}

func TestRLDAConvergesToLDA(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, labels := gaussianBlobs(rng, 80, 9, 3, 3)
	plain, err := Fit(x, labels, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := Fit(x, labels, 3, Options{Alpha: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Projection matrices may differ by sign per column; compare spans via
	// embeddings' pairwise distances.
	e1, e2 := plain.Transform(x), reg.Transform(x)
	for trial := 0; trial < 30; trial++ {
		i, p := rng.Intn(x.Rows), rng.Intn(x.Rows)
		d1 := rowDist(e1, i, p)
		d2 := rowDist(e2, i, p)
		if math.Abs(d1-d2) > 1e-5*(1+d1) {
			t.Fatalf("RLDA(α→0) geometry differs from LDA: %v vs %v", d1, d2)
		}
	}
}

func rowDist(e *mat.Dense, i, p int) float64 {
	var d float64
	for j := 0; j < e.Cols; j++ {
		diff := e.At(i, j) - e.At(p, j)
		d += diff * diff
	}
	return math.Sqrt(d)
}

func TestRLDARegularizationShrinksDirections(t *testing.T) {
	// With huge α the whitening term dampens everything; eigenvalues of
	// the regularized problem must decrease monotonically in α.
	rng := rand.New(rand.NewSource(9))
	x, labels := gaussianBlobs(rng, 70, 8, 3, 3)
	var prev = math.Inf(1)
	for _, alpha := range []float64{0, 1, 100, 1e4} {
		model, err := Fit(x, labels, 3, Options{Alpha: alpha})
		if err != nil {
			t.Fatal(err)
		}
		if model.Eigenvalues[0] > prev+1e-12 {
			t.Fatalf("leading eigenvalue grew with alpha: %v -> %v", prev, model.Eigenvalues[0])
		}
		prev = model.Eigenvalues[0]
	}
}

func TestTheorem2SRDADirectionsSolveLDAEigenproblem(t *testing.T) {
	// Paper Theorem 2 / Corollary 3: with linearly independent samples
	// (n > m) and α→0, each SRDA direction is an eigenvector of the LDA
	// generalized eigenproblem S_b a = λ S_t a.
	rng := rand.New(rand.NewSource(10))
	m, n, c := 18, 40, 3
	x := mat.NewDense(m, n)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	labels := randLabels(rng, m, c)
	srda, err := core.FitDense(x, labels, c, core.Options{Alpha: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	sb, _, st := Scatters(x, labels, c)
	a := make([]float64, n)
	for j := 0; j < srda.Dim(); j++ {
		srda.W.ColCopy(j, a)
		sba := sb.MulVec(a, nil)
		sta := st.MulVec(a, nil)
		// Rayleigh quotient as the eigenvalue estimate.
		lam := blas.Dot(a, sba) / blas.Dot(a, sta)
		var worst float64
		for i := range sba {
			if d := math.Abs(sba[i] - lam*sta[i]); d > worst {
				worst = d
			}
		}
		if worst > 1e-6*(1+blas.Nrm2(sba)) {
			t.Fatalf("SRDA direction %d is not an LDA eigenvector (residual %v, λ=%v)", j, worst, lam)
		}
		// In the independent-samples case all discriminative eigenvalues
		// are 1 (training classes collapse to points).
		if math.Abs(lam-1) > 1e-6 {
			t.Fatalf("expected λ=1 for independent samples, got %v", lam)
		}
	}
}

func TestLDAAndSRDAAgreeOnClassification(t *testing.T) {
	// Functional equivalence on a well-posed dense problem (m >> n,
	// clearly separated classes): both methods must make nearly the same
	// nearest-centroid decisions and deliver comparable error rates.
	// The two embeddings share the subspace but differ by an invertible
	// within-subspace map, so decisions can differ on boundary points;
	// with well-separated classes they must agree almost everywhere and
	// deliver the same error rate (the paper's Tables III–IX pattern).
	rng := rand.New(rand.NewSource(11))
	xTrain, yTrain := gaussianBlobs(rng, 200, 20, 4, 8)
	xTest, yTest := gaussianBlobs(rng, 200, 20, 4, 8)

	ldaModel, err := Fit(xTrain, yTrain, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	srdaModel, err := core.FitDense(xTrain, yTrain, 4, core.Options{Alpha: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	p1 := nearestCentroidPredict(ldaModel.Transform(xTrain), yTrain, ldaModel.Transform(xTest), 4)
	p2 := nearestCentroidPredict(srdaModel.TransformDense(xTrain), yTrain, srdaModel.TransformDense(xTest), 4)
	agree, err1, err2 := 0, 0, 0
	for i := range p1 {
		if p1[i] == p2[i] {
			agree++
		}
		if p1[i] != yTest[i] {
			err1++
		}
		if p2[i] != yTest[i] {
			err2++
		}
	}
	n := float64(len(p1))
	if frac := float64(agree) / n; frac < 0.85 {
		t.Fatalf("LDA and SRDA agree on only %.0f%% of test points", 100*frac)
	}
	if gap := math.Abs(float64(err1)-float64(err2)) / n; gap > 0.1 {
		t.Fatalf("error-rate gap %.2f between LDA (%d) and SRDA (%d)", gap, err1, err2)
	}
}

func nearestCentroidPredict(embTrain *mat.Dense, yTrain []int, embTest *mat.Dense, c int) []int {
	d := embTrain.Cols
	cent := mat.NewDense(c, d)
	counts := make([]float64, c)
	for i, lab := range yTrain {
		counts[lab]++
		blas.Axpy(1, embTrain.RowView(i), cent.RowView(lab))
	}
	for k := 0; k < c; k++ {
		blas.Scal(1/counts[k], cent.RowView(k))
	}
	out := make([]int, embTest.Rows)
	for i := 0; i < embTest.Rows; i++ {
		best, bestD := -1, math.Inf(1)
		for k := 0; k < c; k++ {
			var dist float64
			for j := 0; j < d; j++ {
				diff := embTest.At(i, j) - cent.At(k, j)
				dist += diff * diff
			}
			if dist < bestD {
				best, bestD = k, dist
			}
		}
		out[i] = best
	}
	return out
}

func TestFitValidation(t *testing.T) {
	x := mat.NewDense(4, 3)
	if _, err := Fit(x, []int{0, 1}, 2, Options{}); err == nil {
		t.Fatal("label count mismatch accepted")
	}
	if _, err := Fit(x, []int{0, 0, 0, 0}, 2, Options{}); err == nil {
		t.Fatal("empty class accepted")
	}
	if _, err := Fit(x, []int{0, 1, 0, 1}, 1, Options{}); err == nil {
		t.Fatal("single class accepted")
	}
}

func TestFisherfacesMatchesFoldedPipeline(t *testing.T) {
	// The composite projection must equal running PCA then LDA explicitly.
	rng := rand.New(rand.NewSource(30))
	x, labels := gaussianBlobs(rng, 80, 25, 4, 5)
	ff, err := FitFisherfaces(x, labels, 4, FisherfacesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// m−c = 76 exceeds the data rank (n = 25), so PCA clamps to 25
	if ff.PCADim != 25 {
		t.Fatalf("PCADim=%d want rank-clamped 25", ff.PCADim)
	}
	got := ff.Transform(x)
	// explicit two-stage on the same data
	v := ff.TransformVec(x.RowView(5), nil)
	for j := range v {
		if math.Abs(v[j]-got.At(5, j)) > 1e-9 {
			t.Fatal("TransformVec disagrees with Transform")
		}
	}
	// embedding must be centered on training data
	for j := 0; j < got.Cols; j++ {
		var s float64
		for i := 0; i < got.Rows; i++ {
			s += got.At(i, j)
		}
		if math.Abs(s/float64(got.Rows)) > 1e-8 {
			t.Fatalf("embedding mean %v", s/float64(got.Rows))
		}
	}
}

func TestFisherfacesHandlesSingularCase(t *testing.T) {
	// n > m: plain scatter matrices are singular; the PCA stage fixes it.
	rng := rand.New(rand.NewSource(31))
	x, labels := gaussianBlobs(rng, 30, 100, 3, 8)
	ff, err := FitFisherfaces(x, labels, 3, FisherfacesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	emb := ff.Transform(x)
	if emb.Cols != 2 {
		t.Fatalf("dim %d", emb.Cols)
	}
	for _, v := range emb.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite embedding")
		}
	}
}

func TestFisherfacesClassifiesComparablyToLDA(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	xTrain, yTrain := gaussianBlobs(rng, 200, 20, 4, 8)
	xTest, yTest := gaussianBlobs(rng, 150, 20, 4, 8)
	ff, err := FitFisherfaces(xTrain, yTrain, 4, FisherfacesOptions{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	p1 := nearestCentroidPredict(ff.Transform(xTrain), yTrain, ff.Transform(xTest), 4)
	ldaModel, err := Fit(xTrain, yTrain, 4, Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	p2 := nearestCentroidPredict(ldaModel.Transform(xTrain), yTrain, ldaModel.Transform(xTest), 4)
	e1, e2 := errRate(p1, yTest), errRate(p2, yTest)
	if math.Abs(e1-e2) > 0.1 {
		t.Fatalf("Fisherfaces %.3f vs RLDA %.3f: unexpectedly far apart", e1, e2)
	}
}

func errRate(pred, truth []int) float64 {
	wrong := 0
	for i := range pred {
		if pred[i] != truth[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(len(pred))
}

func TestFisherfacesValidation(t *testing.T) {
	x := mat.NewDense(6, 4)
	if _, err := FitFisherfaces(x, []int{0, 1}, 2, FisherfacesOptions{}); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := FitFisherfaces(x, []int{0, 1, 0, 1, 0, 1}, 2, FisherfacesOptions{PCADim: 0}); err != nil {
		// m−c = 4 >= c−1 = 1, should be fine with real data; zero matrix
		// will fail in PCA (rank 0) which is also acceptable
		t.Logf("zero-matrix pipeline failed as expected: %v", err)
	}
	rng := rand.New(rand.NewSource(33))
	xr, labels := gaussianBlobs(rng, 12, 8, 6, 3)
	if _, err := FitFisherfaces(xr, labels, 6, FisherfacesOptions{PCADim: 2}); err == nil {
		t.Fatal("PCADim below c−1 accepted")
	}
}

func TestOrthogonalLDAHasOrthonormalBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	x, labels := gaussianBlobs(rng, 90, 12, 4, 5)
	model, err := FitOrthogonal(x, labels, 4, Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	g := mat.MulTA(model.A, model.A)
	if !mat.Equalish(g, mat.Identity(model.Dim()), 1e-9) {
		t.Fatal("OLDA basis not orthonormal")
	}
	// spans the same subspace as plain LDA: projections of LDA's columns
	// onto OLDA's basis reconstruct them
	plain, err := Fit(x, labels, 4, Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < plain.Dim(); j++ {
		col := plain.A.ColCopy(j, nil)
		coef := model.A.MulTVec(col, nil)
		rec := model.A.MulVec(coef, nil)
		var resid float64
		for i := range col {
			d := col[i] - rec[i]
			resid += d * d
		}
		if math.Sqrt(resid) > 1e-6*blas.Nrm2(col) {
			t.Fatalf("OLDA span misses LDA direction %d (resid %v)", j, math.Sqrt(resid))
		}
	}
}

func TestNullSpaceLDACollapsesTraining(t *testing.T) {
	// In the n > m regime, NLDA's defining property: training samples of a
	// class project to exactly their class's point (within-scatter zero).
	rng := rand.New(rand.NewSource(41))
	m, n, c := 24, 60, 3
	x, labels := gaussianBlobs(rng, m, n, c, 5)
	model, err := FitNullSpace(x, labels, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	emb := model.Transform(x)
	for i := 1; i < m; i++ {
		for p := 0; p < i; p++ {
			if labels[i] != labels[p] {
				continue
			}
			for j := 0; j < emb.Cols; j++ {
				if math.Abs(emb.At(i, j)-emb.At(p, j)) > 1e-6 {
					t.Fatalf("same-class samples differ at dim %d", j)
				}
			}
		}
	}
	// classes must separate
	var minGap = math.Inf(1)
	for i := 1; i < m; i++ {
		for p := 0; p < i; p++ {
			if labels[i] == labels[p] {
				continue
			}
			minGap = math.Min(minGap, rowDist(emb, i, p))
		}
	}
	if minGap < 1e-6 {
		t.Fatalf("classes collapsed together, gap %v", minGap)
	}
}

func TestNullSpaceLDAFailsGracefullyWhenOversampled(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x, labels := gaussianBlobs(rng, 200, 10, 3, 5)
	if _, err := FitNullSpace(x, labels, 3, Options{}); err == nil {
		t.Fatal("NLDA should report an empty null space for m >> n")
	}
}

func TestNullSpaceLDAGeneralizes(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	xTrain, yTrain := gaussianBlobs(rng, 45, 120, 3, 10)
	xTest, yTest := gaussianBlobs(rng, 60, 120, 3, 10)
	model, err := FitNullSpace(xTrain, yTrain, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pred := nearestCentroidPredict(model.Transform(xTrain), yTrain, model.Transform(xTest), 3)
	if e := errRate(pred, yTest); e > 0.1 {
		t.Fatalf("NLDA test error %.3f on separable data", e)
	}
}

func TestTwoDLDAOnFaceImages(t *testing.T) {
	// 2D-LDA must classify pie-like faces competitively and never densify
	// a side²×side² scatter.
	rng := rand.New(rand.NewSource(50))
	side := 12
	faces := make2DFaces(rng, 10, 20, side)
	xTrain, yTrain, xTest, yTest := splitHalf(faces.x, faces.labels)
	model, err := Fit2D(xTrain, side, side, yTrain, 10, TwoDLDAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if model.Dim() != 9*9 {
		t.Fatalf("Dim=%d want 81", model.Dim())
	}
	pred := nearestCentroidPredict(model.Transform(xTrain), yTrain, model.Transform(xTest), 10)
	if e := errRate(pred, yTest); e > 0.25 {
		t.Fatalf("2DLDA error %.3f", e)
	}
}

type faceSet struct {
	x      *mat.Dense
	labels []int
}

// make2DFaces builds images with class structure in both row and column
// patterns (so bilinear projections have something to find).
func make2DFaces(rng *rand.Rand, classes, perClass, side int) faceSet {
	m := classes * perClass
	x := mat.NewDense(m, side*side)
	labels := make([]int, m)
	protos := make([][]float64, classes)
	for k := range protos {
		p := make([]float64, side*side)
		for r := 0; r < side; r++ {
			for c := 0; c < side; c++ {
				p[r*side+c] = math.Sin(float64((k+2)*r)/float64(side)) * math.Cos(float64((k+1)*c)/float64(side))
			}
		}
		protos[k] = p
	}
	i := 0
	for k := 0; k < classes; k++ {
		for s := 0; s < perClass; s++ {
			row := x.RowView(i)
			copy(row, protos[k])
			for j := range row {
				row[j] += 0.3 * rng.NormFloat64()
			}
			labels[i] = k
			i++
		}
	}
	return faceSet{x, labels}
}

func splitHalf(x *mat.Dense, labels []int) (*mat.Dense, []int, *mat.Dense, []int) {
	m := x.Rows
	var ti, si []int
	for i := 0; i < m; i++ {
		if i%2 == 0 {
			ti = append(ti, i)
		} else {
			si = append(si, i)
		}
	}
	take := func(idx []int) (*mat.Dense, []int) {
		out := mat.NewDense(len(idx), x.Cols)
		lab := make([]int, len(idx))
		for r, i := range idx {
			copy(out.RowView(r), x.RowView(i))
			lab[r] = labels[i]
		}
		return out, lab
	}
	a, al := take(ti)
	b, bl := take(si)
	return a, al, b, bl
}

func TestTwoDLDAValidation(t *testing.T) {
	x := mat.NewDense(6, 16)
	labels := []int{0, 1, 0, 1, 0, 1}
	if _, err := Fit2D(x, 5, 5, labels, 2, TwoDLDAOptions{}); err == nil {
		t.Fatal("image shape mismatch accepted")
	}
	if _, err := Fit2D(x, 4, 4, labels[:3], 2, TwoDLDAOptions{}); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := Fit2D(x, 4, 4, labels, 2, TwoDLDAOptions{DimL: 10}); err == nil {
		t.Fatal("oversized DimL accepted")
	}
}

func TestTwoDLDAMuchSmallerThanVectorLDA(t *testing.T) {
	// The whole point: 2DLDA's parameters are (side×l)², not side²×(c−1).
	rng := rand.New(rand.NewSource(51))
	side := 16
	faces := make2DFaces(rng, 4, 10, side)
	model, err := Fit2D(faces.x, side, side, faces.labels, 4, TwoDLDAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	params2D := model.L.Rows*model.L.Cols + model.R.Rows*model.R.Cols
	paramsVec := side * side * 3 // vector LDA: n×(c−1)
	if params2D >= paramsVec {
		t.Fatalf("2DLDA params %d not below vector LDA %d", params2D, paramsVec)
	}
}

func TestMMCSeparatesAndIsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	xTrain, yTrain := gaussianBlobs(rng, 150, 15, 3, 8)
	xTest, yTest := gaussianBlobs(rng, 100, 15, 3, 8)
	model, err := FitMMC(xTrain, yTrain, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if model.Dim() < 1 || model.Dim() > 2 {
		t.Fatalf("Dim=%d", model.Dim())
	}
	// V-columns are orthonormal combinations of orthonormal eigenvectors
	g := mat.MulTA(model.A, model.A)
	if !mat.Equalish(g, mat.Identity(model.Dim()), 1e-8) {
		t.Fatal("MMC basis not orthonormal")
	}
	pred := nearestCentroidPredict(model.Transform(xTrain), yTrain, model.Transform(xTest), 3)
	if e := errRate(pred, yTest); e > 0.05 {
		t.Fatalf("MMC error %.3f on separable blobs", e)
	}
}

func TestMMCMarginMatchesScatterTrace(t *testing.T) {
	// Each MMC eigenvalue equals aᵀ(S_b − S_w)a for its direction.
	rng := rand.New(rand.NewSource(61))
	x, labels := gaussianBlobs(rng, 80, 8, 3, 4)
	model, err := FitMMC(x, labels, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sb, sw, _ := Scatters(x, labels, 3)
	diff := sb.Clone()
	diff.AddScaled(-1, sw)
	a := make([]float64, x.Cols)
	for j := 0; j < model.Dim(); j++ {
		model.A.ColCopy(j, a)
		got := blas.Dot(a, diff.MulVec(a, nil))
		if math.Abs(got-model.Eigenvalues[j]) > 1e-6*(1+math.Abs(got)) {
			t.Fatalf("margin %d: %v vs eigenvalue %v", j, got, model.Eigenvalues[j])
		}
	}
}

func TestMMCHandlesSingularCase(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	x, labels := gaussianBlobs(rng, 20, 80, 3, 6)
	model, err := FitMMC(x, labels, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	emb := model.Transform(x)
	for _, v := range emb.Data {
		if math.IsNaN(v) {
			t.Fatal("NaN in MMC embedding")
		}
	}
}
