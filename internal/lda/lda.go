// Package lda implements the classical Linear Discriminant Analysis
// baseline exactly as analyzed in §II-A of the paper — centering, thin SVD
// of the centered data (via the cross-product trick), and the c×c
// eigenproblem on the class-aggregated matrix H — together with the
// regularized variant RLDA (Friedman 1989) that the paper compares
// against.  This is the O(mnt + t³) algorithm SRDA is measured against.
package lda

import (
	"fmt"
	"math"

	"srda/internal/blas"
	"srda/internal/decomp"
	"srda/internal/mat"
)

// Options configures the baseline.
type Options struct {
	// Alpha is the RLDA regularizer added to the total scatter
	// (S_t + αI); 0 gives plain LDA with SVD-based singularity handling.
	Alpha float64
	// RCond truncates singular values of the centered data below
	// RCond·σ_max (default 1e-10); this is the paper's "use SVD to solve
	// the singularity problem".
	RCond float64
}

// Model is a trained LDA/RLDA transformer: x ↦ Aᵀ(x − μ).
type Model struct {
	// A is the n×d projection matrix (d ≤ c−1).
	A *mat.Dense
	// Mu is the training mean subtracted before projecting.
	Mu []float64
	// Eigenvalues holds the discriminant ratios λ ∈ [0,1] per direction
	// (between-scatter over total-scatter in the generalized problem).
	Eigenvalues []float64
	// NumClasses is c.
	NumClasses int
}

// Fit trains the baseline on a dense m×n matrix with labels in
// [0, numClasses).  The steps follow §II-A:
//
//  1. Center the data: X̄ = X − 1μᵀ.
//  2. Thin SVD X̄ = U Σ Vᵀ by the cross-product algorithm (decomp.NewSVD),
//     truncating to the numerical rank r.
//  3. Build H (r×c): column k is (1/√m_k)·Σ_{i∈class k} u_i, where u_i is
//     the i-th row of U.  Then UᵀWU = HHᵀ (eq. 11).
//  4. RLDA whitening: G = (Σ²+αI)^{-1/2} Σ H.  Eigendecompose the small
//     c×c GᵀG and map back, keeping eigenvalues > 0 (at most c−1).
//  5. A = V (Σ²+αI)^{-1/2} G q_j / √λ_j — for α = 0 this reduces to the
//     paper's a = V Σ⁻¹ u_j (eq. 10).
func Fit(x *mat.Dense, labels []int, numClasses int, opt Options) (*Model, error) {
	m := x.Rows
	if m != len(labels) {
		return nil, fmt.Errorf("lda: %d samples but %d labels", m, len(labels))
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("lda: need at least 2 classes")
	}
	counts := make([]int, numClasses)
	for i, y := range labels {
		if y < 0 || y >= numClasses {
			return nil, fmt.Errorf("lda: label %d at sample %d out of range", y, i)
		}
		counts[y]++
	}
	for k, cnt := range counts {
		if cnt == 0 {
			return nil, fmt.Errorf("lda: class %d has no samples", k)
		}
	}

	// Step 1: center (densifying — this is precisely the memory cost the
	// paper charges LDA with).
	xc := x.Clone()
	mu := xc.CenterRows()

	// Step 2: thin SVD of the centered data.
	svd, err := decomp.NewSVD(xc, opt.RCond)
	if err != nil {
		return nil, fmt.Errorf("lda: svd: %w", err)
	}
	r := svd.Rank()
	if r == 0 {
		return nil, fmt.Errorf("lda: centered data has rank 0")
	}

	// Step 3: class-aggregate the rows of U into H (r×c).
	h := mat.NewDense(r, numClasses)
	for i := 0; i < m; i++ {
		urow := svd.U.RowView(i)
		k := labels[i]
		for d := 0; d < r; d++ {
			h.Set(d, k, h.At(d, k)+urow[d])
		}
	}
	for k := 0; k < numClasses; k++ {
		inv := 1 / math.Sqrt(float64(counts[k]))
		for d := 0; d < r; d++ {
			h.Set(d, k, h.At(d, k)*inv)
		}
	}

	// Step 4: whiten rows of H by s_d = σ_d / sqrt(σ_d² + α) to get G.
	scale := make([]float64, r)
	for d := 0; d < r; d++ {
		s2 := svd.Sigma[d] * svd.Sigma[d]
		scale[d] = svd.Sigma[d] / math.Sqrt(s2+opt.Alpha)
	}
	g := h.Clone()
	for d := 0; d < r; d++ {
		blas.Scal(scale[d], g.RowView(d))
	}

	// Small c×c eigenproblem on GᵀG; eigenvalues are the discriminant
	// ratios, at most c−1 of them nonzero.
	gtg := mat.Gram(g)
	eig, err := decomp.NewSymEig(gtg)
	if err != nil {
		return nil, fmt.Errorf("lda: eigen: %w", err)
	}
	maxDirs := numClasses - 1
	dirs := 0
	tol := 1e-10
	if len(eig.Values) > 0 {
		tol = 1e-10 * math.Max(eig.Values[0], 1)
	}
	for dirs < maxDirs && dirs < len(eig.Values) && eig.Values[dirs] > tol {
		dirs++
	}
	if dirs == 0 {
		return nil, fmt.Errorf("lda: no discriminative directions found")
	}

	// Step 5: d_j = G q_j / √λ_j, b_j = (Σ²+αI)^{-1/2} d_j, a_j = V b_j.
	// The raw directions are (S_t+αI)-orthonormal; rescale each by
	// 1/√(1−λ_j) so they become (S_w+αI)-orthonormal instead.  That is
	// the convention under which Euclidean distance in the embedding
	// behaves like the within-class Mahalanobis metric, which
	// nearest-centroid/k-NN classification assumes.  λ_j = 1 (exact class
	// collapse, the n > m regime) leaves the within-variance zero; the
	// scale is capped there.
	b := mat.NewDense(r, dirs)
	q := make([]float64, numClasses)
	gq := make([]float64, r)
	for j := 0; j < dirs; j++ {
		eig.Vectors.ColCopy(j, q)
		g.MulVec(q, gq)
		lam := eig.Values[j]
		scaleJ := 1 / (math.Sqrt(lam) * math.Sqrt(math.Max(1-lam, 1e-8)))
		for d := 0; d < r; d++ {
			s2 := svd.Sigma[d]*svd.Sigma[d] + opt.Alpha
			b.Set(d, j, gq[d]*scaleJ/math.Sqrt(s2))
		}
	}
	a := mat.Mul(svd.V, b)

	return &Model{
		A:           a,
		Mu:          mu,
		Eigenvalues: eig.Values[:dirs],
		NumClasses:  numClasses,
	}, nil
}

// Dim returns the number of discriminant directions kept.
func (m *Model) Dim() int { return m.A.Cols }

// Transform embeds the rows of x: Z = (X − 1μᵀ)·A.
func (m *Model) Transform(x *mat.Dense) *mat.Dense {
	if x.Cols != m.A.Rows {
		panic(fmt.Sprintf("lda: Transform feature mismatch: data has %d, model %d", x.Cols, m.A.Rows))
	}
	out := mat.Mul(x, m.A)
	shift := m.A.MulTVec(m.Mu, nil)
	for i := 0; i < out.Rows; i++ {
		blas.Axpy(-1, shift, out.RowView(i))
	}
	return out
}

// TransformVec embeds a single sample.
func (m *Model) TransformVec(x []float64, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.Dim())
	}
	centered := make([]float64, len(x))
	for i := range x {
		centered[i] = x[i] - m.Mu[i]
	}
	m.A.MulTVec(centered, dst)
	return dst
}
