package lda

import (
	"fmt"

	"srda/internal/blas"
	"srda/internal/decomp"
	"srda/internal/mat"
)

// TwoDLDA is a two-dimensional LDA transformer (Ye, Janardan, Li — NIPS
// 2004): images are treated as matrices A rather than vectors, and two
// small projections L (rows×l1) and R (cols×l2) are learned by
// alternating generalized eigenproblems so that the bilinear embedding
// LᵀAR maximizes between- over within-class scatter.  Working with
// side×side scatter matrices instead of side²×side² ones sidesteps the
// singularity problem entirely — the matrix-variate answer to the same
// small-sample issue SRDA solves by regression.
type TwoDLDA struct {
	// L and R are the row- and column-side projections.
	L, R *mat.Dense
	// MeanImage is the training mean (rows×cols).
	MeanImage *mat.Dense
	// Rows, Cols are the image dimensions.
	Rows, Cols int
	// NumClasses is c.
	NumClasses int
}

// TwoDLDAOptions configures training.
type TwoDLDAOptions struct {
	// DimL and DimR are the projected sizes (default c−1 capped at the
	// image side).
	DimL, DimR int
	// Iters is the number of alternating rounds (default 4).
	Iters int
	// Reg regularizes the within-class scatters (default 1e-6·trace).
	Reg float64
}

// Fit2D trains 2D-LDA on vectorized square-ish images: each row of x is
// an image stored row-major as rows×cols.
func Fit2D(x *mat.Dense, imgRows, imgCols int, labels []int, numClasses int, opt TwoDLDAOptions) (*TwoDLDA, error) {
	m := x.Rows
	if imgRows*imgCols != x.Cols {
		return nil, fmt.Errorf("lda: %d×%d images do not match %d features", imgRows, imgCols, x.Cols)
	}
	if m != len(labels) {
		return nil, fmt.Errorf("lda: %d samples but %d labels", m, len(labels))
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("lda: need at least 2 classes")
	}
	counts := make([]int, numClasses)
	for _, y := range labels {
		if y < 0 || y >= numClasses {
			return nil, fmt.Errorf("lda: label %d out of range", y)
		}
		counts[y]++
	}
	for k, cnt := range counts {
		if cnt == 0 {
			return nil, fmt.Errorf("lda: class %d has no samples", k)
		}
	}
	dimL, dimR := opt.DimL, opt.DimR
	if dimL <= 0 {
		dimL = min2(numClasses-1, imgRows)
	}
	if dimR <= 0 {
		dimR = min2(numClasses-1, imgCols)
	}
	if dimL > imgRows || dimR > imgCols {
		return nil, fmt.Errorf("lda: projected dims (%d,%d) exceed image (%d,%d)", dimL, dimR, imgRows, imgCols)
	}
	iters := opt.Iters
	if iters <= 0 {
		iters = 4
	}

	// Per-class and global mean images.
	classMean := make([]*mat.Dense, numClasses)
	for k := range classMean {
		classMean[k] = mat.NewDense(imgRows, imgCols)
	}
	grand := mat.NewDense(imgRows, imgCols)
	img := func(i int) *mat.Dense { return mat.NewDenseData(imgRows, imgCols, x.RowView(i)) }
	for i := 0; i < m; i++ {
		a := img(i)
		classMean[labels[i]].AddScaled(1, a)
		grand.AddScaled(1, a)
	}
	for k := 0; k < numClasses; k++ {
		classMean[k].Scale(1 / float64(counts[k]))
	}
	grand.Scale(1 / float64(m))

	// Initialize R to the leading identity columns.
	r := mat.NewDense(imgCols, dimR)
	for j := 0; j < dimR; j++ {
		r.Set(j, j, 1)
	}
	var l *mat.Dense

	for it := 0; it < iters; it++ {
		// Fix R, solve for L on row-side scatters of A·R (imgRows×imgRows).
		lNew, err := sideEig(imgRows, dimL, opt.Reg, func(add func(diff *mat.Dense, weight float64, within bool)) {
			for i := 0; i < m; i++ {
				d := img(i).Clone()
				d.AddScaled(-1, classMean[labels[i]])
				add(mat.Mul(d, r), 1, true)
			}
			for k := 0; k < numClasses; k++ {
				d := classMean[k].Clone()
				d.AddScaled(-1, grand)
				add(mat.Mul(d, r), float64(counts[k]), false)
			}
		})
		if err != nil {
			return nil, fmt.Errorf("lda: 2DLDA row side: %w", err)
		}
		l = lNew
		// Fix L, solve for R on column-side scatters of Aᵀ·L (imgCols×imgCols).
		rNew, err := sideEig(imgCols, dimR, opt.Reg, func(add func(diff *mat.Dense, weight float64, within bool)) {
			for i := 0; i < m; i++ {
				d := img(i).Clone()
				d.AddScaled(-1, classMean[labels[i]])
				add(mat.MulTA(d, l), 1, true) // (dᵀ L): imgCols×dimL
			}
			for k := 0; k < numClasses; k++ {
				d := classMean[k].Clone()
				d.AddScaled(-1, grand)
				add(mat.MulTA(d, l), float64(counts[k]), false)
			}
		})
		if err != nil {
			return nil, fmt.Errorf("lda: 2DLDA column side: %w", err)
		}
		r = rNew
	}

	return &TwoDLDA{
		L: l, R: r, MeanImage: grand,
		Rows: imgRows, Cols: imgCols, NumClasses: numClasses,
	}, nil
}

// sideEig assembles within/between scatters from the emitted projected
// difference matrices (each contributes diff·diffᵀ·weight) and solves the
// regularized generalized eigenproblem S_b u = λ (S_w + εI) u, returning
// the top dim eigenvectors as columns.
func sideEig(size, dim int, reg float64, emit func(add func(diff *mat.Dense, weight float64, within bool))) (*mat.Dense, error) {
	sw := mat.NewDense(size, size)
	sb := mat.NewDense(size, size)
	emit(func(diff *mat.Dense, weight float64, within bool) {
		target := sb
		if within {
			target = sw
		}
		// target += weight · diff·diffᵀ
		prod := mat.MulTB(diff, diff)
		target.AddScaled(weight, prod)
	})
	var trace float64
	for i := 0; i < size; i++ {
		trace += sw.At(i, i)
	}
	eps := reg
	if eps <= 0 {
		eps = 1e-6 * (1 + trace/float64(size))
	}
	for i := 0; i < size; i++ {
		sw.Set(i, i, sw.At(i, i)+eps)
	}
	ch, err := decomp.NewCholesky(sw)
	if err != nil {
		return nil, err
	}
	// Whiten: M = R⁻ᵀ S_b R⁻¹, symmetric eigen, map back u = R⁻¹ v.
	mRed := decomp.SolveUpperTranspose(ch.R, sb)
	mRed = decomp.SolveUpperTranspose(ch.R, mRed.T())
	for i := 0; i < size; i++ {
		for j := 0; j < i; j++ {
			v := (mRed.At(i, j) + mRed.At(j, i)) / 2
			mRed.Set(i, j, v)
			mRed.Set(j, i, v)
		}
	}
	eig, err := decomp.NewSymEig(mRed)
	if err != nil {
		return nil, err
	}
	out := mat.NewDense(size, dim)
	v := make([]float64, size)
	for j := 0; j < dim; j++ {
		eig.Vectors.ColCopy(j, v)
		decomp.SolveUpperVec(ch.R, v)
		// normalize for stability
		if nrm := blas.Nrm2(v); nrm > 0 {
			blas.Scal(1/nrm, v)
		}
		out.SetCol(j, v)
	}
	return out, nil
}

// Dim returns the flattened embedding size l1·l2.
func (t *TwoDLDA) Dim() int { return t.L.Cols * t.R.Cols }

// Transform embeds vectorized images: each row becomes vec(Lᵀ(A−Ā)R).
func (t *TwoDLDA) Transform(x *mat.Dense) *mat.Dense {
	if x.Cols != t.Rows*t.Cols {
		panic(fmt.Sprintf("lda: 2DLDA expects %d features, got %d", t.Rows*t.Cols, x.Cols))
	}
	out := mat.NewDense(x.Rows, t.Dim())
	for i := 0; i < x.Rows; i++ {
		a := mat.NewDenseData(t.Rows, t.Cols, x.RowView(i)).Clone()
		a.AddScaled(-1, t.MeanImage)
		proj := mat.Mul(mat.MulTA(t.L, a), t.R) // l1×l2
		copy(out.RowView(i), proj.Data)
	}
	return out
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
