package serve

import (
	"io"

	"srda/internal/obs"
)

// metrics aggregates everything /metrics exposes, built on internal/obs.
// The registry is per-server (not obs.Default()) so tests and multiple
// servers in one process stay isolated.  Registration order here is the
// exposition order and is pinned byte-for-byte by the golden test in
// metrics_test.go — new instruments go at the end.
type metrics struct {
	reg           *obs.Registry
	requests      *obs.CounterVec // endpoint, code
	errors        *obs.CounterVec // endpoint
	latency       *obs.Histogram  // predict seconds, request receipt → reply ready
	batchSize     *obs.Histogram  // samples per inference batch
	samples       *obs.Counter
	batches       *obs.Counter
	reloads       *obs.Counter
	reloadErrors  *obs.Counter
	queueRejects  *obs.Counter
	latencySketch *obs.QuantileSketch // exact-rank-bounded p50/p95/p99
}

// newMetrics registers the serve instrument set on a fresh registry.
// queueDepth and modelSeq are sampled at exposition time.
func newMetrics(queueDepth, modelSeq func() int64) *metrics {
	reg := obs.NewRegistry()
	mx := &metrics{
		reg: reg,
		requests: reg.NewCounterVec("srdaserve_requests_total",
			"HTTP requests by endpoint and status code.", "endpoint", "code"),
		errors: reg.NewCounterVec("srdaserve_errors_total",
			"Failed requests by endpoint.", "endpoint"),
		latency: reg.NewHistogram("srdaserve_request_duration_seconds",
			"Predict latency from receipt to reply.",
			[]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}),
		batchSize: reg.NewHistogram("srdaserve_batch_size",
			"Samples coalesced per inference batch.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		samples: reg.NewCounter("srdaserve_samples_total",
			"Samples predicted."),
		batches: reg.NewCounter("srdaserve_batches_total",
			"Inference batches dispatched."),
		reloads: reg.NewCounter("srdaserve_model_reloads_total",
			"Successful hot reloads."),
		reloadErrors: reg.NewCounter("srdaserve_model_reload_errors_total",
			"Failed hot-reload attempts."),
		queueRejects: reg.NewCounter("srdaserve_queue_rejects_total",
			"Samples rejected because the queue was full."),
	}
	reg.NewGaugeFunc("srdaserve_queue_depth",
		"Samples currently queued for dispatch.", queueDepth)
	reg.NewGaugeFunc("srdaserve_model_seq",
		"Monotonic sequence number of the live model.", modelSeq)
	mx.latencySketch = obs.NewQuantileSketch()
	reg.NewGaugeFloatFunc("srdaserve_request_latency_p50",
		"Streaming median predict latency in seconds (CKMS sketch, 1% rank error).",
		func() float64 { return mx.latencySketch.Query(0.5) })
	reg.NewGaugeFloatFunc("srdaserve_request_latency_p95",
		"Streaming 95th-percentile predict latency in seconds (CKMS sketch, 0.5% rank error).",
		func() float64 { return mx.latencySketch.Query(0.95) })
	reg.NewGaugeFloatFunc("srdaserve_request_latency_p99",
		"Streaming 99th-percentile predict latency in seconds (CKMS sketch, 0.1% rank error).",
		func() float64 { return mx.latencySketch.Query(0.99) })
	return mx
}

// observeLatency feeds one predict latency to both the fixed-bucket
// histogram (for PromQL histogram_quantile) and the CKMS sketch (for the
// rank-bounded p50/p95/p99 gauges).
func (mx *metrics) observeLatency(sec float64) {
	mx.latency.Observe(sec)
	mx.latencySketch.Observe(sec)
}

// observeLatencyTraced is observeLatency plus the trace link: when an
// exemplar store is attached to the histogram, outliers keep the TraceID
// that produced them.
func (mx *metrics) observeLatencyTraced(sec float64, trace obs.TraceID) {
	mx.latency.ObserveTraced(sec, trace)
	mx.latencySketch.Observe(sec)
}

// writeProm renders the Prometheus text exposition format.
func (mx *metrics) writeProm(w io.Writer) { mx.reg.WritePrometheus(w) }
