package serve

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// counterVec is a set of monotonic counters keyed by a label string.  The
// map is guarded for insertion; increments on existing labels are
// lock-free.
type counterVec struct {
	mu sync.RWMutex
	m  map[string]*atomic.Int64
}

func newCounterVec() *counterVec {
	return &counterVec{m: make(map[string]*atomic.Int64)}
}

func (c *counterVec) at(label string) *atomic.Int64 {
	c.mu.RLock()
	v := c.m[label]
	c.mu.RUnlock()
	if v != nil {
		return v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if v = c.m[label]; v == nil {
		v = new(atomic.Int64)
		c.m[label] = v
	}
	return v
}

func (c *counterVec) inc(label string) { c.at(label).Add(1) }

// snapshot returns the labels in sorted order with their current values.
func (c *counterVec) snapshot() ([]string, []int64) {
	c.mu.RLock()
	labels := make([]string, 0, len(c.m))
	for k := range c.m {
		labels = append(labels, k)
	}
	c.mu.RUnlock()
	sort.Strings(labels)
	vals := make([]int64, len(labels))
	for i, k := range labels {
		vals[i] = c.at(k).Load()
	}
	return labels, vals
}

// histogram is a fixed-bucket cumulative histogram with lock-free
// observation, matching the Prometheus exposition conventions (le-labeled
// cumulative buckets plus _sum and _count).
type histogram struct {
	bounds  []float64 // upper bucket bounds, ascending; +Inf is implicit
	counts  []atomic.Int64
	sumBits atomic.Uint64
	count   atomic.Int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (h *histogram) write(w io.Writer, name string) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, trimFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, math.Float64frombits(h.sumBits.Load()))
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

func trimFloat(v float64) string { return fmt.Sprintf("%g", v) }

// metrics aggregates everything /metrics exposes.  All fields are safe for
// concurrent use from the handlers and the dispatcher.
type metrics struct {
	requests     *counterVec // "endpoint|code"
	errors       *counterVec // "endpoint"
	latency      *histogram  // predict seconds, request receipt → reply ready
	batchSize    *histogram  // samples per inference batch
	samples      atomic.Int64
	batches      atomic.Int64
	reloads      atomic.Int64
	reloadErrors atomic.Int64
	queueRejects atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{
		requests:  newCounterVec(),
		errors:    newCounterVec(),
		latency:   newHistogram([]float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}),
		batchSize: newHistogram([]float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
	}
}

// writeProm renders the Prometheus text exposition format; queueDepth and
// modelSeq are point-in-time gauges sampled by the caller.
func (mx *metrics) writeProm(w io.Writer, queueDepth int, modelSeq uint64) {
	fmt.Fprintln(w, "# HELP srdaserve_requests_total HTTP requests by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE srdaserve_requests_total counter")
	labels, vals := mx.requests.snapshot()
	for i, l := range labels {
		endpoint, code, _ := cutLabel(l)
		fmt.Fprintf(w, "srdaserve_requests_total{endpoint=%q,code=%q} %d\n", endpoint, code, vals[i])
	}
	fmt.Fprintln(w, "# HELP srdaserve_errors_total Failed requests by endpoint.")
	fmt.Fprintln(w, "# TYPE srdaserve_errors_total counter")
	labels, vals = mx.errors.snapshot()
	for i, l := range labels {
		fmt.Fprintf(w, "srdaserve_errors_total{endpoint=%q} %d\n", l, vals[i])
	}
	fmt.Fprintln(w, "# HELP srdaserve_request_duration_seconds Predict latency from receipt to reply.")
	fmt.Fprintln(w, "# TYPE srdaserve_request_duration_seconds histogram")
	mx.latency.write(w, "srdaserve_request_duration_seconds")
	fmt.Fprintln(w, "# HELP srdaserve_batch_size Samples coalesced per inference batch.")
	fmt.Fprintln(w, "# TYPE srdaserve_batch_size histogram")
	mx.batchSize.write(w, "srdaserve_batch_size")
	fmt.Fprintln(w, "# HELP srdaserve_samples_total Samples predicted.")
	fmt.Fprintln(w, "# TYPE srdaserve_samples_total counter")
	fmt.Fprintf(w, "srdaserve_samples_total %d\n", mx.samples.Load())
	fmt.Fprintln(w, "# HELP srdaserve_batches_total Inference batches dispatched.")
	fmt.Fprintln(w, "# TYPE srdaserve_batches_total counter")
	fmt.Fprintf(w, "srdaserve_batches_total %d\n", mx.batches.Load())
	fmt.Fprintln(w, "# HELP srdaserve_model_reloads_total Successful hot reloads.")
	fmt.Fprintln(w, "# TYPE srdaserve_model_reloads_total counter")
	fmt.Fprintf(w, "srdaserve_model_reloads_total %d\n", mx.reloads.Load())
	fmt.Fprintln(w, "# HELP srdaserve_model_reload_errors_total Failed hot-reload attempts.")
	fmt.Fprintln(w, "# TYPE srdaserve_model_reload_errors_total counter")
	fmt.Fprintf(w, "srdaserve_model_reload_errors_total %d\n", mx.reloadErrors.Load())
	fmt.Fprintln(w, "# HELP srdaserve_queue_rejects_total Samples rejected because the queue was full.")
	fmt.Fprintln(w, "# TYPE srdaserve_queue_rejects_total counter")
	fmt.Fprintf(w, "srdaserve_queue_rejects_total %d\n", mx.queueRejects.Load())
	fmt.Fprintln(w, "# HELP srdaserve_queue_depth Samples currently queued for dispatch.")
	fmt.Fprintln(w, "# TYPE srdaserve_queue_depth gauge")
	fmt.Fprintf(w, "srdaserve_queue_depth %d\n", queueDepth)
	fmt.Fprintln(w, "# HELP srdaserve_model_seq Monotonic sequence number of the live model.")
	fmt.Fprintln(w, "# TYPE srdaserve_model_seq gauge")
	fmt.Fprintf(w, "srdaserve_model_seq %d\n", modelSeq)
}

func cutLabel(l string) (a, b string, ok bool) {
	for i := 0; i < len(l); i++ {
		if l[i] == '|' {
			return l[:i], l[i+1:], true
		}
	}
	return l, "", false
}
