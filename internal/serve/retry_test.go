package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// shedServer replies 503 (with Retry-After) until the remaining counter
// drains, then serves a fixed predict reply.
func shedServer(t *testing.T, remaining *atomic.Int32, retryAfter string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if remaining.Add(-1) >= 0 {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_ = json.NewEncoder(w).Encode(errorReply{Error: "prediction queue full"})
			return
		}
		_ = json.NewEncoder(w).Encode(PredictResponse{Classes: []int{2}, ModelSeq: 1})
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestRetryOn503Deterministic(t *testing.T) {
	var remaining atomic.Int32
	remaining.Store(2) // two sheds, then success
	srv := shedServer(t, &remaining, "")
	var slept []time.Duration
	c := NewClient(srv.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, Seed: 7}
	c.Sleep = func(d time.Duration) { slept = append(slept, d) }
	classes, err := c.Predict(context.Background(), DenseSample([]float64{1}))
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 1 || classes[0] != 2 {
		t.Fatalf("classes = %v", classes)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	// Backoff k sleeps in [base·2ᵏ/2, base·2ᵏ).
	for k, d := range slept {
		lo := (50 * time.Millisecond << k) / 2
		hi := 50 * time.Millisecond << k
		if d < lo || d >= hi {
			t.Fatalf("backoff %d = %v, want [%v, %v)", k, d, lo, hi)
		}
	}
	// Same seed, same schedule: the jitter sequence is deterministic.
	remaining.Store(2)
	c2 := NewClient(srv.URL)
	c2.Retry = &RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, Seed: 7}
	var slept2 []time.Duration
	c2.Sleep = func(d time.Duration) { slept2 = append(slept2, d) }
	if _, err := c2.Predict(context.Background(), DenseSample([]float64{1})); err != nil {
		t.Fatal(err)
	}
	for k := range slept {
		if slept[k] != slept2[k] {
			t.Fatalf("schedule diverged at %d: %v vs %v", k, slept[k], slept2[k])
		}
	}
}

func TestRetryExhaustionSurfacesShed(t *testing.T) {
	var remaining atomic.Int32
	remaining.Store(100) // never recovers
	srv := shedServer(t, &remaining, "")
	c := NewClient(srv.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1}
	c.Sleep = func(time.Duration) {}
	_, err := c.Predict(context.Background(), DenseSample([]float64{1}))
	if err == nil {
		t.Fatal("exhausted retries returned success")
	}
	if !errors.Is(err, ErrShed) {
		t.Fatalf("exhausted 503 not a shed: %v", err)
	}
	var st *StatusError
	if !errors.As(err, &st) || st.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v", err)
	}
	if st.Message != "prediction queue full" {
		t.Fatalf("server message lost: %q", st.Message)
	}
	if got := 100 - remaining.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

func TestRetryHonorsRetryAfterFloor(t *testing.T) {
	var remaining atomic.Int32
	remaining.Store(1)
	srv := shedServer(t, &remaining, "1") // server asks for 1s
	c := NewClient(srv.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Second, Seed: 3}
	var slept []time.Duration
	c.Sleep = func(d time.Duration) { slept = append(slept, d) }
	if _, err := c.Predict(context.Background(), DenseSample([]float64{1})); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != time.Second {
		t.Fatalf("slept %v, want exactly the 1s Retry-After floor", slept)
	}
	// MaxDelay caps even the server's hint.
	remaining.Store(1)
	c2 := NewClient(srv.URL)
	c2.Retry = &RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 100 * time.Millisecond, Seed: 3}
	slept = nil
	c2.Sleep = func(d time.Duration) { slept = append(slept, d) }
	if _, err := c2.Predict(context.Background(), DenseSample([]float64{1})); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 || slept[0] != 100*time.Millisecond {
		t.Fatalf("slept %v, want the 100ms cap", slept)
	}
}

func TestQuotaShed429NotRetried(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Retry-After", "1")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(errorReply{Error: `tenant "a" over its request quota`})
	}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Seed: 1}
	c.Sleep = func(time.Duration) { t.Fatal("429 must not back off and retry") }
	_, err := c.Predict(context.Background(), DenseSample([]float64{1}))
	if !errors.Is(err, ErrShed) {
		t.Fatalf("429 not a shed: %v", err)
	}
	var st *StatusError
	if !errors.As(err, &st) || st.Code != http.StatusTooManyRequests || st.RetryAfter != time.Second {
		t.Fatalf("err = %+v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d attempts, want 1", hits.Load())
	}
}

func TestShedVsErrorDistinct(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(errorReply{Error: "no samples"})
	}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	_, err := c.Predict(context.Background(), DenseSample([]float64{1}))
	if errors.Is(err, ErrShed) {
		t.Fatalf("a 400 must not read as a shed: %v", err)
	}
	var st *StatusError
	if !errors.As(err, &st) || st.Code != http.StatusBadRequest {
		t.Fatalf("err = %v", err)
	}
	if got, want := st.Error(), "serve: http 400: no samples"; got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
}
