package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client is a typed HTTP client for a srdaserve instance.  The zero value
// is unusable; construct with NewClient.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: http.DefaultClient}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// DenseSample wraps a dense feature vector as a request sample.
func DenseSample(x []float64) Sample { return Sample{Dense: x} }

// SparseSample wraps index→value features as a request sample.
func SparseSample(features map[int]float64) Sample { return Sample{Sparse: features} }

// Predict classifies the samples and returns one class per sample.
func (c *Client) Predict(ctx context.Context, samples ...Sample) ([]int, error) {
	resp, err := c.do(ctx, PredictRequest{Samples: samples})
	if err != nil {
		return nil, err
	}
	return resp.Classes, nil
}

// PredictEmbed classifies the samples and also returns their
// (c−1)-dimensional embeddings.
func (c *Client) PredictEmbed(ctx context.Context, samples ...Sample) ([]int, [][]float64, error) {
	resp, err := c.do(ctx, PredictRequest{Samples: samples, Embed: true})
	if err != nil {
		return nil, nil, err
	}
	return resp.Classes, resp.Embeddings, nil
}

// PredictOne classifies a single sample.
func (c *Client) PredictOne(ctx context.Context, s Sample) (int, error) {
	classes, err := c.Predict(ctx, s)
	if err != nil {
		return 0, err
	}
	if len(classes) != 1 {
		return 0, fmt.Errorf("serve: server returned %d classes for one sample", len(classes))
	}
	return classes[0], nil
}

func (c *Client) do(ctx context.Context, req PredictRequest) (*PredictResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() { _ = hresp.Body.Close() }() // best-effort; response already read or failed
	if hresp.StatusCode != http.StatusOK {
		return nil, decodeError(hresp)
	}
	var out PredictResponse
	if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("serve: decoding predict response: %w", err)
	}
	if len(out.Classes) != len(req.Samples) {
		return nil, fmt.Errorf("serve: server returned %d classes for %d samples", len(out.Classes), len(req.Samples))
	}
	return &out, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() { _ = hresp.Body.Close() }() // best-effort; response already read or failed
	if hresp.StatusCode != http.StatusOK {
		return nil, decodeError(hresp)
	}
	var h Health
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("serve: decoding health response: %w", err)
	}
	return &h, nil
}

// Metrics fetches the raw /metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return "", err
	}
	defer func() { _ = hresp.Body.Close() }() // best-effort; response already read or failed
	if hresp.StatusCode != http.StatusOK {
		return "", decodeError(hresp)
	}
	b, err := io.ReadAll(hresp.Body)
	return string(b), err
}

// decodeError turns a non-200 reply into an error carrying the server's
// message and status code.
func decodeError(resp *http.Response) error {
	var er errorReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&er); err == nil && er.Error != "" {
		return fmt.Errorf("serve: http %d: %s", resp.StatusCode, er.Error)
	}
	return fmt.Errorf("serve: http %d", resp.StatusCode)
}
