package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"srda/internal/obs"
)

// ErrShed marks replies shed by quota or admission control (HTTP 429 and
// 503): the request was refused by policy, not failed by a bug.  Test
// with errors.Is(err, ErrShed) to tell load shedding apart from real
// errors; 503s are additionally retried when a RetryPolicy is set.
var ErrShed = errors.New("serve: request shed by quota or admission control")

// StatusError is a non-200 server reply: the status code, the server's
// error message, and any Retry-After hint.  errors.Is(err, ErrShed)
// reports whether the reply was a shed (429/503) rather than a failure.
type StatusError struct {
	// Code is the HTTP status code.
	Code int
	// Message is the server's error string ("" when the body carried
	// none).
	Message string
	// RetryAfter is the parsed Retry-After header (0 when absent).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("serve: http %d: %s", e.Code, e.Message)
	}
	return fmt.Sprintf("serve: http %d", e.Code)
}

// Is makes errors.Is(err, ErrShed) true for quota (429) and
// overload/drain (503) replies.
func (e *StatusError) Is(target error) bool {
	return target == ErrShed &&
		(e.Code == http.StatusTooManyRequests || e.Code == http.StatusServiceUnavailable)
}

// RetryPolicy retries idempotent predicts on 503 with capped exponential
// backoff plus seeded jitter.  Predictions are idempotent, so retrying a
// shed request is always safe; 429 quota rejections are never retried —
// the tenant is over its budget and backing off immediately is the
// point.  The zero value disables retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (values < 2 disable retries).
	MaxAttempts int
	// BaseDelay seeds the exponential schedule (default 50ms): attempt k
	// backs off in [base·2ᵏ/2, base·2ᵏ), capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps any single backoff, including server Retry-After
	// hints (default 2s).
	MaxDelay time.Duration
	// Seed fixes the jitter sequence, making retry schedules
	// deterministic in tests (same seed, same delays).
	Seed int64
}

// Client is a typed HTTP client for a srdaserve worker or router.  The
// zero value is unusable; construct with NewClient.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Retry, when non-nil, retries idempotent predicts on 503 replies,
	// honoring Retry-After up to Retry.MaxDelay.
	Retry *RetryPolicy
	// Sleep is the backoff clock (nil = time.Sleep); tests inject a
	// recorder to pin the schedule without waiting it out.
	Sleep func(time.Duration)

	jitterMu sync.Mutex
	jitter   *rand.Rand
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: http.DefaultClient}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// DenseSample wraps a dense feature vector as a request sample.
func DenseSample(x []float64) Sample { return Sample{Dense: x} }

// SparseSample wraps index→value features as a request sample.
func SparseSample(features map[int]float64) Sample { return Sample{Sparse: features} }

// Predict classifies the samples and returns one class per sample.
func (c *Client) Predict(ctx context.Context, samples ...Sample) ([]int, error) {
	resp, err := c.do(ctx, PredictRequest{Samples: samples})
	if err != nil {
		return nil, err
	}
	return resp.Classes, nil
}

// PredictModel classifies the samples against the named registry model.
func (c *Client) PredictModel(ctx context.Context, model string, samples ...Sample) ([]int, error) {
	resp, err := c.do(ctx, PredictRequest{Samples: samples, Model: model})
	if err != nil {
		return nil, err
	}
	return resp.Classes, nil
}

// PredictEmbed classifies the samples and also returns their
// (c−1)-dimensional embeddings.
func (c *Client) PredictEmbed(ctx context.Context, samples ...Sample) ([]int, [][]float64, error) {
	resp, err := c.do(ctx, PredictRequest{Samples: samples, Embed: true})
	if err != nil {
		return nil, nil, err
	}
	return resp.Classes, resp.Embeddings, nil
}

// PredictOne classifies a single sample.
func (c *Client) PredictOne(ctx context.Context, s Sample) (int, error) {
	classes, err := c.Predict(ctx, s)
	if err != nil {
		return 0, err
	}
	if len(classes) != 1 {
		return 0, fmt.Errorf("serve: server returned %d classes for one sample", len(classes))
	}
	return classes[0], nil
}

// PredictRaw sends a fully-formed request and returns the raw response —
// the HTTP transport the router's remote backends forward through.
func (c *Client) PredictRaw(ctx context.Context, req *PredictRequest) (*PredictResponse, error) {
	return c.do(ctx, *req)
}

func (c *Client) do(ctx context.Context, req PredictRequest) (*PredictResponse, error) {
	attempts := 1
	if c.Retry != nil && c.Retry.MaxAttempts > 1 {
		attempts = c.Retry.MaxAttempts
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if werr := c.waitBackoff(ctx, attempt-1, err); werr != nil {
				return nil, werr
			}
		}
		var resp *PredictResponse
		resp, err = c.doOnce(ctx, req)
		if err == nil {
			return resp, nil
		}
		var st *StatusError
		if !errors.As(err, &st) || st.Code != http.StatusServiceUnavailable {
			return nil, err // non-retryable: 4xx (incl. 429 quota sheds), transport errors
		}
	}
	return nil, err
}

// waitBackoff sleeps for retry k's backoff: base·2ᵏ with half-to-full
// jitter, capped at MaxDelay, floored by any server Retry-After hint.
func (c *Client) waitBackoff(ctx context.Context, k int, cause error) error {
	p := c.Retry
	base := p.BaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	maxd := p.MaxDelay
	if maxd <= 0 {
		maxd = 2 * time.Second
	}
	d := base << k
	if d > maxd || d <= 0 {
		d = maxd
	}
	c.jitterMu.Lock()
	if c.jitter == nil {
		c.jitter = rand.New(rand.NewSource(p.Seed))
	}
	d = d/2 + time.Duration(c.jitter.Float64()*float64(d/2))
	c.jitterMu.Unlock()
	var st *StatusError
	if errors.As(cause, &st) && st.RetryAfter > d {
		d = st.RetryAfter
	}
	if d > maxd {
		d = maxd
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	sleep := c.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	sleep(d)
	return ctx.Err()
}

func (c *Client) doOnce(ctx context.Context, req PredictRequest) (*PredictResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	obs.InjectTrace(hreq.Header, obs.SpanFromContext(ctx))
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() { _ = hresp.Body.Close() }() // best-effort; response already read or failed
	if hresp.StatusCode != http.StatusOK {
		return nil, decodeError(hresp)
	}
	var out PredictResponse
	if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("serve: decoding predict response: %w", err)
	}
	want := len(req.Samples)
	if want == 0 {
		want = 1 // shorthand single-sample form
	}
	if len(out.Classes) != want {
		return nil, fmt.Errorf("serve: server returned %d classes for %d samples", len(out.Classes), want)
	}
	return &out, nil
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() { _ = hresp.Body.Close() }() // best-effort; response already read or failed
	if hresp.StatusCode != http.StatusOK {
		return nil, decodeError(hresp)
	}
	var h Health
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		return nil, fmt.Errorf("serve: decoding health response: %w", err)
	}
	return &h, nil
}

// Models fetches /v1/models, the registry listing.
func (c *Client) Models(ctx context.Context) (*ModelList, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/models", nil)
	if err != nil {
		return nil, err
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() { _ = hresp.Body.Close() }() // best-effort; response already read or failed
	if hresp.StatusCode != http.StatusOK {
		return nil, decodeError(hresp)
	}
	var ml ModelList
	if err := json.NewDecoder(hresp.Body).Decode(&ml); err != nil {
		return nil, fmt.Errorf("serve: decoding model list: %w", err)
	}
	return &ml, nil
}

// Metrics fetches the raw /metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return "", err
	}
	defer func() { _ = hresp.Body.Close() }() // best-effort; response already read or failed
	if hresp.StatusCode != http.StatusOK {
		return "", decodeError(hresp)
	}
	b, err := io.ReadAll(hresp.Body)
	return string(b), err
}

// Sketches fetches the worker's CKMS quantile-sketch snapshots from
// /v1/sketches, keyed by metric base name.
func (c *Client) Sketches(ctx context.Context) (map[string]obs.SketchSnapshot, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/sketches", nil)
	if err != nil {
		return nil, err
	}
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() { _ = hresp.Body.Close() }() // best-effort; response already read or failed
	if hresp.StatusCode != http.StatusOK {
		return nil, decodeError(hresp)
	}
	var out map[string]obs.SketchSnapshot
	if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("serve: decoding /v1/sketches reply: %w", err)
	}
	return out, nil
}

// decodeError turns a non-200 reply into a *StatusError carrying the
// server's message and any Retry-After hint.
func decodeError(resp *http.Response) error {
	st := &StatusError{Code: resp.StatusCode}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
		st.RetryAfter = time.Duration(secs) * time.Second
	}
	var er errorReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&er); err == nil {
		st.Message = er.Error
	}
	return st
}
