package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"

	"srda/internal/obs"
)

// Trainer is the co-located streaming trainer a worker can host: the
// /v1/observe endpoint feeds it labeled samples, and its metrics join
// the worker's /metrics exposition.  internal/online.StreamTrainer is
// the implementation; serve depends only on this interface so the
// online package can (in its tests) drive serve without an import
// cycle.
//
// Refit latency leaks into Observe by design: a synchronous trainer
// refits inside the Observe call that trips a trigger, so the HTTP
// request that delivered the triggering sample waits for the new model
// to publish.  Configure the trainer Async to decouple them.
type Trainer interface {
	// Observe absorbs one dense labeled sample.
	Observe(x []float64, label int) error
	// ObserveSparse absorbs one CSR-form labeled sample.
	ObserveSparse(cols []int, vals []float64, label int) error
	// ObserveCtx is Observe with trace context: a synchronous refit the
	// sample triggers runs under the request's span tree, so the trace
	// that delivered the triggering sample shows the refit it paid for.
	ObserveCtx(ctx context.Context, x []float64, label int) error
	// ObserveSparseCtx is ObserveSparse with trace context.
	ObserveSparseCtx(ctx context.Context, cols []int, vals []float64, label int) error
	// Seen returns the number of samples observed so far.
	Seen() int64
	// Metrics exposes the trainer's instruments (srdaonline_*).
	Metrics() *obs.Registry
}

// LabeledSample is one training example for POST /v1/observe: a Sample
// plus its class label.
type LabeledSample struct {
	Sample
	Label int `json:"label"`
}

// ObserveRequest is the POST /v1/observe payload.
type ObserveRequest struct {
	Samples []LabeledSample `json:"samples"`
}

// ObserveResponse reports how many samples this request absorbed and
// the trainer's total.
type ObserveResponse struct {
	Observed int   `json:"observed"`
	Seen     int64 `json:"seen"`
}

// handleObserve feeds POSTed labeled samples to the co-located trainer.
// Registered only when Options.Trainer is set.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return writeErr(w, http.StatusMethodNotAllowed, "POST required")
	}
	if s.stopped.Load() {
		return writeTypedErr(w, ErrShuttingDown)
	}
	ctx, root := s.startRequestSpan(r.Context(), "observe", r.Header)
	defer root.End()
	var req ObserveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		return writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
	}
	if len(req.Samples) == 0 {
		return writeErr(w, http.StatusBadRequest, "no samples")
	}
	if len(req.Samples) > s.opts.MaxRequestSamples {
		return writeErr(w, http.StatusBadRequest, "%d samples exceeds the per-request cap of %d",
			len(req.Samples), s.opts.MaxRequestSamples)
	}
	tr := s.opts.Trainer
	for i, ls := range req.Samples {
		hasDense, hasSparse := len(ls.Dense) > 0, len(ls.Sparse) > 0
		if hasDense == hasSparse {
			return writeErr(w, http.StatusBadRequest, "sample %d: need exactly one of dense or sparse", i)
		}
		var err error
		if hasDense {
			err = tr.ObserveCtx(ctx, ls.Dense, ls.Label)
		} else {
			// Sort the columns before absorbing: the trainer's streaming
			// statistics accumulate in index order, so a map-ordered row
			// would make the refit depend on Go's per-run map seed.
			cols := make([]int, 0, len(ls.Sparse))
			//srdalint:ignore maprange keys are sorted below before the trainer's float accumulation sees them
			for j := range ls.Sparse {
				cols = append(cols, j)
			}
			sort.Ints(cols)
			vals := make([]float64, len(cols))
			for t, j := range cols {
				vals[t] = ls.Sparse[j]
			}
			err = tr.ObserveSparseCtx(ctx, cols, vals, ls.Label)
		}
		if err != nil {
			// Samples before i were absorbed; the caller sees how far the
			// request got via the error index and the seen total.
			return writeErr(w, http.StatusBadRequest, "sample %d: %v", i, err)
		}
	}
	return writeJSON(w, http.StatusOK, ObserveResponse{
		Observed: len(req.Samples),
		Seen:     tr.Seen(),
	})
}

// Observe posts labeled training samples to a worker's co-located
// streaming trainer (404 unless the server runs with -online).
func (c *Client) Observe(ctx context.Context, samples ...LabeledSample) (*ObserveResponse, error) {
	body, err := json.Marshal(ObserveRequest{Samples: samples})
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/observe", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	obs.InjectTrace(hreq.Header, obs.SpanFromContext(ctx))
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer func() { _ = hresp.Body.Close() }() // best-effort; response already read or failed
	if hresp.StatusCode != http.StatusOK {
		return nil, decodeError(hresp)
	}
	var out ObserveResponse
	if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("serve: decoding observe response: %w", err)
	}
	return &out, nil
}
