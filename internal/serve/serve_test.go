package serve

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"srda/internal/core"
	"srda/internal/mat"
)

// trainBlobs fits a centroided model on well-separated Gaussian blobs and
// returns it with one held-out sample per class.
func trainBlobs(t *testing.T, n, c int, seed int64) (*core.Model, *mat.Dense) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := 60 * c
	x := mat.NewDense(m, n)
	labels := make([]int, m)
	for i := 0; i < m; i++ {
		labels[i] = i % c
		row := x.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		row[0] += 8 * float64(labels[i])
	}
	model, err := core.FitDense(x, labels, c, core.Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.SetCentroids(model.TransformDense(x), labels); err != nil {
		t.Fatal(err)
	}
	probes := mat.NewDense(c, n)
	for k := 0; k < c; k++ {
		row := probes.RowView(k)
		for j := range row {
			row[j] = 0.1 * rng.NormFloat64()
		}
		row[0] += 8 * float64(k)
	}
	return model, probes
}

func newTestServer(t *testing.T, model *core.Model, opts Options) (*Server, *httptest.Server, *Client) {
	t.Helper()
	s, err := New(model, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ts, NewClient(ts.URL)
}

func ctxT(t *testing.T) context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestNewRejectsBadModels(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil model accepted")
	}
	model, _ := trainBlobs(t, 8, 3, 1)
	model.Centroids = nil
	if _, err := New(model, Options{}); err == nil {
		t.Fatal("centroid-less model accepted")
	}
}

func TestEndToEndPredict(t *testing.T) {
	model, probes := trainBlobs(t, 12, 4, 2)
	_, _, client := newTestServer(t, model, Options{})
	ctx := ctxT(t)

	// Dense, one sample per class.
	for k := 0; k < probes.Rows; k++ {
		got, err := client.PredictOne(ctx, DenseSample(probes.RowView(k)))
		if err != nil {
			t.Fatal(err)
		}
		if want := model.PredictVec(probes.RowView(k)); got != want {
			t.Fatalf("class %d: got %d, model says %d", k, got, want)
		}
	}

	// Multi-sample mixed dense + sparse in one request.
	sp := map[int]float64{}
	for j, v := range probes.RowView(1) {
		if v != 0 {
			sp[j] = v
		}
	}
	classes, embs, err := client.PredictEmbed(ctx, DenseSample(probes.RowView(0)), SparseSample(sp))
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 || len(embs) != 2 {
		t.Fatalf("got %d classes, %d embeddings", len(classes), len(embs))
	}
	if classes[0] != model.PredictVec(probes.RowView(0)) || classes[1] != model.PredictVec(probes.RowView(1)) {
		t.Fatalf("mixed batch misclassified: %v", classes)
	}
	wantEmb := model.TransformVec(probes.RowView(1), nil)
	for d := range wantEmb {
		if diff := embs[1][d] - wantEmb[d]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("embedding differs at dim %d: %g vs %g", d, embs[1][d], wantEmb[d])
		}
	}
}

func TestHealthz(t *testing.T) {
	model, _ := trainBlobs(t, 10, 3, 3)
	_, _, client := newTestServer(t, model, Options{})
	h, err := client.Health(ctxT(t))
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Features != 10 || h.Classes != 3 || h.Dim != 2 || h.ModelSeq != 1 {
		t.Fatalf("unexpected health: %+v", h)
	}
}

func TestBadRequests(t *testing.T) {
	model, probes := trainBlobs(t, 10, 3, 4)
	_, ts, _ := newTestServer(t, model, Options{MaxRequestSamples: 2})
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	cases := []struct {
		name, body string
		want       int
	}{
		{"bad json", "{", http.StatusBadRequest},
		{"no samples", "{}", http.StatusBadRequest},
		{"wrong dense width", `{"dense":[1,2,3]}`, http.StatusBadRequest},
		{"sparse index out of range", `{"sparse":{"99":1}}`, http.StatusBadRequest},
		{"negative sparse index", `{"sparse":{"-1":1}}`, http.StatusBadRequest},
		{"both dense and sparse", `{"samples":[{"dense":[1,1,1,1,1,1,1,1,1,1],"sparse":{"0":1}}]}`, http.StatusBadRequest},
		{"too many samples", `{"samples":[{"sparse":{"0":1}},{"sparse":{"0":1}},{"sparse":{"0":1}}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if got := post(tc.body); got != tc.want {
			t.Errorf("%s: got http %d, want %d", tc.name, got, tc.want)
		}
	}
	// Shorthand single-sample form works.
	body, err := json.Marshal(map[string]any{"dense": probes.RowView(2)})
	if err != nil {
		t.Fatal(err)
	}
	if got := post(string(body)); got != http.StatusOK {
		t.Fatalf("shorthand form: http %d", got)
	}
	// Wrong methods.
	resp, err := http.Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET predict: http %d", resp.StatusCode)
	}
}

// TestMicroBatchCoalescing pins the batcher's size trigger: with MaxWait
// effectively infinite and MaxBatch=4, four concurrent single-sample
// requests must be answered by exactly one inference batch.
func TestMicroBatchCoalescing(t *testing.T) {
	model, probes := trainBlobs(t, 10, 4, 5)
	s, _, client := newTestServer(t, model, Options{MaxBatch: 4, MaxWait: time.Hour})
	ctx := ctxT(t)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	got := make([]int, 4)
	for k := 0; k < 4; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			got[k], errs[k] = client.PredictOne(ctx, DenseSample(probes.RowView(k)))
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", k, err)
		}
		if want := model.PredictVec(probes.RowView(k)); got[k] != want {
			t.Fatalf("request %d: got class %d, want %d", k, got[k], want)
		}
	}
	if b := s.metrics.batches.Value(); b != 1 {
		t.Fatalf("expected exactly 1 inference batch, dispatcher ran %d", b)
	}
	if n := s.metrics.samples.Value(); n != 4 {
		t.Fatalf("expected 4 samples predicted, got %d", n)
	}
}

func TestHotReloadSwapAndWatch(t *testing.T) {
	modelA, probes := trainBlobs(t, 10, 3, 6)
	// Model B: same shapes, but classes relabeled so predictions flip.
	rng := rand.New(rand.NewSource(7))
	m := 180
	x := mat.NewDense(m, 10)
	labels := make([]int, m)
	for i := 0; i < m; i++ {
		labels[i] = (i%3 + 1) % 3 // rotated labels relative to blob position
		row := x.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		row[0] += 8 * float64(i%3)
	}
	modelB, err := core.FitDense(x, labels, 3, core.Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := modelB.SetCentroids(modelB.TransformDense(x), labels); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "model.bin")
	if err := modelA.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s, _, client := newTestServer(t, modelA, Options{})
	ctx := ctxT(t)

	if _, err := s.Swap(nil); err == nil {
		t.Fatal("Swap(nil) accepted")
	}

	// Direct swap.
	seq, err := s.Swap(modelB)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 || s.ModelSeq() != 2 {
		t.Fatalf("seq after swap = %d", seq)
	}
	if got, _ := client.PredictOne(ctx, DenseSample(probes.RowView(0))); got != modelB.PredictVec(probes.RowView(0)) {
		t.Fatal("predictions not served from swapped model")
	}

	// File watch: overwrite the model file, expect an automatic reload.
	stopWatch := s.WatchFile(path, 5*time.Millisecond)
	defer stopWatch()
	time.Sleep(20 * time.Millisecond) // ensure a fresh mtime on coarse filesystems
	if err := modelA.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		h, err := client.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.ModelSeq >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("watcher never reloaded the rewritten model file")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got, _ := client.PredictOne(ctx, DenseSample(probes.RowView(1))); got != modelA.PredictVec(probes.RowView(1)) {
		t.Fatal("predictions not served from watched-in model")
	}
	if s.metrics.reloads.Value() < 2 {
		t.Fatalf("reloads counter = %d", s.metrics.reloads.Value())
	}
}

func TestReloadFromFileErrors(t *testing.T) {
	model, _ := trainBlobs(t, 10, 3, 8)
	s, _, _ := newTestServer(t, model, Options{})
	if _, err := s.ReloadFromFile(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("reload from missing file succeeded")
	}
	if s.metrics.reloadErrors.Value() != 1 {
		t.Fatalf("reloadErrors = %d", s.metrics.reloadErrors.Value())
	}
	if s.ModelSeq() != 1 {
		t.Fatal("failed reload bumped the model seq")
	}
}

// TestQueueFullRejects drives enqueue directly (no dispatcher attached) so
// the overflow path is deterministic.
func TestQueueFullRejects(t *testing.T) {
	s := &Server{opts: Options{}.withDefaults(), queue: make(chan *item, 1)}
	s.metrics = newMetrics(func() int64 { return int64(len(s.queue)) }, func() int64 { return 0 })
	p := newPending(3, false)
	items := make([]*item, 3)
	for i := range items {
		items[i] = &item{p: p, idx: i, dense: []float64{1}, width: 1}
	}
	s.enqueue(p, items)
	if err := p.failure(); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if got := s.metrics.queueRejects.Value(); got != 2 {
		t.Fatalf("queueRejects = %d, want 2", got)
	}
	if len(s.queue) != 1 {
		t.Fatalf("queued %d items, want 1", len(s.queue))
	}
}

// TestModelShapeConflict exercises the mid-flight reload guard: items
// validated against one model must fail cleanly if a swapped model has a
// different feature count by the time their batch runs.
func TestModelShapeConflict(t *testing.T) {
	modelA, _ := trainBlobs(t, 10, 3, 9)
	s, _, _ := newTestServer(t, modelA, Options{MaxWait: time.Hour})
	modelB, _ := trainBlobs(t, 6, 3, 10) // different feature count
	if _, err := s.Swap(modelB); err != nil {
		t.Fatal(err)
	}
	p := newPending(1, false)
	it := &item{p: p, idx: 0, model: DefaultModelName, dense: make([]float64, 10), width: 10}
	s.runBatch([]*item{it})
	select {
	case <-p.done:
	case <-time.After(time.Second):
		t.Fatal("pending never settled")
	}
	if err := p.failure(); err != ErrModelShape {
		t.Fatalf("err = %v, want ErrModelShape", err)
	}
}

func TestMetricsExposition(t *testing.T) {
	model, probes := trainBlobs(t, 10, 3, 11)
	_, _, client := newTestServer(t, model, Options{})
	ctx := ctxT(t)
	if _, err := client.Predict(ctx, DenseSample(probes.RowView(0)), DenseSample(probes.RowView(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Health(ctx); err != nil {
		t.Fatal(err)
	}
	text, err := client.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`srdaserve_requests_total{endpoint="/v1/predict",code="200"} 1`,
		`srdaserve_requests_total{endpoint="/healthz",code="200"} 1`,
		`srdaserve_samples_total 2`,
		`srdaserve_batches_total`,
		`srdaserve_batch_size_bucket{le="2"}`,
		`srdaserve_request_duration_seconds_count 1`,
		`srdaserve_model_seq 1`,
		`srdaserve_queue_depth 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q\n---\n%s", want, text)
		}
	}
}

func TestCloseDrainsAndRejects(t *testing.T) {
	model, probes := trainBlobs(t, 10, 3, 12)
	s, err := New(model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	ctx := ctxT(t)
	if _, err := client.PredictOne(ctx, DenseSample(probes.RowView(0))); err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(cctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(cctx); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
	if _, err := client.PredictOne(ctx, DenseSample(probes.RowView(0))); err == nil {
		t.Fatal("predict after Close succeeded")
	}
}
