package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"srda/internal/core"
	"srda/internal/mat"
	"srda/internal/obs"
)

// fakeTrainer records observed samples and exposes one counter, standing
// in for internal/online.StreamTrainer (serve only sees the interface).
type fakeTrainer struct {
	mu      sync.Mutex
	dense   [][]float64
	sparse  int
	labels  []int
	reg     *obs.Registry
	samples *obs.Counter
	fail    bool
}

func newFakeTrainer() *fakeTrainer {
	reg := obs.NewRegistry()
	return &fakeTrainer{
		reg:     reg,
		samples: reg.NewCounter("srdaonline_samples_total", "test counter"),
	}
}

func (f *fakeTrainer) Observe(x []float64, label int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return fmt.Errorf("trainer rejected the sample")
	}
	f.dense = append(f.dense, append([]float64(nil), x...))
	f.labels = append(f.labels, label)
	f.samples.Inc()
	return nil
}

func (f *fakeTrainer) ObserveSparse(cols []int, vals []float64, label int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return fmt.Errorf("trainer rejected the sample")
	}
	f.sparse++
	f.labels = append(f.labels, label)
	f.samples.Inc()
	return nil
}

func (f *fakeTrainer) ObserveCtx(_ context.Context, x []float64, label int) error {
	return f.Observe(x, label)
}

func (f *fakeTrainer) ObserveSparseCtx(_ context.Context, cols []int, vals []float64, label int) error {
	return f.ObserveSparse(cols, vals, label)
}

func (f *fakeTrainer) Seen() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.labels))
}

func (f *fakeTrainer) Metrics() *obs.Registry { return f.reg }

func observeModel(t *testing.T) *core.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	x := mat.NewDense(30, 4)
	labels := make([]int, 30)
	for i := range labels {
		labels[i] = i % 2
		row := x.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64() + 3*float64(labels[i])
		}
	}
	m, err := core.FitDense(x, labels, 2, core.Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestObserveEndpoint: with a trainer, /v1/observe absorbs dense and
// sparse samples, reports totals, and the trainer's metrics join the
// exposition; bad samples get a 400 naming the offender.
func TestObserveEndpoint(t *testing.T) {
	tr := newFakeTrainer()
	s, err := New(observeModel(t), Options{Trainer: tr})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close(context.Background()) }()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := NewClient(hs.URL)

	resp, err := c.Observe(context.Background(),
		LabeledSample{Sample: Sample{Dense: []float64{1, 2, 3, 4}}, Label: 0},
		LabeledSample{Sample: Sample{Sparse: map[int]float64{1: 2.5}}, Label: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Observed != 2 || resp.Seen != 2 {
		t.Fatalf("observed/seen = %d/%d, want 2/2", resp.Observed, resp.Seen)
	}
	if len(tr.dense) != 1 || tr.sparse != 1 || tr.labels[1] != 1 {
		t.Fatalf("trainer saw dense=%d sparse=%d labels=%v", len(tr.dense), tr.sparse, tr.labels)
	}

	if _, err := c.Observe(context.Background(),
		LabeledSample{Label: 0}, // neither dense nor sparse
	); err == nil || !strings.Contains(err.Error(), "sample 0") {
		t.Fatalf("malformed sample err = %v", err)
	}
	tr.fail = true
	if _, err := c.Observe(context.Background(),
		LabeledSample{Sample: Sample{Dense: []float64{1, 2, 3, 4}}, Label: 0},
	); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("trainer rejection err = %v", err)
	}

	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "srdaonline_samples_total 2") {
		t.Fatalf("trainer metrics missing from exposition:\n%s", text)
	}
}

// TestObserveUnregisteredWithoutTrainer: no trainer, no endpoint, and
// the exposition carries no trainer instruments.
func TestObserveUnregisteredWithoutTrainer(t *testing.T) {
	s, err := New(observeModel(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close(context.Background()) }()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	c := NewClient(hs.URL)

	_, err = c.Observe(context.Background(),
		LabeledSample{Sample: Sample{Dense: []float64{1, 2, 3, 4}}, Label: 0})
	var st *StatusError
	if !errors.As(err, &st) || st.Code != http.StatusNotFound {
		t.Fatalf("observe without trainer err = %v, want 404", err)
	}
	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text, "srdaonline_") {
		t.Fatalf("trainer metrics leaked into trainerless exposition:\n%s", text)
	}
}

