package serve

import (
	"strings"
	"testing"
)

// TestMetricsExpositionGolden pins the /metrics output byte-for-byte.
// This is the compatibility contract for the migration onto internal/obs:
// any change to metric names, help strings, ordering, label rendering, or
// bucket formatting is an exposition regression and fails here.  The
// observed values are dyadic rationals so the %g-rendered sums are exact.
func TestMetricsExpositionGolden(t *testing.T) {
	mx := newMetrics(func() int64 { return 3 }, func() int64 { return 2 })
	mx.requests.With("/v1/predict", "200").Inc()
	mx.requests.With("/v1/predict", "200").Inc()
	mx.requests.With("/v1/predict", "400").Inc()
	mx.requests.With("/healthz", "200").Inc()
	mx.errors.With("/v1/predict").Inc()
	mx.observeLatency(0.001953125) // 2^-9: lands in the le="0.0025" bucket
	mx.observeLatency(0.25)        // exactly on a bound: le is inclusive
	mx.batchSize.Observe(2)
	mx.batchSize.Observe(5)
	mx.samples.Add(7)
	mx.batches.Add(2)
	mx.reloads.Inc()
	mx.queueRejects.Add(4)

	var sb strings.Builder
	mx.writeProm(&sb)
	const golden = `# HELP srdaserve_requests_total HTTP requests by endpoint and status code.
# TYPE srdaserve_requests_total counter
srdaserve_requests_total{endpoint="/healthz",code="200"} 1
srdaserve_requests_total{endpoint="/v1/predict",code="200"} 2
srdaserve_requests_total{endpoint="/v1/predict",code="400"} 1
# HELP srdaserve_errors_total Failed requests by endpoint.
# TYPE srdaserve_errors_total counter
srdaserve_errors_total{endpoint="/v1/predict"} 1
# HELP srdaserve_request_duration_seconds Predict latency from receipt to reply.
# TYPE srdaserve_request_duration_seconds histogram
srdaserve_request_duration_seconds_bucket{le="0.0005"} 0
srdaserve_request_duration_seconds_bucket{le="0.001"} 0
srdaserve_request_duration_seconds_bucket{le="0.0025"} 1
srdaserve_request_duration_seconds_bucket{le="0.005"} 1
srdaserve_request_duration_seconds_bucket{le="0.01"} 1
srdaserve_request_duration_seconds_bucket{le="0.025"} 1
srdaserve_request_duration_seconds_bucket{le="0.05"} 1
srdaserve_request_duration_seconds_bucket{le="0.1"} 1
srdaserve_request_duration_seconds_bucket{le="0.25"} 2
srdaserve_request_duration_seconds_bucket{le="0.5"} 2
srdaserve_request_duration_seconds_bucket{le="1"} 2
srdaserve_request_duration_seconds_bucket{le="2.5"} 2
srdaserve_request_duration_seconds_bucket{le="+Inf"} 2
srdaserve_request_duration_seconds_sum 0.251953125
srdaserve_request_duration_seconds_count 2
# HELP srdaserve_batch_size Samples coalesced per inference batch.
# TYPE srdaserve_batch_size histogram
srdaserve_batch_size_bucket{le="1"} 0
srdaserve_batch_size_bucket{le="2"} 1
srdaserve_batch_size_bucket{le="4"} 1
srdaserve_batch_size_bucket{le="8"} 2
srdaserve_batch_size_bucket{le="16"} 2
srdaserve_batch_size_bucket{le="32"} 2
srdaserve_batch_size_bucket{le="64"} 2
srdaserve_batch_size_bucket{le="128"} 2
srdaserve_batch_size_bucket{le="256"} 2
srdaserve_batch_size_bucket{le="+Inf"} 2
srdaserve_batch_size_sum 7
srdaserve_batch_size_count 2
# HELP srdaserve_samples_total Samples predicted.
# TYPE srdaserve_samples_total counter
srdaserve_samples_total 7
# HELP srdaserve_batches_total Inference batches dispatched.
# TYPE srdaserve_batches_total counter
srdaserve_batches_total 2
# HELP srdaserve_model_reloads_total Successful hot reloads.
# TYPE srdaserve_model_reloads_total counter
srdaserve_model_reloads_total 1
# HELP srdaserve_model_reload_errors_total Failed hot-reload attempts.
# TYPE srdaserve_model_reload_errors_total counter
srdaserve_model_reload_errors_total 0
# HELP srdaserve_queue_rejects_total Samples rejected because the queue was full.
# TYPE srdaserve_queue_rejects_total counter
srdaserve_queue_rejects_total 4
# HELP srdaserve_queue_depth Samples currently queued for dispatch.
# TYPE srdaserve_queue_depth gauge
srdaserve_queue_depth 3
# HELP srdaserve_model_seq Monotonic sequence number of the live model.
# TYPE srdaserve_model_seq gauge
srdaserve_model_seq 2
# HELP srdaserve_request_latency_p50 Streaming median predict latency in seconds (CKMS sketch, 1% rank error).
# TYPE srdaserve_request_latency_p50 gauge
srdaserve_request_latency_p50 0.001953125
# HELP srdaserve_request_latency_p95 Streaming 95th-percentile predict latency in seconds (CKMS sketch, 0.5% rank error).
# TYPE srdaserve_request_latency_p95 gauge
srdaserve_request_latency_p95 0.25
# HELP srdaserve_request_latency_p99 Streaming 99th-percentile predict latency in seconds (CKMS sketch, 0.1% rank error).
# TYPE srdaserve_request_latency_p99 gauge
srdaserve_request_latency_p99 0.25
`
	if sb.String() != golden {
		t.Fatalf("exposition regression.\n--- got ---\n%s\n--- want ---\n%s", sb.String(), golden)
	}
}
