// Package serve is the online prediction subsystem: a JSON-over-HTTP
// server that turns a trained SRDA model into a service.  Incoming
// samples — dense vectors or sparse {index: value} maps, one or many per
// request — are micro-batched across concurrent requests and classified
// through the model's GEMM-lowered batch path, the way a production
// inference stack amortizes dispatch overhead.  The server supports
// atomic hot reload of the model file (in-flight batches finish on the
// model they started with), graceful drain on shutdown, and Prometheus
// text-format metrics.
//
// Endpoints:
//
//	POST /v1/predict  classify samples (optionally returning embeddings)
//	GET  /healthz     liveness plus live-model metadata
//	GET  /metrics     Prometheus text exposition
//
// Use Client for typed access from Go.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"srda/internal/core"
	"srda/internal/obs"
)

// Options tunes the server.  The zero value gets sensible defaults from
// New.
type Options struct {
	// MaxBatch caps the samples coalesced into one inference batch
	// (default 64).
	MaxBatch int
	// MaxWait bounds how long the batcher holds a non-full batch open
	// waiting for more samples (default 2ms).
	MaxWait time.Duration
	// Workers is the inference worker-pool size (default GOMAXPROCS).
	// The same value bounds the kernel sharding inside the model's batch
	// projection (bitwise-identical at any setting); the shared pool in
	// internal/pool keeps total kernel concurrency bounded even when all
	// inference workers project at once.
	Workers int
	// QueueDepth caps queued samples; past it requests get 503
	// (default 4096).
	QueueDepth int
	// MaxRequestSamples caps samples per HTTP request (default 1024).
	MaxRequestSamples int
	// MaxBodyBytes caps the request body (default 32 MiB).
	MaxBodyBytes int64
	// Tracer records request-scoped span trees (request → batch → kernel)
	// for /v1/predict.  When nil, New creates one whose ring holds
	// TraceCapacity completed spans; pass an explicit tracer to share one
	// ring across servers or to inject a test clock.
	Tracer *obs.Tracer
	// TraceCapacity sizes the ring of the tracer New creates when Tracer
	// is nil (default obs.DefaultTraceCapacity).
	TraceCapacity int
	// Logger receives the server's structured logs: hot-reload outcomes
	// and rate-limited queue-overflow warnings.  Nil disables logging.
	Logger *obs.Logger
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4096
	}
	if o.MaxRequestSamples <= 0 {
		o.MaxRequestSamples = 1024
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	return o
}

// modelState is the immutable unit the hot-reload path swaps atomically.
type modelState struct {
	m        *core.Model
	seq      uint64
	loadedAt time.Time
}

// Server serves predictions from an atomically swappable SRDA model.
type Server struct {
	opts    Options
	model   atomic.Pointer[modelState]
	seq     atomic.Uint64
	queue   chan *item
	workCh  chan []*item
	stop    chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup
	watchWG sync.WaitGroup
	metrics *metrics
	mux     *http.ServeMux
	start   time.Time
	tracer  *obs.Tracer
	logger  *obs.Logger
}

// New starts the dispatcher (batcher + worker pool) around an initial
// model, which must carry class centroids (i.e. come from Fit/FitCSR or a
// file they saved).
func New(m *core.Model, opts Options) (*Server, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	if m.Centroids == nil {
		return nil, fmt.Errorf("serve: model carries no class centroids; retrain with srda.Fit/FitCSR or srdatrain")
	}
	opts = opts.withDefaults()
	s := &Server{
		opts:   opts,
		queue:  make(chan *item, opts.QueueDepth),
		workCh: make(chan []*item, opts.Workers),
		stop:   make(chan struct{}),
		mux:    http.NewServeMux(),
		start:  time.Now(),
		tracer: opts.Tracer,
		logger: opts.Logger,
	}
	if s.tracer == nil {
		s.tracer = obs.NewTracer(opts.TraceCapacity)
	}
	s.metrics = newMetrics(
		func() int64 { return int64(len(s.queue)) },
		func() int64 { return int64(s.ModelSeq()) },
	)
	m.Workers = opts.Workers
	s.model.Store(&modelState{m: m, seq: s.seq.Add(1), loadedAt: time.Now()})
	s.mux.HandleFunc("/v1/predict", s.instrument("/v1/predict", s.handlePredict))
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.batcher()
	}()
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the HTTP handler exposing all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's metrics registry, so a debug listener can
// expose it alongside the process-wide obs.Default() registry.
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }

// Tracer returns the server's request tracer; a debug listener exports
// its ring at /debug/traces, and shutdown flushes it to -trace-out.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Logger returns the server's structured logger (nil when logging is
// disabled); the watch and shutdown paths in cmd/srdaserve share it.
func (s *Server) Logger() *obs.Logger { return s.logger }

// Model returns the live model.
func (s *Server) Model() *core.Model { return s.model.Load().m }

// ModelSeq returns the live model's monotonic sequence number (1 for the
// model the server started with; each successful Swap increments it).
func (s *Server) ModelSeq() uint64 { return s.model.Load().seq }

// Swap atomically replaces the live model and returns its sequence
// number.  Batches already dispatched keep the model pointer they loaded,
// so in-flight requests finish on the old model.
func (s *Server) Swap(m *core.Model) (uint64, error) {
	if m == nil || m.Centroids == nil {
		return 0, fmt.Errorf("serve: refusing to swap in a model without centroids")
	}
	m.Workers = s.opts.Workers
	st := &modelState{m: m, seq: s.seq.Add(1), loadedAt: time.Now()}
	s.model.Store(st)
	s.metrics.reloads.Inc()
	return st.seq, nil
}

// Close stops the dispatcher, draining already-queued samples first.  Call
// it after the HTTP listener has stopped accepting requests (e.g. after
// http.Server.Shutdown) so no handler is still enqueueing; handlers caught
// mid-wait are released with a 503.  The context bounds the drain.
func (s *Server) Close(ctx context.Context) error {
	if !s.stopped.CompareAndSwap(false, true) {
		return nil
	}
	close(s.stop)
	s.watchWG.Wait()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain incomplete: %w", ctx.Err())
	}
}

// instrument wraps a handler with request/error counting and, for the
// predict endpoint, latency observation.
func (s *Server) instrument(endpoint string, h func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		code := h(w, r)
		s.metrics.requests.With(endpoint, strconv.Itoa(code)).Inc()
		if code >= 400 {
			s.metrics.errors.With(endpoint).Inc()
		}
		if endpoint == "/v1/predict" {
			s.metrics.observeLatency(time.Since(begin).Seconds())
		}
	}
}

// Sample is one input vector: exactly one of Dense or Sparse must be set.
// Sparse maps feature index → value (JSON object keys are strings on the
// wire; encoding/json converts).
type Sample struct {
	Dense  []float64       `json:"dense,omitempty"`
	Sparse map[int]float64 `json:"sparse,omitempty"`
}

// PredictRequest is the POST /v1/predict payload.  A single sample may
// also be sent shorthand as a bare Sample object.
type PredictRequest struct {
	Samples []Sample `json:"samples"`
	// Embed asks for the (c−1)-dimensional embeddings alongside classes.
	Embed bool `json:"embed,omitempty"`
	Sample
}

// PredictResponse is the predict reply: Classes[i] answers Samples[i].
type PredictResponse struct {
	Classes    []int       `json:"classes"`
	Embeddings [][]float64 `json:"embeddings,omitempty"`
	// ModelSeq identifies which loaded model produced the answer.
	ModelSeq uint64 `json:"model_seq"`
}

// Health is the /healthz reply.
type Health struct {
	Status        string  `json:"status"`
	Features      int     `json:"features"`
	Classes       int     `json:"classes"`
	Dim           int     `json:"dim"`
	ModelSeq      uint64  `json:"model_seq"`
	ModelLoadedAt string  `json:"model_loaded_at"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	QueueDepth    int     `json:"queue_depth"`
}

type errorReply struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// A failed write means the client hung up; there is nobody to tell.
	_ = json.NewEncoder(w).Encode(v)
	return code
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) int {
	return writeJSON(w, code, errorReply{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodPost {
		return writeErr(w, http.StatusMethodNotAllowed, "POST required")
	}
	if s.stopped.Load() {
		return writeErr(w, http.StatusServiceUnavailable, "server shutting down")
	}
	ctx, root := s.tracer.StartRoot(r.Context(), "request")
	defer root.End()
	p, items, code := s.parsePredict(ctx, w, r)
	if p == nil {
		return code
	}
	p.span = root
	_, queueSp := obs.StartSpan(ctx, "queue")
	s.enqueue(p, items)
	select {
	case <-p.done:
	case <-r.Context().Done():
		queueSp.End()
		return http.StatusServiceUnavailable // client gone; nothing to write
	case <-s.stop:
		queueSp.End()
		return writeErr(w, http.StatusServiceUnavailable, "server shutting down")
	}
	queueSp.End()
	if err := p.failure(); err != nil {
		code := http.StatusServiceUnavailable
		if err == errModelShape {
			code = http.StatusConflict
		}
		return writeErr(w, code, "%v", err)
	}
	return writeJSON(w, http.StatusOK, PredictResponse{
		Classes:    p.classes,
		Embeddings: p.embeddings,
		ModelSeq:   p.modelSeq.Load(),
	})
}

// parsePredict decodes and validates one predict request under a "parse"
// span, returning the pending, its dispatcher items, and the HTTP status.
// On failure the error reply is already written and pending is nil.
func (s *Server) parsePredict(ctx context.Context, w http.ResponseWriter, r *http.Request) (*pending, []*item, int) {
	_, sp := obs.StartSpan(ctx, "parse")
	defer sp.End()
	var req PredictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		return nil, nil, writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
	}
	if len(req.Samples) == 0 && (len(req.Dense) > 0 || len(req.Sparse) > 0) {
		req.Samples = []Sample{req.Sample}
	}
	if len(req.Samples) == 0 {
		return nil, nil, writeErr(w, http.StatusBadRequest, "no samples")
	}
	if len(req.Samples) > s.opts.MaxRequestSamples {
		return nil, nil, writeErr(w, http.StatusBadRequest, "%d samples exceeds the per-request cap of %d", len(req.Samples), s.opts.MaxRequestSamples)
	}
	n := s.Model().W.Rows
	p := newPending(len(req.Samples), req.Embed)
	items := make([]*item, len(req.Samples))
	for i, smp := range req.Samples {
		it, err := buildItem(p, i, smp, n)
		if err != nil {
			return nil, nil, writeErr(w, http.StatusBadRequest, "sample %d: %v", i, err)
		}
		items[i] = it
	}
	return p, items, http.StatusOK
}

// buildItem validates one sample against the live feature count n and
// converts it to dispatcher form.
func buildItem(p *pending, idx int, smp Sample, n int) (*item, error) {
	hasDense, hasSparse := len(smp.Dense) > 0, len(smp.Sparse) > 0
	if hasDense == hasSparse {
		return nil, fmt.Errorf("need exactly one of dense or sparse")
	}
	if hasDense {
		if len(smp.Dense) != n {
			return nil, fmt.Errorf("dense sample has %d features, model expects %d", len(smp.Dense), n)
		}
		return &item{p: p, idx: idx, dense: smp.Dense, width: len(smp.Dense)}, nil
	}
	cols := make([]int, 0, len(smp.Sparse))
	for j := range smp.Sparse {
		if j < 0 {
			return nil, fmt.Errorf("negative feature index %d", j)
		}
		if j >= n {
			return nil, fmt.Errorf("feature index %d out of range for a %d-feature model", j, n)
		}
		cols = append(cols, j)
	}
	it := &item{p: p, idx: idx, cols: cols, vals: make([]float64, len(cols))}
	for t, j := range cols {
		it.vals[t] = smp.Sparse[j]
		if j+1 > it.width {
			it.width = j + 1
		}
	}
	return it, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return writeErr(w, http.StatusMethodNotAllowed, "GET required")
	}
	st := s.model.Load()
	return writeJSON(w, http.StatusOK, Health{
		Status:        "ok",
		Features:      st.m.W.Rows,
		Classes:       st.m.NumClasses,
		Dim:           st.m.Dim(),
		ModelSeq:      st.seq,
		ModelLoadedAt: st.loadedAt.UTC().Format(time.RFC3339Nano),
		UptimeSeconds: time.Since(s.start).Seconds(),
		QueueDepth:    len(s.queue),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return writeErr(w, http.StatusMethodNotAllowed, "GET required")
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	w.WriteHeader(http.StatusOK)
	s.metrics.writeProm(w)
	return http.StatusOK
}
