// Package serve is the worker role of the serving tier: a JSON-over-HTTP
// server that turns trained SRDA models into a service.  A worker is
// backed by an internal/registry model store holding many named,
// versioned models per process (multi-tenant); requests select a model
// by name and default to the worker's default model, so the single-model
// deployment from PR 1 keeps working unchanged.  Incoming samples —
// dense vectors or sparse {index: value} maps, one or many per request —
// are micro-batched across concurrent requests and classified through
// each model's GEMM-lowered batch path, the way a production inference
// stack amortizes dispatch overhead.  The server supports atomic model
// publish/rollback and hot reload (in-flight batches finish on the
// version they started with), graceful drain on shutdown, and Prometheus
// text-format metrics.
//
// Endpoints:
//
//	POST /v1/predict  classify samples (optionally returning embeddings)
//	GET  /v1/models   list the registry's live models
//	GET  /healthz     liveness plus live-model metadata and p99 latency
//	GET  /metrics     Prometheus text exposition (serve + registry)
//
// Use Client for typed access from Go over HTTP, or Server.Predict for
// the in-process transport internal/router uses in co-located mode.
// See doc/SHARDING.md for the router/worker topology.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"srda/internal/core"
	"srda/internal/obs"
	"srda/internal/registry"
)

// DefaultModelName is the registry name used when neither the server
// options nor the request specify a model.
const DefaultModelName = "default"

// Options tunes the server.  The zero value gets sensible defaults from
// New.
type Options struct {
	// MaxBatch caps the samples coalesced into one inference batch
	// (default 64).
	MaxBatch int
	// MaxWait bounds how long the batcher holds a non-full batch open
	// waiting for more samples (default 2ms).
	MaxWait time.Duration
	// Workers is the inference worker-pool size (default GOMAXPROCS).
	// The same value bounds the kernel sharding inside the model's batch
	// projection (bitwise-identical at any setting); the shared pool in
	// internal/pool keeps total kernel concurrency bounded even when all
	// inference workers project at once.
	Workers int
	// QueueDepth caps queued samples; past it requests get 503
	// (default 4096).
	QueueDepth int
	// MaxRequestSamples caps samples per HTTP request (default 1024).
	MaxRequestSamples int
	// MaxBodyBytes caps the request body (default 32 MiB).
	MaxBodyBytes int64
	// Registry, when non-nil, backs the server with a caller-owned
	// multi-tenant model store (co-located workers share one).  When nil,
	// New creates a private registry holding just the initial model.
	Registry *registry.Registry
	// DefaultModel names the registry entry served when a request does
	// not specify one (default DefaultModelName); Swap, ReloadFromFile,
	// and WatchFile publish to it.
	DefaultModel string
	// Tracer records request-scoped span trees (request → batch → kernel)
	// for /v1/predict.  When nil, New creates one whose ring holds
	// TraceCapacity completed spans; pass an explicit tracer to share one
	// ring across servers or to inject a test clock.
	Tracer *obs.Tracer
	// TraceCapacity sizes the ring of the tracer New creates when Tracer
	// is nil (default obs.DefaultTraceCapacity).
	TraceCapacity int
	// Logger receives the server's structured logs: hot-reload outcomes
	// and rate-limited queue-overflow warnings.  Nil disables logging.
	Logger *obs.Logger
	// Trainer, when non-nil, co-locates a streaming trainer with the
	// worker: POST /v1/observe feeds it labeled samples and its
	// srdaonline_* instruments join the /metrics exposition.  The trainer
	// should publish into the same Registry this server reads, closing
	// the train-while-serving loop in one process.  Nil (the default)
	// leaves the endpoint unregistered and the exposition unchanged.
	Trainer Trainer
	// Flight, when non-nil, is the process flight recorder: predict
	// latencies feed its p99-breach trigger and queue overflow fires its
	// queue_full trigger.  Nil disables both (no-op calls).
	Flight *obs.FlightRecorder
	// Exemplars, when non-nil, links the predict-latency histogram to an
	// exemplar store so latency outliers carry the TraceID that produced
	// them (served at /debug/exemplars by cmd/srdaserve).  Stays outside
	// the metrics registry: the /metrics exposition is unchanged.
	Exemplars *obs.ExemplarStore
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 64
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4096
	}
	if o.MaxRequestSamples <= 0 {
		o.MaxRequestSamples = 1024
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 32 << 20
	}
	if o.DefaultModel == "" {
		o.DefaultModel = DefaultModelName
	}
	return o
}

// Server serves predictions from an atomically swappable set of SRDA
// models held in a registry.
type Server struct {
	opts    Options
	reg     *registry.Registry
	queue   chan *item
	workCh  chan []*item
	stop    chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup
	watchWG sync.WaitGroup
	metrics *metrics
	mux     *http.ServeMux
	start   time.Time
	tracer  *obs.Tracer
	logger  *obs.Logger
}

// New starts the dispatcher (batcher + worker pool).  When opts.Registry
// is nil, m becomes the registry's default model and must carry class
// centroids (i.e. come from Fit/FitCSR or a file they saved); with a
// caller-owned registry m may be nil and requests are answered from
// whatever the registry holds.
func New(m *core.Model, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	reg := opts.Registry
	if reg == nil {
		if m == nil {
			return nil, fmt.Errorf("serve: nil model")
		}
		reg = registry.New(registry.Options{Workers: opts.Workers, Logger: opts.Logger})
	}
	if m != nil {
		if m.Centroids == nil {
			return nil, fmt.Errorf("serve: model carries no class centroids; retrain with srda.Fit/FitCSR or srdatrain")
		}
		m.Workers = opts.Workers
		if _, err := reg.Publish(opts.DefaultModel, m); err != nil {
			return nil, err
		}
	}
	s := &Server{
		opts:   opts,
		reg:    reg,
		queue:  make(chan *item, opts.QueueDepth),
		workCh: make(chan []*item, opts.Workers),
		stop:   make(chan struct{}),
		mux:    http.NewServeMux(),
		start:  time.Now(),
		tracer: opts.Tracer,
		logger: opts.Logger,
	}
	if s.tracer == nil {
		s.tracer = obs.NewTracer(opts.TraceCapacity)
	}
	s.metrics = newMetrics(
		func() int64 { return int64(len(s.queue)) },
		func() int64 { return int64(s.ModelSeq()) },
	)
	if opts.Exemplars != nil {
		s.metrics.latency.AttachExemplars(opts.Exemplars)
	}
	s.mux.HandleFunc("/v1/predict", s.instrument("/v1/predict", s.handlePredict))
	s.mux.HandleFunc("/v1/models", s.instrument("/v1/models", s.handleModels))
	s.mux.HandleFunc("/healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	s.mux.HandleFunc("/v1/sketches", s.instrument("/v1/sketches", s.handleSketches))
	if opts.Trainer != nil {
		s.mux.HandleFunc("/v1/observe", s.instrument("/v1/observe", s.handleObserve))
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.batcher()
	}()
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		//srdalint:ignore ctxflow bounded fan-out: exactly opts.Workers dispatch goroutines, joined on drain
		go s.worker()
	}
	return s, nil
}

// Handler returns the HTTP handler exposing all endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the server's metrics registry, so a debug listener can
// expose it alongside the process-wide obs.Default() registry.
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }

// Models returns the model registry backing the server; co-located
// deployments publish and roll back tenants through it.
func (s *Server) Models() *registry.Registry { return s.reg }

// Tracer returns the server's request tracer; a debug listener exports
// its ring at /debug/traces, and shutdown flushes it to -trace-out.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Logger returns the server's structured logger (nil when logging is
// disabled); the watch and shutdown paths in cmd/srdaserve share it.
func (s *Server) Logger() *obs.Logger { return s.logger }

// Model returns the live default model (nil when the registry holds no
// default entry).
func (s *Server) Model() *core.Model {
	if snap, ok := s.reg.Get(s.opts.DefaultModel); ok {
		return snap.Model
	}
	return nil
}

// ModelSeq returns the default model's monotonic version (1 for the
// model the server started with; each successful Swap increments it, and
// rollbacks keep moving forward).  Zero when no default model exists.
func (s *Server) ModelSeq() uint64 {
	if snap, ok := s.reg.Get(s.opts.DefaultModel); ok {
		return snap.Version
	}
	return 0
}

// LatencyP99 returns the streaming 99th-percentile predict latency in
// seconds (0 until the first observation) — the admission-control signal
// the router's health checks read, mirroring the
// srdaserve_request_latency_p99 gauge.
func (s *Server) LatencyP99() float64 {
	if p := s.metrics.latencySketch.Query(0.99); !math.IsNaN(p) {
		return p
	}
	return 0
}

// Swap atomically publishes m as the next version of the default model
// and returns its version.  Batches already dispatched keep the model
// pointer they loaded, so in-flight requests finish on the old version.
func (s *Server) Swap(m *core.Model) (uint64, error) {
	if m == nil || m.Centroids == nil {
		return 0, fmt.Errorf("serve: refusing to swap in a model without centroids")
	}
	m.Workers = s.opts.Workers
	snap, err := s.reg.Publish(s.opts.DefaultModel, m)
	if err != nil {
		return 0, err
	}
	s.metrics.reloads.Inc()
	return snap.Version, nil
}

// Close stops the dispatcher, draining already-queued samples first.  Call
// it after the HTTP listener has stopped accepting requests (e.g. after
// http.Server.Shutdown) so no handler is still enqueueing; handlers caught
// mid-wait are released with a 503.  The context bounds the drain.
func (s *Server) Close(ctx context.Context) error {
	if !s.stopped.CompareAndSwap(false, true) {
		return nil
	}
	close(s.stop)
	s.watchWG.Wait()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain incomplete: %w", ctx.Err())
	}
}

// instrument wraps a handler with request/error counting.  Predict
// latency is observed inside handlePredict/Predict so every observation
// carries the trace it belongs to (exemplars, flight-recorder p99
// trigger).
func (s *Server) instrument(endpoint string, h func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		code := h(w, r)
		s.metrics.requests.With(endpoint, strconv.Itoa(code)).Inc()
		if code >= 400 {
			s.metrics.errors.With(endpoint).Inc()
		}
	}
}

// startRequestSpan opens the worker-side root of a request's span tree,
// continuing whatever trace context reaches the worker: a span already on
// the context (the co-located router's in-process "forward" span) makes
// this a child; otherwise a well-formed traceparent header (an HTTP hop
// from the router or a typed client) makes it a remote continuation under
// the caller's TraceID; otherwise it is a fresh root.
func (s *Server) startRequestSpan(ctx context.Context, name string, h http.Header) (context.Context, *obs.ReqSpan) {
	if parent := obs.SpanFromContext(ctx); parent != nil {
		sp := parent.StartChild(name)
		return obs.ContextWithSpan(ctx, sp), sp
	}
	if h != nil {
		if trace, parent, ok := obs.ExtractTrace(h); ok {
			return s.tracer.StartRemote(ctx, name, trace, parent)
		}
	}
	return s.tracer.StartRoot(ctx, name)
}

// observeLatencyTraced feeds one predict latency to the instruments with
// the trace that produced it, then lets the flight recorder compare the
// refreshed streaming p99 against its SLO.
func (s *Server) observeLatencyTraced(sec float64, trace obs.TraceID) {
	s.metrics.observeLatencyTraced(sec, trace)
	s.opts.Flight.CheckP99(s.LatencyP99(), trace)
}

// Sample is one input vector: exactly one of Dense or Sparse must be set.
// Sparse maps feature index → value (JSON object keys are strings on the
// wire; encoding/json converts).
type Sample struct {
	Dense  []float64       `json:"dense,omitempty"`
	Sparse map[int]float64 `json:"sparse,omitempty"`
}

// PredictRequest is the POST /v1/predict payload.  A single sample may
// also be sent shorthand as a bare Sample object.
type PredictRequest struct {
	Samples []Sample `json:"samples"`
	// Model selects the registry model answering the request (empty =
	// the server's default model).  It is also the tenant key the router
	// hashes and meters quotas by.
	Model string `json:"model,omitempty"`
	// Embed asks for the (c−1)-dimensional embeddings alongside classes.
	Embed bool `json:"embed,omitempty"`
	Sample
}

// PredictResponse is the predict reply: Classes[i] answers Samples[i].
type PredictResponse struct {
	Classes    []int       `json:"classes"`
	Embeddings [][]float64 `json:"embeddings,omitempty"`
	// Model names the registry model that produced the answer.
	Model string `json:"model,omitempty"`
	// ModelSeq identifies which version of that model produced it.
	ModelSeq uint64 `json:"model_seq"`
}

// Health is the /healthz reply.  Features, Classes, Dim, ModelSeq, and
// ModelLoadedAt describe the default model and are zero when the
// registry holds no default entry.
type Health struct {
	Status        string  `json:"status"`
	Features      int     `json:"features"`
	Classes       int     `json:"classes"`
	Dim           int     `json:"dim"`
	ModelSeq      uint64  `json:"model_seq"`
	ModelLoadedAt string  `json:"model_loaded_at,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	QueueDepth    int     `json:"queue_depth"`
	// Models counts the live registry names.
	Models int `json:"models"`
	// LatencyP99Seconds mirrors the srdaserve_request_latency_p99 gauge;
	// the router's admission control keys off it.
	LatencyP99Seconds float64 `json:"latency_p99_seconds"`
}

// ModelInfo is one /v1/models entry.
type ModelInfo struct {
	Name     string `json:"name"`
	Version  uint64 `json:"version"`
	Bytes    int64  `json:"bytes"`
	LoadedAt string `json:"loaded_at"`
}

// ModelList is the /v1/models reply.
type ModelList struct {
	Models []ModelInfo `json:"models"`
}

type errorReply struct {
	Error string `json:"error"`
}

// Typed predict errors; StatusCode maps them (and any *StatusError) to
// HTTP statuses, so the router's in-memory and HTTP transports agree.
var (
	// ErrQueueFull rejects samples past QueueDepth (503, retryable).
	ErrQueueFull = errors.New("prediction queue full")
	// ErrShuttingDown rejects requests after Close began (503).
	ErrShuttingDown = errors.New("server shutting down")
	// ErrModelShape fails samples whose dimensionality no longer matches
	// the model version that answered the batch (409).
	ErrModelShape = errors.New("sample dimensionality no longer matches the live model (reloaded mid-flight)")
)

// RequestError is a malformed request (HTTP 400).
type RequestError struct{ Msg string }

func (e *RequestError) Error() string { return e.Msg }

func badRequestf(format string, args ...any) *RequestError {
	return &RequestError{Msg: fmt.Sprintf(format, args...)}
}

// UnknownModelError names a model the registry does not hold (HTTP 404).
type UnknownModelError struct{ Name string }

func (e *UnknownModelError) Error() string {
	return fmt.Sprintf("unknown model %q", e.Name)
}

// StatusCode maps a typed predict error to its HTTP status: nil → 200,
// RequestError → 400, UnknownModelError → 404, ErrModelShape → 409,
// ErrQueueFull/ErrShuttingDown → 503, StatusError → its own code,
// anything else → 500.
func StatusCode(err error) int {
	var reqErr *RequestError
	var unkErr *UnknownModelError
	var stErr *StatusError
	switch {
	case err == nil:
		return http.StatusOK
	case errors.As(err, &reqErr):
		return http.StatusBadRequest
	case errors.As(err, &unkErr):
		return http.StatusNotFound
	case errors.Is(err, ErrModelShape):
		return http.StatusConflict
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.As(err, &stErr):
		return stErr.Code
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// A failed write means the client hung up; there is nobody to tell.
	_ = json.NewEncoder(w).Encode(v)
	return code
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) int {
	return writeJSON(w, code, errorReply{Error: fmt.Sprintf(format, args...)})
}

// writeTypedErr renders a typed predict error, advertising Retry-After
// on retryable 503s so the client's backoff has a floor.
func writeTypedErr(w http.ResponseWriter, err error) int {
	code := StatusCode(err)
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	return writeErr(w, code, "%v", err)
}

// Predict answers one request through the in-process transport: the same
// validation, micro-batching dispatch, and tracing as POST /v1/predict,
// with typed errors instead of HTTP statuses (map them with StatusCode).
// This is how the router reaches co-located workers without a network
// hop, which keeps the whole tier testable under -race.
func (s *Server) Predict(ctx context.Context, req *PredictRequest) (*PredictResponse, error) {
	if s.stopped.Load() {
		return nil, ErrShuttingDown
	}
	begin := time.Now()
	ctx, root := s.startRequestSpan(ctx, "request", nil)
	defer root.End()
	_, sp := obs.StartSpan(ctx, "parse")
	p, items, err := s.buildPending(req)
	sp.End()
	if err != nil {
		return nil, err
	}
	p.span = root
	if err := s.submit(ctx, p, items); err != nil {
		return nil, err
	}
	s.observeLatencyTraced(time.Since(begin).Seconds(), root.TraceID())
	return &PredictResponse{
		Classes:    p.classes,
		Embeddings: p.embeddings,
		Model:      p.model,
		ModelSeq:   p.modelSeq.Load(),
	}, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) int {
	begin := time.Now()
	var trace obs.TraceID
	defer func() { s.observeLatencyTraced(time.Since(begin).Seconds(), trace) }()
	if r.Method != http.MethodPost {
		return writeErr(w, http.StatusMethodNotAllowed, "POST required")
	}
	if s.stopped.Load() {
		return writeTypedErr(w, ErrShuttingDown)
	}
	ctx, root := s.startRequestSpan(r.Context(), "request", r.Header)
	defer root.End()
	trace = root.TraceID()
	_, sp := obs.StartSpan(ctx, "parse")
	var req PredictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		sp.End()
		return writeErr(w, http.StatusBadRequest, "bad JSON: %v", err)
	}
	p, items, err := s.buildPending(&req)
	sp.End()
	if err != nil {
		return writeTypedErr(w, err)
	}
	p.span = root
	if err := s.submit(ctx, p, items); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return http.StatusServiceUnavailable // client gone; nothing to write
		}
		return writeTypedErr(w, err)
	}
	return writeJSON(w, http.StatusOK, PredictResponse{
		Classes:    p.classes,
		Embeddings: p.embeddings,
		Model:      p.model,
		ModelSeq:   p.modelSeq.Load(),
	})
}

// buildPending validates one predict request against the registry and
// converts it to dispatcher form, returning typed errors.
func (s *Server) buildPending(req *PredictRequest) (*pending, []*item, error) {
	samples := req.Samples
	if len(samples) == 0 && (len(req.Dense) > 0 || len(req.Sparse) > 0) {
		samples = []Sample{req.Sample}
	}
	if len(samples) == 0 {
		return nil, nil, badRequestf("no samples")
	}
	if len(samples) > s.opts.MaxRequestSamples {
		return nil, nil, badRequestf("%d samples exceeds the per-request cap of %d",
			len(samples), s.opts.MaxRequestSamples)
	}
	name := req.Model
	if name == "" {
		name = s.opts.DefaultModel
	}
	snap, ok := s.reg.Get(name)
	if !ok {
		return nil, nil, &UnknownModelError{Name: name}
	}
	n := snap.Model.W.Rows
	p := newPending(len(samples), req.Embed)
	p.model = name
	items := make([]*item, len(samples))
	for i, smp := range samples {
		it, err := buildItem(p, i, smp, n)
		if err != nil {
			return nil, nil, badRequestf("sample %d: %v", i, err)
		}
		it.model = name
		items[i] = it
	}
	return p, items, nil
}

// submit enqueues the pending's items and waits for resolution under a
// "queue" span.
func (s *Server) submit(ctx context.Context, p *pending, items []*item) error {
	_, queueSp := obs.StartSpan(ctx, "queue")
	defer queueSp.End()
	s.enqueue(p, items)
	select {
	case <-p.done:
	case <-ctx.Done():
		return ctx.Err()
	case <-s.stop:
		return ErrShuttingDown
	}
	return p.failure()
}

// buildItem validates one sample against the model's feature count n and
// converts it to dispatcher form.
func buildItem(p *pending, idx int, smp Sample, n int) (*item, error) {
	hasDense, hasSparse := len(smp.Dense) > 0, len(smp.Sparse) > 0
	if hasDense == hasSparse {
		return nil, fmt.Errorf("need exactly one of dense or sparse")
	}
	if hasDense {
		if len(smp.Dense) != n {
			return nil, fmt.Errorf("dense sample has %d features, model expects %d", len(smp.Dense), n)
		}
		return &item{p: p, idx: idx, dense: smp.Dense, width: len(smp.Dense)}, nil
	}
	cols := make([]int, 0, len(smp.Sparse))
	//srdalint:ignore maprange keys are validated then sorted below before any arithmetic sees them
	for j := range smp.Sparse {
		if j < 0 {
			return nil, fmt.Errorf("negative feature index %d", j)
		}
		if j >= n {
			return nil, fmt.Errorf("feature index %d out of range for a %d-feature model", j, n)
		}
		cols = append(cols, j)
	}
	// Sort so the CSR row is column-ordered: kernel dot products accumulate
	// in index order and stay bitwise reproducible across requests.
	sort.Ints(cols)
	it := &item{p: p, idx: idx, cols: cols, vals: make([]float64, len(cols))}
	for t, j := range cols {
		it.vals[t] = smp.Sparse[j]
		if j+1 > it.width {
			it.width = j + 1
		}
	}
	return it, nil
}

// HealthSnapshot builds the /healthz reply programmatically — the same
// struct the endpoint serves, used by the router's in-process health
// checks in co-located mode.
func (s *Server) HealthSnapshot() *Health {
	h := &Health{
		Status:            "ok",
		UptimeSeconds:     time.Since(s.start).Seconds(),
		QueueDepth:        len(s.queue),
		Models:            s.reg.Len(),
		LatencyP99Seconds: s.LatencyP99(),
	}
	if snap, ok := s.reg.Get(s.opts.DefaultModel); ok {
		h.Features = snap.Model.W.Rows
		h.Classes = snap.Model.NumClasses
		h.Dim = snap.Model.Dim()
		h.ModelSeq = snap.Version
		h.ModelLoadedAt = snap.LoadedAt.UTC().Format(time.RFC3339Nano)
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return writeErr(w, http.StatusMethodNotAllowed, "GET required")
	}
	return writeJSON(w, http.StatusOK, s.HealthSnapshot())
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return writeErr(w, http.StatusMethodNotAllowed, "GET required")
	}
	snaps := s.reg.List()
	out := ModelList{Models: make([]ModelInfo, 0, len(snaps))}
	for _, snap := range snaps {
		out.Models = append(out.Models, ModelInfo{
			Name:     snap.Name,
			Version:  snap.Version,
			Bytes:    snap.Bytes,
			LoadedAt: snap.LoadedAt.UTC().Format(time.RFC3339Nano),
		})
	}
	return writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return writeErr(w, http.StatusMethodNotAllowed, "GET required")
	}
	w.Header().Set("Content-Type", obs.PromContentType)
	w.WriteHeader(http.StatusOK)
	s.metrics.writeProm(w)
	s.reg.Metrics().WritePrometheus(w)
	if s.opts.Trainer != nil {
		s.opts.Trainer.Metrics().WritePrometheus(w)
	}
	return http.StatusOK
}

// LatencySketchName keys the predict-latency sketch in LatencySketches
// and the /v1/sketches reply; the federation layer merges snapshots
// under this name into cluster-level quantiles.
const LatencySketchName = "srdaserve_request_latency"

// LatencySketches returns serializable snapshots of the server's CKMS
// quantile sketches, keyed by metric base name.  The federation scraper
// merges these — the p50/p95/p99 gauges on /metrics are pre-collapsed
// estimates and cannot be combined across replicas without losing the
// rank-error bound.
func (s *Server) LatencySketches() map[string]obs.SketchSnapshot {
	return map[string]obs.SketchSnapshot{
		LatencySketchName: s.metrics.latencySketch.Snapshot(),
	}
}

func (s *Server) handleSketches(w http.ResponseWriter, r *http.Request) int {
	if r.Method != http.MethodGet {
		return writeErr(w, http.StatusMethodNotAllowed, "GET required")
	}
	return writeJSON(w, http.StatusOK, s.LatencySketches())
}
